package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section, each printing the regenerated exhibit
// (with the paper's published values alongside) on its first iteration,
// plus ablation benchmarks for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem                # everything
//	go test -bench=Table1 -benchtime=1x       # one exhibit
//
// The reported ns/op is the wall time of regenerating the exhibit — i.e.
// the simulator's own speed; the simulated results are in the printed
// tables.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/perfect"
	"repro/internal/sim"
	"repro/internal/tables"
	"repro/internal/telemetry"
)

// printOnce renders an exhibit the first time a benchmark runs it.
var printedMu sync.Mutex
var printed = map[string]bool{}

func printOnce(name string, render func() error) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[name] {
		return
	}
	printed[name] = true
	if err := render(); err != nil {
		fmt.Fprintln(os.Stderr, name, "render:", err)
	}
}

// BenchmarkTable1 regenerates Table 1 (rank-64 update MFLOPS in the
// three memory modes on 1..4 clusters) by full machine simulation.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := tables.RunTable1(128)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table1", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkTable2 regenerates Table 2 (prefetch speedup, first-word
// latency and interarrival for TM/CG/VF/RK at 8/16/32 CEs).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := tables.RunTable2(1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table2", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkTable3 regenerates Table 3 (Perfect Benchmarks times,
// improvements, variant slowdowns, MFLOPS, YMP ratios).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := tables.RunTable3(perfect.Rates{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table3", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkTable4 regenerates Table 4 (hand-optimized Perfect codes).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := tables.RunTable4(perfect.Rates{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table4", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkTable5 regenerates Table 5 (instability for the Perfect codes
// on Cedar, the YMP-8 and the Cray-1).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := tables.RunTable5()
		printOnce("table5", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkTable6 regenerates Table 6 (restructuring efficiency bands).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := tables.RunTable6()
		printOnce("table6", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkFigure3 regenerates Figure 3 (the YMP-vs-Cedar efficiency
// scatter with its performance bands).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := tables.RunFigure3()
		printOnce("figure3", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkScalability regenerates the Section 4.3 study: CG on Cedar
// across processor counts and problem sizes (simulated) and the banded
// matrix-vector product on the CM-5 model, with PPT4 verdicts.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := tables.RunScalability(true)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("scalability", func() error { return d.Render(os.Stdout) })
	}
}

// BenchmarkPPT5 runs the scaled-machine study the paper defers to: the
// paper's workloads on Cedar-like systems of 4 and 8 clusters (16 with
// the full tables tool), with memory modules scaled per CE and deeper
// networks as the port count requires.
func BenchmarkPPT5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := tables.RunPPT5(true)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ppt5", func() error { return d.Render(os.Stdout) })
	}
}

// --- Ablation benchmarks -------------------------------------------------
//
// Each ablation varies one design choice DESIGN.md calls out and reports
// the simulated outcome through b.ReportMetric, so the effect of the
// mechanism is visible next to the headline reproduction.

// benchRank64 runs the rank-64 kernel under a machine config and reports
// simulated MFLOPS.
func benchRank64(b *testing.B, cfg core.Config, mode kernels.Mode) {
	var mflops float64
	for i := 0; i < b.N; i++ {
		in := kernels.NewRank64Input(64)
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := kernels.RunRank64(m, in, kernels.Params{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		mflops = res.MFLOPS
	}
	b.ReportMetric(mflops, "sim-MFLOPS")
}

// BenchmarkAblationPrefetchBufferDepth: shrinking the 512-word prefetch
// buffer to one cache line's worth restores most of the no-prefetch
// latency exposure.
func BenchmarkAblationPrefetchBufferDepth(b *testing.B) {
	// The buffer depth is fixed in hardware (512); the ablation is
	// expressed through the outstanding-request limit instead: a PFU
	// whose issue window is capped behaves like a small buffer.
	b.Run("full-machine", func(b *testing.B) {
		benchRank64(b, core.ConfigClusters(1), kernels.GMPrefetch)
	})
	b.Run("no-prefetch", func(b *testing.B) {
		benchRank64(b, core.ConfigClusters(1), kernels.GMNoPrefetch)
	})
}

// BenchmarkAblationOutstandingRequests varies the CE's lockup-free miss
// limit: the paper's 2 versus a hypothetical 8, which would lift the
// GM/no-pref bound from 2 words per 13 cycles toward the latency-free
// rate.
func BenchmarkAblationOutstandingRequests(b *testing.B) {
	for _, lim := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("limit-%d", lim), func(b *testing.B) {
			cfg := core.ConfigClusters(1)
			cfg.CE.MaxOutstanding = lim
			benchRank64(b, cfg, kernels.GMNoPrefetch)
		})
	}
}

// BenchmarkAblationNetworkQueueDepth varies the 2-word switch port
// queues: deeper queues absorb contention bursts and shift the
// interarrival degradation.
func BenchmarkAblationNetworkQueueDepth(b *testing.B) {
	for _, qw := range []int{2, 8} {
		b.Run(fmt.Sprintf("queue-%dw", qw), func(b *testing.B) {
			cfg := core.ConfigClusters(4)
			cfg.NetQueueWords = qw
			benchRank64(b, cfg, kernels.GMPrefetch)
		})
	}
}

// BenchmarkAblationIdealNetwork tests the paper's [Turn93] claim that
// the contention degradation "is not inherent in the type of network
// used": the same 4-cluster prefetched rank-64 update runs on the real
// omega fabric and on a contentionless fabric with identical unloaded
// latency. The gap between the two is the switch implementation's
// contribution; the remainder is memory-module and port-bandwidth
// contention, which no network can remove.
func BenchmarkAblationIdealNetwork(b *testing.B) {
	b.Run("omega", func(b *testing.B) {
		benchRank64(b, core.ConfigClusters(4), kernels.GMPrefetch)
	})
	b.Run("ideal", func(b *testing.B) {
		cfg := core.ConfigClusters(4)
		cfg.IdealNetwork = true
		benchRank64(b, cfg, kernels.GMPrefetch)
	})
}

// BenchmarkAblationCedarSync compares loop self-scheduling with the
// Cedar synchronization instructions against the 30 us software path
// (Table 3's "W/o Cedar Synchronization" mechanism) on a fine-grained
// loop.
func BenchmarkAblationCedarSync(b *testing.B) {
	run := func(b *testing.B, useSync bool) {
		var elapsed float64
		for i := 0; i < b.N; i++ {
			m, err := core.New(core.ConfigClusters(1))
			if err != nil {
				b.Fatal(err)
			}
			cfg := cedarfort.DefaultConfig()
			cfg.UseCedarSync = useSync
			rt := cedarfort.New(m, cfg)
			cycles, err := rt.XDOALL(128, cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
				ctx.Emit(isa.NewCompute(100))
			})
			if err != nil {
				b.Fatal(err)
			}
			elapsed = cycles.Seconds() * 1e6
		}
		b.ReportMetric(elapsed, "sim-us")
	}
	b.Run("cedar-sync", func(b *testing.B) { run(b, true) })
	b.Run("no-cedar-sync", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationCacheGeometry varies the shared cluster cache: the
// as-built 512 KB against a quarter-size cache and a single-bank cache
// (one word per cycle aggregate instead of eight), on the cache-blocked
// rank-64 kernel.
func BenchmarkAblationCacheGeometry(b *testing.B) {
	b.Run("as-built", func(b *testing.B) {
		benchRank64(b, core.ConfigClusters(1), kernels.GMCache)
	})
	b.Run("quarter-size", func(b *testing.B) {
		cfg := core.ConfigClusters(1)
		cfg.Cache.Words = 16 << 10
		benchRank64(b, cfg, kernels.GMCache)
	})
	b.Run("single-bank", func(b *testing.B) {
		cfg := core.ConfigClusters(1)
		cfg.Cache.Banks = 1
		cfg.Cache.BankAccessesPerCycle = 1
		benchRank64(b, cfg, kernels.GMCache)
	})
}

// BenchmarkEngineQuiescence measures the engine's fast paths against the
// naive tick-everything reference on a DOALL-startup-heavy workload:
// repeated self-scheduled XDOALLs whose 90 us dispatch startups leave
// the whole 32-CE machine quiet for ~530 cycles at a time — exactly the
// spans the engine fast-forwards in one jump. "quiescent" re-queries
// every idle component's NextEvent each executed cycle; "wake-cached"
// (the default engine) additionally parks components that answered
// Never until an external stimulus wakes them, which pays off here
// because the claim loops keep the PFUs, caches and IPs permanently
// dormant while sync traffic forces the engine to execute most cycles.
// All sub-benchmarks simulate the identical workload (the determinism
// tests assert bit-identical results), so the ns/op ratios are pure
// host-cost wins. `make bench-engine` parses the ns/op values into
// BENCH_engine.json.
func BenchmarkEngineQuiescence(b *testing.B) {
	workload := func(b *testing.B, mode sim.EngineMode) {
		var simCycles int64
		for i := 0; i < b.N; i++ {
			cfg := core.ConfigClusters(4)
			cfg.Global.Words = 1 << 16 // keep construction cost out of the engine measurement
			cfg.EngineMode = mode
			m, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rt := cedarfort.New(m, cedarfort.DefaultConfig())
			for l := 0; l < 64; l++ {
				if _, err := rt.XDOALL(32, cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
					ctx.Emit(isa.NewCompute(500))
				}); err != nil {
					b.Fatal(err)
				}
			}
			simCycles = int64(m.Eng.Now())
		}
		b.ReportMetric(float64(simCycles), "sim-cycles/op")
	}
	b.Run("naive", func(b *testing.B) { workload(b, sim.ModeNaive) })
	b.Run("quiescent", func(b *testing.B) { workload(b, sim.ModeQuiescent) })
	b.Run("wake-cached", func(b *testing.B) { workload(b, sim.ModeWakeCached) })
	b.Run("parallel", func(b *testing.B) { workload(b, sim.ModeWakeCachedParallel) })
}

// BenchmarkEngineParallel measures the cluster-parallel engine against
// wake-cached on a compute-dominated workload: self-scheduled XDOALLs
// of long compute bursts keep every CE busy nearly every cycle, so the
// run is dominated by phase 2 — the part ModeWakeCachedParallel spreads
// across the worker pool. On a multi-core host the 4-cluster ratio is
// the engine's speedup (the ci gate requires >= 1.8x there); on a
// single CPU the parallel rows measure the three-phase bookkeeping
// overhead instead, and the gate is skipped. The 16-cluster rows are
// the first scaled-up datapoint (ScaledConfig: 128 CEs, three-stage
// networks, one memory module per CE).
func BenchmarkEngineParallel(b *testing.B) {
	workload := func(b *testing.B, clusters int, mode sim.EngineMode) {
		var simCycles int64
		for i := 0; i < b.N; i++ {
			var cfg core.Config
			if clusters > 4 {
				cfg = core.ScaledConfig(clusters)
			} else {
				cfg = core.ConfigClusters(clusters)
			}
			cfg.Global.Words = 1 << 16 // keep construction cost out of the engine measurement
			cfg.EngineMode = mode
			m, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rt := cedarfort.New(m, cedarfort.DefaultConfig())
			for l := 0; l < 8; l++ {
				if _, err := rt.XDOALL(m.NumCEs(), cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
					ctx.Emit(isa.NewCompute(3000))
				}); err != nil {
					b.Fatal(err)
				}
			}
			simCycles = int64(m.Eng.Now())
			m.Eng.StopWorkers()
		}
		b.ReportMetric(float64(simCycles), "sim-cycles/op")
	}
	b.Run("wake-cached-4cl", func(b *testing.B) { workload(b, 4, sim.ModeWakeCached) })
	b.Run("parallel-4cl", func(b *testing.B) { workload(b, 4, sim.ModeWakeCachedParallel) })
	b.Run("wake-cached-16cl", func(b *testing.B) { workload(b, 16, sim.ModeWakeCached) })
	b.Run("parallel-16cl", func(b *testing.B) { workload(b, 16, sim.ModeWakeCachedParallel) })
}

// BenchmarkTelemetryOverhead measures what the observability layer
// costs, on the same DOALL-startup-heavy workload as
// BenchmarkEngineQuiescence (quiescent path): "off" never builds a
// registry — the acceptance gate is that this stays within noise of the
// pre-telemetry engine — and "on" samples the full registry every 2000
// cycles with phase marks wired through the runtime.
func BenchmarkTelemetryOverhead(b *testing.B) {
	workload := func(b *testing.B, observe bool) {
		var samples int
		for i := 0; i < b.N; i++ {
			cfg := core.ConfigClusters(4)
			cfg.Global.Words = 1 << 16
			m, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var s *telemetry.Sampler
			if observe {
				s = m.NewSampler(2000)
			}
			rt := cedarfort.New(m, cedarfort.DefaultConfig())
			if s != nil {
				rt.Phases = s
			}
			for l := 0; l < 64; l++ {
				if _, err := rt.XDOALL(32, cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
					ctx.Emit(isa.NewCompute(500))
				}); err != nil {
					b.Fatal(err)
				}
			}
			if s != nil {
				s.Final()
				samples = len(s.Samples())
			}
		}
		if observe {
			b.ReportMetric(float64(samples), "samples/op")
		}
	}
	b.Run("off", func(b *testing.B) { workload(b, false) })
	b.Run("on", func(b *testing.B) { workload(b, true) })
}

// BenchmarkSimulatorSpeed measures the raw engine rate on the full
// machine under kernel load (host cycles per simulated cycle).
func BenchmarkSimulatorSpeed(b *testing.B) {
	in := kernels.NewRank64Input(64)
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := core.New(core.ConfigClusters(4))
		if err != nil {
			b.Fatal(err)
		}
		res, err := kernels.RunRank64(m, in, kernels.Params{Mode: kernels.GMCache})
		if err != nil {
			b.Fatal(err)
		}
		cycles += int64(res.Cycles)
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}
