// Command netprobe characterizes the global network and memory path in
// isolation, in the style of the memory-system benchmarks of [GJTV91]:
// load-latency curves, stride sweeps showing module aliasing, write-mix
// effects, and the omega-versus-ideal fabric comparison behind the
// paper's [Turn93] remark.
//
//	netprobe                      # load sweep at 8/16/32 sources
//	netprobe -strides             # stride sweep (module aliasing)
//	netprobe -ideal               # same loads on the contentionless fabric
//	netprobe -sources 32 -rate 1  # one point
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/memchar"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	sources := flag.Int("sources", 0, "fixed source count (0 = sweep 8/16/32)")
	rate := flag.Float64("rate", 0, "fixed issue rate per source (0 = sweep)")
	cycles := flag.Int("cycles", 20000, "simulated cycles per point")
	strides := flag.Bool("strides", false, "run the stride sweep instead of the load sweep")
	ideal := flag.Bool("ideal", false, "use the contentionless fabric")
	writes := flag.Float64("writes", 0, "fraction of requests that are writes")
	flag.Parse()

	if *strides {
		runStrides(*cycles, *ideal)
		return
	}

	t := report.NewTable(
		"Global network + memory load-latency (round trip; unloaded minimum 8 cycles)",
		"sources", "rate/CE", "offered w/cyc", "delivered w/cyc", "latency (cyc)")
	srcList := []int{8, 16, 32}
	if *sources > 0 {
		srcList = []int{*sources}
	}
	rateList := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	if *rate > 0 {
		rateList = []float64{*rate}
	}
	var overflow int64
	for _, s := range srcList {
		for _, r := range rateList {
			res, err := memchar.Run(memchar.Config{
				Sources: s, RatePerSource: r, Stride: 1,
				WriteFraction: *writes, Cycles: sim.Cycle(*cycles), Ideal: *ideal,
			})
			if err != nil {
				fail(err)
			}
			t.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%.2f", r),
				fmt.Sprintf("%.2f", res.OfferedWordsPerCycle),
				fmt.Sprintf("%.2f", res.DeliveredWordsPerCycle),
				report.F(res.MeanLatency))
			overflow += res.LatencyHist.Overflow
		}
	}
	t.AddNote("aggregate memory capacity: 32 modules x 0.5 requests/cycle = 16 words/cycle (768 MB/s)")
	t.NoteOverflow("latency histogram", overflow)
	if *ideal {
		t.AddNote("contentionless fabric: any residual loss is the memory modules' own")
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func runStrides(cycles int, ideal bool) {
	t := report.NewTable(
		"Stride sweep: delivered bandwidth vs access stride (8 sources, full rate)",
		"stride", "delivered w/cyc", "latency (cyc)", "note")
	var overflow int64
	for _, st := range []int{1, 2, 3, 4, 8, 16, 31, 32, 33, 64} {
		res, err := memchar.Run(memchar.Config{
			Sources: 8, RatePerSource: 1, Stride: st,
			Cycles: sim.Cycle(cycles), Ideal: ideal,
		})
		if err != nil {
			fail(err)
		}
		overflow += res.LatencyHist.Overflow
		mods := 32 / gcd(32, st)
		note := fmt.Sprintf("%d modules per stream", mods)
		if mods == 1 {
			note = "aliases every request to one module"
		} else if mods == 32 {
			note = "conflict-free (odd stride)"
		}
		t.AddRow(fmt.Sprintf("%d", st),
			fmt.Sprintf("%.2f", res.DeliveredWordsPerCycle),
			report.F(res.MeanLatency), note)
	}
	t.AddNote("double-word interleave: stride patterns sharing factors with 32 concentrate on few modules")
	t.NoteOverflow("latency histogram", overflow)
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netprobe:", err)
	os.Exit(1)
}
