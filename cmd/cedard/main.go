// Command cedard is the simulation job server: it accepts batched
// job.Specs over HTTP/JSON and runs them through the same Spec→runner
// path cedarsim drives from flags, behind a fingerprint-keyed result
// cache. The simulator is fully deterministic, so identical specs are
// perfectly cacheable: a parameter sweep submitted by many clients
// costs one simulation per distinct configuration — concurrent
// identical requests are deduped in flight, repeats are served from
// the cache, and distinct jobs fan out to a bounded worker pool.
//
//	cedard -addr localhost:8633 -shards 16 -workers 8
//
//	POST /jobs     one Spec object or an array of Specs; returns a
//	               response per job, in order, each carrying the spec
//	               fingerprint, whether it was served without running a
//	               simulation, and the result. Any invalid spec rejects
//	               the whole batch with 400 and per-job errors.
//	GET  /metrics  the cache/pool telemetry registry as text
//	GET  /healthz  liveness probe
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sync"

	"repro/internal/job"
	"repro/internal/job/runner"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8633", "listen address")
	shards := flag.Int("shards", 16, "result-cache shard count")
	workers := flag.Int("workers", runtime.NumCPU(), "worker-pool bound: distinct jobs simulated concurrently")
	flag.Parse()
	if *shards < 1 {
		usageError(fmt.Errorf("-shards %d: need at least one cache shard", *shards))
	}
	if *workers < 1 {
		usageError(fmt.Errorf("-workers %d: need at least one worker", *workers))
	}

	svc := job.NewService(runner.Run, *shards, *workers)
	reg := telemetry.NewRegistry()
	svc.RegisterMetrics(reg, "cedard")

	log.Printf("cedard: listening on %s (%d cache shards, %d workers)", *addr, *shards, *workers)
	if err := http.ListenAndServe(*addr, newHandler(svc, reg)); err != nil {
		log.Fatal("cedard: ", err)
	}
}

// jobResponse is one element of the POST /jobs reply, parallel to the
// submitted batch.
type jobResponse struct {
	// Fingerprint is the spec's canonical fingerprint — the cache key,
	// and the stable identity clients can correlate sweeps by.
	Fingerprint string `json:"fingerprint"`
	// Cached is true when this request did not pay for a simulation: the
	// result came from the cache or from joining an identical in-flight
	// run.
	Cached bool `json:"cached"`
	// Result is the simulation outcome; nil when Error is set.
	Result *job.Result `json:"result,omitempty"`
	// Error reports a runner failure for this job (the batch itself was
	// valid, so the other jobs still carry results).
	Error string `json:"error,omitempty"`
}

// errorResponse is the 400 reply: what was wrong, per job.
type errorResponse struct {
	Error string     `json:"error"`
	Jobs  []jobError `json:"jobs,omitempty"`
}

type jobError struct {
	// Index is the job's position in the submitted batch.
	Index int    `json:"index"`
	Error string `json:"error"`
}

// newHandler wires the routes over the service; split from main so
// tests drive it through httptest without a listener.
func newHandler(svc *job.Service, reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		specs, err := job.Decode(r.Body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		// Validate the whole batch before running any of it: a sweep with
		// one typo fails fast and atomically instead of half-executing.
		var bad []jobError
		for i, s := range specs {
			if err := runner.Validate(s); err != nil {
				bad = append(bad, jobError{Index: i, Error: err.Error()})
			}
		}
		if len(bad) > 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid job batch", Jobs: bad})
			return
		}
		// Fan out: the service dedupes identical specs in flight and
		// bounds distinct ones by the worker pool, so the handler can
		// submit the whole batch at once.
		resps := make([]jobResponse, len(specs))
		var wg sync.WaitGroup
		for i, s := range specs {
			wg.Add(1)
			go func(i int, s job.Spec) {
				defer wg.Done()
				fp, _ := s.Fingerprint() // validated above; cannot fail
				res, cached, err := svc.Do(s)
				if err != nil {
					resps[i] = jobResponse{Fingerprint: fp, Cached: cached, Error: err.Error()}
					return
				}
				resps[i] = jobResponse{Fingerprint: fp, Cached: cached, Result: &res}
			}(i, s)
		}
		wg.Wait()
		writeJSON(w, http.StatusOK, resps)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, reg.Dump())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Print("cedard: encode response: ", err)
	}
}

// usageError reports a bad flag value the way flag.Parse reports a
// malformed one: message plus usage to stderr, exit status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "cedard:", err)
	flag.Usage()
	os.Exit(2)
}
