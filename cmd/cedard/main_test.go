package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/job/runner"
	"repro/internal/telemetry"
)

func testServer(t *testing.T, workers int) (*httptest.Server, *job.Service) {
	t.Helper()
	svc := job.NewService(runner.Run, 4, workers)
	reg := telemetry.NewRegistry()
	svc.RegisterMetrics(reg, "cedard")
	srv := httptest.NewServer(newHandler(svc, reg))
	t.Cleanup(srv.Close)
	return srv, svc
}

func postJobs(t *testing.T, srv *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, []byte(readAll(t, resp))
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestJobsBatch: a batch of distinct jobs returns one response per job
// in order; resubmitting the batch serves every job from the cache with
// identical results and fingerprints.
func TestJobsBatch(t *testing.T) {
	srv, svc := testServer(t, 4)
	batch := `[
		{"workload":"vl","clusters":1,"size":1024},
		{"workload":"tm","clusters":1,"size":1024},
		{"workload":"vl","clusters":1,"size":1024,"prefetch":false}
	]`
	status, body := postJobs(t, srv, batch)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var first []jobResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatalf("bad response: %v\n%s", err, body)
	}
	if len(first) != 3 {
		t.Fatalf("%d responses for 3 jobs", len(first))
	}
	for i, jr := range first {
		if jr.Error != "" || jr.Result == nil {
			t.Fatalf("job %d failed: %+v", i, jr)
		}
		if jr.Cached {
			t.Fatalf("job %d reported cached on a cold cache", i)
		}
		if jr.Result.RegistryFingerprint == "" {
			t.Fatalf("job %d carries no registry fingerprint", i)
		}
	}
	if first[0].Fingerprint == first[2].Fingerprint {
		t.Fatal("prefetch on/off collided on one fingerprint")
	}
	if first[0].Result.Workload != "VL(pref)" && !strings.Contains(first[0].Result.Workload, "VL") {
		t.Fatalf("unexpected workload name %q", first[0].Result.Workload)
	}

	// Round 2: everything is a cache hit with identical payloads.
	status, body = postJobs(t, srv, batch)
	if status != http.StatusOK {
		t.Fatalf("status %d on resubmit: %s", status, body)
	}
	var second []jobResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("job %d not cached on resubmit", i)
		}
		if second[i].Fingerprint != first[i].Fingerprint {
			t.Fatalf("job %d fingerprint changed across submissions", i)
		}
		if second[i].Result.Cycles != first[i].Result.Cycles ||
			second[i].Result.RegistryFingerprint != first[i].Result.RegistryFingerprint {
			t.Fatalf("job %d cached result differs from the original", i)
		}
	}
	_, _, _, execs := svc.Stats()
	if execs != 3 {
		t.Fatalf("%d executions for 3 distinct jobs submitted twice", execs)
	}
}

// TestJobsDedupeWithinBatch: identical specs inside one batch — even
// spelled differently — run once and share the fingerprint.
func TestJobsDedupeWithinBatch(t *testing.T) {
	srv, svc := testServer(t, 4)
	batch := `[
		{"workload":"vl","clusters":1,"size":2048},
		{"size":2048,"clusters":1,"workload":"vl","mode":"pref"}
	]`
	status, body := postJobs(t, srv, batch)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resps []jobResponse
	if err := json.Unmarshal(body, &resps); err != nil {
		t.Fatal(err)
	}
	if resps[0].Fingerprint != resps[1].Fingerprint {
		t.Fatal("equivalent spellings got distinct fingerprints")
	}
	if _, _, _, execs := svc.Stats(); execs != 1 {
		t.Fatalf("%d executions for 2 identical jobs", execs)
	}
}

// TestJobsRejectsInvalid: any invalid spec rejects the whole batch with
// 400 and per-job errors, and nothing is simulated.
func TestJobsRejectsInvalid(t *testing.T) {
	srv, svc := testServer(t, 2)
	cases := []struct {
		name, body, want string
	}{
		{"unknown field", `{"workload":"vl","iters":5}`, "iters"},
		{"unknown workload", `[{"workload":"vl","clusters":1},{"workload":"linpack"}]`, "linpack"},
		{"negative size", `{"workload":"vl","size":-1}`, "size"},
		{"empty batch", `[]`, "empty"},
		{"trailing garbage", `{"workload":"vl"} extra`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJobs(t, srv, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", status, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Fatalf("400 body does not mention %q:\n%s", tc.want, body)
			}
		})
	}
	if _, _, _, execs := svc.Stats(); execs != 0 {
		t.Fatalf("invalid batches triggered %d executions", execs)
	}
	// The batch containing one valid job must not have run it either.
	if svc.Len() != 0 {
		t.Fatalf("invalid batch left %d cache entries", svc.Len())
	}
}

// TestMetricsAndHealth: the telemetry surface reflects what ran.
func TestMetricsAndHealth(t *testing.T) {
	srv, _ := testServer(t, 2)
	if _, body := postJobs(t, srv, `{"workload":"vl","clusters":1,"size":1024}`); len(body) == 0 {
		t.Fatal("empty response")
	}
	postJobs(t, srv, `{"workload":"vl","clusters":1,"size":1024}`)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, resp)
	resp.Body.Close()
	for _, want := range []string{"cedard/cache/hits", "cedard/cache/misses", "cedard/pool/executions"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 && (f[0] == "cedard/cache/hits" || f[0] == "cedard/pool/executions") {
			if f[1] != "1" {
				t.Fatalf("%s = %s, want 1\n%s", f[0], f[1], text)
			}
		}
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(ok, "ok") {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, ok)
	}
}

// TestSmoke builds the real binary, starts it on a free port, and runs
// a sweep through it twice — the end-to-end path ci exercises.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "cedard")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	addr := "localhost:18633"
	cmd := exec.Command(bin, "-addr", addr, "-workers", "2")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	url := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(50 * time.Millisecond)
	}
	batch := `[{"workload":"vl","clusters":1,"size":1024},{"workload":"rk","clusters":1,"size":64}]`
	for round, wantCached := range []bool{false, true} {
		resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, body)
		}
		var resps []jobResponse
		if err := json.Unmarshal([]byte(body), &resps); err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, body)
		}
		for i, jr := range resps {
			if jr.Error != "" || jr.Result == nil {
				t.Fatalf("round %d job %d: %+v", round, i, jr)
			}
			if jr.Cached != wantCached {
				t.Fatalf("round %d job %d: cached=%v, want %v", round, i, jr.Cached, wantCached)
			}
		}
	}
}
