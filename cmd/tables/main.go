// Command tables regenerates every table and figure of the paper's
// evaluation section. With no flags it produces them all; individual
// exhibits can be selected.
//
//	tables -table 1        # Table 1 only
//	tables -fig 3          # Figure 3
//	tables -scal           # the Section 4.3 scalability study
//	tables -n 512          # larger rank-64 problem for Table 1
//	tables -quick          # reduced problem sizes everywhere
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/perfect"
	"repro/internal/tables"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1..6); 0 = all")
	fig := flag.Int("fig", 0, "regenerate one figure (3); 0 = per -table selection")
	scal := flag.Bool("scal", false, "regenerate only the scalability study")
	ppt5 := flag.Bool("ppt5", false, "run the scaled-machine PPT5 study (extension)")
	sizes := flag.Bool("sizes", false, "run the data-size stability study (extension)")
	n := flag.Int("n", 256, "rank-64 matrix order for Table 1 (paper: 1024)")
	scale := flag.Int("scale", 1, "problem-size multiplier for Table 2")
	quick := flag.Bool("quick", false, "reduced sizes for a fast pass")
	flag.Parse()

	if *quick {
		*n = 64
	}
	w := os.Stdout
	all := *table == 0 && *fig == 0 && !*scal && !*ppt5 && !*sizes
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	if all || *table == 1 {
		d, err := tables.RunTable1(*n)
		if err != nil {
			fail(err)
		}
		if err := d.Render(w); err != nil {
			fail(err)
		}
	}
	if all || *table == 2 {
		d, err := tables.RunTable2(*scale)
		if err != nil {
			fail(err)
		}
		if err := d.Render(w); err != nil {
			fail(err)
		}
	}
	if all || *table == 3 {
		d, err := tables.RunTable3(perfect.Rates{})
		if err != nil {
			fail(err)
		}
		if err := d.Render(w); err != nil {
			fail(err)
		}
	}
	if all || *table == 4 {
		d, err := tables.RunTable4(perfect.Rates{})
		if err != nil {
			fail(err)
		}
		if err := d.Render(w); err != nil {
			fail(err)
		}
	}
	if all || *table == 5 {
		if err := tables.RunTable5().Render(w); err != nil {
			fail(err)
		}
	}
	if all || *table == 6 {
		if err := tables.RunTable6().Render(w); err != nil {
			fail(err)
		}
	}
	if *fig == 1 || *fig == 2 {
		m, err := core.New(core.DefaultConfig())
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(w, "Figures 1 and 2: the Cedar and cluster organization (rendered from the assembled machine)")
		fmt.Fprintln(w, m.Topology())
	}
	if all || *fig == 3 {
		if err := tables.RunFigure3().Render(w); err != nil {
			fail(err)
		}
	}
	if all || *scal {
		d, err := tables.RunScalability(*quick)
		if err != nil {
			fail(err)
		}
		if err := d.Render(w); err != nil {
			fail(err)
		}
	}
	if all || *ppt5 {
		d, err := tables.RunPPT5(*quick)
		if err != nil {
			fail(err)
		}
		if err := d.Render(w); err != nil {
			fail(err)
		}
	}
	if all || *sizes {
		d, err := tables.RunSizeStability(perfect.Rates{})
		if err != nil {
			fail(err)
		}
		if err := d.Render(w); err != nil {
			fail(err)
		}
	}
}
