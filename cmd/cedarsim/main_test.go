package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles cedarsim once per test binary into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cedarsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestFlagValidation: nonsensical flag values must die up front as
// usage errors — exit status 2 with a message naming the flag — not
// surface as a confusing mid-run failure or, worse, a silent misrun.
func TestFlagValidation(t *testing.T) {
	bin := buildBinary(t)
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown engine", []string{"-engine", "warp"}, "unknown -engine"},
		{"zero sample interval", []string{"-sample-every", "0"}, "-sample-every"},
		{"negative sample interval", []string{"-sample-every", "-5"}, "-sample-every"},
		{"negative fault rate", []string{"-fault-rate", "-0.1"}, "-fault-rate"},
		{"fault rate above one", []string{"-fault-rate", "1.5"}, "-fault-rate"},
		{"negative workers", []string{"-par-workers", "-1"}, "-par-workers"},
		{"workers without parallel engine", []string{"-par-workers", "2"}, "-engine parallel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected a usage-error exit, got %v", err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("exit status %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr does not mention %q:\n%s", tc.want, stderr.String())
			}
		})
	}
}

// TestEngineFlagRuns: every -engine value must complete a small kernel
// and report the same cycle count (spot-checking the CLI wiring of the
// equivalence the engine suites prove exhaustively).
func TestEngineFlagRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the binary four times; skipped with -short")
	}
	bin := buildBinary(t)
	var cycles string
	for _, eng := range []string{"naive", "quiescent", "wake-cached", "parallel"} {
		cmd := exec.Command(bin, "-engine", eng, "-kernel", "vl", "-clusters", "1", "-n", "1024")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("-engine %s: %v\n%s", eng, err, out)
		}
		line := ""
		for _, l := range strings.Split(string(out), "\n") {
			if strings.Contains(l, "simulated time:") {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("-engine %s printed no simulated-time line:\n%s", eng, out)
		}
		if cycles == "" {
			cycles = line
		} else if line != cycles {
			t.Fatalf("-engine %s reported %q, earlier engines %q", eng, line, cycles)
		}
	}
}
