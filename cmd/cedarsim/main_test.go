package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles cedarsim once per test binary into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cedarsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestFlagValidation: nonsensical flag values must die up front as
// usage errors — exit status 2 with a message naming the flag — not
// surface as a confusing mid-run failure or, worse, a silent misrun.
func TestFlagValidation(t *testing.T) {
	bin := buildBinary(t)
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown engine", []string{"-engine", "warp"}, "-engine"},
		{"zero sample interval", []string{"-sample-every", "0"}, "-sample-every"},
		{"negative sample interval", []string{"-sample-every", "-5"}, "-sample-every"},
		{"negative fault rate", []string{"-fault-rate", "-0.1"}, "-fault-rate"},
		{"fault rate above one", []string{"-fault-rate", "1.5"}, "-fault-rate"},
		{"negative fault seed", []string{"-fault-seed", "-1"}, "-fault-seed"},
		{"unknown fault kind", []string{"-fault-kinds", "gamma-ray"}, "unknown kind"},
		{"fault kinds validated at rate zero", []string{"-fault-rate", "0", "-fault-kinds", "net-stall,typo"}, "unknown kind"},
		{"empty fault kinds entry", []string{"-fault-kinds", ","}, "no kinds named"},
		{"negative workers", []string{"-par-workers", "-1"}, "-par-workers"},
		{"workers without parallel engine", []string{"-par-workers", "2"}, `engine "parallel"`},
		{"negative problem size", []string{"-n", "-1"}, "size"},
		{"negative iterations", []string{"-iters", "-3"}, "iterations"},
		{"unknown mode", []string{"-mode", "warp"}, "-mode"},
		{"unknown kernel", []string{"-kernel", "linpack"}, "-kernel"},
		{"unknown topology", []string{"-topology", "torus"}, "-topology"},
		{"clusters beyond topology", []string{"-clusters", "5"}, "-clusters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected a usage-error exit, got %v", err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("exit status %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr does not mention %q:\n%s", tc.want, stderr.String())
			}
		})
	}
}

// TestEngineFlagRuns: every -engine value must complete a small kernel
// and report the same cycle count (spot-checking the CLI wiring of the
// equivalence the engine suites prove exhaustively).
func TestEngineFlagRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the binary four times; skipped with -short")
	}
	bin := buildBinary(t)
	var cycles string
	for _, eng := range []string{"naive", "quiescent", "wake-cached", "parallel"} {
		cmd := exec.Command(bin, "-engine", eng, "-kernel", "vl", "-clusters", "1", "-n", "1024")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("-engine %s: %v\n%s", eng, err, out)
		}
		line := ""
		for _, l := range strings.Split(string(out), "\n") {
			if strings.Contains(l, "simulated time:") {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("-engine %s printed no simulated-time line:\n%s", eng, out)
		}
		if cycles == "" {
			cycles = line
		} else if line != cycles {
			t.Fatalf("-engine %s reported %q, earlier engines %q", eng, line, cycles)
		}
	}
}

// TestFaultKindsFilterRuns: a filtered faulted run completes and its
// census table reports the cluster-internal kinds — the filter reaches
// the injector, and filtered-out kinds stay at zero.
func TestFaultKindsFilterRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the binary; skipped with -short")
	}
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-kernel", "tm", "-clusters", "1", "-n", "2048",
		"-fault-rate", "0.5", "-fault-kinds", "cache-bank-busy,bus-stall,ce-drop", "-noprefetch")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("faulted run failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "Injected faults") {
		t.Fatalf("no fault census table in output:\n%s", text)
	}
	for _, row := range []string{"cache-bank-busy", "bus-stall", "ce-drop"} {
		if !strings.Contains(text, row) {
			t.Fatalf("census table missing a %q row:\n%s", row, text)
		}
	}
	// Filtered-out kinds must report zero injections.
	for _, l := range strings.Split(text, "\n") {
		f := strings.Fields(l)
		if len(f) >= 2 && (f[0] == "net-stall" || f[0] == "mem-busy" || f[0] == "check-stop") {
			if f[len(f)-1] != "0" {
				t.Fatalf("kind %s injected despite the filter: %q", f[0], l)
			}
		}
	}
}
