// Command cedarsim runs a computational kernel on a configurable
// simulated Cedar and reports the paper's performance metrics.
//
//	cedarsim -kernel rk -mode cache -clusters 4 -n 256
//	cedarsim -kernel cg -clusters 2 -n 8192 -iters 5
//	cedarsim -kernel vl -clusters 1 -n 8192 -noprefetch
//	cedarsim -kernel tm -clusters 4 -n 4096 -probe
//	cedarsim -kernel bdna -clusters 4 -iters 3
//	cedarsim -kernel rk -trace-out trace.json -sample-every 500
//
// Kernels are looked up in the workload registry by name — rk (rank-64
// update), vl (vector load), tm (tridiagonal matrix-vector multiply),
// cg (conjugate gradient), bdna (formatted-I/O molecular dynamics),
// mg3d (raw-I/O seismic migration) — list any unknown name to see what
// is registered. Modes apply to rk: nopref, pref, cache (Table 1's
// three versions).
//
// The flags assemble a job.Spec — the same serializable job
// description cedard accepts over HTTP — and hand it to the shared
// runner; cedarsim is one door into the one Spec→runner path. The
// -engine flag selects the simulation engine path (naive, quiescent,
// wake-cached (default) or parallel; results are bit-identical on
// every path), -topology picks the machine configuration (cedar, or
// the PPT5 scaled-up machine), and any nonsensical value exits with
// status 2 like a malformed flag.
//
// Telemetry: -metrics-out dumps the final metrics registry,
// -trace-out writes a Chrome trace_event JSON timeline (open it at
// https://ui.perfetto.dev or chrome://tracing), -sample-every sets the
// sampling interval, -flame prints the text activity summary, -cpi
// prints the per-CE and per-phase CPI stack tables, -attr-out writes
// the per-interval cycle-attribution series as CSV, and -pprof serves
// net/http/pprof plus expvar runtime metrics for profiling the
// simulator itself.
package main

import (
	"errors"
	_ "expvar" // /debug/vars runtime metrics on the -pprof server
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the -pprof server
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/job/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	kernel := flag.String("kernel", "rk", "workload name (see the registry listing on an unknown name)")
	mode := flag.String("mode", "pref", "rk memory mode: nopref, pref, cache")
	clusters := flag.Int("clusters", 4, "clusters (cedar topology: 1..4, 8 CEs each; scaled: up to 64)")
	topology := flag.String("topology", "cedar", "machine configuration: cedar (as built) or scaled (PPT5 scaled-up)")
	n := flag.Int("n", 256, "problem size (matrix order for rk, vector length otherwise; 0 = kernel default)")
	iters := flag.Int("iters", 5, "iterations / timesteps (cg, bdna, mg3d)")
	noPrefetch := flag.Bool("noprefetch", false, "disable prefetching (vl, tm, cg)")
	probe := flag.Bool("probe", true, "attach the performance monitor to CE 0's prefetch unit")
	metricsOut := flag.String("metrics-out", "", "write the final metrics registry to this file")
	traceOut := flag.String("trace-out", "", "write a Perfetto-loadable trace_event JSON timeline to this file")
	sampleEvery := flag.Int64("sample-every", 2000, "telemetry sampling interval in cycles")
	flame := flag.Bool("flame", false, "print the flamegraph-style activity summary")
	cpi := flag.Bool("cpi", false, "print the per-CE and per-phase CPI stack tables")
	attrOut := flag.String("attr-out", "", "write the per-interval per-CE cycle-attribution time series to this CSV file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address (e.g. localhost:6060)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection schedule seed (non-negative)")
	faultRate := flag.Float64("fault-rate", 0, "mean injected faults per 10k cycles (0 disables fault injection)")
	faultKinds := flag.String("fault-kinds", "", "comma-separated fault kinds to inject (empty = all; known: "+strings.Join(fault.KindNames(), ",")+")")
	engine := flag.String("engine", "wake-cached", "engine path: naive, quiescent, wake-cached, parallel")
	parWorkers := flag.Int("par-workers", 0, "phase-2 goroutines for -engine parallel (0 = min(NumCPU, clusters))")
	flag.Parse()

	// The only validation done at flag level is what the Spec cannot
	// express: driver-local telemetry settings and the shape of the
	// -fault-kinds list. Everything else is the Spec's job, so cedarsim
	// and cedard reject exactly the same inputs.
	if *sampleEvery <= 0 {
		usageError(fmt.Errorf("-sample-every %d: the sampling interval must be positive", *sampleEvery))
	}
	var kindFilter []string
	if *faultKinds != "" {
		for _, k := range strings.Split(*faultKinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kindFilter = append(kindFilter, k)
			}
		}
		if len(kindFilter) == 0 {
			usageError(fmt.Errorf("-fault-kinds %q: no kinds named (known: %s)", *faultKinds, strings.Join(fault.KindNames(), ",")))
		}
		// Validate the filter even when -fault-rate leaves injection off:
		// a typo should fail here, not pass silently until someone turns
		// the rate up. (The Spec drops an inert filter before validating.)
		scratch := fault.DefaultConfig(0)
		if err := scratch.EnableOnly(kindFilter); err != nil {
			usageError(err)
		}
	}

	spec := job.Spec{
		Workload:   *kernel,
		Mode:       *mode,
		Prefetch:   job.Bool(!*noPrefetch),
		Probe:      job.Bool(*probe),
		Iterations: *iters,
		Size:       *n,
		Clusters:   *clusters,
		Topology:   *topology,
		Engine:     *engine,
		ParWorkers: *parWorkers,
		FaultSeed:  *faultSeed,
		FaultRate:  *faultRate,
		FaultKinds: kindFilter,
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cedarsim: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/ (runtime metrics at /debug/vars)\n", *pprofAddr)
	}

	jb, err := runner.Prepare(spec)
	if err != nil {
		var verr *job.ValidationError
		if errors.As(err, &verr) {
			usageError(fmt.Errorf("%s: invalid %s: %s", flagFor(verr.Field), verr.Field, verr.Reason))
		}
		fail(err)
	}
	m := jb.Machine

	// Telemetry is opt-in: without these flags the run never samples and
	// pays nothing.
	var att workload.Attachments
	var sampler *telemetry.Sampler
	if *metricsOut != "" || *traceOut != "" || *flame || *cpi || *attrOut != "" {
		sampler = m.NewSampler(sim.Cycle(*sampleEvery))
		att.Phases = sampler
	}

	res, err := jb.Execute(att)
	if err != nil {
		// Param-level failures surface as usage errors here too (the
		// registry validates workload.Params on every execution).
		var perr *workload.ParamError
		if errors.As(err, &perr) {
			usageError(perr)
		}
		fail(err)
	}
	for _, note := range res.Notes {
		fmt.Println(note)
	}
	fmt.Println(res)
	fmt.Printf("simulated time: %.3f ms (%d cycles at 170 ns)\n",
		sim.Cycle(res.Cycles).Seconds()*1e3, res.Cycles)
	fmt.Printf("network: fwd injected=%d delivered=%d; rev injected=%d delivered=%d\n",
		m.Fwd.Injected, m.Fwd.Delivered, m.Rev.Injected, m.Rev.Delivered)
	for _, tbl := range res.Tables {
		fmt.Print(tbl)
	}

	if sampler == nil {
		return
	}
	sampler.Final()
	if *flame {
		if err := m.MachineFlame(sampler).Render(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *cpi {
		if err := m.CPIStack().Render(os.Stdout); err != nil {
			fail(err)
		}
		if err := m.PhaseCPIStack(sampler).Render(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *attrOut != "" {
		f, err := os.Create(*attrOut)
		if err != nil {
			fail(err)
		}
		if err := m.WriteAttrCSV(f, sampler); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("attr: wrote per-interval attribution for %d CEs to %s\n", m.NumCEs(), *attrOut)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(m.Registry().Dump()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("metrics: wrote %d metrics to %s\n", m.Registry().Len(), *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteTrace(f, sampler, nil); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace: wrote %d samples to %s (open at https://ui.perfetto.dev)\n",
			len(sampler.Samples()), *traceOut)
	}
}

// flagFor maps a job.Spec field name (its serialized form) back to the
// cedarsim flag that set it, so usage errors name the flag the user
// actually typed.
func flagFor(field string) string {
	m := map[string]string{
		"workload":    "-kernel",
		"mode":        "-mode",
		"size":        "-n",
		"iterations":  "-iters",
		"clusters":    "-clusters",
		"topology":    "-topology",
		"engine":      "-engine",
		"par_workers": "-par-workers",
		"fault_seed":  "-fault-seed",
		"fault_rate":  "-fault-rate",
		"fault_kinds": "-fault-kinds",
	}
	if f, ok := m[field]; ok {
		return f
	}
	return field
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cedarsim:", err)
	os.Exit(1)
}

// usageError reports a bad flag value the way flag.Parse reports a
// malformed one: message plus usage to stderr, exit status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "cedarsim:", err)
	flag.Usage()
	os.Exit(2)
}
