// Command cedarsim runs a computational kernel on a configurable
// simulated Cedar and reports the paper's performance metrics.
//
//	cedarsim -kernel rk -mode cache -clusters 4 -n 256
//	cedarsim -kernel cg -clusters 2 -n 8192 -iters 5
//	cedarsim -kernel vl -clusters 1 -n 8192 -noprefetch
//	cedarsim -kernel tm -clusters 4 -n 4096 -probe
//	cedarsim -kernel bdna -clusters 4 -iters 3
//	cedarsim -kernel rk -trace-out trace.json -sample-every 500
//
// Kernels are looked up in the workload registry by name — rk (rank-64
// update), vl (vector load), tm (tridiagonal matrix-vector multiply),
// cg (conjugate gradient), bdna (formatted-I/O molecular dynamics),
// mg3d (raw-I/O seismic migration) — list any unknown name to see what
// is registered. Modes apply to rk: nopref, pref, cache (Table 1's
// three versions).
//
// The -engine flag selects the simulation engine path — naive,
// quiescent, wake-cached (default) or parallel; results are
// bit-identical on every path. -engine parallel runs each cluster's
// components on their own goroutine (budget set by -par-workers) on
// hosts with the cores to use them.
//
// Telemetry: -metrics-out dumps the final metrics registry,
// -trace-out writes a Chrome trace_event JSON timeline (open it at
// https://ui.perfetto.dev or chrome://tracing), -sample-every sets the
// sampling interval, -flame prints the text activity summary, -cpi
// prints the per-CE and per-phase CPI stack tables, -attr-out writes
// the per-interval cycle-attribution series as CSV, and -pprof serves
// net/http/pprof plus expvar runtime metrics for profiling the
// simulator itself.
package main

import (
	_ "expvar" // /debug/vars runtime metrics on the -pprof server
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the -pprof server
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	_ "repro/internal/kernels" // populates the workload registry
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	kernel := flag.String("kernel", "rk", "workload name (see the registry listing on an unknown name)")
	mode := flag.String("mode", "pref", "rk memory mode: nopref, pref, cache")
	clusters := flag.Int("clusters", 4, "clusters (1..4; 8 CEs each)")
	n := flag.Int("n", 256, "problem size (matrix order for rk, vector length otherwise; 0 = kernel default)")
	iters := flag.Int("iters", 5, "iterations / timesteps (cg, bdna, mg3d)")
	noPrefetch := flag.Bool("noprefetch", false, "disable prefetching (vl, tm, cg)")
	probe := flag.Bool("probe", true, "attach the performance monitor to CE 0's prefetch unit")
	metricsOut := flag.String("metrics-out", "", "write the final metrics registry to this file")
	traceOut := flag.String("trace-out", "", "write a Perfetto-loadable trace_event JSON timeline to this file")
	sampleEvery := flag.Int64("sample-every", 2000, "telemetry sampling interval in cycles")
	flame := flag.Bool("flame", false, "print the flamegraph-style activity summary")
	cpi := flag.Bool("cpi", false, "print the per-CE and per-phase CPI stack tables")
	attrOut := flag.String("attr-out", "", "write the per-interval per-CE cycle-attribution time series to this CSV file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address (e.g. localhost:6060)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection schedule seed (non-negative)")
	faultRate := flag.Float64("fault-rate", 0, "mean injected faults per 10k cycles (0 disables fault injection)")
	faultKinds := flag.String("fault-kinds", "", "comma-separated fault kinds to inject (empty = all; known: "+strings.Join(fault.KindNames(), ",")+")")
	engine := flag.String("engine", "wake-cached", "engine path: naive, quiescent, wake-cached, parallel")
	parWorkers := flag.Int("par-workers", 0, "phase-2 goroutines for -engine parallel (0 = min(NumCPU, clusters))")
	flag.Parse()

	// Validate up front: a nonsensical flag is a usage error (exit 2,
	// like flag parsing itself), not a mid-run failure.
	engineMode, engineOK := engineModes[*engine]
	switch {
	case !engineOK:
		usageError(fmt.Errorf("unknown -engine %q (naive, quiescent, wake-cached or parallel)", *engine))
	case *sampleEvery <= 0:
		usageError(fmt.Errorf("-sample-every %d: the sampling interval must be positive", *sampleEvery))
	case *faultRate < 0 || *faultRate > 1:
		usageError(fmt.Errorf("-fault-rate %g: must be in [0,1] faults per 10k cycles", *faultRate))
	case *faultSeed < 0:
		usageError(fmt.Errorf("-fault-seed %d: the schedule seed cannot be negative", *faultSeed))
	case *parWorkers < 0:
		usageError(fmt.Errorf("-par-workers %d: the worker budget cannot be negative", *parWorkers))
	case *parWorkers > 0 && engineMode != sim.ModeWakeCachedParallel:
		usageError(fmt.Errorf("-par-workers is only meaningful with -engine parallel"))
	}
	// -fault-kinds is validated even when -fault-rate leaves injection
	// off: a typo in the filter should fail here, not pass silently
	// until someone turns the rate up.
	var kindFilter []string
	if *faultKinds != "" {
		for _, k := range strings.Split(*faultKinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kindFilter = append(kindFilter, k)
			}
		}
		scratch := fault.DefaultConfig(0)
		if err := scratch.EnableOnly(kindFilter); err != nil {
			usageError(err)
		}
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cedarsim: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/ (runtime metrics at /debug/vars)\n", *pprofAddr)
	}

	cfg := core.ConfigClusters(*clusters)
	cfg.EngineMode = engineMode
	cfg.ParWorkers = *parWorkers
	if *faultRate > 0 {
		cfg.Fault = fault.DefaultConfig(uint64(*faultSeed))
		cfg.Fault.MeanInterval = sim.Cycle(10000 / *faultRate)
		if kindFilter != nil {
			if err := cfg.Fault.EnableOnly(kindFilter); err != nil {
				usageError(err) // unreachable: validated above
			}
		}
	}
	m, err := core.New(cfg)
	if err != nil {
		fail(err)
	}
	// Telemetry is opt-in: without these flags the machine never builds
	// a registry and the run pays nothing.
	var sampler *telemetry.Sampler
	if *metricsOut != "" || *traceOut != "" || *flame || *cpi || *attrOut != "" {
		sampler = m.NewSampler(sim.Cycle(*sampleEvery))
	}

	var km workload.Mode
	switch *mode {
	case "nopref":
		km = workload.GMNoPrefetch
	case "pref":
		km = workload.GMPrefetch
	case "cache":
		km = workload.GMCache
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	opts := workload.Options{
		Mode:       km,
		Prefetch:   !*noPrefetch,
		Probe:      *probe,
		Iterations: *iters,
		Size:       *n,
	}
	if sampler != nil {
		opts.Phases = sampler
	}
	res, err := workload.Run(*kernel, m, opts)
	if err != nil {
		fail(err)
	}
	for _, note := range res.Notes {
		fmt.Println(note)
	}
	fmt.Println(res)
	fmt.Printf("simulated time: %.3f ms (%d cycles at 170 ns)\n",
		res.Cycles.Seconds()*1e3, res.Cycles)
	fmt.Printf("network: fwd injected=%d delivered=%d; rev injected=%d delivered=%d\n",
		m.Fwd.Injected, m.Fwd.Delivered, m.Rev.Injected, m.Rev.Delivered)
	fmt.Print(m.Utilization())
	if t := ipTable(m); t != nil {
		if err := t.Render(os.Stdout); err != nil {
			fail(err)
		}
	}
	if m.FaultInj != nil {
		if err := m.FaultInj.SummaryTable().Render(os.Stdout); err != nil {
			fail(err)
		}
	}

	if sampler == nil {
		return
	}
	sampler.Final()
	if *flame {
		if err := m.MachineFlame(sampler).Render(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *cpi {
		if err := m.CPIStack().Render(os.Stdout); err != nil {
			fail(err)
		}
		if err := m.PhaseCPIStack(sampler).Render(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *attrOut != "" {
		f, err := os.Create(*attrOut)
		if err != nil {
			fail(err)
		}
		if err := m.WriteAttrCSV(f, sampler); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("attr: wrote per-interval attribution for %d CEs to %s\n", m.NumCEs(), *attrOut)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(m.Registry().Dump()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("metrics: wrote %d metrics to %s\n", m.Registry().Len(), *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteTrace(f, sampler, nil); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace: wrote %d samples to %s (open at https://ui.perfetto.dev)\n",
			len(sampler.Samples()), *traceOut)
	}
}

// ipTable renders the per-cluster interactive-processor I/O counters,
// or nil when the run did no I/O.
func ipTable(m *core.Machine) *report.Table {
	var total int64
	for _, clu := range m.Clusters {
		total += clu.IPs.Requests
	}
	if total == 0 {
		return nil
	}
	t := report.NewTable("Cluster I/O (interactive processors)",
		"ip", "requests", "words", "busy cycles", "avg wait")
	for i, clu := range m.Clusters {
		ip := clu.IPs
		avg := "-"
		if ip.Completions > 0 {
			avg = fmt.Sprintf("%.0f", float64(ip.WaitCycles)/float64(ip.Completions))
		}
		t.AddRow(fmt.Sprintf("ip%d", i), fmt.Sprint(ip.Requests),
			fmt.Sprint(ip.WordsMoved), fmt.Sprint(ip.BusyCycles), avg)
	}
	return t
}

// engineModes maps the -engine flag to the engine path. Results are
// bit-identical across all four; the non-default paths exist for the
// equivalence tests, benchmarking and multi-core hosts.
var engineModes = map[string]sim.EngineMode{
	"naive":       sim.ModeNaive,
	"quiescent":   sim.ModeQuiescent,
	"wake-cached": sim.ModeWakeCached,
	"parallel":    sim.ModeWakeCachedParallel,
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cedarsim:", err)
	os.Exit(1)
}

// usageError reports a bad flag value the way flag.Parse reports a
// malformed one: message plus usage to stderr, exit status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "cedarsim:", err)
	flag.Usage()
	os.Exit(2)
}
