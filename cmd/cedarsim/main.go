// Command cedarsim runs a computational kernel on a configurable
// simulated Cedar and reports the paper's performance metrics.
//
//	cedarsim -kernel rk -mode cache -clusters 4 -n 256
//	cedarsim -kernel cg -clusters 2 -n 8192 -iters 5
//	cedarsim -kernel vl -clusters 1 -n 8192 -noprefetch
//	cedarsim -kernel tm -clusters 4 -n 4096 -probe
//
// Kernels: rk (rank-64 update), vl (vector load), tm (tridiagonal
// matrix-vector multiply), cg (conjugate gradient). Modes apply to rk:
// nopref, pref, cache (Table 1's three versions).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/kernels"
)

func main() {
	kernel := flag.String("kernel", "rk", "kernel: rk, vl, tm, cg")
	mode := flag.String("mode", "pref", "rk memory mode: nopref, pref, cache")
	clusters := flag.Int("clusters", 4, "clusters (1..4; 8 CEs each)")
	n := flag.Int("n", 256, "problem size (matrix order for rk, vector length otherwise)")
	iters := flag.Int("iters", 5, "CG iterations")
	noPrefetch := flag.Bool("noprefetch", false, "disable prefetching (vl, tm, cg)")
	probe := flag.Bool("probe", true, "attach the performance monitor to CE 0's prefetch unit")
	flag.Parse()

	m, err := core.New(core.ConfigClusters(*clusters))
	if err != nil {
		fail(err)
	}
	usePrefetch := !*noPrefetch

	var res kernels.Result
	switch *kernel {
	case "rk":
		var km kernels.Mode
		switch *mode {
		case "nopref":
			km = kernels.GMNoPrefetch
		case "pref":
			km = kernels.GMPrefetch
		case "cache":
			km = kernels.GMCache
		default:
			fail(fmt.Errorf("unknown mode %q", *mode))
		}
		in := kernels.NewRank64Input(*n)
		res, err = kernels.Rank64(m, in, km, *probe)
	case "vl":
		res, err = kernels.VectorLoad(m, *n, usePrefetch, *probe)
	case "tm":
		res, err = kernels.TriMatVec(m, *n, usePrefetch, *probe)
	case "cg":
		rt := cedarfort.New(m, cedarfort.DefaultConfig())
		p := kernels.NewCGProblem(*n, 64)
		var cg kernels.CGResult
		cg, err = kernels.CG(m, rt, p, *iters, usePrefetch, *probe)
		if err == nil {
			fmt.Printf("residual after %d iterations: %.3e\n", cg.Iterations, cg.FinalResidual)
		}
		res = cg.Result
	default:
		fail(fmt.Errorf("unknown kernel %q", *kernel))
	}
	if err != nil {
		fail(err)
	}
	fmt.Println(res)
	fmt.Printf("simulated time: %.3f ms (%d cycles at 170 ns)\n",
		res.Cycles.Seconds()*1e3, res.Cycles)
	fmt.Printf("network: fwd injected=%d delivered=%d; rev injected=%d delivered=%d\n",
		m.Fwd.Injected, m.Fwd.Delivered, m.Rev.Injected, m.Rev.Delivered)
	fmt.Print(m.Utilization())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cedarsim:", err)
	os.Exit(1)
}
