// Command perfect evaluates the calibrated Perfect Benchmarks models:
// the full Table 3 and Table 4, a single code in detail, or the suite
// under modified machine rates (for what-if studies such as "how would
// the results change with a 2x faster global network?").
//
//	perfect                       # Tables 3 and 4
//	perfect -code DYFESM          # one code, all variants
//	perfect -prefrate 12          # what-if: faster prefetched rate
//	perfect -claimslow 60e-6      # what-if: costlier non-Cedar claims
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/perfect"
	"repro/internal/report"
	"repro/internal/tables"
)

func main() {
	code := flag.String("code", "", "show one code in detail")
	prefRate := flag.Float64("prefrate", 0, "override prefetched global vector MFLOPS/CE")
	localRate := flag.Float64("localrate", 0, "override cluster-local vector MFLOPS/CE")
	claimSlow := flag.Float64("claimslow", 0, "override non-Cedar-sync claim seconds")
	flag.Parse()

	r := perfect.DefaultRates()
	if *prefRate > 0 {
		r.VectorGlobalPref = *prefRate
	}
	if *localRate > 0 {
		r.VectorLocal = *localRate
	}
	if *claimSlow > 0 {
		r.ClaimSlowSeconds = *claimSlow
	}

	if *code != "" {
		showCode(*code, r)
		return
	}
	t3, err := tables.RunTable3(r)
	if err != nil {
		fail(err)
	}
	if err := t3.Render(os.Stdout); err != nil {
		fail(err)
	}
	t4, err := tables.RunTable4(r)
	if err != nil {
		fail(err)
	}
	if err := t4.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func showCode(name string, r perfect.Rates) {
	suite, err := perfect.NewSuite(r)
	if err != nil {
		fail(err)
	}
	p := perfect.ByName(suite, name)
	if p == nil {
		fail(fmt.Errorf("unknown code %q", name))
	}
	fmt.Printf("%s: serial %.1f s, %.0f Mflop (%.2f MFLOPS scalar)\n",
		p.Name, p.SerialSeconds, p.Mflop, p.ScalarMFLOPS)
	fmt.Printf("decomposition: serial residual %.1f%%, prefetch-sensitive %.0f Mflop, %.0f claims, P_eff %.0f\n\n",
		p.SerialFrac*100, p.GlobalVectorMflop, p.Claims, p.EffParallelism)
	t := report.NewTable("variants", "variant", "time (s)", "improvement")
	for _, v := range []perfect.Variant{perfect.Serial, perfect.KAP, perfect.Auto,
		perfect.AutoNoSync, perfect.AutoNoPref, perfect.Hand} {
		sec, err := p.Time(v, r)
		if errors.Is(err, perfect.ErrNoVariant) {
			t.AddRow(v.String(), "NA", "")
			continue
		}
		if err != nil {
			fail(err)
		}
		t.AddRow(v.String(), report.F(sec), report.F(p.SerialSeconds/sec))
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
	for i := range p.Hands {
		h := &p.Hands[i]
		fmt.Printf("hand variant %-16s modeled %6.1f s (paper %6.1f s): %s\n",
			h.Name, p.HandTime(h, r), h.TargetSeconds, h.Description)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "perfect:", err)
	os.Exit(1)
}
