// Package repro is a Go reproduction of "The Cedar System and an Initial
// Performance Study" (Kuck et al., CSRD, University of Illinois): a
// cycle-approximate simulator of the Cedar cluster-based shared-memory
// multiprocessor, a CEDAR FORTRAN-style runtime, the paper's
// computational kernels and Perfect Benchmark workload models, the
// comparator machine models, and the Practical Parallelism methodology —
// regenerating every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// hardware-to-simulation substitutions, and EXPERIMENTS.md for
// paper-versus-measured results. The benchmark harness in bench_test.go
// regenerates each exhibit:
//
//	go test -bench=Table1 -benchtime=1x
//	go run ./cmd/tables            # everything at once
package repro
