# Developer entry points. `make ci` is what a pipeline should run.

GO ?= go

.PHONY: all build test vet race bench bench-engine ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator is single-goroutine per machine, but tests run machines
# concurrently; -race guards the harness and any future parallelism.
race:
	$(GO) test -race ./...

# Every table/figure of the paper, printed once each.
bench:
	$(GO) test -bench . -benchtime 1x .

# Naive vs quiescence-aware engine on the DOALL-startup-heavy workload;
# the ns/op ratio is the fast path's wall-clock win (results are
# bit-identical between the two sub-benchmarks).
bench-engine:
	$(GO) test -run NONE -bench BenchmarkEngineQuiescence -benchtime 10x .

ci: vet test race bench-engine
