# Developer entry points. `make ci` is what a pipeline should run.

GO ?= go

.PHONY: all build test vet race race-fault race-io race-attr race-parallel race-cedard smoke-cedard bench bench-engine bench-telemetry fuzz-equivalence fault-soak cover ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator is single-goroutine per machine, but tests run machines
# concurrently; -race guards the harness and any future parallelism.
race:
	$(GO) test -race ./...

# Every table/figure of the paper, printed once each.
bench:
	$(GO) test -bench . -benchtime 1x .

# Naive vs quiescent vs wake-cached vs parallel engine on the
# DOALL-startup-heavy workload, plus the cluster-parallel benchmark
# (compute-dominated, 4- and 16-cluster); the ns/op ratios are the fast
# paths' wall-clock wins (results are bit-identical across every
# sub-benchmark). All min-of-3 ns/op values land in BENCH_engine.json
# for pipelines to diff. Gates: wake-cached ns/op must not regress more
# than 10% versus the committed baseline (skipped when none exists),
# and on hosts with 2+ CPUs parallel-4cl must beat wake-cached-4cl by
# at least 1.8x (on a single CPU the pool never forks, so the speedup
# is unmeasurable and the gate is skipped — the rows are still
# emitted).
bench-engine:
	@base=$$(sed -n 's/.*"wake-cached_ns_per_op": *\([0-9]*\).*/\1/p' BENCH_engine.json 2>/dev/null); \
	$(GO) test -run NONE -bench 'BenchmarkEngineQuiescence|BenchmarkEngineParallel' -benchtime 10x -count 3 . | tee bench-engine.out && \
	awk 'BEGIN { n = 0 } \
	  $$1 ~ /^BenchmarkEngine(Quiescence|Parallel)\// { \
	    split($$1, a, "/"); sub(/-[0-9]+$$/, "", a[2]); \
	    if (a[2] in idx) { i = idx[a[2]]; if ($$3 + 0 < ns[i] + 0) ns[i] = $$3 } \
	    else { idx[a[2]] = n; name[n] = a[2]; ns[n] = $$3; n++ } } \
	  END { \
	    if (n == 0) { print "bench-engine: no benchmark lines parsed" > "/dev/stderr"; exit 1 } \
	    print "{"; \
	    for (i = 0; i < n; i++) \
	      printf "  \"%s_ns_per_op\": %s%s\n", name[i], ns[i], (i < n-1 ? "," : ""); \
	    print "}" }' bench-engine.out > BENCH_engine.json && \
	rm -f bench-engine.out && \
	cat BENCH_engine.json && \
	new=$$(sed -n 's/.*"wake-cached_ns_per_op": *\([0-9]*\).*/\1/p' BENCH_engine.json); \
	if [ -n "$$base" ] && [ -n "$$new" ] && [ "$$new" -gt $$(( base + base / 10 )) ]; then \
	  echo "bench-engine: wake-cached $$new ns/op regressed >10% vs committed baseline $$base ns/op" >&2; \
	  exit 1; \
	elif [ -n "$$base" ]; then \
	  echo "bench-engine: wake-cached $$new ns/op within 10% of baseline $$base ns/op"; \
	fi; \
	wc4=$$(sed -n 's/.*"wake-cached-4cl_ns_per_op": *\([0-9]*\).*/\1/p' BENCH_engine.json); \
	par4=$$(sed -n 's/.*"parallel-4cl_ns_per_op": *\([0-9]*\).*/\1/p' BENCH_engine.json); \
	ncpu=$$(nproc 2>/dev/null || echo 1); \
	if [ "$$ncpu" -lt 2 ]; then \
	  echo "bench-engine: single-CPU host, parallel >=1.8x gate skipped (parallel-4cl $$par4 ns/op vs wake-cached-4cl $$wc4 ns/op measures bookkeeping only)"; \
	elif [ -n "$$wc4" ] && [ -n "$$par4" ] && [ $$(( par4 * 18 )) -gt $$(( wc4 * 10 )) ]; then \
	  echo "bench-engine: parallel-4cl $$par4 ns/op is not >=1.8x faster than wake-cached-4cl $$wc4 ns/op" >&2; \
	  exit 1; \
	else \
	  echo "bench-engine: parallel-4cl $$par4 ns/op vs wake-cached-4cl $$wc4 ns/op (>=1.8x gate passed)"; \
	fi

# Replays the seeded randomized stimulus schedule (the seed is pinned in
# fuzz_test.go, so every run sees the same stimuli) on all three engine
# paths at 1/2/4-cluster scale and diffs fingerprints and trace bytes —
# once fault-free and once with the seeded fault injector interleaving
# network stalls/drops, memory busy/degrade windows and CE check-stops
# into the same schedule.
fuzz-equivalence:
	$(GO) test ./internal/kernels/ -run 'TestFuzzScheduleEngineEquivalence|TestFuzzScheduleFaultEngineEquivalence' -v

# Race pass focused on the fault-injection surfaces (injector, engine,
# networks): the layers the fault PR touches most, plus the CE
# inflight-reissue path raced under the parallel engine with the worker
# pool forced on (the chaos soak's parallel-reissue case).
race-fault:
	$(GO) test -race ./internal/fault/ ./internal/sim/ ./internal/network/
	$(GO) test -race -run TestChaosSoakParallelReissue ./internal/kernels/

# Chaos soak: seeded sweep of (fault-kind subsets x registry workloads
# x all four engine modes) asserting completion, cross-mode fingerprint
# equality and a balanced fault census — the standing system-wide fault
# invariant. The vacuity guard keeps the new cluster-internal kinds
# actually firing.
fault-soak:
	$(GO) test -run 'TestChaosSoak' -count=1 ./internal/kernels/

# Race pass focused on the I/O path (TestIO* across the packages the
# isa.IO -> CE -> IP -> xylem park/redispatch chain crosses).
race-io:
	$(GO) test -race -run IO ./internal/kernels/ ./internal/cluster/ ./internal/xylem/ ./internal/cedarfort/

# Telemetry disabled vs enabled on the engine benchmark workload: "off"
# must stay within noise of the pre-telemetry engine (the registry is
# never built); "on" carries the sampling plus the cycle-attribution
# counters. Min-of-3 ns/op for both land in BENCH_telemetry.json, and
# the target fails if "on" regresses more than 10% versus the committed
# baseline (skipped when no baseline exists yet).
bench-telemetry:
	@base=$$(sed -n 's/.*"on_ns_per_op": *\([0-9]*\).*/\1/p' BENCH_telemetry.json 2>/dev/null); \
	$(GO) test -run NONE -bench BenchmarkTelemetryOverhead -benchtime 10x -count 3 . | tee bench-telemetry.out && \
	awk 'BEGIN { n = 0 } \
	  $$1 ~ /^BenchmarkTelemetryOverhead\// { \
	    split($$1, a, "/"); sub(/-[0-9]+$$/, "", a[2]); \
	    if (a[2] in idx) { i = idx[a[2]]; if ($$3 + 0 < ns[i] + 0) ns[i] = $$3 } \
	    else { idx[a[2]] = n; name[n] = a[2]; ns[n] = $$3; n++ } } \
	  END { \
	    if (n == 0) { print "bench-telemetry: no benchmark lines parsed" > "/dev/stderr"; exit 1 } \
	    print "{"; \
	    for (i = 0; i < n; i++) \
	      printf "  \"%s_ns_per_op\": %s%s\n", name[i], ns[i], (i < n-1 ? "," : ""); \
	    print "}" }' bench-telemetry.out > BENCH_telemetry.json && \
	rm -f bench-telemetry.out && \
	cat BENCH_telemetry.json && \
	new=$$(sed -n 's/.*"on_ns_per_op": *\([0-9]*\).*/\1/p' BENCH_telemetry.json); \
	if [ -n "$$base" ] && [ -n "$$new" ] && [ "$$new" -gt $$(( base + base / 10 )) ]; then \
	  echo "bench-telemetry: sampling-on $$new ns/op regressed >10% vs committed baseline $$base ns/op" >&2; \
	  exit 1; \
	elif [ -n "$$base" ]; then \
	  echo "bench-telemetry: sampling-on $$new ns/op within 10% of baseline $$base ns/op"; \
	fi

# Race pass focused on the cluster-parallel engine: the sim package's
# fork/join, worker-pool and async-wake surfaces (the pool tests force
# GOMAXPROCS up so the goroutines really interleave even on one CPU),
# plus the kernel determinism suites that drive ModeWakeCachedParallel
# through the full machine.
race-parallel:
	$(GO) test -race -count=2 -run 'TestPar|TestWakeAsync|TestConfigure' ./internal/sim/
	$(GO) test -race -run 'TestDeterminismVectorLoad|TestDeterminismCG' ./internal/kernels/

# Race pass focused on the cycle-attribution surfaces: the accounting
# invariant sweeps, the stack/flame/CSV views and the sampler's phase
# stamping.
race-attr:
	$(GO) test -race -run 'Attr|Acct|CPIStack|MachineFlame|IntervalPhase' ./internal/kernels/ ./internal/ce/ ./internal/telemetry/

# Race pass focused on the job layer: the sharded result cache's
# singleflight dedupe and bounded worker pool (K concurrent identical
# requests must execute exactly one simulation), plus the cedard
# handler fanning a batch out across goroutines.
race-cedard:
	$(GO) test -race -count=2 ./internal/job/... ./cmd/cedard/

# End-to-end cedard smoke: build the real binary, start it, POST a job
# batch twice, and assert the second round is served entirely from the
# result cache.
smoke-cedard:
	$(GO) test -run TestSmoke -count=1 -v ./cmd/cedard/

# Coverage with a floor on the telemetry layer (its correctness story is
# "every sample is bit-exact", so the package must stay well covered).
TELEMETRY_COVER_FLOOR ?= 85
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@pct=$$($(GO) test -cover ./internal/telemetry | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/telemetry statement coverage: $$pct% (floor $(TELEMETRY_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(TELEMETRY_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f) ? 0 : 1 }' || \
	{ echo "telemetry coverage below floor"; exit 1; }

ci: vet test race race-fault race-io race-attr race-parallel race-cedard smoke-cedard fuzz-equivalence fault-soak bench-engine bench-telemetry
