# Developer entry points. `make ci` is what a pipeline should run.

GO ?= go

.PHONY: all build test vet race bench bench-engine bench-telemetry cover ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator is single-goroutine per machine, but tests run machines
# concurrently; -race guards the harness and any future parallelism.
race:
	$(GO) test -race ./...

# Every table/figure of the paper, printed once each.
bench:
	$(GO) test -bench . -benchtime 1x .

# Naive vs quiescence-aware engine on the DOALL-startup-heavy workload;
# the ns/op ratio is the fast path's wall-clock win (results are
# bit-identical between the two sub-benchmarks).
bench-engine:
	$(GO) test -run NONE -bench BenchmarkEngineQuiescence -benchtime 10x .

# Telemetry disabled vs enabled on the engine benchmark workload: "off"
# must stay within noise of the pre-telemetry engine (the registry is
# never built); "on" shows the cost of sampling every 2000 cycles.
bench-telemetry:
	$(GO) test -run NONE -bench BenchmarkTelemetryOverhead -benchtime 10x .

# Coverage with a floor on the telemetry layer (its correctness story is
# "every sample is bit-exact", so the package must stay well covered).
TELEMETRY_COVER_FLOOR ?= 85
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@pct=$$($(GO) test -cover ./internal/telemetry | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/telemetry statement coverage: $$pct% (floor $(TELEMETRY_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(TELEMETRY_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f) ? 0 : 1 }' || \
	{ echo "telemetry coverage below floor"; exit 1; }

ci: vet test race bench-engine
