package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// registry maps workload names to implementations. Kernel packages
// register from init, so any import of the kernel package populates the
// table; the map is never mutated after init in practice, and the
// accessors copy what they expose.
var registry = map[string]Workload{}

// Register adds w under its Name. Registering a duplicate name panics:
// two kernels claiming one name is a programming error worth failing
// loudly at init time.
func Register(w Workload) {
	name := w.Name()
	if name == "" {
		panic("workload: Register with an empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", name))
	}
	registry[name] = w
}

// Get returns the workload registered under name, or nil.
func Get(name string) Workload { return registry[name] }

// Names returns the registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the registered workload's one-line description, or
// "" when it has none.
func Describe(name string) string {
	if d, ok := registry[name].(interface{ Describe() string }); ok {
		return d.Describe()
	}
	return ""
}

// Run looks up name, validates the parameters, and runs the workload;
// an unknown name errors with the available names so drivers can
// surface the registry directly. Every registry execution passes
// through the Params.Validate gate, so negative sizes and iteration
// counts never reach kernel code.
func Run(name string, m *core.Machine, p Params, att Attachments) (Result, error) {
	w := Get(name)
	if w == nil {
		return Result{}, fmt.Errorf("workload: unknown workload %q (available: %s)",
			name, strings.Join(Names(), ", "))
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	return w.Run(m, p, att)
}

// funcWorkload adapts a function to the Workload interface.
type funcWorkload struct {
	name  string
	about string
	fn    func(m *core.Machine, p Params, att Attachments) (Result, error)
}

func (f funcWorkload) Name() string     { return f.name }
func (f funcWorkload) Describe() string { return f.about }
func (f funcWorkload) Run(m *core.Machine, p Params, att Attachments) (Result, error) {
	return f.fn(m, p, att)
}

// New wraps a function as a Workload with a one-line description for
// listings.
func New(name, about string, fn func(m *core.Machine, p Params, att Attachments) (Result, error)) Workload {
	return funcWorkload{name: name, about: about, fn: fn}
}
