// Package workload defines the single entry point every kernel on the
// simulated Cedar shares: a Workload runs against a core.Machine under
// one serializable Params set plus runtime Attachments, and reports one
// Result. The package replaces the divergent positional parameters the
// kernel entry points had grown (`usePrefetch, probe bool` here, `mode
// Mode` there) and carries the registry that lets drivers like
// cmd/cedarsim and cmd/cedard select workloads by name instead of
// hard-coded switches.
//
// The Params/Attachments split is deliberate API design: Params is a
// comparable value type holding exactly the inputs that determine a
// run's outcome (so a job cache may key on it), while Attachments
// carries the runtime-only observers — function and interface values
// that must never leak into a cache key.
package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Mode selects the memory-system strategy of a kernel, matching the
// three versions of the paper's Table 1.
type Mode int

// Kernel memory modes.
const (
	// GMNoPrefetch: all vector accesses go to global memory with no
	// prefetching — throughput is bounded by the two outstanding
	// requests per CE and the 13-cycle latency.
	GMNoPrefetch Mode = iota
	// GMPrefetch: identical access pattern, but every global vector
	// operand is prefetched.
	GMPrefetch
	// GMCache: submatrix blocks are transferred to a cached work array
	// in each cluster and all inner-loop vector accesses hit the cache.
	GMCache
)

// String names the mode as in Table 1.
func (m Mode) String() string {
	switch m {
	case GMNoPrefetch:
		return "GM/no-pref"
	case GMPrefetch:
		return "GM/pref"
	case GMCache:
		return "GM/cache"
	}
	return "unknown"
}

// PhaseObserver receives workload phase boundaries; it is structurally
// identical to cedarfort.PhaseObserver (and telemetry.Sampler satisfies
// it), so adapters can hand Attachments.Phases straight to the runtime
// without this package importing either.
type PhaseObserver interface {
	PhaseStart(name string)
	PhaseEnd(name string)
}

// Params is the serializable parameter set of a workload run. The zero
// value is a sensible default everywhere: no prefetch, no probe, Table
// 1's GM/no-pref mode, and kernel-chosen size and iteration count.
//
// Params is comparable by construction (the compile-time guard below
// enforces it), so no function or interface field can be added to it
// and silently escape a result-cache key: anything runtime-only belongs
// in Attachments.
type Params struct {
	// Mode selects the memory-system strategy for kernels with Table 1
	// variants (Rank64); others ignore it.
	Mode Mode
	// Prefetch drives global vector operands through the PFUs for
	// kernels with a prefetch toggle (VL, TM, CG, the I/O kernels).
	Prefetch bool
	// Probe attaches the Table 2 prefetch performance probe when the
	// run prefetches.
	Probe bool
	// Iterations overrides the kernel's iteration/step count; zero
	// selects the kernel default.
	Iterations int
	// Size overrides the kernel's problem size in elements (the meaning
	// — matrix order, vector length, words per I/O step — is the
	// kernel's); zero selects the kernel default.
	Size int
}

// Params must stay usable as a map key: a field that breaks
// comparability (func, slice, interface) is a field a cache cannot key
// on, and belongs in Attachments instead.
var _ = map[Params]struct{}{}

// Validate rejects parameter values no kernel can run. Kernels divide
// by and allocate from Size and Iterations, so negatives must die at
// the API boundary — as a *ParamError, which drivers surface as a usage
// error (cedarsim exit 2, cedard HTTP 400).
func (p Params) Validate() error {
	if p.Size < 0 {
		return &ParamError{Field: "size", Value: p.Size, Reason: "cannot be negative (0 selects the kernel default)"}
	}
	if p.Iterations < 0 {
		return &ParamError{Field: "iterations", Value: p.Iterations, Reason: "cannot be negative (0 selects the kernel default)"}
	}
	if p.Mode < GMNoPrefetch || p.Mode > GMCache {
		return &ParamError{Field: "mode", Value: int(p.Mode), Reason: "unknown memory mode"}
	}
	return nil
}

// ParamError reports a workload parameter no kernel accepts. It is a
// validation failure, not an execution failure: drivers map it to their
// usage-error surface (exit status 2, HTTP 400).
type ParamError struct {
	// Field names the offending Params field in its serialized
	// lower-case form.
	Field string
	// Value is the rejected value.
	Value int
	// Reason says what a legal value looks like.
	Reason string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("workload: %s %d: %s", e.Field, e.Value, e.Reason)
}

// Attachments carries the runtime-only observers of a workload run —
// the non-serializable values deliberately kept out of Params so they
// can never join a cache key. The zero value attaches nothing.
type Attachments struct {
	// Phases, when non-nil, observes workload phase boundaries (hand a
	// telemetry.Sampler here to mark phase intervals).
	Phases PhaseObserver
}

// Result reports one kernel execution.
type Result struct {
	// Name identifies the kernel and variant.
	Name string
	// CEs is the processor count used.
	CEs int
	// Cycles is the elapsed simulated time.
	Cycles sim.Cycle
	// Flops is the floating-point operation count performed by the CEs.
	Flops int64
	// MFLOPS is the paper's rate metric.
	MFLOPS float64
	// Check is a kernel-specific numerical checksum for verification.
	Check float64
	// Latency and Interarrival are the Table 2 prefetch metrics in
	// cycles (NaN when the kernel was run without a probe or without
	// prefetching).
	Latency      float64
	Interarrival float64
	// Notes carries kernel-specific result lines (a CG residual, an I/O
	// volume) for drivers to print verbatim.
	Notes []string
}

func (r Result) String() string {
	s := fmt.Sprintf("%-14s P=%-3d %8d cycles  %7.1f MFLOPS", r.Name, r.CEs, r.Cycles, r.MFLOPS)
	if !math.IsNaN(r.Latency) {
		s += fmt.Sprintf("  lat=%5.1f  ia=%4.2f", r.Latency, r.Interarrival)
	}
	return s
}

// Workload is a runnable kernel: a name for the registry and a Run
// driving a machine under the shared Params, with runtime observers
// passed separately.
type Workload interface {
	Name() string
	Run(m *core.Machine, p Params, att Attachments) (Result, error)
}
