package isa

import (
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
)

func TestSpaceString(t *testing.T) {
	if Cluster.String() != "cluster" || Global.String() != "global" {
		t.Fatal("Space.String wrong")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Compute: "compute", Vector: "vector", Prefetch: "prefetch",
		Scalar: "scalar", Sync: "sync", Kind(99): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestConstructors(t *testing.T) {
	c := NewCompute(10)
	if c.Kind != Compute || c.Cycles != 10 {
		t.Fatalf("NewCompute: %+v", c)
	}
	v := NewVectorLoad(Addr{Global, 100}, 32, 0, 2, true)
	if v.Kind != Vector || v.Stride != 1 || v.N != 32 || !v.UsePrefetch || v.Write {
		t.Fatalf("NewVectorLoad: %+v", v)
	}
	s := NewVectorStore(Addr{Cluster, 4}, 8, 2, 1)
	if !s.Write || s.Stride != 2 {
		t.Fatalf("NewVectorStore: %+v", s)
	}
	p := NewPrefetch(Addr{Global, 0}, 256, 1)
	if p.Kind != Prefetch || p.PFN != 256 {
		t.Fatalf("NewPrefetch: %+v", p)
	}
	sl := NewScalarLoad(Addr{Global, 7})
	if sl.Kind != Scalar || sl.ScalarWrite {
		t.Fatalf("NewScalarLoad: %+v", sl)
	}
	ss := NewScalarStore(Addr{Cluster, 7})
	if !ss.ScalarWrite {
		t.Fatalf("NewScalarStore: %+v", ss)
	}
	sy := NewSync(40, network.TestAndSet())
	if sy.Kind != Sync || sy.SyncAddr != 40 {
		t.Fatalf("NewSync: %+v", sy)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewCompute(-1) },
		func() { NewVectorLoad(Addr{Global, 0}, -1, 1, 0, false) },
		func() { NewVectorLoad(Addr{Cluster, 0}, 8, 1, 0, true) }, // prefetch from cluster
		func() { NewVectorStore(Addr{Global, 0}, -2, 1, 0) },
		func() { NewPrefetch(Addr{Cluster, 0}, 8, 1) },
		func() { NewPrefetch(Addr{Global, 0}, 513, 1) },
		func() { NewGen(nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSeq(t *testing.T) {
	a, b := NewCompute(1), NewCompute(2)
	s := NewSeq(a, b)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Next() != a || s.Next() != b || s.Next() != nil {
		t.Fatal("Seq order wrong")
	}
	if s.Next() != nil {
		t.Fatal("exhausted Seq returned an op")
	}
	s2 := NewSeq(a)
	s2.Add(b)
	if s2.Next() != a || s2.Next() != b {
		t.Fatal("Add broken")
	}
}

func TestGenEmitsUntilDone(t *testing.T) {
	n := 0
	g := NewGen(func(g *Gen) bool {
		if n >= 3 {
			return false
		}
		n++
		g.Emit(NewCompute(sim.Cycle(n)))
		return true
	})
	var got []int
	for op := g.Next(); op != nil; op = g.Next() {
		got = append(got, int(op.Cycles))
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Gen produced %v", got)
	}
	if g.Next() != nil {
		t.Fatal("done Gen produced an op")
	}
}

func TestGenEmitMultiple(t *testing.T) {
	calls := 0
	g := NewGen(func(g *Gen) bool {
		calls++
		if calls > 1 {
			return false
		}
		g.Emit(NewCompute(1), NewCompute(2), NewCompute(3))
		return true
	})
	count := 0
	for op := g.Next(); op != nil; op = g.Next() {
		count++
		_ = op
	}
	if count != 3 {
		t.Fatalf("emitted %d ops, want 3", count)
	}
	if calls != 2 {
		t.Fatalf("fill called %d times, want 2", calls)
	}
}

func TestGenFinalEmit(t *testing.T) {
	// fill may emit and return false in the same call; those ops must
	// still run.
	first := true
	g := NewGen(func(g *Gen) bool {
		if first {
			first = false
			g.Emit(NewCompute(7))
		}
		return false
	})
	op := g.Next()
	if op == nil || op.Cycles != 7 {
		t.Fatal("final-emit op lost")
	}
	if g.Next() != nil {
		t.Fatal("Gen not done after final emit")
	}
}
