// Package isa defines the micro-operation model that workloads use to
// drive the simulated Cedar machine.
//
// The Alliant CE executes a 68020-derived instruction set augmented with
// vector instructions; modeling that ISA bit-for-bit would add nothing to
// the performance questions the paper studies. Instead, workloads are
// written as programs over a small set of micro-operations that capture
// exactly the behaviours the paper's results depend on: scalar compute
// time, register-memory vector operations with one memory operand stream
// (the CE's vector format), prefetch arm/fire, scalar accesses, and the
// global synchronization instructions.
//
// Timing and function are split: an operation's address stream determines
// its simulated cost, while its optional Do callback performs the real
// arithmetic on ordinary Go slices when the operation completes. Kernels
// therefore produce numerically verifiable results while the machine
// model produces cycle counts.
package isa

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// Space selects half of Cedar's physical address space: cluster memory
// (accessed through the shared cluster cache) or the globally shared
// memory (accessed through the networks, optionally via the prefetch
// unit).
type Space uint8

// The two memory spaces.
const (
	Cluster Space = iota
	Global
)

// String names the space.
func (s Space) String() string {
	if s == Cluster {
		return "cluster"
	}
	return "global"
}

// Addr is a word address within one of the two spaces.
type Addr struct {
	Space Space
	Word  uint64
}

// Kind discriminates micro-operations.
type Kind uint8

// Micro-operation kinds.
const (
	// Compute occupies the CE for a fixed number of cycles (scalar code,
	// register-register vector arithmetic, loop bookkeeping).
	Compute Kind = iota
	// Vector is a register-memory vector operation: one memory operand
	// stream of N words at the given stride, consumed or produced at up
	// to one word per cycle after vector startup, with Flops chained
	// floating-point operations per element.
	Vector
	// Prefetch arms the CE's prefetch unit with a vector descriptor and
	// fires it; the prefetch then proceeds autonomously, overlapping
	// with subsequent operations.
	Prefetch
	// Scalar is a single-word load or store.
	Scalar
	// Sync is an indivisible global-memory synchronization instruction
	// (Test-And-Set / Test-And-Operate), completing with a result.
	Sync
	// IO is a blocking Fortran I/O statement: a transfer of IOWords
	// 64-bit words served by the cluster's interactive processor.
	// Formatted transfers pay the per-word conversion cost on top of
	// the raw disk rate (the paper's formatted/unformatted distinction
	// that dominates BDNA). The issuing program parks on the
	// outstanding transfer and is redispatched at completion.
	IO
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Vector:
		return "vector"
	case Prefetch:
		return "prefetch"
	case Scalar:
		return "scalar"
	case Sync:
		return "sync"
	case IO:
		return "io"
	}
	return "unknown"
}

// Op is one micro-operation. Construct with the New* helpers, which
// validate the fields a CE requires.
type Op struct {
	Kind Kind

	// Compute.
	Cycles sim.Cycle

	// Vector.
	N           int
	Stride      int
	Base        Addr
	Write       bool
	Flops       int // chained flops per element
	UsePrefetch bool

	// Prefetch.
	PFBase   Addr
	PFStride int
	PFN      int
	PFMask   []bool // nil = fetch every element

	// Scalar.
	ScalarAddr  Addr
	ScalarWrite bool

	// Sync.
	SyncSpec network.SyncSpec
	SyncAddr uint64

	// IO.
	IOWords     int64
	IOFormatted bool
	// IOLabel names the request in diagnostics (an ErrDeadline hit
	// while the transfer is outstanding reports it); empty means the
	// issuing CE names the request.
	IOLabel string

	// ExtraCost, if non-nil on a Compute operation, is evaluated once at
	// the cycle the op starts and returns additional cycles to charge on
	// top of Cycles. The concurrency bus uses it to stretch claim and
	// concurrent-start operations caught inside a fault stall window:
	// the op's start cycle is a CE tick slot, identical in every engine
	// mode, so the charged cost — and any counters the hook updates —
	// stay mode-bit-identical. The hook must return a non-negative,
	// deterministic function of simulated state at the start cycle.
	ExtraCost func(now sim.Cycle) sim.Cycle

	// Do, if non-nil, runs when the operation completes: the functional
	// payload (actual arithmetic on backing slices).
	Do func()

	// OnDone, if non-nil, receives a Sync operation's result: the prior
	// memory value and whether the relational test succeeded. For other
	// kinds it is called with (0, true).
	OnDone func(v int64, ok bool)
}

// NewCompute returns a fixed-cost operation.
func NewCompute(cycles sim.Cycle) *Op {
	if cycles < 0 {
		panic("isa: negative compute cycles")
	}
	return &Op{Kind: Compute, Cycles: cycles}
}

// NewIORequest returns a blocking I/O operation moving words 64-bit
// words through the cluster's interactive processor; formatted selects
// the Fortran formatted path (per-word conversion on top of the raw
// transfer rate).
func NewIORequest(words int64, formatted bool) *Op {
	if words < 0 {
		panic(fmt.Sprintf("isa: negative I/O size %d", words))
	}
	return &Op{Kind: IO, IOWords: words, IOFormatted: formatted}
}

// NewVectorLoad returns a vector operation streaming n words from base at
// stride, with flops chained operations per element. usePrefetch selects
// consumption from the prefetch buffer (valid only for Global space).
func NewVectorLoad(base Addr, n, stride, flops int, usePrefetch bool) *Op {
	if n < 0 {
		panic("isa: negative vector length")
	}
	if stride == 0 {
		stride = 1
	}
	if usePrefetch && base.Space != Global {
		panic("isa: prefetch consumption from cluster space")
	}
	return &Op{Kind: Vector, N: n, Stride: stride, Base: base, Flops: flops, UsePrefetch: usePrefetch}
}

// NewVectorStore returns a vector operation writing n words to base at
// stride, with flops chained operations per element. Stores do not stall
// the CE beyond issue bandwidth.
func NewVectorStore(base Addr, n, stride, flops int) *Op {
	if n < 0 {
		panic("isa: negative vector length")
	}
	if stride == 0 {
		stride = 1
	}
	return &Op{Kind: Vector, N: n, Stride: stride, Base: base, Write: true, Flops: flops}
}

// NewPrefetch returns an operation arming and firing the prefetch unit
// for n words from base at stride. Base must be in Global space.
func NewPrefetch(base Addr, n, stride int) *Op {
	return NewPrefetchMasked(base, n, stride, nil)
}

// NewPrefetchMasked is NewPrefetch with a per-element mask, the third
// component of the hardware's arm descriptor: mask[i] false suppresses
// element i's fetch (its buffer slot reads as zero).
func NewPrefetchMasked(base Addr, n, stride int, mask []bool) *Op {
	if base.Space != Global {
		panic("isa: prefetch from cluster space")
	}
	if n < 0 || n > 512 {
		panic(fmt.Sprintf("isa: prefetch length %d outside 0..512", n))
	}
	if mask != nil && len(mask) != n {
		panic(fmt.Sprintf("isa: prefetch mask of %d for length %d", len(mask), n))
	}
	if stride == 0 {
		stride = 1
	}
	return &Op{Kind: Prefetch, PFBase: base, PFStride: stride, PFN: n, PFMask: mask}
}

// NewScalarLoad returns a single-word load.
func NewScalarLoad(addr Addr) *Op {
	return &Op{Kind: Scalar, ScalarAddr: addr}
}

// NewScalarStore returns a single-word store.
func NewScalarStore(addr Addr) *Op {
	return &Op{Kind: Scalar, ScalarAddr: addr, ScalarWrite: true}
}

// NewSync returns a global synchronization operation on word addr.
func NewSync(addr uint64, spec network.SyncSpec) *Op {
	return &Op{Kind: Sync, SyncAddr: addr, SyncSpec: spec}
}

// Program supplies a CE's micro-operation stream. Next is called when the
// CE has completed the previous operation; returning nil ends the
// program (the CE idles until it is assigned new work).
type Program interface {
	Next() *Op
}

// Seq is a fixed operation sequence.
type Seq struct {
	ops []*Op
	i   int
}

// NewSeq returns a program that runs the given operations in order.
func NewSeq(ops ...*Op) *Seq { return &Seq{ops: ops} }

// Add appends operations (valid before or during execution).
func (s *Seq) Add(ops ...*Op) { s.ops = append(s.ops, ops...) }

// Next implements Program.
func (s *Seq) Next() *Op {
	if s.i >= len(s.ops) {
		return nil
	}
	op := s.ops[s.i]
	s.i++
	return op
}

// Len reports the number of operations remaining plus executed.
func (s *Seq) Len() int { return len(s.ops) }

// OnEnd returns a program that runs p to completion and then invokes f
// exactly once — at the simulated time the last operation finished. It is
// the building block for joins: wrap every participant of a parallel
// loop, count completions, and dispatch the continuation from the last
// one.
func OnEnd(p Program, f func()) Program {
	return &onEnd{p: p, f: f}
}

type onEnd struct {
	p     Program
	f     func()
	fired bool
}

func (o *onEnd) Next() *Op {
	op := o.p.Next()
	if op == nil && !o.fired {
		o.fired = true
		if o.f != nil {
			o.f()
		}
	}
	return op
}

// Gen is a dynamic program: when its queue runs dry, fill is invoked to
// emit more operations; fill returning false ends the program. This is
// how self-scheduling loops are expressed — the decision of what to run
// next can depend on results delivered by OnDone callbacks of earlier
// operations (for example, the iteration index returned by a
// fetch-and-add claim).
type Gen struct {
	queue []*Op
	fill  func(g *Gen) bool
	done  bool
}

// NewGen returns a generator program driven by fill.
func NewGen(fill func(g *Gen) bool) *Gen {
	if fill == nil {
		panic("isa: NewGen with nil fill")
	}
	return &Gen{fill: fill}
}

// Emit appends operations to the pending queue; normally called from the
// fill function or from OnDone callbacks.
func (g *Gen) Emit(ops ...*Op) { g.queue = append(g.queue, ops...) }

// EmitFront inserts operations at the head of the pending queue, ahead of
// anything already emitted. Completion callbacks use it to splice a
// continuation (for example a barrier's spin loop) before operations that
// must run after it.
func (g *Gen) EmitFront(ops ...*Op) {
	g.queue = append(append(make([]*Op, 0, len(ops)+len(g.queue)), ops...), g.queue...)
}

// Next implements Program.
func (g *Gen) Next() *Op {
	for len(g.queue) == 0 {
		if g.done {
			return nil
		}
		if !g.fill(g) {
			g.done = true
			if len(g.queue) == 0 {
				return nil
			}
		}
	}
	op := g.queue[0]
	copy(g.queue, g.queue[1:])
	g.queue = g.queue[:len(g.queue)-1]
	return op
}
