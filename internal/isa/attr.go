package isa

// Cycle accounting (DESIGN.md §4.8): every cycle of a CE's existence is
// attributed to exactly one Bucket, so per-CE bucket sums always equal
// elapsed cycles — the conservation invariant the attribution tests
// assert. The bucket vocabulary lives here in the ISA layer because the
// classification is fundamentally about op kinds and their stall
// reasons: which micro-operation class held the CE, and whether the
// cycle made progress or waited.

// Bucket classifies one CE cycle.
type Bucket uint8

// The cycle-accounting buckets. Exactly one is charged per cycle:
// progress beats waiting (a cycle that consumes a vector element is
// busy even if the same cycle also failed to issue the next request),
// and every op charges its fetch cycle to dispatch and its retiring
// cycle to busy.
const (
	// AcctBusy: the CE made architected progress — compute spans,
	// vector elements consumed or store elements issued, and the
	// retiring cycle of every operation.
	AcctBusy Bucket = iota
	// AcctDispatch: operation fetch/start overhead — the cycle that
	// pulls the next op from the program (including the cycle that
	// discovers the program's end) and both cycles of a Prefetch
	// arm/fire op, which exists only to drive the PFU.
	AcctDispatch
	// AcctScalarWait: a scalar access in flight — global read replies,
	// cache-ready timers, posted-write drains, structural retries.
	AcctScalarWait
	// AcctVectorWait: a vector stream stalled — startup pipeline fill,
	// direct (non-prefetched) operand waits, refused element issues.
	AcctVectorWait
	// AcctPrefetchWait: a vector consume spinning on the prefetch
	// buffer's full/empty bit (the PFU has not filled the slot yet).
	AcctPrefetchWait
	// AcctSyncWait: a global synchronization instruction in flight —
	// network round trip, retries, and the CE-side SyncExtra cycles.
	AcctSyncWait
	// AcctIOPark: the program is parked on an outstanding I/O transfer
	// (isa.IO through Xylem's park table to the cluster IP). Per
	// request this equals the handle's submit-to-completion wait, so
	// per-CE AcctIOPark totals cross-check xylem's IOWait accounting
	// exactly.
	AcctIOPark
	// AcctCheckStop: the CE is halted by an injected check-stop —
	// the drain boundary, the surrender handoff, and every frozen
	// cycle until Repair.
	AcctCheckStop
	// AcctRecovery: fault-recovery wait — cycles a global scalar read
	// spends waiting after its first timeout reissue (the request
	// layer's retry/backoff window, including a wedged read whose
	// retries are exhausted).
	AcctRecovery
	// AcctIdle: no program and no operation in flight.
	AcctIdle

	// NumBuckets bounds the bucket space; Acct arrays index by Bucket.
	NumBuckets
)

// acctNames are the stable metric/CSV names, indexed by Bucket.
var acctNames = [NumBuckets]string{
	"busy", "dispatch", "scalar_wait", "vector_wait", "prefetch_wait",
	"sync_wait", "io_park", "check_stop", "recovery", "idle",
}

// acctCodes are one-byte cell codes for breakdown summaries (the flame
// view): '#' marks busy-dominant intervals, '.' idle, letters the stall
// class.
var acctCodes = [NumBuckets]byte{'#', 'd', 's', 'v', 'p', 'y', 'i', 'k', 'r', '.'}

// String names the bucket (metric-path style, e.g. "scalar_wait").
func (b Bucket) String() string {
	if b >= NumBuckets {
		return "unknown"
	}
	return acctNames[b]
}

// Code is the bucket's one-byte cell code for breakdown summaries.
func (b Bucket) Code() byte {
	if b >= NumBuckets {
		return '?'
	}
	return acctCodes[b]
}

// AcctNames returns the bucket names in Bucket order (the column order
// of every CPI-stack exhibit).
func AcctNames() []string {
	out := make([]string, NumBuckets)
	copy(out, acctNames[:])
	return out
}

// Acct is a cycle-accounting accumulator: one counter per bucket. The
// zero value is ready to use. It is exported as plain int64 fields so
// the telemetry registry can read it through closures with the fast
// path untouched, like every other architected counter.
type Acct struct {
	Cycles [NumBuckets]int64
}

// Add charges n cycles to bucket b.
func (a *Acct) Add(b Bucket, n int64) { a.Cycles[b] += n }

// Total is the sum over all buckets — elapsed cycles, when the
// conservation invariant holds.
func (a *Acct) Total() int64 {
	var t int64
	for _, c := range a.Cycles {
		t += c
	}
	return t
}
