package prefetch

import "repro/internal/telemetry"

// Outstanding reports the requests issued but not yet arrived for the
// current prefetch — the in-flight depth the unit exists to sustain.
func (u *PFU) Outstanding() int { return u.issued - u.arrived }

// RegisterMetrics publishes the PFU's counters under prefix (for example
// "cluster0/pfu3").
func (u *PFU) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/prefetches", &u.Prefetches)
	reg.Counter(prefix+"/issued", &u.Issued)
	reg.Counter(prefix+"/page_crossings", &u.PageCrossings)
	reg.Counter(prefix+"/stall_cycles", &u.StallCycles)
	reg.Counter(prefix+"/retries", &u.Retries)
	reg.Counter(prefix+"/retries_exhausted", &u.RetriesExhausted)
	reg.Counter(prefix+"/duplicate_replies", &u.DuplicateReplies)
	reg.Counter(prefix+"/stale_replies", &u.StaleReplies)
	reg.Counter(prefix+"/spin_waits", &u.SpinWaits)
	reg.Gauge(prefix+"/outstanding", func() int64 { return int64(u.Outstanding()) })
}
