// Package prefetch models the Cedar data prefetch unit (PFU).
//
// Each computational element has its own PFU, designed to mask the long
// global-memory latency and overcome the Alliant CE's limit of two
// outstanding requests. A PFU is "armed" with the length, stride and mask
// of a vector and "fired" with the physical address of the first word. It
// then issues up to 512 word requests without pausing, one per cycle,
// into the forward network. Data returns — possibly out of order, due to
// memory and network conflicts — to a 512-word prefetch buffer with a
// full/empty bit per word, which lets the CE start consuming before the
// prefetch completes while still receiving data in request order.
//
// When a prefetch crosses a page boundary the PFU suspends until the
// processor supplies the first physical address of the new page, because
// the PFU only handles physical addresses; this model charges a fixed
// processor-assist cost for each crossing.
package prefetch

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// BufferWords is the prefetch buffer capacity: 512 64-bit words, which is
// also the maximum number of outstanding requests.
const BufferWords = 512

// tagEpochBits sizes the per-slot instance epoch carried in the upper
// bits of every request tag (low bits: the buffer slot). With the
// reissue machinery a reply can outlive its request instance — the
// original answer of a reissued read arriving after its slot has moved
// on to a later lap of the buffer, or a later prefetch entirely. The
// epoch lets Deliver recognize such a reply as stale and swallow it
// instead of either accepting another instance's data into the slot or
// refusing delivery (a refused reverse-network head is retried forever,
// which wedges the port). 1024 epochs per slot is far deeper than any
// network can hold packets, so a wrapped epoch cannot alias a live one.
const tagEpochBits = 10

// TagSpan bounds the prefetch tag namespace [0, TagSpan): slot in the
// low bits, epoch above. Packet routing uses it to tell prefetch replies
// from CE direct-tag replies, so it must stay below ce.TagBase.
const TagSpan = BufferWords << tagEpochBits

// DefaultPageWords is the Xylem page size (4 KB) in 64-bit words.
const DefaultPageWords = 512

// DefaultPageCrossCycles is the modeled cost of the processor supplying
// the first physical address of a new page when a prefetch suspends at a
// page boundary.
const DefaultPageCrossCycles = 10

// SpinBound is the consecutive-cycle bound on a consumer spin-wait
// against an empty full/empty bit. A legitimate stall — a reply held up
// by network and memory conflicts — resolves within thousands of cycles;
// a spin past the bound (about 0.18 s of simulated time) means the data
// can never arrive and the PFU reports it as an unrecoverable fault
// instead of spinning silently forever.
const SpinBound = 1 << 20

// slot is one prefetch-buffer word with its full/empty bit.
type slot struct {
	full  bool
	value uint64
}

// outReq is one outstanding request tracked for timeout/reissue.
type outReq struct {
	seq     int
	addr    uint64
	tag     uint64 // epoch-qualified network tag (reissues reuse it)
	retries int
	retryAt sim.Cycle
}

// lostReq records the first request whose reissues were exhausted, for
// the FaultReason diagnosis.
type lostReq struct {
	seq     int
	addr    uint64
	retries int
}

// PFU is one prefetch unit. It is a sim.Component (it issues requests
// during its Tick) and receives replies via Deliver, forwarded by its CE
// from the reverse-network port they share.
type PFU struct {
	port  int // shared network port of the owning CE
	fwd   *network.Network
	waker sim.Waker

	// Armed parameters.
	length int
	stride int
	mask   []bool // nil = fetch every element

	// Firing state.
	active    bool
	nextAddr  uint64
	issued    int // requests issued this prefetch
	arrived   int // replies received this prefetch
	consumed  int // words consumed by the CE this prefetch
	resumeAt  sim.Cycle
	pageWords int
	pageCost  sim.Cycle

	buf [BufferWords]slot

	// Request-layer recovery (enabled by SetTimeout; all dormant when
	// timeout is zero, so the no-fault machine is bit-identical to one
	// built before this machinery existed). outq is the FIFO of
	// outstanding requests; only the head — the oldest request, the one
	// the in-order consumer needs first — is ever reissued. got marks
	// buffer slots whose reply arrived for the slot's current occupant:
	// unlike the full bit it survives consumption, so a late duplicate
	// reply (the original raced its own retry) is recognized and
	// swallowed rather than corrupting the next wrap's slot.
	timeout    sim.Cycle
	maxRetries int
	outq       []outReq
	got        [BufferWords]bool
	lost       *lostReq

	// curTag[s] is the epoch-qualified tag of slot s's current request
	// instance; a reply carrying any other tag for the slot is stale.
	// Epochs advance at issue and deliberately survive Fire — staleness
	// crosses prefetch boundaries.
	curTag [BufferWords]uint64

	// Spin-wait bookkeeping for Consume on an empty full/empty bit.
	spinSeq   int
	spinRun   int64
	spinStuck bool

	// routeFn maps a word address to its memory-module forward port.
	routeFn func(addr uint64) int

	// OnFire, OnIssue and OnArrive observe the prefetch for performance
	// monitoring: OnFire marks the start of each block (a Fire with a
	// non-empty descriptor), OnIssue each request injected into the
	// network (seq is the request index within the prefetch) and OnArrive
	// each reply reaching the buffer. OnArrive receives the reply's buffer
	// slot (seq mod BufferWords, the low bits of the request's tag), which
	// identifies the originating request even when replies from different
	// memory modules interleave out of issue order.
	OnFire   func(addr uint64)
	OnIssue  func(now sim.Cycle, seq int, addr uint64)
	OnArrive func(now sim.Cycle, slot int)

	// Counters.
	Prefetches       int64
	Issued           int64
	PageCrossings    int64
	StallCycles      int64 // cycles the PFU wanted to issue but the network refused
	Retries          int64 // requests reissued after a timeout
	RetriesExhausted int64 // requests abandoned with retries exhausted
	DuplicateReplies int64 // late replies swallowed after a successful retry
	StaleReplies     int64 // replies to superseded request instances, swallowed
	SpinWaits        int64 // consumer spin cycles on an empty full/empty bit
}

// New returns a PFU issuing into fwd at the given shared port.
// pageWords <= 0 selects DefaultPageWords; pageCost < 0 selects
// DefaultPageCrossCycles.
func New(fwd *network.Network, port, pageWords int, pageCost sim.Cycle) *PFU {
	if pageWords <= 0 {
		pageWords = DefaultPageWords
	}
	if pageCost < 0 {
		pageCost = DefaultPageCrossCycles
	}
	u := &PFU{port: port, fwd: fwd, pageWords: pageWords, pageCost: pageCost, spinSeq: -1}
	for s := range u.curTag {
		u.curTag[s] = uint64(s) // epoch 0: reserved for "never issued"
	}
	return u
}

// SetTimeout enables request-layer recovery: a request whose reply has
// not arrived after deadline cycles is reissued, with exponential backoff
// (deadline<<1, <<2, ... capped at <<6) and at most maxRetries reissues
// before the request is abandoned and reported via FaultReason. A zero
// deadline disables the machinery entirely.
func (u *PFU) SetTimeout(deadline sim.Cycle, maxRetries int) {
	if deadline < 0 {
		deadline = 0
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	u.timeout = deadline
	u.maxRetries = maxRetries
}

// AttachWaker implements sim.WakeSink: the engine hands the PFU its own
// Handle at registration. The PFU reports sim.Never when it has nothing
// left to issue or the buffer is full of unconsumed data, so the stimuli
// that must wake it are Fire (a new block) and Consume (space freed).
// Deliver needs no wake: an arrival never creates issue work.
func (u *PFU) AttachWaker(w sim.Waker) { u.waker = w }

func (u *PFU) wake() {
	if u.waker != nil {
		u.waker.Wake()
	}
}

// Arm loads the vector descriptor: length in words and stride in words,
// with no mask. Arming does not start the prefetch; Fire does.
func (u *PFU) Arm(length, stride int) {
	u.ArmMasked(length, stride, nil)
}

// ArmMasked loads a full descriptor: length, stride and mask, as the
// hardware is armed. mask[i] false suppresses element i's fetch; its
// buffer slot is marked full with zero at fire time, so the consumer's
// request-order view is preserved (gather-style strip mining over
// boundary elements). A nil mask fetches everything; the mask length
// must equal the vector length otherwise.
func (u *PFU) ArmMasked(length, stride int, mask []bool) {
	if length < 0 {
		panic(fmt.Sprintf("prefetch: negative length %d", length))
	}
	if mask != nil && len(mask) != length {
		panic(fmt.Sprintf("prefetch: mask of %d for length %d", len(mask), length))
	}
	if stride == 0 {
		stride = 1
	}
	u.length = length
	u.stride = stride
	u.mask = mask
}

// Fire starts the armed prefetch at physical word address addr. Any data
// remaining in the buffer from a previous prefetch is invalidated, as in
// the hardware.
func (u *PFU) Fire(addr uint64) {
	for i := range u.buf {
		u.buf[i].full = false
	}
	u.active = u.length > 0
	u.nextAddr = addr
	u.issued = 0
	u.arrived = 0
	u.consumed = 0
	u.resumeAt = 0
	u.outq = u.outq[:0]
	for i := range u.got {
		u.got[i] = false
	}
	u.lost = nil
	u.spinSeq = -1
	u.spinRun = 0
	u.spinStuck = false
	if u.mask != nil {
		// Pre-fill the masked-off slots so the consumer's in-order view
		// sees them as (zero) data that never traveled the network.
		for i, on := range u.mask {
			if !on && i < BufferWords {
				u.buf[i].full = true
				u.buf[i].value = 0
			}
		}
	}
	if u.active {
		u.Prefetches++
		if u.OnFire != nil {
			u.OnFire(addr)
		}
		u.wake()
	}
}

// Active reports whether a prefetch is in progress (not all requests
// issued and arrived).
func (u *PFU) Active() bool { return u.active }

// Length returns the armed length.
func (u *PFU) Length() int { return u.length }

// NextEvent implements sim.IdleComponent, mirroring Tick's early-return
// guards. A PFU with nothing to issue is woken externally: Fire starts a
// new block, Deliver completes one, and the owning CE (which ticks before
// its PFU) frees buffer space by consuming. A page-cross suspension is a
// pure timer, so its expiry is reported for fast-forwarding. The
// issue-but-refused state returns now because StallCycles accrues there.
//
// With timeouts enabled the head retry deadline is folded in, so a PFU
// waiting only on a lost reply fast-forwards to the reissue instead of
// parking forever (and is never dormant while requests are outstanding —
// essential because the reply that would wake it may have been dropped).
// A retry deadline only moves later (backoff) or disappears when the
// head's reply arrives, which requires a reverse-network tick in that
// same cycle, so the engine's per-executed-cycle re-query always observes
// the successor entry in time; the fast-forward contract holds.
func (u *PFU) NextEvent(now sim.Cycle) sim.Cycle {
	next := u.issueNextEvent(now)
	if u.timeout > 0 {
		u.pruneOutq()
		if len(u.outq) > 0 {
			t := u.outq[0].retryAt
			if t < now {
				t = now
			}
			if t < next {
				next = t
			}
		}
	}
	return next
}

// issueNextEvent is the issue-side quiescence answer (the pre-recovery
// NextEvent).
func (u *PFU) issueNextEvent(now sim.Cycle) sim.Cycle {
	if !u.active || u.issued >= u.length {
		return sim.Never
	}
	if now < u.resumeAt {
		return u.resumeAt
	}
	if u.issued-u.consumed >= BufferWords {
		return sim.Never // full: woken when the CE consumes
	}
	return now
}

// pruneOutq pops outstanding-queue heads whose reply has arrived. It is
// idempotent and has no architected effect (arrival facts are stable), so
// both NextEvent and Tick may call it at will.
func (u *PFU) pruneOutq() {
	for len(u.outq) > 0 && u.got[u.outq[0].seq%BufferWords] {
		u.outq = u.outq[1:]
	}
}

// tickRetry runs the recovery side of a tick: reissue the oldest
// outstanding request once its deadline has passed, or abandon it when
// its retries are exhausted. It reports whether the single per-cycle
// injection slot was used (a reissue has priority over a new issue; an
// abandonment is bookkeeping only and leaves the slot free). Only the
// FIFO head is ever considered: issue deadlines are non-decreasing, and
// the in-order consumer cannot proceed past the oldest missing word
// anyway.
func (u *PFU) tickRetry(now sim.Cycle) bool {
	if u.timeout == 0 {
		return false
	}
	u.pruneOutq()
	if len(u.outq) == 0 || now < u.outq[0].retryAt {
		return false
	}
	h := &u.outq[0]
	if h.retries >= u.maxRetries {
		u.RetriesExhausted++
		if u.lost == nil {
			u.lost = &lostReq{seq: h.seq, addr: h.addr, retries: h.retries}
		}
		u.outq = u.outq[1:]
		return false
	}
	p := &network.Packet{
		Dst:   u.route(h.addr),
		Src:   u.port,
		Words: 1,
		Kind:  network.Read,
		Addr:  h.addr,
		Tag:   h.tag, // same instance, same tag: the got bit resolves reply/retry races
	}
	if !u.fwd.Offer(now, u.port, p) {
		u.StallCycles++
		return true
	}
	// No OnIssue for a reissue: the perfmon probe pairs issues with
	// arrivals per slot, and a retried request still produces exactly one
	// arrival.
	u.Retries++
	h.retries++
	shift := uint(h.retries)
	if shift > 6 {
		shift = 6
	}
	h.retryAt = now + u.timeout<<shift
	return true
}

// Tick issues the next request if the PFU is active, the buffer has a
// free slot, the page-crossing suspension (if any) has elapsed, and the
// forward network accepts the packet. Issue rate is one request per cycle.
func (u *PFU) Tick(now sim.Cycle) {
	if u.tickRetry(now) {
		return // the injection slot went to a reissue this cycle
	}
	if !u.active || u.issued >= u.length {
		return
	}
	if now < u.resumeAt {
		return
	}
	if u.issued-u.consumed >= BufferWords {
		return // buffer full of unconsumed data
	}
	// Masked-off elements take no network request: their slots were
	// pre-filled at fire time and the address/issue counters advance for
	// free here.
	for u.issued < u.length && u.mask != nil && !u.mask[u.issued] {
		u.buf[u.issued%BufferWords].full = true
		u.buf[u.issued%BufferWords].value = 0
		u.issued++
		u.arrived++
		u.nextAddr += uint64(u.stride)
	}
	if u.issued >= u.length {
		if u.arrived >= u.length {
			u.active = false
		}
		return
	}
	slot := u.issued % BufferWords
	tag := nextSlotTag(u.curTag[slot])
	p := &network.Packet{
		Dst:   0, // set below by the caller-supplied router
		Src:   u.port,
		Words: 1,
		Kind:  network.Read,
		Addr:  u.nextAddr,
		Tag:   tag,
	}
	p.Dst = u.route(u.nextAddr)
	if !u.fwd.Offer(now, u.port, p) {
		u.StallCycles++
		return
	}
	u.curTag[slot] = tag // committed: any older instance's reply is now stale
	if u.OnIssue != nil {
		u.OnIssue(now, u.issued, u.nextAddr)
	}
	if u.timeout > 0 {
		u.got[slot] = false
		u.outq = append(u.outq, outReq{seq: u.issued, addr: u.nextAddr, tag: tag, retryAt: now + u.timeout})
	}
	u.Issued++
	u.issued++
	prev := u.nextAddr
	u.nextAddr += uint64(u.stride)
	if u.issued < u.length && prev/uint64(u.pageWords) != u.nextAddr/uint64(u.pageWords) {
		// Page crossing: suspend until the processor supplies the first
		// address in the new page.
		u.PageCrossings++
		u.resumeAt = now + u.pageCost
	}
}

// nextSlotTag advances a slot's instance epoch, returning the tag for
// the slot's next request. Epoch 0 (tag == slot) is reserved for
// "never issued", so the wrap returns to epoch 1.
func nextSlotTag(cur uint64) uint64 {
	nt := cur + BufferWords
	if nt >= TagSpan {
		nt = cur%BufferWords + BufferWords
	}
	return nt
}

// route maps a word address to its memory-module forward port.
func (u *PFU) route(addr uint64) int {
	if u.routeFn == nil {
		panic("prefetch: no router installed (SetRouter)")
	}
	return u.routeFn(addr)
}

// SetRouter installs the address-to-forward-port mapping (normally the
// global memory's interleaving function).
func (u *PFU) SetRouter(f func(addr uint64) int) { u.routeFn = f }

// Deliver accepts a reply from the reverse network (forwarded by the CE
// that shares the port). With reissue recovery a reply may outlive its
// request instance — Fire CAN run with an abandoned read's answer still
// in flight — so the tag's epoch decides: a reply for anything but the
// slot's current instance is counted stale and swallowed. Deliver never
// refuses a prefetch-tagged packet (a refused reverse-network head is
// redelivered forever, wedging the port); false is reserved for tags
// outside the prefetch namespace, which a correctly wired machine never
// routes here.
func (u *PFU) Deliver(now sim.Cycle, p *network.Packet) bool {
	if p.Tag >= TagSpan {
		return false
	}
	seqSlot := int(p.Tag % BufferWords)
	if p.Tag != u.curTag[seqSlot] {
		// A superseded instance's reply: the original answer of a
		// reissued read outliving its slot's lap, or its whole prefetch.
		// Swallow it — accepting would poison the slot with another
		// request's data, and returning false would leave the reverse
		// network retrying the delivery forever.
		u.StaleReplies++
		return true
	}
	if (u.timeout > 0 && u.got[seqSlot]) || u.buf[seqSlot].full {
		// The slot's current occupant already has its data: the loser of
		// a reply/retry race. Swallow it for the same reason.
		u.DuplicateReplies++
		return true
	}
	if u.timeout > 0 {
		u.got[seqSlot] = true
	}
	u.buf[seqSlot].value = p.Value
	u.buf[seqSlot].full = true
	u.arrived++
	if u.OnArrive != nil {
		u.OnArrive(now, seqSlot)
	}
	if u.arrived >= u.length && u.issued >= u.length {
		u.active = false
	}
	return true
}

// Ready reports whether the next word in request order is in the buffer.
func (u *PFU) Ready() bool {
	if u.consumed >= u.length {
		return false
	}
	return u.buf[u.consumed%BufferWords].full
}

// Consume removes and returns the next word in request order. The CE both
// accesses the buffer without waiting for the whole prefetch and receives
// the data in the order requested — the role of the full/empty bits. A
// clear full/empty bit is the paper's memory-based synchronization: the
// consumer spins on the bit, modeled as a failed Consume (ok false) the
// caller charges as a stall cycle. A spin exceeding SpinBound on the same
// word is recorded as an unrecoverable fault (see FaultReason) — the
// diagnosis for data that can never arrive — instead of panicking or
// spinning silently.
func (u *PFU) Consume() (uint64, bool) {
	if u.length == 0 || u.consumed >= u.length {
		// Consuming past the armed block: no data can ever arrive here.
		// A program resumed without its prefetch context (the bug class
		// gang rescheduling can create) lands exactly on this path, so
		// run the same spin diagnosis as an empty slot — a silent wedge
		// becomes a named fault in ErrDeadline instead.
		u.spinWait()
		return 0, false
	}
	s := &u.buf[u.consumed%BufferWords]
	if !s.full {
		u.spinWait()
		return 0, false
	}
	u.spinSeq = -1
	u.spinRun = 0
	s.full = false
	v := s.value
	u.consumed++
	u.wake() // frees a buffer slot: a full-buffer PFU may issue again
	return v, true
}

// spinWait records one failed Consume against the spin diagnosis: repeated
// failures on the same word index past SpinBound mark the PFU stuck.
func (u *PFU) spinWait() {
	u.SpinWaits++
	if u.spinSeq == u.consumed {
		u.spinRun++
		if u.spinRun > SpinBound {
			u.spinStuck = true
		}
	} else {
		u.spinSeq = u.consumed
		u.spinRun = 1
	}
}

// Quiescent reports that the PFU holds no prefetch context: no block is in
// flight and every fetched word has been consumed. Only between blocks is a
// program's prefetch state empty enough to resume on a different CE — PFU
// buffers are per-CE and do not migrate.
func (u *PFU) Quiescent() bool {
	return !u.active && u.consumed >= u.length
}

// FaultReason implements sim.FaultReporter: non-empty once the PFU has
// abandoned a request (retries exhausted) or a consumer spin-wait has
// exceeded SpinBound, naming the pending request either way.
func (u *PFU) FaultReason() string {
	if u.lost != nil {
		return fmt.Sprintf("prefetch word %d (addr %#x) unanswered after %d reissues",
			u.lost.seq, u.lost.addr, u.lost.retries)
	}
	if u.spinStuck {
		return fmt.Sprintf("consumer spun past %d cycles on empty slot %d (word %d of %d)",
			int64(SpinBound), u.spinSeq%BufferWords, u.spinSeq, u.length)
	}
	return ""
}

// Consumed reports how many words the CE has taken from this prefetch.
func (u *PFU) Consumed() int { return u.consumed }

// Complete reports whether every armed word has been issued, arrived and
// been consumed.
func (u *PFU) Complete() bool {
	return u.length == 0 || (u.consumed >= u.length)
}
