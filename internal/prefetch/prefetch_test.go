package prefetch

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/gmem"
	"repro/internal/network"
	"repro/internal/sim"
)

// rig wires one PFU to a full memory path.
type rig struct {
	eng *sim.Engine
	fwd *network.Network
	rev *network.Network
	g   *gmem.Global
	u   *PFU
}

func newRig(t *testing.T, pageWords int, pageCost sim.Cycle) *rig {
	t.Helper()
	eng := sim.New()
	fwd := network.MustNew("forward", 64, 8, 0)
	rev := network.MustNew("reverse", 64, 8, 0)
	g, err := gmem.New(gmem.Config{Words: 65536, Modules: 32, ServiceCycles: 2, QueueWords: 4}, rev)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
	}
	const port = 5
	u := New(fwd, port, pageWords, pageCost)
	u.SetRouter(g.ModuleOf)
	rev.SetSink(port, network.SinkFunc(func(p *network.Packet) bool {
		return u.Deliver(eng.Now(), p)
	}))
	// Other ports swallow anything (nothing should arrive there).
	for p := 0; p < 64; p++ {
		if p == port {
			continue
		}
		rev.SetSink(p, network.SinkFunc(func(*network.Packet) bool {
			t.Errorf("reply delivered to wrong port %d", p)
			return true
		}))
	}
	eng.Register("pfu", u)
	eng.Register("fwd", fwd)
	for m := 0; m < g.Modules(); m++ {
		eng.Register("mod", g.Module(m))
	}
	eng.Register("rev", rev)
	return &rig{eng: eng, fwd: fwd, rev: rev, g: g, u: u}
}

func TestPrefetchDeliversInRequestOrder(t *testing.T) {
	r := newRig(t, 0, -1)
	for i := 0; i < 64; i++ {
		r.g.StoreWord(uint64(i), uint64(1000+i))
	}
	r.u.Arm(64, 1)
	r.u.Fire(0)
	var got []uint64
	if _, err := r.eng.RunUntil(func() bool {
		for r.u.Ready() {
			v, _ := r.u.Consume()
			got = append(got, v)
		}
		return r.u.Complete()
	}, 5000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("consumed %d words, want 64", len(got))
	}
	for i, v := range got {
		if v != uint64(1000+i) {
			t.Fatalf("word %d = %d, want %d (request order violated)", i, v, 1000+i)
		}
	}
	if r.u.Issued != 64 || r.u.Prefetches != 1 {
		t.Fatalf("counters: issued=%d prefetches=%d", r.u.Issued, r.u.Prefetches)
	}
	if r.u.Active() {
		t.Fatal("PFU still active after completion")
	}
}

func TestStridedPrefetch(t *testing.T) {
	r := newRig(t, 0, -1)
	for i := 0; i < 32; i++ {
		r.g.StoreWord(uint64(i*33), uint64(i))
	}
	r.u.Arm(32, 33) // stride 33: hits a different module each time
	r.u.Fire(0)
	var got []uint64
	if _, err := r.eng.RunUntil(func() bool {
		for r.u.Ready() {
			v, _ := r.u.Consume()
			got = append(got, v)
		}
		return r.u.Complete()
	}, 5000); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("strided word %d = %d, want %d", i, v, i)
		}
	}
}

// TestIssueRate: an unimpeded PFU issues one request per cycle — the
// property that lets prefetch mask the 13-cycle latency.
func TestIssueRate(t *testing.T) {
	r := newRig(t, 0, -1)
	var issues []sim.Cycle
	r.u.OnIssue = func(now sim.Cycle, seq int, addr uint64) { issues = append(issues, now) }
	r.u.Arm(16, 1)
	r.u.Fire(0)
	r.eng.Run(40)
	if len(issues) != 16 {
		t.Fatalf("issued %d, want 16", len(issues))
	}
	for i := 1; i < len(issues); i++ {
		if issues[i] != issues[i-1]+1 {
			t.Fatalf("issue gap at %d: %d -> %d (want 1/cycle)", i, issues[i-1], issues[i])
		}
	}
}

// TestFirstWordLatency: the first datum reaches the buffer 8 cycles after
// issue, matching the paper's minimal latency.
func TestFirstWordLatency(t *testing.T) {
	r := newRig(t, 0, -1)
	var issue0, arrive0 sim.Cycle = -1, -1
	r.u.OnIssue = func(now sim.Cycle, seq int, addr uint64) {
		if seq == 0 {
			issue0 = now
		}
	}
	r.u.OnArrive = func(now sim.Cycle, seq int) {
		if arrive0 < 0 {
			arrive0 = now
		}
	}
	r.u.Arm(1, 1)
	r.u.Fire(0)
	r.eng.Run(50)
	if issue0 < 0 || arrive0 < 0 {
		t.Fatal("prefetch did not run")
	}
	if got := arrive0 - issue0; got != 8 {
		t.Fatalf("first-word latency = %d cycles, want 8", got)
	}
}

// TestInterarrivalNearOne: with a single CE prefetching stride-1 there is
// no contention and words arrive about one per cycle (Table 2's minimal
// interarrival).
func TestInterarrivalNearOne(t *testing.T) {
	r := newRig(t, 0, -1)
	var arrivals []sim.Cycle
	r.u.OnArrive = func(now sim.Cycle, seq int) { arrivals = append(arrivals, now) }
	r.u.Arm(128, 1)
	r.u.Fire(0)
	if _, err := r.eng.RunUntil(func() bool { return !r.u.Active() }, 5000); err != nil {
		t.Fatal(err)
	}
	var sum sim.Cycle
	for i := 1; i < len(arrivals); i++ {
		sum += arrivals[i] - arrivals[i-1]
	}
	mean := float64(sum) / float64(len(arrivals)-1)
	if mean < 0.99 || mean > 1.3 {
		t.Fatalf("uncontended interarrival = %.2f cycles, want ~1", mean)
	}
}

func TestPageCrossingSuspends(t *testing.T) {
	// 16-word pages, 10-cycle crossing cost: a 32-word prefetch crosses
	// once and must take ~10 cycles longer than within a single page.
	r := newRig(t, 16, 10)
	var issues []sim.Cycle
	r.u.OnIssue = func(now sim.Cycle, seq int, addr uint64) { issues = append(issues, now) }
	r.u.Arm(32, 1)
	r.u.Fire(0)
	r.eng.Run(100)
	if len(issues) != 32 {
		t.Fatalf("issued %d, want 32", len(issues))
	}
	gap := issues[16] - issues[15]
	if gap < 10 {
		t.Fatalf("page-crossing gap = %d cycles, want >= 10", gap)
	}
	if r.u.PageCrossings != 1 {
		t.Fatalf("PageCrossings = %d, want 1", r.u.PageCrossings)
	}
	// Fire starting mid-page: address 8, length 8 stays in page 0: no crossing.
	r.u.Arm(8, 1)
	r.u.Fire(8)
	r.eng.Run(50)
	if r.u.PageCrossings != 1 {
		t.Fatalf("in-page prefetch crossed: %d", r.u.PageCrossings)
	}
}

func TestFireInvalidatesBuffer(t *testing.T) {
	r := newRig(t, 0, -1)
	r.g.StoreWord(0, 111)
	r.g.StoreWord(100, 222)
	r.u.Arm(1, 1)
	r.u.Fire(0)
	if _, err := r.eng.RunUntil(func() bool { return r.u.Ready() }, 100); err != nil {
		t.Fatal(err)
	}
	// Re-fire without consuming: old datum must be gone.
	r.u.Arm(1, 1)
	r.u.Fire(100)
	if r.u.Ready() {
		t.Fatal("buffer not invalidated by Fire")
	}
	if _, err := r.eng.RunUntil(func() bool { return r.u.Ready() }, 100); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.u.Consume(); got != 222 {
		t.Fatalf("consumed %d after re-fire, want 222", got)
	}
}

func TestConsumeBeforeArrivalSpinWaits(t *testing.T) {
	// A Consume against a clear full/empty bit is the paper's memory-based
	// synchronization: the consumer spins (ok false, SpinWaits accrues)
	// instead of crashing, and resumes as soon as the datum lands.
	r := newRig(t, 0, -1)
	r.g.StoreWord(0, 77)
	r.u.Arm(4, 1)
	r.u.Fire(0)
	if v, ok := r.u.Consume(); ok {
		t.Fatalf("Consume before arrival returned %d, ok=true", v)
	}
	if r.u.SpinWaits != 1 {
		t.Fatalf("SpinWaits = %d after one failed Consume, want 1", r.u.SpinWaits)
	}
	if _, err := r.eng.RunUntil(func() bool { return r.u.Ready() }, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.u.Consume(); !ok || v != 77 {
		t.Fatalf("Consume after arrival = %d,%v, want 77,true", v, ok)
	}
}

func TestArmValidation(t *testing.T) {
	r := newRig(t, 0, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("Arm(-1) did not panic")
		}
	}()
	r.u.Arm(-1, 1)
}

func TestZeroLengthPrefetch(t *testing.T) {
	r := newRig(t, 0, -1)
	r.u.Arm(0, 1)
	r.u.Fire(0)
	if r.u.Active() {
		t.Fatal("zero-length prefetch active")
	}
	if !r.u.Complete() {
		t.Fatal("zero-length prefetch not complete")
	}
}

func TestZeroStrideBecomesOne(t *testing.T) {
	r := newRig(t, 0, -1)
	r.u.Arm(4, 0)
	r.u.Fire(0)
	if _, err := r.eng.RunUntil(func() bool { return !r.u.Active() }, 1000); err != nil {
		t.Fatal(err)
	}
}

// TestLongPrefetchBufferBound: a prefetch longer than the buffer cannot
// have more than BufferWords outstanding unconsumed words.
func TestLongPrefetchBufferBound(t *testing.T) {
	r := newRig(t, 0, -1)
	for i := 0; i < 600; i++ {
		r.g.StoreWord(uint64(i), uint64(i))
	}
	r.u.Arm(600, 1)
	r.u.Fire(0)
	// Do not consume; the PFU must stop at 512 issued.
	r.eng.Run(2000)
	if r.u.Issued != BufferWords {
		t.Fatalf("issued %d without consumption, want %d", r.u.Issued, BufferWords)
	}
	// Now consume everything; the rest must flow.
	var got []uint64
	if _, err := r.eng.RunUntil(func() bool {
		for r.u.Ready() {
			v, _ := r.u.Consume()
			got = append(got, v)
		}
		return r.u.Complete()
	}, 20000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 600 {
		t.Fatalf("consumed %d, want 600", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("word %d = %d after wraparound, want %d", i, v, i)
		}
	}
}

func TestMaskedPrefetch(t *testing.T) {
	r := newRig(t, 0, -1)
	for i := 0; i < 16; i++ {
		r.g.StoreWord(uint64(i), uint64(100+i))
	}
	// Fetch only even elements.
	mask := make([]bool, 16)
	for i := range mask {
		mask[i] = i%2 == 0
	}
	r.u.ArmMasked(16, 1, mask)
	r.u.Fire(0)
	var got []uint64
	if _, err := r.eng.RunUntil(func() bool {
		for r.u.Ready() {
			v, _ := r.u.Consume()
			got = append(got, v)
		}
		return r.u.Complete()
	}, 5000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("consumed %d, want 16", len(got))
	}
	for i, v := range got {
		want := uint64(0)
		if i%2 == 0 {
			want = uint64(100 + i)
		}
		if v != want {
			t.Fatalf("element %d = %d, want %d", i, v, want)
		}
	}
	// Only the unmasked half traveled the network.
	if r.u.Issued != 8 {
		t.Fatalf("issued %d requests, want 8", r.u.Issued)
	}
}

func TestMaskLengthMismatchPanics(t *testing.T) {
	r := newRig(t, 0, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched mask accepted")
		}
	}()
	r.u.ArmMasked(8, 1, make([]bool, 4))
}

func TestAllMaskedPrefetchCompletes(t *testing.T) {
	r := newRig(t, 0, -1)
	r.u.ArmMasked(8, 1, make([]bool, 8)) // everything suppressed
	r.u.Fire(0)
	var n int
	if _, err := r.eng.RunUntil(func() bool {
		for r.u.Ready() {
			r.u.Consume()
			n++
		}
		return r.u.Complete()
	}, 1000); err != nil {
		t.Fatal(err)
	}
	if n != 8 || r.u.Issued != 0 {
		t.Fatalf("consumed %d (want 8), issued %d (want 0)", n, r.u.Issued)
	}
}

// dropSeq0 removes the request injected at cycle 0 from the forward
// network. After one executed cycle the packet sits in stage-0 switch 5
// input 0 (port 5's shuffle wiring: 5*8 = 40 -> switch 5, input 0).
func dropSeq0(t *testing.T, r *rig) *network.Packet {
	t.Helper()
	r.eng.Run(1)
	pk := r.fwd.DropSwitchHead(0, 5, 0, nil)
	if pk == nil {
		t.Fatal("no packet to drop in stage-0 switch 5")
	}
	return pk
}

func TestRetryRecoversDroppedRequest(t *testing.T) {
	r := newRig(t, 0, -1)
	r.u.SetTimeout(40, 4)
	for i := 0; i < 8; i++ {
		r.g.StoreWord(uint64(i), uint64(500+i))
	}
	r.u.Arm(8, 1)
	r.u.Fire(0)
	if pk := dropSeq0(t, r); pk.Tag != BufferWords {
		// Slot 0's first instance: epoch 1 over slot 0.
		t.Fatalf("dropped tag %d, want %d", pk.Tag, BufferWords)
	}
	var got []uint64
	if _, err := r.eng.RunUntil(func() bool {
		for r.u.Ready() {
			v, _ := r.u.Consume()
			got = append(got, v)
		}
		return r.u.Complete()
	}, 20000); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(500+i) {
			t.Fatalf("word %d = %d after retry, want %d (order broken)", i, v, 500+i)
		}
	}
	if r.u.Retries != 1 || r.fwd.Dropped != 1 || r.u.RetriesExhausted != 0 {
		t.Fatalf("Retries=%d Dropped=%d Exhausted=%d, want 1,1,0",
			r.u.Retries, r.fwd.Dropped, r.u.RetriesExhausted)
	}
	if reason := r.u.FaultReason(); reason != "" {
		t.Fatalf("healthy PFU reports fault %q", reason)
	}
}

func TestRetriesExhaustedSurfacesErrDeadline(t *testing.T) {
	// Every request and reissue is dropped: the PFU must give up after
	// maxRetries and the run must end in a diagnosable ErrDeadline naming
	// the component and the pending request — no hang, no panic.
	r := newRig(t, 0, -1)
	r.u.SetTimeout(20, 2)
	r.u.Arm(1, 1)
	r.u.Fire(0)
	for i := 0; i < 300; i++ {
		r.eng.Run(1)
		r.fwd.DropSwitchHead(0, 5, 0, nil)
	}
	if r.u.RetriesExhausted != 1 || r.u.Retries != 2 {
		t.Fatalf("RetriesExhausted=%d Retries=%d, want 1,2", r.u.RetriesExhausted, r.u.Retries)
	}
	_, err := r.eng.RunUntil(func() bool { return r.u.Complete() }, 5000)
	if !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	for _, want := range []string{"pfu", "unanswered after 2 reissues", "word 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadline error %q missing %q", err, want)
		}
	}
}

func TestDuplicateReplySwallowed(t *testing.T) {
	// Stall the entry register past the timeout instead of dropping: the
	// original request survives, so the retry produces a duplicate reply
	// that must be swallowed, not fed to the next wrap's slot.
	r := newRig(t, 0, -1)
	r.u.SetTimeout(30, 4)
	r.g.StoreWord(0, 999)
	r.fwd.StallEntry(0, 5, 60)
	r.u.Arm(1, 1)
	r.u.Fire(0)
	var got []uint64
	if _, err := r.eng.RunUntil(func() bool {
		for r.u.Ready() {
			v, _ := r.u.Consume()
			got = append(got, v)
		}
		return r.u.Complete() && r.u.DuplicateReplies > 0
	}, 20000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 999 {
		t.Fatalf("consumed %v, want [999]", got)
	}
	if r.u.Retries < 1 || r.u.DuplicateReplies < 1 {
		t.Fatalf("Retries=%d DuplicateReplies=%d, want >=1 each", r.u.Retries, r.u.DuplicateReplies)
	}
}

func TestStaleReplyAcrossFireIsSwallowed(t *testing.T) {
	// A reply can outlive its request instance: the original answer of a
	// reissued read returning after its slot has moved on to the next
	// prefetch. It must be counted stale and swallowed — before the tag
	// epochs it was either accepted into the new prefetch's slot (data
	// poison) or refused, which wedged the reverse network's delivery
	// retry loop and deadlocked the whole machine under congestion.
	r := newRig(t, 0, -1)
	r.u.SetTimeout(40, 4)
	r.g.StoreWord(0, 111)
	r.g.StoreWord(1, 222)
	r.u.Arm(1, 1)
	r.u.Fire(0)
	dropSeq0(t, r) // the original (slot 0, epoch 1) vanishes; the reissue recovers
	var got []uint64
	drain := func() bool {
		for r.u.Ready() {
			v, _ := r.u.Consume()
			got = append(got, v)
		}
		return r.u.Complete()
	}
	if _, err := r.eng.RunUntil(drain, 20000); err != nil {
		t.Fatal(err)
	}
	r.u.Arm(1, 1)
	r.u.Fire(1)
	// Step until slot 0's next instance (epoch 2) is issued, but before
	// its reply is back: the window the old code could be poisoned in.
	for i := 0; i < 10 && r.u.Issued != 2; i++ {
		r.eng.Run(1)
	}
	if r.u.Issued != 2 {
		t.Fatalf("issued %d, want 2 (reissues count as Retries, not Issued)", r.u.Issued)
	}
	if r.u.Ready() {
		t.Fatal("second reply already delivered; the stale window was missed")
	}
	// The dropped original's answer finally limps home, carrying epoch 1.
	late := &network.Packet{Dst: 5, Src: 0, Words: 1, Kind: network.Reply, Addr: 0, Tag: BufferWords, Value: 111}
	if !r.u.Deliver(r.eng.Now(), late) {
		t.Fatal("stale reply refused: the reverse network would redeliver it forever")
	}
	if r.u.StaleReplies != 1 {
		t.Fatalf("StaleReplies = %d, want 1", r.u.StaleReplies)
	}
	if r.u.Ready() {
		t.Fatal("stale reply poisoned the second prefetch's slot")
	}
	if _, err := r.eng.RunUntil(drain, 20000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 111 || got[1] != 222 {
		t.Fatalf("consumed %v, want [111 222]", got)
	}
}

func TestSpinBoundDiagnosis(t *testing.T) {
	// Without retry machinery a lost request leaves the consumer spinning
	// on the full/empty bit forever; past SpinBound the PFU reports it.
	r := newRig(t, 0, -1)
	r.u.Arm(1, 1)
	r.u.Fire(0)
	dropSeq0(t, r)
	for i := int64(0); i < SpinBound+2; i++ {
		if _, ok := r.u.Consume(); ok {
			t.Fatal("Consume succeeded with the request dropped")
		}
	}
	reason := r.u.FaultReason()
	if !strings.Contains(reason, "spun past") || !strings.Contains(reason, "slot 0") {
		t.Fatalf("FaultReason = %q, want a bounded-spin diagnosis naming the slot", reason)
	}
	if r.u.SpinWaits != SpinBound+2 {
		t.Fatalf("SpinWaits = %d, want %d", r.u.SpinWaits, SpinBound+2)
	}
}

func TestTimeoutDisabledKeepsLegacyBehavior(t *testing.T) {
	// With SetTimeout unset, a drop leaves the PFU permanently incomplete
	// (no retries, no outstanding-queue bookkeeping) — the pre-fault
	// contract, which the no-fault machine must preserve bit for bit.
	r := newRig(t, 0, -1)
	r.u.Arm(4, 1)
	r.u.Fire(0)
	dropSeq0(t, r)
	r.eng.Run(5000)
	if r.u.Retries != 0 || r.u.Complete() {
		t.Fatalf("Retries=%d Complete=%v without timeouts, want 0,false", r.u.Retries, r.u.Complete())
	}
}
