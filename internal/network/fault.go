package network

import (
	"fmt"

	"repro/internal/sim"
)

// Fault-injection surface. The omega model keeps port, link, and switch
// occupancy as busy-until timestamps, so a transient switch-port stall is
// injected by pushing the matching timestamp into the future: everything
// behind the port backs up exactly as a real arbitration glitch would
// make it. A dropped packet is removed from a queue head, with the
// Dropped counter keeping InFlight (and therefore every idle predicate)
// exact. Ideal networks model the contentionless fabric of [Turn93] and
// have neither queues nor busy ports; every fault call is a no-op there.
//
// All methods are deterministic and take effect immediately; callers (the
// fault.Injector) are responsible for drawing targets and windows from a
// seeded schedule.

// stallUntil extends a busy-until slot, never shrinking it.
func stallUntil(slot *sim.Cycle, until sim.Cycle) {
	if until > *slot {
		*slot = until
	}
}

// StallEntry blocks input port p's entry register from feeding the first
// switch column until now+window.
func (n *Network) StallEntry(now sim.Cycle, p int, window sim.Cycle) {
	if n.ideal {
		return
	}
	if p < 0 || p >= n.ports {
		panic(fmt.Sprintf("network %s: StallEntry port %d out of range [0,%d)", n.name, p, n.ports))
	}
	stallUntil(&n.entryFree[p], now+window)
	n.FaultStalls++
}

// StallSwitchOut blocks output out of switch swi in stage s — the
// internal transfer path feeding that output queue — until now+window.
func (n *Network) StallSwitchOut(now sim.Cycle, s, swi, out int, window sim.Cycle) {
	if n.ideal {
		return
	}
	if s < 0 || s >= n.stages || swi < 0 || swi >= len(n.sw[s]) || out < 0 || out >= n.radix {
		panic(fmt.Sprintf("network %s: StallSwitchOut (%d,%d,%d) out of range", n.name, s, swi, out))
	}
	stallUntil(&n.sw[s][swi].outFreeAt[out], now+window)
	n.FaultStalls++
}

// StallDelivery blocks the delivery link at output port p until
// now+window; last-stage output queues behind it back up.
func (n *Network) StallDelivery(now sim.Cycle, p int, window sim.Cycle) {
	if n.ideal {
		return
	}
	if p < 0 || p >= n.ports {
		panic(fmt.Sprintf("network %s: StallDelivery port %d out of range [0,%d)", n.name, p, n.ports))
	}
	stallUntil(&n.deliverFree[p], now+window)
	n.FaultStalls++
}

// DropEntryHead removes the packet at the head of input port p's entry
// register, if there is one and allow permits it (allow guards the
// recovery contract: only idempotent, retryable traffic may be lost).
// The dropped packet is returned, nil if nothing was dropped.
func (n *Network) DropEntryHead(p int, allow func(*Packet) bool) *Packet {
	if n.ideal {
		return nil
	}
	if p < 0 || p >= n.ports {
		panic(fmt.Sprintf("network %s: DropEntryHead port %d out of range [0,%d)", n.name, p, n.ports))
	}
	pk := n.entry[p].head()
	if pk == nil || (allow != nil && !allow(pk)) {
		return nil
	}
	n.entry[p].pop()
	n.entryCount--
	n.Dropped++
	return pk
}

// DropSwitchHead removes the packet at the head of input queue in of
// switch swi in stage s, subject to allow. The dropped packet is
// returned, nil if nothing was dropped.
func (n *Network) DropSwitchHead(s, swi, in int, allow func(*Packet) bool) *Packet {
	if n.ideal {
		return nil
	}
	if s < 0 || s >= n.stages || swi < 0 || swi >= len(n.sw[s]) || in < 0 || in >= n.radix {
		panic(fmt.Sprintf("network %s: DropSwitchHead (%d,%d,%d) out of range", n.name, s, swi, in))
	}
	x := n.sw[s][swi]
	pk := x.in[in].head()
	if pk == nil || (allow != nil && !allow(pk)) {
		return nil
	}
	x.in[in].pop()
	x.inPkts--
	n.Dropped++
	return pk
}
