package network

import (
	"testing"

	"repro/internal/sim"
)

// TestBornStampZeroCycleNotRestamped is the regression test for the
// measurement-path bug where Offer treated Born == 0 as "unstamped": a
// request injected at cycle 0 produced a reply carrying Born == 0, and
// the reverse network re-stamped it on injection, so the monitored
// round-trip latency collapsed to the reverse-trip time alone.
func TestBornStampZeroCycleNotRestamped(t *testing.T) {
	for _, ideal := range []bool{false, true} {
		name := "omega"
		if ideal {
			name = "ideal"
		}
		t.Run(name, func(t *testing.T) {
			mk := func(label string) *Network {
				if ideal {
					return MustNewIdeal(label, 8, 8)
				}
				return MustNew(label, 8, 8, 0)
			}
			e := sim.New()
			fwd, rev := mk("forward"), mk("reverse")
			var delivered *Packet
			fwd.SetSink(3, SinkFunc(func(p *Packet) bool { delivered = p; return true }))
			var reply *Packet
			rev.SetSink(0, SinkFunc(func(p *Packet) bool { reply = p; return true }))
			for p := 0; p < 8; p++ {
				if p != 3 {
					fwd.SetSink(p, SinkFunc(func(*Packet) bool { return true }))
				}
				if p != 0 {
					rev.SetSink(p, SinkFunc(func(*Packet) bool { return true }))
				}
			}
			e.Register("fwd", fwd)
			e.Register("rev", rev)

			req := &Packet{Dst: 3, Src: 0, Words: 1, Kind: Read, Addr: 3}
			if !fwd.Offer(e.Now(), 0, req) {
				t.Fatal("unloaded network refused an injection")
			}
			if !req.BornSet || req.Born != 0 {
				t.Fatalf("cycle-0 injection: Born=%d BornSet=%v, want 0/true", req.Born, req.BornSet)
			}
			for e.Now() < 50 && delivered == nil {
				e.Step()
			}
			if delivered == nil {
				t.Fatal("request never delivered")
			}

			// The memory module preserves the request's stamp on the reply.
			rep := &Packet{
				Dst: 0, Src: 3, Words: 1, Kind: Reply, Addr: 3,
				Born: delivered.Born, BornSet: delivered.BornSet,
			}
			injectAt := e.Now()
			if injectAt == 0 {
				t.Fatal("test needs the reply injected at a nonzero cycle")
			}
			if !rev.Offer(injectAt, 3, rep) {
				t.Fatal("unloaded reverse network refused the reply")
			}
			if rep.Born != 0 {
				t.Fatalf("reply re-stamped: Born=%d, want the original cycle-0 stamp", rep.Born)
			}
			for e.Now() < 100 && reply == nil {
				e.Step()
			}
			if reply == nil {
				t.Fatal("reply never delivered")
			}
			if lat := e.Now() - reply.Born; lat < injectAt {
				t.Fatalf("monitored latency %d shorter than the forward trip (%d): stamp was lost", lat, injectAt)
			}

			// An unstamped packet injected later still gets stamped on entry.
			p2 := &Packet{Dst: 1, Src: 4, Words: 1, Kind: Read, Addr: 1}
			at := e.Now()
			if !fwd.Offer(at, 4, p2) {
				t.Fatal("injection refused")
			}
			if !p2.BornSet || p2.Born != at {
				t.Fatalf("late injection: Born=%d BornSet=%v, want %d/true", p2.Born, p2.BornSet, at)
			}
		})
	}
}
