package network

import (
	"sort"

	"repro/internal/sim"
)

// Ideal mode. The paper reports (citing [Turn93]) that the contention
// degradation it measures "is not inherent in the type of network used
// but is a result of specific implementation constraints". To let that
// claim be tested, a Network can be built in ideal mode: packets still
// pay the same unloaded transit (one cycle per stage plus the entry
// register) and each output port still delivers at one word per cycle,
// but the switch fabric itself is contentionless — no finite queues, no
// head-of-line blocking, no arbitration. Comparing a workload on the
// ideal and real fabrics isolates how much of an observed slowdown the
// switch implementation contributes versus the memory modules and the
// port bandwidth themselves.

// NewIdeal builds a contentionless network with the same port count and
// unloaded latency as New would give.
func NewIdeal(name string, ports, radix int) (*Network, error) {
	n, err := New(name, ports, radix, 0)
	if err != nil {
		return nil, err
	}
	n.ideal = true
	return n, nil
}

// MustNewIdeal is NewIdeal, panicking on configuration errors.
func MustNewIdeal(name string, ports, radix int) *Network {
	n, err := NewIdeal(name, ports, radix)
	if err != nil {
		panic(err)
	}
	return n
}

// Ideal reports whether the network was built contentionless.
func (n *Network) Ideal() bool { return n.ideal }

// idealPkt is an in-flight packet in ideal mode.
type idealPkt struct {
	p        *Packet
	arriveAt sim.Cycle
}

// offerIdeal injects in ideal mode: the packet arrives at its output
// port after the unloaded transit, subject only to that port's one-word-
// per-cycle delivery rate and the sink's acceptance.
func (n *Network) offerIdeal(now sim.Cycle, src int, p *Packet) bool {
	if !p.BornSet {
		p.Born = now
		p.BornSet = true
	}
	n.Injected++
	n.WordsIn += int64(p.Words)
	transit := sim.Cycle(n.stages + 1)
	n.idealFlight = append(n.idealFlight, idealPkt{p: p, arriveAt: now + transit})
	n.wake()
	return true
}

// tickIdeal delivers everything whose transit has elapsed, in arrival
// order, at one word per cycle per output port.
func (n *Network) tickIdeal(now sim.Cycle) {
	if len(n.idealFlight) == 0 {
		return
	}
	// Stable order: by arrival time then insertion order (sort is
	// stable; the slice is appended in insertion order).
	sort.SliceStable(n.idealFlight, func(i, j int) bool {
		return n.idealFlight[i].arriveAt < n.idealFlight[j].arriveAt
	})
	remaining := n.idealFlight[:0]
	for _, f := range n.idealFlight {
		if f.arriveAt > now || n.deliverFree[f.p.Dst] > now {
			remaining = append(remaining, f)
			continue
		}
		sink := n.sinks[f.p.Dst]
		if sink == nil || !sink.Offer(f.p) {
			remaining = append(remaining, f)
			continue
		}
		n.deliverFree[f.p.Dst] = now + sim.Cycle(f.p.Words)
		n.Delivered++
		if n.OnDeliver != nil {
			n.OnDeliver(now, f.p.Dst, f.p)
		}
	}
	n.idealFlight = remaining
}
