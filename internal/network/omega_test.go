package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// collector is a sink that records delivered packets.
type collector struct {
	got  []*Packet
	full bool // when true, refuse everything (to exercise backpressure)
}

func (c *collector) Offer(p *Packet) bool {
	if c.full {
		return false
	}
	c.got = append(c.got, p)
	return true
}

func build(t *testing.T, ports, radix int) (*sim.Engine, *Network, []*collector) {
	t.Helper()
	n, err := New("test", ports, radix, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sinks := make([]*collector, ports)
	for i := range sinks {
		sinks[i] = &collector{}
		n.SetSink(i, sinks[i])
	}
	e := sim.New()
	e.Register("net", n)
	return e, n, sinks
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 12, 8, 0); err == nil {
		t.Fatal("New accepted 12 ports with radix 8")
	}
	if _, err := New("bad", 8, 1, 0); err == nil {
		t.Fatal("New accepted radix 1")
	}
	n, err := New("ok", 64, 8, 0)
	if err != nil {
		t.Fatalf("New(64, 8): %v", err)
	}
	if n.Stages() != 2 || n.Ports() != 64 || n.Radix() != 8 {
		t.Fatalf("64-port radix-8: stages=%d ports=%d radix=%d", n.Stages(), n.Ports(), n.Radix())
	}
	if n.Name() != "ok" {
		t.Fatalf("Name() = %q", n.Name())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	MustNew("bad", 10, 3, 0)
}

// TestStaticRouteReachesDestination is the core routing property: for every
// (src, dst) pair, tag routing terminates at dst. Exhaustive for the Cedar
// configuration (64 ports, radix 8) and two smaller shapes.
func TestStaticRouteReachesDestination(t *testing.T) {
	for _, cfg := range []struct{ ports, radix int }{{64, 8}, {16, 4}, {8, 2}} {
		n := MustNew("t", cfg.ports, cfg.radix, 0)
		for src := 0; src < cfg.ports; src++ {
			for dst := 0; dst < cfg.ports; dst++ {
				path := n.StaticRoute(src, dst)
				if len(path) != n.Stages() {
					t.Fatalf("%dx%d: path length %d, want %d", cfg.ports, cfg.radix, len(path), n.Stages())
				}
				if got := path[len(path)-1]; got != dst {
					t.Fatalf("%dx%d: route %d->%d ended at %d", cfg.ports, cfg.radix, src, dst, got)
				}
			}
		}
	}
}

// TestStaticRouteUnique checks the paper's claim that tag routing provides
// a unique path between any pair of ports: the path is a pure function of
// (src, dst), and distinct sources to the same destination share switches
// only as the digits coincide. We verify determinism and that two routes
// from one source diverge exactly at the first stage where the destination
// digits differ.
func TestStaticRouteUnique(t *testing.T) {
	n := MustNew("t", 64, 8, 0)
	for src := 0; src < 64; src += 7 {
		for d1 := 0; d1 < 64; d1++ {
			for d2 := d1 + 1; d2 < 64; d2 += 5 {
				p1, p2 := n.StaticRoute(src, d1), n.StaticRoute(src, d2)
				diverged := false
				for s := 0; s < len(p1); s++ {
					dig1, dig2 := n.digitAt(s, d1), n.digitAt(s, d2)
					if diverged {
						continue
					}
					if dig1 != dig2 {
						diverged = true
						if p1[s] == p2[s] {
							t.Fatalf("routes to %d and %d from %d share port at diverging stage %d", d1, d2, src, s)
						}
					} else if p1[s] != p2[s] {
						t.Fatalf("routes to %d and %d from %d diverged at stage %d before digits differ", d1, d2, src, s)
					}
				}
			}
		}
	}
}

// TestShuffleIsPermutation: the inter-stage wiring must be a bijection on
// ports, otherwise two wires would share a queue slot.
func TestShuffleIsPermutation(t *testing.T) {
	for _, cfg := range []struct{ ports, radix int }{{64, 8}, {16, 4}, {8, 2}, {27, 3}} {
		n := MustNew("t", cfg.ports, cfg.radix, 0)
		seen := make([]bool, cfg.ports)
		for i := 0; i < cfg.ports; i++ {
			j := n.shuffle(i)
			if j < 0 || j >= cfg.ports || seen[j] {
				t.Fatalf("%d ports radix %d: shuffle not a permutation at %d -> %d", cfg.ports, cfg.radix, i, j)
			}
			seen[j] = true
		}
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	e, n, sinks := build(t, 64, 8)
	p := &Packet{Dst: 37, Src: 5, Words: 1, Kind: Read, Addr: 100}
	if !n.Offer(e.Now(), 5, p) {
		t.Fatal("empty network refused a packet")
	}
	if _, err := e.RunUntil(func() bool { return len(sinks[37].got) == 1 }, 50); err != nil {
		t.Fatalf("packet not delivered: %v", err)
	}
	for i, s := range sinks {
		want := 0
		if i == 37 {
			want = 1
		}
		if len(s.got) != want {
			t.Fatalf("sink %d got %d packets, want %d", i, len(s.got), want)
		}
	}
	if sinks[37].got[0] != p {
		t.Fatal("delivered packet is not the injected one")
	}
	if n.Delivered != 1 || n.Injected != 1 {
		t.Fatalf("counters: injected=%d delivered=%d", n.Injected, n.Delivered)
	}
}

// TestUnloadedLatency pins the forward-transit time of the 2-stage Cedar
// network: 2 cycles from injection to delivery (one per stage), which with
// the memory pipeline and the reverse trip composes to the paper's
// 8-cycle minimal latency.
func TestUnloadedLatency(t *testing.T) {
	e, n, sinks := build(t, 64, 8)
	var deliveredAt sim.Cycle = -1
	n.OnDeliver = func(now sim.Cycle, port int, p *Packet) { deliveredAt = now }
	inj := e.Now()
	n.Offer(inj, 0, &Packet{Dst: 63, Words: 1, Kind: Read})
	if _, err := e.RunUntil(func() bool { return len(sinks[63].got) == 1 }, 50); err != nil {
		t.Fatal(err)
	}
	// One entry-register cycle plus one per stage: 3 cycles. With the
	// 2-cycle memory service and the symmetric reverse trip this composes
	// to the paper's 8-cycle minimal global latency.
	if got := deliveredAt - inj; got != 3 {
		t.Fatalf("unloaded 2-stage transit = %d cycles, want 3", got)
	}
}

func TestAllToOneContention(t *testing.T) {
	e, n, sinks := build(t, 64, 8)
	// 8 sources all target port 0; only one per cycle can be delivered.
	for s := 0; s < 8; s++ {
		if !n.Offer(e.Now(), s*8, &Packet{Dst: 0, Src: s * 8, Words: 1, Kind: Read}) {
			t.Fatalf("injection %d refused", s)
		}
	}
	at, err := e.RunUntil(func() bool { return len(sinks[0].got) == 8 }, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Serialized delivery: at least one cycle apart, so >= 2+7 cycles.
	if at < 9 {
		t.Fatalf("8 conflicting packets delivered in %d cycles; contention not modeled", at)
	}
}

func TestDisjointTrafficIsParallel(t *testing.T) {
	e, n, sinks := build(t, 64, 8)
	// Identity traffic src i -> dst i is conflict-free in an omega network.
	for i := 0; i < 64; i++ {
		if !n.Offer(e.Now(), i, &Packet{Dst: i, Src: i, Words: 1, Kind: Read}) {
			t.Fatalf("injection %d refused", i)
		}
	}
	done := func() bool {
		for i := range sinks {
			if len(sinks[i].got) != 1 {
				return false
			}
		}
		return true
	}
	at, err := e.RunUntil(done, 100)
	if err != nil {
		t.Fatal(err)
	}
	if at > 6 {
		t.Fatalf("identity permutation took %d cycles; expected full parallelism (<=6)", at)
	}
}

func TestBackpressure(t *testing.T) {
	e, n, sinks := build(t, 64, 8)
	sinks[9].full = true
	// Saturate the path to port 9.
	injected := 0
	for c := 0; c < 40; c++ {
		if n.Offer(e.Now(), 1, &Packet{Dst: 9, Src: 1, Words: 1, Kind: Read}) {
			injected++
		}
		e.Step()
	}
	if len(sinks[9].got) != 0 {
		t.Fatal("full sink received packets")
	}
	if injected >= 40 {
		t.Fatal("backpressure never refused an injection")
	}
	inFlight := n.InFlight()
	if inFlight != injected {
		t.Fatalf("InFlight() = %d, want %d (all injected still buffered)", inFlight, injected)
	}
	// Release the sink: everything must drain, FIFO per path.
	sinks[9].full = false
	if _, err := e.RunUntil(func() bool { return len(sinks[9].got) == injected }, 500); err != nil {
		t.Fatalf("drain after backpressure: %v", err)
	}
	if n.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after drain, want 0", n.InFlight())
	}
}

func TestMultiWordPacketsConsumeBandwidth(t *testing.T) {
	e, n, sinks := build(t, 64, 8)
	// Two 4-word packets on the same path take ~2x the link time of two
	// 1-word packets.
	n.Offer(e.Now(), 2, &Packet{Dst: 20, Src: 2, Words: 4, Kind: Write})
	e.Step()
	n.Offer(e.Now(), 2, &Packet{Dst: 20, Src: 2, Words: 4, Kind: Write})
	at4, err := e.RunUntil(func() bool { return len(sinks[20].got) == 2 }, 100)
	if err != nil {
		t.Fatal(err)
	}

	e2, n2, sinks2 := build(t, 64, 8)
	n2.Offer(e2.Now(), 2, &Packet{Dst: 20, Src: 2, Words: 1, Kind: Read})
	e2.Step()
	n2.Offer(e2.Now(), 2, &Packet{Dst: 20, Src: 2, Words: 1, Kind: Read})
	at1, err := e2.RunUntil(func() bool { return len(sinks2[20].got) == 2 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if at4 <= at1 {
		t.Fatalf("4-word packets (%d cycles) not slower than 1-word (%d cycles)", at4, at1)
	}
}

func TestOfferValidation(t *testing.T) {
	_, n, _ := build(t, 64, 8)
	for _, bad := range []*Packet{
		{Dst: -1, Words: 1},
		{Dst: 64, Words: 1},
		{Dst: 0, Words: 0},
		{Dst: 0, Words: 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Offer accepted invalid packet %+v", bad)
				}
			}()
			n.Offer(0, 0, bad)
		}()
	}
}

// TestRandomTrafficConservation: everything injected is eventually
// delivered to the right sink, none duplicated, none lost.
func TestRandomTrafficConservation(t *testing.T) {
	e, n, sinks := build(t, 64, 8)
	r := sim.NewRand(11)
	want := make([]int, 64)
	injected := 0
	for cycle := 0; cycle < 600; cycle++ {
		if injected < 300 {
			src, dst := r.Intn(64), r.Intn(64)
			w := 1 + r.Intn(4)
			if n.Offer(e.Now(), src, &Packet{Dst: dst, Src: src, Words: w, Kind: Read, Tag: uint64(injected)}) {
				want[dst]++
				injected++
			}
		}
		e.Step()
	}
	total := func() int {
		tot := 0
		for i := range sinks {
			tot += len(sinks[i].got)
		}
		return tot
	}
	if _, err := e.RunUntil(func() bool { return total() == injected }, 20000); err != nil {
		t.Fatalf("drain: delivered %d of %d: %v", total(), injected, err)
	}
	seen := map[uint64]bool{}
	for i, s := range sinks {
		if len(s.got) != want[i] {
			t.Fatalf("sink %d: got %d, want %d", i, len(s.got), want[i])
		}
		for _, p := range s.got {
			if p.Dst != i {
				t.Fatalf("packet for %d delivered at %d", p.Dst, i)
			}
			if seen[p.Tag] {
				t.Fatalf("packet %d delivered twice", p.Tag)
			}
			seen[p.Tag] = true
		}
	}
}

// TestPerPathFIFO: two packets injected at the same source to the same
// destination arrive in order (single path, FIFO queues).
func TestPerPathFIFO(t *testing.T) {
	e, n, sinks := build(t, 16, 4)
	for i := 0; i < 10; i++ {
		for !n.Offer(e.Now(), 3, &Packet{Dst: 12, Src: 3, Words: 1, Kind: Read, Tag: uint64(i)}) {
			e.Step()
		}
		e.Step()
	}
	if _, err := e.RunUntil(func() bool { return len(sinks[12].got) == 10 }, 500); err != nil {
		t.Fatal(err)
	}
	for i, p := range sinks[12].got {
		if p.Tag != uint64(i) {
			t.Fatalf("out-of-order delivery on a single path: slot %d has tag %d", i, p.Tag)
		}
	}
}

// Property test: routing digit decomposition reconstructs the destination.
func TestDigitDecomposition(t *testing.T) {
	n := MustNew("t", 64, 8, 0)
	f := func(dRaw uint8) bool {
		d := int(dRaw) % 64
		rebuilt := 0
		for s := 0; s < n.Stages(); s++ {
			rebuilt = rebuilt*8 + n.digitAt(s, d)
		}
		return rebuilt == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncSpecHelpers(t *testing.T) {
	tas := TestAndSet()
	if !tas.Test.Eval(0, tas.TestOperand) {
		t.Fatal("TestAndSet on a clear word must succeed")
	}
	if tas.Test.Eval(1, tas.TestOperand) {
		t.Fatal("TestAndSet on a set word must fail")
	}
	if got := tas.Op.Apply(0, tas.Operand); got != 1 {
		t.Fatalf("TestAndSet sets word to %d, want 1", got)
	}
	faa := FetchAndAdd(5)
	if !faa.Test.Eval(123, faa.TestOperand) {
		t.Fatal("FetchAndAdd test must always pass")
	}
	if got := faa.Op.Apply(7, faa.Operand); got != 12 {
		t.Fatalf("FetchAndAdd(5) applied to 7 = %d, want 12", got)
	}
}

func TestTestKindEval(t *testing.T) {
	cases := []struct {
		k    TestKind
		v, x int64
		want bool
	}{
		{TestAlways, 0, 0, true},
		{TestEQ, 3, 3, true}, {TestEQ, 3, 4, false},
		{TestNE, 3, 4, true}, {TestNE, 3, 3, false},
		{TestLT, 2, 3, true}, {TestLT, 3, 3, false},
		{TestLE, 3, 3, true}, {TestLE, 4, 3, false},
		{TestGT, 4, 3, true}, {TestGT, 3, 3, false},
		{TestGE, 3, 3, true}, {TestGE, 2, 3, false},
	}
	for _, c := range cases {
		if got := c.k.Eval(c.v, c.x); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", c.k, c.v, c.x, got, c.want)
		}
	}
}

func TestOpKindApply(t *testing.T) {
	cases := []struct {
		o    OpKind
		v, x int64
		want int64
	}{
		{OpRead, 9, 100, 9},
		{OpWrite, 9, 100, 100},
		{OpAdd, 9, 100, 109},
		{OpSub, 9, 100, -91},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
	}
	for _, c := range cases {
		if got := c.o.Apply(c.v, c.x); got != c.want {
			t.Errorf("%v.Apply(%d,%d) = %d, want %d", c.o, c.v, c.x, got, c.want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Read: "read", Write: "write", Sync: "sync", Reply: "reply", Kind(99): "unknown"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if TestLT.String() != "<" || TestKind(99).String() != "?" {
		t.Error("TestKind.String misbehaves")
	}
	if OpAdd.String() != "add" || OpKind(99).String() != "?" {
		t.Error("OpKind.String misbehaves")
	}
}

// TestIdealNetworkLatencyMatchesReal: the contentionless fabric keeps
// the omega network's unloaded transit so ablations isolate contention
// only.
func TestIdealNetworkLatencyMatchesReal(t *testing.T) {
	n := MustNewIdeal("ideal", 64, 8)
	if !n.Ideal() {
		t.Fatal("Ideal() false")
	}
	got := []*Packet{}
	var at sim.Cycle = -1
	e := sim.New()
	n.SetSink(9, SinkFunc(func(p *Packet) bool {
		got = append(got, p)
		at = e.Now()
		return true
	}))
	e.Register("net", n)
	n.Offer(e.Now(), 3, &Packet{Dst: 9, Words: 1, Kind: Read})
	if _, err := e.RunUntil(func() bool { return len(got) == 1 }, 50); err != nil {
		t.Fatal(err)
	}
	if at != 3 {
		t.Fatalf("ideal transit = %d, want 3 (entry + 2 stages)", at)
	}
}

// TestIdealNetworkNoContention: 32 conflicting streams to one port are
// limited only by the port's delivery rate, with no switch queueing.
func TestIdealNetworkNoContention(t *testing.T) {
	n := MustNewIdeal("ideal", 64, 8)
	delivered := 0
	e := sim.New()
	for p := 0; p < 64; p++ {
		n.SetSink(p, SinkFunc(func(*Packet) bool { delivered++; return true }))
	}
	e.Register("net", n)
	for s := 0; s < 32; s++ {
		if !n.Offer(e.Now(), s, &Packet{Dst: 0, Src: s, Words: 1, Kind: Read}) {
			t.Fatal("ideal network refused an injection")
		}
	}
	at, err := e.RunUntil(func() bool { return delivered == 32 }, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Port-rate bound only: 3 transit + 31 serialized deliveries + slack.
	if at > 40 {
		t.Fatalf("ideal delivery took %d cycles", at)
	}
	if n.InFlight() != 0 {
		t.Fatal("in-flight accounting wrong")
	}
}
