// Package network models Cedar's two unidirectional global interconnection
// networks: multistage shuffle-exchange (omega) networks built from 8x8
// crossbar switches with 64-bit data paths, two-word queues on every switch
// input and output port, stage-to-stage flow control, and the tag-based
// self-routing scheme of Lawrie [Lawr75]. The forward network carries
// requests from computational elements and prefetch units to the global
// memory modules; the reverse network carries replies back.
//
// Packets consist of one to four 64-bit words; the first word carries the
// routing tag, control information and the memory address, exactly as in
// the paper. A packet occupies queue space equal to its word count and a
// link is busy for one cycle per word, so longer packets consume
// proportionally more bandwidth, and contention appears as queueing delay —
// the mechanism the paper identifies as the source of latency and
// interarrival degradation when more than two clusters issue prefetches.
package network

import "repro/internal/sim"

// Kind identifies the function of a packet.
type Kind uint8

// Packet kinds. Requests travel on the forward network, replies on the
// reverse network.
const (
	// Read requests one 64-bit word from global memory.
	Read Kind = iota
	// Write stores one 64-bit word to global memory; writes are posted
	// (the issuing CE does not stall) because Cedar's global memory
	// system is weakly ordered.
	Write
	// Sync is an indivisible synchronization instruction (Test-And-Set or
	// the Cedar Test-And-Operate family) executed by the synchronization
	// processor in the addressed memory module.
	Sync
	// Reply carries a datum (or a sync result) back to the requester.
	Reply
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Sync:
		return "sync"
	case Reply:
		return "reply"
	}
	return "unknown"
}

// TestKind is the relational test of a Cedar Test-And-Operate
// synchronization instruction, applied to the current memory value.
type TestKind uint8

// Relational tests available to the synchronization processor.
const (
	TestAlways TestKind = iota // unconditional (plain fetch-and-op)
	TestEQ                     // value == operand
	TestNE                     // value != operand
	TestLT                     // value <  operand
	TestLE                     // value <= operand
	TestGT                     // value >  operand
	TestGE                     // value >= operand
)

// Eval applies the test to v against the test operand x.
func (t TestKind) Eval(v, x int64) bool {
	switch t {
	case TestAlways:
		return true
	case TestEQ:
		return v == x
	case TestNE:
		return v != x
	case TestLT:
		return v < x
	case TestLE:
		return v <= x
	case TestGT:
		return v > x
	case TestGE:
		return v >= x
	}
	return false
}

// String returns the relational symbol for the test.
func (t TestKind) String() string {
	switch t {
	case TestAlways:
		return "always"
	case TestEQ:
		return "=="
	case TestNE:
		return "!="
	case TestLT:
		return "<"
	case TestLE:
		return "<="
	case TestGT:
		return ">"
	case TestGE:
		return ">="
	}
	return "?"
}

// OpKind is the operation half of a Test-And-Operate instruction,
// performed on the memory word when the test succeeds.
type OpKind uint8

// Operations available to the synchronization processor.
const (
	OpRead  OpKind = iota // no modification; return the value
	OpWrite               // store the operand
	OpAdd                 // add the operand
	OpSub                 // subtract the operand
	OpAnd                 // bitwise and with the operand
	OpOr                  // bitwise or with the operand
)

// Apply returns the new memory value for current value v and operand x.
func (o OpKind) Apply(v, x int64) int64 {
	switch o {
	case OpRead:
		return v
	case OpWrite:
		return x
	case OpAdd:
		return v + x
	case OpSub:
		return v - x
	case OpAnd:
		return v & x
	case OpOr:
		return v | x
	}
	return v
}

// String returns a mnemonic for the operation.
func (o OpKind) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	}
	return "?"
}

// SyncSpec describes a Test-And-Operate synchronization instruction.
// Test-And-Set is the special case {TestEQ 0, OpWrite 1}.
type SyncSpec struct {
	Test        TestKind
	TestOperand int64
	Op          OpKind
	Operand     int64
}

// TestAndSet returns the spec of the classic Test-And-Set instruction.
func TestAndSet() SyncSpec {
	return SyncSpec{Test: TestEQ, TestOperand: 0, Op: OpWrite, Operand: 1}
}

// FetchAndAdd returns the spec of an unconditional fetch-and-add by delta,
// the primitive Cedar's runtime library uses for loop self-scheduling.
func FetchAndAdd(delta int64) SyncSpec {
	return SyncSpec{Test: TestAlways, Op: OpAdd, Operand: delta}
}

// Packet is a message on one of the global networks.
type Packet struct {
	// Dst is the destination port of the network the packet travels on:
	// a memory-module port on the forward network, a processor port on
	// the reverse network.
	Dst int
	// Src is the originating processor port, used to route the reply.
	Src int
	// Words is the packet length in 64-bit words (1..4), including the
	// header word. It determines queue occupancy and link time.
	Words int
	// Kind is the packet function.
	Kind Kind
	// Addr is the global word address the packet refers to.
	Addr uint64
	// Value is the datum for writes and replies.
	Value uint64
	// OK reports, on sync replies, whether the relational test succeeded.
	OK bool
	// Sync holds the Test-And-Operate specification for Kind == Sync.
	Sync SyncSpec
	// Phantom marks timing-only traffic: the packet consumes network and
	// memory-module bandwidth normally, but a phantom Write does not
	// modify the backing store. Workload code performs its real
	// arithmetic on the backing store through operation completion
	// callbacks, so phantom packets keep the timing and functional
	// models from double-writing. Sync packets are never phantom.
	Phantom bool
	// Tag matches replies to outstanding requests (for the prefetch
	// buffer's full/empty bookkeeping, tags are buffer slot indices).
	Tag uint64
	// Born is the cycle the packet was injected, for performance
	// monitoring. A network stamps it on first injection; replies built
	// from a request must copy Born and set BornSet so the reverse
	// network preserves the request's stamp (round-trip latency is
	// measured at reply delivery).
	Born sim.Cycle
	// BornSet records whether Born has been stamped. A bare Born == 0
	// is ambiguous — cycle 0 is a legitimate injection time — so the
	// flag, not the value, decides whether Offer stamps.
	BornSet bool

	// enq is the cycle the packet entered its current queue (congestion
	// bookkeeping internal to the network).
	enq sim.Cycle
}

// A Sink accepts packets delivered at a network output port (a memory
// module on the forward network, a CE or prefetch unit on the reverse
// network). Offer must return false, without side effects, when the sink
// cannot accept the packet this cycle; the network then retries, applying
// backpressure through its queues.
type Sink interface {
	Offer(p *Packet) bool
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(p *Packet) bool

// Offer implements Sink.
func (f SinkFunc) Offer(p *Packet) bool { return f(p) }
