package network

import (
	"testing"

	"repro/internal/sim"
)

// faultRig is a one-stage 8-port network with a capture sink per port.
type faultRig struct {
	eng *sim.Engine
	n   *Network
	got [][]*Packet
}

func newFaultRig(t *testing.T) *faultRig {
	t.Helper()
	r := &faultRig{eng: sim.New(), n: MustNew("t", 8, 8, 0), got: make([][]*Packet, 8)}
	for p := 0; p < 8; p++ {
		port := p
		r.n.SetSink(port, SinkFunc(func(pk *Packet) bool {
			r.got[port] = append(r.got[port], pk)
			return true
		}))
	}
	r.eng.Register("net", r.n)
	return r
}

func (r *faultRig) drain(t *testing.T) sim.Cycle {
	t.Helper()
	at, err := r.eng.RunUntil(func() bool { return r.n.InFlight() == 0 }, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func TestStallEntryDelaysTransit(t *testing.T) {
	// Baseline: unloaded transit of a 1-stage network.
	r := newFaultRig(t)
	r.n.Offer(r.eng.Now(), 0, &Packet{Dst: 3, Words: 1, Kind: Read})
	base := r.drain(t)

	// Same packet with the entry register stalled for 20 cycles.
	r2 := newFaultRig(t)
	r2.n.StallEntry(r2.eng.Now(), 0, 20)
	r2.n.Offer(r2.eng.Now(), 0, &Packet{Dst: 3, Words: 1, Kind: Read})
	stalled := r2.drain(t)
	if stalled != base+20 {
		t.Fatalf("stalled transit = %d, want base %d + 20", stalled, base)
	}
	if r2.n.FaultStalls != 1 {
		t.Fatalf("FaultStalls = %d, want 1", r2.n.FaultStalls)
	}
	if len(r2.got[3]) != 1 {
		t.Fatalf("packet not delivered after stall window")
	}
}

func TestStallDeliveryDelaysTransit(t *testing.T) {
	// A delivery-link stall window [0,15) holds the packet at the last
	// stage until the window expires: it delivers at cycle 15 and the
	// network observes the drain one cycle later, regardless of how early
	// the packet reached the output queue.
	r := newFaultRig(t)
	r.n.StallDelivery(r.eng.Now(), 3, 15)
	r.n.Offer(r.eng.Now(), 0, &Packet{Dst: 3, Words: 1, Kind: Read})
	if got := r.drain(t); got != 16 {
		t.Fatalf("delivery-stalled drain at %d, want 16 (delivery at window expiry 15)", got)
	}
	if len(r.got[3]) != 1 {
		t.Fatalf("packet not delivered after delivery stall")
	}
}

func TestDropEntryHeadKeepsInFlightExact(t *testing.T) {
	r := newFaultRig(t)
	r.n.Offer(r.eng.Now(), 0, &Packet{Dst: 3, Words: 1, Kind: Read, Tag: 7})
	if r.n.InFlight() != 1 {
		t.Fatalf("InFlight = %d before drop, want 1", r.n.InFlight())
	}
	pk := r.n.DropEntryHead(0, nil)
	if pk == nil || pk.Tag != 7 {
		t.Fatalf("DropEntryHead returned %+v, want the offered packet", pk)
	}
	if r.n.InFlight() != 0 || r.n.Dropped != 1 {
		t.Fatalf("InFlight = %d, Dropped = %d after drop, want 0, 1", r.n.InFlight(), r.n.Dropped)
	}
	// The drained network must park again (idle predicates poll InFlight).
	if ne := r.n.NextEvent(r.eng.Now()); ne != sim.Never {
		t.Fatalf("NextEvent = %d after drop drained the network, want Never", ne)
	}
	r.eng.Run(50)
	if len(r.got[3]) != 0 {
		t.Fatalf("dropped packet was delivered")
	}
}

func TestDropRespectsAllowPredicate(t *testing.T) {
	r := newFaultRig(t)
	r.n.Offer(r.eng.Now(), 0, &Packet{Dst: 3, Words: 1, Kind: Sync})
	if pk := r.n.DropEntryHead(0, func(p *Packet) bool { return p.Kind != Sync }); pk != nil {
		t.Fatalf("drop of a non-droppable packet succeeded: %+v", pk)
	}
	if r.n.Dropped != 0 {
		t.Fatalf("Dropped = %d after refused drop, want 0", r.n.Dropped)
	}
	if r.drain(t); len(r.got[3]) != 1 {
		t.Fatalf("refused-drop packet not delivered")
	}
}

func TestDropSwitchHead(t *testing.T) {
	r := newFaultRig(t)
	r.n.Offer(r.eng.Now(), 0, &Packet{Dst: 3, Words: 1, Kind: Read})
	// After two cycles the packet has left the entry register for the
	// (single) switch column.
	r.eng.Run(2)
	if r.n.EntryPackets() != 0 {
		t.Fatalf("packet still in entry register after 2 cycles")
	}
	wired := r.n.shuffle(0)
	pk := r.n.DropSwitchHead(0, wired/r.n.Radix(), wired%r.n.Radix(), nil)
	if pk == nil {
		// The packet may already sit in an output queue; this drop API
		// only covers input queues, so nothing was dropped.
		t.Skip("packet advanced past the input queue; covered by entry-drop test")
	}
	if r.n.InFlight() != 0 {
		t.Fatalf("InFlight = %d after switch drop, want 0", r.n.InFlight())
	}
}

func TestFaultsAreNoOpsOnIdealNetwork(t *testing.T) {
	n := MustNewIdeal("i", 8, 8)
	n.StallEntry(0, 0, 100)
	n.StallDelivery(0, 0, 100)
	if pk := n.DropEntryHead(0, nil); pk != nil {
		t.Fatalf("ideal DropEntryHead returned %+v", pk)
	}
	if n.FaultStalls != 0 || n.Dropped != 0 {
		t.Fatalf("ideal network accrued fault counters: stalls %d drops %d", n.FaultStalls, n.Dropped)
	}
}
