package network

import (
	"fmt"

	"repro/internal/telemetry"
)

// StagePackets reports the packets buffered in stage s's switches (input
// plus output queues). Ideal networks have no switch fabric and report
// zero.
func (n *Network) StagePackets(s int) int {
	if n.ideal {
		return 0
	}
	total := 0
	for _, x := range n.sw[s] {
		total += x.inPkts + x.outPkts
	}
	return total
}

// EntryPackets reports the packets waiting in the entry registers.
func (n *Network) EntryPackets() int {
	if n.ideal {
		return len(n.idealFlight)
	}
	return n.entryCount
}

// RegisterMetrics publishes the network's counters under prefix (for
// example "net/fwd"), including an in-flight gauge and, on a real omega
// fabric, per-stage occupancy gauges.
func (n *Network) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/injected", &n.Injected)
	reg.Counter(prefix+"/delivered", &n.Delivered)
	reg.Counter(prefix+"/words_in", &n.WordsIn)
	reg.Counter(prefix+"/rejected", &n.Rejected)
	reg.Counter(prefix+"/dropped", &n.Dropped)
	reg.Counter(prefix+"/fault_stalls", &n.FaultStalls)
	reg.Gauge(prefix+"/in_flight", func() int64 { return int64(n.InFlight()) })
	reg.Gauge(prefix+"/entry_pkts", func() int64 { return int64(n.EntryPackets()) })
	if n.ideal {
		return
	}
	for s := 0; s < n.stages; s++ {
		stage := s
		reg.Gauge(fmt.Sprintf("%s/stage%d_pkts", prefix, stage),
			func() int64 { return int64(n.StagePackets(stage)) })
	}
}
