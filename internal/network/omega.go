package network

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultQueueWords is the per-port queue capacity of a Cedar network
// switch: two 64-bit words, as built.
const DefaultQueueWords = 2

// pktQueue is a FIFO of packets with capacity counted in words.
// An empty queue always accepts one packet even if the packet is longer
// than the capacity (word-level wormhole flow in the real switch lets a
// long packet stream through a short queue); a non-empty queue accepts
// only what fits.
type pktQueue struct {
	capWords int
	words    int
	pkts     []*Packet
}

func (q *pktQueue) canAccept(w int) bool {
	return len(q.pkts) == 0 || q.words+w <= q.capWords
}

// agePenalty returns the extra handshake cycle a transfer costs when the
// departing packet had to sit in this queue behind congestion. A smooth
// pipelined stream moves every packet one hop per cycle (preserving the
// 1-cycle minimal interarrival); once queues back up, each restarted
// transfer pays an arbitration/handshake cycle, dropping the effective
// port rate toward half — the "specific implementation constraints"
// [Turn93] the paper identifies as the cause of the latency and
// interarrival degradation beyond two clusters.
func (q *pktQueue) agePenalty(p *Packet, now sim.Cycle) sim.Cycle {
	if now-p.enq >= 2 {
		return 1
	}
	return 0
}

func (q *pktQueue) push(p *Packet, now sim.Cycle) {
	p.enq = now
	q.pkts = append(q.pkts, p)
	q.words += p.Words
}

func (q *pktQueue) head() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	return q.pkts[0]
}

func (q *pktQueue) pop() *Packet {
	p := q.pkts[0]
	copy(q.pkts, q.pkts[1:])
	q.pkts = q.pkts[:len(q.pkts)-1]
	q.words -= p.Words
	return p
}

// crossbar is one r x r switch: r input queues, r output queues,
// round-robin arbitration per output, one packet transfer per output per
// cycle at one word per cycle. inPkts/outPkts counters let the network
// skip idle switches.
type crossbar struct {
	radix     int
	in        []pktQueue
	out       []pktQueue
	rr        []int       // round-robin arbitration pointer per output
	outFreeAt []sim.Cycle // internal transfer path busy-until, per output
	inPkts    int
	outPkts   int
}

func newCrossbar(radix, queueWords int) *crossbar {
	x := &crossbar{
		radix:     radix,
		in:        make([]pktQueue, radix),
		out:       make([]pktQueue, radix),
		rr:        make([]int, radix),
		outFreeAt: make([]sim.Cycle, radix),
	}
	for i := range x.in {
		x.in[i].capWords = queueWords
		x.out[i].capWords = queueWords
	}
	return x
}

// route moves packets from input queues to output queues according to the
// routing digit extracted by shift/radix. Each output accepts at most one
// packet per transfer slot; blocked heads cause head-of-line blocking,
// which is how contention propagates upstream in the real switch.
func (x *crossbar) route(now sim.Cycle, shift int) {
	if x.inPkts == 0 {
		return
	}
	// One pass over inputs: which output does each head want?
	var wantMask uint32 // outputs with at least one claimant
	var claim [16]uint16
	for i := 0; i < x.radix; i++ {
		p := x.in[i].head()
		if p == nil {
			continue
		}
		d := (p.Dst / shift) % x.radix
		claim[d] |= 1 << uint(i)
		wantMask |= 1 << uint(d)
	}
	for o := 0; o < x.radix; o++ {
		if wantMask&(1<<uint(o)) == 0 || x.outFreeAt[o] > now {
			continue
		}
		// Round-robin over claimants of output o.
		for k := 0; k < x.radix; k++ {
			i := (x.rr[o] + k) % x.radix
			if claim[o]&(1<<uint(i)) == 0 {
				continue
			}
			p := x.in[i].head()
			if !x.out[o].canAccept(p.Words) {
				break // output full: everyone wanting o stalls
			}
			x.out[o].push(x.in[i].pop(), now)
			x.inPkts--
			x.outPkts++
			x.outFreeAt[o] = now + sim.Cycle(p.Words) + x.in[i].agePenalty(p, now)
			x.rr[o] = (i + 1) % x.radix
			break
		}
	}
}

// Network is a k-stage omega network of r x r crossbars with N = r^k
// ports, tag-routed most-significant-digit first, with an r-ary perfect
// shuffle wiring before every stage (Lawrie's shuffle-exchange topology).
type Network struct {
	name       string
	ports      int
	radix      int
	stages     int
	queueWords int

	sw [][]*crossbar // [stage][switch]

	// digitShift[s] = radix^(stages-1-s): the divisor extracting the
	// routing digit used at stage s.
	digitShift []int

	// entry is the per-input-port register stage between a source and the
	// first switch column; it costs one cycle, so a k-stage network has a
	// k+1 cycle unloaded transit (3 cycles for Cedar's 2-stage networks,
	// composing with the 2-cycle memory pipeline to the paper's 8-cycle
	// minimal round-trip latency).
	entry      []pktQueue
	entryFree  []sim.Cycle
	entryCount int

	sinks       []Sink
	linkFreeAt  [][]sim.Cycle // inter-stage link busy, [stage][outPort]
	deliverFree []sim.Cycle

	// ideal selects the contentionless fabric of NewIdeal; idealFlight
	// holds its in-flight packets.
	ideal       bool
	idealFlight []idealPkt

	waker sim.Waker

	// parOn arms deferred offer accounting (sim.Boundary): during the
	// parallel engine's phase 2, Offer records counter deltas and the
	// wake in the caller's per-port account instead of the shared fields,
	// and CommitConcurrent folds them in at the rendezvous. The per-port
	// packet queue itself is exclusively owned by one cluster's CE/PFU
	// pair, so the push and Born stamp stay direct and cycle-exact.
	parOn   bool
	parAcct []offerAcct

	// OnDeliver, if non-nil, observes every packet as it leaves the
	// network, for performance monitoring.
	OnDeliver func(now sim.Cycle, port int, p *Packet)

	// Counters.
	Injected    int64
	Delivered   int64
	WordsIn     int64
	Rejected    int64 // injection attempts refused by a full entry queue
	Dropped     int64 // packets removed by injected drop faults
	FaultStalls int64 // stall-fault windows applied to ports and links
}

// New builds an omega network with the given number of ports. ports must
// be a power of radix and radix must be at least 2 (and at most 16).
// queueWords <= 0 selects DefaultQueueWords.
func New(name string, ports, radix, queueWords int) (*Network, error) {
	if radix < 2 || radix > 16 {
		return nil, fmt.Errorf("network %s: radix %d outside 2..16", name, radix)
	}
	stages := 0
	for n := 1; n < ports; n *= radix {
		stages++
		if stages > 16 {
			break
		}
	}
	if pow(radix, stages) != ports || ports < radix {
		return nil, fmt.Errorf("network %s: ports %d is not a power of radix %d", name, ports, radix)
	}
	if queueWords <= 0 {
		queueWords = DefaultQueueWords
	}
	n := &Network{
		name:        name,
		ports:       ports,
		radix:       radix,
		stages:      stages,
		queueWords:  queueWords,
		sinks:       make([]Sink, ports),
		entry:       make([]pktQueue, ports),
		entryFree:   make([]sim.Cycle, ports),
		deliverFree: make([]sim.Cycle, ports),
	}
	for i := range n.entry {
		n.entry[i].capWords = queueWords
	}
	n.sw = make([][]*crossbar, stages)
	n.linkFreeAt = make([][]sim.Cycle, stages)
	n.digitShift = make([]int, stages)
	for s := 0; s < stages; s++ {
		row := make([]*crossbar, ports/radix)
		for j := range row {
			row[j] = newCrossbar(radix, queueWords)
		}
		n.sw[s] = row
		n.linkFreeAt[s] = make([]sim.Cycle, ports)
		n.digitShift[s] = pow(radix, stages-1-s)
	}
	return n, nil
}

// MustNew is New, panicking on configuration errors. Intended for the
// fixed machine-assembly code paths where the configuration is validated
// at machine construction.
func MustNew(name string, ports, radix, queueWords int) *Network {
	n, err := New(name, ports, radix, queueWords)
	if err != nil {
		panic(err)
	}
	return n
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// Ports returns the number of input (and output) ports.
func (n *Network) Ports() int { return n.ports }

// Stages returns the number of switch stages.
func (n *Network) Stages() int { return n.stages }

// Radix returns the switch radix.
func (n *Network) Radix() int { return n.radix }

// Name returns the network's name ("forward" or "reverse" in a Cedar).
func (n *Network) Name() string { return n.name }

// shuffle is the r-ary perfect shuffle on ports: a left rotation of the
// base-r digit string of i.
func (n *Network) shuffle(i int) int {
	return (i*n.radix)%n.ports + (i*n.radix)/n.ports
}

// digitAt extracts the routing digit used at stage s: destination digits
// most-significant first.
func (n *Network) digitAt(s, dst int) int {
	return (dst / n.digitShift[s]) % n.radix
}

// SetSink attaches the consumer of packets delivered at output port p.
func (n *Network) SetSink(p int, s Sink) {
	n.sinks[p] = s
}

// Offer injects a packet at input port src. It returns false when the
// first-stage input queue cannot accept the packet this cycle; the source
// must retry (this is how backpressure reaches the processors).
func (n *Network) Offer(now sim.Cycle, src int, p *Packet) bool {
	if p.Dst < 0 || p.Dst >= n.ports {
		panic(fmt.Sprintf("network %s: packet destination %d out of range [0,%d)", n.name, p.Dst, n.ports))
	}
	if p.Words < 1 || p.Words > 4 {
		panic(fmt.Sprintf("network %s: packet of %d words (must be 1..4)", n.name, p.Words))
	}
	if n.ideal {
		return n.offerIdeal(now, src, p)
	}
	q := &n.entry[src]
	if n.parOn {
		return n.offerDeferred(now, src, q, p)
	}
	if !q.canAccept(p.Words) {
		n.Rejected++
		return false
	}
	if !p.BornSet {
		// Stamp the injection time once; replies carry BornSet from the
		// original request so round-trip latency can be measured at the
		// reverse network's delivery — even for requests genuinely
		// injected at cycle 0, which a Born == 0 test would re-stamp.
		p.Born = now
		p.BornSet = true
	}
	q.push(p, now)
	n.entryCount++
	n.Injected++
	n.WordsIn += int64(p.Words)
	n.wake()
	return true
}

// offerAcct is one input port's deferred offer accounting, padded so
// ports owned by different worker goroutines never share a cache line.
type offerAcct struct {
	injected int64
	words    int64
	rejected int64
	entered  int64
	wake     bool
	_        [23]byte
}

// offerDeferred is Offer's phase-2 body: the accept/reject decision and
// the packet push are port-local and identical to the sequential path;
// only the shared counters and the wake are buffered for the commit.
func (n *Network) offerDeferred(now sim.Cycle, src int, q *pktQueue, p *Packet) bool {
	a := &n.parAcct[src]
	if !q.canAccept(p.Words) {
		a.rejected++
		return false
	}
	if !p.BornSet {
		p.Born = now
		p.BornSet = true
	}
	q.push(p, now)
	a.entered++
	a.injected++
	a.words += int64(p.Words)
	a.wake = true
	return true
}

// BeginConcurrent implements sim.Boundary: arm deferred offer
// accounting for a phase-2 window. The ideal fabric keeps its in-flight
// packets in one shared slice, so it cannot take concurrent offers.
func (n *Network) BeginConcurrent() {
	if n.ideal {
		panic(fmt.Sprintf("network %s: the ideal fabric cannot be a parallel boundary", n.name))
	}
	if n.parAcct == nil {
		n.parAcct = make([]offerAcct, n.ports)
	}
	n.parOn = true
}

// CommitConcurrent implements sim.Boundary: fold the buffered per-port
// accounts into the shared counters in ascending port order and apply
// the single wake the accepted offers earned. Sums are order-free, so
// the totals — and the wake slot, taken at the rendezvous before the
// network's own tick this cycle — are exactly the sequential ones.
func (n *Network) CommitConcurrent() {
	n.parOn = false
	woken := false
	for i := range n.parAcct {
		a := &n.parAcct[i]
		if a.injected == 0 && a.rejected == 0 {
			continue
		}
		n.Injected += a.injected
		n.WordsIn += a.words
		n.Rejected += a.rejected
		n.entryCount += int(a.entered)
		woken = woken || a.wake
		*a = offerAcct{}
	}
	if woken {
		n.wake()
	}
}

// AttachWaker implements sim.WakeSink: the engine hands the network its
// own Handle at registration. A network reports sim.Never only when it is
// drained, so the only stimulus that must wake it is an accepted Offer
// (a rejected Offer implies a non-empty entry queue — not drained).
func (n *Network) AttachWaker(w sim.Waker) { n.waker = w }

func (n *Network) wake() {
	if n.waker != nil {
		n.waker.Wake()
	}
}

// Tick advances the network one cycle: deliver from the last stage,
// advance inter-stage links, route inside each crossbar, then drain the
// entry registers — processed downstream-first so a packet advances at
// most one stage per cycle while freed space propagates upstream
// immediately.
func (n *Network) Tick(now sim.Cycle) {
	if n.ideal {
		n.tickIdeal(now)
		return
	}
	last := n.stages - 1
	r := n.radix
	// Delivery links: last-stage output queues to sinks.
	for swi, x := range n.sw[last] {
		if x.outPkts == 0 {
			continue
		}
		base := swi * r
		for o := 0; o < r; o++ {
			port := base + o
			if n.deliverFree[port] > now {
				continue
			}
			p := x.out[o].head()
			if p == nil {
				continue
			}
			sink := n.sinks[port]
			if sink == nil {
				panic(fmt.Sprintf("network %s: delivery to port %d with no sink", n.name, port))
			}
			if !sink.Offer(p) {
				continue
			}
			x.out[o].pop()
			x.outPkts--
			n.deliverFree[port] = now + sim.Cycle(p.Words) + x.out[o].agePenalty(p, now)
			n.Delivered++
			if n.OnDeliver != nil {
				n.OnDeliver(now, port, p)
			}
		}
	}
	// Inter-stage links: stage s-1 outputs to stage s inputs through the
	// shuffle wiring, one word per cycle per link.
	for s := last; s >= 1; s-- {
		free := n.linkFreeAt[s-1]
		for swi, x := range n.sw[s-1] {
			if x.outPkts == 0 {
				continue
			}
			base := swi * r
			for o := 0; o < r; o++ {
				port := base + o
				if free[port] > now {
					continue
				}
				p := x.out[o].head()
				if p == nil {
					continue
				}
				wired := n.shuffle(port)
				dx := n.sw[s][wired/r]
				dq := &dx.in[wired%r]
				if !dq.canAccept(p.Words) {
					continue
				}
				dq.push(x.out[o].pop(), now)
				x.outPkts--
				dx.inPkts++
				free[port] = now + sim.Cycle(p.Words) + x.out[o].agePenalty(p, now)
			}
		}
	}
	// Crossbar internal routing, downstream stages first.
	for s := last; s >= 0; s-- {
		shift := n.digitShift[s]
		for _, x := range n.sw[s] {
			x.route(now, shift)
		}
	}
	// Entry registers feed the first switch column through the shuffle
	// wiring, one word per cycle per port. Processed last so an injected
	// packet is routed no earlier than the following cycle.
	if n.entryCount > 0 {
		for port := 0; port < n.ports; port++ {
			if n.entryFree[port] > now {
				continue
			}
			p := n.entry[port].head()
			if p == nil {
				continue
			}
			wired := n.shuffle(port)
			dx := n.sw[0][wired/r]
			dq := &dx.in[wired%r]
			if !dq.canAccept(p.Words) {
				continue
			}
			dq.push(n.entry[port].pop(), now)
			n.entryCount--
			dx.inPkts++
			n.entryFree[port] = now + sim.Cycle(p.Words) + n.entry[port].agePenalty(p, now)
		}
	}
}

// InFlight reports the number of packets currently buffered anywhere in
// the network. Accepted injections, deliveries, and drop faults are the
// only ways a packet enters or leaves, so the counter arithmetic is
// exact; keeping this O(1) matters because idle predicates poll it every
// cycle.
func (n *Network) InFlight() int {
	return int(n.Injected - n.Delivered - n.Dropped)
}

// NextEvent implements sim.IdleComponent: a drained network has nothing
// to move, and packets otherwise make progress (or retry blocked hops)
// every cycle. New injections arrive via Offer, which is external
// stimulus, so an empty network reports Never.
func (n *Network) NextEvent(now sim.Cycle) sim.Cycle {
	if n.InFlight() > 0 {
		return now
	}
	return sim.Never
}

// StaticRoute returns the sequence of output ports visited by a packet
// from src to dst, without simulating. It exists for tests and for
// topology introspection: the omega tag-routing scheme gives a unique
// path for every (src, dst) pair.
func (n *Network) StaticRoute(src, dst int) []int {
	path := make([]int, 0, n.stages)
	at := src
	for s := 0; s < n.stages; s++ {
		at = n.shuffle(at)
		sw := at / n.radix
		out := sw*n.radix + n.digitAt(s, dst)
		path = append(path, out)
		at = out
	}
	return path
}
