package job

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestCanonicalGolden pins the canonical bytes. These strings are the
// fingerprint contract: cached results key on their SHA-256, so any
// encoding change (field order, a new field, a default) invalidates
// every persisted fingerprint and must show up here as a deliberate
// golden update.
func TestCanonicalGolden(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{
			"defaults materialized",
			Spec{Workload: "rk"},
			`{"clusters":4,"engine":"wake-cached","fault_kinds":[],"fault_rate":0,"fault_seed":0,"iterations":0,"mode":"pref","par_workers":0,"prefetch":true,"probe":true,"size":0,"topology":"cedar","workload":"rk"}`,
		},
		{
			"every field set",
			Spec{Workload: "cg", Mode: "cache", Prefetch: Bool(false), Probe: Bool(false),
				Iterations: 7, Size: 8192, Clusters: 2, Topology: "scaled", Engine: "parallel",
				ParWorkers: 3, FaultSeed: 9, FaultRate: 0.25, FaultKinds: []string{"net-stall", "ce-drop"}},
			`{"clusters":2,"engine":"parallel","fault_kinds":["ce-drop","net-stall"],"fault_rate":0.25,"fault_seed":9,"iterations":7,"mode":"cache","par_workers":3,"prefetch":false,"probe":false,"size":8192,"topology":"scaled","workload":"cg"}`,
		},
		{
			"fault fields canonicalized away at rate zero",
			Spec{Workload: "vl", FaultSeed: 1234, FaultKinds: []string{"net-stall"}},
			`{"clusters":4,"engine":"wake-cached","fault_kinds":[],"fault_rate":0,"fault_seed":0,"iterations":0,"mode":"pref","par_workers":0,"prefetch":true,"probe":true,"size":0,"topology":"cedar","workload":"vl"}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.spec.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Fatalf("canonical bytes changed:\n got %s\nwant %s", got, tc.want)
			}
		})
	}
}

// TestFingerprintCollapsesSpellings: specs that describe the same
// simulation must fingerprint identically however they were spelled —
// JSON field order, explicit defaults, kind-list order and duplicates,
// and an inert fault seed must all collapse.
func TestFingerprintCollapsesSpellings(t *testing.T) {
	base, err := Spec{Workload: "tm", Size: 2048}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	same := []struct {
		name string
		json string
	}{
		{"field order", `{"size":2048,"workload":"tm"}`},
		{"explicit defaults", `{"workload":"tm","size":2048,"mode":"pref","prefetch":true,"probe":true,"clusters":4,"topology":"cedar","engine":"wake-cached"}`},
		{"inert fault seed", `{"workload":"tm","size":2048,"fault_seed":77}`},
	}
	for _, tc := range same {
		specs, err := Decode(strings.NewReader(tc.json))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		fp, err := specs[0].Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if fp != base {
			t.Fatalf("%s: fingerprint %s != base %s", tc.name, fp, base)
		}
	}

	// Kind-list order and duplicates collapse (with a live fault rate).
	a, _ := Spec{Workload: "tm", FaultRate: 0.5, FaultKinds: []string{"net-stall", "ce-drop"}}.Fingerprint()
	b, _ := Spec{Workload: "tm", FaultRate: 0.5, FaultKinds: []string{"ce-drop", "net-stall", "ce-drop"}}.Fingerprint()
	if a != b {
		t.Fatalf("kind-list order changed the fingerprint: %s vs %s", a, b)
	}
}

// TestFingerprintSeparatesSpecs: any semantic difference must separate
// fingerprints — the cache must never serve one config's results for
// another.
func TestFingerprintSeparatesSpecs(t *testing.T) {
	base := Spec{Workload: "vl", Size: 4096}
	variants := []Spec{
		{Workload: "tm", Size: 4096},
		{Workload: "vl", Size: 8192},
		{Workload: "vl", Size: 4096, Clusters: 2},
		{Workload: "vl", Size: 4096, Prefetch: Bool(false)},
		{Workload: "vl", Size: 4096, Probe: Bool(false)},
		{Workload: "vl", Size: 4096, Iterations: 2},
		{Workload: "vl", Size: 4096, Topology: "scaled"},
		{Workload: "vl", Size: 4096, Engine: "naive"},
		{Workload: "vl", Size: 4096, FaultRate: 0.5},
		{Workload: "vl", Size: 4096, FaultRate: 0.5, FaultSeed: 2},
		{Workload: "vl", Size: 4096, FaultRate: 0.5, FaultKinds: []string{"net-stall"}},
	}
	seen := map[string]string{}
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	seen[fp] = "base"
	for i, v := range variants {
		fp, err := v.Fingerprint()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d collides with %s: %+v", i, prev, v)
		}
		seen[fp] = v.Workload
	}
}

// TestSpecValidation: every malformed field dies as a *ValidationError
// naming the field — the same rules cedarsim enforces at exit 2 and
// cedard at HTTP 400.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		field string
	}{
		{"missing workload", Spec{}, "workload"},
		{"unknown mode", Spec{Workload: "rk", Mode: "warp"}, "mode"},
		{"negative size", Spec{Workload: "rk", Size: -1}, "size"},
		{"negative iterations", Spec{Workload: "rk", Iterations: -3}, "iterations"},
		{"unknown topology", Spec{Workload: "rk", Topology: "torus"}, "topology"},
		{"clusters beyond cedar", Spec{Workload: "rk", Clusters: 5}, "clusters"},
		{"clusters beyond scaled", Spec{Workload: "rk", Topology: "scaled", Clusters: 65}, "clusters"},
		{"unknown engine", Spec{Workload: "rk", Engine: "warp"}, "engine"},
		{"negative workers", Spec{Workload: "rk", ParWorkers: -1}, "par_workers"},
		{"workers without parallel", Spec{Workload: "rk", ParWorkers: 2}, "par_workers"},
		{"fault rate above one", Spec{Workload: "rk", FaultRate: 1.5}, "fault_rate"},
		{"negative fault seed", Spec{Workload: "rk", FaultSeed: -1, FaultRate: 0.5}, "fault_seed"},
		{"unknown fault kind", Spec{Workload: "rk", FaultKinds: []string{"gamma-ray"}}, "fault_kinds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("got %v, want a *ValidationError", err)
			}
			if verr.Field != tc.field {
				t.Fatalf("error names field %q, want %q (%v)", verr.Field, tc.field, err)
			}
		})
	}
	// Scaled topology legitimately exceeds cedar's 4-cluster bound.
	if err := (Spec{Workload: "rk", Topology: "scaled", Clusters: 16}).Validate(); err != nil {
		t.Fatalf("16-cluster scaled spec rejected: %v", err)
	}
}

// TestSpecParams: the workload-level fields map onto workload.Params
// with the Spec defaults applied.
func TestSpecParams(t *testing.T) {
	n, err := Spec{Workload: "rk", Mode: "cache", Size: 256}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Params{Mode: workload.GMCache, Prefetch: true, Probe: true, Size: 256}
	if got := n.Params(); got != want {
		t.Fatalf("Params() = %+v, want %+v", got, want)
	}
}

// TestDecodeStrict: unknown fields, malformed bodies, empty and
// trailing batches are client errors, not defaults.
func TestDecodeStrict(t *testing.T) {
	good := `[{"workload":"rk"},{"workload":"vl","size":1024}]`
	specs, err := Decode(strings.NewReader(good))
	if err != nil || len(specs) != 2 {
		t.Fatalf("Decode(batch) = %d specs, %v", len(specs), err)
	}
	single, err := Decode(strings.NewReader(`{"workload":"rk"}`))
	if err != nil || len(single) != 1 {
		t.Fatalf("Decode(single) = %d specs, %v", len(single), err)
	}
	for _, bad := range []string{
		`{"workload":"rk","iters":5}`,  // unknown field (typo of iterations)
		`[{"workload":"rk","nope":1}]`, // unknown field inside a batch
		`{"workload":"rk"} {"workload":"vl"}`, // trailing document
		`[]`,        // empty batch
		`not json`,  // garbage
	} {
		if _, err := Decode(strings.NewReader(bad)); err == nil {
			t.Fatalf("Decode(%q) accepted", bad)
		} else {
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("Decode(%q) error %v is not a *ValidationError", bad, err)
			}
		}
	}
}
