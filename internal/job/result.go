package job

import "fmt"

// Result is the serializable outcome of one simulation job — what
// cedard returns over the wire and what the cache stores. Everything in
// it is derived deterministically from the Spec, so a cached Result is
// indistinguishable from a fresh one.
type Result struct {
	// Workload is the kernel-and-variant name the run reported.
	Workload string `json:"workload"`
	// CEs is the processor count used.
	CEs int `json:"ces"`
	// Cycles is the elapsed simulated time in 170ns cycles.
	Cycles int64 `json:"cycles"`
	// Flops is the floating-point operation count performed by the CEs.
	Flops int64 `json:"flops"`
	// MFLOPS is the paper's rate metric.
	MFLOPS float64 `json:"mflops"`
	// Check is the kernel's numerical checksum for verification.
	Check float64 `json:"check"`
	// LatencyCycles and InterarrivalCycles are the Table 2 prefetch
	// metrics; absent when the run carried no probe (JSON has no NaN).
	LatencyCycles      *float64 `json:"latency_cycles,omitempty"`
	InterarrivalCycles *float64 `json:"interarrival_cycles,omitempty"`
	// Notes carries kernel-specific result lines (a CG residual, an I/O
	// volume) verbatim.
	Notes []string `json:"notes,omitempty"`
	// Tables carries the run's rendered report tables (utilization,
	// per-cluster I/O, the fault census) as text blocks.
	Tables []string `json:"tables,omitempty"`
	// RegistryFingerprint is the machine's architected-metric
	// fingerprint after the run — the determinism witness: identical
	// Specs produce identical fingerprints, on every engine path.
	RegistryFingerprint string `json:"registry_fingerprint"`
	// FaultCensus maps fault-kind mnemonics (plus "repairs" and
	// "no-target") to injection counts; absent on fault-free runs.
	FaultCensus map[string]int64 `json:"fault_census,omitempty"`
}

// String renders the paper's one-line result summary, identical to the
// workload result line cedarsim has always printed.
func (r Result) String() string {
	s := fmt.Sprintf("%-14s P=%-3d %8d cycles  %7.1f MFLOPS", r.Workload, r.CEs, r.Cycles, r.MFLOPS)
	if r.LatencyCycles != nil && r.InterarrivalCycles != nil {
		s += fmt.Sprintf("  lat=%5.1f  ia=%4.2f", *r.LatencyCycles, *r.InterarrivalCycles)
	}
	return s
}
