// Package job defines the canonical, serializable description of one
// simulation — the public API drivers share. A Spec carries everything
// that determines a run's outcome (workload and its parameters, machine
// topology, engine path, fault schedule) and nothing else: no function
// or interface field can hide in it, so its canonical encoding is a
// sound cache key. The simulator is fully deterministic — identical
// Specs yield bit-identical results — which makes Fingerprint the
// memoization key cedard's result cache and in-flight dedupe are built
// on, and the same Spec→runner path serves cedarsim's flag parsing.
//
// Canonicalization contract: Canonical returns deterministic bytes — a
// fixed-order, sorted-key JSON encoding of the normalized spec, with
// every default materialized and semantically inert fields zeroed (a
// fault seed with the fault rate at zero, for example). Two specs that
// describe the same simulation therefore encode to the same bytes and
// collide in the cache, however their fields were spelled. The golden
// test pins the bytes; changing the encoding invalidates every
// persisted fingerprint and must be deliberate.
package job

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/fault"
	"repro/internal/workload"
)

// Spec describes one simulation job. The zero value of every field
// selects a documented default, so sparse JSON bodies and sparse flag
// sets mean the same run; Normalized materializes the defaults.
type Spec struct {
	// Workload is the registry name of the kernel to run (rk, vl, tm,
	// cg, bdna, mg3d). Required.
	Workload string `json:"workload"`
	// Mode is the rk memory mode: "nopref", "pref" or "cache" (Table
	// 1's three versions). Default "pref".
	Mode string `json:"mode,omitempty"`
	// Prefetch drives global vector operands through the PFUs for
	// kernels with a prefetch toggle. Default true.
	Prefetch *bool `json:"prefetch,omitempty"`
	// Probe attaches the Table 2 performance monitor to CE 0's prefetch
	// unit. Default true.
	Probe *bool `json:"probe,omitempty"`
	// Iterations overrides the kernel's iteration/step count; zero
	// selects the kernel default.
	Iterations int `json:"iterations,omitempty"`
	// Size overrides the kernel's problem size in elements; zero
	// selects the kernel default.
	Size int `json:"size,omitempty"`
	// Clusters is the cluster count. Default 4; the "cedar" topology
	// allows 1..4, "scaled" up to 64.
	Clusters int `json:"clusters,omitempty"`
	// Topology selects the machine builder: "cedar" (the as-built
	// machine scaled to Clusters) or "scaled" (the PPT5 scaled-up
	// configuration: one memory module per CE, deeper networks).
	// Default "cedar".
	Topology string `json:"topology,omitempty"`
	// Engine is the engine path: "naive", "quiescent", "wake-cached" or
	// "parallel". Results are bit-identical on every path. Default
	// "wake-cached".
	Engine string `json:"engine,omitempty"`
	// ParWorkers is the phase-2 goroutine budget for the parallel
	// engine (0 picks min(NumCPU, Clusters)); only meaningful — and
	// only accepted — with Engine "parallel".
	ParWorkers int `json:"par_workers,omitempty"`
	// FaultSeed selects the deterministic fault schedule; non-negative.
	// Ignored (and canonicalized away) while FaultRate is zero.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// FaultRate is the mean injected-fault rate in faults per 10k
	// cycles, in [0,1]. Zero disables fault injection.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultKinds restricts injection to the named kinds (mnemonics from
	// fault.KindNames); empty means all kinds. Ignored (and
	// canonicalized away) while FaultRate is zero.
	FaultKinds []string `json:"fault_kinds,omitempty"`
}

// Bool returns a pointer to v, for Spec literals.
func Bool(v bool) *bool { return &v }

// Spec defaults, materialized by Normalized.
const (
	DefaultMode     = "pref"
	DefaultTopology = "cedar"
	DefaultEngine   = "wake-cached"
	DefaultClusters = 4
)

// EngineNames lists the valid Spec.Engine values. The runner maps them
// onto sim engine modes; results are bit-identical across all four.
var EngineNames = []string{"naive", "quiescent", "wake-cached", "parallel"}

// modeValues maps Spec.Mode names onto workload memory modes.
var modeValues = map[string]workload.Mode{
	"nopref": workload.GMNoPrefetch,
	"pref":   workload.GMPrefetch,
	"cache":  workload.GMCache,
}

// ValidationError reports a Spec no machine can be built for. It is the
// usage-error surface of the job API: cedarsim maps it to exit status 2
// (like a malformed flag) and cedard to HTTP 400.
type ValidationError struct {
	// Field names the offending Spec field in its serialized form.
	Field string
	// Reason says what a legal value looks like.
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("job: invalid spec: %s: %s", e.Field, e.Reason)
}

func invalid(field, format string, args ...any) error {
	return &ValidationError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Normalized validates s and returns a copy with every default
// materialized and semantically inert fields canonicalized away, so
// that specs describing the same simulation compare (and encode)
// equal. The rules mirror what cedarsim has always enforced at flag
// level; every violation is a *ValidationError.
func (s Spec) Normalized() (Spec, error) {
	n := s
	if n.Workload == "" {
		return Spec{}, invalid("workload", "a workload name is required (one of the registry names)")
	}
	if n.Mode == "" {
		n.Mode = DefaultMode
	}
	if _, ok := modeValues[n.Mode]; !ok {
		return Spec{}, invalid("mode", "unknown mode %q (nopref, pref or cache)", n.Mode)
	}
	if n.Prefetch == nil {
		n.Prefetch = Bool(true)
	} else { // decouple from the caller's pointer
		n.Prefetch = Bool(*n.Prefetch)
	}
	if n.Probe == nil {
		n.Probe = Bool(true)
	} else {
		n.Probe = Bool(*n.Probe)
	}
	if n.Size < 0 {
		return Spec{}, invalid("size", "cannot be negative (0 selects the kernel default)")
	}
	if n.Iterations < 0 {
		return Spec{}, invalid("iterations", "cannot be negative (0 selects the kernel default)")
	}
	if n.Topology == "" {
		n.Topology = DefaultTopology
	}
	maxClusters := 0
	switch n.Topology {
	case "cedar":
		maxClusters = 4
	case "scaled":
		maxClusters = 64
	default:
		return Spec{}, invalid("topology", "unknown topology %q (cedar or scaled)", n.Topology)
	}
	if n.Clusters == 0 {
		n.Clusters = DefaultClusters
	}
	if n.Clusters < 1 || n.Clusters > maxClusters {
		return Spec{}, invalid("clusters", "%d outside 1..%d for the %s topology", n.Clusters, maxClusters, n.Topology)
	}
	if n.Engine == "" {
		n.Engine = DefaultEngine
	}
	engineOK := false
	for _, name := range EngineNames {
		if n.Engine == name {
			engineOK = true
		}
	}
	if !engineOK {
		return Spec{}, invalid("engine", "unknown engine %q (naive, quiescent, wake-cached or parallel)", n.Engine)
	}
	if n.ParWorkers < 0 {
		return Spec{}, invalid("par_workers", "the worker budget cannot be negative")
	}
	if n.ParWorkers > 0 && n.Engine != "parallel" {
		return Spec{}, invalid("par_workers", "only meaningful with engine \"parallel\"")
	}
	if n.FaultRate < 0 || n.FaultRate > 1 {
		return Spec{}, invalid("fault_rate", "%g outside [0,1] faults per 10k cycles", n.FaultRate)
	}
	if n.FaultSeed < 0 {
		return Spec{}, invalid("fault_seed", "the schedule seed cannot be negative")
	}
	// Validate the kind filter even at rate zero — a typo should fail
	// here, not pass silently until someone turns the rate up.
	if len(n.FaultKinds) > 0 {
		scratch := fault.DefaultConfig(0)
		if err := scratch.EnableOnly(n.FaultKinds); err != nil {
			return Spec{}, &ValidationError{Field: "fault_kinds", Reason: err.Error()}
		}
	}
	if n.FaultRate == 0 {
		// No injector is built: the seed and the kind filter cannot
		// influence the run, so they must not influence the key either.
		n.FaultSeed = 0
		n.FaultKinds = nil
	} else {
		// An empty filter means all kinds; materialize the full sorted
		// list so "all by default" and "all by name" collide.
		kinds := n.FaultKinds
		if len(kinds) == 0 {
			kinds = fault.KindNames()
		}
		set := map[string]bool{}
		for _, k := range kinds {
			set[k] = true
		}
		n.FaultKinds = make([]string, 0, len(set))
		for k := range set {
			n.FaultKinds = append(n.FaultKinds, k)
		}
		sort.Strings(n.FaultKinds)
	}
	return n, nil
}

// Validate reports whether the spec describes a runnable simulation;
// every failure is a *ValidationError naming the field.
func (s Spec) Validate() error {
	_, err := s.Normalized()
	return err
}

// Params converts the spec's workload-level fields into the workload
// API's serializable parameter set. Call on a normalized spec (on a raw
// one the unset defaults map to the zero Params).
func (s Spec) Params() workload.Params {
	p := workload.Params{
		Mode:       modeValues[s.Mode],
		Iterations: s.Iterations,
		Size:       s.Size,
	}
	if s.Prefetch != nil {
		p.Prefetch = *s.Prefetch
	}
	if s.Probe != nil {
		p.Probe = *s.Probe
	}
	return p
}

// canonicalSpec is the fingerprint encoding: every field explicit (no
// omitempty — defaults are materialized, absent and default must
// encode identically) and JSON keys in sorted order. Field order here
// IS the wire order json.Marshal emits, so this struct is part of the
// fingerprint contract pinned by the golden test.
type canonicalSpec struct {
	Clusters   int      `json:"clusters"`
	Engine     string   `json:"engine"`
	FaultKinds []string `json:"fault_kinds"`
	FaultRate  float64  `json:"fault_rate"`
	FaultSeed  int64    `json:"fault_seed"`
	Iterations int      `json:"iterations"`
	Mode       string   `json:"mode"`
	ParWorkers int      `json:"par_workers"`
	Prefetch   bool     `json:"prefetch"`
	Probe      bool     `json:"probe"`
	Size       int      `json:"size"`
	Topology   string   `json:"topology"`
	Workload   string   `json:"workload"`
}

// Canonical returns the spec's canonical bytes: deterministic
// sorted-key JSON of the normalized spec. Semantically identical specs
// return identical bytes; an invalid spec returns the validation error.
func (s Spec) Canonical() ([]byte, error) {
	n, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	kinds := n.FaultKinds
	if kinds == nil {
		kinds = []string{} // encode as [], never null
	}
	return json.Marshal(canonicalSpec{
		Clusters:   n.Clusters,
		Engine:     n.Engine,
		FaultKinds: kinds,
		FaultRate:  n.FaultRate,
		FaultSeed:  n.FaultSeed,
		Iterations: n.Iterations,
		Mode:       n.Mode,
		ParWorkers: n.ParWorkers,
		Prefetch:   *n.Prefetch,
		Probe:      *n.Probe,
		Size:       n.Size,
		Topology:   n.Topology,
		Workload:   n.Workload,
	})
}

// Fingerprint returns the hex SHA-256 of the canonical bytes — the
// result-cache key. Identical simulations fingerprint identically;
// distinct ones practically never collide.
func (s Spec) Fingerprint() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Decode reads one job batch from JSON: either a single Spec object or
// an array of Specs. Decoding is strict — an unknown field anywhere in
// the body is a *ValidationError, so client typos (`"iters"` for
// `"iterations"`) fail loudly instead of silently selecting defaults.
func Decode(r io.Reader) ([]Spec, error) {
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	var specs []Spec
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := strictUnmarshal(body, &specs); err != nil {
			return nil, err
		}
	} else {
		var one Spec
		if err := strictUnmarshal(body, &one); err != nil {
			return nil, err
		}
		specs = []Spec{one}
	}
	if len(specs) == 0 {
		return nil, &ValidationError{Field: "jobs", Reason: "empty batch"}
	}
	return specs, nil
}

func strictUnmarshal(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &ValidationError{Field: "body", Reason: err.Error()}
	}
	// A second document in the body is a client error, not padding.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return &ValidationError{Field: "body", Reason: "trailing data after the job batch"}
	}
	return nil
}
