package job

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Runner executes one normalized Spec to completion. The job service
// trusts it to be deterministic: a Result (or error) computed once is
// served for every later request with the same fingerprint.
type Runner func(Spec) (Result, error)

// Service is the memoizing execution layer behind cedard: a sharded
// result cache keyed on Spec.Fingerprint, singleflight-style dedupe of
// identical in-flight requests, and a bounded worker pool for distinct
// jobs. A parameter sweep submitted by many clients costs one
// simulation per distinct config.
//
// Concurrency contract: per-shard mutexes only guard the entry maps —
// never held across a simulation — so K concurrent identical requests
// cost one Runner call (the rest block on the entry's done channel),
// and distinct jobs saturate but never exceed the pool bound.
type Service struct {
	run    Runner
	shards []*cacheShard
	sem    chan struct{}

	// Counters (atomic; exported via RegisterMetrics).
	hits       int64 // request served from a completed cache entry
	misses     int64 // request that created the entry and ran the job
	joins      int64 // request that joined an in-flight identical job
	executions int64 // Runner invocations (== misses, asserted by tests)
	running    int64 // Runner invocations currently holding a pool slot
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	done chan struct{} // closed once res/err are final
	res  Result
	err  error
}

// NewService builds a Service over run with the given shard count and
// worker-pool bound (values below 1 fall back to 1). Shard count trades
// lock contention against footprint; it does not affect semantics.
func NewService(run Runner, shards, workers int) *Service {
	if shards < 1 {
		shards = 1
	}
	if workers < 1 {
		workers = 1
	}
	s := &Service{
		run:    run,
		shards: make([]*cacheShard, shards),
		sem:    make(chan struct{}, workers),
	}
	for i := range s.shards {
		s.shards[i] = &cacheShard{entries: map[string]*cacheEntry{}}
	}
	return s
}

// Workers returns the pool bound.
func (s *Service) Workers() int { return cap(s.sem) }

// Len returns the number of cached entries (including in-flight ones).
func (s *Service) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Do returns the result for spec, executing it at most once per
// fingerprint across the service's lifetime. The second return is true
// when the result came from the cache or from joining an identical
// in-flight run — i.e. this call did not pay for a simulation. An
// invalid spec fails fast with its *ValidationError and is never
// cached. Errors from the Runner are cached like results: the simulator
// is deterministic, so re-running a failing spec reproduces the
// failure.
func (s *Service) Do(spec Spec) (Result, bool, error) {
	fp, err := spec.Fingerprint()
	if err != nil {
		return Result{}, false, err
	}
	sh := s.shard(fp)
	sh.mu.Lock()
	if e, ok := sh.entries[fp]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			atomic.AddInt64(&s.hits, 1)
		default:
			atomic.AddInt64(&s.joins, 1)
			<-e.done
		}
		return e.res, true, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	sh.entries[fp] = e
	sh.mu.Unlock()
	atomic.AddInt64(&s.misses, 1)

	s.sem <- struct{}{} // acquire a pool slot; blocks when saturated
	atomic.AddInt64(&s.running, 1)
	atomic.AddInt64(&s.executions, 1)
	e.res, e.err = s.run(spec)
	atomic.AddInt64(&s.running, -1)
	<-s.sem
	close(e.done)
	return e.res, false, e.err
}

func (s *Service) shard(fp string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Stats returns the counters' current values (hits, misses, joins,
// executions).
func (s *Service) Stats() (hits, misses, joins, executions int64) {
	return atomic.LoadInt64(&s.hits), atomic.LoadInt64(&s.misses),
		atomic.LoadInt64(&s.joins), atomic.LoadInt64(&s.executions)
}

// RegisterMetrics exposes the service counters on reg under prefix
// (cedard uses "cedard"): cache/{hits,misses,joins,entries} and
// pool/{executions,running,workers}.
func (s *Service) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"/cache/hits", func() int64 { return atomic.LoadInt64(&s.hits) })
	reg.CounterFunc(prefix+"/cache/misses", func() int64 { return atomic.LoadInt64(&s.misses) })
	reg.CounterFunc(prefix+"/cache/joins", func() int64 { return atomic.LoadInt64(&s.joins) })
	reg.Gauge(prefix+"/cache/entries", func() int64 { return int64(s.Len()) })
	reg.CounterFunc(prefix+"/pool/executions", func() int64 { return atomic.LoadInt64(&s.executions) })
	reg.Gauge(prefix+"/pool/running", func() int64 { return atomic.LoadInt64(&s.running) })
	reg.Gauge(prefix+"/pool/workers", func() int64 { return int64(cap(s.sem)) })
}
