// Package runner executes a job.Spec against a simulated Cedar — the
// single Spec→machine→result path both drivers share. cedarsim parses
// flags into a Spec and calls this package; cedard decodes the same
// Spec from HTTP bodies and calls this package; a given Spec therefore
// means exactly one simulation no matter which door it came through.
//
// Prepare splits from Execute so a driver can attach runtime observers
// (a telemetry sampler needs the machine before the run starts) between
// building the machine and running the workload.
package runner

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/job"
	_ "repro/internal/kernels" // populates the workload registry
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// engineModes maps Spec.Engine names onto engine paths. Results are
// bit-identical across all four; the non-default paths exist for the
// equivalence tests, benchmarking and multi-core hosts.
var engineModes = map[string]sim.EngineMode{
	"naive":       sim.ModeNaive,
	"quiescent":   sim.ModeQuiescent,
	"wake-cached": sim.ModeWakeCached,
	"parallel":    sim.ModeWakeCachedParallel,
}

// Job is a prepared simulation: a normalized Spec plus the machine
// built for it, ready to Execute once the driver has attached whatever
// observers it wants.
type Job struct {
	// Spec is the normalized spec the machine was built from.
	Spec job.Spec
	// Machine is the assembled Cedar. Drivers may read it (to build a
	// sampler, to print network counters) but must not run anything on
	// it outside Execute.
	Machine *core.Machine
}

// normalize is Spec.Normalized plus the one check only the runner can
// make: that the workload name is actually registered.
func normalize(spec job.Spec) (job.Spec, error) {
	n, err := spec.Normalized()
	if err != nil {
		return job.Spec{}, err
	}
	if workload.Get(n.Workload) == nil {
		return job.Spec{}, &job.ValidationError{
			Field:  "workload",
			Reason: fmt.Sprintf("unknown workload %q (available: %s)", n.Workload, strings.Join(workload.Names(), ", ")),
		}
	}
	return n, nil
}

// Validate reports whether spec describes a simulation this runner can
// execute — everything Prepare would reject, without building a
// machine. cedard uses it to refuse a whole batch up front.
func Validate(spec job.Spec) error {
	_, err := normalize(spec)
	return err
}

// Prepare validates and normalizes spec, resolves its workload in the
// registry, and assembles the machine: topology and cluster count pick
// the configuration, the engine name picks the engine path, and a
// non-zero fault rate arms the deterministic injector. Spec-level
// failures (including an unknown workload name) are *ValidationError.
func Prepare(spec job.Spec) (*Job, error) {
	n, err := normalize(spec)
	if err != nil {
		return nil, err
	}
	var cfg core.Config
	if n.Topology == "scaled" {
		cfg = core.ScaledConfig(n.Clusters)
	} else {
		cfg = core.ConfigClusters(n.Clusters)
	}
	cfg.EngineMode = engineModes[n.Engine]
	cfg.ParWorkers = n.ParWorkers
	if n.FaultRate > 0 {
		cfg.Fault = fault.DefaultConfig(uint64(n.FaultSeed))
		cfg.Fault.MeanInterval = sim.Cycle(10000 / n.FaultRate)
		if err := cfg.Fault.EnableOnly(n.FaultKinds); err != nil {
			return nil, &job.ValidationError{Field: "fault_kinds", Reason: err.Error()}
		}
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{Spec: n, Machine: m}, nil
}

// Execute runs the prepared workload with the given runtime attachments
// and packages the outcome as a serializable job.Result: the kernel's
// metrics, the rendered report tables, the registry fingerprint (the
// determinism witness identical Specs reproduce bit-for-bit) and, on
// faulted runs, the injection census. Execute is one-shot: the machine
// is consumed by the run.
func (j *Job) Execute(att workload.Attachments) (job.Result, error) {
	res, err := workload.Run(j.Spec.Workload, j.Machine, j.Spec.Params(), att)
	if err != nil {
		return job.Result{}, err
	}
	m := j.Machine
	out := job.Result{
		Workload: res.Name,
		CEs:      res.CEs,
		Cycles:   int64(res.Cycles),
		Flops:    res.Flops,
		MFLOPS:   res.MFLOPS,
		Check:    res.Check,
		Notes:    res.Notes,
	}
	if !math.IsNaN(res.Latency) {
		lat, ia := res.Latency, res.Interarrival
		out.LatencyCycles, out.InterarrivalCycles = &lat, &ia
	}
	out.Tables = append(out.Tables, m.Utilization().String())
	if t := IPTable(m); t != nil {
		out.Tables = append(out.Tables, renderTable(t))
	}
	if m.FaultInj != nil {
		out.Tables = append(out.Tables, renderTable(m.FaultInj.SummaryTable()))
		out.FaultCensus = m.FaultInj.Census()
	}
	out.RegistryFingerprint = m.Registry().Fingerprint()
	return out, nil
}

// Run is the one-call path: Prepare plus Execute with no attachments —
// what cedard's result cache invokes per distinct fingerprint.
func Run(spec job.Spec) (job.Result, error) {
	j, err := Prepare(spec)
	if err != nil {
		return job.Result{}, err
	}
	return j.Execute(workload.Attachments{})
}

// IPTable renders the per-cluster interactive-processor I/O counters,
// or nil when the run did no I/O.
func IPTable(m *core.Machine) *report.Table {
	var total int64
	for _, clu := range m.Clusters {
		total += clu.IPs.Requests
	}
	if total == 0 {
		return nil
	}
	t := report.NewTable("Cluster I/O (interactive processors)",
		"ip", "requests", "words", "busy cycles", "avg wait")
	for i, clu := range m.Clusters {
		ip := clu.IPs
		avg := "-"
		if ip.Completions > 0 {
			avg = fmt.Sprintf("%.0f", float64(ip.WaitCycles)/float64(ip.Completions))
		}
		t.AddRow(fmt.Sprintf("ip%d", i), fmt.Sprint(ip.Requests),
			fmt.Sprint(ip.WordsMoved), fmt.Sprint(ip.BusyCycles), avg)
	}
	return t
}

func renderTable(t *report.Table) string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		// A strings.Builder write cannot fail; a render bug should not
		// silently drop a table from the result.
		panic(err)
	}
	return b.String()
}
