package runner

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/job"
)

// TestRunDeterministicAcrossEngines: one Spec means one simulation —
// every engine path yields the same cycles, checksum and registry
// fingerprint, so fingerprint-keyed caching is sound no matter which
// path a cedard instance happens to run.
func TestRunDeterministicAcrossEngines(t *testing.T) {
	var ref job.Result
	for i, eng := range job.EngineNames {
		res, err := Run(job.Spec{Workload: "vl", Clusters: 1, Size: 2048, Engine: eng})
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		if res.RegistryFingerprint == "" {
			t.Fatalf("engine %s: empty registry fingerprint", eng)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Cycles != ref.Cycles || res.Check != ref.Check {
			t.Fatalf("engine %s diverged: %d cycles / %g vs %d / %g",
				eng, res.Cycles, res.Check, ref.Cycles, ref.Check)
		}
		if res.RegistryFingerprint != ref.RegistryFingerprint {
			t.Fatalf("engine %s: registry fingerprint diverged from %s", eng, job.EngineNames[0])
		}
	}
}

// TestPrepareRejects: spec-level failures — including an unknown
// workload name, which only the runner can check against the registry —
// surface as *ValidationError before any machine is built.
func TestPrepareRejects(t *testing.T) {
	cases := []struct {
		spec  job.Spec
		field string
	}{
		{job.Spec{Workload: "linpack"}, "workload"},
		{job.Spec{Workload: "rk", Size: -1}, "size"},
		{job.Spec{Workload: "rk", Engine: "warp"}, "engine"},
	}
	for _, tc := range cases {
		_, err := Prepare(tc.spec)
		var verr *job.ValidationError
		if !errors.As(err, &verr) || verr.Field != tc.field {
			t.Fatalf("Prepare(%+v) = %v, want ValidationError on %q", tc.spec, err, tc.field)
		}
	}
}

// TestRunFaulted: a faulted run carries its census and summary table in
// the result, and the injected counts are reproducible from the seed.
func TestRunFaulted(t *testing.T) {
	spec := job.Spec{Workload: "tm", Clusters: 1, Size: 16384,
		Prefetch: job.Bool(false), FaultRate: 1, FaultSeed: 7}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultCensus == nil {
		t.Fatal("faulted run returned no census")
	}
	var total int64
	for _, n := range res.FaultCensus {
		total += n
	}
	if total == 0 {
		t.Fatal("fault census is all zeros at rate 1")
	}
	found := false
	for _, tbl := range res.Tables {
		if strings.Contains(tbl, "Injected faults") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no fault summary table in result tables (%d tables)", len(res.Tables))
	}
	again, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.RegistryFingerprint != res.RegistryFingerprint {
		t.Fatal("identical faulted specs produced different registry fingerprints")
	}
}

// TestRunScaledTopology: the scaled topology builds beyond cedar's
// 4-cluster bound and reports the larger CE count.
func TestRunScaledTopology(t *testing.T) {
	res, err := Run(job.Spec{Workload: "vl", Topology: "scaled", Clusters: 8, Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.CEs != 64 {
		t.Fatalf("8-cluster scaled machine reports %d CEs, want 64", res.CEs)
	}
}
