package job

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// fakeRunner counts invocations and can hold them at a gate so tests
// control exactly when simulations "finish".
type fakeRunner struct {
	calls   int64
	active  int64
	maxSeen int64
	gate    chan struct{} // when non-nil, every run blocks here
	fail    map[string]error
}

func (f *fakeRunner) run(spec Spec) (Result, error) {
	atomic.AddInt64(&f.calls, 1)
	n := atomic.AddInt64(&f.active, 1)
	for {
		max := atomic.LoadInt64(&f.maxSeen)
		if n <= max || atomic.CompareAndSwapInt64(&f.maxSeen, max, n) {
			break
		}
	}
	if f.gate != nil {
		<-f.gate
	}
	atomic.AddInt64(&f.active, -1)
	if err := f.fail[spec.Workload]; err != nil {
		return Result{}, err
	}
	return Result{Workload: spec.Workload, Cycles: int64(spec.Size)}, nil
}

func metric(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	v, ok := reg.Value(name)
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	return v
}

// TestCacheSingleExecution is the core dedupe guarantee under -race:
// K concurrent identical requests execute exactly one simulation; the
// other K-1 join the in-flight run. Counters are asserted through the
// telemetry registry, the same surface cedard exports on /metrics.
func TestCacheSingleExecution(t *testing.T) {
	const K = 32
	fr := &fakeRunner{gate: make(chan struct{})}
	svc := NewService(fr.run, 8, 4)
	reg := telemetry.NewRegistry()
	svc.RegisterMetrics(reg, "cedard")

	spec := Spec{Workload: "rk", Size: 64}
	var wg sync.WaitGroup
	var cachedCount int64
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, cached, err := svc.Do(spec)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if res.Cycles != 64 {
				t.Errorf("Do returned cycles=%d, want 64", res.Cycles)
			}
			if cached {
				atomic.AddInt64(&cachedCount, 1)
			}
		}()
	}
	// Let the one live run (and the joiners queued behind it) finish.
	close(fr.gate)
	wg.Wait()

	if got := atomic.LoadInt64(&fr.calls); got != 1 {
		t.Fatalf("runner executed %d times for %d identical requests, want 1", got, K)
	}
	if cachedCount != K-1 {
		t.Fatalf("%d requests reported cached, want %d", cachedCount, K-1)
	}
	if got := metric(t, reg, "cedard/pool/executions"); got != 1 {
		t.Fatalf("pool/executions = %d, want 1", got)
	}
	if got := metric(t, reg, "cedard/cache/misses"); got != 1 {
		t.Fatalf("cache/misses = %d, want 1", got)
	}
	hits := metric(t, reg, "cedard/cache/hits")
	joins := metric(t, reg, "cedard/cache/joins")
	if hits+joins != K-1 {
		t.Fatalf("hits(%d)+joins(%d) = %d, want %d", hits, joins, hits+joins, K-1)
	}
	if got := metric(t, reg, "cedard/cache/entries"); got != 1 {
		t.Fatalf("cache/entries = %d, want 1", got)
	}

	// A later identical request is a pure hit: no join, no execution.
	if _, cached, err := svc.Do(spec); err != nil || !cached {
		t.Fatalf("post-completion Do: cached=%v err=%v, want cached hit", cached, err)
	}
	if got := metric(t, reg, "cedard/cache/hits"); got != hits+1 {
		t.Fatalf("cache/hits = %d after warm hit, want %d", got, hits+1)
	}
	if got := metric(t, reg, "cedard/pool/executions"); got != 1 {
		t.Fatalf("warm hit triggered an execution: pool/executions = %d", got)
	}
}

// TestPoolBound: distinct specs saturate the worker pool but never
// exceed it, and all of them complete once slots free up.
func TestPoolBound(t *testing.T) {
	const workers, jobs = 3, 20
	fr := &fakeRunner{gate: make(chan struct{}, jobs)}
	svc := NewService(fr.run, 4, workers)

	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := Spec{Workload: "vl", Size: (i + 1) * 512} // distinct fingerprints
			if _, cached, err := svc.Do(spec); err != nil || cached {
				t.Errorf("job %d: cached=%v err=%v", i, cached, err)
			}
		}(i)
	}
	// Release jobs one at a time; concurrency can never exceed the pool.
	for i := 0; i < jobs; i++ {
		fr.gate <- struct{}{}
	}
	wg.Wait()

	if got := atomic.LoadInt64(&fr.maxSeen); got > workers {
		t.Fatalf("observed %d concurrent runner calls, pool bound is %d", got, workers)
	}
	if got := atomic.LoadInt64(&fr.calls); got != jobs {
		t.Fatalf("runner executed %d times, want %d distinct jobs", got, jobs)
	}
	if got := svc.Len(); got != jobs {
		t.Fatalf("cache holds %d entries, want %d", got, jobs)
	}
}

// TestCacheDistinctSpecs: different fingerprints never share a result.
func TestCacheDistinctSpecs(t *testing.T) {
	fr := &fakeRunner{}
	svc := NewService(fr.run, 2, 2)
	for _, size := range []int{128, 256, 512} {
		res, cached, err := svc.Do(Spec{Workload: "tm", Size: size})
		if err != nil || cached {
			t.Fatalf("size %d: cached=%v err=%v", size, cached, err)
		}
		if res.Cycles != int64(size) {
			t.Fatalf("size %d: got result for cycles=%d", size, res.Cycles)
		}
	}
	if got := atomic.LoadInt64(&fr.calls); got != 3 {
		t.Fatalf("runner executed %d times, want 3", got)
	}
}

// TestCacheInvalidSpec: validation failures surface immediately and are
// never cached or executed.
func TestCacheInvalidSpec(t *testing.T) {
	fr := &fakeRunner{}
	svc := NewService(fr.run, 2, 2)
	_, _, err := svc.Do(Spec{Workload: "rk", Size: -1})
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("got %v, want a *ValidationError", err)
	}
	if fr.calls != 0 || svc.Len() != 0 {
		t.Fatalf("invalid spec reached the runner (calls=%d) or cache (len=%d)", fr.calls, svc.Len())
	}
}

// TestCacheRunnerError: a deterministic failure is cached like a result
// — the second request gets the same error without re-running.
func TestCacheRunnerError(t *testing.T) {
	boom := fmt.Errorf("solver diverged")
	fr := &fakeRunner{fail: map[string]error{"cg": boom}}
	svc := NewService(fr.run, 2, 2)
	spec := Spec{Workload: "cg", Iterations: 5}
	if _, cached, err := svc.Do(spec); !errors.Is(err, boom) || cached {
		t.Fatalf("first Do: cached=%v err=%v", cached, err)
	}
	if _, cached, err := svc.Do(spec); !errors.Is(err, boom) || !cached {
		t.Fatalf("second Do: cached=%v err=%v, want cached error", cached, err)
	}
	if got := atomic.LoadInt64(&fr.calls); got != 1 {
		t.Fatalf("failing spec ran %d times, want 1", got)
	}
}
