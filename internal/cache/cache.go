// Package cache models the Alliant FX/8 shared cluster cache and the
// cluster memory behind it.
//
// Each cluster's eight CEs share a 512 KB, physically addressed,
// 4-way-interleaved cache with 32-byte lines. The cache is write-back and
// lockup-free, allowing each CE two outstanding misses; writes do not
// stall a CE. Cache bandwidth is eight 64-bit words per instruction cycle
// (one word per CE per cycle), sufficient to feed one input stream of a
// vector instruction in every processor; cluster-memory bandwidth is half
// of that (192 MB/s versus the cache's 384 MB/s per cluster).
//
// The cache is a timing device: functional data lives in the cluster's
// word array, while the tag array here determines hit/miss behaviour and
// the cluster-memory bandwidth limiter determines fill and write-back
// cost.
package cache

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes a cluster cache.
type Config struct {
	// Words is the cache capacity in 64-bit words (default 64 K words =
	// 512 KB).
	Words int
	// LineWords is the line size in words (default 4 = 32 bytes).
	LineWords int
	// Ways is the set associativity (default 2).
	Ways int
	// Banks is the interleaving factor (default 4).
	Banks int
	// BankAccessesPerCycle is each bank's port count (default 2, giving
	// the paper's 8 words/cycle aggregate with 4 banks).
	BankAccessesPerCycle int
	// MissesPerCE is the lockup-free miss limit per CE (default 2).
	MissesPerCE int
	// FillLatency is the cluster-memory access latency for a line fill,
	// in cycles (default 6).
	FillLatency sim.Cycle
	// MemWordsPerCycle is the cluster-memory bandwidth (default 4,
	// i.e. 192 MB/s, half the cache bandwidth).
	MemWordsPerCycle int
	// CEs is the number of processors sharing the cache (default 8).
	CEs int
}

// Default returns the as-built Alliant cluster cache configuration.
func Default() Config {
	return Config{
		Words:                64 << 10,
		LineWords:            4,
		Ways:                 2,
		Banks:                4,
		BankAccessesPerCycle: 2,
		MissesPerCE:          2,
		FillLatency:          6,
		MemWordsPerCycle:     4,
		CEs:                  8,
	}
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Cache is one cluster's shared cache plus its cluster-memory bandwidth
// model. It is not a sim.Component: it is driven synchronously by CE
// accesses and keeps its own busy bookkeeping against the engine clock.
type Cache struct {
	cfg  Config
	sets [][]line
	nset uint64

	// Bank port accounting for the current cycle.
	bankCycle sim.Cycle
	bankUsed  []int

	// Per-bank fault busy windows: a bank refuses all ports until its
	// window expires (injected via FaultBankBusy). Recovery is free:
	// every caller of Access already retries a refused access next
	// cycle, so a busy window only defers service — no state is lost.
	bankBusyUntil []sim.Cycle

	// Per-CE outstanding fill completion times (lockup-free misses).
	outstanding [][]sim.Cycle

	// In-flight fills by line address, so concurrent misses to one line
	// merge instead of double-filling.
	fills map[uint64]sim.Cycle

	// Cluster-memory bandwidth limiter.
	memFree sim.Cycle

	lruClock uint64

	// Counters.
	Hits            int64
	Misses          int64
	Writebacks      int64
	BankStalls      int64
	MSHRStalls      int64
	FaultBankBusies int64 // injected bank busy windows
	FaultBankStalls int64 // accesses refused because a bank was fault-busy
}

// New builds a cache; zero fields of cfg take defaults.
func New(cfg Config) *Cache {
	d := Default()
	if cfg.Words <= 0 {
		cfg.Words = d.Words
	}
	if cfg.LineWords <= 0 {
		cfg.LineWords = d.LineWords
	}
	if cfg.Ways <= 0 {
		cfg.Ways = d.Ways
	}
	if cfg.Banks <= 0 {
		cfg.Banks = d.Banks
	}
	if cfg.BankAccessesPerCycle <= 0 {
		cfg.BankAccessesPerCycle = d.BankAccessesPerCycle
	}
	if cfg.MissesPerCE <= 0 {
		cfg.MissesPerCE = d.MissesPerCE
	}
	if cfg.FillLatency <= 0 {
		cfg.FillLatency = d.FillLatency
	}
	if cfg.MemWordsPerCycle <= 0 {
		cfg.MemWordsPerCycle = d.MemWordsPerCycle
	}
	if cfg.CEs <= 0 {
		cfg.CEs = d.CEs
	}
	nlines := cfg.Words / cfg.LineWords
	nsets := nlines / cfg.Ways
	if nsets == 0 {
		panic(fmt.Sprintf("cache: configuration too small (%d words)", cfg.Words))
	}
	c := &Cache{
		cfg:           cfg,
		nset:          uint64(nsets),
		bankUsed:      make([]int, cfg.Banks),
		bankBusyUntil: make([]sim.Cycle, cfg.Banks),
		outstanding:   make([][]sim.Cycle, cfg.CEs),
		fills:         map[uint64]sim.Cycle{},
	}
	c.sets = make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for s := range c.sets {
		c.sets[s], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// Config returns the configuration the cache was built with (with
// defaults applied).
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) lineAddr(addr uint64) uint64 { return addr / uint64(c.cfg.LineWords) }

// bankFor maps a word address to its bank (word interleaving).
func (c *Cache) bankFor(addr uint64) int { return int(addr) % c.cfg.Banks }

// chargeBank consumes one bank port in the cycle now; reports false when
// the bank's ports are exhausted this cycle.
func (c *Cache) chargeBank(now sim.Cycle, addr uint64) bool {
	if now != c.bankCycle {
		c.bankCycle = now
		for i := range c.bankUsed {
			c.bankUsed[i] = 0
		}
	}
	b := c.bankFor(addr)
	if now < c.bankBusyUntil[b] {
		c.BankStalls++
		c.FaultBankStalls++
		return false
	}
	if c.bankUsed[b] >= c.cfg.BankAccessesPerCycle {
		c.BankStalls++
		return false
	}
	c.bankUsed[b]++
	return true
}

// Banks reports the interleaving factor, for fault-target selection.
func (c *Cache) Banks() int { return c.cfg.Banks }

// FaultBankBusy marks bank busy for window cycles starting at now: all
// of its ports refuse service until the window expires (the injected
// analogue of an ECC scrub or maintenance cycle steal monopolizing the
// bank). Overlapping injections extend the window, never shrink it.
func (c *Cache) FaultBankBusy(now sim.Cycle, bank int, window sim.Cycle) {
	if bank < 0 || bank >= c.cfg.Banks {
		panic(fmt.Sprintf("cache: fault on bank %d of %d", bank, c.cfg.Banks))
	}
	if until := now + window; until > c.bankBusyUntil[bank] {
		c.bankBusyUntil[bank] = until
	}
	c.FaultBankBusies++
}

// pruneOutstanding drops completed fills from a CE's miss list.
func (c *Cache) pruneOutstanding(ce int, now sim.Cycle) {
	out := c.outstanding[ce][:0]
	for _, t := range c.outstanding[ce] {
		if t > now {
			out = append(out, t)
		}
	}
	c.outstanding[ce] = out
}

// lookup finds the way holding the line, or -1.
func (c *Cache) lookup(set []line, tag uint64) int {
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			return w
		}
	}
	return -1
}

// victim picks the LRU way of a set.
func (c *Cache) victim(set []line) int {
	v, best := 0, ^uint64(0)
	for w := range set {
		if !set[w].valid {
			return w
		}
		if set[w].lru < best {
			v, best = w, set[w].lru
		}
	}
	return v
}

// Access performs one word access by CE ce at word address addr.
// It returns the cycle at which the datum is usable and accepted=true, or
// accepted=false when a structural hazard (bank port or miss limit)
// forces the CE to retry next cycle. Writes are accepted on the same
// terms but the returned ready time may be ignored by the caller, because
// writes do not stall a CE.
func (c *Cache) Access(now sim.Cycle, ce int, addr uint64, write bool) (ready sim.Cycle, accepted bool) {
	if ce < 0 || ce >= c.cfg.CEs {
		panic(fmt.Sprintf("cache: CE index %d out of range", ce))
	}
	la := c.lineAddr(addr)
	set := c.sets[la%c.nset]
	tag := la / c.nset

	// Completed in-flight fill? Install it.
	if t, ok := c.fills[la]; ok && t <= now {
		w := c.victim(set)
		if set[w].valid && set[w].dirty {
			c.writeback(now)
		}
		set[w] = line{valid: true, tag: tag}
		delete(c.fills, la)
	}

	if w := c.lookup(set, tag); w >= 0 {
		if !c.chargeBank(now, addr) {
			return 0, false
		}
		c.lruClock++
		set[w].lru = c.lruClock
		if write {
			set[w].dirty = true
		}
		c.Hits++
		return now + 1, true
	}

	// Miss. Merge with an in-flight fill of the same line if present.
	if t, ok := c.fills[la]; ok {
		if !c.chargeBank(now, addr) {
			return 0, false
		}
		c.Hits++ // merged: no new memory traffic
		return t + 1, true
	}

	c.pruneOutstanding(ce, now)
	if len(c.outstanding[ce]) >= c.cfg.MissesPerCE {
		c.MSHRStalls++
		return 0, false
	}
	if !c.chargeBank(now, addr) {
		return 0, false
	}
	c.Misses++
	// Cluster-memory transfer: LineWords at MemWordsPerCycle, after the
	// memory is free, plus the access latency.
	start := now
	if c.memFree > start {
		start = c.memFree
	}
	transfer := sim.Cycle((c.cfg.LineWords + c.cfg.MemWordsPerCycle - 1) / c.cfg.MemWordsPerCycle)
	c.memFree = start + transfer
	done := start + c.cfg.FillLatency + transfer
	c.fills[la] = done
	c.outstanding[ce] = append(c.outstanding[ce], done)
	if write {
		// Write-allocate: the line will be dirty once installed. Record
		// by installing dirty at completion; emulate by marking through
		// the fills map on installation. Simplest: install immediately
		// as a fill that arrives dirty.
		// We mark dirtiness when the line is installed in the next
		// access; to keep bookkeeping simple, install now and rely on
		// the fill time for availability.
		w := c.victim(set)
		if set[w].valid && set[w].dirty {
			c.writeback(now)
		}
		set[w] = line{valid: true, dirty: true, tag: tag}
		delete(c.fills, la)
	}
	return done + 1, true
}

// writeback charges cluster-memory bandwidth for casting out a dirty line.
func (c *Cache) writeback(now sim.Cycle) {
	start := now
	if c.memFree > start {
		start = c.memFree
	}
	transfer := sim.Cycle((c.cfg.LineWords + c.cfg.MemWordsPerCycle - 1) / c.cfg.MemWordsPerCycle)
	c.memFree = start + transfer
	c.Writebacks++
}

// Quiet reports whether the cache is quiescent at cycle now: no fill in
// flight and the cluster-memory port free. The cache is not a
// sim.Component — every cost is charged synchronously inside Access, so
// it needs no tick to make progress and is quiescent by construction
// whenever its CEs are; this predicate exists for introspection and for
// asserting that property in tests.
func (c *Cache) Quiet(now sim.Cycle) bool {
	if c.memFree > now {
		return false
	}
	for _, t := range c.fills {
		if t > now {
			return false
		}
	}
	return true
}

// OutstandingMisses reports CE ce's in-flight fill count at cycle now.
func (c *Cache) OutstandingMisses(ce int, now sim.Cycle) int {
	c.pruneOutstanding(ce, now)
	return len(c.outstanding[ce])
}

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	set := c.sets[la%c.nset]
	return c.lookup(set, la/c.nset) >= 0
}

// Flush invalidates every line, charging write-backs for dirty ones.
func (c *Cache) Flush(now sim.Cycle) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				c.writeback(now)
			}
			c.sets[s][w] = line{}
		}
	}
	c.fills = map[uint64]sim.Cycle{}
}
