package cache

import (
	"testing"

	"repro/internal/sim"
)

func small() Config {
	return Config{
		Words:                256, // 64 lines
		LineWords:            4,
		Ways:                 2,
		Banks:                4,
		BankAccessesPerCycle: 2,
		MissesPerCE:          2,
		FillLatency:          6,
		MemWordsPerCycle:     4,
		CEs:                  8,
	}
}

// access retries until accepted, stepping time, and returns (readyAt,
// acceptCycle).
func access(t *testing.T, c *Cache, now *sim.Cycle, ce int, addr uint64, write bool) sim.Cycle {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if ready, ok := c.Access(*now, ce, addr, write); ok {
			return ready
		}
		*now++
	}
	t.Fatal("access never accepted")
	return 0
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	d := c.Config()
	if d.Words != 64<<10 || d.LineWords != 4 || d.Banks != 4 || d.MissesPerCE != 2 || d.CEs != 8 {
		t.Fatalf("defaults not applied: %+v", d)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(small())
	now := sim.Cycle(0)
	r1 := access(t, c, &now, 0, 100, false)
	if r1 <= now+1 {
		t.Fatalf("miss ready at %d (now %d): no fill latency", r1, now)
	}
	if c.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", c.Misses)
	}
	// Same line after the fill completes: a hit, ready next cycle.
	now = r1
	r2 := access(t, c, &now, 0, 101, false)
	if r2 != now+1 {
		t.Fatalf("hit ready at %d, want %d", r2, now+1)
	}
	if c.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", c.Hits)
	}
	if !c.Contains(100) {
		t.Fatal("line not resident after fill")
	}
}

func TestMissLatency(t *testing.T) {
	c := New(small())
	now := sim.Cycle(0)
	r := access(t, c, &now, 0, 0, false)
	// FillLatency 6 + 1 cycle transfer (4 words at 4/cycle) + 1.
	if want := now + 6 + 1 + 1; r != want {
		t.Fatalf("cold miss ready at %d, want %d", r, want)
	}
}

func TestLockupFreeLimit(t *testing.T) {
	c := New(small())
	now := sim.Cycle(0)
	// Two misses accepted, third refused while both outstanding.
	if _, ok := c.Access(now, 0, 0, false); !ok {
		t.Fatal("first miss refused")
	}
	if _, ok := c.Access(now, 0, 64, false); !ok {
		t.Fatal("second miss refused")
	}
	if _, ok := c.Access(now, 0, 128, false); ok {
		t.Fatal("third concurrent miss accepted; limit is 2")
	}
	if c.MSHRStalls == 0 {
		t.Fatal("MSHR stall not counted")
	}
	if got := c.OutstandingMisses(0, now); got != 2 {
		t.Fatalf("OutstandingMisses = %d, want 2", got)
	}
	// A different CE is not blocked (address on another bank and line).
	if _, ok := c.Access(now, 1, 129, false); !ok {
		t.Fatal("other CE blocked by first CE's misses")
	}
	// After completion the limit resets.
	now += 20
	if _, ok := c.Access(now, 0, 192, false); !ok {
		t.Fatal("miss refused after previous fills completed")
	}
}

func TestBankPorts(t *testing.T) {
	c := New(small())
	now := sim.Cycle(50)
	// Warm a line so accesses hit.
	access(t, c, &now, 0, 0, false)
	now += 20
	// Words 0 and 4 share bank 0 (addr % 4); the bank has 2 ports.
	access(t, c, &now, 0, 0, false) // warm again (hit)
	okCount := 0
	for ce := 0; ce < 4; ce++ {
		if _, ok := c.Access(now, ce, 0, false); ok {
			okCount++
		}
	}
	if okCount > 2 {
		t.Fatalf("%d same-bank accesses accepted in one cycle, want <= 2", okCount)
	}
	if c.BankStalls == 0 {
		t.Fatal("bank stall not counted")
	}
	// Different banks all proceed.
	now += 10
	okCount = 0
	for ce := 0; ce < 4; ce++ {
		if _, ok := c.Access(now, ce, uint64(ce), false); ok {
			okCount++
		}
	}
	if okCount != 4 {
		t.Fatalf("distinct-bank accesses accepted = %d, want 4", okCount)
	}
}

func TestMissMerging(t *testing.T) {
	c := New(small())
	now := sim.Cycle(0)
	r1, ok := c.Access(now, 0, 8, false)
	if !ok {
		t.Fatal("miss refused")
	}
	// Another CE touches the same line while in flight: merged, no second
	// memory transfer, ready no later than the first fill + 1.
	r2, ok := c.Access(now+1, 1, 9, false)
	if !ok {
		t.Fatal("merged access refused")
	}
	if c.Misses != 1 {
		t.Fatalf("Misses = %d after merge, want 1", c.Misses)
	}
	if r2 > r1+1 {
		t.Fatalf("merged ready %d much later than fill %d", r2, r1)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := small()
	cfg.Words = 32 // 8 lines, 2-way, 4 sets: easy to evict
	c := New(cfg)
	now := sim.Cycle(0)
	// Fill both ways of set 0 with dirty lines (write misses install
	// immediately), then a third write to the set must evict a dirty
	// victim and charge a write-back.
	access(t, c, &now, 0, 0, true) // line 0, set 0
	now += 20
	access(t, c, &now, 0, 16, true) // line 4, set 0 (4 sets)
	now += 20
	access(t, c, &now, 0, 32, true) // line 8, set 0: evicts a dirty way
	if c.Writebacks == 0 {
		t.Fatal("dirty eviction produced no write-back")
	}
}

func TestStreamBehaviour(t *testing.T) {
	// A stride-1 stream misses once per line (4 words).
	c := New(Config{Words: 4096, CEs: 1})
	now := sim.Cycle(0)
	for a := uint64(0); a < 256; a++ {
		r := access(t, c, &now, 0, a, false)
		now = r
	}
	if c.Misses != 64 {
		t.Fatalf("stride-1 stream of 256 words: %d misses, want 64 (one per line)", c.Misses)
	}
	if c.Hits != 192 {
		t.Fatalf("hits = %d, want 192", c.Hits)
	}
	// Re-stream: all hits now.
	m := c.Misses
	for a := uint64(0); a < 256; a++ {
		r := access(t, c, &now, 0, a, false)
		now = r
	}
	if c.Misses != m {
		t.Fatalf("warm re-stream missed %d times", c.Misses-m)
	}
}

// TestCachedStreamRate: a warm stream sustains ~1 word/cycle — the
// cache-bandwidth property behind Table 1's GM/cache column.
func TestCachedStreamRate(t *testing.T) {
	c := New(Config{Words: 4096, CEs: 1})
	now := sim.Cycle(0)
	for a := uint64(0); a < 512; a++ { // warm
		now = access(t, c, &now, 0, a, false)
	}
	start := now
	for a := uint64(0); a < 512; a++ {
		now = access(t, c, &now, 0, a, false)
	}
	rate := float64(512) / float64(now-start)
	if rate < 0.9 {
		t.Fatalf("warm stream rate = %.2f words/cycle, want ~1", rate)
	}
}

// TestColdStreamMemoryBound: a cold stream is bounded by cluster-memory
// bandwidth (4 words/cycle aggregate), i.e. slower than the warm stream.
func TestColdStreamMemoryBound(t *testing.T) {
	cfg := Config{Words: 1 << 14, CEs: 8}
	c := New(cfg)
	now := sim.Cycle(0)
	start := now
	// 8 CEs each stream 128 disjoint words, interleaved round-robin.
	idx := make([]uint64, 8)
	doneWords := 0
	for doneWords < 8*128 {
		progressed := false
		for ce := 0; ce < 8; ce++ {
			if idx[ce] >= 128 {
				continue
			}
			addr := uint64(ce*2048) + idx[ce]
			if ready, ok := c.Access(now, ce, addr, false); ok {
				_ = ready
				idx[ce]++
				doneWords++
				progressed = true
			}
		}
		now++
		_ = progressed
	}
	elapsed := float64(now - start)
	rate := float64(8*128) / elapsed
	if rate > 4.5 {
		t.Fatalf("cold aggregate rate %.2f words/cycle exceeds cluster-memory bandwidth ~4", rate)
	}
}

func TestFlush(t *testing.T) {
	c := New(small())
	now := sim.Cycle(0)
	access(t, c, &now, 0, 0, true)
	now += 20
	access(t, c, &now, 0, 0, false)
	if !c.Contains(0) {
		t.Fatal("line absent before flush")
	}
	wb := c.Writebacks
	c.Flush(now)
	if c.Contains(0) {
		t.Fatal("line resident after flush")
	}
	if c.Writebacks != wb+1 {
		t.Fatalf("flush wrote back %d lines, want 1", c.Writebacks-wb)
	}
}

func TestBadCEPanics(t *testing.T) {
	c := New(small())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range CE did not panic")
		}
	}()
	c.Access(0, 99, 0, false)
}
