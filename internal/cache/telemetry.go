package cache

import "repro/internal/telemetry"

// RegisterMetrics publishes the cache's counters under prefix (for
// example "cluster0/cache").
func (c *Cache) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/hits", &c.Hits)
	reg.Counter(prefix+"/misses", &c.Misses)
	reg.Counter(prefix+"/writebacks", &c.Writebacks)
	reg.Counter(prefix+"/bank_stalls", &c.BankStalls)
	reg.Counter(prefix+"/mshr_stalls", &c.MSHRStalls)
	reg.Counter(prefix+"/fault_bank_busies", &c.FaultBankBusies)
	reg.Counter(prefix+"/fault_bank_stalls", &c.FaultBankStalls)
}
