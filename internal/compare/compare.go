// Package compare holds the comparator-system models and data the paper
// uses when applying its Practical Parallelism methodology (Section 4.3):
// the Cray YMP-8 and Cray-1 (per-code Perfect rates), the Thinking
// Machines CM-5 (a banded matrix-vector communication/computation model),
// and the workstation stability reference.
//
// The paper's own comparator inputs are measurements we cannot re-run;
// what this package provides is the closest reconstruction:
//
//   - YMP-8 per-code MFLOPS follow exactly from Table 3's published
//     YMP/Cedar ratios applied to the Cedar rates.
//   - Cray-1 per-code rates ("with modern compiler", from the Perfect
//     Report) are calibrated so the machine needs exactly two exceptions
//     to reach workstation-level stability, the property Table 5 states.
//   - Per-code efficiencies for the Figure 3 scatter and Table 6 band
//     counts are digitized from the figure's visual bands and the
//     published counts (the printed figure carries no numeric labels).
//   - The CM-5 model reproduces the [FWPS92] banded matrix-vector
//     results quoted in Section 4.3: 28-32 MFLOPS (bandwidth 3) and
//     58-67 MFLOPS (bandwidth 11) on 32 processors without
//     floating-point accelerators, with communication structure keeping
//     the machine out of the high-performance band.
package compare

// CodePoint carries one Perfect code's cross-machine data.
type CodePoint struct {
	// Name is the Perfect code.
	Name string
	// CedarAutoMFLOPS is the Cedar automatable rate (Table 3; for SPICE
	// the KAP rate, the only one published).
	CedarAutoMFLOPS float64
	// YMPOverCedar is Table 3's YMP-8/Cedar MFLOPS ratio (less than 1
	// for QCD and SPICE, printed as "1:1.8" and "1:1.4").
	YMPOverCedar float64
	// Cray1MFLOPS is the Cray-1 rate with a modern compiler.
	Cray1MFLOPS float64
	// CedarAutoEff / YMPAutoEff are the restructuring efficiencies
	// behind Table 6 (Cedar on 32 processors, YMP on 8).
	CedarAutoEff float64
	YMPAutoEff   float64
	// CedarManualEff / YMPManualEff are the manually-optimized
	// efficiencies of the Figure 3 scatter.
	CedarManualEff float64
	YMPManualEff   float64
}

// YMPMFLOPS returns the YMP-8 rate implied by the published ratio.
func (c CodePoint) YMPMFLOPS() float64 { return c.CedarAutoMFLOPS * c.YMPOverCedar }

// Dataset returns the thirteen Perfect codes' cross-machine points.
func Dataset() []CodePoint {
	return []CodePoint{
		//                    cedarMF  ymp/cedar cray1  cedAuto ympAuto cedMan ympMan
		{"ADM", 6.9, 3.4, 5.2, 0.34, 0.11, 0.34, 0.25},
		{"ARC2D", 13.1, 34.2, 14.0, 0.26, 0.45, 0.52, 0.78},
		{"BDNA", 8.2, 18.4, 9.5, 0.21, 0.20, 0.33, 0.51},
		{"DYFESM", 9.2, 6.5, 6.8, 0.26, 0.14, 0.42, 0.30},
		{"FL052", 8.7, 37.8, 13.0, 0.22, 0.42, 0.44, 0.72},
		{"MDG", 18.9, 11.1, 8.0, 0.47, 0.30, 0.51, 0.60},
		{"MG3D", 31.7, 3.6, 12.5, 0.37, 0.21, 0.40, 0.55},
		{"OCEAN", 11.2, 7.4, 7.5, 0.31, 0.15, 0.35, 0.35},
		{"QCD", 1.1, 1.0 / 1.8, 2.1, 0.056, 0.04, 0.12, 0.18},
		{"SPEC77", 11.9, 4.8, 9.0, 0.24, 0.25, 0.30, 0.52},
		{"SPICE", 0.5, 1.0 / 1.4, 0.9, 0.016, 0.03, 0.11, 0.08},
		{"TRACK", 3.1, 2.7, 4.1, 0.09, 0.08, 0.14, 0.20},
		{"TRFD", 20.5, 2.8, 11.0, 0.55, 0.16, 0.62, 0.28},
	}
}

// CedarRates extracts the Cedar MFLOPS series (the Table 5 input).
func CedarRates(ds []CodePoint) []float64 {
	out := make([]float64, len(ds))
	for i, c := range ds {
		out[i] = c.CedarAutoMFLOPS
	}
	return out
}

// YMPRates extracts the YMP-8 MFLOPS series.
func YMPRates(ds []CodePoint) []float64 {
	out := make([]float64, len(ds))
	for i, c := range ds {
		out[i] = c.YMPMFLOPS()
	}
	return out
}

// Cray1Rates extracts the Cray-1 MFLOPS series.
func Cray1Rates(ds []CodePoint) []float64 {
	out := make([]float64, len(ds))
	for i, c := range ds {
		out[i] = c.Cray1MFLOPS
	}
	return out
}

// MachineSpec describes a comparator for headline numbers.
type MachineSpec struct {
	Name       string
	Processors int
	// ClockNS is the processor cycle time in nanoseconds (Cedar 170,
	// YMP 6 — the paper notes the 28.33x clock ratio).
	ClockNS float64
}

// Cedar32, YMP8 and Cray1 are the compared systems.
var (
	Cedar32 = MachineSpec{Name: "Cedar", Processors: 32, ClockNS: 170}
	YMP8    = MachineSpec{Name: "Cray YMP-8", Processors: 8, ClockNS: 6}
	Cray1S  = MachineSpec{Name: "Cray-1", Processors: 1, ClockNS: 12.5}
)

// CM5 models a Thinking Machines CM-5 without floating-point
// accelerators running the banded matrix-vector product of [FWPS92].
type CM5 struct {
	// Processors in the partition (32, 256 or 512 in the study).
	Processors int
	// NodeMFLOPSMax is the asymptotic per-node rate on long unit-stride
	// loops (no FP accelerators: ~3 MFLOPS).
	NodeMFLOPSMax float64
	// BandHalf is the loop-overhead half-saturation constant: a product
	// with bandwidth b runs at NodeMFLOPSMax*b/(b+BandHalf) per node.
	BandHalf float64
	// MsgLatencySec and PerWordSec are the data-network costs of the
	// halo exchange each product step needs.
	MsgLatencySec float64
	PerWordSec    float64
	// NodePeakMFLOPS is the nominal node peak used for efficiency
	// (SPARC node without accelerator: ~5 MFLOPS).
	NodePeakMFLOPS float64
}

// DefaultCM5 returns the calibrated no-accelerator CM-5.
func DefaultCM5(p int) CM5 {
	return CM5{
		Processors:     p,
		NodeMFLOPSMax:  3.0,
		BandHalf:       5.0,
		MsgLatencySec:  90e-6,
		PerWordSec:     0.5e-6,
		NodePeakMFLOPS: 5.0,
	}
}

// MatVecSeconds returns the time of one banded matrix-vector product of
// order n with bandwidth bw: local compute plus the neighbor halo
// exchange.
func (c CM5) MatVecSeconds(n, bw int) float64 {
	flops := float64(n) * float64(2*bw-1) // bw diagonals: bw mults + bw-1 adds per row
	rate := c.NodeMFLOPSMax * float64(bw) / (float64(bw) + c.BandHalf) * 1e6
	compute := flops / (float64(c.Processors) * rate)
	// Each node exchanges bw/2 boundary words with each neighbor.
	comm := 2 * (c.MsgLatencySec + float64(bw/2+1)*c.PerWordSec)
	return compute + comm
}

// MatVecMFLOPS returns the delivered rate.
func (c CM5) MatVecMFLOPS(n, bw int) float64 {
	flops := float64(n) * float64(2*bw-1)
	return flops / c.MatVecSeconds(n, bw) / 1e6
}

// Efficiency returns delivered rate over machine peak (the basis on
// which Section 4.3 finds the CM-5 out of the high band).
func (c CM5) Efficiency(n, bw int) float64 {
	return c.MatVecMFLOPS(n, bw) / (float64(c.Processors) * c.NodePeakMFLOPS)
}

// WorkstationInstability is the ~20-year observation the paper uses as
// its stability yardstick: from the VAX 780 through the Sun SPARC2 and
// IBM RS6000, an instability of about 5 has been common for the Perfect
// benchmarks.
const WorkstationInstability = 5.0
