package compare

import (
	"math"
	"testing"
)

func TestDatasetComplete(t *testing.T) {
	ds := Dataset()
	if len(ds) != 13 {
		t.Fatalf("dataset has %d codes, want 13", len(ds))
	}
	seen := map[string]bool{}
	for _, c := range ds {
		if seen[c.Name] {
			t.Fatalf("duplicate code %s", c.Name)
		}
		seen[c.Name] = true
		if c.CedarAutoMFLOPS <= 0 || c.YMPOverCedar <= 0 || c.Cray1MFLOPS <= 0 {
			t.Fatalf("%s: non-positive rate", c.Name)
		}
		for _, e := range []float64{c.CedarAutoEff, c.YMPAutoEff, c.CedarManualEff, c.YMPManualEff} {
			if e <= 0 || e > 1 {
				t.Fatalf("%s: efficiency %g out of (0,1]", c.Name, e)
			}
		}
		if c.CedarManualEff < c.CedarAutoEff {
			t.Fatalf("%s: manual optimization lowered Cedar efficiency", c.Name)
		}
	}
}

func TestPublishedRatios(t *testing.T) {
	ds := Dataset()
	byName := map[string]CodePoint{}
	for _, c := range ds {
		byName[c.Name] = c
	}
	// Spot-check against Table 3's last column.
	if byName["ARC2D"].YMPOverCedar != 34.2 {
		t.Fatal("ARC2D ratio drifted")
	}
	if got := byName["QCD"].YMPOverCedar; math.Abs(got-1/1.8) > 1e-12 {
		t.Fatalf("QCD ratio = %g, want 1/1.8 (Cedar faster)", got)
	}
	if got := byName["ARC2D"].YMPMFLOPS(); math.Abs(got-13.1*34.2) > 1e-9 {
		t.Fatalf("ARC2D YMP MFLOPS = %g", got)
	}
}

func TestRateExtractors(t *testing.T) {
	ds := Dataset()
	if len(CedarRates(ds)) != 13 || len(YMPRates(ds)) != 13 || len(Cray1Rates(ds)) != 13 {
		t.Fatal("extractor lengths wrong")
	}
	if CedarRates(ds)[0] != ds[0].CedarAutoMFLOPS {
		t.Fatal("CedarRates order wrong")
	}
}

func TestCM5MonotoneInBandwidth(t *testing.T) {
	cm5 := DefaultCM5(32)
	if cm5.MatVecMFLOPS(65536, 11) <= cm5.MatVecMFLOPS(65536, 3) {
		t.Fatal("wider band should deliver more MFLOPS")
	}
	// Time grows with N.
	if cm5.MatVecSeconds(262144, 3) <= cm5.MatVecSeconds(16384, 3) {
		t.Fatal("time not monotone in N")
	}
	// Per-processor rates are roughly flat in N (the paper reports
	// narrow MFLOPS ranges over 16K..256K).
	lo, hi := cm5.MatVecMFLOPS(16384, 11), cm5.MatVecMFLOPS(262144, 11)
	if hi/lo > 1.6 {
		t.Fatalf("rate varies too much with N: %.1f..%.1f", lo, hi)
	}
}

func TestCM5EfficiencyDefinition(t *testing.T) {
	cm5 := DefaultCM5(32)
	eff := cm5.Efficiency(65536, 11)
	want := cm5.MatVecMFLOPS(65536, 11) / (32 * cm5.NodePeakMFLOPS)
	if math.Abs(eff-want) > 1e-12 {
		t.Fatal("efficiency definition drifted")
	}
}

func TestMachineSpecs(t *testing.T) {
	if Cedar32.Processors != 32 || YMP8.Processors != 8 || Cray1S.Processors != 1 {
		t.Fatal("machine specs wrong")
	}
	if WorkstationInstability != 5.0 {
		t.Fatal("workstation instability yardstick drifted")
	}
}
