package memchar

import (
	"testing"

	"repro/internal/sim"
)

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Sources: 0, RatePerSource: 1}); err == nil {
		t.Fatal("0 sources accepted")
	}
	if _, err := Run(Config{Sources: 8, RatePerSource: 0}); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := Run(Config{Sources: 8, RatePerSource: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

// TestUnloadedLatencyIsEight: at light load the round trip is the
// paper's 8-cycle minimum.
func TestUnloadedLatencyIsEight(t *testing.T) {
	r, err := Run(Config{Sources: 4, RatePerSource: 0.05, Stride: 1, Cycles: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanLatency < 8 || r.MeanLatency > 8.5 {
		t.Fatalf("light-load latency = %.2f, want ~8", r.MeanLatency)
	}
	if r.DeliveredWordsPerCycle < 0.95*r.OfferedWordsPerCycle {
		t.Fatalf("light load not fully delivered: %.2f of %.2f", r.DeliveredWordsPerCycle, r.OfferedWordsPerCycle)
	}
}

// TestSaturation: full-rate offered load from 32 sources saturates near
// the 16 words/cycle aggregate (768 MB/s) with elevated latency.
func TestSaturation(t *testing.T) {
	r, err := Run(Config{Sources: 32, RatePerSource: 1, Stride: 1, Cycles: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveredWordsPerCycle < 10 || r.DeliveredWordsPerCycle > 16.5 {
		t.Fatalf("saturated throughput = %.2f w/cyc, want near the 16 w/cyc capacity", r.DeliveredWordsPerCycle)
	}
	if r.MeanLatency < 12 {
		t.Fatalf("saturated latency = %.1f, expected well above the 8-cycle minimum", r.MeanLatency)
	}
	if r.Rejected == 0 {
		t.Fatal("no backpressure at 2x overload")
	}
}

// TestStrideAliasing: a stride equal to the module count aliases every
// request to one module, collapsing throughput to that module's service
// rate — the classic interleaved-memory pathology.
func TestStrideAliasing(t *testing.T) {
	unit, err := Run(Config{Sources: 8, RatePerSource: 1, Stride: 1, Cycles: 8000})
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := Run(Config{Sources: 8, RatePerSource: 1, Stride: 32, Cycles: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// Each source's stream aliases to a single module, capping it at the
	// module service rate of 0.5 words/cycle: 8 sources -> ~4 w/cyc.
	if aliased.DeliveredWordsPerCycle > 4.3 {
		t.Fatalf("stride-32 throughput = %.2f w/cyc, want ~4 (one module of 0.5 w/cyc per source)",
			aliased.DeliveredWordsPerCycle)
	}
	if unit.DeliveredWordsPerCycle < 1.6*aliased.DeliveredWordsPerCycle {
		t.Fatalf("unit stride (%.2f) not well above aliased stride (%.2f)",
			unit.DeliveredWordsPerCycle, aliased.DeliveredWordsPerCycle)
	}
	// Odd strides are conflict-free.
	odd, err := Run(Config{Sources: 8, RatePerSource: 1, Stride: 33, Cycles: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if odd.DeliveredWordsPerCycle < 0.8*unit.DeliveredWordsPerCycle {
		t.Fatalf("odd stride (%.2f) should match unit stride (%.2f)",
			odd.DeliveredWordsPerCycle, unit.DeliveredWordsPerCycle)
	}
}

// TestWriteMixConsumesBandwidth: two-word writes halve the request rate a
// port can sustain.
func TestWriteMixConsumesBandwidth(t *testing.T) {
	reads, err := Run(Config{Sources: 32, RatePerSource: 1, Cycles: 6000})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Run(Config{Sources: 32, RatePerSource: 1, WriteFraction: 0.5, Cycles: 6000})
	if err != nil {
		t.Fatal(err)
	}
	// Delivered counts read replies only; with half the requests being
	// writes, read throughput must drop.
	if mixed.DeliveredWordsPerCycle >= reads.DeliveredWordsPerCycle {
		t.Fatalf("write mix did not reduce read throughput: %.2f vs %.2f",
			mixed.DeliveredWordsPerCycle, reads.DeliveredWordsPerCycle)
	}
}

// TestIdealFabricComparison: the contentionless fabric delivers at least
// as much as the omega network under identical load, but remains bounded
// by the modules.
func TestIdealFabricComparison(t *testing.T) {
	real, err := Run(Config{Sources: 32, RatePerSource: 1, Cycles: 8000})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(Config{Sources: 32, RatePerSource: 1, Cycles: 8000, Ideal: true})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.DeliveredWordsPerCycle < real.DeliveredWordsPerCycle-0.5 {
		t.Fatalf("ideal fabric slower than omega: %.2f vs %.2f",
			ideal.DeliveredWordsPerCycle, real.DeliveredWordsPerCycle)
	}
	if ideal.DeliveredWordsPerCycle > 16.5 {
		t.Fatalf("ideal fabric exceeded module capacity: %.2f w/cyc", ideal.DeliveredWordsPerCycle)
	}
}

func TestSweeps(t *testing.T) {
	rs, err := LoadSweep(16, []float64{0.1, 0.5, 1}, 5000)
	if err != nil || len(rs) != 3 {
		t.Fatalf("LoadSweep: %v %d", err, len(rs))
	}
	if rs[2].DeliveredWordsPerCycle <= rs[0].DeliveredWordsPerCycle {
		t.Fatal("throughput not increasing with load")
	}
	ss, err := StrideSweep(8, []int{1, 8, 32}, 5000)
	if err != nil || len(ss) != 3 {
		t.Fatalf("StrideSweep: %v %d", err, len(ss))
	}
	if ss[2].DeliveredWordsPerCycle >= ss[0].DeliveredWordsPerCycle {
		t.Fatal("aliasing stride not slower")
	}
	if ss[0].String() == "" {
		t.Fatal("empty String")
	}
	_ = sim.Cycle(0)
}

// TestLatencyHistogramWired: the reply path is measured through the
// perfmon histogrammer, so the distribution (and its saturation tally)
// backs the reported mean exactly.
func TestLatencyHistogramWired(t *testing.T) {
	r, err := Run(Config{Sources: 8, RatePerSource: 0.5, Stride: 1, Cycles: 5000})
	if err != nil {
		t.Fatal(err)
	}
	h := r.LatencyHist
	if h == nil || h.Count() == 0 {
		t.Fatal("latency histogram missing or empty")
	}
	if got := h.Mean(); got != r.MeanLatency {
		t.Fatalf("histogram mean %.4f != reported mean %.4f", got, r.MeanLatency)
	}
	if h.Overflow != 0 {
		t.Fatalf("finite run saturated %d histogram bins", h.Overflow)
	}
	if q := h.Quantile(0.5); q < 8 {
		t.Fatalf("median latency %d below the 8-cycle minimum", q)
	}
}
