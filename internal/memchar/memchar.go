// Package memchar implements memory-system characterization benchmarks
// in the style of [GJTV91] ("Preliminary Performance Analysis of the
// Cedar Multiprocessor Memory System"), whose measured maximum bandwidth
// the paper cites when explaining the rank-64 results.
//
// The probes drive synthetic request streams through a stand-alone
// network+memory path (no CEs) and measure delivered bandwidth and
// round-trip latency as functions of offered load, source count, access
// stride and read/write mix. They expose the properties the machine's
// users had to program around: saturation near the 768 MB/s aggregate,
// the latency knee at saturation, and the collapse under strides that
// alias to a few memory modules.
package memchar

import (
	"fmt"

	"repro/internal/gmem"
	"repro/internal/network"
	"repro/internal/perfmon"
	"repro/internal/sim"
)

// Config describes a probe run.
type Config struct {
	// Sources is the number of issuing processor ports.
	Sources int
	// RatePerSource is the offered load per source in requests/cycle
	// (0 < rate <= 1).
	RatePerSource float64
	// Stride is the word stride of each source's address stream
	// (1 = unit stride; multiples of the module count alias to a single
	// module).
	Stride int
	// WriteFraction is the share of requests that are (2-word) writes.
	WriteFraction float64
	// Cycles is the measurement duration.
	Cycles sim.Cycle
	// Ideal selects the contentionless network fabric.
	Ideal bool
	// Modules / ServiceCycles override the memory build (0 = Cedar's
	// 32 modules at 2 cycles).
	Modules       int
	ServiceCycles int
}

// Result is one probe measurement.
type Result struct {
	Config
	// OfferedWordsPerCycle and DeliveredWordsPerCycle are the load and
	// the achieved read throughput (replies delivered).
	OfferedWordsPerCycle   float64
	DeliveredWordsPerCycle float64
	// MeanLatency is the mean read round trip in cycles.
	MeanLatency float64
	// LatencyHist is the histogrammer attached to the reply path: the
	// full round-trip distribution behind MeanLatency, including the
	// Overflow tally of samples whose saturated bins stopped counting.
	LatencyHist *perfmon.Histogram
	// Rejected counts injections refused by entry backpressure.
	Rejected int64
}

// String formats a result row.
func (r Result) String() string {
	return fmt.Sprintf("src=%-3d rate=%.2f stride=%-3d wr=%.2f  offered=%5.2f delivered=%5.2f w/cyc  lat=%6.1f cyc",
		r.Sources, r.RatePerSource, r.Stride, r.WriteFraction,
		r.OfferedWordsPerCycle, r.DeliveredWordsPerCycle, r.MeanLatency)
}

// Run executes one probe.
func Run(cfg Config) (Result, error) {
	if cfg.Sources <= 0 || cfg.Sources > 64 {
		return Result{}, fmt.Errorf("memchar: %d sources (1..64)", cfg.Sources)
	}
	if cfg.RatePerSource <= 0 || cfg.RatePerSource > 1 {
		return Result{}, fmt.Errorf("memchar: rate %g outside (0,1]", cfg.RatePerSource)
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	if cfg.Modules <= 0 {
		cfg.Modules = 32
	}
	if cfg.ServiceCycles <= 0 {
		cfg.ServiceCycles = 2
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 20000
	}

	eng := sim.New()
	var fwd, rev *network.Network
	var err error
	if cfg.Ideal {
		fwd, err = network.NewIdeal("forward", 64, 8)
		if err == nil {
			rev, err = network.NewIdeal("reverse", 64, 8)
		}
	} else {
		fwd, err = network.New("forward", 64, 8, 0)
		if err == nil {
			rev, err = network.New("reverse", 64, 8, 0)
		}
	}
	if err != nil {
		return Result{}, err
	}
	g, err := gmem.New(gmem.Config{
		Words: 1 << 22, Modules: cfg.Modules,
		ServiceCycles: cfg.ServiceCycles, QueueWords: 4,
	}, rev)
	if err != nil {
		return Result{}, err
	}
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
	}
	for p := g.Modules(); p < 64; p++ {
		fwd.SetSink(p, network.SinkFunc(func(*network.Packet) bool { return true }))
	}

	// The reply path is measured the way the hardware monitor would: a
	// histogrammer on the round-trip latency signal. 0..4095 cycles at
	// one bin per cycle covers any latency a finite-queue run produces.
	latHist := perfmon.NewHistogram(0, 4095, 4096)
	var delivered, latSum int64
	for p := 0; p < 64; p++ {
		rev.SetSink(p, network.SinkFunc(func(pk *network.Packet) bool {
			delivered++
			lat := int64(eng.Now() - pk.Born)
			latSum += lat
			latHist.Add(lat)
			return true
		}))
	}

	addr := make([]uint64, cfg.Sources)
	acc := make([]float64, cfg.Sources)
	r := sim.NewRand(uint64(cfg.Sources)*1000 + uint64(cfg.Stride))
	for s := range addr {
		// Decorrelate stream starts across modules and phases.
		addr[s] = uint64(s*65536 + s)
		acc[s] = float64(s) / float64(cfg.Sources)
	}
	var offered int64
	eng.Register("sources", sim.ComponentFunc(func(now sim.Cycle) {
		for s := 0; s < cfg.Sources; s++ {
			acc[s] += cfg.RatePerSource
			if acc[s] < 1 {
				continue
			}
			kind := network.Read
			words := 1
			if cfg.WriteFraction > 0 && r.Float64() < cfg.WriteFraction {
				kind = network.Write
				words = 2
			}
			a := addr[s]
			p := &network.Packet{
				Dst: g.ModuleOf(a), Src: s, Words: words,
				Kind: kind, Addr: a, Phantom: true,
				Tag: 1 << 21,
			}
			if fwd.Offer(now, s, p) {
				acc[s]--
				addr[s] += uint64(cfg.Stride)
				if addr[s] >= uint64(g.Words()) {
					addr[s] %= uint64(g.Words())
				}
				offered++
			}
		}
	}))
	eng.Register("fwd", fwd)
	for m := 0; m < g.Modules(); m++ {
		eng.Register("mod", g.Module(m))
	}
	eng.Register("rev", rev)
	eng.Run(cfg.Cycles)

	res := Result{
		Config:                 cfg,
		OfferedWordsPerCycle:   float64(cfg.Sources) * cfg.RatePerSource,
		DeliveredWordsPerCycle: float64(delivered) / float64(cfg.Cycles),
		LatencyHist:            latHist,
		Rejected:               fwd.Rejected,
	}
	if delivered > 0 {
		res.MeanLatency = float64(latSum) / float64(delivered)
	}
	return res, nil
}

// LoadSweep measures throughput/latency across offered loads for a fixed
// source count.
func LoadSweep(sources int, rates []float64, cycles sim.Cycle) ([]Result, error) {
	var out []Result
	for _, rate := range rates {
		r, err := Run(Config{Sources: sources, RatePerSource: rate, Stride: 1, Cycles: cycles})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// StrideSweep measures full-rate delivered bandwidth across strides: the
// [GJTV91]-style probe showing module-aliasing collapse when the stride
// shares a large factor with the interleave.
func StrideSweep(sources int, strides []int, cycles sim.Cycle) ([]Result, error) {
	var out []Result
	for _, st := range strides {
		r, err := Run(Config{Sources: sources, RatePerSource: 1, Stride: st, Cycles: cycles})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
