package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlameRender(t *testing.T) {
	f := NewFlame("Activity")
	f.AddRow("cluster0/ce0", []float64{0, 0.5, 1})
	f.AddRow("gmem", []float64{1, 1, 1})
	f.AddNote("a footnote")
	if f.Rows() != 2 {
		t.Fatalf("Rows = %d", f.Rows())
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Activity", "cluster0/ce0", "legend", "a footnote"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Cells render one ramp character per interval between the | bars:
	// 0 -> ' ', 0.5 -> middle of the ramp, 1 -> '@'.
	if !strings.Contains(out, "cluster0/ce0 | +@|") {
		t.Fatalf("CE row cells wrong:\n%s", out)
	}
	if !strings.Contains(out, "|@@@|") {
		t.Fatalf("saturated row cells wrong:\n%s", out)
	}
}

func TestShadeClamps(t *testing.T) {
	if shade(-0.5) != flameRamp[0] {
		t.Fatal("negative utilization not clamped to empty")
	}
	if shade(1.5) != flameRamp[len(flameRamp)-1] {
		t.Fatal("over-unity utilization not clamped to full")
	}
	if shade(0) != ' ' || shade(1) != '@' {
		t.Fatal("ramp endpoints wrong")
	}
}

func TestNoteOverflow(t *testing.T) {
	tb := NewTable("T", "col")
	tb.AddRow("x")
	tb.NoteOverflow("latency histogram", 0)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "saturated") {
		t.Fatal("overflow note rendered for zero overflow")
	}

	tb2 := NewTable("T", "col")
	tb2.AddRow("x")
	tb2.NoteOverflow("latency histogram", 12)
	buf.Reset()
	if err := tb2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "latency histogram: 12 samples hit saturated histogram bins") {
		t.Fatalf("overflow note missing:\n%s", out)
	}
	if !strings.Contains(out, "lower bounds") {
		t.Fatalf("overflow note does not flag the lower-bound caveat:\n%s", out)
	}
}
