// Package report renders the reproduced tables and figures as text, in
// the layout of the paper's exhibits.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("report: row of %d cells in a %d-column table", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(note string) { t.notes = append(t.notes, note) }

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
		b.WriteString(strings.Repeat("=", min(total, len(t.Title))) + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			b.WriteString(fmt.Sprintf("%-*s", widths[i]+2, c))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		b.WriteString("  " + n + "\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// F formats a float compactly (one decimal under 100, otherwise none).
func F(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Pct formats a ratio as a percentage ("11%").
func Pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// Scatter renders an ASCII scatter plot (Figure 3's layout: x = one
// machine's efficiency, y = the other's, both 0..1) with optional
// horizontal/vertical threshold lines.
type Scatter struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	XLines, YLines []float64 // threshold lines at these values
	pts            []scatterPt
}

type scatterPt struct {
	x, y  float64
	mark  rune
	label string
}

// NewScatter returns a plot with sensible terminal dimensions.
func NewScatter(title, xlabel, ylabel string) *Scatter {
	return &Scatter{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 61, Height: 21}
}

// Add places a point (coordinates clamped to [0,1]).
func (s *Scatter) Add(x, y float64, mark rune, label string) {
	s.pts = append(s.pts, scatterPt{clamp01(x), clamp01(y), mark, label})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Render writes the plot.
func (s *Scatter) Render(w io.Writer) error {
	grid := make([][]rune, s.Height)
	for r := range grid {
		grid[r] = make([]rune, s.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	colOf := func(x float64) int { return int(x * float64(s.Width-1)) }
	rowOf := func(y float64) int { return s.Height - 1 - int(y*float64(s.Height-1)) }
	for _, xv := range s.XLines {
		c := colOf(xv)
		for r := 0; r < s.Height; r++ {
			grid[r][c] = '|'
		}
	}
	for _, yv := range s.YLines {
		r := rowOf(yv)
		for c := 0; c < s.Width; c++ {
			if grid[r][c] == '|' {
				grid[r][c] = '+'
			} else {
				grid[r][c] = '-'
			}
		}
	}
	for _, p := range s.pts {
		grid[rowOf(p.y)][colOf(p.x)] = p.mark
	}
	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title + "\n")
	}
	b.WriteString(fmt.Sprintf("%s\n", s.YLabel))
	for r := 0; r < s.Height; r++ {
		yv := float64(s.Height-1-r) / float64(s.Height-1)
		b.WriteString(fmt.Sprintf("%4.1f |%s|\n", yv, string(grid[r])))
	}
	b.WriteString("      " + strings.Repeat("-", s.Width) + "\n")
	b.WriteString(fmt.Sprintf("      0%*s1.0   %s\n", s.Width-4, "", s.XLabel))
	if len(s.pts) > 0 {
		b.WriteString("  points: ")
		for i, p := range s.pts {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(fmt.Sprintf("%c=%s(%.2f,%.2f)", p.mark, p.label, p.x, p.y))
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}
