package report

import (
	"fmt"
	"io"
	"strings"
)

// flameRamp shades a utilization in [0,1]; one character per cell keeps
// a 32-CE machine's activity over hundreds of intervals on one screen.
const flameRamp = " .:-=+*#%@"

// Flame is a compact text flamegraph-style activity summary: one row
// per component, one column per sampling interval, each cell shading
// that component's utilization of the interval.
type Flame struct {
	Title string
	rows  []flameRow
	notes []string
}

type flameRow struct {
	label string
	cells []float64
	codes []byte // non-nil: pre-classified cell codes instead of shades
}

// NewFlame returns an empty flame summary.
func NewFlame(title string) *Flame { return &Flame{Title: title} }

// AddRow appends a component row; cells are utilizations in [0,1]
// (clamped at render time), one per interval.
func (f *Flame) AddRow(label string, cells []float64) {
	f.rows = append(f.rows, flameRow{label: label, cells: cells})
}

// AddCodedRow appends a row whose cells are pre-classified one-byte
// codes rather than shaded utilizations — the per-CE stall-breakdown
// view, where each cell names the interval's dominant cycle-accounting
// bucket (isa.Bucket.Code).
func (f *Flame) AddCodedRow(label string, codes []byte) {
	f.rows = append(f.rows, flameRow{label: label, codes: codes})
}

// AddNote appends a footnote line rendered under the summary.
func (f *Flame) AddNote(note string) { f.notes = append(f.notes, note) }

// Rows reports the number of component rows.
func (f *Flame) Rows() int { return len(f.rows) }

// shade maps a utilization to its ramp character.
func shade(v float64) byte {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	i := int(v*float64(len(flameRamp)-1) + 0.5)
	return flameRamp[i]
}

// Render writes the summary: aligned labels, one shaded cell per
// interval, and a legend.
func (f *Flame) Render(w io.Writer) error {
	width := 0
	for _, r := range f.rows {
		if len(r.label) > width {
			width = len(r.label)
		}
	}
	var b strings.Builder
	if f.Title != "" {
		b.WriteString(f.Title + "\n")
	}
	for _, r := range f.rows {
		b.WriteString(fmt.Sprintf("%-*s |", width, r.label))
		if r.codes != nil {
			b.Write(r.codes)
		} else {
			for _, c := range r.cells {
				b.WriteByte(shade(c))
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString(fmt.Sprintf("%-*s  legend: '%c'=0%%", width, "", flameRamp[0]))
	b.WriteString(fmt.Sprintf(" ... '%c'=100%% busy per interval\n", flameRamp[len(flameRamp)-1]))
	for _, n := range f.notes {
		b.WriteString("  " + n + "\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// NoteOverflow appends the histogram-saturation footnote when overflow
// is non-zero: a saturated 32-bit histogrammer counter stops counting,
// so any statistic derived from the affected bins is a lower bound.
func (t *Table) NoteOverflow(name string, overflow int64) {
	if overflow <= 0 {
		return
	}
	t.AddNote(fmt.Sprintf("%s: %d samples hit saturated histogram bins; derived counts are lower bounds", name, overflow))
}
