package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "a", "bb", "ccc")
	tb.AddRow("1", "2", "3")
	tb.AddRow("10", "20")
	tb.AddNote("a note")
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Title", "a", "bb", "ccc", "10", "20", "a note", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header and data lines align: the separator row exists.
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "--") {
			found = true
		}
	}
	if !found {
		t.Fatal("no separator row")
	}
}

func TestTableTooManyCellsPanics(t *testing.T) {
	tb := NewTable("x", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row accepted")
		}
	}()
	tb.AddRow("a", "b")
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		3.14159: "3.14",
		42.5:    "42.5",
		250:     "250",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%g) = %q, want %q", v, got, want)
		}
	}
	nan := 0.0
	nan /= nan
	if F(nan) != "-" {
		t.Error("F(NaN) should be -")
	}
	if Pct(0.11) != "11%" {
		t.Errorf("Pct = %q", Pct(0.11))
	}
}

func TestScatterRender(t *testing.T) {
	s := NewScatter("Fig", "xlab", "ylab")
	s.XLines = []float64{0.5}
	s.YLines = []float64{0.1}
	s.Add(0.3, 0.7, 'A', "alpha")
	s.Add(1.5, -0.2, 'B', "beta") // clamped
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig", "xlab", "ylab", "A", "B", "alpha", "beta", "|", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scatter missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "(1.00,0.00)") {
		t.Fatal("clamping not applied")
	}
}

func TestScatterEmpty(t *testing.T) {
	s := NewScatter("", "x", "y")
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x") {
		t.Fatal("empty scatter renders nothing")
	}
}
