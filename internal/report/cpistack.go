package report

import (
	"fmt"
	"io"
)

// CPIStack renders cycle-accounting breakdowns (DESIGN.md §4.8): one row
// per unit — a CE, a workload phase, a machine rollup — showing the
// unit's total cycles and the percentage share of each accounting
// bucket. The bucket vocabulary is the caller's (isa.AcctNames for the
// CE profiler), so the renderer stays free of model dependencies.
type CPIStack struct {
	Title   string
	buckets []string
	rows    []cpiRow
	notes   []string
}

type cpiRow struct {
	label  string
	cycles []int64
}

// NewCPIStack returns an empty breakdown over the given bucket names
// (the column order).
func NewCPIStack(title string, buckets []string) *CPIStack {
	return &CPIStack{Title: title, buckets: buckets}
}

// AddRow appends one unit's bucket cycle counts; len(cycles) must match
// the bucket vocabulary.
func (s *CPIStack) AddRow(label string, cycles []int64) {
	if len(cycles) != len(s.buckets) {
		panic(fmt.Sprintf("report: CPI row of %d buckets in a %d-bucket stack", len(cycles), len(s.buckets)))
	}
	row := cpiRow{label: label, cycles: make([]int64, len(cycles))}
	copy(row.cycles, cycles)
	s.rows = append(s.rows, row)
}

// AddNote appends a footnote line rendered under the stack.
func (s *CPIStack) AddNote(note string) { s.notes = append(s.notes, note) }

// Rows reports the number of data rows.
func (s *CPIStack) Rows() int { return len(s.rows) }

// pctCell formats a bucket's share of total: "-" for an empty bucket,
// one decimal otherwise so sub-percent stalls stay visible.
func pctCell(cycles, total int64) string {
	if cycles == 0 || total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(cycles)/float64(total))
}

// Render writes the breakdown as a fixed-width table, omitting bucket
// columns that are zero in every row (a non-faulted run never shows the
// fault buckets).
func (s *CPIStack) Render(w io.Writer) error {
	used := make([]bool, len(s.buckets))
	for _, r := range s.rows {
		for i, c := range r.cycles {
			if c != 0 {
				used[i] = true
			}
		}
	}
	headers := []string{"unit", "cycles"}
	for i, b := range s.buckets {
		if used[i] {
			headers = append(headers, b)
		}
	}
	t := NewTable(s.Title, headers...)
	for _, r := range s.rows {
		var total int64
		for _, c := range r.cycles {
			total += c
		}
		cells := []string{r.label, fmt.Sprintf("%d", total)}
		for i, c := range r.cycles {
			if used[i] {
				cells = append(cells, pctCell(c, total))
			}
		}
		t.AddRow(cells...)
	}
	for _, n := range s.notes {
		t.AddNote(n)
	}
	return t.Render(w)
}
