package telemetry

import (
	"strings"
	"testing"
)

func TestRegistryRegisterAndRead(t *testing.T) {
	reg := NewRegistry()
	var stalls, flops int64 = 7, 42
	reg.Counter("cluster0/ce3/stalls", &stalls)
	reg.Counter("cluster0/ce3/flops", &flops)
	inFlight := int64(3)
	reg.Gauge("net/fwd/in_flight", func() int64 { return inFlight })
	var skipped int64 = 99
	reg.Diagnostic("engine/skipped_ticks", &skipped)

	if reg.Len() != 4 {
		t.Fatalf("Len = %d, want 4", reg.Len())
	}
	want := []string{"cluster0/ce3/stalls", "cluster0/ce3/flops", "net/fwd/in_flight", "engine/skipped_ticks"}
	got := reg.Paths()
	for i, p := range want {
		if got[i] != p {
			t.Fatalf("Paths[%d] = %q, want %q (registration order)", i, got[i], p)
		}
	}
	if v, ok := reg.Value("cluster0/ce3/stalls"); !ok || v != 7 {
		t.Fatalf("Value(stalls) = %d,%v", v, ok)
	}
	stalls = 8 // the registry is a view, not a copy
	if v, _ := reg.Value("cluster0/ce3/stalls"); v != 8 {
		t.Fatalf("Value(stalls) after mutation = %d, want 8", v)
	}
	if _, ok := reg.Value("no/such/metric"); ok {
		t.Fatal("Value on unknown path reported ok")
	}
	if k, ok := reg.KindOf("net/fwd/in_flight"); !ok || k != Gauge {
		t.Fatalf("KindOf(in_flight) = %v,%v, want Gauge", k, ok)
	}
	if k, _ := reg.KindOf("engine/skipped_ticks"); k != Diagnostic {
		t.Fatalf("KindOf(skipped_ticks) = %v, want Diagnostic", k)
	}
	snap := reg.Snapshot()
	if len(snap) != 4 || snap[0] != 8 || snap[1] != 42 || snap[2] != 3 || snap[3] != 99 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		f()
	}
	reg := NewRegistry()
	var v int64
	reg.Counter("a/b/c", &v)
	expectPanic("duplicate path", func() { reg.Counter("a/b/c", &v) })
	expectPanic("nil reader", func() { reg.Register("a/b/d", Counter, nil) })
	expectPanic("empty path", func() { reg.CounterFunc("", func() int64 { return 0 }) })
	expectPanic("leading slash", func() { reg.CounterFunc("/a/b", func() int64 { return 0 }) })
	expectPanic("trailing slash", func() { reg.CounterFunc("a/b/", func() int64 { return 0 }) })
}

func TestFingerprintExcludesDiagnostics(t *testing.T) {
	reg := NewRegistry()
	var c, d int64 = 5, 1000
	reg.Counter("z/y/count", &c)
	reg.Gauge("a/b/level", func() int64 { return 2 })
	reg.Diagnostic("engine/skipped", &d)

	fp := reg.Fingerprint()
	if strings.Contains(fp, "skipped") {
		t.Fatalf("fingerprint includes a diagnostic:\n%s", fp)
	}
	// Sorted lines, trailing newline.
	if fp != "a/b/level 2\nz/y/count 5\n" {
		t.Fatalf("fingerprint = %q", fp)
	}
	// Diagnostics drifting apart must not change the fingerprint.
	d += 12345
	if reg.Fingerprint() != fp {
		t.Fatal("fingerprint changed when only a diagnostic changed")
	}
	c++
	if reg.Fingerprint() == fp {
		t.Fatal("fingerprint missed an architected counter change")
	}
}

func TestDumpFlagsDiagnostics(t *testing.T) {
	reg := NewRegistry()
	var c, d int64 = 5, 9
	reg.Counter("z/y/count", &c)
	reg.Diagnostic("engine/skipped", &d)
	dump := reg.Dump()
	if !strings.Contains(dump, "(diagnostic)") {
		t.Fatalf("dump does not flag the diagnostic:\n%s", dump)
	}
	lines := strings.Split(strings.TrimSuffix(dump, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2:\n%s", len(lines), dump)
	}
	if !strings.HasPrefix(lines[0], "engine/skipped") {
		t.Fatalf("dump not sorted:\n%s", dump)
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		path, process, thread, name string
	}{
		{"cluster0/ce3/stall_mem", "cluster0", "ce3", "stall_mem"},
		{"cluster1/cache/hits/deep", "cluster1", "cache", "hits/deep"},
		{"engine/skipped", "engine", "engine", "skipped"},
		{"flops", "flops", "flops", "flops"},
	}
	for _, c := range cases {
		p, th, n := splitPath(c.path)
		if p != c.process || th != c.thread || n != c.name {
			t.Fatalf("splitPath(%q) = %q,%q,%q, want %q,%q,%q",
				c.path, p, th, n, c.process, c.thread, c.name)
		}
	}
}
