package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// traceRig drives a small deterministic scenario through the sampler and
// returns the exporter's bytes: one busy-then-idle worker, a derived
// pfu-style counter, a gauge, a diagnostic, one mid-cycle phase mark and
// one bridged perfmon event.
func traceRig(t *testing.T) []byte {
	t.Helper()
	eng := sim.New()
	w := &worker{until: 25}
	eng.Register("worker", w)

	reg := NewRegistry()
	reg.Counter("cluster0/ce0/ops", &w.Ops)
	reg.Counter("cluster0/ce0/idle_cycles", &w.Idle)
	// A cycle-accounting bucket: "attr/" counters get per-interval-rate
	// counter tracks in addition to the slice args.
	reg.Counter("cluster0/ce0/attr/busy", &w.Ops)
	reg.CounterFunc("cluster0/pfu0/issued", func() int64 { return w.Ops / 2 })
	reg.Gauge("net/fwd/in_flight", func() int64 { return w.Ops % 3 })
	var skipped int64
	reg.Diagnostic("engine/skipped_ticks", &skipped)

	s := NewSampler(reg, 10)
	s.Attach(eng)

	// A component that marks a phase boundary from inside its own tick,
	// exercising the mid-cycle label-only path of the exporter.
	eng.Register("phase-marker", sim.ComponentFunc(func(now sim.Cycle) {
		if now == 15 {
			s.Phase("barrier:start")
		}
	}))

	eng.Run(40)
	s.Final()

	events := []Event{{Cycle: 7, Name: "sync_release", Arg: 3}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteTraceGolden(t *testing.T) {
	got := traceRig(t)
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -run TestWriteTraceGolden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace output drifted from golden file %s (re-run with -update if intended)\ngot %d bytes, want %d", golden, len(got), len(want))
	}
}

func TestWriteTraceDeterministic(t *testing.T) {
	a := traceRig(t)
	b := traceRig(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different trace bytes")
	}
}

func TestWriteTraceStructure(t *testing.T) {
	raw := traceRig(t)
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   json.RawMessage `json:"ts"`
			Args map[string]any  `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Exactly one thread_name metadata row per registered component
	// (cluster0/ce0, cluster0/pfu0, net/fwd, engine) plus the two
	// synthetic rows (workload/phases, perfmon/tracer).
	threads := map[[2]int]string{}
	processes := map[int]string{}
	for _, e := range tf.TraceEvents {
		switch e.Name {
		case "thread_name":
			k := [2]int{e.Pid, e.Tid}
			if prev, dup := threads[k]; dup {
				t.Fatalf("duplicate thread_name for pid=%d tid=%d (%q and %q)", e.Pid, e.Tid, prev, e.Args["name"])
			}
			threads[k] = e.Args["name"].(string)
		case "process_name":
			processes[e.Pid] = e.Args["name"].(string)
		}
	}
	if len(threads) != 6 {
		t.Fatalf("got %d timeline rows %v, want 6", len(threads), threads)
	}
	for _, p := range []string{"cluster0", "net", "engine", "workload", "perfmon"} {
		found := false
		for _, name := range processes {
			if name == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("process %q missing from trace metadata (have %v)", p, processes)
		}
	}

	// The phase mark and the perfmon event appear as instants; slices,
	// gauge tracks and attribution tracks exist; a diagnostic never
	// becomes a slice or track.
	var sawMark, sawPerfmon, sawSlice, sawGauge, sawAttr bool
	var attrFirst *int64
	for _, e := range tf.TraceEvents {
		switch {
		case e.Ph == "i" && e.Name == "barrier:start":
			sawMark = true
			if string(e.Ts) != "2.55" { // cycle 15 at 170 ns = 2.55 us, exact decimal
				t.Fatalf("phase mark ts = %s, want 2.55", e.Ts)
			}
		case e.Ph == "i" && e.Name == "sync_release":
			sawPerfmon = true
		case e.Ph == "X":
			sawSlice = true
			if _, leak := e.Args["skipped_ticks"]; leak {
				t.Fatal("diagnostic leaked into a slice's args")
			}
		case e.Ph == "C" && e.Name == "attr/busy":
			sawAttr = true
			if attrFirst == nil {
				v := int64(e.Args["value"].(float64))
				attrFirst = &v
			}
		case e.Ph == "C":
			sawGauge = true
			if e.Name != "in_flight" {
				t.Fatalf("unexpected counter track %q", e.Name)
			}
		}
	}
	if !sawMark || !sawPerfmon || !sawSlice || !sawGauge || !sawAttr {
		t.Fatalf("missing event kinds: mark=%v perfmon=%v slice=%v gauge=%v attr=%v",
			sawMark, sawPerfmon, sawSlice, sawGauge, sawAttr)
	}
	// Attribution tracks carry per-interval deltas: the first snapshot
	// has no preceding interval, so its value must be 0.
	if attrFirst == nil || *attrFirst != 0 {
		t.Fatalf("first attr/busy track value = %v, want 0", attrFirst)
	}
}
