// Package telemetry is the machine-wide observability layer: a metrics
// registry in which every simulated component publishes its counters and
// gauges under a stable hierarchical path, a phase-interval sampler that
// snapshots the registry as simulated time advances, and a trace
// exporter that renders sampler output (plus performance-monitor events)
// as Chrome trace_event JSON loadable in Perfetto.
//
// The registry is pull-based: a component registers a closure over the
// counter it already maintains (`reg.Counter("cluster0/ce3/stall_mem",
// &c.StallMem)`), so the instrumented fast path is untouched — the
// exported counter fields remain the backing store and the registry is
// the uniform, path-addressable view over all of them. Registration
// happens once at machine assembly and costs nothing afterwards;
// reading happens only when a snapshot is taken. A machine that never
// asks for its registry pays nothing at all.
//
// Metric paths mirror the machine topology:
//
//	cluster0/ce3/stall_mem        per-CE counters
//	cluster0/pfu3/issued          per-PFU counters
//	cluster0/cache/misses         per-cluster shared cache
//	net/fwd/in_flight             network gauges and counters
//	gmem/mod7/served              per-module counters
//	engine/fast_forwarded         engine diagnostics
//
// The first path segment names the process and the second the thread of
// the exported trace timeline; everything after that is the metric name.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a metric.
type Kind uint8

// Metric kinds.
const (
	// Counter is a monotonically non-decreasing architected count (stall
	// cycles, packets delivered, flops). Counters participate in
	// fingerprints and per-interval deltas.
	Counter Kind = iota
	// Gauge is an instantaneous architected level (packets in flight,
	// queue depth). Gauges participate in fingerprints but deltas of a
	// gauge are level changes, not rates.
	Gauge
	// Diagnostic is a host-side simulator statistic (elided ticks,
	// fast-forwarded cycles) that legitimately differs between the
	// quiescence-aware and naive engine paths. Diagnostics are excluded
	// from fingerprints so the engine-equivalence tests can assert that
	// everything architected is bit-identical.
	Diagnostic
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Diagnostic:
		return "diagnostic"
	}
	return "unknown"
}

// metric is one registered instrument.
type metric struct {
	path string
	kind Kind
	read func() int64
}

// Registry holds the machine's metrics. The zero value is not usable;
// call NewRegistry. A Registry is not safe for concurrent use — like the
// engine it observes, it belongs to one simulation goroutine.
type Registry struct {
	metrics []metric
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

// Register adds a metric under path, read through the given closure at
// snapshot time. Paths are slash-separated, must be unique, and become
// part of the machine's observable surface — treat them as API.
func (r *Registry) Register(path string, kind Kind, read func() int64) {
	if read == nil {
		panic(fmt.Sprintf("telemetry: Register(%q) with nil reader", path))
	}
	if path == "" || strings.HasPrefix(path, "/") || strings.HasSuffix(path, "/") {
		panic(fmt.Sprintf("telemetry: malformed metric path %q", path))
	}
	if _, dup := r.index[path]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric path %q", path))
	}
	r.index[path] = len(r.metrics)
	r.metrics = append(r.metrics, metric{path: path, kind: kind, read: read})
}

// Counter registers a counter backed by an existing int64 field.
func (r *Registry) Counter(path string, v *int64) {
	r.Register(path, Counter, func() int64 { return *v })
}

// CounterFunc registers a computed counter.
func (r *Registry) CounterFunc(path string, f func() int64) { r.Register(path, Counter, f) }

// Gauge registers a computed instantaneous level.
func (r *Registry) Gauge(path string, f func() int64) { r.Register(path, Gauge, f) }

// Diagnostic registers a simulator-side statistic backed by an int64
// field; see Kind for why these are fenced off from fingerprints.
func (r *Registry) Diagnostic(path string, v *int64) {
	r.Register(path, Diagnostic, func() int64 { return *v })
}

// Len reports the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Paths returns every metric path in registration order (which is the
// machine-assembly order and therefore deterministic).
func (r *Registry) Paths() []string {
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.path
	}
	return out
}

// KindOf returns the kind of the metric at path.
func (r *Registry) KindOf(path string) (Kind, bool) {
	i, ok := r.index[path]
	if !ok {
		return 0, false
	}
	return r.metrics[i].kind, true
}

// Value reads the current value of the metric at path.
func (r *Registry) Value(path string) (int64, bool) {
	i, ok := r.index[path]
	if !ok {
		return 0, false
	}
	return r.metrics[i].read(), true
}

// Snapshot reads every metric, in registration order (parallel to
// Paths). The caller owns the returned slice.
func (r *Registry) Snapshot() []int64 {
	out := make([]int64, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.read()
	}
	return out
}

// Fingerprint renders every architected metric (counters and gauges,
// not diagnostics) as sorted "path value" lines. Two machines in the
// same architected state produce identical fingerprints regardless of
// which engine path ran them — the property the determinism suite
// asserts.
func (r *Registry) Fingerprint() string {
	lines := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		if m.kind == Diagnostic {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s %d", m.path, m.read()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// Dump renders every metric (diagnostics included, flagged) as sorted
// text lines — the -metrics-out format.
func (r *Registry) Dump() string {
	lines := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		suffix := ""
		if m.kind == Diagnostic {
			suffix = " (diagnostic)"
		}
		lines = append(lines, fmt.Sprintf("%-40s %12d%s", m.path, m.read(), suffix))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// splitPath decomposes a metric path into the trace coordinates derived
// from its first two segments: process, thread, and the remaining
// metric name. Paths with fewer than three segments collapse the
// missing levels ("engine/skipped" is process "engine", thread
// "engine", metric "skipped").
func splitPath(path string) (process, thread, name string) {
	parts := strings.SplitN(path, "/", 3)
	switch len(parts) {
	case 1:
		return parts[0], parts[0], parts[0]
	case 2:
		return parts[0], parts[0], parts[1]
	default:
		return parts[0], parts[1], parts[2]
	}
}
