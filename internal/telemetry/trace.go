package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Event is an instant on the simulated timeline contributed from outside
// the registry — the performance-monitor bridge feeds tracer events
// (sync releases, prefetch fires, ...) through it.
type Event struct {
	Cycle sim.Cycle
	Name  string
	Arg   int64
}

// traceEvent is one entry of the Chrome trace_event array. Timestamps
// and durations are pre-rendered exact-decimal microseconds carried as
// raw JSON numbers, so the emitted bytes are identical across runs and
// platforms (no float formatting involved).
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   json.RawMessage `json:"ts,omitempty"`
	Dur  json.RawMessage `json:"dur,omitempty"`
	S    string          `json:"s,omitempty"`
	Args map[string]any  `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// usec renders a cycle count as exact-decimal microseconds: one cycle is
// sim.CycleTime = 170 ns = 0.17 us, so the value is (c*17)/100 with two
// fixed fraction digits. Emitting the decimal ourselves keeps the trace
// byte-deterministic.
func usec(c sim.Cycle) json.RawMessage {
	n := int64(c) * 17
	return json.RawMessage(fmt.Sprintf("%d.%02d", n/100, n%100))
}

// coord locates a metric's timeline row.
type coord struct {
	pid, tid int
	name     string // metric name within the row
}

// traceLayout assigns stable pid/tid coordinates to processes (first
// path segment) and threads (second segment) in first-appearance
// registration order, accumulating the metadata events that name them.
type traceLayout struct {
	pids map[string]int
	tids map[[2]string]int
	next map[string]int // per-process next tid
	meta []traceEvent
}

func newTraceLayout() *traceLayout {
	return &traceLayout{
		pids: map[string]int{},
		tids: map[[2]string]int{},
		next: map[string]int{},
	}
}

// place returns (creating on first sight) the coordinates of the thread
// for process/thread names.
func (l *traceLayout) place(process, thread string) (pid, tid int) {
	pid, ok := l.pids[process]
	if !ok {
		pid = len(l.pids) + 1
		l.pids[process] = pid
		l.meta = append(l.meta, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": process},
		})
	}
	tk := [2]string{process, thread}
	tid, ok = l.tids[tk]
	if !ok {
		l.next[process]++
		tid = l.next[process]
		l.tids[tk] = tid
		l.meta = append(l.meta, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": thread},
		})
	}
	return pid, tid
}

// WriteTrace renders the sampler's recorded series, plus any bridged
// perfmon events, as Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing.
//
// Layout: each top-level path segment becomes a trace process (cluster0,
// net, gmem, engine, ...) and each second segment a thread within it
// (ce3, pfu0, fwd, mod7, ...), so every registered component owns one
// timeline row. Per sampling interval each row gets one complete ("X")
// slice whose args carry the row's non-zero counter deltas; gauges
// additionally emit counter-track ("C") events at every sample, as do
// the cycle-accounting "attr/" counters (carrying per-interval deltas,
// so each CE row reads as a stacked CPI chart); phase boundaries appear
// as global instants on a synthetic workload/phases row, and perfmon
// events as instants on perfmon/tracer.
func WriteTrace(w io.Writer, s *Sampler, events []Event) error {
	reg := s.Registry()
	paths := reg.Paths()
	layout := newTraceLayout()

	coords := make([]coord, len(paths))
	kinds := make([]Kind, len(paths))
	for i, p := range paths {
		process, thread, name := splitPath(p)
		pid, tid := layout.place(process, thread)
		coords[i] = coord{pid: pid, tid: tid, name: name}
		kinds[i], _ = reg.KindOf(p)
	}

	// Rows threads appear in registration order; the synthetic rows come
	// after every registered component.
	phasePid, phaseTid := layout.place("workload", "phases")
	var pmPid, pmTid int
	if len(events) > 0 {
		pmPid, pmTid = layout.place("perfmon", "tracer")
	}

	var evs []traceEvent
	evs = append(evs, layout.meta...)

	// One slice per component row per interval, carrying that row's
	// non-zero counter deltas. The slice name is the thread's, so rows
	// read as a run of same-named activity spans in Perfetto.
	type rowKey struct{ pid, tid int }
	samples := s.Samples()
	var snaps []Sample // full snapshots only; label-only marks carry no values
	for _, smp := range samples {
		if smp.Values != nil {
			snaps = append(snaps, smp)
		}
	}
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.Cycle <= prev.Cycle {
			continue
		}
		rowArgs := map[rowKey]map[string]any{}
		var rowOrder []rowKey
		rowName := map[rowKey]string{}
		for j := range paths {
			if kinds[j] != Counter {
				continue
			}
			d := cur.Values[j] - prev.Values[j]
			if d == 0 {
				continue
			}
			k := rowKey{coords[j].pid, coords[j].tid}
			if rowArgs[k] == nil {
				rowArgs[k] = map[string]any{}
				rowOrder = append(rowOrder, k)
				_, thread, _ := splitPath(paths[j])
				rowName[k] = thread
			}
			rowArgs[k][coords[j].name] = d
		}
		for _, k := range rowOrder {
			evs = append(evs, traceEvent{
				Name: rowName[k], Ph: "X", Pid: k.pid, Tid: k.tid,
				Ts: usec(prev.Cycle), Dur: usec(cur.Cycle - prev.Cycle),
				Args: rowArgs[k],
			})
		}
	}

	// Gauge levels as counter-track events at every full snapshot.
	for _, smp := range snaps {
		for j := range paths {
			if kinds[j] != Gauge {
				continue
			}
			evs = append(evs, traceEvent{
				Name: coords[j].name, Ph: "C", Pid: coords[j].pid, Tid: coords[j].tid,
				Ts:   usec(smp.Cycle),
				Args: map[string]any{"value": smp.Values[j]},
			})
		}
	}

	// Cycle-accounting buckets ("attr/..." counters, DESIGN.md §4.8) as
	// per-interval-rate counter tracks: each snapshot's event carries the
	// bucket's delta over the interval that ends there (0 at the first),
	// so every CE row gets a stacked CPI view alongside its slices.
	for i, smp := range snaps {
		for j := range paths {
			if kinds[j] != Counter || !strings.HasPrefix(coords[j].name, "attr/") {
				continue
			}
			var d int64
			if i > 0 {
				d = smp.Values[j] - snaps[i-1].Values[j]
			}
			evs = append(evs, traceEvent{
				Name: coords[j].name, Ph: "C", Pid: coords[j].pid, Tid: coords[j].tid,
				Ts:   usec(smp.Cycle),
				Args: map[string]any{"value": d},
			})
		}
	}

	// Phase boundaries as global instants.
	for _, smp := range samples {
		if smp.Label == "" {
			continue
		}
		evs = append(evs, traceEvent{
			Name: smp.Label, Ph: "i", Pid: phasePid, Tid: phaseTid,
			Ts: usec(smp.Cycle), S: "g",
		})
	}

	// Bridged perfmon tracer events as thread instants.
	for _, ev := range events {
		evs = append(evs, traceEvent{
			Name: ev.Name, Ph: "i", Pid: pmPid, Tid: pmTid,
			Ts: usec(ev.Cycle), S: "t",
			Args: map[string]any{"arg": ev.Arg},
		})
	}

	out, err := json.MarshalIndent(traceFile{DisplayTimeUnit: "ns", TraceEvents: evs}, "", " ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
