package telemetry

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// DefaultMaxSamples bounds a sampler's memory, in the spirit of the
// hardware tracers' 1M-event depth: further samples are counted as
// dropped rather than taken.
const DefaultMaxSamples = 1 << 20

// Sample is one registry snapshot at a point in simulated time. Label is
// empty for periodic interval samples and names the boundary for phase
// samples ("xdoall:start", "barrier:end", ...). Values is nil for a
// label-only mark: a phase boundary observed mid-cycle, where reading
// counters would capture partially-applied cycle effects (see Phase).
type Sample struct {
	Cycle  sim.Cycle
	Label  string
	Values []int64 // parallel to Registry.Paths(); nil for marks
}

// Sampler snapshots a registry at configurable cycle intervals and at
// workload phase boundaries, producing the time series that utilization
// and bandwidth plots, flame summaries and trace export are built from.
//
// The sampler honors the engine's quiescence contract (DESIGN.md §4.1):
// it implements sim.Probe, so the engine stamps interval samples at
// exactly the requested boundary cycles — including boundaries inside a
// fast-forwarded quiet span — without ever ticking a component that had
// no work. A sample can therefore never change simulated behaviour, and
// the quiescence-aware and naive engines record bit-identical series
// (asserted by the determinism suite).
type Sampler struct {
	reg   *Registry
	every sim.Cycle
	eng   *sim.Engine

	samples []Sample
	max     int

	// Dropped counts samples discarded after the depth limit.
	Dropped int64
}

// NewSampler returns a sampler over reg taking a periodic sample every
// `every` cycles (0 disables periodic sampling: only phase boundaries
// and Final record anything).
func NewSampler(reg *Registry, every sim.Cycle) *Sampler {
	if reg == nil {
		panic("telemetry: NewSampler with nil registry")
	}
	if every < 0 {
		every = 0
	}
	return &Sampler{reg: reg, every: every, max: DefaultMaxSamples}
}

// SetMaxSamples overrides the sample-depth limit (<= 0 restores the
// default).
func (s *Sampler) SetMaxSamples(n int) {
	if n <= 0 {
		n = DefaultMaxSamples
	}
	s.max = n
}

// Registry returns the registry the sampler snapshots.
func (s *Sampler) Registry() *Registry { return s.reg }

// Attach installs the sampler as eng's probe so interval samples are
// taken as simulated time advances, and remembers the engine so phase
// marks can settle deferred skip accounting before snapshotting.
func (s *Sampler) Attach(eng *sim.Engine) {
	s.eng = eng
	eng.SetProbe(s)
}

// NextSample implements sim.Probe: the next interval boundary at or
// after now, or Never when periodic sampling is off.
func (s *Sampler) NextSample(now sim.Cycle) sim.Cycle {
	if s.every <= 0 {
		return sim.Never
	}
	if now <= 0 {
		return 0
	}
	return ((now + s.every - 1) / s.every) * s.every
}

// SampleNow implements sim.Probe: the engine calls it with counters
// settled at now, immediately before the cycle at now executes.
func (s *Sampler) SampleNow(now sim.Cycle) { s.record(now, "", true) }

// Phase records a labeled sample at the current simulated time — a
// workload phase boundary such as a DOALL start or a barrier release.
// Called between runs, it settles deferred skip accounting and takes a
// full snapshot. Called from inside an operation callback (the engine
// is mid-cycle), it records the boundary's cycle and label without
// reading counters: a mid-tick read would observe partially-applied
// cycle effects that differ between the engine paths by tick-slot
// position, and the adjacent interval samples bracket the mark anyway.
func (s *Sampler) Phase(label string) {
	now := sim.Cycle(0)
	snap := true
	if s.eng != nil {
		now = s.eng.Now()
		if s.eng.MidCycle() {
			snap = false
		} else {
			s.eng.Settle() // credit skipped spans so counters are exact
		}
	}
	s.record(now, label, snap)
}

// PhaseStart and PhaseEnd are the cedarfort.PhaseObserver view of Phase.
func (s *Sampler) PhaseStart(name string) { s.Phase(name + ":start") }

// PhaseEnd marks the end of a named phase.
func (s *Sampler) PhaseEnd(name string) { s.Phase(name + ":end") }

// Final records a trailing unlabeled sample at the engine's current
// cycle if time has advanced past the last sample, closing the final
// interval. Call it after the measured run, before export.
func (s *Sampler) Final() {
	if s.eng == nil {
		return
	}
	now := s.eng.Now()
	if n := len(s.samples); n > 0 && s.samples[n-1].Cycle >= now && s.samples[n-1].Values != nil {
		return
	}
	s.eng.Settle()
	s.record(now, "", true)
}

func (s *Sampler) record(now sim.Cycle, label string, snap bool) {
	if len(s.samples) >= s.max {
		s.Dropped++
		return
	}
	var vals []int64
	if snap {
		vals = s.reg.Snapshot()
	}
	s.samples = append(s.samples, Sample{Cycle: now, Label: label, Values: vals})
}

// Samples returns the recorded series in capture order. The slice is
// the sampler's own storage; callers must not mutate it.
func (s *Sampler) Samples() []Sample { return s.samples }

// Interval is the delta between two consecutive samples: the
// utilization/bandwidth view of the span [From, To).
type Interval struct {
	From, To sim.Cycle
	// Delta holds, per metric (parallel to Registry.Paths), the counter
	// increase over the interval; for gauges it is the level change.
	Delta []int64
	// Phase names the innermost workload phase active as the interval
	// began ("" outside any phase). Populated by Intervals from the
	// "name:start"/"name:end" marks; an interval straddling a boundary
	// keeps the phase of its From edge — the mark itself is label-only,
	// so the bracketing samples carry the counters.
	Phase string
}

// Cycles is the interval length.
func (iv Interval) Cycles() sim.Cycle { return iv.To - iv.From }

// Intervals derives per-interval deltas between consecutive full
// snapshots, skipping label-only marks and zero-length intervals (a
// phase boundary coinciding with a periodic sample). Each interval is
// stamped with the workload phase active at its From edge, maintained
// as a stack over the ":start"/":end" marks so nested phases attribute
// to the innermost.
func (s *Sampler) Intervals() []Interval {
	var out []Interval
	prev := (*Sample)(nil)
	var stack []string
	prevPhase := ""
	top := func() string {
		if len(stack) == 0 {
			return ""
		}
		return stack[len(stack)-1]
	}
	for i := range s.samples {
		cur := &s.samples[i]
		if name, ok := strings.CutSuffix(cur.Label, ":start"); ok {
			stack = append(stack, name)
		} else if name, ok := strings.CutSuffix(cur.Label, ":end"); ok {
			for n := len(stack) - 1; n >= 0; n-- {
				if stack[n] == name {
					stack = stack[:n]
					break
				}
			}
		}
		if cur.Values == nil {
			continue
		}
		if prev != nil && cur.Cycle > prev.Cycle {
			d := make([]int64, len(cur.Values))
			for j := range d {
				d[j] = cur.Values[j] - prev.Values[j]
			}
			out = append(out, Interval{From: prev.Cycle, To: cur.Cycle, Delta: d, Phase: prevPhase})
		}
		prev = cur
		prevPhase = top()
	}
	return out
}

// Fingerprint renders the architected part of the recorded series
// (every sample's cycle, label and non-diagnostic values) as text. Fast
// and naive engine runs of the same workload produce identical sampler
// fingerprints.
func (s *Sampler) Fingerprint() string {
	paths := s.reg.Paths()
	var b strings.Builder
	for _, smp := range s.samples {
		fmt.Fprintf(&b, "@%d %s", smp.Cycle, smp.Label)
		if smp.Values != nil {
			for i, p := range paths {
				if k, _ := s.reg.KindOf(p); k == Diagnostic {
					continue
				}
				fmt.Fprintf(&b, " %d", smp.Values[i])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
