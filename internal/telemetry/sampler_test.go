package telemetry

import (
	"testing"

	"repro/internal/sim"
)

// worker models a CE-like component for sampler tests: busy (one op per
// cycle) through cycle until-1, idle afterwards. Idle time accrues
// through SkipCycles when the engine elides ticks, exactly like the real
// CE, so fast and naive engine paths must agree bit for bit.
type worker struct {
	until     sim.Cycle
	Ops       int64
	Idle      int64
	TickCalls int64
}

func (w *worker) Tick(now sim.Cycle) {
	w.TickCalls++
	if now < w.until {
		w.Ops++
		return
	}
	w.Idle++
}

func (w *worker) NextEvent(now sim.Cycle) sim.Cycle {
	if now < w.until {
		return now
	}
	return sim.Never
}

func (w *worker) SkipCycles(from, to sim.Cycle) { w.Idle += int64(to - from) }

// rig is one engine+worker+sampler assembly.
func rig(naive bool, busy, every sim.Cycle) (*sim.Engine, *worker, *Sampler) {
	eng := sim.New()
	eng.SetQuiescence(!naive)
	w := &worker{until: busy}
	eng.Register("worker", w)
	reg := NewRegistry()
	reg.Counter("cluster0/ce0/ops", &w.Ops)
	reg.Counter("cluster0/ce0/idle_cycles", &w.Idle)
	s := NewSampler(reg, every)
	s.Attach(eng)
	return eng, w, s
}

func TestNextSampleMath(t *testing.T) {
	s := NewSampler(NewRegistry(), 10)
	cases := []struct{ now, want sim.Cycle }{
		{-5, 0}, {0, 0}, {1, 10}, {9, 10}, {10, 10}, {11, 20}, {100, 100},
	}
	for _, c := range cases {
		if got := s.NextSample(c.now); got != c.want {
			t.Fatalf("NextSample(%d) = %d, want %d", c.now, got, c.want)
		}
	}
	off := NewSampler(NewRegistry(), 0)
	if got := off.NextSample(5); got != sim.Never {
		t.Fatalf("NextSample with periodic sampling off = %d, want Never", got)
	}
}

func TestPeriodicSamplesLandOnBoundaries(t *testing.T) {
	for _, naive := range []bool{false, true} {
		eng, _, s := rig(naive, 20, 10)
		eng.Run(95)
		s.Final()
		var cycles []sim.Cycle
		for _, smp := range s.Samples() {
			cycles = append(cycles, smp.Cycle)
		}
		want := []sim.Cycle{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95}
		if len(cycles) != len(want) {
			t.Fatalf("naive=%v: sampled at %v, want %v", naive, cycles, want)
		}
		for i := range want {
			if cycles[i] != want[i] {
				t.Fatalf("naive=%v: sample %d at cycle %d, want %d", naive, i, cycles[i], want[i])
			}
		}
		// A sample observes the state as the cycle begins: at cycle 10 the
		// worker has executed cycles 0..9, so ops = 10.
		if got := s.Samples()[1].Values[0]; got != 10 {
			t.Fatalf("naive=%v: ops at cycle-10 sample = %d, want 10", naive, got)
		}
	}
}

// TestSamplingDoesNotWake is the §4.1 contract: landing on a sample
// boundary inside a fast-forwarded quiet span must not tick the idle
// component.
func TestSamplingDoesNotWake(t *testing.T) {
	eng, w, s := rig(false, 20, 10)
	eng.Run(100)
	s.Final()
	if w.TickCalls != 20 {
		t.Fatalf("idle worker ticked %d times under sampling, want 20 (busy cycles only)", w.TickCalls)
	}
	// The samples in the quiet span still exist and carry settled counters.
	last := s.Samples()[len(s.Samples())-1]
	if last.Cycle != 100 || last.Values[0] != 20 || last.Values[1] != 80 {
		t.Fatalf("final sample = @%d ops=%d idle=%d, want @100 ops=20 idle=80",
			last.Cycle, last.Values[0], last.Values[1])
	}
}

func TestSamplerFingerprintEngineEquivalence(t *testing.T) {
	engF, _, sF := rig(false, 37, 10)
	engN, _, sN := rig(true, 37, 10)
	engF.Run(120)
	engN.Run(120)
	sF.Final()
	sN.Final()
	if sF.Fingerprint() != sN.Fingerprint() {
		t.Fatalf("sampler series diverged between engine paths:\nfast:\n%s\nnaive:\n%s",
			sF.Fingerprint(), sN.Fingerprint())
	}
	if sF.Registry().Fingerprint() != sN.Registry().Fingerprint() {
		t.Fatal("final registry fingerprints diverged between engine paths")
	}
}

func TestPhaseMarks(t *testing.T) {
	eng, _, s := rig(false, 20, 0) // periodic sampling off
	// Idle engine: a phase mark takes a full settled snapshot.
	s.Phase("setup:end")
	eng.Run(10)
	// Mid-cycle: a component callback marks a phase; the sampler must
	// record label and cycle only (nil Values), because mid-tick counter
	// state differs between engine paths.
	eng.Register("marker", sim.ComponentFunc(func(now sim.Cycle) {
		if now == 15 {
			s.Phase("barrier:start")
		}
	}))
	eng.Run(10)
	s.Final()

	smps := s.Samples()
	if len(smps) != 3 {
		t.Fatalf("got %d samples, want 3 (two marks + Final): %+v", len(smps), smps)
	}
	if smps[0].Label != "setup:end" || smps[0].Values == nil {
		t.Fatalf("idle-engine mark = %+v, want full snapshot", smps[0])
	}
	if smps[1].Label != "barrier:start" || smps[1].Cycle != 15 || smps[1].Values != nil {
		t.Fatalf("mid-cycle mark = %+v, want label-only at cycle 15", smps[1])
	}
	if smps[2].Cycle != 20 || smps[2].Values == nil {
		t.Fatalf("Final = %+v, want full snapshot at cycle 20", smps[2])
	}
}

func TestPhaseObserverLabels(t *testing.T) {
	_, _, s := rig(false, 5, 0)
	s.PhaseStart("xdoall")
	s.PhaseEnd("xdoall")
	smps := s.Samples()
	if smps[0].Label != "xdoall:start" || smps[1].Label != "xdoall:end" {
		t.Fatalf("observer labels = %q, %q", smps[0].Label, smps[1].Label)
	}
}

func TestIntervalsSkipMarksAndZeroLength(t *testing.T) {
	eng, _, s := rig(false, 40, 10)
	eng.Register("marker", sim.ComponentFunc(func(now sim.Cycle) {
		if now == 15 {
			s.Phase("mid")
		}
	}))
	eng.Run(30)
	s.Final()      // closes the series with a full snapshot at cycle 30
	s.Phase("end") // second snapshot at the same cycle: zero-length interval
	ivs := s.Intervals()
	want := []struct{ from, to sim.Cycle }{{0, 10}, {10, 20}, {20, 30}}
	if len(ivs) != len(want) {
		t.Fatalf("got %d intervals, want %d", len(ivs), len(want))
	}
	for i, w := range want {
		iv := ivs[i]
		if iv.From != w.from || iv.To != w.to {
			t.Fatalf("interval %d = [%d,%d), want [%d,%d)", i, iv.From, iv.To, w.from, w.to)
		}
		if iv.Cycles() != 10 {
			t.Fatalf("interval %d Cycles = %d", i, iv.Cycles())
		}
		if iv.Delta[0] != 10 { // worker busy the whole measured span
			t.Fatalf("interval %d ops delta = %d, want 10", i, iv.Delta[0])
		}
	}
}

func TestSampleDepthLimit(t *testing.T) {
	eng, _, s := rig(false, 100, 1)
	s.SetMaxSamples(5)
	eng.Run(50)
	if len(s.Samples()) != 5 {
		t.Fatalf("depth-limited sampler kept %d samples, want 5", len(s.Samples()))
	}
	if s.Dropped != 45 {
		t.Fatalf("Dropped = %d, want 45", s.Dropped)
	}
}

// TestIntervalPhaseStamping: each interval carries the innermost phase
// active at its From edge. A mark landing mid-interval changes only the
// intervals that follow, and nested phases attribute to the inner name
// until it ends.
func TestIntervalPhaseStamping(t *testing.T) {
	eng, _, s := rig(false, 100, 10)
	eng.Register("marker", sim.ComponentFunc(func(now sim.Cycle) {
		switch now {
		case 15:
			s.PhaseStart("outer")
		case 35:
			s.PhaseStart("inner")
		case 55:
			s.PhaseEnd("inner")
		case 75:
			s.PhaseEnd("outer")
		}
	}))
	eng.Run(100)
	s.Final()
	ivs := s.Intervals()
	want := []string{"", "", "outer", "outer", "inner", "inner", "outer", "outer", "", ""}
	if len(ivs) != len(want) {
		t.Fatalf("got %d intervals, want %d", len(ivs), len(want))
	}
	for i, w := range want {
		if ivs[i].Phase != w {
			t.Fatalf("interval %d [%d,%d) phase = %q, want %q",
				i, ivs[i].From, ivs[i].To, ivs[i].Phase, w)
		}
	}
}
