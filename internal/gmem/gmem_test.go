package gmem

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/sim"
)

// rig is a miniature Cedar memory path: forward network, global memory,
// reverse network, with test sources attached to reverse output ports.
type rig struct {
	eng  *sim.Engine
	fwd  *network.Network
	rev  *network.Network
	g    *Global
	got  [][]*network.Packet // per reverse port, delivered replies
	gotC []sim.Cycle         // delivery cycle of last reply per port
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.New()
	fwd := network.MustNew("forward", 64, 8, 0)
	rev := network.MustNew("reverse", 64, 8, 0)
	g, err := New(cfg, rev)
	if err != nil {
		t.Fatalf("gmem.New: %v", err)
	}
	r := &rig{eng: eng, fwd: fwd, rev: rev, g: g,
		got: make([][]*network.Packet, 64), gotC: make([]sim.Cycle, 64)}
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
	}
	for p := 0; p < 64; p++ {
		port := p
		rev.SetSink(port, network.SinkFunc(func(pk *network.Packet) bool {
			r.got[port] = append(r.got[port], pk)
			r.gotC[port] = eng.Now()
			return true
		}))
	}
	// Registration order mirrors the machine: forward net, memory
	// modules, reverse net.
	eng.Register("fwd", fwd)
	for m := 0; m < g.Modules(); m++ {
		eng.Register("mod", g.Module(m))
	}
	eng.Register("rev", rev)
	return r
}

func smallCfg() Config {
	return Config{Words: 4096, Modules: 32, ServiceCycles: 2, QueueWords: 4}
}

func TestDefaultConfig(t *testing.T) {
	d := Default()
	if d.Words != 8<<20 {
		t.Fatalf("default Words = %d, want 8M (64 MB)", d.Words)
	}
	if d.Modules != 32 || d.ServiceCycles != 2 {
		t.Fatalf("default modules/service = %d/%d", d.Modules, d.ServiceCycles)
	}
}

func TestNewValidation(t *testing.T) {
	rev := network.MustNew("r", 64, 8, 0)
	if _, err := New(Config{Words: 0, Modules: 4}, rev); err == nil {
		t.Fatal("accepted zero words")
	}
	if _, err := New(Config{Words: 16, Modules: 0}, rev); err == nil {
		t.Fatal("accepted zero modules")
	}
}

func TestInterleaving(t *testing.T) {
	r := newRig(t, smallCfg())
	if err := quick.Check(func(aRaw uint16) bool {
		a := uint64(aRaw) % 4096
		return r.g.ModuleOf(a) == int(a%32)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypedAccessors(t *testing.T) {
	r := newRig(t, smallCfg())
	r.g.StoreFloat(7, 3.25)
	if got := r.g.LoadFloat(7); got != 3.25 {
		t.Fatalf("LoadFloat = %g, want 3.25", got)
	}
	r.g.StoreInt(8, -42)
	if got := r.g.LoadInt(8); got != -42 {
		t.Fatalf("LoadInt = %d, want -42", got)
	}
	if r.g.Words() != 4096 || r.g.Modules() != 32 {
		t.Fatalf("size accessors wrong: %d words, %d modules", r.g.Words(), r.g.Modules())
	}
	if r.g.Config().Modules != 32 {
		t.Fatal("Config() not preserved")
	}
}

// TestReadRoundTripLatency pins the unloaded global-memory latency to the
// paper's 8 cycles (3 forward transit + 2 service + 3 reverse transit).
func TestReadRoundTripLatency(t *testing.T) {
	r := newRig(t, smallCfg())
	r.g.StoreFloat(5, 1.5)
	src := 3
	p := &network.Packet{Dst: r.g.ModuleOf(5), Src: src, Words: 1, Kind: network.Read, Addr: 5, Tag: 77}
	issue := r.eng.Now()
	if !r.fwd.Offer(issue, src, p) {
		t.Fatal("injection refused")
	}
	if _, err := r.eng.RunUntil(func() bool { return len(r.got[src]) == 1 }, 100); err != nil {
		t.Fatal(err)
	}
	reply := r.got[src][0]
	if reply.Kind != network.Reply || reply.Tag != 77 {
		t.Fatalf("bad reply: %+v", reply)
	}
	if v := reply.Value; v != r.g.LoadWord(5) {
		t.Fatalf("reply value %d != memory %d", v, r.g.LoadWord(5))
	}
	if lat := r.gotC[src] - issue; lat != 8 {
		t.Fatalf("unloaded round trip = %d cycles, want 8 (paper's minimal latency)", lat)
	}
}

func TestWriteIsPosted(t *testing.T) {
	r := newRig(t, smallCfg())
	p := &network.Packet{Dst: r.g.ModuleOf(33), Src: 2, Words: 2, Kind: network.Write, Addr: 33, Value: 999}
	if !r.fwd.Offer(r.eng.Now(), 2, p) {
		t.Fatal("injection refused")
	}
	r.eng.Run(40)
	if got := r.g.LoadWord(33); got != 999 {
		t.Fatalf("memory word = %d after posted write, want 999", got)
	}
	for port := range r.got {
		if len(r.got[port]) != 0 {
			t.Fatalf("posted write generated a reply at port %d", port)
		}
	}
	if r.g.Module(r.g.ModuleOf(33)).Writes != 1 {
		t.Fatal("write not counted")
	}
}

// TestFetchAndAddLinearizable: concurrent fetch-and-adds to one word must
// return distinct prior values and leave the sum — the property Cedar's
// loop self-scheduling depends on.
func TestFetchAndAddLinearizable(t *testing.T) {
	r := newRig(t, smallCfg())
	const n = 24
	addr := uint64(9)
	mod := r.g.ModuleOf(addr)
	for src := 0; src < n; src++ {
		p := &network.Packet{Dst: mod, Src: src, Words: 2, Kind: network.Sync,
			Addr: addr, Sync: network.FetchAndAdd(1)}
		for !r.fwd.Offer(r.eng.Now(), src, p) {
			r.eng.Step()
		}
	}
	done := func() bool {
		tot := 0
		for src := 0; src < n; src++ {
			tot += len(r.got[src])
		}
		return tot == n
	}
	if _, err := r.eng.RunUntil(done, 5000); err != nil {
		t.Fatal(err)
	}
	if got := r.g.LoadInt(addr); got != n {
		t.Fatalf("counter = %d after %d fetch-and-adds, want %d", got, n, n)
	}
	var olds []int
	for src := 0; src < n; src++ {
		for _, pk := range r.got[src] {
			if !pk.OK {
				t.Fatal("unconditional fetch-and-add reported failure")
			}
			olds = append(olds, int(int64(pk.Value)))
		}
	}
	sort.Ints(olds)
	for i, v := range olds {
		if v != i {
			t.Fatalf("prior values %v are not a permutation of 0..%d", olds, n-1)
		}
	}
}

// TestTestAndSetMutualExclusion: of N simultaneous Test-And-Sets exactly
// one succeeds.
func TestTestAndSetMutualExclusion(t *testing.T) {
	r := newRig(t, smallCfg())
	const n = 16
	addr := uint64(40)
	mod := r.g.ModuleOf(addr)
	for src := 0; src < n; src++ {
		p := &network.Packet{Dst: mod, Src: src, Words: 2, Kind: network.Sync,
			Addr: addr, Sync: network.TestAndSet()}
		for !r.fwd.Offer(r.eng.Now(), src, p) {
			r.eng.Step()
		}
	}
	done := func() bool {
		tot := 0
		for src := 0; src < n; src++ {
			tot += len(r.got[src])
		}
		return tot == n
	}
	if _, err := r.eng.RunUntil(done, 5000); err != nil {
		t.Fatal(err)
	}
	winners := 0
	for src := 0; src < n; src++ {
		for _, pk := range r.got[src] {
			if pk.OK {
				winners++
			}
		}
	}
	if winners != 1 {
		t.Fatalf("%d Test-And-Set winners, want exactly 1", winners)
	}
	if r.g.LoadInt(addr) != 1 {
		t.Fatalf("lock word = %d, want 1", r.g.LoadInt(addr))
	}
}

// TestModuleThroughput: a single module services one request per
// ServiceCycles; requests spread across modules proceed in parallel. This
// is the mechanism behind the paper's contention results (Table 2).
func TestModuleThroughput(t *testing.T) {
	// Same module: 8 reads to addresses that all map to module 0.
	r := newRig(t, smallCfg())
	issue := r.eng.Now()
	for i := 0; i < 8; i++ {
		p := &network.Packet{Dst: 0, Src: 0, Words: 1, Kind: network.Read, Addr: uint64(i * 32), Tag: uint64(i)}
		for !r.fwd.Offer(r.eng.Now(), 0, p) {
			r.eng.Step()
		}
	}
	if _, err := r.eng.RunUntil(func() bool { return len(r.got[0]) == 8 }, 1000); err != nil {
		t.Fatal(err)
	}
	same := r.gotC[0] - issue

	// Different modules from different sources: near-parallel.
	r2 := newRig(t, smallCfg())
	issue2 := r2.eng.Now()
	for i := 0; i < 8; i++ {
		p := &network.Packet{Dst: i, Src: i, Words: 1, Kind: network.Read, Addr: uint64(i), Tag: uint64(i)}
		if !r2.fwd.Offer(r2.eng.Now(), i, p) {
			t.Fatal("injection refused")
		}
	}
	done := func() bool {
		for i := 0; i < 8; i++ {
			if len(r2.got[i]) != 1 {
				return false
			}
		}
		return true
	}
	if _, err := r2.eng.RunUntil(done, 1000); err != nil {
		t.Fatal(err)
	}
	var spread sim.Cycle
	for i := 0; i < 8; i++ {
		if r2.gotC[i]-issue2 > spread {
			spread = r2.gotC[i] - issue2
		}
	}
	// Serialized: >= 8 requests x 2 cycles + pipeline. Parallel: ~8.
	if same < spread+8 {
		t.Fatalf("module conflict (%d cycles) not clearly slower than spread access (%d cycles)", same, spread)
	}
	if m := r.g.Module(0); m.Served != 8 || m.Reads != 8 {
		t.Fatalf("module 0 counters: served=%d reads=%d", m.Served, m.Reads)
	}
}

func TestModuleQueueBackpressure(t *testing.T) {
	r := newRig(t, smallCfg())
	m := r.g.Module(0)
	// Fill: module accepts QueueWords=4 words beyond the one in service.
	accepted := 0
	for i := 0; i < 10; i++ {
		p := &network.Packet{Dst: 0, Src: 0, Words: 1, Kind: network.Read, Addr: 0}
		if m.Offer(p) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("module accepted %d one-word requests with a 4-word queue, want 4", accepted)
	}
	if m.QueueLen() != 4 {
		t.Fatalf("QueueLen = %d, want 4", m.QueueLen())
	}
}

func TestWrongModulePanics(t *testing.T) {
	r := newRig(t, smallCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("module accepted a misrouted address")
		}
	}()
	r.g.Module(0).Offer(&network.Packet{Dst: 0, Src: 0, Words: 1, Kind: network.Read, Addr: 1})
}

func TestConditionalSyncFailureLeavesMemory(t *testing.T) {
	r := newRig(t, smallCfg())
	addr := uint64(64) // module 0
	r.g.StoreInt(addr, 5)
	p := &network.Packet{Dst: 0, Src: 1, Words: 2, Kind: network.Sync, Addr: addr,
		Sync: network.SyncSpec{Test: network.TestLT, TestOperand: 3, Op: network.OpAdd, Operand: 100}}
	if !r.fwd.Offer(r.eng.Now(), 1, p) {
		t.Fatal("injection refused")
	}
	if _, err := r.eng.RunUntil(func() bool { return len(r.got[1]) == 1 }, 100); err != nil {
		t.Fatal(err)
	}
	reply := r.got[1][0]
	if reply.OK {
		t.Fatal("test 5 < 3 reported success")
	}
	if int64(reply.Value) != 5 {
		t.Fatalf("failed sync reply value = %d, want prior value 5", int64(reply.Value))
	}
	if r.g.LoadInt(addr) != 5 {
		t.Fatalf("failed sync modified memory: %d", r.g.LoadInt(addr))
	}
}

// faultTrip measures the cycle at which one direct read against module 0
// is answered, after applying prep to the module.
func faultTrip(t *testing.T, prep func(m *Module)) sim.Cycle {
	t.Helper()
	r := newRig(t, smallCfg())
	m := r.g.Module(0)
	if prep != nil {
		prep(m)
	}
	src := 3
	p := &network.Packet{Dst: 0, Src: src, Words: 1, Kind: network.Read, Addr: 0, Tag: 1}
	if !m.Offer(p) {
		t.Fatal("module refused request")
	}
	at, err := r.eng.RunUntil(func() bool { return len(r.got[src]) == 1 }, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func TestFaultBusyWindowDelaysService(t *testing.T) {
	base := faultTrip(t, nil)
	got := faultTrip(t, func(m *Module) { m.FaultBusy(0, 10) })
	if got != base+10 {
		t.Fatalf("busy-windowed reply at %d, want base %d + 10", got, base)
	}
	// The window never shrinks: a shorter overlapping window is absorbed.
	got = faultTrip(t, func(m *Module) { m.FaultBusy(0, 10); m.FaultBusy(0, 4) })
	if got != base+10 {
		t.Fatalf("overlapping busy windows reply at %d, want base %d + 10", got, base)
	}
}

func TestFaultDegradeServesAtPenalty(t *testing.T) {
	base := faultTrip(t, nil)
	var mod *Module
	got := faultTrip(t, func(m *Module) { mod = m; m.FaultDegrade(0, 100, 3) })
	if got != base+3 {
		t.Fatalf("degraded reply at %d, want base %d + 3", got, base)
	}
	if mod.DegradedServes != 1 || mod.DegradeFaults != 1 {
		t.Fatalf("DegradedServes = %d, DegradeFaults = %d, want 1, 1", mod.DegradedServes, mod.DegradeFaults)
	}
	// Outside the window the module serves at full speed again.
	got = faultTrip(t, func(m *Module) { mod = m; m.FaultDegrade(0, 0, 3) })
	if got != base || mod.DegradedServes != 0 {
		t.Fatalf("post-window reply at %d (DegradedServes %d), want base %d at full speed", got, mod.DegradedServes, base)
	}
}

func TestFaultBusyModuleStaysFastForwardable(t *testing.T) {
	// A busy window on a queued module must be reported to the engine so
	// the wake-cached path fast-forwards to the window's end rather than
	// polling (or worse, parking) — NextEvent returns busyUntil exactly.
	r := newRig(t, smallCfg())
	m := r.g.Module(0)
	m.FaultBusy(0, 50)
	if !m.Offer(&network.Packet{Dst: 0, Src: 1, Words: 1, Kind: network.Read, Addr: 0, Tag: 1}) {
		t.Fatal("module refused request")
	}
	if ne := m.NextEvent(0); ne != 50 {
		t.Fatalf("NextEvent = %d with queued request under busy window, want 50", ne)
	}
}
