package gmem

import "repro/internal/telemetry"

// RegisterMetrics publishes the module's counters under prefix (for
// example "gmem/mod7").
func (m *Module) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/served", &m.Served)
	reg.Counter(prefix+"/sync_ops", &m.SyncOps)
	reg.Counter(prefix+"/reads", &m.Reads)
	reg.Counter(prefix+"/writes", &m.Writes)
	reg.Counter(prefix+"/busy_cycles", &m.BusyCycles)
	reg.Counter(prefix+"/busy_faults", &m.BusyFaults)
	reg.Counter(prefix+"/degrade_faults", &m.DegradeFaults)
	reg.Counter(prefix+"/degraded_serves", &m.DegradedServes)
	reg.Gauge(prefix+"/queue_len", func() int64 { return int64(m.QueueLen()) })
}
