// Package gmem models Cedar's globally shared memory: 64 MB of
// double-word (8-byte) interleaved and aligned storage, organized as
// independent memory modules, each attached to one output port of the
// forward network and one input port of the reverse network.
//
// Each module contains a synchronization processor that executes Cedar's
// indivisible synchronization instructions — Test-And-Set and the
// Test-And-Operate family of [ZhYe87] — at the memory, so that
// synchronization requires a single network round trip rather than a lock
// cycle, which a multistage network cannot provide.
//
// The paper's peak global bandwidth of 768 MB/s (24 MB/s per processor)
// arises here from the module count and per-request service time: with 32
// modules each accepting a request every 2 cycles, the aggregate is
// 16 words/cycle = 16 x 8 B / 170 ns = 753 MB/s.
package gmem

import (
	"fmt"
	"math"

	"repro/internal/network"
	"repro/internal/sim"
)

// Config describes a global memory system.
type Config struct {
	// Words is the total capacity in 64-bit words. The Cedar default is
	// 64 MB = 8 Mwords.
	Words int
	// Modules is the number of interleaved memory modules (default 32).
	// Addresses are interleaved across modules by double word: word a
	// lives in module a mod Modules.
	Modules int
	// ServiceCycles is the time a module is occupied by one request
	// (default 2, yielding the paper's aggregate bandwidth).
	ServiceCycles int
	// QueueWords is the request queue capacity at each module, in words
	// (default 4).
	QueueWords int
}

// Default returns the as-built Cedar global memory configuration.
func Default() Config {
	return Config{
		Words:         64 << 20 / 8,
		Modules:       32,
		ServiceCycles: 2,
		QueueWords:    4,
	}
}

// Global is the shared memory system: the backing store plus the modules.
type Global struct {
	cfg   Config
	words []uint64
	mods  []*Module
}

// New builds a global memory. Replies are injected into rev at the input
// port equal to the module index; requests arrive from fwd output ports
// 0..Modules-1 (the caller attaches the modules as sinks via Attach).
func New(cfg Config, rev *network.Network) (*Global, error) {
	if cfg.Modules <= 0 || cfg.Words <= 0 {
		return nil, fmt.Errorf("gmem: non-positive size (%d words, %d modules)", cfg.Words, cfg.Modules)
	}
	if cfg.ServiceCycles <= 0 {
		cfg.ServiceCycles = 2
	}
	if cfg.QueueWords <= 0 {
		cfg.QueueWords = 4
	}
	g := &Global{cfg: cfg, words: make([]uint64, cfg.Words)}
	g.mods = make([]*Module, cfg.Modules)
	for m := range g.mods {
		g.mods[m] = &Module{
			g:          g,
			index:      m,
			rev:        rev,
			queueCap:   cfg.QueueWords,
			service:    sim.Cycle(cfg.ServiceCycles),
			nextFreeAt: 0,
		}
	}
	return g, nil
}

// Config returns the configuration the memory was built with.
func (g *Global) Config() Config { return g.cfg }

// Module returns module m, for attaching to the forward network and for
// registering with the engine.
func (g *Global) Module(m int) *Module { return g.mods[m] }

// Modules returns the module count.
func (g *Global) Modules() int { return len(g.mods) }

// Words returns the capacity in 64-bit words.
func (g *Global) Words() int { return len(g.words) }

// ModuleOf returns the module index holding word address a.
func (g *Global) ModuleOf(a uint64) int { return int(a % uint64(len(g.mods))) }

// LoadWord returns the raw word at address a. This is the functional
// (zero-time) view used by workload code; timing flows through packets.
func (g *Global) LoadWord(a uint64) uint64 { return g.words[a] }

// StoreWord sets the raw word at address a.
func (g *Global) StoreWord(a uint64, v uint64) { g.words[a] = v }

// LoadFloat returns the word at a interpreted as a float64.
func (g *Global) LoadFloat(a uint64) float64 { return math.Float64frombits(g.words[a]) }

// StoreFloat stores a float64 at a.
func (g *Global) StoreFloat(a uint64, v float64) { g.words[a] = math.Float64bits(v) }

// LoadInt returns the word at a interpreted as an int64 (the view the
// synchronization processor uses).
func (g *Global) LoadInt(a uint64) int64 { return int64(g.words[a]) }

// StoreInt stores an int64 at a.
func (g *Global) StoreInt(a uint64, v int64) { g.words[a] = uint64(v) }

// Module is one interleaved memory bank with its synchronization
// processor. It is a network.Sink for the forward network and a
// sim.Component.
type Module struct {
	g     *Global
	index int
	rev   *network.Network

	queue      []*network.Packet
	queueWords int
	queueCap   int

	service    sim.Cycle
	nextFreeAt sim.Cycle

	// Fault windows. busyUntil models an ECC-retry/busy glitch: no new
	// request may enter service before it (the request in service is
	// unaffected — its data was already latched). degradedUntil models a
	// module serving through a correctable fault: every request entering
	// service before it pays degradePenalty extra cycles instead of the
	// module vanishing.
	busyUntil      sim.Cycle
	degradedUntil  sim.Cycle
	degradePenalty sim.Cycle

	// inService is the request currently in the service pipeline; its
	// reply becomes available at nextFreeAt.
	inService *network.Packet

	// pending is a completed reply the reverse network has not yet
	// accepted (backpressure).
	pending *network.Packet

	// OnServe, if non-nil, observes each request as it is serviced.
	OnServe func(now sim.Cycle, p *network.Packet)

	waker sim.Waker

	// Counters.
	Served         int64
	SyncOps        int64
	Reads          int64
	Writes         int64
	BusyCycles     int64
	BusyFaults     int64 // ECC-retry windows applied
	DegradeFaults  int64 // degradation windows applied
	DegradedServes int64 // requests served at the degraded latency
}

// FaultBusy applies an ECC-retry window: the module accepts no new
// request into service before now+window. Windows extend, never shrink.
func (m *Module) FaultBusy(now, window sim.Cycle) {
	if now+window > m.busyUntil {
		m.busyUntil = now + window
	}
	m.BusyFaults++
}

// FaultDegrade marks the module degraded until now+window: requests
// entering service in the window take penalty extra cycles. The module
// keeps serving — graceful degradation instead of a vanished bank.
func (m *Module) FaultDegrade(now, window, penalty sim.Cycle) {
	if now+window > m.degradedUntil {
		m.degradedUntil = now + window
	}
	m.degradePenalty = penalty
	m.DegradeFaults++
}

// Offer implements network.Sink: the forward network delivers a request.
func (m *Module) Offer(p *network.Packet) bool {
	if len(m.queue) > 0 && m.queueWords+p.Words > m.queueCap {
		return false
	}
	if m.g.ModuleOf(p.Addr) != m.index {
		panic(fmt.Sprintf("gmem: address %d routed to module %d, belongs to %d",
			p.Addr, m.index, m.g.ModuleOf(p.Addr)))
	}
	m.queue = append(m.queue, p)
	m.queueWords += p.Words
	m.wake()
	return true
}

// AttachWaker implements sim.WakeSink: the engine hands the module its
// own Handle at registration. An empty module reports sim.Never, so the
// only stimulus that must wake it is a request accepted by Offer (a
// rejected Offer implies a non-empty queue — not dormant).
func (m *Module) AttachWaker(w sim.Waker) { m.waker = w }

func (m *Module) wake() {
	if m.waker != nil {
		m.waker.Wake()
	}
}

// QueueLen reports the number of requests waiting at the module.
func (m *Module) QueueLen() int { return len(m.queue) }

// NextEvent implements sim.IdleComponent. While a request is in service
// nothing can happen before nextFreeAt — queued requests cannot enter the
// single service pipeline early, and new arrivals are admitted by Offer
// without a tick — so that expiry is reported for fast-forwarding. A
// reply blocked by reverse-network backpressure retries every cycle. An
// empty module is woken by the forward network, which ticks earlier in
// the machine order.
func (m *Module) NextEvent(now sim.Cycle) sim.Cycle {
	if m.pending != nil {
		return now
	}
	if m.inService != nil {
		if m.nextFreeAt > now {
			return m.nextFreeAt
		}
		return now
	}
	if len(m.queue) > 0 {
		if m.busyUntil > now {
			// An ECC-retry window holds the queued request out of service;
			// the injector ticks before the module each cycle, so the
			// window can only extend before this slot, never after.
			return m.busyUntil
		}
		return now
	}
	return sim.Never
}

// Tick advances the module. The service pipeline takes ServiceCycles per
// request: a request accepted into service at cycle t produces its reply
// at t + ServiceCycles (memory reads and the synchronization processor's
// read-modify-write both happen when the reply is produced, so sync
// operations are serialized in service-completion order).
func (m *Module) Tick(now sim.Cycle) {
	// Finish the request in service.
	if m.inService != nil && now >= m.nextFreeAt {
		reply := m.complete(m.inService)
		m.inService = nil
		if reply != nil {
			if !m.rev.Offer(now, m.index, reply) {
				m.pending = reply
			}
		}
	}
	// Retry a reply blocked by reverse-network backpressure; the service
	// pipeline stalls behind it.
	if m.pending != nil {
		if !m.rev.Offer(now, m.index, m.pending) {
			return
		}
		m.pending = nil
	}
	// Begin servicing the next request; an ECC-retry window delays entry
	// into service (checked here as well as in NextEvent so the naive
	// path, which ticks every cycle, makes the identical decision).
	if m.inService != nil || len(m.queue) == 0 || now < m.busyUntil {
		return
	}
	p := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	m.queueWords -= p.Words

	svc := m.service
	if now < m.degradedUntil {
		svc += m.degradePenalty
		m.DegradedServes++
	}
	m.inService = p
	m.nextFreeAt = now + svc
	m.BusyCycles += int64(svc)
	m.Served++
	if m.OnServe != nil {
		m.OnServe(now, p)
	}
}

// complete performs the functional effect of a request and builds its
// reply (nil for posted writes).
func (m *Module) complete(p *network.Packet) *network.Packet {
	switch p.Kind {
	case network.Read:
		m.Reads++
		return &network.Packet{
			Dst:   p.Src,
			Src:   m.index,
			Words: 1,
			Kind:  network.Reply,
			Addr:  p.Addr,
			Value: m.g.LoadWord(p.Addr),
			Tag:   p.Tag,
			// Preserve the request's issue stamp for latency monitoring;
			// BornSet keeps the reverse network from re-stamping replies
			// to requests injected at cycle 0.
			Born:    p.Born,
			BornSet: p.BornSet,
		}
	case network.Write:
		m.Writes++
		if !p.Phantom {
			m.g.StoreWord(p.Addr, p.Value)
		}
		return nil // Writes are posted: no reply (weak ordering).
	case network.Sync:
		m.SyncOps++
		old := m.g.LoadInt(p.Addr)
		ok := p.Sync.Test.Eval(old, p.Sync.TestOperand)
		if ok {
			m.g.StoreInt(p.Addr, p.Sync.Op.Apply(old, p.Sync.Operand))
		}
		return &network.Packet{
			Dst:     p.Src,
			Src:     m.index,
			Words:   1,
			Kind:    network.Reply,
			Addr:    p.Addr,
			Value:   uint64(old),
			OK:      ok,
			Tag:     p.Tag,
			Born:    p.Born,
			BornSet: p.BornSet,
		}
	default:
		panic(fmt.Sprintf("gmem: module received %v packet", p.Kind))
	}
}
