package xylem

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// GangTarget is a CE as the rescheduler sees it: dispatchable when idle,
// and accepting a program. ce.CE satisfies it directly.
type GangTarget interface {
	Idle() bool
	SetProgram(p isa.Program)
}

// surrenderedTask is a program given up by a check-stopped CE, waiting to
// be redispatched onto a healthy CE in the same cluster.
type surrenderedTask struct {
	cluster int
	prog    isa.Program
	readyAt sim.Cycle
}

// Rescheduler is Xylem's recovery half of gang scheduling: when a
// check-stopped CE surrenders its program, the rescheduler redispatches
// it onto the first idle CE of the same cluster after a modeled
// kernel-rescheduling latency. Gang semantics are preserved — a cluster
// task never migrates across clusters, it only moves between CEs of the
// cluster it was gang-scheduled onto.
//
// The rescheduler is a sim.IdleComponent: it sleeps until the earliest
// pending task's ready time, then polls each cycle while a ready task
// waits for an idle target. If no CE in the cluster ever frees up (for
// example, its peers spin at a barrier the surrendered program was meant
// to reach), the repaired original CE is the fallback target — spinners
// are never Idle, so repair is what guarantees eventual redispatch.
type Rescheduler struct {
	latency sim.Cycle
	groups  [][]GangTarget
	pending []surrenderedTask
	waker   sim.Waker

	// Counters.
	Redispatched int64
}

// NewRescheduler builds a rescheduler with the given redispatch latency
// (the modeled cost of the kernel noticing the check-stop and requeueing
// the cluster task).
func NewRescheduler(latency sim.Cycle) *Rescheduler {
	if latency < 0 {
		panic(fmt.Sprintf("xylem: negative reschedule latency %d", latency))
	}
	return &Rescheduler{latency: latency}
}

// AddGroup registers one cluster's CEs as a gang group and returns the
// cluster index Surrender expects.
func (r *Rescheduler) AddGroup(targets ...GangTarget) int {
	r.groups = append(r.groups, targets)
	return len(r.groups) - 1
}

// Pending reports the number of surrendered tasks not yet redispatched.
func (r *Rescheduler) Pending() int { return len(r.pending) }

// AttachWaker implements sim.WakeSink.
func (r *Rescheduler) AttachWaker(w sim.Waker) { r.waker = w }

// Surrender queues a program given up by a check-stopped CE of the given
// cluster. It is the OnSurrender entry point, so it wakes the component.
func (r *Rescheduler) Surrender(now sim.Cycle, cluster int, p isa.Program) {
	if cluster < 0 || cluster >= len(r.groups) {
		panic(fmt.Sprintf("xylem: surrender from unknown cluster %d", cluster))
	}
	r.pending = append(r.pending, surrenderedTask{cluster: cluster, prog: p, readyAt: now + r.latency})
	if r.waker != nil {
		r.waker.Wake()
	}
}

// NextEvent implements sim.IdleComponent: dormant with nothing pending
// (Surrender wakes it), else the earliest ready time — and once a task is
// ready it polls every cycle for an idle target, because targets become
// idle through their own ticks, not through any event the rescheduler
// could predict.
func (r *Rescheduler) NextEvent(now sim.Cycle) sim.Cycle {
	if len(r.pending) == 0 {
		return sim.Never
	}
	next := r.pending[0].readyAt
	for _, p := range r.pending[1:] {
		if p.readyAt < next {
			next = p.readyAt
		}
	}
	if next < now {
		return now
	}
	return next
}

// Tick redispatches every ready task whose cluster has an idle CE, in
// surrender order. Scanning CEs in fixed index order keeps the choice a
// pure function of architected state, preserving mode equivalence.
func (r *Rescheduler) Tick(now sim.Cycle) {
	kept := r.pending[:0]
	for _, task := range r.pending {
		if task.readyAt > now || !r.dispatch(task) {
			kept = append(kept, task)
		}
	}
	r.pending = kept
}

func (r *Rescheduler) dispatch(task surrenderedTask) bool {
	for _, t := range r.groups[task.cluster] {
		if t.Idle() {
			t.SetProgram(task.prog)
			r.Redispatched++
			return true
		}
	}
	return false
}

// RegisterMetrics publishes the rescheduler's counters under prefix.
func (r *Rescheduler) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/redispatched", &r.Redispatched)
	reg.Gauge(prefix+"/pending", func() int64 { return int64(r.Pending()) })
}
