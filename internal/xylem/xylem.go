// Package xylem models the services of the Xylem operating system that
// the paper's measurements depend on. Xylem links the four separate
// operating systems in the Alliant clusters into the Cedar OS and exports
// virtual memory, scheduling, and file system services.
//
// Three aspects matter to the performance study:
//
//   - Virtual memory with a 4 KB page size. Each cluster keeps its own
//     translations: when a multicluster program touches a page for the
//     first time from an additional cluster, it takes a TLB-miss fault
//     even though a valid PTE already exists in global memory. The
//     analysis of TRFD in Section 4.2 found the multicluster version
//     taking almost four times the page faults of the one-cluster
//     version and spending close to 50% of its time in virtual-memory
//     activity — the behaviour this model reproduces.
//
//   - Cluster (gang) scheduling: a cluster task occupies all CEs of a
//     cluster, matching the concurrency-bus execution model.
//
//   - File-system services, whose cost structure (formatted conversion
//     versus raw transfer) explains the BDNA hand optimization: replacing
//     formatted with unformatted I/O cut that code's time from 111 s to
//     70 s.
package xylem

import (
	"fmt"

	"repro/internal/sim"
)

// PageWords is the 4 KB page size in 64-bit words.
const PageWords = 512

// VMConfig holds the virtual-memory cost parameters.
type VMConfig struct {
	// FirstTouchFault is the cost of a true page fault: allocating the
	// page and building the PTE in global memory (default 2 ms, a
	// Unix-era fault with zeroing).
	FirstTouchFault sim.Cycle
	// TLBMissFault is the cost of the fault taken when a cluster first
	// touches a page whose PTE already exists in global memory
	// (default 500 µs: a kernel trap plus a PTE fetch, no allocation).
	TLBMissFault sim.Cycle
	// ClusterTLBEntries bounds each cluster's resident translations;
	// beyond it, old translations are evicted FIFO (default 4096).
	ClusterTLBEntries int
}

// DefaultVMConfig returns the calibrated Xylem costs.
func DefaultVMConfig() VMConfig {
	return VMConfig{
		FirstTouchFault:   sim.FromMicroseconds(2000),
		TLBMissFault:      sim.FromMicroseconds(500),
		ClusterTLBEntries: 4096,
	}
}

// VM tracks page state across clusters and accumulates fault costs.
type VM struct {
	cfg      VMConfig
	clusters int

	pte map[uint64]bool // pages with a valid PTE in global memory

	tlb     []map[uint64]bool // per-cluster resident translations
	tlbFIFO [][]uint64

	// Counters.
	FirstTouchFaults int64
	TLBMissFaults    int64
	StallCycles      sim.Cycle
}

// NewVM returns a VM for the given cluster count.
func NewVM(cfg VMConfig, clusters int) *VM {
	if clusters <= 0 {
		panic(fmt.Sprintf("xylem: %d clusters", clusters))
	}
	if cfg.ClusterTLBEntries <= 0 {
		cfg.ClusterTLBEntries = DefaultVMConfig().ClusterTLBEntries
	}
	vm := &VM{cfg: cfg, clusters: clusters, pte: map[uint64]bool{}}
	vm.tlb = make([]map[uint64]bool, clusters)
	vm.tlbFIFO = make([][]uint64, clusters)
	for i := range vm.tlb {
		vm.tlb[i] = map[uint64]bool{}
	}
	return vm
}

// PageOf returns the page number of a word address.
func PageOf(addr uint64) uint64 { return addr / PageWords }

// Touch records cluster cl referencing word address addr and returns the
// fault stall, if any, that the reference incurs.
func (vm *VM) Touch(cl int, addr uint64) sim.Cycle {
	page := PageOf(addr)
	if vm.tlb[cl][page] {
		return 0
	}
	var cost sim.Cycle
	if !vm.pte[page] {
		vm.pte[page] = true
		vm.FirstTouchFaults++
		cost = vm.cfg.FirstTouchFault
	} else {
		// Valid PTE exists in global memory, but this cluster has no
		// translation yet: a TLB-miss fault.
		vm.TLBMissFaults++
		cost = vm.cfg.TLBMissFault
	}
	vm.install(cl, page)
	vm.StallCycles += cost
	return cost
}

func (vm *VM) install(cl int, page uint64) {
	if len(vm.tlbFIFO[cl]) >= vm.cfg.ClusterTLBEntries {
		old := vm.tlbFIFO[cl][0]
		vm.tlbFIFO[cl] = vm.tlbFIFO[cl][1:]
		delete(vm.tlb[cl], old)
	}
	vm.tlb[cl][page] = true
	vm.tlbFIFO[cl] = append(vm.tlbFIFO[cl], page)
}

// Resident reports whether cluster cl holds a translation for addr's page.
func (vm *VM) Resident(cl int, addr uint64) bool { return vm.tlb[cl][PageOf(addr)] }

// TotalFaults returns first-touch plus TLB-miss fault counts.
func (vm *VM) TotalFaults() int64 { return vm.FirstTouchFaults + vm.TLBMissFaults }

// SweepCost computes, without mutating state, the fault stall a cluster
// sweep over [base, base+words) would incur, and applies it. It is the
// batch form of Touch used by the workload models: a loop that walks a
// data region touches each page once.
func (vm *VM) SweepCost(cl int, base, words uint64) sim.Cycle {
	var total sim.Cycle
	for p := PageOf(base); p <= PageOf(base+words-1); p++ {
		total += vm.Touch(cl, p*PageWords)
	}
	return total
}

// FSConfig holds the file-system cost model: formatted I/O pays a
// per-word conversion cost on a CE in addition to the raw transfer.
type FSConfig struct {
	// TransferPerWord is the raw I/O cost per 64-bit word
	// (default ~0.6 µs/word ≈ 12 MB/s through the IPs).
	TransferPerWord sim.Cycle
	// FormatPerWord is the additional formatted-conversion cost per word
	// (default ~9 µs/word: text conversion on a 170 ns scalar CE).
	FormatPerWord sim.Cycle
}

// DefaultFSConfig returns the calibrated I/O costs.
func DefaultFSConfig() FSConfig {
	return FSConfig{
		TransferPerWord: sim.FromMicroseconds(0.6),
		FormatPerWord:   sim.FromMicroseconds(9),
	}
}

// FS is the file-system cost model.
type FS struct {
	cfg FSConfig
	// Counters.
	WordsFormatted   int64
	WordsUnformatted int64
}

// NewFS returns a file-system model.
func NewFS(cfg FSConfig) *FS { return &FS{cfg: cfg} }

// FormattedIO returns the cost of reading or writing n words with format
// conversion.
func (f *FS) FormattedIO(n int64) sim.Cycle {
	f.WordsFormatted += n
	return sim.Cycle(n) * (f.cfg.TransferPerWord + f.cfg.FormatPerWord)
}

// UnformattedIO returns the cost of raw binary transfer of n words.
func (f *FS) UnformattedIO(n int64) sim.Cycle {
	f.WordsUnformatted += n
	return sim.Cycle(n) * f.cfg.TransferPerWord
}

// Scheduler provides Xylem's cluster-task view: tasks are gang-scheduled
// onto whole clusters. The simulation engine is single-user (the paper's
// measurements were all collected in single-user mode to avoid the
// non-determinism of multiprogramming), so the scheduler is an
// accounting layer: it tracks which clusters are allocated to a task.
type Scheduler struct {
	clusters  int
	allocated []bool
	// TasksStarted counts gang dispatches.
	TasksStarted int64
}

// NewScheduler returns a scheduler over the given cluster count.
func NewScheduler(clusters int) *Scheduler {
	return &Scheduler{clusters: clusters, allocated: make([]bool, clusters)}
}

// Acquire allocates n clusters to a task, returning their indices, or an
// error if not enough are free.
func (s *Scheduler) Acquire(n int) ([]int, error) {
	var free []int
	for i, a := range s.allocated {
		if !a {
			free = append(free, i)
		}
	}
	if len(free) < n {
		return nil, fmt.Errorf("xylem: %d clusters requested, %d free", n, len(free))
	}
	got := free[:n]
	for _, i := range got {
		s.allocated[i] = true
	}
	s.TasksStarted++
	return got, nil
}

// Release returns clusters to the free pool.
func (s *Scheduler) Release(cls []int) {
	for _, i := range cls {
		if !s.allocated[i] {
			panic(fmt.Sprintf("xylem: release of unallocated cluster %d", i))
		}
		s.allocated[i] = false
	}
}

// Free reports the number of unallocated clusters.
func (s *Scheduler) Free() int {
	n := 0
	for _, a := range s.allocated {
		if !a {
			n++
		}
	}
	return n
}
