package xylem

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// IOCompletion is the completion handle of one I/O transfer: the cycle
// the request was submitted, the cycle the device finished serving it,
// and what moved. The device hands it to the completion callback, so
// wait-time attribution (Done - Submitted) is pure arithmetic on the
// handle — no side-channel state between the submitter, the scheduler
// and telemetry.
type IOCompletion struct {
	Submitted sim.Cycle
	Done      sim.Cycle
	Words     int64
	Formatted bool
}

// Wait returns the submit-to-completion latency.
func (c IOCompletion) Wait() sim.Cycle { return c.Done - c.Submitted }

// IODevice is a sequential I/O server as the scheduler sees it;
// cluster.IP satisfies it. Submit is called outside the device's own
// tick, so the current cycle is passed explicitly and stamps the handle.
type IODevice interface {
	Submit(now sim.Cycle, words int64, formatted bool, onDone func(IOCompletion))
}

// parkedIO is one program blocked on an outstanding transfer.
type parkedIO struct {
	id        int64
	label     string
	words     int64
	formatted bool
	since     sim.Cycle
}

// IOWait is Xylem's blocked-on-I/O table: a program issuing a blocking
// Fortran I/O statement parks here while its transfer is outstanding and
// is redispatched (its resume callback runs) at the completion cycle.
// The table never ticks — completions arrive through the device's own
// callback — so it reports sim.Never and costs the engine nothing; it is
// registered only so a run that times out while programs are parked can
// name them (FaultReason folds into the ErrDeadline diagnostics).
type IOWait struct {
	parked []parkedIO
	nextID int64

	// Parks counts programs blocked; Completions redispatches;
	// WaitCycles the summed submit-to-completion latency.
	// WaitCyclesFormatted is the share of WaitCycles spent on formatted
	// transfers — the split the CPI-stack io_park cross-check uses to
	// tell conversion-bound waits (BDNA's trajectory writes) from raw
	// streaming (MG3D's trace reads).
	Parks               int64
	Completions         int64
	WaitCycles          int64
	WaitCyclesFormatted int64
}

// NewIOWait returns an empty park table.
func NewIOWait() *IOWait { return &IOWait{} }

// Park blocks the issuing program on a transfer of words through dev:
// the request is submitted immediately and resume runs at the completion
// cycle, after the table has attributed the wait. label names the
// program in diagnostics.
func (w *IOWait) Park(now sim.Cycle, dev IODevice, words int64, formatted bool, label string, resume func(IOCompletion)) {
	id := w.nextID
	w.nextID++
	w.parked = append(w.parked, parkedIO{id: id, label: label, words: words, formatted: formatted, since: now})
	w.Parks++
	dev.Submit(now, words, formatted, func(comp IOCompletion) {
		for i := range w.parked {
			if w.parked[i].id == id {
				w.parked = append(w.parked[:i], w.parked[i+1:]...)
				break
			}
		}
		w.Completions++
		w.WaitCycles += int64(comp.Wait())
		if comp.Formatted {
			w.WaitCyclesFormatted += int64(comp.Wait())
		}
		if resume != nil {
			resume(comp)
		}
	})
}

// Parked reports the number of programs currently blocked on I/O.
func (w *IOWait) Parked() int { return len(w.parked) }

// Tick implements sim.Component; the table has no per-cycle behavior.
func (w *IOWait) Tick(sim.Cycle) {}

// NextEvent implements sim.IdleComponent: the table itself never needs a
// tick (completions arrive via device callbacks).
func (w *IOWait) NextEvent(sim.Cycle) sim.Cycle { return sim.Never }

// FaultReason implements sim.FaultReporter: non-empty while programs are
// parked, naming each one — so a RunUntil that dies on its deadline with
// a transfer still outstanding reports who is blocked on what instead of
// timing out silently.
func (w *IOWait) FaultReason() string {
	if len(w.parked) == 0 {
		return ""
	}
	parts := make([]string, len(w.parked))
	for i, p := range w.parked {
		kind := "raw"
		if p.formatted {
			kind = "formatted"
		}
		parts[i] = fmt.Sprintf("%s (%d %s words, parked since cycle %d)", p.label, p.words, kind, p.since)
	}
	return "programs parked on outstanding I/O: " + strings.Join(parts, ", ")
}

// RegisterMetrics publishes the park table's counters under prefix
// (conventionally "xylem/io").
func (w *IOWait) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/parks", &w.Parks)
	reg.Counter(prefix+"/completions", &w.Completions)
	reg.Counter(prefix+"/wait_cycles", &w.WaitCycles)
	reg.Counter(prefix+"/wait_cycles_formatted", &w.WaitCyclesFormatted)
	reg.Gauge(prefix+"/parked", func() int64 { return int64(w.Parked()) })
}
