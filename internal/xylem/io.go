package xylem

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// IOCompletion is the completion handle of one I/O transfer: the cycle
// the request was submitted, the cycle the device finished serving it,
// and what moved. The device hands it to the completion callback, so
// wait-time attribution (Done - Submitted) is pure arithmetic on the
// handle — no side-channel state between the submitter, the scheduler
// and telemetry.
type IOCompletion struct {
	Submitted sim.Cycle
	Done      sim.Cycle
	Words     int64
	Formatted bool
}

// Wait returns the submit-to-completion latency.
func (c IOCompletion) Wait() sim.Cycle { return c.Done - c.Submitted }

// IODevice is a sequential I/O server as the scheduler sees it;
// cluster.IP satisfies it. Submit is called outside the device's own
// tick, so the current cycle is passed explicitly and stamps the handle.
type IODevice interface {
	Submit(now sim.Cycle, words int64, formatted bool, onDone func(IOCompletion))
}

// parkedIO is one program blocked on an outstanding transfer.
type parkedIO struct {
	id        int64
	label     string
	words     int64
	formatted bool
	since     sim.Cycle
}

// ioShard is one cluster's slice of the park table: its parked entries,
// id source and counters are touched only by that cluster's CEs and IP,
// so under the parallel engine each shard stays single-goroutine. The
// trailing pad keeps shards of adjacent clusters off a shared cache
// line.
type ioShard struct {
	parked []parkedIO
	nextID int64

	parks               int64
	completions         int64
	waitCycles          int64
	waitCyclesFormatted int64
	_                   [64]byte
}

// IOWait is Xylem's blocked-on-I/O table: a program issuing a blocking
// Fortran I/O statement parks here while its transfer is outstanding and
// is redispatched (its resume callback runs) at the completion cycle.
// The table never ticks — completions arrive through the device's own
// callback — so it reports sim.Never and costs the engine nothing; it is
// registered only so a run that times out while programs are parked can
// name them (FaultReason folds into the ErrDeadline diagnostics).
//
// The table is sharded per cluster (NewIOWaitSharded): parks and
// completions both run inside the issuing cluster's components, so each
// shard belongs to exactly one of the parallel engine's domains and the
// table needs no locks. The aggregate accessors (Parks, Completions,
// WaitCycles, WaitCyclesFormatted, Parked) sum the shards; sums are
// order-free, so the totals are bit-identical to the unsharded table's.
type IOWait struct {
	shards []ioShard
}

// NewIOWait returns an empty single-shard park table.
func NewIOWait() *IOWait { return NewIOWaitSharded(1) }

// NewIOWaitSharded returns an empty park table with one shard per
// cluster.
func NewIOWaitSharded(n int) *IOWait {
	if n < 1 {
		n = 1
	}
	return &IOWait{shards: make([]ioShard, n)}
}

// Park blocks the issuing program on a transfer of words through dev in
// shard 0; single-cluster convenience for tests and callers predating
// sharding.
func (w *IOWait) Park(now sim.Cycle, dev IODevice, words int64, formatted bool, label string, resume func(IOCompletion)) {
	w.ParkAt(0, now, dev, words, formatted, label, resume)
}

// ParkAt blocks the issuing program on a transfer of words through dev:
// the request is submitted immediately and resume runs at the completion
// cycle, after shard's accounting has attributed the wait. label names
// the program in diagnostics. shard must be the issuing cluster's index.
func (w *IOWait) ParkAt(shard int, now sim.Cycle, dev IODevice, words int64, formatted bool, label string, resume func(IOCompletion)) {
	s := &w.shards[shard]
	id := s.nextID
	s.nextID++
	s.parked = append(s.parked, parkedIO{id: id, label: label, words: words, formatted: formatted, since: now})
	s.parks++
	dev.Submit(now, words, formatted, func(comp IOCompletion) {
		for i := range s.parked {
			if s.parked[i].id == id {
				s.parked = append(s.parked[:i], s.parked[i+1:]...)
				break
			}
		}
		s.completions++
		s.waitCycles += int64(comp.Wait())
		if comp.Formatted {
			s.waitCyclesFormatted += int64(comp.Wait())
		}
		if resume != nil {
			resume(comp)
		}
	})
}

// Parks reports programs ever blocked; Completions redispatches;
// WaitCycles the summed submit-to-completion latency.
// WaitCyclesFormatted is the share of WaitCycles spent on formatted
// transfers — the split the CPI-stack io_park cross-check uses to tell
// conversion-bound waits (BDNA's trajectory writes) from raw streaming
// (MG3D's trace reads). All sum over the shards.
func (w *IOWait) Parks() int64 { return w.sum(func(s *ioShard) int64 { return s.parks }) }

// Completions reports completed (redispatched) transfers.
func (w *IOWait) Completions() int64 { return w.sum(func(s *ioShard) int64 { return s.completions }) }

// WaitCycles reports the summed submit-to-completion latency.
func (w *IOWait) WaitCycles() int64 { return w.sum(func(s *ioShard) int64 { return s.waitCycles }) }

// WaitCyclesFormatted reports WaitCycles' formatted-transfer share.
func (w *IOWait) WaitCyclesFormatted() int64 {
	return w.sum(func(s *ioShard) int64 { return s.waitCyclesFormatted })
}

func (w *IOWait) sum(f func(*ioShard) int64) int64 {
	var t int64
	for i := range w.shards {
		t += f(&w.shards[i])
	}
	return t
}

// Parked reports the number of programs currently blocked on I/O.
func (w *IOWait) Parked() int {
	n := 0
	for i := range w.shards {
		n += len(w.shards[i].parked)
	}
	return n
}

// Tick implements sim.Component; the table has no per-cycle behavior.
func (w *IOWait) Tick(sim.Cycle) {}

// NextEvent implements sim.IdleComponent: the table itself never needs a
// tick (completions arrive via device callbacks).
func (w *IOWait) NextEvent(sim.Cycle) sim.Cycle { return sim.Never }

// FaultReason implements sim.FaultReporter: non-empty while programs are
// parked, naming each one — so a RunUntil that dies on its deadline with
// a transfer still outstanding reports who is blocked on what instead of
// timing out silently.
func (w *IOWait) FaultReason() string {
	if w.Parked() == 0 {
		return ""
	}
	parts := make([]string, 0, w.Parked())
	for si := range w.shards {
		for _, p := range w.shards[si].parked {
			kind := "raw"
			if p.formatted {
				kind = "formatted"
			}
			parts = append(parts, fmt.Sprintf("%s (%d %s words, parked since cycle %d)", p.label, p.words, kind, p.since))
		}
	}
	return "programs parked on outstanding I/O: " + strings.Join(parts, ", ")
}

// RegisterMetrics publishes the park table's counters under prefix
// (conventionally "xylem/io").
func (w *IOWait) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"/parks", w.Parks)
	reg.CounterFunc(prefix+"/completions", w.Completions)
	reg.CounterFunc(prefix+"/wait_cycles", w.WaitCycles)
	reg.CounterFunc(prefix+"/wait_cycles_formatted", w.WaitCyclesFormatted)
	reg.Gauge(prefix+"/parked", func() int64 { return int64(w.Parked()) })
}
