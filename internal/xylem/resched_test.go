package xylem

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// fakeCE is a GangTarget with a settable idle state and a record of
// assigned programs.
type fakeCE struct {
	idle bool
	got  []isa.Program
}

func (f *fakeCE) Idle() bool { return f.idle }
func (f *fakeCE) SetProgram(p isa.Program) {
	f.got = append(f.got, p)
	f.idle = false
}

func TestRescheduleWaitsLatencyThenDispatchesToIdle(t *testing.T) {
	eng := sim.New()
	r := NewRescheduler(25)
	busy := &fakeCE{idle: false}
	free := &fakeCE{idle: true}
	cl := r.AddGroup(busy, free)
	eng.Register("resched", r)

	prog := isa.NewSeq(isa.NewCompute(1))
	r.Surrender(eng.Now(), cl, prog)
	eng.Run(25) // cycles 0..24: latency not yet elapsed
	if len(free.got) != 0 {
		t.Fatal("dispatched before the reschedule latency elapsed")
	}
	eng.Run(1)
	if len(free.got) != 1 || free.got[0] != prog {
		t.Fatalf("free CE got %d programs, want the surrendered one", len(free.got))
	}
	if len(busy.got) != 0 {
		t.Fatal("busy CE was dispatched to")
	}
	if r.Redispatched != 1 || r.Pending() != 0 {
		t.Fatalf("Redispatched=%d Pending=%d, want 1,0", r.Redispatched, r.Pending())
	}
}

func TestReschedulePollsUntilATargetFrees(t *testing.T) {
	eng := sim.New()
	r := NewRescheduler(0)
	ce := &fakeCE{idle: false}
	cl := r.AddGroup(ce)
	eng.Register("resched", r)

	r.Surrender(eng.Now(), cl, isa.NewSeq(isa.NewCompute(1)))
	eng.Run(50)
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d with no idle target, want 1", r.Pending())
	}
	ce.idle = true // e.g. the original CE was repaired
	eng.Run(1)
	if r.Pending() != 0 || len(ce.got) != 1 {
		t.Fatalf("Pending=%d got=%d after target freed, want 0,1", r.Pending(), len(ce.got))
	}
}

func TestRescheduleKeepsTasksWithinTheirCluster(t *testing.T) {
	eng := sim.New()
	r := NewRescheduler(0)
	cl0 := r.AddGroup(&fakeCE{idle: false})
	other := &fakeCE{idle: true}
	r.AddGroup(other)
	eng.Register("resched", r)

	r.Surrender(eng.Now(), cl0, isa.NewSeq(isa.NewCompute(1)))
	eng.Run(20)
	if len(other.got) != 0 {
		t.Fatal("task migrated to a different cluster — gang semantics broken")
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", r.Pending())
	}
}

func TestRescheduleDispatchesInSurrenderOrder(t *testing.T) {
	eng := sim.New()
	r := NewRescheduler(0)
	ce := &fakeCE{idle: true}
	cl := r.AddGroup(ce)
	eng.Register("resched", r)

	p1 := isa.NewSeq(isa.NewCompute(1))
	p2 := isa.NewSeq(isa.NewCompute(2))
	r.Surrender(eng.Now(), cl, p1)
	r.Surrender(eng.Now(), cl, p2)
	eng.Run(1)
	if len(ce.got) != 1 || ce.got[0] != p1 {
		t.Fatalf("first dispatch = %v, want the first surrendered program", ce.got)
	}
	ce.idle = true
	eng.Run(1)
	if len(ce.got) != 2 || ce.got[1] != p2 {
		t.Fatalf("second dispatch missing: got %d programs", len(ce.got))
	}
}

func TestReschedulerIsDormantWhenEmpty(t *testing.T) {
	r := NewRescheduler(10)
	r.AddGroup(&fakeCE{idle: true})
	if r.NextEvent(0) != sim.Never {
		t.Fatal("empty rescheduler should report Never")
	}
	r.Surrender(7, 0, isa.NewSeq(isa.NewCompute(1)))
	if got := r.NextEvent(8); got != 17 {
		t.Fatalf("NextEvent = %d, want readyAt 17", got)
	}
	if got := r.NextEvent(30); got != 30 {
		t.Fatalf("NextEvent past readyAt = %d, want clamp to now", got)
	}
}
