package xylem

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeIODevice records submissions and lets the test fire completions
// at a cycle of its choosing.
type fakeIODevice struct {
	subs []struct {
		now       sim.Cycle
		words     int64
		formatted bool
	}
	fire []func(IOCompletion)
}

func (d *fakeIODevice) Submit(now sim.Cycle, words int64, formatted bool, onDone func(IOCompletion)) {
	d.subs = append(d.subs, struct {
		now       sim.Cycle
		words     int64
		formatted bool
	}{now, words, formatted})
	d.fire = append(d.fire, onDone)
}

func TestIOWaitParkAndRedispatch(t *testing.T) {
	w := NewIOWait()
	dev := &fakeIODevice{}
	var resumed []IOCompletion
	w.Park(100, dev, 640, true, "writer-a", func(c IOCompletion) { resumed = append(resumed, c) })
	w.Park(130, dev, 64, false, "reader-b", func(c IOCompletion) { resumed = append(resumed, c) })

	if w.Parked() != 2 || w.Parks() != 2 {
		t.Fatalf("parked %d / parks %d, want 2 / 2", w.Parked(), w.Parks())
	}
	if len(dev.subs) != 2 || dev.subs[0].words != 640 || !dev.subs[0].formatted || dev.subs[1].words != 64 {
		t.Fatalf("device saw submissions %+v", dev.subs)
	}
	if w.NextEvent(150) != sim.Never {
		t.Fatal("park table should never request a tick; completions come via callbacks")
	}

	// Out-of-order completion: the second request finishes first.
	dev.fire[1](IOCompletion{Submitted: 130, Done: 400, Words: 64})
	if w.Parked() != 1 || len(resumed) != 1 || resumed[0].Words != 64 {
		t.Fatalf("after first completion: parked %d, resumed %+v", w.Parked(), resumed)
	}
	dev.fire[0](IOCompletion{Submitted: 100, Done: 900, Words: 640, Formatted: true})
	if w.Parked() != 0 || w.Completions() != 2 {
		t.Fatalf("after both: parked %d, completions %d", w.Parked(), w.Completions())
	}
	if want := int64((400 - 130) + (900 - 100)); w.WaitCycles() != want {
		t.Fatalf("WaitCycles %d, want %d", w.WaitCycles(), want)
	}
}

func TestIOWaitFaultReasonNamesParkedPrograms(t *testing.T) {
	w := NewIOWait()
	dev := &fakeIODevice{}
	if w.FaultReason() != "" {
		t.Fatalf("empty table reported a fault: %q", w.FaultReason())
	}
	w.Park(42, dev, 1000, true, "BDNA step 1 ce0", nil)
	r := w.FaultReason()
	for _, want := range []string{"BDNA step 1 ce0", "1000 formatted words", "cycle 42"} {
		if !strings.Contains(r, want) {
			t.Fatalf("FaultReason %q missing %q", r, want)
		}
	}
	dev.fire[0](IOCompletion{Submitted: 42, Done: 99})
	if w.FaultReason() != "" {
		t.Fatalf("completed table still reports: %q", w.FaultReason())
	}
}
