package xylem

import (
	"testing"

	"repro/internal/sim"
)

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(511) != 0 || PageOf(512) != 1 {
		t.Fatal("PageOf wrong")
	}
}

func TestFirstTouchThenTLBMiss(t *testing.T) {
	vm := NewVM(DefaultVMConfig(), 4)
	// Cluster 0 touches a page: a real fault.
	c0 := vm.Touch(0, 100)
	if c0 != DefaultVMConfig().FirstTouchFault {
		t.Fatalf("first touch cost %d, want %d", c0, DefaultVMConfig().FirstTouchFault)
	}
	if vm.FirstTouchFaults != 1 || vm.TLBMissFaults != 0 {
		t.Fatalf("counters %d/%d", vm.FirstTouchFaults, vm.TLBMissFaults)
	}
	// Same cluster again: free.
	if c := vm.Touch(0, 200); c != 0 {
		t.Fatalf("resident touch cost %d", c)
	}
	// Another cluster, same page: a TLB-miss fault (PTE exists).
	c1 := vm.Touch(1, 100)
	if c1 != DefaultVMConfig().TLBMissFault {
		t.Fatalf("cross-cluster touch cost %d, want %d", c1, DefaultVMConfig().TLBMissFault)
	}
	if vm.TLBMissFaults != 1 {
		t.Fatalf("TLB miss not counted")
	}
	if !vm.Resident(1, 100) || vm.Resident(2, 100) {
		t.Fatal("residency tracking wrong")
	}
}

// TestTRFDFaultPattern reproduces the Section 4.2 observation: a
// four-cluster sweep over the same data takes ~4x the faults of a
// one-cluster sweep, because each additional cluster faults on pages
// that already have valid PTEs.
func TestTRFDFaultPattern(t *testing.T) {
	const pages = 100
	words := uint64(pages * PageWords)

	one := NewVM(DefaultVMConfig(), 4)
	one.SweepCost(0, 0, words)
	oneFaults := one.TotalFaults()

	four := NewVM(DefaultVMConfig(), 4)
	for cl := 0; cl < 4; cl++ {
		four.SweepCost(cl, 0, words)
	}
	fourFaults := four.TotalFaults()

	if oneFaults != pages {
		t.Fatalf("one-cluster sweep took %d faults, want %d", oneFaults, pages)
	}
	if fourFaults != 4*pages {
		t.Fatalf("four-cluster sweep took %d faults, want %d (the paper's ~4x)", fourFaults, 4*pages)
	}
	if four.StallCycles <= one.StallCycles {
		t.Fatal("multicluster VM stall not larger")
	}
}

func TestTLBEviction(t *testing.T) {
	cfg := DefaultVMConfig()
	cfg.ClusterTLBEntries = 4
	vm := NewVM(cfg, 1)
	for p := uint64(0); p < 6; p++ {
		vm.Touch(0, p*PageWords)
	}
	// Pages 0 and 1 were evicted.
	if vm.Resident(0, 0) || vm.Resident(0, PageWords) {
		t.Fatal("FIFO eviction did not happen")
	}
	if !vm.Resident(0, 5*PageWords) {
		t.Fatal("recent page evicted")
	}
	// Re-touch of an evicted page is a TLB miss, not a first touch.
	before := vm.TLBMissFaults
	vm.Touch(0, 0)
	if vm.TLBMissFaults != before+1 {
		t.Fatal("re-touch after eviction not a TLB miss")
	}
}

func TestVMValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 clusters accepted")
		}
	}()
	NewVM(DefaultVMConfig(), 0)
}

// TestFormattedVsUnformattedIO reproduces the BDNA optimization's
// mechanism: formatted I/O is an order of magnitude more expensive than
// raw transfer.
func TestFormattedVsUnformattedIO(t *testing.T) {
	fs := NewFS(DefaultFSConfig())
	const n = 1_000_000
	f := fs.FormattedIO(n)
	u := fs.UnformattedIO(n)
	if f < 10*u {
		t.Fatalf("formatted (%d) not >= 10x unformatted (%d)", f, u)
	}
	if fs.WordsFormatted != n || fs.WordsUnformatted != n {
		t.Fatal("I/O accounting wrong")
	}
	// BDNA scale check: the hand optimization saved ~41 s by removing
	// formatting; our model's formatted-minus-raw difference for a
	// BDNA-sized dataset (~25 M words) should be tens of seconds.
	diff := (fs.FormattedIO(25_000_000) - fs.UnformattedIO(25_000_000)).Seconds()
	if diff < 20 || diff > 400 {
		t.Fatalf("BDNA-scale formatting overhead = %.0f s, want tens of seconds", diff)
	}
}

func TestScheduler(t *testing.T) {
	s := NewScheduler(4)
	got, err := s.Acquire(3)
	if err != nil || len(got) != 3 {
		t.Fatalf("Acquire(3): %v %v", got, err)
	}
	if s.Free() != 1 {
		t.Fatalf("Free = %d", s.Free())
	}
	if _, err := s.Acquire(2); err == nil {
		t.Fatal("over-acquire allowed")
	}
	s.Release(got)
	if s.Free() != 4 {
		t.Fatal("release did not free")
	}
	if s.TasksStarted != 1 {
		t.Fatalf("TasksStarted = %d", s.TasksStarted)
	}
}

func TestSchedulerDoubleReleasePanics(t *testing.T) {
	s := NewScheduler(2)
	got, _ := s.Acquire(1)
	s.Release(got)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	s.Release(got)
}

func TestSweepCostCoversPagesOnce(t *testing.T) {
	vm := NewVM(DefaultVMConfig(), 1)
	cost := vm.SweepCost(0, 10, 2*PageWords) // spans pages 0..2
	if vm.TotalFaults() != 3 {
		t.Fatalf("sweep faulted %d pages, want 3", vm.TotalFaults())
	}
	if cost != 3*DefaultVMConfig().FirstTouchFault {
		t.Fatalf("sweep cost %d", cost)
	}
	// Second sweep: free.
	if c := vm.SweepCost(0, 10, 2*PageWords); c != 0 {
		t.Fatalf("warm sweep cost %d", c)
	}
	_ = sim.Cycle(0)
}
