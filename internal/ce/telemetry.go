package ce

import (
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// RegisterMetrics publishes the CE's counters under prefix (for example
// "cluster0/ce3"). The exported fields stay the backing store — the
// registry reads them through closures at snapshot time, so the
// execution path is untouched.
func (c *CE) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/flops", &c.Flops)
	reg.Counter(prefix+"/ops_done", &c.OpsDone)
	reg.Counter(prefix+"/stall_mem", &c.StallMem)
	reg.Counter(prefix+"/stall_net", &c.StallNet)
	reg.Counter(prefix+"/idle_cycles", &c.IdleCycles)
	reg.Counter(prefix+"/retries", &c.Retries)
	reg.Counter(prefix+"/late_replies", &c.LateReplies)
	reg.Counter(prefix+"/stale_replies", &c.StaleReplies)
	reg.Counter(prefix+"/retries_exhausted", &c.RetriesExhausted)
	reg.Counter(prefix+"/check_stops", &c.CheckStops)
	reg.Counter(prefix+"/surrendered", &c.Surrendered)
	reg.Counter(prefix+"/io_requests", &c.IORequests)
	reg.Counter(prefix+"/io_wait_cycles", &c.IOWaitCycles)
	reg.Counter(prefix+"/io_words", &c.IOWords)
	reg.Gauge(prefix+"/finished_at", func() int64 { return int64(c.FinishedAt) })
	// Cycle-accounting buckets (DESIGN.md §4.8). Registered as Counters
	// so they join every fingerprint: the determinism, fuzz, and scale
	// suites then enforce bit-identical attribution across engine modes
	// for free. The "attr/" name prefix is what the trace exporter keys
	// its per-CE counter tracks on.
	for b := isa.Bucket(0); b < isa.NumBuckets; b++ {
		reg.Counter(prefix+"/attr/"+b.String(), &c.Acct.Cycles[b])
	}
}
