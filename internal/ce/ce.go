// Package ce models the Alliant FX/8 computational element (CE): a
// pipelined scalar processor with a vector unit, as configured in Cedar.
//
// The model captures the properties the paper's measurements hinge on:
//
//   - a 170 ns instruction cycle (the simulation's base clock);
//   - vector instructions in register-memory format with one memory
//     operand stream, consuming or producing up to one 64-bit word per
//     cycle with chained arithmetic — at 2 chained flops per element this
//     yields the CE's 11.8 MFLOPS peak;
//   - vector startup cost, which reduces the 376 MFLOPS absolute machine
//     peak to the paper's 274 MFLOPS effective peak for 32-word strips;
//   - a limit of two outstanding memory requests per CE (the property
//     that caps non-prefetched global access at 2 words per 13 cycles,
//     Table 1's GM/no-pref row);
//   - posted writes (writes do not stall a CE);
//   - access to the per-CE prefetch unit and to the global
//     synchronization instructions.
package ce

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/xylem"
)

// IOPath is the CE's route to the operating system's I/O service: an
// isa.IO operation is submitted here, the issuing program parks on the
// outstanding transfer (the CE reports no next event), and the
// completion callback wakes the CE with the transfer's completion
// handle. The concrete path — Xylem's park table in front of the
// cluster's interactive processor — is wired by the machine assembly so
// this package needs no cluster dependency.
type IOPath interface {
	SubmitIO(now sim.Cycle, words int64, formatted bool, label string, onDone func(xylem.IOCompletion))
}

// Config holds the CE timing parameters.
type Config struct {
	// VectorStartup is the pipeline fill cost charged at the beginning
	// of every vector operation (default 12 cycles: with 32-word strips
	// this gives 32/(32+12) = 73% of absolute peak, the paper's 274 of
	// 376 MFLOPS effective peak).
	VectorStartup sim.Cycle
	// XferCycles is the CE-side transfer time between the network or
	// prefetch buffer and the vector unit (default 5: together with the
	// 8-cycle network+memory minimum it forms the paper's 13-cycle
	// effective global latency).
	XferCycles sim.Cycle
	// MaxOutstanding is the lockup-free miss limit (default 2).
	MaxOutstanding int
	// SyncExtra is the CE-side cost of initiating a memory-mapped
	// synchronization instruction beyond the network round trip
	// (default 2 cycles).
	SyncExtra sim.Cycle
	// ReadTimeout, when positive, enables request-layer recovery for
	// global reads — scalar accesses and direct (non-prefetched) vector
	// stream elements alike: a reply that has not arrived after
	// ReadTimeout cycles is re-requested under a fresh tag, with
	// exponential backoff and at most MaxRetries reissues before the CE
	// gives up and reports the wedge via FaultReason. Vector reissue is
	// head-only, like the PFU's: each inflight entry carries its own
	// deadline, but only the in-order consumption head is reissued (a
	// younger entry's deadline matters only once it becomes the head).
	// Sync operations are never retried: the Test-And-Operate
	// read-modify-write at the module is not idempotent, so a duplicate
	// could double-apply — sync tags live in their own namespace
	// (SyncTagBase) precisely so the fault injector can exclude them
	// from drops by range.
	ReadTimeout sim.Cycle
	// MaxRetries bounds the reissues per read when ReadTimeout is set.
	MaxRetries int
}

// DefaultConfig returns the as-built CE parameters.
func DefaultConfig() Config {
	return Config{VectorStartup: 12, XferCycles: 5, MaxOutstanding: 2, SyncExtra: 2}
}

// TagBase namespaces direct CE request tags above the prefetch unit's
// epoch-qualified slot tags [0, prefetch.TagSpan). SyncTagBase opens a
// third namespace above
// it for synchronization requests: gmem answers a Sync with an ordinary
// network.Reply carrying the request's tag, so only the tag range tells
// a sync reply from a read reply — and the fault injector must never
// drop a sync reply (Test-And-Operate is not idempotent; a reissue
// could double-apply). The injector's CEDrop predicate therefore
// accepts exactly [TagBase, SyncTagBase).
const (
	TagBase     uint64 = 1 << 20
	SyncTagBase uint64 = 1 << 28
)

// inflightReq is one outstanding memory element in a vector stream or a
// scalar access, consumed in issue order. Global-space entries carry
// their word address and, when request-layer recovery is enabled, a
// per-entry reissue deadline; cluster-space entries are created already
// arrived (tag 0) and never retried.
type inflightReq struct {
	tag      uint64
	addr     uint64
	arrived  bool
	usableAt sim.Cycle
	retries  int
	retryAt  sim.Cycle
}

// staleTagCap bounds the ring of forgotten request tags kept so a late
// reply to a reissued read is recognized and swallowed instead of
// panicking as unmatched. Under sustained drop faults a reply can still
// outlive the ring; Deliver swallows those into StaleReplies.
const staleTagCap = 32

// parkMark is one pending reclassification of elided cycles: from cycle
// at (inclusive) until the next tick, skipped spans charge bucket b.
type parkMark struct {
	at sim.Cycle
	b  isa.Bucket
}

// lostReq records the pending request of an exhausted retry, for the
// FaultReason diagnosis. what names the request class ("scalar read" or
// "vector element read").
type lostReq struct {
	what    string
	tag     uint64
	addr    uint64
	retries int
}

// CE is one computational element. It is a sim.Component; replies from
// the reverse network reach it through Deliver.
type CE struct {
	cfg Config

	// ID is the machine-wide CE index; Port its network port; Local its
	// index within the cluster (cache port).
	ID    int
	Port  int
	Local int

	fwd   *network.Network
	cache *cache.Cache
	pfu   *prefetch.PFU
	route func(addr uint64) int
	waker sim.Waker
	io    IOPath

	prog isa.Program
	cur  *isa.Op

	// Generic op state.
	finishAt sim.Cycle

	// Vector state.
	vIssued     int
	vDone       int
	startupEnd  sim.Cycle
	inflight    []inflightReq
	nextTag     uint64
	nextSyncTag uint64

	// Scalar/sync reply state.
	waitTag      uint64
	replyArrived bool
	replyUsable  sim.Cycle
	replyV       int64
	replyOK      bool

	// Request-layer recovery state (active only with cfg.ReadTimeout set).
	reqRetries int
	reqRetryAt sim.Cycle
	stale      []uint64
	lost       *lostReq

	// I/O state: ioDone flips when the completion callback fires and
	// ioComp carries the handle the next tick consumes.
	ioDone bool
	ioComp xylem.IOCompletion

	// checkStopped marks a CE halted by an injected check-stop. The halt
	// takes effect at the next instruction boundary (the operation in
	// flight drains normally, so no network tags are orphaned); a held
	// program is surrendered through OnSurrender for gang rescheduling.
	// Repair clears the stop.
	checkStopped bool

	// OnSurrender, if non-nil, receives the program a check-stopped CE
	// gives up, for Xylem-level rescheduling onto a healthy CE in the
	// same cluster. When nil the CE simply freezes until Repair and then
	// resumes its program.
	OnSurrender func(p isa.Program)

	// Acct is the cycle-accounting accumulator (DESIGN.md §4.8): every
	// cycle of the CE's existence is charged to exactly one isa.Bucket,
	// by Tick for executed cycles and by SkipCycles for elided spans, so
	// bucket sums always equal elapsed cycles in every engine mode.
	Acct isa.Acct

	// parkAs classifies the cycles the engine may elide before the next
	// tick, recorded from post-tick state: a skipped span's bucket is
	// decided by the state the CE was left in at its last tick, not by
	// the state at flush time — external stimulus between ticks either
	// wakes the CE into a tick (a program assignment, an I/O
	// completion), or splits the span with a parkMark (a check-stop or
	// repair landing on a dormant CE), exactly as the naive engine's
	// per-cycle ticks would classify it.
	parkAs isa.Bucket

	// parkMarks are stimulus-driven reclassifications pending since the
	// last tick: from mark.at onward, elided cycles charge mark.b. A
	// check-stop or repair can land on a dormant CE without provoking a
	// tick (the CE still reports no next event), so the skip span that
	// is eventually flushed covers cycles both before and after the
	// stimulus; the marks split it at the exact cycles the naive
	// engine's ticks would have switched buckets.
	parkMarks []parkMark

	// Counters.
	Flops            int64
	OpsDone          int64
	StallMem         int64 // cycles waiting on data
	StallNet         int64 // cycles the network refused an injection
	IdleCycles       int64
	Retries          int64 // scalar reads reissued after a timeout
	LateReplies      int64 // replies to forgotten (reissued) tags, swallowed
	StaleReplies     int64 // replies whose tag outlived the stale ring, swallowed
	RetriesExhausted int64 // reads abandoned with retries exhausted
	CheckStops       int64 // check-stop faults applied
	Surrendered      int64 // programs given up to the rescheduler
	IORequests       int64 // isa.IO operations issued
	IOWaitCycles     int64 // cycles parked on outstanding transfers
	IOWords          int64 // words moved by completed transfers
	FinishedAt       sim.Cycle
	everStarted      bool
}

// New builds a CE. route maps a global word address to its forward-network
// port (the memory interleaving function).
func New(cfg Config, id, port, local int, fwd *network.Network, ch *cache.Cache, u *prefetch.PFU, route func(addr uint64) int) *CE {
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 2
	}
	return &CE{
		cfg:         cfg,
		ID:          id,
		Port:        port,
		Local:       local,
		fwd:         fwd,
		cache:       ch,
		pfu:         u,
		route:       route,
		nextTag:     TagBase,
		nextSyncTag: SyncTagBase,
		parkAs:      isa.AcctIdle, // pre-first-tick spans are idle
	}
}

// PFU returns the CE's prefetch unit.
func (c *CE) PFU() *prefetch.PFU { return c.pfu }

// SetIOPath attaches the CE's route to the I/O service. A CE with no
// path panics on the first isa.IO operation (bare test rigs that never
// issue I/O need not wire one).
func (c *CE) SetIOPath(p IOPath) { c.io = p }

// AttachWaker implements sim.WakeSink: the engine hands the CE its own
// Handle at registration. The CE reports sim.Never only when it has no
// program and no operation in flight, so the only stimuli that must wake
// it are the program-assignment entry points.
func (c *CE) AttachWaker(w sim.Waker) { c.waker = w }

func (c *CE) wake() {
	if c.waker != nil {
		c.waker.Wake()
	}
}

// SetProgram assigns a program; the CE begins executing it on its next
// tick. Assigning over a running program panics — the concurrency
// control layer must only dispatch to idle CEs.
func (c *CE) SetProgram(p isa.Program) {
	if c.prog != nil || c.cur != nil {
		panic(fmt.Sprintf("ce %d: SetProgram while busy", c.ID))
	}
	c.prog = p
	c.everStarted = true
	c.wake()
}

// ForceProgram replaces the CE's program between operations, discarding
// any unexecuted remainder. This is the concurrent-start semantics: the
// broadcast program counter ends the initiating CE's current stream. It
// panics if an operation is still in flight.
func (c *CE) ForceProgram(p isa.Program) {
	if c.cur != nil {
		panic(fmt.Sprintf("ce %d: ForceProgram with an operation in flight", c.ID))
	}
	c.prog = p
	c.everStarted = true
	c.wake()
}

// Idle reports whether the CE has no program and no operation in flight.
// A check-stopped CE is not idle: dispatchers must not target it and the
// machine is not quiescent until it is repaired.
func (c *CE) Idle() bool { return !c.checkStopped && c.prog == nil && c.cur == nil }

// CheckStop halts the CE at its next instruction boundary: the operation
// in flight drains normally (so no reply tags are orphaned in the
// networks), then a held program is surrendered via OnSurrender and the
// CE freezes until Repair. A check-stop on an already-stopped CE is a
// no-op.
func (c *CE) CheckStop(now sim.Cycle) {
	if c.checkStopped {
		return
	}
	c.checkStopped = true
	c.CheckStops++
	if c.cur == nil {
		// At an instruction boundary the halt is effective immediately:
		// cycles from now on are check-stop, even if the CE is dormant
		// and never ticks before the repair. With an op in flight the
		// drain keeps its own classification until the op retires.
		c.markPark(now, isa.AcctCheckStop)
	}
	c.wake()
}

// Repair clears a check-stop: the CE becomes dispatchable again (and, if
// it still holds a program because no rescheduler claimed it, resumes).
func (c *CE) Repair(now sim.Cycle) {
	if !c.checkStopped {
		return
	}
	c.checkStopped = false
	if c.cur == nil {
		c.markPark(now, isa.AcctIdle)
	}
	c.wake()
}

// markPark records that elided cycles from now on charge bucket b; the
// next tick supersedes it (post-tick state reclassifies directly).
func (c *CE) markPark(now sim.Cycle, b isa.Bucket) {
	c.parkMarks = append(c.parkMarks, parkMark{at: now, b: b})
}

// CheckStopped reports whether the CE is halted by a check-stop.
func (c *CE) CheckStopped() bool { return c.checkStopped }

// NextEvent implements sim.IdleComponent: the earliest cycle at which
// ticking this CE could change observable state. States that accrue
// per-cycle stall counters (scalar/sync waits, structural retries) must
// tick every cycle; pure timer waits (compute spans, vector startup,
// posted-write and sync-extra completions) report their expiry so the
// engine can skip or fast-forward through them.
func (c *CE) NextEvent(now sim.Cycle) sim.Cycle {
	if c.cur == nil {
		if c.prog != nil {
			return now
		}
		return sim.Never // woken externally by SetProgram/ForceProgram
	}
	switch c.cur.Kind {
	case isa.Compute:
		return c.finishAt
	case isa.Vector:
		if now < c.startupEnd {
			return c.startupEnd
		}
		return now // consuming/issuing: StallMem/StallNet accrue per cycle
	case isa.Scalar, isa.Sync:
		if c.finishAt < 0 {
			return now // retry (-1) and reply-wait (-2) states stall-count
		}
		return c.finishAt
	case isa.IO:
		if c.ioDone {
			return now
		}
		return sim.Never // parked: the completion callback wakes the CE
	default: // isa.Prefetch completes on its next tick
		return now
	}
}

// SkipCycles implements sim.SkipAware: the engine never executed the
// cycles [from, to) for this CE. The only per-cycle accrual in a
// skippable state is the idle counter — every other counting state pins
// NextEvent to now — so credit IdleCycles when no operation was in
// flight. A program assigned during the span would have ended it at the
// CE's next tick slot, so the whole span was genuinely idle.
//
// Cycle accounting charges the span to the bucket recorded at the last
// tick (parkAs): skippable states — idle, check-stop freeze, compute
// spans, vector startup, scalar/sync completion timers, I/O parks —
// keep their classification constant until the next tick, so the whole
// span lands where the naive engine's per-cycle ticks would have put
// it.
func (c *CE) SkipCycles(from, to sim.Cycle) {
	if c.cur == nil {
		c.IdleCycles += int64(to - from)
	}
	cursor, bucket := from, c.parkAs
	kept := 0
	for _, mk := range c.parkMarks {
		if mk.at >= to {
			// Applies to cycles this flush does not cover yet; keep it
			// for the next span.
			c.parkMarks[kept] = mk
			kept++
			continue
		}
		if mk.at > cursor {
			c.Acct.Add(bucket, int64(mk.at-cursor))
			cursor = mk.at
		}
		bucket = mk.b
	}
	c.parkMarks = c.parkMarks[:kept]
	c.Acct.Add(bucket, int64(to-cursor))
	c.parkAs = bucket
}

// Deliver accepts a reverse-network packet for this CE's port,
// dispatching prefetch-buffer fills to the PFU.
func (c *CE) Deliver(now sim.Cycle, p *network.Packet) bool {
	if p.Tag < prefetch.TagSpan {
		if c.pfu == nil {
			panic(fmt.Sprintf("ce %d: prefetch reply without a PFU", c.ID))
		}
		return c.pfu.Deliver(now, p)
	}
	usable := now + c.cfg.XferCycles
	if p.Tag == c.waitTag && c.waitTag != 0 {
		c.replyArrived = true
		c.replyUsable = usable
		c.replyV = int64(p.Value)
		c.replyOK = p.OK
		return true
	}
	for i := range c.inflight {
		if c.inflight[i].tag == p.Tag {
			c.inflight[i].arrived = true
			c.inflight[i].usableAt = usable
			return true
		}
	}
	for i, t := range c.stale {
		if t == p.Tag {
			// The original reply to a read that was reissued after a
			// timeout: its data was (or will be) superseded by the
			// retry's. Swallow it so the reverse network does not retry
			// the delivery forever.
			c.stale = append(c.stale[:i], c.stale[i+1:]...)
			c.LateReplies++
			return true
		}
	}
	// Unmatched tag: under sustained drop faults a reply can outlive the
	// stale ring (more than staleTagCap reads reissued before it lands).
	// Its data is superseded by a retry's just like a ring hit, so swallow
	// it — killing the run over an already-recovered read helps nobody.
	c.StaleReplies++
	return true
}

// forgetTag moves a reissued read's old tag into the stale ring.
func (c *CE) forgetTag(tag uint64) {
	c.stale = append(c.stale, tag)
	if len(c.stale) > staleTagCap {
		c.stale = c.stale[1:]
	}
}

// Tick advances the CE one cycle, charging the cycle to exactly one
// accounting bucket and recording the classification of any span the
// engine elides before the next tick.
func (c *CE) Tick(now sim.Cycle) {
	c.parkMarks = c.parkMarks[:0] // post-tick state supersedes pending marks
	c.Acct.Add(c.tick(now), 1)
	c.parkAs = c.parkBucket()
}

// tick is the per-cycle state machine; it returns the bucket this cycle
// belongs to.
func (c *CE) tick(now sim.Cycle) isa.Bucket {
	if c.checkStopped && c.cur == nil {
		// Instruction boundary under a check-stop: surrender a held
		// program to the rescheduler (once), then freeze until Repair.
		// A program mid-prefetch-block cannot migrate — its armed block
		// and full/empty bits live in this CE's PFU — so it is held here
		// and resumed by Repair instead (resched.go counts on repair as
		// the redispatch guarantee of last resort).
		if c.prog != nil && c.OnSurrender != nil && (c.pfu == nil || c.pfu.Quiescent()) {
			p := c.prog
			c.prog = nil
			c.Surrendered++
			c.OnSurrender(p)
		}
		c.IdleCycles++
		return isa.AcctCheckStop
	}
	if c.cur == nil {
		if c.prog == nil {
			c.IdleCycles++
			return isa.AcctIdle
		}
		p := c.prog
		op := p.Next()
		if op == nil {
			// A completion callback inside Next (for example a join that
			// dispatches the continuation) may have force-assigned a new
			// program; only clear the slot if it is still the one that
			// ended.
			if c.prog == p {
				c.prog = nil
			}
			c.FinishedAt = now
			c.IdleCycles++
			return isa.AcctDispatch // the cycle that discovers program end
		}
		c.start(op, now)
		return isa.AcctDispatch
	}
	switch c.cur.Kind {
	case isa.Compute:
		if now >= c.finishAt {
			c.complete(now, 0, true)
		}
		return isa.AcctBusy
	case isa.Vector:
		return c.tickVector(now)
	case isa.Scalar:
		return c.tickScalar(now)
	case isa.Sync:
		return c.tickSync(now)
	case isa.IO:
		return c.tickIO(now)
	default:
		// isa.Prefetch: completed the cycle after firing. The op exists
		// only to drive the PFU, so both its cycles are dispatch.
		c.complete(now, 0, true)
		return isa.AcctDispatch
	}
}

// parkBucket classifies the cycles that may be elided between this tick
// and the next: the skippable states are exactly those whose NextEvent
// answer is in the future (or Never), and each keeps one bucket for the
// whole span.
func (c *CE) parkBucket() isa.Bucket {
	if c.cur == nil {
		if c.checkStopped {
			return isa.AcctCheckStop
		}
		return isa.AcctIdle
	}
	switch c.cur.Kind {
	case isa.Compute:
		return isa.AcctBusy
	case isa.Vector:
		return isa.AcctVectorWait // only the startup fill is skippable
	case isa.Scalar:
		return isa.AcctScalarWait // posted-write / cache-ready timers
	case isa.Sync:
		return isa.AcctSyncWait // the SyncExtra completion timer
	case isa.IO:
		return isa.AcctIOPark
	default:
		return isa.AcctDispatch // Prefetch retires next tick, never skipped
	}
}

// start initializes per-op state. The op begins occupying the CE this
// cycle and makes progress from the next tick.
func (c *CE) start(op *isa.Op, now sim.Cycle) {
	c.cur = op
	c.vIssued, c.vDone = 0, 0
	c.inflight = c.inflight[:0]
	c.replyArrived = false
	c.waitTag = 0
	switch op.Kind {
	case isa.Compute:
		cost := op.Cycles
		if op.ExtraCost != nil {
			cost += op.ExtraCost(now)
		}
		c.finishAt = now + cost
	case isa.Vector:
		// Buffer-to-register transfer pipelines within the startup, so
		// prefetched and direct vector operations charge the same fill.
		c.startupEnd = now + c.cfg.VectorStartup
	case isa.Prefetch:
		c.pfu.ArmMasked(op.PFN, op.PFStride, op.PFMask)
		c.pfu.Fire(op.PFBase.Word)
	case isa.Scalar:
		c.startScalar(op, now)
	case isa.Sync:
		c.startSync(op, now)
	case isa.IO:
		c.startIO(op, now)
	}
}

// startIO submits the transfer and parks the program: the CE reports no
// next event until the completion callback wakes it with the handle.
func (c *CE) startIO(op *isa.Op, now sim.Cycle) {
	if c.io == nil {
		panic(fmt.Sprintf("ce %d: isa.IO operation with no I/O path attached", c.ID))
	}
	c.ioDone = false
	c.IORequests++
	label := op.IOLabel
	if label == "" {
		label = fmt.Sprintf("ce%d", c.ID)
	}
	c.io.SubmitIO(now, op.IOWords, op.IOFormatted, label, func(comp xylem.IOCompletion) {
		c.ioComp = comp
		c.ioDone = true
		c.wake()
	})
}

// tickIO completes a parked I/O operation once its completion handle has
// arrived, attributing the wait from the handle's cycle stamps. The
// completion fires in the IP's tick slot (after the CE's), so the CE
// observes it the following cycle identically in every engine mode.
// Parked cycles run from the cycle after the dispatch tick through the
// cycle the completion fires, which is exactly the handle's Wait() — so
// per-CE AcctIOPark equals IOWaitCycles, the cross-check the
// attribution tests assert.
func (c *CE) tickIO(now sim.Cycle) isa.Bucket {
	if !c.ioDone {
		return isa.AcctIOPark // parked
	}
	c.IOWaitCycles += int64(c.ioComp.Wait())
	c.IOWords += c.ioComp.Words
	c.complete(now, c.ioComp.Words, true)
	return isa.AcctBusy
}

// complete finishes the current op: functional payload, callbacks, stats.
func (c *CE) complete(now sim.Cycle, v int64, ok bool) {
	op := c.cur
	c.cur = nil
	c.lost = nil // a very late reply can still rescue an abandoned read
	c.OpsDone++
	if op.Do != nil {
		op.Do()
	}
	if op.OnDone != nil {
		op.OnDone(v, ok)
	}
}

func (c *CE) newTag() uint64 {
	c.nextTag++
	if c.nextTag < TagBase || c.nextTag >= SyncTagBase {
		c.nextTag = TagBase + 1
	}
	return c.nextTag
}

// newSyncTag draws from the sync namespace, above SyncTagBase, so the
// fault injector's droppable-range test can never select a sync reply.
func (c *CE) newSyncTag() uint64 {
	c.nextSyncTag++
	if c.nextSyncTag < SyncTagBase {
		c.nextSyncTag = SyncTagBase + 1
	}
	return c.nextSyncTag
}

// tickVector advances a vector operation: consume the head of the
// in-order element pipe (at most one per cycle), then issue the next
// element request subject to the outstanding limit.
//
// Accounting: a cycle that consumes an element (or retires the op) is
// busy regardless of how its issue half fared — progress beats waiting.
// A cycle with no consumption is a prefetch wait when spinning on the
// buffer's full/empty bit, and a vector wait otherwise (startup fill,
// direct operand in flight, refused issue).
func (c *CE) tickVector(now sim.Cycle) isa.Bucket {
	op := c.cur
	if now < c.startupEnd {
		return isa.AcctVectorWait
	}
	if op.N == 0 {
		c.complete(now, 0, true)
		return isa.AcctBusy
	}
	if op.Write {
		return c.tickVectorStore(now)
	}
	// Consume. A failed Consume is the modeled spin-wait on the buffer
	// slot's full/empty bit; the CE charges it as a memory stall.
	consumed := false
	if op.UsePrefetch {
		if c.vDone < op.N {
			if _, ok := c.pfu.Consume(); ok {
				c.vDone++
				c.Flops += int64(op.Flops)
				consumed = true
			} else {
				c.StallMem++
			}
		}
	} else {
		if len(c.inflight) > 0 {
			h := &c.inflight[0]
			if h.arrived && h.usableAt <= now {
				c.inflight = c.inflight[1:]
				c.vDone++
				c.Flops += int64(op.Flops)
				consumed = true
				// A very late reply can rescue an abandoned head; clear
				// the diagnosis so a later element's exhaustion is fresh.
				c.lost = nil
			} else {
				c.StallMem++
			}
		}
	}
	// Issue (not needed for the prefetch path: the PFU issues). A head
	// reissue owns the cycle's injection slot: the retry packet and a
	// fresh element request must not race for the same network port.
	reissuing := !op.UsePrefetch && c.retryVectorHead(now)
	if !op.UsePrefetch && !reissuing && c.vIssued < op.N && len(c.inflight) < c.cfg.MaxOutstanding {
		addr := op.Base.Word + uint64(c.vIssued*op.Stride)
		if op.Base.Space == isa.Global {
			tag := c.newTag()
			p := &network.Packet{Dst: c.route(addr), Src: c.Port, Words: 1,
				Kind: network.Read, Addr: addr, Tag: tag, Phantom: true}
			if c.fwd.Offer(now, c.Port, p) {
				req := inflightReq{tag: tag, addr: addr}
				if c.cfg.ReadTimeout > 0 {
					req.retryAt = now + c.cfg.ReadTimeout
				}
				c.inflight = append(c.inflight, req)
				c.vIssued++
			} else {
				c.StallNet++
			}
		} else {
			if ready, ok := c.cache.Access(now, c.Local, addr, false); ok {
				c.inflight = append(c.inflight, inflightReq{arrived: true, usableAt: ready})
				c.vIssued++
			} else {
				c.StallMem++
			}
		}
	}
	if c.vDone >= op.N {
		c.complete(now, 0, true)
		return isa.AcctBusy
	}
	if consumed {
		return isa.AcctBusy
	}
	if op.UsePrefetch {
		return isa.AcctPrefetchWait
	}
	if len(c.inflight) > 0 && c.inflight[0].retries > 0 {
		// Spinning on a reissued head: the backoff window is
		// fault-recovery time, not ordinary operand latency.
		return isa.AcctRecovery
	}
	return isa.AcctVectorWait
}

// retryVectorHead applies the per-entry deadline to the head of the
// inflight queue: an unanswered global element whose deadline has passed
// is reissued under a fresh tag (the old tag retires through the stale
// ring so its late reply is swallowed), with the same exponential
// backoff as the scalar path. Head-only, like the PFU's reissue: in-order
// consumption means a younger element's deadline only matters once it
// becomes the head. Returns true when this cycle's injection slot was
// spent on a retry attempt (successful or refused).
func (c *CE) retryVectorHead(now sim.Cycle) bool {
	if c.cfg.ReadTimeout <= 0 || len(c.inflight) == 0 {
		return false
	}
	h := &c.inflight[0]
	if h.arrived || h.tag == 0 || now < h.retryAt {
		return false
	}
	if h.retries >= c.cfg.MaxRetries {
		if c.lost == nil {
			c.RetriesExhausted++
			c.lost = &lostReq{what: "vector element read", tag: h.tag, addr: h.addr, retries: h.retries}
		}
		return false
	}
	tag := c.newTag()
	p := &network.Packet{Dst: c.route(h.addr), Src: c.Port, Words: 1,
		Kind: network.Read, Addr: h.addr, Tag: tag, Phantom: true}
	if !c.fwd.Offer(now, c.Port, p) {
		c.StallNet++
		return true // port busy: deadline stays due, try again next cycle
	}
	c.forgetTag(h.tag)
	h.tag = tag
	c.Retries++
	h.retries++
	shift := uint(h.retries)
	if shift > 6 {
		shift = 6
	}
	h.retryAt = now + c.cfg.ReadTimeout<<shift
	return true
}

// tickVectorStore issues one store element per cycle; stores are posted
// and never wait for completion. An issued element (and the op's
// retiring cycle) is busy; a refused issue is a vector wait.
func (c *CE) tickVectorStore(now sim.Cycle) isa.Bucket {
	op := c.cur
	issued := false
	addr := op.Base.Word + uint64(c.vIssued*op.Stride)
	if op.Base.Space == isa.Global {
		p := &network.Packet{Dst: c.route(addr), Src: c.Port, Words: 2,
			Kind: network.Write, Addr: addr, Phantom: true}
		if c.fwd.Offer(now, c.Port, p) {
			c.vIssued++
			c.Flops += int64(op.Flops)
			issued = true
		} else {
			c.StallNet++
		}
	} else {
		if _, ok := c.cache.Access(now, c.Local, addr, true); ok {
			c.vIssued++
			c.Flops += int64(op.Flops)
			issued = true
		} else {
			c.StallMem++
		}
	}
	if c.vIssued >= op.N {
		c.complete(now, 0, true)
		return isa.AcctBusy
	}
	if issued {
		return isa.AcctBusy
	}
	return isa.AcctVectorWait
}

func (c *CE) startScalar(op *isa.Op, now sim.Cycle) {
	if op.ScalarAddr.Space == isa.Global {
		kind := network.Read
		words := 1
		if op.ScalarWrite {
			kind = network.Write
			words = 2
		}
		tag := c.newTag()
		p := &network.Packet{Dst: c.route(op.ScalarAddr.Word), Src: c.Port, Words: words,
			Kind: kind, Addr: op.ScalarAddr.Word, Tag: tag, Phantom: true}
		if !c.fwd.Offer(now, c.Port, p) {
			// Retry from tickScalar.
			c.waitTag = 0
			c.finishAt = -1
			c.StallNet++
			return
		}
		if op.ScalarWrite {
			c.finishAt = now + 1 // posted
		} else {
			c.waitTag = tag
			c.finishAt = -2 // waiting on reply
			if c.cfg.ReadTimeout > 0 {
				c.reqRetries = 0
				c.reqRetryAt = now + c.cfg.ReadTimeout
			}
		}
		return
	}
	// Cluster space through the cache.
	if ready, ok := c.cache.Access(now, c.Local, op.ScalarAddr.Word, op.ScalarWrite); ok {
		if op.ScalarWrite {
			c.finishAt = now + 1
		} else {
			c.finishAt = ready
		}
	} else {
		c.finishAt = -1 // retry
		c.StallMem++
	}
}

// tickScalar drives the scalar state machine. Accounting: the retiring
// cycle is busy; every other cycle is a scalar wait, except reply waits
// after the first timeout reissue, which are recovery — the
// request-layer backoff window (including a wedged read whose retries
// are exhausted) is fault-recovery time, not ordinary memory latency.
func (c *CE) tickScalar(now sim.Cycle) isa.Bucket {
	switch {
	case c.finishAt == -1: // structural retry
		c.startScalar(c.cur, now)
		return isa.AcctScalarWait
	case c.finishAt == -2: // waiting on global reply
		if c.replyArrived && now >= c.replyUsable {
			c.complete(now, c.replyV, c.replyOK)
			return isa.AcctBusy
		}
		c.StallMem++
		if c.cfg.ReadTimeout > 0 && !c.replyArrived && now >= c.reqRetryAt {
			c.retryScalar(now)
		}
		if c.reqRetries > 0 {
			return isa.AcctRecovery
		}
		return isa.AcctScalarWait
	default:
		if now >= c.finishAt {
			c.complete(now, 0, true)
			return isa.AcctBusy
		}
		return isa.AcctScalarWait
	}
}

// retryScalar reissues the pending global read under a fresh tag after
// its deadline expired, with exponential backoff; once MaxRetries is
// exhausted the request is recorded for FaultReason and the CE keeps
// waiting (the surrounding RunUntil budget converts the wedge into a
// diagnosable error).
func (c *CE) retryScalar(now sim.Cycle) {
	op := c.cur
	if c.reqRetries >= c.cfg.MaxRetries {
		if c.lost == nil {
			c.RetriesExhausted++
			c.lost = &lostReq{what: "scalar read", tag: c.waitTag, addr: op.ScalarAddr.Word, retries: c.reqRetries}
		}
		return
	}
	tag := c.newTag()
	p := &network.Packet{Dst: c.route(op.ScalarAddr.Word), Src: c.Port, Words: 1,
		Kind: network.Read, Addr: op.ScalarAddr.Word, Tag: tag, Phantom: true}
	if !c.fwd.Offer(now, c.Port, p) {
		c.StallNet++
		return // port busy: try again next cycle (deadline already due)
	}
	c.forgetTag(c.waitTag)
	c.waitTag = tag
	c.Retries++
	c.reqRetries++
	shift := uint(c.reqRetries)
	if shift > 6 {
		shift = 6
	}
	c.reqRetryAt = now + c.cfg.ReadTimeout<<shift
}

// FaultReason implements sim.FaultReporter: non-empty once a read's
// reissues are exhausted, naming the pending request.
func (c *CE) FaultReason() string {
	if c.lost != nil {
		return fmt.Sprintf("%s of word %#x (tag %d) unanswered after %d reissues",
			c.lost.what, c.lost.addr, c.lost.tag, c.lost.retries)
	}
	return ""
}

func (c *CE) startSync(op *isa.Op, now sim.Cycle) {
	tag := c.newSyncTag()
	p := &network.Packet{Dst: c.route(op.SyncAddr), Src: c.Port, Words: 2,
		Kind: network.Sync, Addr: op.SyncAddr, Sync: op.SyncSpec, Tag: tag}
	if !c.fwd.Offer(now, c.Port, p) {
		c.finishAt = -1
		c.StallNet++
		return
	}
	c.waitTag = tag
	c.finishAt = -2
}

// tickSync drives a global synchronization instruction. Accounting: the
// retiring cycle is busy; everything else — injection retries, the
// network round trip, the SyncExtra completion timer — is sync wait.
func (c *CE) tickSync(now sim.Cycle) isa.Bucket {
	switch {
	case c.finishAt == -1:
		c.startSync(c.cur, now)
		return isa.AcctSyncWait
	case c.finishAt == -2:
		if c.replyArrived {
			c.finishAt = now + c.cfg.SyncExtra
		} else {
			c.StallMem++
		}
		return isa.AcctSyncWait
	default:
		if now >= c.finishAt {
			c.complete(now, c.replyV, c.replyOK)
			return isa.AcctBusy
		}
		return isa.AcctSyncWait
	}
}
