package ce

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/gmem"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// rig is a one-CE machine: networks, memory, cache, PFU.
type rig struct {
	eng *sim.Engine
	ce  *CE
	g   *gmem.Global
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New()
	fwd := network.MustNew("forward", 64, 8, 0)
	rev := network.MustNew("reverse", 64, 8, 0)
	g, err := gmem.New(gmem.Config{Words: 4096, Modules: 32, ServiceCycles: 2, QueueWords: 4}, rev)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
	}
	ch := cache.New(cache.Config{Words: 1024, CEs: 1})
	u := prefetch.New(fwd, 0, 0, -1)
	u.SetRouter(g.ModuleOf)
	c := New(DefaultConfig(), 0, 0, 0, fwd, ch, u, g.ModuleOf)
	rev.SetSink(0, network.SinkFunc(func(p *network.Packet) bool { return c.Deliver(eng.Now(), p) }))
	for p := 1; p < 64; p++ {
		rev.SetSink(p, network.SinkFunc(func(*network.Packet) bool { return true }))
	}
	eng.Register("ce", c)
	eng.Register("pfu", u)
	eng.Register("fwd", fwd)
	for m := 0; m < g.Modules(); m++ {
		eng.Register("mod", g.Module(m))
	}
	eng.Register("rev", rev)
	return &rig{eng: eng, ce: c, g: g}
}

func (r *rig) runToIdle(t *testing.T) sim.Cycle {
	t.Helper()
	at, err := r.eng.RunUntil(r.ce.Idle, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func TestDefaultConfigValues(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.VectorStartup != 12 || cfg.XferCycles != 5 || cfg.MaxOutstanding != 2 {
		t.Fatalf("defaults drifted: %+v", cfg)
	}
}

func TestIdleAndProgramLifecycle(t *testing.T) {
	r := newRig(t)
	if !r.ce.Idle() {
		t.Fatal("fresh CE not idle")
	}
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(10)))
	if r.ce.Idle() {
		t.Fatal("CE idle with a program")
	}
	r.runToIdle(t)
	if r.ce.OpsDone != 1 {
		t.Fatalf("OpsDone = %d", r.ce.OpsDone)
	}
	// Reusable after completion.
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(5)))
	r.runToIdle(t)
	if r.ce.OpsDone != 2 {
		t.Fatalf("OpsDone = %d after second program", r.ce.OpsDone)
	}
}

func TestSetProgramWhileBusyPanics(t *testing.T) {
	r := newRig(t)
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(100)))
	r.eng.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("SetProgram on a busy CE did not panic")
		}
	}()
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(1)))
}

func TestForceProgramBetweenOps(t *testing.T) {
	r := newRig(t)
	ran := false
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(5)))
	r.runToIdle(t)
	op := isa.NewCompute(1)
	op.Do = func() { ran = true }
	r.ce.ForceProgram(isa.NewSeq(op))
	r.runToIdle(t)
	if !ran {
		t.Fatal("forced program did not run")
	}
}

func TestForceProgramMidOpPanics(t *testing.T) {
	r := newRig(t)
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(100)))
	r.eng.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("ForceProgram with an op in flight did not panic")
		}
	}()
	r.ce.ForceProgram(isa.NewSeq(isa.NewCompute(1)))
}

// TestVectorFlopAccounting: a vector load with k chained flops per
// element over n elements credits exactly n*k flops.
func TestVectorFlopAccounting(t *testing.T) {
	r := newRig(t)
	r.ce.SetProgram(isa.NewSeq(
		isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, 48, 1, 3, false),
	))
	r.runToIdle(t)
	if r.ce.Flops != 48*3 {
		t.Fatalf("Flops = %d, want %d", r.ce.Flops, 48*3)
	}
}

// TestVectorStartupCost: a zero-length vector op still pays startup; a
// 32-element cluster-resident op takes about startup + 32 cycles.
func TestVectorStartupCost(t *testing.T) {
	r := newRig(t)
	var doneAt sim.Cycle
	warm := isa.NewVectorLoad(isa.Addr{Space: isa.Cluster, Word: 0}, 32, 1, 0, false)
	hot := isa.NewVectorLoad(isa.Addr{Space: isa.Cluster, Word: 0}, 32, 1, 1, false)
	var warmDone sim.Cycle
	warm.OnDone = func(int64, bool) { warmDone = r.eng.Now() }
	hot.OnDone = func(int64, bool) { doneAt = r.eng.Now() }
	r.ce.SetProgram(isa.NewSeq(warm, hot))
	r.runToIdle(t)
	elapsed := doneAt - warmDone
	// Startup 12 + ~32 consume + small pipeline slack.
	if elapsed < 44 || elapsed > 55 {
		t.Fatalf("warm 32-element vector op took %d cycles, want ~44-50", elapsed)
	}
}

// TestOutstandingLimitThroughput: the direct global stream rate is
// 2 words per (8 + 5) cycles.
func TestOutstandingLimitThroughput(t *testing.T) {
	r := newRig(t)
	const n = 130
	var start, end sim.Cycle
	first := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, 2, 1, 0, false)
	first.OnDone = func(int64, bool) { start = r.eng.Now() }
	main := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 2}, n, 1, 0, false)
	main.OnDone = func(int64, bool) { end = r.eng.Now() }
	r.ce.SetProgram(isa.NewSeq(first, main))
	r.runToIdle(t)
	perWord := float64(end-start) / float64(n)
	if perWord < 6.0 || perWord > 7.2 {
		t.Fatalf("direct global stream = %.2f cycles/word, want ~6.5 (2 per 13)", perWord)
	}
}

// TestPrefetchOpIsAutonomous: a Prefetch op completes immediately and the
// PFU works in the background while the CE computes.
func TestPrefetchOpIsAutonomous(t *testing.T) {
	r := newRig(t)
	var pfDone, computeDone sim.Cycle
	pf := isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: 0}, 64, 1)
	pf.OnDone = func(int64, bool) { pfDone = r.eng.Now() }
	comp := isa.NewCompute(100)
	comp.OnDone = func(int64, bool) { computeDone = r.eng.Now() }
	consume := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, 64, 1, 1, true)
	r.ce.SetProgram(isa.NewSeq(pf, comp, consume))
	at := r.runToIdle(t)
	if pfDone > 3 {
		t.Fatalf("prefetch op occupied the CE until %d", pfDone)
	}
	// The 64-word prefetch (≥64 cycles of issue+arrival) overlapped the
	// 100-cycle compute: total well under the serial sum.
	if at > computeDone+90 {
		t.Fatalf("no overlap: idle at %d, compute done %d", at, computeDone)
	}
}

// TestPostedWritesDoNotStall: a long global store stream completes at
// issue bandwidth, far faster than the round-trip-bound load stream.
func TestPostedWritesDoNotStall(t *testing.T) {
	r := newRig(t)
	const n = 64
	st := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: 0}, n, 1, 0)
	r.ce.SetProgram(isa.NewSeq(st))
	at := r.runToIdle(t)
	if at > 4*n {
		t.Fatalf("posted store stream took %d cycles for %d words", at, n)
	}
	if r.ce.StallMem != 0 {
		t.Fatalf("stores stalled on memory %d cycles", r.ce.StallMem)
	}
}

// TestSyncRoundTrip: a sync op completes at arrival plus the CE-side
// cost, and its OnDone sees the memory value.
func TestSyncRoundTrip(t *testing.T) {
	r := newRig(t)
	r.g.StoreInt(7, 41)
	var got int64
	var gotOK bool
	op := isa.NewSync(7, network.FetchAndAdd(1))
	op.OnDone = func(v int64, ok bool) { got, gotOK = v, ok }
	r.ce.SetProgram(isa.NewSeq(op))
	at := r.runToIdle(t)
	if got != 41 || !gotOK {
		t.Fatalf("sync result %d/%v, want 41/true", got, gotOK)
	}
	if r.g.LoadInt(7) != 42 {
		t.Fatalf("memory = %d, want 42", r.g.LoadInt(7))
	}
	// 8-cycle round trip + SyncExtra + op boundaries.
	if at < 10 || at > 16 {
		t.Fatalf("sync completed at %d, want ~11-13", at)
	}
}

// TestScalarClusterRetryOnMSHRFull: scalar accesses retry through
// structural hazards rather than deadlocking.
func TestScalarClusterRetry(t *testing.T) {
	r := newRig(t)
	ops := make([]*isa.Op, 0, 12)
	for i := 0; i < 12; i++ {
		// Different lines, same small cache: forced misses.
		ops = append(ops, isa.NewScalarLoad(isa.Addr{Space: isa.Cluster, Word: uint64(i * 64)}))
	}
	r.ce.SetProgram(isa.NewSeq(ops...))
	r.runToIdle(t)
	if r.ce.OpsDone != 12 {
		t.Fatalf("OpsDone = %d, want 12", r.ce.OpsDone)
	}
}

func TestUnmatchedReplySwallowed(t *testing.T) {
	// A reply whose tag matches nothing — not the waiting read, not the
	// inflight queue, not the stale ring — used to panic. Under sustained
	// drop faults this is reachable (the tag outlived the ring), so it must
	// be swallowed and counted instead.
	r := newRig(t)
	if !r.ce.Deliver(0, &network.Packet{Tag: TagBase + 999, Kind: network.Reply}) {
		t.Fatal("unmatched reply not accepted")
	}
	if r.ce.StaleReplies != 1 || r.ce.LateReplies != 0 {
		t.Fatalf("StaleReplies=%d LateReplies=%d, want 1,0", r.ce.StaleReplies, r.ce.LateReplies)
	}
}

func TestStaleRingWrapCountsEvictedReplies(t *testing.T) {
	// Regression for the ring-wrap panic: reissue more reads than the
	// stale ring holds, then let every superseded original's reply land.
	// Tags still in the ring are LateReplies; the evicted overflow must be
	// swallowed as StaleReplies, not kill the run. Seeded shuffle so the
	// evicted and retained replies arrive interleaved.
	r := newRig(t)
	extra := 5
	n := staleTagCap + extra
	tags := make([]uint64, n)
	for i := range tags {
		tags[i] = TagBase + 1000 + uint64(i)
		r.ce.forgetTag(tags[i])
	}
	rng := sim.NewRand(0x5EDA2C3D)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		tags[i], tags[j] = tags[j], tags[i]
	}
	for _, tag := range tags {
		if !r.ce.Deliver(0, &network.Packet{Tag: tag, Kind: network.Reply}) {
			t.Fatalf("reply with tag %d not accepted", tag)
		}
	}
	if r.ce.LateReplies != int64(staleTagCap) || r.ce.StaleReplies != int64(extra) {
		t.Fatalf("LateReplies=%d StaleReplies=%d, want %d,%d",
			r.ce.LateReplies, r.ce.StaleReplies, staleTagCap, extra)
	}
	if len(r.ce.stale) != 0 {
		t.Fatalf("stale ring holds %d tags after all replies landed, want 0", len(r.ce.stale))
	}
}

// TestDeterministicInterleaving: two identical single-CE runs take the
// same cycle count and credit the same stalls.
func TestDeterministicInterleaving(t *testing.T) {
	run := func() (sim.Cycle, int64, int64) {
		r := newRig(t)
		r.ce.SetProgram(isa.NewSeq(
			isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: 0}, 96, 1),
			isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, 96, 1, 2, true),
			isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: 512}, 32, 1, 0),
			isa.NewSync(7, network.TestAndSet()),
		))
		at := r.runToIdle(t)
		return at, r.ce.StallMem, r.ce.Flops
	}
	a1, s1, f1 := run()
	a2, s2, f2 := run()
	if a1 != a2 || s1 != s2 || f1 != f2 {
		t.Fatalf("nondeterminism: (%d,%d,%d) vs (%d,%d,%d)", a1, s1, f1, a2, s2, f2)
	}
}

// TestStoreStreamUnderCongestion: many CEs storing through one machine
// exercises the network-refusal retry path (StallNet) without losing any
// stores.
func TestStoreStreamUnderCongestion(t *testing.T) {
	eng := sim.New()
	fwd := network.MustNew("forward", 64, 8, 0)
	rev := network.MustNew("reverse", 64, 8, 0)
	g, err := gmem.New(gmem.Config{Words: 65536, Modules: 32, ServiceCycles: 2, QueueWords: 4}, rev)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
	}
	ch := cache.New(cache.Config{Words: 1024, CEs: 8})
	ces := make([]*CE, 8)
	for i := range ces {
		c := New(DefaultConfig(), i, i, i, fwd, ch, nil, g.ModuleOf)
		ces[i] = c
		rev.SetSink(i, network.SinkFunc(func(p *network.Packet) bool { return c.Deliver(eng.Now(), p) }))
		eng.Register("ce", c)
	}
	for p := 8; p < 64; p++ {
		rev.SetSink(p, network.SinkFunc(func(*network.Packet) bool { return true }))
	}
	eng.Register("fwd", fwd)
	for m := 0; m < g.Modules(); m++ {
		eng.Register("mod", g.Module(m))
	}
	eng.Register("rev", rev)

	// All 8 CEs store to module-aliasing addresses: severe contention.
	const n = 128
	for i, c := range ces {
		c.SetProgram(isa.NewSeq(
			isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: uint64(i)}, n, 32, 0),
		))
	}
	idle := func() bool {
		for _, c := range ces {
			if !c.Idle() {
				return false
			}
		}
		return fwd.InFlight() == 0
	}
	if _, err := eng.RunUntil(idle, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Posted writes may still sit in module queues after the network
	// drains (weak ordering: no one waits for them); let them complete.
	eng.Run(200)
	var stalls, writes int64
	for _, c := range ces {
		stalls += c.StallNet
	}
	for m := 0; m < g.Modules(); m++ {
		writes += g.Module(m).Writes
	}
	if writes != 8*n {
		t.Fatalf("%d writes served, want %d", writes, 8*n)
	}
	if stalls == 0 {
		t.Fatal("no network stalls under aliased store contention")
	}
}

// newCfgRig is newRig with a caller-supplied CE config, for the
// request-recovery tests.
func newCfgRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.New()
	fwd := network.MustNew("forward", 64, 8, 0)
	rev := network.MustNew("reverse", 64, 8, 0)
	g, err := gmem.New(gmem.Config{Words: 4096, Modules: 32, ServiceCycles: 2, QueueWords: 4}, rev)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
	}
	ch := cache.New(cache.Config{Words: 1024, CEs: 1})
	u := prefetch.New(fwd, 0, 0, -1)
	u.SetRouter(g.ModuleOf)
	c := New(cfg, 0, 0, 0, fwd, ch, u, g.ModuleOf)
	rev.SetSink(0, network.SinkFunc(func(p *network.Packet) bool { return c.Deliver(eng.Now(), p) }))
	for p := 1; p < 64; p++ {
		rev.SetSink(p, network.SinkFunc(func(*network.Packet) bool { return true }))
	}
	eng.Register("ce", c)
	eng.Register("pfu", u)
	eng.Register("fwd", fwd)
	for m := 0; m < g.Modules(); m++ {
		eng.Register("mod", g.Module(m))
	}
	eng.Register("rev", rev)
	return &rig{eng: eng, ce: c, g: g}
}

// fwdOf digs the forward network back out of the rig for fault calls.
func (r *rig) fwdOf() *network.Network { return r.ce.fwd }

func retryCfg(timeout sim.Cycle, max int) Config {
	cfg := DefaultConfig()
	cfg.ReadTimeout = timeout
	cfg.MaxRetries = max
	return cfg
}

func TestScalarReadRetryRecoversDrop(t *testing.T) {
	r := newCfgRig(t, retryCfg(30, 3))
	r.g.StoreWord(9, 4242)
	var got int64
	op := isa.NewScalarLoad(isa.Addr{Space: isa.Global, Word: 9})
	op.OnDone = func(v int64, ok bool) { got = v }
	r.ce.SetProgram(isa.NewSeq(op))
	// The request offered at cycle 0 sits in stage-0 switch 0 input 0
	// after one executed cycle (port 0's shuffle wiring); drop it there.
	r.eng.Run(1)
	pk := r.fwdOf().DropSwitchHead(0, 0, 0, nil)
	if pk == nil || pk.Tag < TagBase {
		t.Fatalf("dropped %+v, want the CE's tagged read", pk)
	}
	r.runToIdle(t)
	if got != 4242 {
		t.Fatalf("scalar load returned %d after retry, want 4242", got)
	}
	if r.ce.Retries != 1 || r.ce.LateReplies != 0 || r.ce.RetriesExhausted != 0 {
		t.Fatalf("Retries=%d LateReplies=%d Exhausted=%d, want 1,0,0",
			r.ce.Retries, r.ce.LateReplies, r.ce.RetriesExhausted)
	}
	if reason := r.ce.FaultReason(); reason != "" {
		t.Fatalf("healthy CE reports fault %q", reason)
	}
}

func TestScalarLateReplySwallowed(t *testing.T) {
	// Delay (don't drop) the original request past the timeout: the retry
	// races it, and the superseded original's reply must land in the stale
	// ring instead of panicking as an unmatched tag.
	r := newCfgRig(t, retryCfg(30, 3))
	r.g.StoreWord(9, 777)
	r.fwdOf().StallEntry(0, 0, 60)
	var got int64
	op := isa.NewScalarLoad(isa.Addr{Space: isa.Global, Word: 9})
	op.OnDone = func(v int64, ok bool) { got = v }
	r.ce.SetProgram(isa.NewSeq(op))
	r.runToIdle(t)
	if got != 777 {
		t.Fatalf("scalar load returned %d, want 777", got)
	}
	if r.ce.Retries != 1 || r.ce.LateReplies != 1 {
		t.Fatalf("Retries=%d LateReplies=%d, want 1,1", r.ce.Retries, r.ce.LateReplies)
	}
}

func TestScalarRetriesExhaustedSurfacesErrDeadline(t *testing.T) {
	// Every issue and reissue is dropped: the CE must exhaust its retry
	// budget and the run must end in ErrDeadline naming the CE and the
	// pending word — no hang, no panic.
	r := newCfgRig(t, retryCfg(10, 2))
	op := isa.NewScalarLoad(isa.Addr{Space: isa.Global, Word: 9})
	r.ce.SetProgram(isa.NewSeq(op))
	for i := 0; i < 200; i++ {
		r.eng.Run(1)
		r.fwdOf().DropSwitchHead(0, 0, 0, nil)
	}
	if r.ce.RetriesExhausted != 1 || r.ce.Retries != 2 {
		t.Fatalf("RetriesExhausted=%d Retries=%d, want 1,2", r.ce.RetriesExhausted, r.ce.Retries)
	}
	_, err := r.eng.RunUntil(r.ce.Idle, 5000)
	if !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	for _, want := range []string{"ce", "scalar read of word 0x9", "unanswered after 2 reissues"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadline error %q missing %q", err, want)
		}
	}
}

func TestVectorReadRetryRecoversDrop(t *testing.T) {
	// Drop a direct vector stream element's request: the inflight head's
	// per-entry deadline must reissue it under a fresh tag and the op
	// must complete with every element, charging the backoff window to
	// the recovery bucket.
	r := newCfgRig(t, retryCfg(30, 3))
	for w := uint64(0); w < 4; w++ {
		r.g.StoreWord(w, 100+w)
	}
	op := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, 4, 1, 2, false)
	r.ce.SetProgram(isa.NewSeq(op))
	// Dispatch at cycle 0, vector startup 12: the first element issues at
	// cycle 12 and sits in stage-0 switch 0 input 0 after that executed
	// cycle (port 0's shuffle wiring); drop it there.
	r.eng.Run(13)
	pk := r.fwdOf().DropSwitchHead(0, 0, 0, nil)
	if pk == nil || pk.Tag < TagBase {
		t.Fatalf("dropped %+v, want the CE's first element read", pk)
	}
	r.runToIdle(t)
	r.eng.Settle()
	if r.ce.Flops != 4*2 {
		t.Fatalf("Flops = %d after recovery, want 8", r.ce.Flops)
	}
	if r.ce.Retries != 1 || r.ce.RetriesExhausted != 0 {
		t.Fatalf("Retries=%d Exhausted=%d, want 1,0", r.ce.Retries, r.ce.RetriesExhausted)
	}
	if got := r.ce.Acct.Cycles[isa.AcctRecovery]; got == 0 {
		t.Fatal("no cycles charged to recovery across a reissued vector head")
	}
	if reason := r.ce.FaultReason(); reason != "" {
		t.Fatalf("healthy CE reports fault %q", reason)
	}
}

func TestVectorReissuedThenAgedOutReplyIsStale(t *testing.T) {
	// The stale-ring <-> inflight-reissue interaction: a reply for a tag
	// that was reissued and then aged out of the ring must be swallowed
	// into StaleReplies — not resurrect the inflight entry, not panic.
	r := newCfgRig(t, retryCfg(30, 3))
	r.g.StoreWord(9, 777)
	r.fwdOf().StallEntry(0, 0, 60) // delay the original past the deadline
	var got int64
	op := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 9}, 1, 1, 0, false)
	op.OnDone = func(int64, bool) { got = int64(r.g.LoadWord(9)) }
	r.ce.SetProgram(isa.NewSeq(op))
	if _, err := r.eng.RunUntil(func() bool { return r.ce.Retries == 1 }, 10000); err != nil {
		t.Fatal(err)
	}
	// Age the reissued original's tag out of the ring before its delayed
	// reply lands: push a full ring's worth of newer forgotten tags.
	for i := 0; i < staleTagCap; i++ {
		r.ce.forgetTag(TagBase + 5000 + uint64(i))
	}
	r.runToIdle(t)
	if got != 777 {
		t.Fatalf("vector element read %d after recovery, want 777", got)
	}
	if r.ce.OpsDone != 1 || len(r.ce.inflight) != 0 {
		t.Fatalf("OpsDone=%d inflight=%d, want 1,0", r.ce.OpsDone, len(r.ce.inflight))
	}
	// The original's reply found neither the inflight queue (fresh tag)
	// nor the ring (aged out): stale, not late.
	if r.ce.StaleReplies != 1 || r.ce.LateReplies != 0 {
		t.Fatalf("StaleReplies=%d LateReplies=%d, want 1,0", r.ce.StaleReplies, r.ce.LateReplies)
	}
}

func TestVectorRetriesExhaustedSurfacesErrDeadline(t *testing.T) {
	// Every element issue and reissue is dropped: the head must exhaust
	// its budget and the run must end in ErrDeadline naming the CE and
	// the pending element — no hang, no panic.
	r := newCfgRig(t, retryCfg(10, 2))
	op := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 9}, 1, 1, 0, false)
	r.ce.SetProgram(isa.NewSeq(op))
	for i := 0; i < 200; i++ {
		r.eng.Run(1)
		r.fwdOf().DropSwitchHead(0, 0, 0, nil)
	}
	if r.ce.RetriesExhausted != 1 || r.ce.Retries != 2 {
		t.Fatalf("RetriesExhausted=%d Retries=%d, want 1,2", r.ce.RetriesExhausted, r.ce.Retries)
	}
	_, err := r.eng.RunUntil(r.ce.Idle, 5000)
	if !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	for _, want := range []string{"ce", "vector element read of word 0x9", "unanswered after 2 reissues"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadline error %q missing %q", err, want)
		}
	}
}

func TestCheckStopDrainsThenSurrenders(t *testing.T) {
	r := newRig(t)
	var surrendered isa.Program
	r.ce.OnSurrender = func(p isa.Program) { surrendered = p }
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(50), isa.NewCompute(7)))
	r.eng.Run(5)
	r.ce.CheckStop(r.eng.Now())
	if !r.ce.CheckStopped() || r.ce.Idle() {
		t.Fatal("check-stopped CE should report CheckStopped and not Idle")
	}
	at, err := r.eng.RunUntil(func() bool { return surrendered != nil }, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// The op in flight drains before the halt takes effect.
	if at < 50 {
		t.Fatalf("surrendered at %d, before the in-flight compute drained (50)", at)
	}
	if r.ce.OpsDone != 1 || r.ce.Surrendered != 1 || r.ce.CheckStops != 1 {
		t.Fatalf("OpsDone=%d Surrendered=%d CheckStops=%d, want 1,1,1",
			r.ce.OpsDone, r.ce.Surrendered, r.ce.CheckStops)
	}
	r.ce.CheckStop(r.eng.Now()) // no-op on an already-stopped CE
	if r.ce.CheckStops != 1 {
		t.Fatalf("repeated CheckStop bumped the counter to %d", r.ce.CheckStops)
	}
	// After repair the CE is dispatchable and can finish the surrendered
	// remainder itself.
	r.ce.Repair(r.eng.Now())
	if !r.ce.Idle() {
		t.Fatal("repaired CE not idle")
	}
	r.ce.SetProgram(surrendered)
	r.runToIdle(t)
	if r.ce.OpsDone != 2 {
		t.Fatalf("OpsDone = %d after rerunning the surrendered program, want 2", r.ce.OpsDone)
	}
}

func TestCheckStopWithoutSurrenderFreezesUntilRepair(t *testing.T) {
	r := newRig(t)
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(10)))
	r.ce.CheckStop(r.eng.Now())
	r.eng.Run(100)
	if r.ce.OpsDone != 0 {
		t.Fatalf("frozen CE executed %d ops", r.ce.OpsDone)
	}
	r.ce.Repair(r.eng.Now())
	r.runToIdle(t)
	if r.ce.OpsDone != 1 || r.ce.FinishedAt < 110 {
		t.Fatalf("OpsDone=%d FinishedAt=%d, want 1 and >=110", r.ce.OpsDone, r.ce.FinishedAt)
	}
}

// TestAcctComputeClassification pins the accounting of the simplest
// program: one cycle of dispatch per op start, the compute span (retiring
// cycle included) as busy, one dispatch cycle to discover program end,
// idle for everything else — and the bucket totals conserve cycles.
func TestAcctComputeClassification(t *testing.T) {
	r := newRig(t)
	r.ce.SetProgram(isa.NewSeq(isa.NewCompute(10)))
	r.runToIdle(t)
	r.eng.Run(50)
	r.eng.Settle()
	a := r.ce.Acct
	if a.Total() != int64(r.eng.Now()) {
		t.Fatalf("bucket sum %d != elapsed %d (buckets %v)", a.Total(), r.eng.Now(), a.Cycles)
	}
	if a.Cycles[isa.AcctBusy] != 10 {
		t.Fatalf("busy = %d cycles for Compute(10), want 10", a.Cycles[isa.AcctBusy])
	}
	if a.Cycles[isa.AcctDispatch] != 2 {
		t.Fatalf("dispatch = %d, want 2 (op start + program-end discovery)", a.Cycles[isa.AcctDispatch])
	}
	if got := a.Cycles[isa.AcctIdle]; got != int64(r.eng.Now())-12 {
		t.Fatalf("idle = %d, want %d", got, int64(r.eng.Now())-12)
	}
}

// TestAcctParkMarkSplitsSkippedSpan: check-stopping and repairing a
// parked CE changes how its elided cycles must be classified, without
// ever ticking it. The park marks recorded by CheckStop/Repair split the
// deferred span so the frozen window lands in check_stop and the rest
// stays idle — the same split the naive engine produces tick by tick.
func TestAcctParkMarkSplitsSkippedSpan(t *testing.T) {
	r := newRig(t)
	r.eng.Run(10)
	r.ce.CheckStop(r.eng.Now())
	r.eng.Run(30) // frozen span [10,40): never ticked, engine skips it
	r.ce.Repair(r.eng.Now())
	r.eng.Run(20)
	r.eng.Settle()
	a := r.ce.Acct
	if a.Total() != 60 {
		t.Fatalf("bucket sum %d != elapsed 60 (buckets %v)", a.Total(), a.Cycles)
	}
	if got := a.Cycles[isa.AcctCheckStop]; got != 30 {
		t.Fatalf("check_stop = %d, want 30 (the frozen window)", got)
	}
	if got := a.Cycles[isa.AcctIdle]; got != 30 {
		t.Fatalf("idle = %d, want 30 (before the stop and after repair)", got)
	}
}
