package cluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xylem"
)

// IP models a cluster's interactive processors, which "perform
// input/output and various other tasks" in the Alliant FX/8 (the IPs and
// IP caches of the paper's Figure 2). An IP serves I/O requests
// sequentially at the Xylem file-system cost model's rates, so
// concurrent I/O from a cluster's CEs serializes — the property that
// makes I/O-heavy codes like BDNA and MG3D sensitive to their I/O
// volume regardless of processor count.
//
// IP satisfies xylem.IODevice: every submission carries the submit
// cycle and every completion returns a xylem.IOCompletion handle, so
// callers attribute wait time from the handle alone.
type IP struct {
	fs    *xylem.FS
	waker sim.Waker

	queue       []ioReq
	busyTil     sim.Cycle
	pendingDone []doneAt

	// Fault state: faultBusyTil keeps the IP from starting new
	// transfers (a busy window — the device is occupied with "various
	// other tasks"); delayNext inflates the service time of the next
	// transfer to start (a delayed completion). Neither touches a
	// transfer already in flight.
	faultBusyTil sim.Cycle
	delayNext    sim.Cycle

	// Requests counts submissions; BusyCycles accumulates service time;
	// WordsMoved the transferred volume; Completions finished requests;
	// WaitCycles the summed submit-to-completion latency. FaultBusies
	// and FaultDelays count injected IP faults.
	Requests    int64
	BusyCycles  int64
	WordsMoved  int64
	Completions int64
	WaitCycles  int64
	FaultBusies int64
	FaultDelays int64
}

type ioReq struct {
	submitted sim.Cycle
	words     int64
	formatted bool
	onDone    func(xylem.IOCompletion)
}

// NewIP returns an IP using the given file-system cost model (nil
// selects the default).
func NewIP(fs *xylem.FS) *IP {
	if fs == nil {
		fs = xylem.NewFS(xylem.DefaultFSConfig())
	}
	return &IP{fs: fs}
}

// AttachWaker implements sim.WakeSink: the engine hands the IP its own
// Handle at registration. An IP with no queue and no pending completion
// reports sim.Never, so the only stimulus that must wake it is Submit.
func (ip *IP) AttachWaker(w sim.Waker) { ip.waker = w }

// Submit enqueues an I/O transfer of words 64-bit words, stamped with
// the submitting cycle; onDone (may be nil) runs at the simulated time
// the transfer completes and receives the completion handle. Implements
// xylem.IODevice.
func (ip *IP) Submit(now sim.Cycle, words int64, formatted bool, onDone func(xylem.IOCompletion)) {
	if words < 0 {
		panic(fmt.Sprintf("cluster: negative I/O size %d", words))
	}
	ip.Requests++
	ip.queue = append(ip.queue, ioReq{submitted: now, words: words, formatted: formatted, onDone: onDone})
	if ip.waker != nil {
		ip.waker.Wake()
	}
}

// Pending reports queued plus in-service requests.
func (ip *IP) Pending() int { return len(ip.queue) }

// FaultBusy implements fault.FaultableIP: the IP is occupied with
// non-I/O work for window cycles from now, deferring the start of any
// queued transfer (a transfer already in flight is unaffected).
// Overlapping windows extend, never shorten.
func (ip *IP) FaultBusy(now, window sim.Cycle) {
	ip.FaultBusies++
	if til := now + window; til > ip.faultBusyTil {
		ip.faultBusyTil = til
	}
}

// FaultDelayNext implements fault.FaultableIP: the next transfer to
// start takes extra additional cycles (a slow seek / retried sector).
// The in-flight transfer, if any, is unaffected.
func (ip *IP) FaultDelayNext(extra sim.Cycle) {
	ip.FaultDelays++
	ip.delayNext += extra
}

// NextEvent implements sim.IdleComponent: the earliest pending
// completion, or the cycle the next queued transfer can start (the
// later of the current transfer's end and any fault busy window).
// Submissions arrive via Submit (external stimulus), so an IP with no
// queue and no pending completion reports Never. Completion times are
// included so a machine-wide fast-forward never jumps past an onDone
// callback.
func (ip *IP) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	for _, d := range ip.pendingDone {
		if d.at < next {
			next = d.at
		}
	}
	if len(ip.queue) > 0 {
		start := ip.busyTil
		if ip.faultBusyTil > start {
			start = ip.faultBusyTil
		}
		if start < next {
			next = start
		}
	}
	if next <= now {
		return now
	}
	return next
}

// Tick advances the IP: fire completions whose service time has
// elapsed, then start the next transfer when free.
func (ip *IP) Tick(now sim.Cycle) {
	ip.firePending(now)
	if len(ip.queue) == 0 || now < ip.busyTil || now < ip.faultBusyTil {
		return
	}
	req := ip.queue[0]
	copy(ip.queue, ip.queue[1:])
	ip.queue = ip.queue[:len(ip.queue)-1]
	var cost sim.Cycle
	if req.formatted {
		cost = ip.fs.FormattedIO(req.words)
	} else {
		cost = ip.fs.UnformattedIO(req.words)
	}
	cost += ip.delayNext
	ip.delayNext = 0
	ip.busyTil = now + cost
	ip.BusyCycles += int64(cost)
	ip.WordsMoved += req.words
	ip.pendingDone = append(ip.pendingDone, doneAt{
		at: ip.busyTil,
		comp: xylem.IOCompletion{
			Submitted: req.submitted,
			Done:      ip.busyTil,
			Words:     req.words,
			Formatted: req.formatted,
		},
		f: req.onDone,
	})
}

// pendingDone tracking (fired from tick).
type doneAt struct {
	at   sim.Cycle
	comp xylem.IOCompletion
	f    func(xylem.IOCompletion)
}

// firePending invokes completions whose service time has arrived, in
// submission order, and attributes their wait from the handle.
func (ip *IP) firePending(now sim.Cycle) {
	kept := ip.pendingDone[:0]
	for _, d := range ip.pendingDone {
		if d.at <= now {
			ip.Completions++
			ip.WaitCycles += int64(d.comp.Wait())
			if d.f != nil {
				d.f(d.comp)
			}
		} else {
			kept = append(kept, d)
		}
	}
	ip.pendingDone = kept
}
