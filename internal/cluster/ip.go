package cluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xylem"
)

// IP models a cluster's interactive processors, which "perform
// input/output and various other tasks" in the Alliant FX/8 (the IPs and
// IP caches of the paper's Figure 2). An IP serves I/O requests
// sequentially at the Xylem file-system cost model's rates, so
// concurrent I/O from a cluster's CEs serializes — the property that
// makes I/O-heavy codes like BDNA and MG3D sensitive to their I/O
// volume regardless of processor count.
type IP struct {
	fs    *xylem.FS
	waker sim.Waker

	queue       []ioReq
	busyTil     sim.Cycle
	pendingDone []doneAt

	// Requests counts submissions; BusyCycles accumulates service time.
	Requests   int64
	BusyCycles int64
}

type ioReq struct {
	words     int64
	formatted bool
	onDone    func()
}

// NewIP returns an IP using the given file-system cost model (nil
// selects the default).
func NewIP(fs *xylem.FS) *IP {
	if fs == nil {
		fs = xylem.NewFS(xylem.DefaultFSConfig())
	}
	return &IP{fs: fs}
}

// AttachWaker implements sim.WakeSink: the engine hands the IP its own
// Handle at registration. An IP with no queue and no pending completion
// reports sim.Never, so the only stimulus that must wake it is Submit.
func (ip *IP) AttachWaker(w sim.Waker) { ip.waker = w }

// Submit enqueues an I/O transfer of words 64-bit words; onDone (may be
// nil) runs at the simulated time the transfer completes.
func (ip *IP) Submit(words int64, formatted bool, onDone func()) {
	if words < 0 {
		panic(fmt.Sprintf("cluster: negative I/O size %d", words))
	}
	ip.Requests++
	ip.queue = append(ip.queue, ioReq{words: words, formatted: formatted, onDone: onDone})
	if ip.waker != nil {
		ip.waker.Wake()
	}
}

// Pending reports queued plus in-service requests.
func (ip *IP) Pending() int { return len(ip.queue) }

// NextEvent implements sim.IdleComponent: the earliest pending
// completion, or the end of the current transfer if another is queued.
// Submissions arrive via Submit (external stimulus), so an IP with no
// queue and no pending completion reports Never. Completion times are
// included so a machine-wide fast-forward never jumps past an onDone
// callback.
func (ip *IP) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	for _, d := range ip.pendingDone {
		if d.at < next {
			next = d.at
		}
	}
	if len(ip.queue) > 0 && ip.busyTil < next {
		next = ip.busyTil
	}
	if next <= now {
		return now
	}
	return next
}

// Tick advances the IP: fire completions whose service time has
// elapsed, then start the next transfer when free.
func (ip *IP) Tick(now sim.Cycle) {
	ip.firePending(now)
	if len(ip.queue) == 0 || now < ip.busyTil {
		return
	}
	req := ip.queue[0]
	copy(ip.queue, ip.queue[1:])
	ip.queue = ip.queue[:len(ip.queue)-1]
	var cost sim.Cycle
	if req.formatted {
		cost = ip.fs.FormattedIO(req.words)
	} else {
		cost = ip.fs.UnformattedIO(req.words)
	}
	ip.busyTil = now + cost
	ip.BusyCycles += int64(cost)
	if req.onDone != nil {
		ip.pendingDone = append(ip.pendingDone, doneAt{at: ip.busyTil, f: req.onDone})
	}
}

// pendingDone tracking (fired from tick).
type doneAt struct {
	at sim.Cycle
	f  func()
}

// firePending invokes completions whose service time has arrived, in
// submission order.
func (ip *IP) firePending(now sim.Cycle) {
	kept := ip.pendingDone[:0]
	for _, d := range ip.pendingDone {
		if d.at <= now {
			d.f()
		} else {
			kept = append(kept, d)
		}
	}
	ip.pendingDone = kept
}
