package cluster

import "repro/internal/telemetry"

// RegisterMetrics publishes the IP's counters under prefix (for example
// "cluster0/ip").
func (ip *IP) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/requests", &ip.Requests)
	reg.Counter(prefix+"/busy_cycles", &ip.BusyCycles)
	reg.Gauge(prefix+"/pending", func() int64 { return int64(ip.Pending()) })
}
