package cluster

import "repro/internal/telemetry"

// RegisterMetrics publishes the IP's counters under prefix (for example
// "cluster0/ip").
func (ip *IP) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/requests", &ip.Requests)
	reg.Counter(prefix+"/busy_cycles", &ip.BusyCycles)
	reg.Counter(prefix+"/words_moved", &ip.WordsMoved)
	reg.Counter(prefix+"/completions", &ip.Completions)
	reg.Counter(prefix+"/wait_cycles", &ip.WaitCycles)
	reg.Counter(prefix+"/fault_busies", &ip.FaultBusies)
	reg.Counter(prefix+"/fault_delays", &ip.FaultDelays)
	reg.Gauge(prefix+"/pending", func() int64 { return int64(ip.Pending()) })
}

// RegisterMetrics publishes the cluster's concurrency-bus fault counters
// under prefix (for example "cluster0/bus").
func (cl *Cluster) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/fault_stalls", &cl.BusFaults)
	reg.Counter(prefix+"/stalled_ops", &cl.BusStalledOps)
	reg.Counter(prefix+"/stall_cycles", &cl.BusStallCycles)
}
