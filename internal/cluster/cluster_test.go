package cluster

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/ce"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/xylem"
)

// newCluster builds a bare cluster with CEs that have no network (only
// Compute ops are used here).
func newCluster(t *testing.T, nces int) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.New()
	cfg := DefaultConfig()
	cfg.CEs = nces
	ch := cache.New(cache.Config{CEs: nces})
	ces := make([]*ce.CE, nces)
	for i := range ces {
		ces[i] = ce.New(ce.DefaultConfig(), i, i, i, nil, ch, nil, nil)
		eng.Register("ce", ces[i])
	}
	return eng, New(cfg, 0, ch, ces)
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CEs != 8 {
		t.Fatalf("CEs = %d, want 8", cfg.CEs)
	}
	if cfg.SpreadCycles != sim.FromMicroseconds(3) {
		t.Fatalf("spread cost = %d cycles, want ~3 us", cfg.SpreadCycles)
	}
	if cfg.MemWords != 4<<20 {
		t.Fatalf("cluster memory = %d words, want 4M (32 MB)", cfg.MemWords)
	}
}

func TestNewValidatesCECount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched CE count accepted")
		}
	}()
	cfg := DefaultConfig()
	ch := cache.New(cache.Config{})
	New(cfg, 0, ch, []*ce.CE{})
}

func TestAllocExhaustion(t *testing.T) {
	_, cl := newCluster(t, 2)
	cl.Alloc(cl.Config().MemWords)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation accepted")
		}
	}()
	cl.Alloc(1)
}

func TestIdle(t *testing.T) {
	eng, cl := newCluster(t, 2)
	if !cl.Idle() {
		t.Fatal("fresh cluster not idle")
	}
	cl.CEs[0].SetProgram(isa.NewSeq(isa.NewCompute(5)))
	if cl.Idle() {
		t.Fatal("cluster idle with a running CE")
	}
	eng.Run(10)
	if !cl.Idle() {
		t.Fatal("cluster not idle after program end")
	}
}

// TestSpreadTiming: the gang programs start only after the spread cost
// has elapsed on the initiator.
func TestSpreadTiming(t *testing.T) {
	eng, cl := newCluster(t, 4)
	startedAt := make([]sim.Cycle, 4)
	progs := make([]isa.Program, 4)
	for i := range progs {
		op := isa.NewCompute(1)
		op.Do = func() { startedAt[i] = eng.Now() }
		progs[i] = isa.NewSeq(op)
	}
	cl.CEs[0].SetProgram(isa.NewSeq(cl.SpreadOp(progs)))
	if _, err := eng.RunUntil(cl.Idle, 1000); err != nil {
		t.Fatal(err)
	}
	for i, at := range startedAt {
		if at < cl.Config().SpreadCycles {
			t.Fatalf("CE %d ran at %d, before the %d-cycle spread completed", i, at, cl.Config().SpreadCycles)
		}
	}
}

func TestSpreadNilSlotsLeaveCEsIdle(t *testing.T) {
	eng, cl := newCluster(t, 4)
	ran := make([]bool, 4)
	progs := make([]isa.Program, 4)
	for _, i := range []int{1, 3} {
		op := isa.NewCompute(1)
		op.Do = func() { ran[i] = true }
		progs[i] = isa.NewSeq(op)
	}
	cl.CEs[0].SetProgram(isa.NewSeq(cl.SpreadOp(progs)))
	if _, err := eng.RunUntil(cl.Idle, 1000); err != nil {
		t.Fatal(err)
	}
	if ran[0] || ran[2] || !ran[1] || !ran[3] {
		t.Fatalf("nil-slot handling wrong: %v", ran)
	}
}

func TestSpreadWrongLengthPanics(t *testing.T) {
	_, cl := newCluster(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong program count accepted")
		}
	}()
	cl.SpreadOp(make([]isa.Program, 3))
}

// TestSelfScheduleLoadBalance: with unequal iteration costs, dynamic
// scheduling balances better than static — the paper's reason for
// offering both.
func TestSelfScheduleLoadBalance(t *testing.T) {
	run := func(dynamic bool) sim.Cycle {
		eng, cl := newCluster(t, 4)
		const n = 16
		body := func(iter int, g *isa.Gen) {
			// Iteration cost skewed: iterations 0..3 are 100x heavier,
			// landing on the same static CE.
			cost := sim.Cycle(10)
			if iter%4 == 0 {
				cost = 1000
			}
			g.Emit(isa.NewCompute(cost))
		}
		var progs []isa.Program
		if dynamic {
			progs = cl.SelfSchedule(n, body)
		} else {
			progs = cl.StaticSchedule(n, body)
		}
		cl.CEs[0].SetProgram(isa.NewSeq(cl.SpreadOp(progs)))
		at, err := eng.RunUntil(cl.Idle, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	static := run(false)
	dynamic := run(true)
	if dynamic >= static {
		t.Fatalf("self-scheduling (%d cycles) not better than static (%d) on skewed work", dynamic, static)
	}
}

func TestSelfScheduleClaimCost(t *testing.T) {
	eng, cl := newCluster(t, 1)
	const n = 10
	progs := cl.SelfSchedule(n, func(iter int, g *isa.Gen) {
		g.Emit(isa.NewCompute(1))
	})
	cl.CEs[0].SetProgram(isa.NewSeq(cl.SpreadOp(progs)))
	at, err := eng.RunUntil(cl.Idle, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Spread + n iterations x (claim + op transitions + body).
	minimum := cl.Config().SpreadCycles + sim.Cycle(n)*(cl.Config().ClaimCycles+1)
	if at < minimum {
		t.Fatalf("loop finished at %d, below the bus cost floor %d", at, minimum)
	}
}

func TestIPServesSequentially(t *testing.T) {
	eng := sim.New()
	ip := NewIP(nil)
	eng.Register("ip", ip)
	var done []sim.Cycle
	// Two unformatted transfers of 1000 words each (~0.6 us/word).
	for i := 0; i < 2; i++ {
		ip.Submit(eng.Now(), 1000, false, func(xylem.IOCompletion) { done = append(done, eng.Now()) })
	}
	if ip.Pending() != 2 {
		t.Fatalf("Pending = %d", ip.Pending())
	}
	if _, err := eng.RunUntil(func() bool { return len(done) == 2 }, 100000); err != nil {
		t.Fatal(err)
	}
	per := sim.FromMicroseconds(0.6) * 1000
	if done[0] < per || done[0] > per+5 {
		t.Fatalf("first transfer done at %d, want ~%d", done[0], per)
	}
	// Serialized: second completes about one service time later.
	if done[1] < done[0]+per-5 {
		t.Fatalf("transfers overlapped: %v", done)
	}
	if ip.Requests != 2 || ip.BusyCycles == 0 {
		t.Fatalf("counters: %d/%d", ip.Requests, ip.BusyCycles)
	}
}

func TestIPFormattedIsSlower(t *testing.T) {
	run := func(formatted bool) sim.Cycle {
		eng := sim.New()
		ip := NewIP(nil)
		eng.Register("ip", ip)
		var at sim.Cycle
		ip.Submit(eng.Now(), 500, formatted, func(xylem.IOCompletion) { at = eng.Now() })
		if _, err := eng.RunUntil(func() bool { return at > 0 }, 1000000); err != nil {
			t.Fatal(err)
		}
		return at
	}
	if f, u := run(true), run(false); f < 10*u {
		t.Fatalf("formatted (%d) not ~16x unformatted (%d)", f, u)
	}
}

func TestIPNegativeSizePanics(t *testing.T) {
	ip := NewIP(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("negative I/O accepted")
		}
	}()
	ip.Submit(0, -1, false, nil)
}
