// Package cluster assembles one Alliant FX/8 cluster: eight computational
// elements sharing an interleaved cache in front of cluster memory, tied
// together by the concurrency control bus.
//
// The concurrency bus supports Cedar's fast intra-cluster parallel-loop
// control: a single "concurrent start" instruction spreads the iterations
// of a parallel loop from one CE to all CEs in the cluster by
// broadcasting the program counter and setting up private stacks — the
// whole cluster is gang-scheduled, and the CEs then self-schedule
// iterations among themselves over the bus. Starting a loop this way
// costs a few microseconds, versus roughly 90 µs for a loop spread over
// the whole machine through global memory (the CDOALL/XDOALL asymmetry of
// Section 3.2 of the paper).
package cluster

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/ce"
	"repro/internal/isa"
	"repro/internal/sim"
)

// Config holds the cluster-level parameters.
type Config struct {
	// CEs is the processor count per cluster (8 in Cedar).
	CEs int
	// SpreadCycles is the concurrent-start cost: the time from the
	// initiating CE executing the start to all cluster CEs running the
	// loop (default ~3 µs = 18 cycles, the paper's "few microseconds").
	SpreadCycles sim.Cycle
	// ClaimCycles is the per-iteration self-scheduling cost over the
	// concurrency bus (default 2 cycles).
	ClaimCycles sim.Cycle
	// MemWords is the cluster-memory address-space size in words used by
	// the bump allocator (32 MB = 4 Mwords in Cedar).
	MemWords uint64
}

// DefaultConfig returns the as-built cluster parameters.
func DefaultConfig() Config {
	return Config{
		CEs:          8,
		SpreadCycles: sim.FromMicroseconds(3),
		ClaimCycles:  2,
		MemWords:     4 << 20,
	}
}

// Cluster is one Alliant FX/8.
type Cluster struct {
	cfg Config
	// ID is the cluster index within the machine.
	ID    int
	Cache *cache.Cache
	CEs   []*ce.CE
	// IPs is the cluster's interactive-processor I/O path (set by the
	// machine assembly; may be nil in bare test rigs).
	IPs *IP

	allocNext uint64

	// busStallUntil is the concurrency bus's fault stall window: claim
	// and concurrent-start operations starting before it pay the
	// remaining window on top of their normal cost (injected via
	// FaultBusStall). Service is deferred, never lost — an op caught in
	// the window simply takes longer, so no recovery protocol is needed.
	busStallUntil sim.Cycle

	// Bus fault counters.
	BusFaults      int64 // injected bus stall windows
	BusStalledOps  int64 // bus operations stretched by a window
	BusStallCycles int64 // total extra cycles charged to stretched ops
}

// New assembles a cluster around pre-built CEs and their shared cache.
func New(cfg Config, id int, ch *cache.Cache, ces []*ce.CE) *Cluster {
	if len(ces) != cfg.CEs {
		panic(fmt.Sprintf("cluster %d: %d CEs for a %d-CE configuration", id, len(ces), cfg.CEs))
	}
	return &Cluster{cfg: cfg, ID: id, Cache: ch, CEs: ces}
}

// Config returns the cluster's configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

// Alloc reserves n words of cluster-memory address space and returns the
// base word address. Cluster memory is private to the cluster: addresses
// are meaningful only to this cluster's cache.
func (cl *Cluster) Alloc(n uint64) uint64 {
	if cl.allocNext+n > cl.cfg.MemWords {
		panic(fmt.Sprintf("cluster %d: out of cluster memory (%d of %d words)", cl.ID, cl.allocNext, cl.cfg.MemWords))
	}
	base := cl.allocNext
	cl.allocNext += n
	return base
}

// AllocReset releases all cluster-memory allocations (between workloads).
func (cl *Cluster) AllocReset() { cl.allocNext = 0 }

// Idle reports whether every CE in the cluster is idle.
func (cl *Cluster) Idle() bool {
	for _, c := range cl.CEs {
		if !c.Idle() {
			return false
		}
	}
	return true
}

// FaultBusStall stalls the concurrency bus for window cycles starting
// at now: claim and concurrent-start operations that begin inside the
// window are stretched by its remainder (the injected analogue of bus
// arbitration being monopolized by diagnostics traffic). Overlapping
// injections extend the window, never shrink it.
func (cl *Cluster) FaultBusStall(now sim.Cycle, window sim.Cycle) {
	if until := now + window; until > cl.busStallUntil {
		cl.busStallUntil = until
	}
	cl.BusFaults++
}

// busExtraCost is the isa.Op.ExtraCost hook attached to bus operations:
// evaluated once at the op's start cycle, it charges the remainder of
// any active stall window. Start cycles are CE tick slots, identical in
// every engine mode, and a cluster's CEs all tick inside the cluster's
// own scheduling domain in parallel mode, so the counter updates here
// are domain-local and need no sim.Boundary deferral.
func (cl *Cluster) busExtraCost(now sim.Cycle) sim.Cycle {
	if now >= cl.busStallUntil {
		return 0
	}
	extra := cl.busStallUntil - now
	cl.BusStalledOps++
	cl.BusStallCycles += int64(extra)
	return extra
}

// SpreadOp returns the micro-operation an initiating CE executes to
// perform a concurrent start: it occupies the initiator for the bus
// spread cost and then assigns each cluster CE its program. progs[i] may
// be nil to leave CE i idle (the initiator too, if its slot is nil). The
// broadcast program counter ends every CE's current instruction stream —
// including the initiator's, so SpreadOp is normally the last operation
// of the stream that executes it; any unexecuted remainder is discarded.
func (cl *Cluster) SpreadOp(progs []isa.Program) *isa.Op {
	if len(progs) != len(cl.CEs) {
		panic(fmt.Sprintf("cluster %d: %d programs for %d CEs", cl.ID, len(progs), len(cl.CEs)))
	}
	op := isa.NewCompute(cl.cfg.SpreadCycles)
	op.ExtraCost = cl.busExtraCost
	op.Do = func() {
		for i, p := range progs {
			if p == nil {
				continue
			}
			cl.CEs[i].ForceProgram(p)
		}
	}
	return op
}

// SelfSchedule builds the per-CE programs of a bus-self-scheduled
// parallel loop over iterations [0, n): each CE repeatedly claims the
// next iteration over the concurrency bus (ClaimCycles) and runs the
// operations body(iter) emits. The returned slice is suitable for
// SpreadOp. The claim counter is bus state, not memory: claims are
// instantaneous at the simulation level and serialized by the
// deterministic engine.
func (cl *Cluster) SelfSchedule(n int, body func(iter int, g *isa.Gen)) []isa.Program {
	next := 0
	progs := make([]isa.Program, len(cl.CEs))
	for i := range progs {
		progs[i] = isa.NewGen(func(g *isa.Gen) bool {
			if next >= n {
				return false
			}
			iter := next
			next++
			claim := isa.NewCompute(cl.cfg.ClaimCycles)
			claim.ExtraCost = cl.busExtraCost
			g.Emit(claim)
			body(iter, g)
			return true
		})
	}
	return progs
}

// StaticSchedule builds per-CE programs for a statically blocked parallel
// loop over [0, n): CE i runs iterations i, i+P, i+2P, ... with no
// per-iteration claim cost (the concurrency bus computes the next
// iteration in the fork hardware).
func (cl *Cluster) StaticSchedule(n int, body func(iter int, g *isa.Gen)) []isa.Program {
	progs := make([]isa.Program, len(cl.CEs))
	p := len(cl.CEs)
	for i := range progs {
		start := i
		iter := start
		progs[i] = isa.NewGen(func(g *isa.Gen) bool {
			if iter >= n {
				return false
			}
			body(iter, g)
			iter += p
			return true
		})
	}
	return progs
}
