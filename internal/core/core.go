// Package core assembles the Cedar machine — the paper's primary
// contribution: a cluster-based shared-memory multiprocessor in which
// four slightly modified Alliant FX/8 clusters (eight CEs each) are
// connected through two unidirectional multistage shuffle-exchange
// networks to a globally shared memory with per-module synchronization
// processors, with a data prefetch unit per CE.
//
// A Machine owns the simulation engine and every component, wired in the
// paper's topology:
//
//	CE/PFU --> forward network --> global memory modules
//	CE/PFU <-- reverse network <-- (replies, prefetch data, sync results)
//	CE <-> shared cluster cache <-> cluster memory   (within a cluster)
//
// Configurations of one to four clusters (8 to 32 CEs) reproduce the
// paper's measurement points; the parameters default to the as-built
// machine and every one of them can be varied for ablation studies.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/ce"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/gmem"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/xylem"
)

// Config describes a Cedar machine.
type Config struct {
	// Clusters is the cluster count (Cedar: 4; the paper also measures 1,
	// 2 and 3 cluster configurations).
	Clusters int
	// Cluster holds the per-cluster parameters (CEs per cluster, bus
	// costs, cluster-memory size).
	Cluster cluster.Config
	// CE holds the processor timing parameters.
	CE ce.Config
	// Cache holds the shared-cache parameters.
	Cache cache.Config
	// Global holds the global-memory parameters.
	Global gmem.Config
	// NetRadix and NetQueueWords configure both networks (8x8 crossbars
	// with 2-word port queues in Cedar). Port count is derived: the
	// smallest power of NetRadix covering max(CEs, memory modules).
	NetRadix      int
	NetQueueWords int
	// PageWords is the virtual-memory page size in words (4 KB = 512);
	// PageCrossCycles the prefetch-unit page-crossing assist cost.
	PageWords       int
	PageCrossCycles sim.Cycle
	// IdealNetwork replaces both omega networks with contentionless
	// fabrics of the same unloaded latency — the ablation that tests the
	// paper's claim that the measured degradation "is not inherent in
	// the type of network used" [Turn93].
	IdealNetwork bool
	// EngineMode selects the engine path (sim.ModeWakeCached,
	// sim.ModeQuiescent or sim.ModeNaive). Results are bit-identical in
	// every mode (the determinism tests assert it); the slower paths
	// exist as references for those tests and for benchmarking the fast
	// path's wall-clock win. The zero value is the wake-cached default.
	EngineMode sim.EngineMode
	// NaiveEngine forces sim.ModeNaive regardless of EngineMode; kept
	// for callers predating EngineMode.
	NaiveEngine bool
	// ParWorkers is the phase-2 goroutine budget when EngineMode is
	// sim.ModeWakeCachedParallel (0 picks min(NumCPU, Clusters); see
	// sim.ConfigureParallel). Ignored in the other modes.
	ParWorkers int
	// Fault configures deterministic fault injection and the recovery
	// knobs (request timeouts, retry budgets, gang rescheduling). The
	// zero value disables the subsystem entirely: no injector or
	// rescheduler is built and the machine is bit-identical to a build
	// predating the fault layer.
	Fault fault.Config
}

// DefaultConfig returns the as-built, full four-cluster Cedar.
func DefaultConfig() Config {
	return Config{
		Clusters:        4,
		Cluster:         cluster.DefaultConfig(),
		CE:              ce.DefaultConfig(),
		Cache:           cache.Default(),
		Global:          gmem.Default(),
		NetRadix:        8,
		NetQueueWords:   network.DefaultQueueWords,
		PageWords:       prefetch.DefaultPageWords,
		PageCrossCycles: prefetch.DefaultPageCrossCycles,
	}
}

// ConfigClusters returns the default configuration scaled to n clusters.
func ConfigClusters(n int) Config {
	cfg := DefaultConfig()
	cfg.Clusters = n
	return cfg
}

// ScaledConfig returns a scaled-up Cedar-like system of n clusters: the
// memory-module count grows with the processor count (one module per
// CE, preserving the as-built 24 MB/s-per-processor global bandwidth)
// and the networks deepen as the port count demands — at 8 or more
// clusters the 8x8 crossbars need three stages instead of two, raising
// the minimal round-trip latency. This is the paper's closing question
// (Practical Parallelism Test 5: technology and scalable
// reimplementability), which it left to future simulation studies.
func ScaledConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.Clusters = n
	ces := n * cfg.Cluster.CEs
	cfg.Global.Modules = ces
	cfg.Global.Words = ces * (2 << 20 / 8) // keep 2 MB of global memory per CE
	return cfg
}

// Machine is an assembled Cedar.
type Machine struct {
	cfg Config

	Eng      *sim.Engine
	Fwd      *network.Network
	Rev      *network.Network
	Global   *gmem.Global
	Clusters []*cluster.Cluster

	// FaultInj and Resched are non-nil only when cfg.Fault is enabled.
	FaultInj *fault.Injector
	Resched  *xylem.Rescheduler

	// IOWait is Xylem's blocked-on-I/O table: every CE's isa.IO
	// operations park here in front of the issuing cluster's IP.
	IOWait *xylem.IOWait

	ces []*ce.CE

	// reg is the lazily built metrics registry (see Registry in
	// telemetry.go); a machine that never asks for it pays nothing.
	reg *telemetry.Registry

	globalAllocNext uint64
}

// New assembles and wires a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Clusters <= 0 {
		return nil, fmt.Errorf("core: %d clusters", cfg.Clusters)
	}
	if cfg.Cluster.CEs <= 0 {
		return nil, fmt.Errorf("core: %d CEs per cluster", cfg.Cluster.CEs)
	}
	nces := cfg.Clusters * cfg.Cluster.CEs
	if cfg.NetRadix < 2 {
		return nil, fmt.Errorf("core: network radix %d", cfg.NetRadix)
	}
	need := nces
	if cfg.Global.Modules > need {
		need = cfg.Global.Modules
	}
	ports := cfg.NetRadix
	for ports < need {
		ports *= cfg.NetRadix
	}

	eng := sim.New()
	if cfg.NaiveEngine {
		eng.SetMode(sim.ModeNaive)
	} else {
		eng.SetMode(cfg.EngineMode)
	}
	parallel := !cfg.NaiveEngine && cfg.EngineMode == sim.ModeWakeCachedParallel
	if parallel && cfg.IdealNetwork {
		// The ideal fabric keeps every in-flight packet in one shared
		// slice, so it cannot defer cross-cluster offers the way the real
		// network's per-port entry queues can.
		return nil, fmt.Errorf("core: the parallel engine requires the real network (IdealNetwork is incompatible)")
	}
	mkNet := func(name string) (*network.Network, error) {
		if cfg.IdealNetwork {
			return network.NewIdeal(name, ports, cfg.NetRadix)
		}
		return network.New(name, ports, cfg.NetRadix, cfg.NetQueueWords)
	}
	fwd, err := mkNet("forward")
	if err != nil {
		return nil, err
	}
	rev, err := mkNet("reverse")
	if err != nil {
		return nil, err
	}
	g, err := gmem.New(cfg.Global, rev)
	if err != nil {
		return nil, err
	}
	if cfg.Fault.Enabled() {
		// With faults possible, reads must be able to reissue: push the
		// request-layer recovery knobs into every CE (and, below, every
		// PFU), and build the Xylem rescheduler that catches programs
		// surrendered by check-stopped CEs.
		cfg.CE.ReadTimeout = cfg.Fault.ReadTimeout
		cfg.CE.MaxRetries = cfg.Fault.MaxRetries
	}
	m := &Machine{cfg: cfg, Eng: eng, Fwd: fwd, Rev: rev, Global: g, IOWait: xylem.NewIOWaitSharded(cfg.Clusters)}
	if cfg.Fault.Enabled() {
		m.Resched = xylem.NewRescheduler(cfg.Fault.RescheduleLatency)
	}
	// Under the parallel engine a check-stopped CE surrenders its program
	// from a phase-2 worker goroutine; the buffer defers the hand-off to
	// the rendezvous, where cluster order reproduces the sequential
	// arrival order.
	var surBuf *surrenderBuffer
	if parallel && m.Resched != nil {
		surBuf = &surrenderBuffer{r: m.Resched, bufs: make([][]surrenderRec, cfg.Clusters)}
	}

	// Global memory modules sink the forward network; the module index
	// is the port.
	for mod := 0; mod < g.Modules(); mod++ {
		fwd.SetSink(mod, g.Module(mod))
	}
	// Unused forward ports reject deliveries loudly.
	for p := g.Modules(); p < ports; p++ {
		port := p
		fwd.SetSink(port, network.SinkFunc(func(*network.Packet) bool {
			panic(fmt.Sprintf("core: request delivered to unused forward port %d", port))
		}))
	}

	route := func(addr uint64) int { return g.ModuleOf(addr) }

	// Build clusters, CEs and PFUs. CE's machine-wide index is its
	// network port.
	for cl := 0; cl < cfg.Clusters; cl++ {
		cacheCfg := cfg.Cache
		cacheCfg.CEs = cfg.Cluster.CEs
		ch := cache.New(cacheCfg)
		// The cluster's interactive processor is built before its CEs so
		// each CE's I/O path can park requests in front of it.
		ip := cluster.NewIP(nil)
		ces := make([]*ce.CE, cfg.Cluster.CEs)
		for i := 0; i < cfg.Cluster.CEs; i++ {
			id := cl*cfg.Cluster.CEs + i
			u := prefetch.New(fwd, id, cfg.PageWords, cfg.PageCrossCycles)
			u.SetRouter(route)
			if cfg.Fault.Enabled() {
				u.SetTimeout(cfg.Fault.ReadTimeout, cfg.Fault.MaxRetries)
			}
			c := ce.New(cfg.CE, id, id, i, fwd, ch, u, route)
			c.SetIOPath(ceIOPath{w: m.IOWait, ip: ip, cl: cl})
			if m.Resched != nil {
				clIdx := cl
				c.OnSurrender = func(p isa.Program) {
					if surBuf != nil && surBuf.on {
						surBuf.bufs[clIdx] = append(surBuf.bufs[clIdx], surrenderRec{now: eng.Now(), prog: p})
						return
					}
					m.Resched.Surrender(eng.Now(), clIdx, p)
				}
			}
			ces[i] = c
			m.ces = append(m.ces, c)
			rev.SetSink(id, network.SinkFunc(func(p *network.Packet) bool {
				return c.Deliver(eng.Now(), p)
			}))
		}
		clu := cluster.New(cfg.Cluster, cl, ch, ces)
		clu.IPs = ip
		m.Clusters = append(m.Clusters, clu)
		if m.Resched != nil {
			targets := make([]xylem.GangTarget, len(ces))
			for i, c := range ces {
				targets[i] = c
			}
			m.Resched.AddGroup(targets...)
		}
	}
	for p := nces; p < ports; p++ {
		port := p
		rev.SetSink(port, network.SinkFunc(func(*network.Packet) bool {
			panic(fmt.Sprintf("core: reply delivered to unused reverse port %d", port))
		}))
	}

	if cfg.Fault.Enabled() {
		var mods []*gmem.Module
		for mod := 0; mod < g.Modules(); mod++ {
			mods = append(mods, g.Module(mod))
		}
		stoppable := make([]fault.StoppableCE, len(m.ces))
		for i, c := range m.ces {
			stoppable[i] = c
		}
		faultIPs := make([]fault.FaultableIP, len(m.Clusters))
		faultCaches := make([]fault.FaultableCache, len(m.Clusters))
		faultBuses := make([]fault.FaultableBus, len(m.Clusters))
		for i, clu := range m.Clusters {
			faultIPs[i] = clu.IPs
			faultCaches[i] = clu.Cache
			faultBuses[i] = clu
		}
		// The cache and bus hooks are written from the injector's pre-band
		// tick slot (before the parallel fork) and read by domain-owned
		// components after it, so the fork's happens-before edge covers
		// them with no sim.Boundary deferral.
		m.FaultInj = fault.NewInjector(cfg.Fault, fwd, rev, mods, stoppable, faultIPs, faultCaches, faultBuses)
	}

	// Tick order: CEs, prefetch units, forward network, memory modules,
	// reverse network. A CE can fire its PFU and have the first request
	// enter the forward network in the same cycle; replies injected by a
	// module this cycle start their reverse trip this cycle.
	//
	// The fault injector, when present, registers FIRST: its tick slot
	// precedes every architected component, so a fault window opened at
	// cycle t is visible to its target's own tick at t in every engine
	// mode — the property that keeps fault-injected runs mode-identical.
	// The rescheduler follows it, ahead of the CEs, so a ready task can
	// be redispatched at the start of the cycle it becomes due.
	if m.FaultInj != nil {
		m.Eng.Register("fault", m.FaultInj)
		m.Eng.Register("resched", m.Resched)
	}
	// The CE/PFU/IP handles feed the parallel partition: domain cl is
	// cluster cl's CEs, PFUs and IP, and because the three groups are
	// registered back to back their union is one contiguous band.
	domains := make([][]sim.Handle, cfg.Clusters)
	for _, c := range m.ces {
		h := m.Eng.Register(fmt.Sprintf("ce%d", c.ID), c)
		domains[c.ID/cfg.Cluster.CEs] = append(domains[c.ID/cfg.Cluster.CEs], h)
	}
	for _, c := range m.ces {
		h := m.Eng.Register(fmt.Sprintf("pfu%d", c.ID), c.PFU())
		domains[c.ID/cfg.Cluster.CEs] = append(domains[c.ID/cfg.Cluster.CEs], h)
	}
	for _, clu := range m.Clusters {
		h := m.Eng.Register(fmt.Sprintf("ip%d", clu.ID), clu.IPs)
		domains[clu.ID] = append(domains[clu.ID], h)
	}
	// The park table never ticks; it is registered so a deadline hit
	// with programs still blocked on I/O names them in the diagnostics.
	m.Eng.Register("xylem/io", m.IOWait)
	m.Eng.Register("fwd", fwd)
	for mod := 0; mod < g.Modules(); mod++ {
		m.Eng.Register(fmt.Sprintf("gmod%d", mod), g.Module(mod))
	}
	m.Eng.Register("rev", rev)
	if parallel {
		// The forward network is the only shared structure a domain writes
		// during phase 2 (replies come back requester-port-only, so the
		// reverse network is offered to by the memory modules alone, in
		// phase 3); the surrender buffer joins it when faults are on.
		boundaries := []sim.Boundary{fwd}
		if surBuf != nil {
			boundaries = append(boundaries, surBuf)
		}
		if err := eng.ConfigureParallel(domains, boundaries, cfg.ParWorkers); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// surrenderRec is one buffered program hand-off: the cycle the CE
// check-stopped and the program it gave up.
type surrenderRec struct {
	now  sim.Cycle
	prog isa.Program
}

// surrenderBuffer defers CE.OnSurrender calls made during the parallel
// engine's phase 2 (sim.Boundary). Replay at the rendezvous walks the
// clusters in index order — the CEs' registration order — so the
// rescheduler observes surrenders in exactly the sequence the
// sequential engine would have delivered them. The rescheduler ticks
// before the CEs either way, so it acts on a cycle-t surrender at t+1
// in both engines.
type surrenderBuffer struct {
	r    *xylem.Rescheduler
	bufs [][]surrenderRec
	on   bool
}

func (b *surrenderBuffer) BeginConcurrent() { b.on = true }

func (b *surrenderBuffer) CommitConcurrent() {
	b.on = false
	for cl := range b.bufs {
		for _, rec := range b.bufs[cl] {
			b.r.Surrender(rec.now, cl, rec.prog)
		}
		b.bufs[cl] = b.bufs[cl][:0]
	}
}

// ceIOPath routes a CE's isa.IO operations into Xylem's park table in
// front of the issuing cluster's interactive processor. It is the
// machine-assembly glue satisfying ce.IOPath, so the ce package needs no
// cluster dependency.
type ceIOPath struct {
	w  *xylem.IOWait
	ip *cluster.IP
	cl int
}

func (p ceIOPath) SubmitIO(now sim.Cycle, words int64, formatted bool, label string, onDone func(xylem.IOCompletion)) {
	p.w.ParkAt(p.cl, now, p.ip, words, formatted, label, onDone)
}

// MustNew is New, panicking on configuration errors.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// CEs returns all computational elements in machine order (cluster 0's
// CEs first).
func (m *Machine) CEs() []*ce.CE { return m.ces }

// CE returns the CE with machine-wide index id.
func (m *Machine) CE(id int) *ce.CE { return m.ces[id] }

// NumCEs returns the total processor count.
func (m *Machine) NumCEs() int { return len(m.ces) }

// AllocGlobal reserves n words of global memory and returns the base word
// address (a bump allocator standing in for Xylem's global heap).
func (m *Machine) AllocGlobal(n uint64) uint64 {
	if m.globalAllocNext+n > uint64(m.Global.Words()) {
		panic(fmt.Sprintf("core: out of global memory (%d of %d words)", m.globalAllocNext, m.Global.Words()))
	}
	base := m.globalAllocNext
	m.globalAllocNext += n
	return base
}

// AllocGlobalReset releases all global allocations (between workloads).
func (m *Machine) AllocGlobalReset() { m.globalAllocNext = 0 }

// Idle reports whether every CE is idle and both networks are drained.
// A check-stopped CE is not idle (ce.Idle is false until repair), and
// neither is the machine while a surrendered program awaits
// redispatch — both guards keep RunUntilIdle honest under fault
// injection.
func (m *Machine) Idle() bool {
	for _, c := range m.ces {
		if !c.Idle() {
			return false
		}
	}
	if m.Resched != nil && m.Resched.Pending() > 0 {
		return false
	}
	return m.Fwd.InFlight() == 0 && m.Rev.InFlight() == 0
}

// RunUntilIdle advances the machine until Idle, returning the cycle at
// which it quiesced.
func (m *Machine) RunUntilIdle(max sim.Cycle) (sim.Cycle, error) {
	return m.Eng.RunUntil(m.Idle, max)
}

// Dispatch assigns a program to CE id (it must be idle).
func (m *Machine) Dispatch(id int, p isa.Program) { m.ces[id].SetProgram(p) }

// TotalFlops sums the floating-point operations performed by all CEs.
func (m *Machine) TotalFlops() int64 {
	var total int64
	for _, c := range m.ces {
		total += c.Flops
	}
	return total
}

// MFLOPS converts a flop count over a cycle span to the paper's rate
// metric (millions of floating-point operations per second of simulated
// time).
func MFLOPS(flops int64, cycles sim.Cycle) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(flops) / cycles.Seconds() / 1e6
}
