package core_test

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
)

// Example builds a one-cluster Cedar, runs one global vector operation
// with prefetch on a single CE, and reports the flop accounting — the
// minimal end-to-end use of the machine.
func Example() {
	cfg := core.ConfigClusters(1)
	cfg.Global.Words = 1 << 12
	m, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	addr := isa.Addr{Space: isa.Global, Word: 0}
	m.Dispatch(0, isa.NewSeq(
		isa.NewPrefetch(addr, 64, 1),
		isa.NewVectorLoad(addr, 64, 1, 2, true),
	))
	if _, err := m.RunUntilIdle(10_000); err != nil {
		panic(err)
	}
	fmt.Printf("flops: %d\n", m.TotalFlops())
	fmt.Printf("requests served: %d\n", m.Fwd.Delivered)
	// Output:
	// flops: 128
	// requests served: 64
}

// ExampleMachine_Topology prints the machine's wiring, the programmatic
// form of the paper's Figures 1 and 2.
func ExampleMachine_Topology() {
	cfg := core.ConfigClusters(1)
	cfg.Global.Words = 1 << 12
	m := core.MustNew(cfg)
	fmt.Println(strings.SplitN(m.Topology(), "\n", 2)[0])
	// Output:
	// Cedar: 1 clusters x 8 CEs = 8 processors @ 170ns cycle
}
