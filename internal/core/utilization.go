package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Utilization summarizes what the machine's units did over a time span —
// the software side of the paper's performance-monitoring story.
type Utilization struct {
	Cycles sim.Cycle
	// CEBusy is the mean fraction of cycles the CEs were neither idle
	// nor stalled; CEStallMem/CEStallNet the mean stall fractions.
	CEBusy, CEStallMem, CEStallNet float64
	// ModuleBusy is the mean memory-module service utilization.
	ModuleBusy float64
	// FwdWords / RevWords are the words injected into each network.
	FwdWords, RevWords int64
	// Flops is the floating-point work performed.
	Flops int64
}

// Utilization computes the report for the machine's lifetime so far.
func (m *Machine) Utilization() Utilization {
	u := Utilization{Cycles: m.Eng.Now(), Flops: m.TotalFlops()}
	if u.Cycles == 0 {
		return u
	}
	var idle, stallMem, stallNet int64
	for _, c := range m.ces {
		idle += c.IdleCycles
		stallMem += c.StallMem
		stallNet += c.StallNet
	}
	total := float64(int64(u.Cycles) * int64(len(m.ces)))
	u.CEStallMem = float64(stallMem) / total
	u.CEStallNet = float64(stallNet) / total
	u.CEBusy = 1 - float64(idle)/total - u.CEStallMem - u.CEStallNet
	if u.CEBusy < 0 {
		u.CEBusy = 0
	}
	var busy int64
	for i := 0; i < m.Global.Modules(); i++ {
		busy += m.Global.Module(i).BusyCycles
	}
	u.ModuleBusy = float64(busy) / (float64(u.Cycles) * float64(m.Global.Modules()))
	u.FwdWords = m.Fwd.WordsIn
	u.RevWords = m.Rev.WordsIn
	return u
}

// String renders the report.
func (u Utilization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "over %d cycles (%.2f ms simulated):\n", u.Cycles, u.Cycles.Seconds()*1e3)
	fmt.Fprintf(&b, "  CEs: %.0f%% busy, %.0f%% memory stall, %.0f%% network stall\n",
		u.CEBusy*100, u.CEStallMem*100, u.CEStallNet*100)
	fmt.Fprintf(&b, "  global memory modules: %.0f%% utilized\n", u.ModuleBusy*100)
	fmt.Fprintf(&b, "  network words: %d forward, %d reverse\n", u.FwdWords, u.RevWords)
	fmt.Fprintf(&b, "  flops: %d\n", u.Flops)
	return b.String()
}
