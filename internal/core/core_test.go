package core

import (
	"strings"
	"testing"

	"repro/internal/gmem"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/sim"
)

// testConfig returns a fast-to-simulate machine: full topology, small
// global memory.
func testConfig(clusters int) Config {
	cfg := ConfigClusters(clusters)
	cfg.Global.Words = 1 << 16
	return cfg
}

func TestMachineTopology(t *testing.T) {
	for clusters := 1; clusters <= 4; clusters++ {
		m := MustNew(testConfig(clusters))
		if m.NumCEs() != clusters*8 {
			t.Fatalf("%d clusters: %d CEs, want %d", clusters, m.NumCEs(), clusters*8)
		}
		if m.Fwd.Ports() != 64 || m.Rev.Ports() != 64 {
			t.Fatalf("network ports %d/%d, want 64 (two stages of 8x8 crossbars)",
				m.Fwd.Ports(), m.Rev.Ports())
		}
		if m.Fwd.Stages() != 2 {
			t.Fatalf("forward network has %d stages, want 2", m.Fwd.Stages())
		}
		if m.Global.Modules() != 32 {
			t.Fatalf("%d memory modules, want 32", m.Global.Modules())
		}
		if len(m.Clusters) != clusters {
			t.Fatalf("cluster count %d", len(m.Clusters))
		}
		for i, cl := range m.Clusters {
			if len(cl.CEs) != 8 {
				t.Fatalf("cluster %d has %d CEs", i, len(cl.CEs))
			}
		}
		if !m.Idle() {
			t.Fatal("fresh machine not idle")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig(0)
	if _, err := New(bad); err == nil {
		t.Fatal("accepted 0 clusters")
	}
	bad = testConfig(1)
	bad.Cluster.CEs = 0
	if _, err := New(bad); err == nil {
		t.Fatal("accepted 0 CEs")
	}
	bad = testConfig(1)
	bad.NetRadix = 1
	if _, err := New(bad); err == nil {
		t.Fatal("accepted radix 1")
	}
}

func TestComputeOpTiming(t *testing.T) {
	m := MustNew(testConfig(1))
	var doneAt sim.Cycle = -1
	op := isa.NewCompute(100)
	op.OnDone = func(int64, bool) { doneAt = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(op))
	if _, err := m.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if doneAt != 100 {
		t.Fatalf("Compute(100) dispatched at 0 completed at %d, want 100", doneAt)
	}
}

// TestScalarGlobalLoadLatency pins the paper's 13-cycle effective global
// latency: 3 forward transit + 2 service + 3 reverse + 5 CE transfer.
func TestScalarGlobalLoadLatency(t *testing.T) {
	m := MustNew(testConfig(1))
	var doneAt sim.Cycle = -1
	op := isa.NewScalarLoad(isa.Addr{Space: isa.Global, Word: 5})
	op.OnDone = func(int64, bool) { doneAt = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(op))
	if _, err := m.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if doneAt != 13 {
		t.Fatalf("scalar global load completed at %d, want 13", doneAt)
	}
}

func TestScalarClusterAccess(t *testing.T) {
	m := MustNew(testConfig(1))
	var first, second sim.Cycle
	op1 := isa.NewScalarLoad(isa.Addr{Space: isa.Cluster, Word: 10})
	op1.OnDone = func(int64, bool) { first = m.Eng.Now() }
	op2 := isa.NewScalarLoad(isa.Addr{Space: isa.Cluster, Word: 11})
	op2.OnDone = func(int64, bool) { second = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(op1, op2))
	if _, err := m.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if first < 7 || first > 10 {
		t.Fatalf("cold cluster load at %d, want ~8 (cache fill)", first)
	}
	if second-first > 3 {
		t.Fatalf("warm cluster load took %d more cycles, want hit (<=3)", second-first)
	}
}

func TestScalarStoreIsPosted(t *testing.T) {
	m := MustNew(testConfig(1))
	var doneAt sim.Cycle = -1
	op := isa.NewScalarStore(isa.Addr{Space: isa.Global, Word: 9})
	op.OnDone = func(int64, bool) { doneAt = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(op))
	if _, err := m.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if doneAt > 3 {
		t.Fatalf("posted store occupied the CE until %d", doneAt)
	}
}

// TestVectorGlobalNoPrefetchRate: with 2 outstanding requests and 13-cycle
// latency a global vector load sustains 2 words per 13 cycles — at 2
// chained flops per word this is the 1.8 MFLOPS/CE behind Table 1's
// GM/no-pref row (14.5 MFLOPS on 8 CEs).
func TestVectorGlobalNoPrefetchRate(t *testing.T) {
	m := MustNew(testConfig(1))
	const n = 128
	var doneAt sim.Cycle
	op := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, n, 1, 2, false)
	op.OnDone = func(int64, bool) { doneAt = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(op))
	if _, err := m.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	mflops := MFLOPS(m.CE(0).Flops, doneAt)
	if mflops < 1.6 || mflops > 2.0 {
		t.Fatalf("GM/no-pref single CE = %.2f MFLOPS, want ~1.8", mflops)
	}
}

// TestVectorPrefetchSpeedup: the same access with the PFU masks the
// latency; the single-CE speedup should be >= 3x (Table 1 shows 3.5 on a
// cluster).
func TestVectorPrefetchSpeedup(t *testing.T) {
	run := func(usePF bool) sim.Cycle {
		m := MustNew(testConfig(1))
		const n = 256
		var doneAt sim.Cycle
		seq := isa.NewSeq()
		if usePF {
			seq.Add(isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: 0}, n, 1))
		}
		op := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, n, 1, 2, usePF)
		op.OnDone = func(int64, bool) { doneAt = m.Eng.Now() }
		seq.Add(op)
		m.Dispatch(0, seq)
		if _, err := m.RunUntilIdle(20000); err != nil {
			t.Fatal(err)
		}
		return doneAt
	}
	noPF := run(false)
	withPF := run(true)
	speedup := float64(noPF) / float64(withPF)
	if speedup < 3.0 {
		t.Fatalf("prefetch speedup = %.2f (no-pref %d, pref %d cycles), want >= 3",
			speedup, noPF, withPF)
	}
}

// TestVectorClusterWarmRate: a warm cluster-cache stream approaches one
// word per cycle — 2 flops/word gives ~11.8 MFLOPS, the CE peak.
func TestVectorClusterWarmRate(t *testing.T) {
	m := MustNew(testConfig(1))
	const n = 256
	var start, end sim.Cycle
	warm := isa.NewVectorLoad(isa.Addr{Space: isa.Cluster, Word: 0}, n, 1, 0, false)
	warm.OnDone = func(int64, bool) { start = m.Eng.Now() }
	hot := isa.NewVectorLoad(isa.Addr{Space: isa.Cluster, Word: 0}, n, 1, 2, false)
	hot.OnDone = func(int64, bool) { end = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(warm, hot))
	if _, err := m.RunUntilIdle(20000); err != nil {
		t.Fatal(err)
	}
	cycles := end - start
	rate := float64(n) / float64(cycles)
	if rate < 0.8 {
		t.Fatalf("warm cluster stream = %.2f words/cycle over %d cycles, want ~1", rate, cycles)
	}
	mflops := MFLOPS(2*n, cycles)
	if mflops < 9.0 || mflops > 12.0 {
		t.Fatalf("warm cluster stream = %.1f MFLOPS, want ~10-11.8", mflops)
	}
}

func TestVectorStorePosted(t *testing.T) {
	m := MustNew(testConfig(1))
	const n = 64
	var doneAt sim.Cycle
	op := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: 0}, n, 1, 0)
	op.OnDone = func(int64, bool) { doneAt = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(op))
	if _, err := m.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	// Issue-limited, not latency-limited: ~2 words/packet through one
	// port at 1 word/cycle, so ~2n cycles, far below n*13.
	if doneAt > sim.Cycle(4*n) {
		t.Fatalf("posted vector store took %d cycles for %d words", doneAt, n)
	}
}

func TestDoAndOnDoneRun(t *testing.T) {
	m := MustNew(testConfig(1))
	data := []float64{1, 2, 3}
	sum := 0.0
	op := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, 3, 1, 1, false)
	op.Do = func() {
		for _, v := range data {
			sum += v
		}
	}
	m.Dispatch(0, isa.NewSeq(op))
	if _, err := m.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Fatalf("Do payload did not run: sum = %g", sum)
	}
}

// TestSyncSerialization: 8 CEs fetch-and-add one global word; all get
// distinct iteration numbers and the counter ends at 8.
func TestSyncSerialization(t *testing.T) {
	m := MustNew(testConfig(1))
	addr := m.AllocGlobal(1)
	got := map[int64]bool{}
	for id := 0; id < 8; id++ {
		op := isa.NewSync(addr, network.FetchAndAdd(1))
		op.OnDone = func(v int64, ok bool) {
			if !ok {
				t.Error("fetch-and-add failed")
			}
			if got[v] {
				t.Errorf("value %d claimed twice", v)
			}
			got[v] = true
		}
		m.Dispatch(id, isa.NewSeq(op))
	}
	if _, err := m.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("claimed %d distinct values, want 8", len(got))
	}
	if m.Global.LoadInt(addr) != 8 {
		t.Fatalf("counter = %d, want 8", m.Global.LoadInt(addr))
	}
}

func TestSpreadOpGangStartsCluster(t *testing.T) {
	m := MustNew(testConfig(1))
	cl := m.Clusters[0]
	ran := make([]bool, 8)
	progs := make([]isa.Program, 8)
	for i := range progs {
		op := isa.NewCompute(5)
		op.Do = func() { ran[i] = true }
		progs[i] = isa.NewSeq(op)
	}
	m.Dispatch(0, isa.NewSeq(cl.SpreadOp(progs)))
	if _, err := m.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("CE %d did not run its spread program", i)
		}
	}
}

func TestSelfScheduleCoversIterations(t *testing.T) {
	m := MustNew(testConfig(1))
	cl := m.Clusters[0]
	const n = 100
	seen := make([]int, n)
	progs := cl.SelfSchedule(n, func(iter int, g *isa.Gen) {
		op := isa.NewCompute(3)
		op.Do = func() { seen[iter]++ }
		g.Emit(op)
	})
	m.Dispatch(0, isa.NewSeq(cl.SpreadOp(progs)))
	if _, err := m.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestStaticScheduleCoversIterations(t *testing.T) {
	m := MustNew(testConfig(1))
	cl := m.Clusters[0]
	const n = 37
	seen := make([]int, n)
	progs := cl.StaticSchedule(n, func(iter int, g *isa.Gen) {
		op := isa.NewCompute(1)
		op.Do = func() { seen[iter]++ }
		g.Emit(op)
	})
	m.Dispatch(0, isa.NewSeq(cl.SpreadOp(progs)))
	if _, err := m.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestAllocators(t *testing.T) {
	m := MustNew(testConfig(2))
	a := m.AllocGlobal(100)
	b := m.AllocGlobal(50)
	if b < a+100 {
		t.Fatal("global allocations overlap")
	}
	m.AllocGlobalReset()
	if c := m.AllocGlobal(10); c != 0 {
		t.Fatalf("reset allocator starts at %d", c)
	}
	cl := m.Clusters[1]
	x := cl.Alloc(64)
	y := cl.Alloc(64)
	if y < x+64 {
		t.Fatal("cluster allocations overlap")
	}
	cl.AllocReset()
	if z := cl.Alloc(1); z != 0 {
		t.Fatalf("cluster reset starts at %d", z)
	}
}

func TestAllocGlobalExhaustionPanics(t *testing.T) {
	m := MustNew(testConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation did not panic")
		}
	}()
	m.AllocGlobal(uint64(m.Global.Words()) + 1)
}

func TestMFLOPS(t *testing.T) {
	// 1e6 flops in 1e6 cycles = 1e6 flops / 0.17 s = 5.88 MFLOPS.
	got := MFLOPS(1_000_000, 1_000_000)
	if got < 5.8 || got > 6.0 {
		t.Fatalf("MFLOPS = %.2f, want ~5.88", got)
	}
	if MFLOPS(100, 0) != 0 {
		t.Fatal("MFLOPS with zero cycles should be 0")
	}
}

// TestDeterminism: identical machines produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	run := func() sim.Cycle {
		m := MustNew(testConfig(2))
		for id := 0; id < m.NumCEs(); id++ {
			seq := isa.NewSeq(
				isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: uint64(id * 64)}, 64, 1),
				isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: uint64(id * 64)}, 64, 1, 2, true),
				isa.NewSync(0, network.FetchAndAdd(1)),
			)
			m.Dispatch(id, seq)
		}
		at, err := m.RunUntilIdle(100000)
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs quiesced at %d and %d", a, b)
	}
}

func TestGmemDefaultUnchanged(t *testing.T) {
	// The default machine uses the full 64 MB global memory.
	if gmem.Default().Words != 8<<20 {
		t.Fatal("default global memory size drifted")
	}
}

func TestUtilizationReport(t *testing.T) {
	m := MustNew(testConfig(1))
	m.Dispatch(0, isa.NewSeq(
		isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: 0}, 64, 1),
		isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: 0}, 64, 1, 2, true),
	))
	if _, err := m.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	u := m.Utilization()
	if u.Flops != 128 {
		t.Fatalf("Flops = %d", u.Flops)
	}
	if u.CEBusy <= 0 || u.CEBusy > 1 {
		t.Fatalf("CEBusy = %g", u.CEBusy)
	}
	if u.ModuleBusy <= 0 || u.ModuleBusy > 1 {
		t.Fatalf("ModuleBusy = %g", u.ModuleBusy)
	}
	if u.FwdWords == 0 || u.RevWords == 0 {
		t.Fatal("network words not counted")
	}
	if !strings.Contains(u.String(), "busy") {
		t.Fatal("report missing content")
	}
	// Fresh machine: zero-cycle report is well-formed.
	if z := MustNew(testConfig(1)).Utilization(); z.Cycles != 0 || z.CEBusy != 0 {
		t.Fatalf("zero report: %+v", z)
	}
}

func TestTopologyRendering(t *testing.T) {
	m := MustNew(testConfig(4))
	top := m.Topology()
	for _, want := range []string{
		"4 clusters x 8 CEs = 32 processors",
		"forward network: 64 ports, 2 stages of 8x8 crossbars",
		"reverse network",
		"32 modules",
		"cluster 3 (Alliant FX/8)",
		"512 KB",
		"concurrency control bus",
	} {
		if !strings.Contains(top, want) {
			t.Fatalf("topology missing %q:\n%s", want, top)
		}
	}
	// Ideal machines are labeled.
	cfg := testConfig(1)
	cfg.IdealNetwork = true
	mi := MustNew(cfg)
	if !strings.Contains(mi.Topology(), "ideal/contentionless") {
		t.Fatal("ideal fabric not labeled")
	}
}
