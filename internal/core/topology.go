package core

import (
	"fmt"
	"strings"
)

// Topology renders the machine's architecture from its assembled
// components — the textual counterpart of the paper's Figures 1 and 2.
// Because it walks the live objects rather than a static description, it
// doubles as a wiring self-check for any configuration.
func (m *Machine) Topology() string {
	cfg := m.cfg
	var b strings.Builder
	fmt.Fprintf(&b, "Cedar: %d clusters x %d CEs = %d processors @ %s cycle\n",
		cfg.Clusters, cfg.Cluster.CEs, m.NumCEs(), "170ns")
	fmt.Fprintf(&b, "\n  %s network: %d ports, %d stages of %dx%d crossbars",
		m.Fwd.Name(), m.Fwd.Ports(), m.Fwd.Stages(), m.Fwd.Radix(), m.Fwd.Radix())
	if m.Fwd.Ideal() {
		b.WriteString(" (ideal/contentionless)")
	}
	fmt.Fprintf(&b, "\n  %s network: %d ports, %d stages of %dx%d crossbars",
		m.Rev.Name(), m.Rev.Ports(), m.Rev.Stages(), m.Rev.Radix(), m.Rev.Radix())
	if m.Rev.Ideal() {
		b.WriteString(" (ideal/contentionless)")
	}
	gw := float64(m.Global.Words()) * 8 / (1 << 20)
	fmt.Fprintf(&b, "\n  global memory: %d modules, %.0f MB, double-word interleaved, sync processor per module\n",
		m.Global.Modules(), gw)

	for _, cl := range m.Clusters {
		cc := cl.Cache.Config()
		fmt.Fprintf(&b, "\n  cluster %d (Alliant FX/8):\n", cl.ID)
		fmt.Fprintf(&b, "    CEs %d..%d: vector unit, %d outstanding misses, PFU (512-word buffer)\n",
			cl.CEs[0].ID, cl.CEs[len(cl.CEs)-1].ID, cfg.CE.MaxOutstanding)
		fmt.Fprintf(&b, "    shared cache: %d KB, %d-word lines, %d-way, %d banks, lockup-free\n",
			cc.Words*8/1024, cc.LineWords, cc.Ways, cc.Banks)
		fmt.Fprintf(&b, "    cluster memory: %d MB; concurrency control bus (spread %d cycles, claim %d)\n",
			cl.Config().MemWords*8/(1<<20), cl.Config().SpreadCycles, cl.Config().ClaimCycles)
	}
	fmt.Fprintf(&b, "\n  latencies: global round trip %d+%d cycles (network+memory, CE transfer); page %d words\n",
		8, cfg.CE.XferCycles, cfg.PageWords)
	fmt.Fprintf(&b, "  engine: %d components in deterministic tick order\n", m.Eng.Components())
	return b.String()
}
