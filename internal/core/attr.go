package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/isa"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// Machine-level views of the per-CE cycle accounting (DESIGN.md §4.8):
// cumulative and per-phase CPI stacks for reports, and a per-interval
// CSV export for offline analysis. All three read the same accumulators
// the telemetry registry publishes — there is one source of truth for
// where cycles went.

// attrIndex returns, for every CE in assembly order, its registry label
// and the per-bucket metric indices into Registry.Paths — the shared
// lookup behind the interval-series views.
func (m *Machine) attrIndex() (labels []string, cols [][]int) {
	reg := m.Registry()
	idx := map[string]int{}
	for i, p := range reg.Paths() {
		idx[p] = i
	}
	for cl, clu := range m.Clusters {
		for i := range clu.CEs {
			prefix := fmt.Sprintf("cluster%d/ce%d", cl, i)
			row := make([]int, isa.NumBuckets)
			for b := isa.Bucket(0); b < isa.NumBuckets; b++ {
				j, ok := idx[prefix+"/attr/"+b.String()]
				if !ok {
					panic("core: attribution counter missing from registry: " + prefix)
				}
				row[b] = j
			}
			labels = append(labels, prefix)
			cols = append(cols, row)
		}
	}
	return labels, cols
}

// CPIStack returns the cumulative cycle-accounting breakdown: one row
// per CE plus a machine-wide rollup. Deferred skip accounting is
// settled first, so every row's cycle total equals the elapsed cycle
// count exactly (the conservation invariant).
func (m *Machine) CPIStack() *report.CPIStack {
	m.Eng.Settle()
	st := report.NewCPIStack(
		fmt.Sprintf("CPI stack, %d cycles per CE", m.Eng.Now()), isa.AcctNames())
	var total [isa.NumBuckets]int64
	for cl, clu := range m.Clusters {
		for i, c := range clu.CEs {
			st.AddRow(fmt.Sprintf("cluster%d/ce%d", cl, i), c.Acct.Cycles[:])
			for b, n := range c.Acct.Cycles {
				total[b] += n
			}
		}
	}
	st.AddRow("machine", total[:])
	if m.IOWait != nil && m.IOWait.WaitCycles() > 0 {
		st.AddNote(fmt.Sprintf("io_park detail: %d of %d parked cycles were formatted transfers",
			m.IOWait.WaitCyclesFormatted(), m.IOWait.WaitCycles()))
	}
	return st
}

// PhaseCPIStack aggregates the sampler's interval series into one
// machine-wide CPI-stack row per workload phase (in first-appearance
// order; intervals outside any phase roll up under "(no phase)"). The
// sampler must observe this machine's registry — hand Options.Phases a
// sampler from Machine.NewSampler.
func (m *Machine) PhaseCPIStack(s *telemetry.Sampler) *report.CPIStack {
	_, cols := m.attrIndex()
	ivs := s.Intervals()
	var order []string
	acc := map[string][]int64{}
	for _, iv := range ivs {
		ph := iv.Phase
		if ph == "" {
			ph = "(no phase)"
		}
		row, ok := acc[ph]
		if !ok {
			row = make([]int64, isa.NumBuckets)
			acc[ph] = row
			order = append(order, ph)
		}
		for _, ceCols := range cols {
			for b, j := range ceCols {
				row[b] += iv.Delta[j]
			}
		}
	}
	st := report.NewCPIStack(
		fmt.Sprintf("Per-phase CPI stack, all CEs over %d intervals", len(ivs)), isa.AcctNames())
	for _, ph := range order {
		st.AddRow(ph, acc[ph])
	}
	return st
}

// WriteAttrCSV writes the per-interval, per-CE attribution time series
// as CSV: one row per (interval, CE) with the cycle delta of every
// bucket, stamped with the interval's span and active workload phase.
// The header is from,to,phase,unit followed by the bucket names in
// isa.Bucket order.
func (m *Machine) WriteAttrCSV(w io.Writer, s *telemetry.Sampler) error {
	labels, cols := m.attrIndex()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "from,to,phase,unit,%s\n", strings.Join(isa.AcctNames(), ","))
	for _, iv := range s.Intervals() {
		for u, label := range labels {
			fmt.Fprintf(bw, "%d,%d,%s,%s", iv.From, iv.To, iv.Phase, label)
			for _, j := range cols[u] {
				fmt.Fprintf(bw, ",%d", iv.Delta[j])
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
