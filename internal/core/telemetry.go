package core

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Registry returns the machine's metrics registry, building and
// populating it on first call: every component's counters and gauges
// appear under the topology-mirroring paths documented in the telemetry
// package. Registration is guarded — a machine that never calls
// Registry carries no telemetry state and pays nothing on the fast
// path.
func (m *Machine) Registry() *telemetry.Registry {
	if m.reg == nil {
		m.reg = telemetry.NewRegistry()
		m.registerAll(m.reg)
	}
	return m.reg
}

// registerAll walks the machine in assembly order, so metric
// registration order (and therefore trace row order) is deterministic.
func (m *Machine) registerAll(reg *telemetry.Registry) {
	for cl, clu := range m.Clusters {
		for i, c := range clu.CEs {
			c.RegisterMetrics(reg, fmt.Sprintf("cluster%d/ce%d", cl, i))
		}
		for i, c := range clu.CEs {
			c.PFU().RegisterMetrics(reg, fmt.Sprintf("cluster%d/pfu%d", cl, i))
		}
		clu.Cache.RegisterMetrics(reg, fmt.Sprintf("cluster%d/cache", cl))
		clu.RegisterMetrics(reg, fmt.Sprintf("cluster%d/bus", cl))
		if clu.IPs != nil {
			clu.IPs.RegisterMetrics(reg, fmt.Sprintf("cluster%d/ip", cl))
		}
	}
	if m.IOWait != nil {
		m.IOWait.RegisterMetrics(reg, "xylem/io")
	}
	m.Fwd.RegisterMetrics(reg, "net/fwd")
	m.Rev.RegisterMetrics(reg, "net/rev")
	for mod := 0; mod < m.Global.Modules(); mod++ {
		m.Global.Module(mod).RegisterMetrics(reg, fmt.Sprintf("gmem/mod%d", mod))
	}
	if m.FaultInj != nil {
		m.FaultInj.RegisterMetrics(reg, "fault")
		// Machine-wide roll-up of replies whose tag outlived the CE stale
		// rings — a fault-recovery artifact, so it lives under fault/.
		reg.CounterFunc("fault/stale_replies", func() int64 {
			var n int64
			for _, clu := range m.Clusters {
				for _, c := range clu.CEs {
					n += c.StaleReplies
				}
			}
			return n
		})
		m.Resched.RegisterMetrics(reg, "xylem/resched")
	}
	// Engine skip/jump statistics are host-side diagnostics: they
	// legitimately differ between the quiescence-aware and naive paths,
	// so they are registered fenced off from fingerprints.
	reg.Diagnostic("engine/skipped_ticks", &m.Eng.SkippedTicks)
	reg.Diagnostic("engine/fast_forwarded", &m.Eng.FastForwarded)
	reg.Diagnostic("engine/dormant_skips", &m.Eng.DormantSkips)
}

// NewSampler builds a phase-interval sampler over the machine's
// registry (periodic sample every `every` cycles; 0 for phase marks and
// Final only) and installs it as the engine's probe.
func (m *Machine) NewSampler(every sim.Cycle) *telemetry.Sampler {
	s := telemetry.NewSampler(m.Registry(), every)
	s.Attach(m.Eng)
	return s
}

// MachineFlame renders the sampler's interval series as a compact text
// activity summary: one coded row per CE (each cell names the interval's
// dominant cycle-accounting bucket — replacing the coarse busy-fraction
// shading the CEs had before the attribution layer), one shaded row per
// network (words moved against the one-word-per-port-per-cycle injection
// bound) and one for the global memory (aggregate module busy fraction).
func (m *Machine) MachineFlame(s *telemetry.Sampler) *report.Flame {
	reg := s.Registry()
	idx := map[string]int{}
	for i, p := range reg.Paths() {
		idx[p] = i
	}
	ivs := s.Intervals()
	delta := func(iv telemetry.Interval, path string) int64 {
		i, ok := idx[path]
		if !ok {
			return 0
		}
		return iv.Delta[i]
	}
	f := report.NewFlame(fmt.Sprintf("Machine activity (%d intervals)", len(ivs)))
	for cl, clu := range m.Clusters {
		for i := range clu.CEs {
			prefix := fmt.Sprintf("cluster%d/ce%d", cl, i)
			codes := make([]byte, len(ivs))
			for k, iv := range ivs {
				best, bestN := isa.AcctIdle, int64(-1)
				for b := isa.Bucket(0); b < isa.NumBuckets; b++ {
					if d := delta(iv, prefix+"/attr/"+b.String()); d > bestN {
						best, bestN = b, d
					}
				}
				codes[k] = best.Code()
			}
			f.AddCodedRow(prefix, codes)
		}
	}
	for _, net := range []struct {
		prefix string
		n      interface{ Ports() int }
	}{{"net/fwd", m.Fwd}, {"net/rev", m.Rev}} {
		cells := make([]float64, len(ivs))
		for k, iv := range ivs {
			words := delta(iv, net.prefix+"/words_in")
			cells[k] = float64(words) / float64(int64(net.n.Ports())*int64(iv.Cycles()))
		}
		f.AddRow(net.prefix, cells)
	}
	mods := m.Global.Modules()
	cells := make([]float64, len(ivs))
	for k, iv := range ivs {
		var busy int64
		for mod := 0; mod < mods; mod++ {
			busy += delta(iv, fmt.Sprintf("gmem/mod%d/busy_cycles", mod))
		}
		cells[k] = float64(busy) / float64(int64(mods)*int64(iv.Cycles()))
	}
	f.AddRow("gmem", cells)
	if len(ivs) > 0 {
		f.AddNote(fmt.Sprintf("cycles %d..%d, %d cycles per cell (last cell may be shorter)",
			ivs[0].From, ivs[len(ivs)-1].To, ivs[0].Cycles()))
	}
	var legend strings.Builder
	for b := isa.Bucket(0); b < isa.NumBuckets; b++ {
		if b > 0 {
			legend.WriteByte(' ')
		}
		fmt.Fprintf(&legend, "'%c'=%s", b.Code(), b)
	}
	f.AddNote("CE cells mark the interval's dominant cycle bucket: " + legend.String())
	return f
}
