package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/sim"
)

// genProgram builds a random but valid program: a mix of compute, vector
// (global direct, global prefetched, cluster), scalar, store and sync
// operations. Returns the program and its expected flop count.
func genProgram(r *sim.Rand, gWords uint64, syncAddr uint64) (isa.Program, int64) {
	n := 3 + r.Intn(12)
	seq := isa.NewSeq()
	var flops int64
	for i := 0; i < n; i++ {
		switch r.Intn(7) {
		case 0:
			seq.Add(isa.NewCompute(sim.Cycle(r.Intn(50))))
		case 1: // direct global vector load
			ln := 1 + r.Intn(64)
			f := r.Intn(3)
			base := uint64(r.Intn(int(gWords) - ln*4))
			seq.Add(isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: base}, ln, 1+r.Intn(3), f, false))
			flops += int64(ln * f)
		case 2: // prefetched global vector load
			ln := 1 + r.Intn(128)
			stride := 1 + r.Intn(3)
			f := r.Intn(3)
			base := uint64(r.Intn(int(gWords) - ln*stride))
			var mask []bool
			if r.Intn(3) == 0 {
				mask = make([]bool, ln)
				consumed := 0
				for j := range mask {
					mask[j] = r.Intn(4) != 0
					if mask[j] {
						consumed++
					}
				}
				_ = consumed
			}
			seq.Add(isa.NewPrefetchMasked(isa.Addr{Space: isa.Global, Word: base}, ln, stride, mask))
			seq.Add(isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: base}, ln, stride, f, true))
			flops += int64(ln * f)
		case 3: // cluster vector traffic
			ln := 1 + r.Intn(64)
			f := r.Intn(2)
			base := uint64(r.Intn(2048))
			seq.Add(isa.NewVectorLoad(isa.Addr{Space: isa.Cluster, Word: base}, ln, 1, f, false))
			flops += int64(ln * f)
		case 4: // stores
			ln := 1 + r.Intn(32)
			space := isa.Cluster
			if r.Intn(2) == 0 {
				space = isa.Global
			}
			base := uint64(r.Intn(int(gWords) - ln))
			seq.Add(isa.NewVectorStore(isa.Addr{Space: space, Word: base}, ln, 1, 0))
		case 5: // scalar
			addr := isa.Addr{Space: isa.Global, Word: uint64(r.Intn(int(gWords)))}
			if r.Intn(2) == 0 {
				seq.Add(isa.NewScalarLoad(addr))
			} else {
				seq.Add(isa.NewScalarStore(addr))
			}
		case 6: // sync
			seq.Add(isa.NewSync(syncAddr, network.FetchAndAdd(1)))
		}
	}
	return seq, flops
}

// TestRandomProgramsTerminateDeterministically floods the machine with
// random valid programs and checks the global invariants: the machine
// quiesces, flop accounting matches the programs exactly, sync counters
// reflect every operation, both networks conserve packets, and an
// identical second run takes an identical number of cycles.
func TestRandomProgramsTerminateDeterministically(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		run := func() (sim.Cycle, int64, int64) {
			cfg := testConfig(2)
			m := MustNew(cfg)
			r := sim.NewRand(seed)
			syncAddr := m.AllocGlobal(1)
			var wantFlops int64
			var syncOps int64
			for id := 0; id < m.NumCEs(); id++ {
				p, f := genProgram(r, uint64(m.Global.Words()/2), syncAddr)
				wantFlops += f
				m.Dispatch(id, p)
			}
			at, err := m.RunUntilIdle(5_000_000)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if m.Fwd.Injected != m.Fwd.Delivered || m.Rev.Injected != m.Rev.Delivered {
				t.Fatalf("seed %d: packet conservation violated (%d/%d fwd, %d/%d rev)",
					seed, m.Fwd.Injected, m.Fwd.Delivered, m.Rev.Injected, m.Rev.Delivered)
			}
			if got := m.TotalFlops(); got != wantFlops {
				t.Fatalf("seed %d: flops %d, want %d", seed, got, wantFlops)
			}
			syncOps = m.Global.LoadInt(syncAddr)
			return at, m.TotalFlops(), syncOps
		}
		a1, f1, s1 := run()
		a2, f2, s2 := run()
		if a1 != a2 || f1 != f2 || s1 != s2 {
			t.Fatalf("seed %d: nondeterministic: (%d,%d,%d) vs (%d,%d,%d)",
				seed, a1, f1, s1, a2, f2, s2)
		}
	}
}

// TestRandomProgramsOnScaledMachine repeats the soak on an 8-cluster
// scaled configuration (3-stage networks are exercised via the PPT5
// study; here the 64-CE, 64-module machine).
func TestRandomProgramsOnScaledMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := ScaledConfig(8)
	cfg.Global.Words = 1 << 16
	m := MustNew(cfg)
	r := sim.NewRand(99)
	syncAddr := m.AllocGlobal(1)
	var wantFlops int64
	for id := 0; id < m.NumCEs(); id++ {
		p, f := genProgram(r, uint64(m.Global.Words()/2), syncAddr)
		wantFlops += f
		m.Dispatch(id, p)
	}
	if _, err := m.RunUntilIdle(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalFlops(); got != wantFlops {
		t.Fatalf("flops %d, want %d", got, wantFlops)
	}
}
