package perfect

import (
	"errors"
	"testing"
)

func TestTimeScaledIdentity(t *testing.T) {
	r := DefaultRates()
	for _, p := range suite(t) {
		if p.Targets.AutoSeconds <= 0 {
			continue
		}
		base, err := p.Time(Auto, r)
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := p.TimeScaled(Auto, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if base != scaled {
			t.Fatalf("%s: TimeScaled(1) = %g != Time %g", p.Name, scaled, base)
		}
		// State restored after scaling.
		again, _ := p.Time(Auto, r)
		if again != base {
			t.Fatalf("%s: scaling mutated the profile (%g vs %g)", p.Name, again, base)
		}
	}
}

func TestScaledRatesImproveWithSize(t *testing.T) {
	r := DefaultRates()
	for _, p := range suite(t) {
		if p.Targets.AutoSeconds <= 0 {
			continue
		}
		small, err := p.MFLOPSScaled(Auto, r, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		big, err := p.MFLOPSScaled(Auto, r, 16)
		if err != nil {
			t.Fatal(err)
		}
		if big <= small {
			t.Fatalf("%s: rate fell with size (%g -> %g)", p.Name, small, big)
		}
	}
}

func TestScaledVariantRestrictions(t *testing.T) {
	r := DefaultRates()
	s := suite(t)
	adm := ByName(s, "ADM")
	if _, err := adm.TimeScaled(KAP, r, 2); !errors.Is(err, ErrNoVariant) {
		t.Fatal("KAP should not scale")
	}
	if _, err := adm.TimeScaled(Serial, r, 2); !errors.Is(err, ErrNoVariant) {
		t.Fatal("Serial should not scale")
	}
	spice := ByName(s, "SPICE")
	if _, err := spice.TimeScaled(Auto, r, 2); !errors.Is(err, ErrNoVariant) {
		t.Fatal("SPICE has no automatable variant to scale")
	}
	// k <= 0 falls back to 1.
	a, _ := adm.TimeScaled(Auto, r, 0)
	b, _ := adm.Time(Auto, r)
	if a != b {
		t.Fatal("k=0 not treated as identity")
	}
	if _, err := adm.MFLOPSScaled(Auto, r, -1); err != nil {
		t.Fatal(err)
	}
}

// TestScaledNoSyncGapPersists: claims scale with iterations, so the
// no-sync penalty does not vanish with problem size — unlike fixed
// startup overhead, it is per-iteration work. (It in fact grows as a
// fraction, because the sub-linear serial residual stops diluting it.)
func TestScaledNoSyncGapPersists(t *testing.T) {
	r := DefaultRates()
	ocean := ByName(suite(t), "OCEAN")
	var fracs []float64
	for _, k := range []float64{1, 8} {
		auto, err := ocean.TimeScaled(Auto, r, k)
		if err != nil {
			t.Fatal(err)
		}
		ns, err := ocean.TimeScaled(AutoNoSync, r, k)
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, (ns-auto)/auto)
	}
	if fracs[0] < 0.1 || fracs[0] > 0.3 {
		t.Fatalf("OCEAN no-sync fraction at 1x = %.2f, want ~0.18", fracs[0])
	}
	if fracs[1] < fracs[0] {
		t.Fatalf("no-sync fraction shrank with size (%.2f -> %.2f); claims are per-iteration",
			fracs[0], fracs[1])
	}
}
