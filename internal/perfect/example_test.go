package perfect_test

import (
	"fmt"

	"repro/internal/perfect"
)

// Example evaluates one Perfect code's variants under the default
// machine rates: the calibrated model reproduces Table 3's row and the
// hand-optimization mechanisms predict Table 4.
func Example() {
	suite, err := perfect.Suite()
	if err != nil {
		panic(err)
	}
	trfd := perfect.ByName(suite, "TRFD")
	r := perfect.DefaultRates()
	auto, _ := trfd.Time(perfect.Auto, r)
	hand, _ := trfd.Time(perfect.Hand, r)
	fmt.Printf("TRFD automatable: %.0f s (paper 21)\n", auto)
	fmt.Printf("TRFD hand-optimized: %.1f s (paper 7.5)\n", hand)
	// Output:
	// TRFD automatable: 21 s (paper 21)
	// TRFD hand-optimized: 7.7 s (paper 7.5)
}
