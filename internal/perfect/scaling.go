package perfect

import "math"

// Data-size scaling. The paper notes that "the Perfect codes have
// relatively small data sizes and stability is a measure that can focus
// us on the class of codes that are well matched to the system, so
// varying the data size and observing stability would be instructive."
// TimeScaled models that experiment: floating-point work, iteration
// counts and I/O scale with the problem size while per-invocation
// overheads (loop startup, barriers) do not, so small problems are
// overhead-dominated and rates scatter, while large problems converge
// toward the machine's streaming rates.

// TimeScaled returns the modeled execution time of a variant with the
// problem's data size scaled by k (k = 1 reproduces Time; k > 1 grows
// the problem). Only the Auto-family variants scale (KAP and Serial
// would need their own overhead decomposition); ErrNoVariant is returned
// otherwise.
func (p *Profile) TimeScaled(v Variant, r Rates, k float64) (float64, error) {
	if k <= 0 {
		k = 1
	}
	if v != Auto && v != AutoNoSync && v != AutoNoPref {
		return 0, ErrNoVariant
	}
	if p.Targets.AutoSeconds <= 0 {
		return 0, ErrNoVariant
	}
	// Scale the size-dependent quantities, evaluate, restore. Parallel
	// work, iteration counts and I/O scale linearly; the serial residual
	// (setup-flavored) scales as sqrt(k); loop invocations and barriers
	// are structural and do not scale.
	saveM, saveG, saveC := p.Mflop, p.GlobalVectorMflop, p.Claims
	saveIOf, saveIOr, saveTs := p.IOFormattedWords, p.IORawWords, p.SerialSeconds
	p.Mflop *= k
	p.GlobalVectorMflop *= k
	p.Claims *= k
	p.IOFormattedWords *= k
	p.IORawWords *= k
	p.SerialSeconds *= math.Sqrt(k)
	t, err := p.Time(v, r)
	p.Mflop, p.GlobalVectorMflop, p.Claims = saveM, saveG, saveC
	p.IOFormattedWords, p.IORawWords, p.SerialSeconds = saveIOf, saveIOr, saveTs
	return t, err
}

// MFLOPSScaled returns the delivered rate at scale k.
func (p *Profile) MFLOPSScaled(v Variant, r Rates, k float64) (float64, error) {
	if k <= 0 {
		k = 1
	}
	t, err := p.TimeScaled(v, r, k)
	if err != nil {
		return 0, err
	}
	return k * p.Mflop / t, nil
}
