// Package perfect models the Perfect Benchmarks® study of Sections 3.3
// and 4.2 of the paper.
//
// The original study ran thirteen Fortran codes on the real machine in
// four forms: compiled by the retargeted KAP restructurer, manually
// transformed with "automatable" techniques, and the automatable form
// with Cedar synchronization or prefetching disabled; several codes were
// further hand-optimized with algorithmic knowledge (Table 4). We do not
// have the Fortran sources or a Fortran environment, so each code is
// modeled as a calibrated execution profile — the substitution recorded
// in DESIGN.md.
//
// The model is mechanism-based: a code's serial work is decomposed into a
// serial residual and parallel work split across vector-on-cluster-data,
// vector-on-global-data (prefetch-sensitive) and scalar components,
// executed at machine rates measured from this repository's cycle-level
// simulator, plus scheduling overheads (loop startup, iteration claims
// with or without the Cedar synchronization instructions), barriers,
// file I/O (formatted or raw, via the Xylem cost model) and
// virtual-memory faults (via the Xylem VM model). The published times of
// Table 3 are calibration targets: a small solver derives the
// decomposition from them once, and the variant deltas then follow from
// the mechanisms. Hand optimizations are expressed as the paper
// describes them — BDNA switches formatted I/O to raw transfer, QCD
// parallelizes its random-number generator, ARC2D eliminates redundant
// computation and distributes data, FL052 restructures its multicluster
// barriers, TRFD is rebuilt around cache-blocked kernels and then
// distributed to defeat its TLB-fault pathology — and the resulting
// times are compared against Table 4 in the tests and EXPERIMENTS.md.
package perfect

import (
	"fmt"
	"math"
)

// Variant selects one of the measured forms of a code.
type Variant int

// The measured forms, in Table 3/4 order.
const (
	// Serial is the uniprocessor scalar baseline all improvements are
	// relative to.
	Serial Variant = iota
	// KAP is the output of the retargeted 1988 KAP restructurer.
	KAP
	// Auto is the manually applied but automatable restructuring
	// (array privatization, parallel reductions, induction-variable
	// substitution, runtime dependence tests, balanced stripmining...).
	Auto
	// AutoNoSync is Auto with Cedar synchronization instructions not
	// used for loop self-scheduling (30 µs iteration fetches).
	AutoNoSync
	// AutoNoPref is AutoNoSync with compiler-generated prefetch also
	// disabled (the paper reports this slowdown relative to AutoNoSync).
	AutoNoPref
	// Hand is the algorithmically hand-optimized version (Table 4 and
	// the Section 4.2 text; not available for every code).
	Hand
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Serial:
		return "serial"
	case KAP:
		return "kap"
	case Auto:
		return "automatable"
	case AutoNoSync:
		return "auto-nosync"
	case AutoNoPref:
		return "auto-nopref"
	case Hand:
		return "hand"
	}
	return "unknown"
}

// Rates are the machine execution rates the model runs against, in
// MFLOPS per CE. Defaults come from this repository's simulated kernels
// (see DefaultRates) and a test asserts they track the simulator.
type Rates struct {
	// VectorLocal is vector work on cluster memory through the cache.
	VectorLocal float64
	// VectorGlobalPref is vector work on global memory with prefetch.
	VectorGlobalPref float64
	// VectorGlobalNoPref is the same without prefetch (bounded by two
	// outstanding requests over a 13-cycle latency).
	VectorGlobalNoPref float64
	// ClaimFastSeconds / ClaimSlowSeconds are per-iteration fetch costs
	// with and without Cedar synchronization.
	ClaimFastSeconds float64
	ClaimSlowSeconds float64
	// StartupSeconds is the machine-wide loop startup cost.
	StartupSeconds float64
	// BarrierSeconds is one multicluster barrier.
	BarrierSeconds float64
	// TLBMissSeconds is one cross-cluster first-touch fault;
	// PageWords the page size (from the Xylem model).
	TLBMissSeconds float64
	// FormattedIOSecPerWord / RawIOSecPerWord are the Xylem file-system
	// costs.
	FormattedIOSecPerWord float64
	RawIOSecPerWord       float64
}

// DefaultRates returns rates consistent with the simulator and the
// paper's constants.
func DefaultRates() Rates {
	return Rates{
		VectorLocal:           9.0,  // warm cluster-cache streams (sim: ~9-11)
		VectorGlobalPref:      6.0,  // prefetched global streams at 8-16 CEs
		VectorGlobalNoPref:    1.81, // 2 words / 13 cycles, 2 flops per word
		ClaimFastSeconds:      5e-6,
		ClaimSlowSeconds:      30e-6,
		StartupSeconds:        90e-6,
		BarrierSeconds:        200e-6,
		TLBMissSeconds:        500e-6,
		FormattedIOSecPerWord: 9.6e-6,
		RawIOSecPerWord:       0.6e-6,
	}
}

// Targets holds the published measurements a profile is calibrated to
// (Table 3; seconds). Zero AutoSeconds marks a code with no automatable
// results (SPICE).
type Targets struct {
	KapSeconds      float64
	KapImprovement  float64
	AutoSeconds     float64
	AutoImprovement float64
	NoSyncSeconds   float64
	NoPrefSeconds   float64
	MFLOPS          float64 // Cedar MFLOPS of the automatable version
}

// HandSpec describes a hand optimization in terms of its mechanisms.
type HandSpec struct {
	// Name labels the variant; TargetSeconds is the paper's measured
	// time for it (Table 4 or the Section 4.2 text), recorded for
	// comparison in EXPERIMENTS.md.
	Name          string
	TargetSeconds float64
	// Description summarizes the change, from the paper.
	Description string
	// Parallelism overrides the effective parallelism (0 = unchanged) —
	// e.g. QCD's parallel random-number generator lets the whole
	// machine participate.
	Parallelism float64
	// WorkFactor scales the floating-point work (ARC2D's elimination of
	// unnecessary computation; 1 = unchanged).
	WorkFactor float64
	// SerialFrac overrides the serial-residual fraction (QCD's parallel
	// random-number generator; 0 = unchanged).
	SerialFrac float64
	// MoveGlobalVectorLocal moves the prefetch-sensitive global vector
	// work into cluster memory (aggressive data distribution).
	MoveGlobalVectorLocal bool
	// VectorEfficiency overrides vEff (reshaped data structures,
	// hand-coded PFU assembler kernels; 0 = unchanged).
	VectorEfficiency float64
	// BarrierFactor scales the barrier count (FL052's restructuring;
	// 1 = unchanged).
	BarrierFactor float64
	// DropFormattedIO converts formatted I/O to raw transfers (BDNA).
	DropFormattedIO bool
	// TLBPages, when positive, adds the TRFD-style VM cost: each
	// cluster beyond the first takes one TLB-miss fault per page, and
	// RemoveTLBFaults marks the distributed-memory rewrite that
	// eliminates them.
	TLBPages        int
	RemoveTLBFaults bool
	// ScalarRateFactor scales the scalar rate (cache-blocked kernels
	// speeding up the residual; 1 = unchanged).
	ScalarRateFactor float64
}

// Profile is one Perfect code's calibrated model.
type Profile struct {
	// Name is the Perfect code name.
	Name string
	// Targets are the published values used for calibration and
	// recorded for comparison.
	Targets Targets

	// SerialSeconds and Mflop define the code's total work; derived
	// from Targets at construction.
	SerialSeconds float64
	Mflop         float64
	ScalarMFLOPS  float64

	// Structural choices (not fitted): the effective parallelism the
	// data sizes support, the scalar share of parallel work, the
	// vector efficiency, loop invocations, barriers, I/O.
	EffParallelism   float64
	KapParallelism   float64
	ScalarShare      float64 // fraction of parallel work that stays scalar
	VectorEfficiency float64
	LoopInvocations  float64
	Barriers         float64
	IOFormattedWords float64
	IORawWords       float64
	// IOEliminatedRawWords records raw-transfer volume the studied
	// version eliminated before measurement (MG3D's Table 3 footnote).
	// It is informational — never charged by calibration or Time, since
	// the published times were measured without this I/O — and feeds
	// the I/O-kernel models in internal/kernels.
	IOEliminatedRawWords float64
	ClustersUsed         int // clusters the automatable version runs on (4)
	// Hands lists the hand-optimized variants; Hands[0] is the Table 4
	// row (later entries are intermediate versions from the text).
	Hands []HandSpec

	// Calibrated decomposition (solved in Calibrate).
	SerialFrac        float64 // f: serial residual fraction of serial time
	KapSerialFrac     float64
	GlobalVectorMflop float64 // prefetch-sensitive vector work
	Claims            float64 // dynamic scheduling claims
	calibrated        bool
}

// Calibrate solves the profile's decomposition against its targets under
// the given rates. It must be called before Time; NewSuite returns
// calibrated profiles.
func (p *Profile) Calibrate(r Rates) error {
	t := p.Targets
	if t.AutoSeconds > 0 {
		p.SerialSeconds = t.AutoSeconds * t.AutoImprovement
	} else {
		p.SerialSeconds = t.KapSeconds * t.KapImprovement
	}
	p.Mflop = t.MFLOPS * p.autoOrKapSeconds()
	p.ScalarMFLOPS = p.Mflop / p.SerialSeconds

	if t.AutoSeconds > 0 {
		// Prefetch-sensitive work from the no-prefetch delta.
		dPref := t.NoPrefSeconds - t.NoSyncSeconds
		gap := 1/r.VectorGlobalNoPref - 1/r.VectorGlobalPref
		p.GlobalVectorMflop = math.Max(0, dPref*p.EffParallelism*p.VectorEfficiency/gap)
		// Claim volume from the no-sync delta.
		dSync := t.NoSyncSeconds - t.AutoSeconds
		p.Claims = math.Max(0, dSync*p.EffParallelism/(r.ClaimSlowSeconds-r.ClaimFastSeconds))
		// Serial residual from the automatable time.
		f, err := p.solveSerialFrac(r)
		if err != nil {
			return err
		}
		p.SerialFrac = f
	}
	// KAP residual from the KAP time (KAP work runs vectorized on its
	// limited parallelism, global data, prefetch on).
	fk := p.solveKapFrac(r)
	p.KapSerialFrac = fk
	p.calibrated = true
	return nil
}

func (p *Profile) autoOrKapSeconds() float64 {
	if p.Targets.AutoSeconds > 0 {
		return p.Targets.AutoSeconds
	}
	return p.Targets.KapSeconds
}

// parallelTime evaluates the parallel portion's execution time given the
// decomposition, a serial fraction f, and variant switches.
func (p *Profile) parallelTime(r Rates, f float64, prefetch, cedarSync bool,
	mflopFactor, scalarRateFactor, vEff float64, moveGlobalLocal bool, peff float64) float64 {
	u := (1 - f) * p.Mflop * mflopFactor
	uvg := math.Min(p.GlobalVectorMflop*mflopFactor, u)
	if moveGlobalLocal {
		uvg = 0
	}
	usc := p.ScalarShare * u
	uvl := math.Max(0, u-uvg-usc)

	rvg := r.VectorGlobalPref
	if !prefetch {
		rvg = r.VectorGlobalNoPref
	}
	claim := r.ClaimFastSeconds
	if !cedarSync {
		claim = r.ClaimSlowSeconds
	}
	tt := uvl/(peff*r.VectorLocal*vEff) +
		uvg/(peff*rvg*vEff) +
		usc/(peff*p.ScalarMFLOPS*scalarRateFactor) +
		p.Claims*claim/peff +
		p.LoopInvocations*r.StartupSeconds
	return tt
}

// overheads returns barrier and I/O time for a variant.
func (p *Profile) overheads(r Rates, barrierFactor float64, rawIO bool) float64 {
	io := p.IORawWords * r.RawIOSecPerWord
	if rawIO {
		io += p.IOFormattedWords * r.RawIOSecPerWord
	} else {
		io += p.IOFormattedWords * r.FormattedIOSecPerWord
	}
	return p.Barriers*barrierFactor*r.BarrierSeconds + io
}

// ErrNoVariant reports a variant the paper has no measurement for.
var ErrNoVariant = fmt.Errorf("perfect: variant not available for this code")

// Time returns the modeled execution time in seconds of the given
// variant under rates r.
func (p *Profile) Time(v Variant, r Rates) (float64, error) {
	if !p.calibrated {
		return 0, fmt.Errorf("perfect: %s not calibrated", p.Name)
	}
	noAuto := p.Targets.AutoSeconds <= 0
	switch v {
	case Serial:
		return p.SerialSeconds, nil
	case KAP:
		f := p.KapSerialFrac
		return f*p.SerialSeconds +
			(1-f)*p.Mflop/(p.KapParallelism*r.VectorGlobalPref*p.VectorEfficiency) +
			p.overheads(r, 1, false), nil
	case Auto:
		if noAuto {
			return 0, ErrNoVariant
		}
		return p.SerialFrac*p.SerialSeconds +
			p.parallelTime(r, p.SerialFrac, true, true, 1, 1, p.VectorEfficiency, false, p.EffParallelism) +
			p.overheads(r, 1, false), nil
	case AutoNoSync:
		if noAuto {
			return 0, ErrNoVariant
		}
		return p.SerialFrac*p.SerialSeconds +
			p.parallelTime(r, p.SerialFrac, true, false, 1, 1, p.VectorEfficiency, false, p.EffParallelism) +
			p.overheads(r, 1, false), nil
	case AutoNoPref:
		if noAuto {
			return 0, ErrNoVariant
		}
		return p.SerialFrac*p.SerialSeconds +
			p.parallelTime(r, p.SerialFrac, false, false, 1, 1, p.VectorEfficiency, false, p.EffParallelism) +
			p.overheads(r, 1, false), nil
	case Hand:
		if len(p.Hands) == 0 {
			return 0, ErrNoVariant
		}
		return p.HandTime(&p.Hands[0], r), nil
	}
	return 0, fmt.Errorf("perfect: unknown variant %d", v)
}

// HandTime evaluates a hand-optimized variant's mechanisms. Hand
// versions use prefetch but not Cedar synchronization, as the paper's
// footnote states.
func (p *Profile) HandTime(h *HandSpec, r Rates) float64 {
	f := p.SerialFrac
	if h.SerialFrac > 0 {
		f = h.SerialFrac
	}
	wf := h.WorkFactor
	if wf <= 0 {
		wf = 1
	}
	vEff := p.VectorEfficiency
	if h.VectorEfficiency > 0 {
		vEff = h.VectorEfficiency
	}
	srf := h.ScalarRateFactor
	if srf <= 0 {
		srf = 1
	}
	bf := h.BarrierFactor
	if bf <= 0 {
		bf = 1
	}
	peff := p.EffParallelism
	if h.Parallelism > 0 {
		peff = h.Parallelism
	}
	tt := f*p.SerialSeconds*wf/srf +
		p.parallelTime(r, f, true, false, wf, srf, vEff, h.MoveGlobalVectorLocal, peff) +
		p.overheads(r, bf, h.DropFormattedIO)
	if h.TLBPages > 0 && !h.RemoveTLBFaults {
		// Each cluster beyond the first faults once per page (the TRFD
		// multicluster TLB pathology).
		tt += float64(p.ClustersUsed-1) * float64(h.TLBPages) * r.TLBMissSeconds
	}
	return tt
}

// Improvement returns the speed improvement of variant v over the serial
// baseline.
func (p *Profile) Improvement(v Variant, r Rates) (float64, error) {
	tv, err := p.Time(v, r)
	if err != nil {
		return 0, err
	}
	return p.SerialSeconds / tv, nil
}

// CedarMFLOPS returns the modeled rate of the automatable version.
func (p *Profile) CedarMFLOPS(r Rates) (float64, error) {
	tv, err := p.Time(Auto, r)
	if err != nil {
		return 0, err
	}
	return p.Mflop / tv, nil
}

// solveSerialFrac finds f so that the Auto variant's modeled time equals
// the published automatable time, by bisection (the model is monotonic
// in f).
func (p *Profile) solveSerialFrac(r Rates) (float64, error) {
	target := p.Targets.AutoSeconds - p.overheads(r, 1, false)
	eval := func(f float64) float64 {
		return f*p.SerialSeconds + p.parallelTime(r, f, true, true, 1, 1, p.VectorEfficiency, false, p.EffParallelism)
	}
	lo, hi := 0.0, 1.0
	if eval(0) > target {
		// Even a fully parallel decomposition is slower than the
		// target: the structural choices are inconsistent.
		return 0, fmt.Errorf("perfect: %s cannot reach %.1fs (min %.1fs); raise EffParallelism or rates",
			p.Name, target, eval(0))
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if eval(mid) > target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, nil
}

// solveKapFrac finds the KAP residual fraction the same way; KAP's
// shortfall cannot make the model slower than serial, so the fraction is
// clamped.
func (p *Profile) solveKapFrac(r Rates) float64 {
	target := p.Targets.KapSeconds - p.overheads(r, 1, false)
	eval := func(f float64) float64 {
		return f*p.SerialSeconds + (1-f)*p.Mflop/(p.KapParallelism*r.VectorGlobalPref*p.VectorEfficiency)
	}
	if eval(1) <= target {
		return 1
	}
	if eval(0) >= target {
		return 0
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if eval(mid) > target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}
