package perfect

import "fmt"

// NewSuite returns the thirteen Perfect Benchmark profiles, calibrated
// against the published Table 3 under the given rates. The structural
// choices per code (effective parallelism, scalar share, I/O volume,
// barriers) come from the paper's per-code discussion; the published
// times are calibration targets from which the solver derives each
// code's serial residual, prefetch-sensitive work and claim volume.
func NewSuite(r Rates) ([]*Profile, error) {
	suite := []*Profile{
		{
			// ADM: air-pollution model. Modest vectorization, a large
			// scheduling-sensitive component (11% no-sync slowdown).
			Name: "ADM",
			Targets: Targets{KapSeconds: 689, KapImprovement: 1.2,
				AutoSeconds: 73, AutoImprovement: 10.8,
				NoSyncSeconds: 81, NoPrefSeconds: 83, MFLOPS: 6.9},
			EffParallelism: 16, KapParallelism: 2,
			ScalarShare: 0.40, VectorEfficiency: 0.85,
			LoopInvocations: 2000, ClustersUsed: 4,
		},
		{
			// ARC2D: implicit-CFD code; highly vectorizable (KAP already
			// gets 13.5x), much prefetch-sensitive global vector work
			// (11% no-prefetch slowdown). Hand version eliminates a
			// substantial number of unnecessary computations and
			// aggressively distributes data into cluster memory
			// [BrBo91], reaching 68 s.
			Name: "ARC2D",
			Targets: Targets{KapSeconds: 218, KapImprovement: 13.5,
				AutoSeconds: 141, AutoImprovement: 20.8,
				NoSyncSeconds: 141, NoPrefSeconds: 157, MFLOPS: 13.1},
			EffParallelism: 32, KapParallelism: 8,
			ScalarShare: 0.30, VectorEfficiency: 0.85,
			LoopInvocations: 4000, ClustersUsed: 4,
			Hands: []HandSpec{{
				Name: "hand", TargetSeconds: 68,
				Description:           "eliminate unnecessary computation; distribute data to cluster memories",
				WorkFactor:            0.55,
				MoveGlobalVectorLocal: true,
			}},
		},
		{
			// BDNA: molecular dynamics of DNA; dominated by one
			// formatted-I/O phase that the hand optimization converts
			// to unformatted transfers (111 s -> 70 s).
			Name: "BDNA",
			Targets: Targets{KapSeconds: 502, KapImprovement: 1.9,
				AutoSeconds: 111, AutoImprovement: 8.7,
				NoSyncSeconds: 118, NoPrefSeconds: 122, MFLOPS: 8.2},
			EffParallelism: 24, KapParallelism: 2,
			ScalarShare: 0.20, VectorEfficiency: 0.85,
			LoopInvocations: 2000, ClustersUsed: 4,
			IOFormattedWords: 4.4e6,
			Hands: []HandSpec{{
				Name: "hand", TargetSeconds: 70,
				Description:     "replace formatted with unformatted I/O",
				DropFormattedIO: true,
			}},
		},
		{
			// DYFESM: structural dynamics with a very small problem
			// size: limited parallelism, fine grain (12% no-sync
			// slowdown) and heavy dependence on prefetch (49%
			// no-prefetch slowdown) because few processors carry the
			// global vector fetches. Hand versions reshape data
			// structures and code key kernels in Xylem assembler
			// against the prefetch unit (~40 s), then restructure the
			// algorithm around the SDOALL/CDOALL hierarchy (31 s)
			// [YaGa93].
			Name: "DYFESM",
			Targets: Targets{KapSeconds: 167, KapImprovement: 3.9,
				AutoSeconds: 60, AutoImprovement: 11.0,
				NoSyncSeconds: 67, NoPrefSeconds: 100, MFLOPS: 9.2},
			EffParallelism: 6, KapParallelism: 4,
			ScalarShare: 0.10, VectorEfficiency: 0.85,
			LoopInvocations: 3000, ClustersUsed: 4,
			Hands: []HandSpec{
				{
					Name: "hand-sdoall", TargetSeconds: 31,
					Description:      "algorithm change exploiting the SDOALL/CDOALL control hierarchy",
					SerialFrac:       0.03,
					Parallelism:      12,
					VectorEfficiency: 1.0,
				},
				{
					Name: "hand-pfu", TargetSeconds: 40,
					Description:      "reshaped data structures; key kernels in assembler using the prefetch unit",
					SerialFrac:       0.03,
					VectorEfficiency: 1.0,
				},
			},
		},
		{
			// FL052: transonic-flow Euler solver whose major routines
			// need sequences of multicluster barriers; its hand version
			// introduces redundancy to replace them with one
			// multicluster barrier plus intra-cluster barrier sequences
			// on the concurrency bus, and removes recurrences (33 s)
			// [GJWY93].
			Name: "FL052",
			Targets: Targets{KapSeconds: 100, KapImprovement: 9.0,
				AutoSeconds: 63, AutoImprovement: 14.3,
				NoSyncSeconds: 64, NoPrefSeconds: 79, MFLOPS: 8.7},
			EffParallelism: 10, KapParallelism: 8,
			ScalarShare: 0.10, VectorEfficiency: 0.85,
			LoopInvocations: 2000, Barriers: 100000, ClustersUsed: 4,
			Hands: []HandSpec{{
				Name: "hand", TargetSeconds: 33,
				Description:      "single multicluster barrier + per-cluster barrier sequences; recurrences removed",
				BarrierFactor:    0.2,
				ScalarRateFactor: 2.0,
			}},
		},
		{
			// MDG: molecular dynamics of water; excellent parallel
			// scaling once restructured (22.7x) with a visible
			// scheduling component (11% no-sync slowdown).
			Name: "MDG",
			Targets: Targets{KapSeconds: 3200, KapImprovement: 1.3,
				AutoSeconds: 182, AutoImprovement: 22.7,
				NoSyncSeconds: 202, NoPrefSeconds: 202, MFLOPS: 18.9},
			EffParallelism: 32, KapParallelism: 2,
			ScalarShare: 0.15, VectorEfficiency: 0.85,
			LoopInvocations: 2000, ClustersUsed: 4,
		},
		{
			// MG3D: seismic migration; the largest code, 35.2x after
			// restructuring. The studied version eliminates file I/O
			// (Table 3 footnote), so no I/O is charged here; the
			// eliminated raw volume is recorded informationally for the
			// I/O-kernel model of the pre-elimination program (its
			// 69.6 s of raw transfers against the 348 s of measured
			// compute give the kernel's 5:1 compute-to-I/O ratio).
			Name: "MG3D",
			Targets: Targets{KapSeconds: 7929, KapImprovement: 1.5,
				AutoSeconds: 348, AutoImprovement: 35.2,
				NoSyncSeconds: 346, NoPrefSeconds: 350, MFLOPS: 31.7},
			EffParallelism: 32, KapParallelism: 2,
			ScalarShare: 0.10, VectorEfficiency: 0.85,
			LoopInvocations: 4000, ClustersUsed: 4,
			IOEliminatedRawWords: 1.16e8,
		},
		{
			// OCEAN: 2-D ocean simulation; fine-grained loops make it
			// the most scheduling-sensitive code (18% no-sync slowdown).
			Name: "OCEAN",
			Targets: Targets{KapSeconds: 2158, KapImprovement: 1.4,
				AutoSeconds: 148, AutoImprovement: 19.8,
				NoSyncSeconds: 174, NoPrefSeconds: 187, MFLOPS: 11.2},
			EffParallelism: 28, KapParallelism: 2,
			ScalarShare: 0.10, VectorEfficiency: 0.85,
			LoopInvocations: 4000, ClustersUsed: 4,
		},
		{
			// QCD: lattice gauge theory; dominated by a serial
			// random-number generator (automatable improvement only
			// 1.8). The hand-coded parallel generator lifts it to 20.8x
			// over serial — Table 4's 21 s, an 11.4x improvement over
			// the automatable version.
			Name: "QCD",
			Targets: Targets{KapSeconds: 369, KapImprovement: 1.1,
				AutoSeconds: 239, AutoImprovement: 1.8,
				NoSyncSeconds: 239, NoPrefSeconds: 246, MFLOPS: 1.1},
			EffParallelism: 4, KapParallelism: 1,
			ScalarShare: 0.40, VectorEfficiency: 0.85,
			LoopInvocations: 1000, ClustersUsed: 4,
			Hands: []HandSpec{{
				Name: "hand", TargetSeconds: 21,
				Description: "hand-coded parallel random number generator",
				SerialFrac:  0.03,
				Parallelism: 32,
			}},
		},
		{
			// SPEC77: spectral weather simulation.
			Name: "SPEC77",
			Targets: Targets{KapSeconds: 973, KapImprovement: 2.4,
				AutoSeconds: 156, AutoImprovement: 15.2,
				NoSyncSeconds: 156, NoPrefSeconds: 165, MFLOPS: 11.9},
			EffParallelism: 24, KapParallelism: 4,
			ScalarShare: 0.15, VectorEfficiency: 0.85,
			LoopInvocations: 3000, ClustersUsed: 4,
		},
		{
			// SPICE: circuit simulation; essentially unparallelizable
			// by restructuring (1.02x) — no automatable results. After
			// reconsidering all major phases and developing new
			// approaches where needed, the time drops to ~26 s.
			Name: "SPICE",
			Targets: Targets{KapSeconds: 95.1, KapImprovement: 1.02,
				MFLOPS: 0.5},
			EffParallelism: 8, KapParallelism: 1,
			ScalarShare: 0.60, VectorEfficiency: 0.85,
			LoopInvocations: 500, ClustersUsed: 4,
			Hands: []HandSpec{{
				Name: "hand", TargetSeconds: 26,
				Description: "new algorithmic approaches for all major phases",
				SerialFrac:  0.20,
			}},
		},
		{
			// TRACK: missile tracking; dominated by scalar accesses, so
			// prefetch does not help (0% slowdown without it).
			Name: "TRACK",
			Targets: Targets{KapSeconds: 126, KapImprovement: 1.1,
				AutoSeconds: 26, AutoImprovement: 5.3,
				NoSyncSeconds: 28, NoPrefSeconds: 28, MFLOPS: 3.1},
			EffParallelism: 8, KapParallelism: 1,
			ScalarShare: 0.70, VectorEfficiency: 0.85,
			LoopInvocations: 1000, ClustersUsed: 4,
		},
		{
			// TRFD: two-electron integral transform; 41.1x after
			// restructuring. Hand version 1 rebuilds the kernels around
			// the clusters' caches and vector registers (11.5 s) but
			// spends ~50% of its time in virtual-memory activity — the
			// multicluster TLB-fault pathology [MaEG92, AnGa93]; the
			// distributed-memory version removes the faults (7.5 s).
			Name: "TRFD",
			Targets: Targets{KapSeconds: 273, KapImprovement: 3.2,
				AutoSeconds: 21, AutoImprovement: 41.1,
				NoSyncSeconds: 21, NoPrefSeconds: 21, MFLOPS: 20.5},
			EffParallelism: 32, KapParallelism: 6,
			ScalarShare: 0.20, VectorEfficiency: 0.85,
			LoopInvocations: 500, ClustersUsed: 4,
			Hands: []HandSpec{
				{
					Name: "hand-distributed", TargetSeconds: 7.5,
					Description:           "cache-blocked kernels + distributed-memory version eliminating TLB faults",
					MoveGlobalVectorLocal: true,
					VectorEfficiency:      1.0,
					ScalarRateFactor:      3.0,
					TLBPages:              2600,
					RemoveTLBFaults:       true,
				},
				{
					Name: "hand-shared", TargetSeconds: 11.5,
					Description:           "cache-blocked kernels; ~50% of time in VM activity from 4x TLB faults",
					MoveGlobalVectorLocal: true,
					VectorEfficiency:      1.0,
					ScalarRateFactor:      3.0,
					TLBPages:              2600,
				},
			},
		},
	}
	for _, p := range suite {
		if err := p.Calibrate(r); err != nil {
			return nil, fmt.Errorf("calibrating %s: %w", p.Name, err)
		}
	}
	return suite, nil
}

// Suite is NewSuite with the default rates. Calibration failure (which
// would indicate an inconsistent structural change) is returned, not
// panicked, so embedding tools can surface it as a diagnosable error.
func Suite() ([]*Profile, error) {
	return NewSuite(DefaultRates())
}

// ByName returns the profile with the given name, or nil.
func ByName(suite []*Profile, name string) *Profile {
	for _, p := range suite {
		if p.Name == name {
			return p
		}
	}
	return nil
}
