package perfect

import (
	"errors"
	"math"
	"testing"
)

func suite(t *testing.T) []*Profile {
	t.Helper()
	s, err := NewSuite(DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", what)
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Fatalf("%s = %.2f, want %.2f (±%.0f%%)", what, got, want, tol*100)
	}
}

func TestSuiteHasThirteenCodes(t *testing.T) {
	s := suite(t)
	if len(s) != 13 {
		t.Fatalf("suite has %d codes, want 13", len(s))
	}
	names := map[string]bool{}
	for _, p := range s {
		names[p.Name] = true
	}
	for _, n := range []string{"ADM", "ARC2D", "BDNA", "DYFESM", "FL052", "MDG",
		"MG3D", "OCEAN", "QCD", "SPEC77", "SPICE", "TRACK", "TRFD"} {
		if !names[n] {
			t.Fatalf("missing code %s", n)
		}
	}
}

// TestCalibrationReproducesTable3: the calibrated model must reproduce
// every published Table 3 column within tight tolerance.
func TestCalibrationReproducesTable3(t *testing.T) {
	r := DefaultRates()
	for _, p := range suite(t) {
		if p.Targets.AutoSeconds <= 0 {
			continue // SPICE: no automatable results
		}
		for _, c := range []struct {
			v    Variant
			want float64
		}{
			{KAP, p.Targets.KapSeconds},
			{Auto, p.Targets.AutoSeconds},
			{AutoNoSync, p.Targets.NoSyncSeconds},
			{AutoNoPref, p.Targets.NoPrefSeconds},
		} {
			got, err := p.Time(c.v, r)
			if err != nil {
				t.Fatalf("%s %v: %v", p.Name, c.v, err)
			}
			within(t, p.Name+" "+c.v.String(), got, c.want, 0.03)
		}
		mf, err := p.CedarMFLOPS(r)
		if err != nil {
			t.Fatal(err)
		}
		within(t, p.Name+" MFLOPS", mf, p.Targets.MFLOPS, 0.05)
	}
}

// TestHandOptimizationsApproachTable4: the hand variants are mechanism
// predictions, not calibrations; they must land within 35% of the
// paper's measurements and always improve on the no-sync baseline.
func TestHandOptimizationsApproachTable4(t *testing.T) {
	r := DefaultRates()
	for _, p := range suite(t) {
		for i := range p.Hands {
			h := &p.Hands[i]
			got := p.HandTime(h, r)
			within(t, p.Name+" "+h.Name, got, h.TargetSeconds, 0.35)
			if p.Targets.AutoSeconds > 0 {
				base, _ := p.Time(AutoNoSync, r)
				if got >= base {
					t.Fatalf("%s %s: hand time %.1f not better than no-sync %.1f",
						p.Name, h.Name, got, base)
				}
			}
		}
	}
}

// TestTable4Improvements: the paper reports hand improvements over the
// "automatable w/ prefetch, w/o Cedar synchronization" baseline: ARC2D
// 2.1x, BDNA 1.7x, TRFD 2.8x, QCD 11.4x. Check sign and rough magnitude.
func TestTable4Improvements(t *testing.T) {
	r := DefaultRates()
	s := suite(t)
	want := map[string]float64{"ARC2D": 2.1, "BDNA": 1.7, "TRFD": 2.8, "QCD": 11.4}
	for name, imp := range want {
		p := ByName(s, name)
		base, err := p.Time(AutoNoSync, r)
		if err != nil {
			t.Fatal(err)
		}
		hand, err := p.Time(Hand, r)
		if err != nil {
			t.Fatal(err)
		}
		got := base / hand
		within(t, name+" hand improvement", got, imp, 0.45)
	}
}

func TestSerialDerivation(t *testing.T) {
	s := suite(t)
	adm := ByName(s, "ADM")
	// Serial = auto x improvement.
	within(t, "ADM serial", adm.SerialSeconds, 73*10.8, 0.01)
	ts, err := adm.Time(Serial, DefaultRates())
	if err != nil || ts != adm.SerialSeconds {
		t.Fatalf("Time(Serial) = %g, %v", ts, err)
	}
	imp, err := adm.Improvement(Auto, DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "ADM improvement", imp, 10.8, 0.03)
}

func TestSPICEHasNoAutoVariants(t *testing.T) {
	s := suite(t)
	sp := ByName(s, "SPICE")
	for _, v := range []Variant{Auto, AutoNoSync, AutoNoPref} {
		if _, err := sp.Time(v, DefaultRates()); !errors.Is(err, ErrNoVariant) {
			t.Fatalf("SPICE %v: err = %v, want ErrNoVariant", v, err)
		}
	}
	if _, err := sp.Time(KAP, DefaultRates()); err != nil {
		t.Fatalf("SPICE KAP: %v", err)
	}
	if _, err := sp.Time(Hand, DefaultRates()); err != nil {
		t.Fatalf("SPICE hand: %v", err)
	}
}

func TestVariantsWithoutHand(t *testing.T) {
	s := suite(t)
	adm := ByName(s, "ADM")
	if _, err := adm.Time(Hand, DefaultRates()); !errors.Is(err, ErrNoVariant) {
		t.Fatal("ADM should have no hand variant")
	}
}

// TestMechanismDirections: varying a machine rate changes the variants
// the mechanism predicts it should change, and only those.
func TestMechanismDirections(t *testing.T) {
	base := DefaultRates()
	slow := base
	slow.ClaimSlowSeconds = 60e-6 // worse non-Cedar-sync claims
	s1, err := NewSuite(base)
	if err != nil {
		t.Fatal(err)
	}
	ocean1 := ByName(s1, "OCEAN")
	t1, _ := ocean1.Time(AutoNoSync, base)

	// Same profile, same calibration, evaluated under worse claims.
	t2, _ := ocean1.Time(AutoNoSync, slow)
	if t2 <= t1 {
		t.Fatalf("doubling the slow claim cost did not slow AutoNoSync (%.1f vs %.1f)", t2, t1)
	}
	tAuto1, _ := ocean1.Time(Auto, base)
	tAuto2, _ := ocean1.Time(Auto, slow)
	if math.Abs(tAuto1-tAuto2) > 1e-9 {
		t.Fatal("slow-claim cost leaked into the Cedar-sync variant")
	}
}

func TestPrefetchSensitivityOrdering(t *testing.T) {
	// DYFESM is the most prefetch-dependent code (49% slowdown), TRACK
	// and MDG the least (0%).
	r := DefaultRates()
	s := suite(t)
	frac := func(name string) float64 {
		p := ByName(s, name)
		ns, _ := p.Time(AutoNoSync, r)
		np, _ := p.Time(AutoNoPref, r)
		return (np - ns) / ns
	}
	if frac("DYFESM") < 0.4 {
		t.Fatalf("DYFESM no-prefetch slowdown = %.2f, want ~0.49", frac("DYFESM"))
	}
	if frac("TRACK") > 0.02 || frac("MDG") > 0.02 {
		t.Fatalf("TRACK/MDG should be prefetch-insensitive: %.2f %.2f", frac("TRACK"), frac("MDG"))
	}
}

func TestTRFDVMStory(t *testing.T) {
	// The shared-memory hand version spends a large fraction of its
	// time in VM activity; the distributed version removes it.
	r := DefaultRates()
	s := suite(t)
	trfd := ByName(s, "TRFD")
	var shared, dist float64
	for i := range trfd.Hands {
		h := &trfd.Hands[i]
		if h.RemoveTLBFaults {
			dist = trfd.HandTime(h, r)
		} else {
			shared = trfd.HandTime(h, r)
		}
	}
	if shared == 0 || dist == 0 {
		t.Fatal("TRFD hand variants missing")
	}
	vmFrac := (shared - dist) / shared
	if vmFrac < 0.25 || vmFrac > 0.6 {
		t.Fatalf("TRFD VM fraction = %.2f, paper reports ~50%%", vmFrac)
	}
}

func TestUncalibratedProfileErrors(t *testing.T) {
	p := &Profile{Name: "X"}
	if _, err := p.Time(Auto, DefaultRates()); err == nil {
		t.Fatal("uncalibrated profile did not error")
	}
}

func TestByNameMissing(t *testing.T) {
	if ByName(suite(t), "NOPE") != nil {
		t.Fatal("ByName invented a profile")
	}
}

func TestSuite(t *testing.T) {
	s, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 13 {
		t.Fatal("Suite wrong size")
	}
}
