package fault

import (
	"strings"
	"testing"

	"repro/internal/gmem"
	"repro/internal/network"
	"repro/internal/sim"
)

// stopCE is a StoppableCE recording the cycles it was stopped/repaired.
type stopCE struct {
	stopped  bool
	stops    int
	repairs  int
	eventLog []string
}

func (s *stopCE) CheckStop(now sim.Cycle) {
	if s.stopped {
		return
	}
	s.stopped = true
	s.stops++
	s.eventLog = append(s.eventLog, "stop")
}
func (s *stopCE) Repair(now sim.Cycle) {
	if !s.stopped {
		return
	}
	s.stopped = false
	s.repairs++
	s.eventLog = append(s.eventLog, "repair")
}
func (s *stopCE) CheckStopped() bool { return s.stopped }

// fakeIP is a FaultableIP recording the injected hooks.
type fakeIP struct {
	busies int64
	delays int64
}

func (f *fakeIP) FaultBusy(now, window sim.Cycle) { f.busies++ }
func (f *fakeIP) FaultDelayNext(extra sim.Cycle)  { f.delays++ }

// fakeCache is a FaultableCache recording injected bank-busy windows.
type fakeCache struct {
	busies int64
	banks  []int
}

func (f *fakeCache) FaultBankBusy(now sim.Cycle, bank int, window sim.Cycle) {
	f.busies++
	f.banks = append(f.banks, bank)
}
func (f *fakeCache) Banks() int { return 4 }

// fakeBus is a FaultableBus recording injected stall windows.
type fakeBus struct {
	stalls int64
}

func (f *fakeBus) FaultBusStall(now sim.Cycle, window sim.Cycle) { f.stalls++ }

type faultRig struct {
	eng    *sim.Engine
	inj    *Injector
	fwd    *network.Network
	rev    *network.Network
	g      *gmem.Global
	mods   []*gmem.Module
	ces    []*stopCE
	ips    []*fakeIP
	caches []*fakeCache
	buses  []*fakeBus
}

func newFaultRig(t *testing.T, cfg Config) *faultRig {
	t.Helper()
	eng := sim.New()
	fwd := network.MustNew("forward", 8, 8, 0)
	rev := network.MustNew("reverse", 8, 8, 0)
	g, err := gmem.New(gmem.Config{Words: 512, Modules: 8, ServiceCycles: 2, QueueWords: 4}, rev)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*gmem.Module
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
		mods = append(mods, g.Module(m))
	}
	for p := 0; p < 8; p++ {
		rev.SetSink(p, network.SinkFunc(func(*network.Packet) bool { return true }))
	}
	ces := []*stopCE{{}, {}, {}, {}}
	var stoppable []StoppableCE
	for _, c := range ces {
		stoppable = append(stoppable, c)
	}
	ips := []*fakeIP{{}, {}}
	var faultable []FaultableIP
	for _, ip := range ips {
		faultable = append(faultable, ip)
	}
	caches := []*fakeCache{{}, {}}
	var faultCaches []FaultableCache
	for _, c := range caches {
		faultCaches = append(faultCaches, c)
	}
	buses := []*fakeBus{{}, {}}
	var faultBuses []FaultableBus
	for _, b := range buses {
		faultBuses = append(faultBuses, b)
	}
	inj := NewInjector(cfg, fwd, rev, mods, stoppable, faultable, faultCaches, faultBuses)
	eng.Register("fault", inj) // injector first: its tick slot precedes all targets
	eng.Register("fwd", fwd)
	for _, m := range mods {
		eng.Register("mod", m)
	}
	eng.Register("rev", rev)
	return &faultRig{eng: eng, inj: inj, fwd: fwd, rev: rev, g: g, mods: mods,
		ces: ces, ips: ips, caches: caches, buses: buses}
}

func census(inj *Injector) [13]int64 {
	return [13]int64{inj.Injected, inj.NetStalls, inj.NetDrops, inj.MemBusies,
		inj.MemDegrades, inj.CheckStops, inj.IPBusies, inj.IPDelays,
		inj.CacheBusies, inj.BusStalls, inj.CEDrops,
		inj.Repairs, inj.NoTarget}
}

func TestScheduleIsSeedDeterministic(t *testing.T) {
	cfg := DefaultConfig(0xC3DA2)
	cfg.MeanInterval = 50
	a := newFaultRig(t, cfg)
	b := newFaultRig(t, cfg)
	a.eng.Run(20000)
	b.eng.Run(20000)
	if census(a.inj) != census(b.inj) {
		t.Fatalf("same seed diverged:\n  a=%v\n  b=%v", census(a.inj), census(b.inj))
	}
	if a.inj.Injected == 0 {
		t.Fatal("no faults injected over 20k cycles at mean interval 50")
	}
	cfg.Seed = 0x51DE
	c := newFaultRig(t, cfg)
	c.eng.Run(20000)
	if census(a.inj) == census(c.inj) {
		t.Fatal("different seeds produced an identical fault census")
	}
}

func TestAllEnabledKindsEventuallyFire(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.MeanInterval = 20
	r := newFaultRig(t, cfg)
	r.eng.Run(50000)
	if r.inj.NetStalls == 0 || r.inj.MemBusies == 0 || r.inj.MemDegrades == 0 ||
		r.inj.CheckStops == 0 || r.inj.IPBusies == 0 || r.inj.IPDelays == 0 ||
		r.inj.CacheBusies == 0 || r.inj.BusStalls == 0 {
		t.Fatalf("kinds missing from a long run: %+v", census(r.inj))
	}
	// Module-side effects landed.
	var busies, degrades int64
	for _, m := range r.mods {
		busies += m.BusyFaults
		degrades += m.DegradeFaults
	}
	if busies != r.inj.MemBusies || degrades != r.inj.MemDegrades {
		t.Fatalf("module counters (%d busy, %d degrade) disagree with injector (%d, %d)",
			busies, degrades, r.inj.MemBusies, r.inj.MemDegrades)
	}
	if r.fwd.FaultStalls+r.rev.FaultStalls != r.inj.NetStalls {
		t.Fatalf("network FaultStalls %d+%d, injector NetStalls %d",
			r.fwd.FaultStalls, r.rev.FaultStalls, r.inj.NetStalls)
	}
	// IP-side effects landed.
	var ipBusies, ipDelays int64
	for _, ip := range r.ips {
		ipBusies += ip.busies
		ipDelays += ip.delays
	}
	if ipBusies != r.inj.IPBusies || ipDelays != r.inj.IPDelays {
		t.Fatalf("IP counters (%d busy, %d delay) disagree with injector (%d, %d)",
			ipBusies, ipDelays, r.inj.IPBusies, r.inj.IPDelays)
	}
	// Cache- and bus-side effects landed.
	var cacheBusies, busStalls int64
	for _, c := range r.caches {
		cacheBusies += c.busies
		for _, b := range c.banks {
			if b < 0 || b >= 4 {
				t.Fatalf("bank index %d outside the cache's 4 banks", b)
			}
		}
	}
	for _, b := range r.buses {
		busStalls += b.stalls
	}
	if cacheBusies != r.inj.CacheBusies || busStalls != r.inj.BusStalls {
		t.Fatalf("cache/bus counters (%d busy, %d stall) disagree with injector (%d, %d)",
			cacheBusies, busStalls, r.inj.CacheBusies, r.inj.BusStalls)
	}
	// Idle networks carry nothing droppable: every drop is a no-target.
	if r.inj.NetDrops != 0 {
		t.Fatalf("dropped %d packets from an idle network", r.inj.NetDrops)
	}
	if r.inj.CEDrops != 0 {
		t.Fatalf("dropped %d CE packets from an idle network", r.inj.CEDrops)
	}
}

func TestCheckStopsAreRepairedAfterWindow(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.MeanInterval = 100
	cfg.RepairWindow = 500
	cfg.EnableNetStall = false
	cfg.EnableNetDrop = false
	cfg.EnableMemBusy = false
	cfg.EnableMemDegrade = false
	r := newFaultRig(t, cfg)
	r.eng.Run(30000)
	if r.inj.CheckStops == 0 {
		t.Fatal("no check-stops over 30k cycles")
	}
	var stops, repairs int
	for _, c := range r.ces {
		stops += c.stops
		repairs += c.repairs
		for i, ev := range c.eventLog {
			want := "stop"
			if i%2 == 1 {
				want = "repair"
			}
			if ev != want {
				t.Fatalf("CE event log not alternating stop/repair: %v", c.eventLog)
			}
		}
	}
	if int64(stops) != r.inj.CheckStops {
		t.Fatalf("CE stops %d, injector CheckStops %d", stops, r.inj.CheckStops)
	}
	// Every stop whose window elapsed was repaired; at most the tail stop
	// can still be down.
	if int64(repairs) != r.inj.Repairs || stops-repairs > len(r.ces) {
		t.Fatalf("stops=%d repairs=%d (injector Repairs=%d)", stops, repairs, r.inj.Repairs)
	}
}

func TestInjectorAllowsFastForwardBetweenFaults(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.MeanInterval = 1000
	r := newFaultRig(t, cfg)
	// With everything else idle the engine should skip straight to the
	// injector's scheduled cycles rather than ticking 100k times.
	r.eng.Run(100000)
	if r.inj.Injected+r.inj.NoTarget < 30 {
		t.Fatalf("only %d faults scheduled over 100k cycles at mean interval 1000",
			r.inj.Injected+r.inj.NoTarget)
	}
}

func TestDroppablePredicate(t *testing.T) {
	cases := []struct {
		p    network.Packet
		want bool
	}{
		{network.Packet{Kind: network.Read, Tag: 5}, true},
		{network.Packet{Kind: network.Reply, Tag: 511}, true},
		{network.Packet{Kind: network.Read, Tag: 1 << 20}, false}, // CE direct read
		{network.Packet{Kind: network.Sync, Tag: 5}, false},
		{network.Packet{Kind: network.Write, Tag: 5}, false},
	}
	for i, c := range cases {
		if got := Droppable(&c.p); got != c.want {
			t.Fatalf("case %d: Droppable(%v tag %d) = %v, want %v", i, c.p.Kind, c.p.Tag, got, c.want)
		}
	}
}

func TestDroppableCEPredicate(t *testing.T) {
	cases := []struct {
		p    network.Packet
		want bool
	}{
		{network.Packet{Kind: network.Read, Tag: 1<<20 + 1}, true},   // CE direct read
		{network.Packet{Kind: network.Reply, Tag: 1<<20 + 7}, true},  // CE direct reply
		{network.Packet{Kind: network.Read, Tag: 5}, false},          // prefetch tag
		{network.Packet{Kind: network.Reply, Tag: 511}, false},       // prefetch tag
		{network.Packet{Kind: network.Reply, Tag: 1<<28 + 1}, false}, // sync reply: never droppable
		{network.Packet{Kind: network.Sync, Tag: 1<<28 + 1}, false},
		{network.Packet{Kind: network.Write, Tag: 1<<20 + 1}, false},
	}
	for i, c := range cases {
		if got := DroppableCE(&c.p); got != c.want {
			t.Fatalf("case %d: DroppableCE(%v tag %d) = %v, want %v", i, c.p.Kind, c.p.Tag, got, c.want)
		}
	}
}

func TestEnableOnly(t *testing.T) {
	cfg := DefaultConfig(1)
	if err := cfg.EnableOnly([]string{"ce-drop", "bus-stall"}); err != nil {
		t.Fatal(err)
	}
	if got := cfg.kinds(); len(got) != 2 || got[0] != BusStall || got[1] != CEDrop {
		t.Fatalf("EnableOnly kept kinds %v, want [bus-stall ce-drop]", got)
	}
	cfg = DefaultConfig(1)
	if err := cfg.EnableOnly([]string{"net-stall", "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error does not name the unknown kind: %v", err)
	}
	if len(cfg.kinds()) != len(KindNames()) {
		t.Fatal("failed EnableOnly modified the config")
	}
	if err := cfg.EnableOnly(nil); err == nil {
		t.Fatal("empty kind list accepted")
	}
}

func TestKindNamesCoverEveryKind(t *testing.T) {
	names := KindNames()
	if len(names) != int(numKinds) {
		t.Fatalf("KindNames has %d entries for %d kinds", len(names), numKinds)
	}
	for i, n := range names {
		if n == "unknown" {
			t.Fatalf("kind %d has no mnemonic", i)
		}
	}
}

func TestDisabledConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector with MeanInterval 0 did not panic")
		}
	}()
	NewInjector(DefaultConfig(1), nil, nil, nil, nil, nil, nil, nil)
}

func TestSummaryTableRenders(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.MeanInterval = 40
	r := newFaultRig(t, cfg)
	r.eng.Run(5000)
	var sb strings.Builder
	if err := r.inj.SummaryTable().Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"net-stall", "check-stop", "seed 0x9"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("summary table missing %q:\n%s", want, sb.String())
		}
	}
}
