// Package fault injects deterministic transient faults into the Cedar
// model: omega-network switch-port stalls and dropped packets, global
// memory-module busy and degraded-service (ECC-retry) windows, CE
// check-stops, and interactive-processor busy windows and delayed I/O
// completions. Every fault is drawn from a seeded schedule, so a run with
// a given seed is exactly reproducible — and, because the injector is a
// sim.IdleComponent registered ahead of the architected components, the
// schedule lands on identical cycles in all three engine modes, keeping
// fault-injected runs bit-identical across naive, quiescent, and
// wake-cached execution.
//
// Recovery is the other half of the model and lives with the affected
// layers: request-layer timeout and reissue in prefetch and ce, graceful
// degradation in gmem, and Xylem-level gang rescheduling of a cluster
// task off a check-stopped CE. The injector only creates the hazards and
// repairs check-stopped CEs after a repair window.
package fault

import (
	"fmt"

	"repro/internal/gmem"
	"repro/internal/network"
	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// NetStall blocks one network resource (an entry register, a switch
	// output port, or a delivery link) for StallWindow cycles.
	NetStall Kind = iota
	// NetDrop discards one in-flight prefetch packet (request or reply).
	// Only prefetch-tagged Read/Reply packets are droppable: sync
	// operations are not idempotent at the module, and CE direct reads
	// rely on delay-only faults so every stale tag's reply eventually
	// arrives.
	NetDrop
	// MemBusy makes one memory module refuse to start service for
	// BusyWindow cycles (a controller check-stop with fast restart).
	MemBusy
	// MemDegrade puts one module in an ECC-retry regime: it keeps serving
	// for DegradeWindow cycles but each access costs DegradePenalty extra.
	MemDegrade
	// CheckStop halts one CE at its next instruction boundary until the
	// injector repairs it RepairWindow cycles later; a held program is
	// surrendered for gang rescheduling.
	CheckStop
	// IPBusy occupies one cluster's interactive processor with non-I/O
	// work for IPBusyWindow cycles: queued transfers wait, a transfer
	// already in flight drains normally.
	IPBusy
	// IPDelay inflates the service time of the next transfer an IP
	// starts by IPDelayPenalty cycles (a slow seek / retried sector).
	IPDelay
	numKinds
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case NetStall:
		return "net-stall"
	case NetDrop:
		return "net-drop"
	case MemBusy:
		return "mem-busy"
	case MemDegrade:
		return "mem-degrade"
	case CheckStop:
		return "check-stop"
	case IPBusy:
		return "ip-busy"
	case IPDelay:
		return "ip-delay"
	}
	return "unknown"
}

// Config parameterizes the fault schedule and the recovery knobs the
// machine builder pushes into the affected layers.
type Config struct {
	// Seed selects the deterministic fault schedule.
	Seed uint64
	// MeanInterval is the mean gap between injected faults in cycles;
	// zero disables the subsystem entirely (no injector is built, and
	// the machine is bit-identical to a fault-free build).
	MeanInterval sim.Cycle

	// Enable flags per fault class. DefaultConfig enables all.
	EnableNetStall   bool
	EnableNetDrop    bool
	EnableMemBusy    bool
	EnableMemDegrade bool
	EnableCheckStop  bool
	EnableIPBusy     bool
	EnableIPDelay    bool

	// StallWindow is the duration of a network resource stall.
	StallWindow sim.Cycle
	// BusyWindow is the duration of a memory-module busy fault.
	BusyWindow sim.Cycle
	// DegradeWindow and DegradePenalty shape a module's ECC-retry regime.
	DegradeWindow  sim.Cycle
	DegradePenalty sim.Cycle
	// RepairWindow is how long a check-stopped CE stays down before the
	// injector repairs it.
	RepairWindow sim.Cycle
	// RescheduleLatency is the Xylem kernel cost of redispatching a
	// surrendered cluster task.
	RescheduleLatency sim.Cycle
	// IPBusyWindow is the duration of an interactive-processor busy
	// fault; IPDelayPenalty the extra service time of a delayed
	// transfer.
	IPBusyWindow   sim.Cycle
	IPDelayPenalty sim.Cycle
	// ReadTimeout and MaxRetries are the request-layer recovery knobs the
	// builder pushes into every CE and PFU when the subsystem is enabled.
	ReadTimeout sim.Cycle
	MaxRetries  int
}

// DefaultConfig returns the calibrated fault parameters with all kinds
// enabled and the schedule disabled (MeanInterval zero) until a rate is
// chosen.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:              seed,
		EnableNetStall:    true,
		EnableNetDrop:     true,
		EnableMemBusy:     true,
		EnableMemDegrade:  true,
		EnableCheckStop:   true,
		EnableIPBusy:      true,
		EnableIPDelay:     true,
		StallWindow:       20,
		BusyWindow:        30,
		DegradeWindow:     200,
		DegradePenalty:    2,
		IPBusyWindow:      400,
		IPDelayPenalty:    120,
		RepairWindow:      2000,
		RescheduleLatency: 500,
		ReadTimeout:       200,
		MaxRetries:        6,
	}
}

// Enabled reports whether the schedule injects anything.
func (c Config) Enabled() bool { return c.MeanInterval > 0 }

func (c Config) kinds() []Kind {
	var ks []Kind
	if c.EnableNetStall {
		ks = append(ks, NetStall)
	}
	if c.EnableNetDrop {
		ks = append(ks, NetDrop)
	}
	if c.EnableMemBusy {
		ks = append(ks, MemBusy)
	}
	if c.EnableMemDegrade {
		ks = append(ks, MemDegrade)
	}
	if c.EnableCheckStop {
		ks = append(ks, CheckStop)
	}
	if c.EnableIPBusy {
		ks = append(ks, IPBusy)
	}
	if c.EnableIPDelay {
		ks = append(ks, IPDelay)
	}
	return ks
}

// Droppable is the predicate the injector hands to the network drop
// hooks: only prefetch-tagged data packets may vanish, because the PFU's
// timeout/reissue path is the one recovery layer that tolerates loss.
func Droppable(p *network.Packet) bool {
	return (p.Kind == network.Read || p.Kind == network.Reply) && p.Tag < prefetch.BufferWords
}

// StoppableCE is the slice of the CE the injector drives for check-stop
// faults; ce.CE satisfies it.
type StoppableCE interface {
	CheckStop(now sim.Cycle)
	Repair(now sim.Cycle)
	CheckStopped() bool
}

// FaultableIP is the slice of the interactive processor the injector
// drives for I/O-path faults; cluster.IP satisfies it. Both hooks only
// defer future transfer starts — they never touch a transfer in flight —
// so they stay behaviorally identical across engine modes.
type FaultableIP interface {
	FaultBusy(now, window sim.Cycle)
	FaultDelayNext(extra sim.Cycle)
}

// repairTimer schedules the repair of a check-stopped CE.
type repairTimer struct {
	ce int
	at sim.Cycle
}

// Injector is the seeded fault scheduler. It is a sim.IdleComponent and
// MUST be registered before every architected component: its tick slot
// then precedes theirs within a cycle, so a fault window set at cycle t
// is visible to the target's own tick at t in every engine mode, which
// is what keeps fault-injected runs mode-bit-identical.
type Injector struct {
	cfg   Config
	rng   *sim.Rand
	kinds []Kind

	fwd, rev *network.Network
	mods     []*gmem.Module
	ces      []StoppableCE
	ips      []FaultableIP

	next    sim.Cycle
	repairs []repairTimer

	// Counters.
	Injected    int64 // faults applied
	NetStalls   int64
	NetDrops    int64
	MemBusies   int64
	MemDegrades int64
	CheckStops  int64
	IPBusies    int64
	IPDelays    int64
	Repairs     int64
	NoTarget    int64 // scheduled faults with no eligible target (skipped)
}

// NewInjector builds an injector over the machine's fault surfaces. It
// panics if the config is not Enabled or enables no fault kind: the
// builder must simply not construct an injector for a fault-free run.
func NewInjector(cfg Config, fwd, rev *network.Network, mods []*gmem.Module, ces []StoppableCE, ips []FaultableIP) *Injector {
	if !cfg.Enabled() {
		panic("fault: NewInjector with a disabled config")
	}
	kinds := cfg.kinds()
	if len(kinds) == 0 {
		panic("fault: no fault kinds enabled")
	}
	inj := &Injector{
		cfg:   cfg,
		rng:   sim.NewRand(cfg.Seed),
		kinds: kinds,
		fwd:   fwd,
		rev:   rev,
		mods:  mods,
		ces:   ces,
		ips:   ips,
	}
	inj.next = inj.gap()
	return inj
}

// gap draws the next inter-fault interval: uniform on [1, 2*MeanInterval],
// mean ~MeanInterval.
func (inj *Injector) gap() sim.Cycle {
	return 1 + sim.Cycle(inj.rng.Intn(int(2*inj.cfg.MeanInterval)))
}

// NextEvent implements sim.IdleComponent: the next fault or repair cycle.
// The injector is never dormant — there is always a next scheduled fault —
// so fast-forward remains possible between faults but no fault cycle is
// ever skipped.
func (inj *Injector) NextEvent(now sim.Cycle) sim.Cycle {
	next := inj.next
	for _, r := range inj.repairs {
		if r.at < next {
			next = r.at
		}
	}
	if next < now {
		return now
	}
	return next
}

// Tick applies due repairs, then a due fault. Guarded so the extra ticks
// the naive engine delivers draw nothing from the RNG: the draw sequence
// is a pure function of the schedule, identical in every mode.
func (inj *Injector) Tick(now sim.Cycle) {
	kept := inj.repairs[:0]
	for _, r := range inj.repairs {
		if r.at <= now {
			inj.ces[r.ce].Repair(now)
			inj.Repairs++
		} else {
			kept = append(kept, r)
		}
	}
	inj.repairs = kept
	if now < inj.next {
		return
	}
	inj.inject(now)
	inj.next = now + inj.gap()
}

func (inj *Injector) inject(now sim.Cycle) {
	switch inj.kinds[inj.rng.Intn(len(inj.kinds))] {
	case NetStall:
		inj.injectNetStall(now)
	case NetDrop:
		inj.injectNetDrop(now)
	case MemBusy:
		m := inj.mods[inj.rng.Intn(len(inj.mods))]
		m.FaultBusy(now, inj.cfg.BusyWindow)
		inj.MemBusies++
		inj.Injected++
	case MemDegrade:
		m := inj.mods[inj.rng.Intn(len(inj.mods))]
		m.FaultDegrade(now, inj.cfg.DegradeWindow, inj.cfg.DegradePenalty)
		inj.MemDegrades++
		inj.Injected++
	case CheckStop:
		inj.injectCheckStop(now)
	case IPBusy:
		if len(inj.ips) == 0 {
			inj.NoTarget++
			return
		}
		inj.ips[inj.rng.Intn(len(inj.ips))].FaultBusy(now, inj.cfg.IPBusyWindow)
		inj.IPBusies++
		inj.Injected++
	case IPDelay:
		if len(inj.ips) == 0 {
			inj.NoTarget++
			return
		}
		inj.ips[inj.rng.Intn(len(inj.ips))].FaultDelayNext(inj.cfg.IPDelayPenalty)
		inj.IPDelays++
		inj.Injected++
	}
}

// pickNet chooses the forward or reverse network.
func (inj *Injector) pickNet() *network.Network {
	if inj.rng.Intn(2) == 0 {
		return inj.fwd
	}
	return inj.rev
}

func (inj *Injector) injectNetStall(now sim.Cycle) {
	n := inj.pickNet()
	w := inj.cfg.StallWindow
	switch inj.rng.Intn(3) {
	case 0:
		n.StallEntry(now, inj.rng.Intn(n.Ports()), w)
	case 1:
		s := inj.rng.Intn(n.Stages())
		swi := inj.rng.Intn(n.Ports() / n.Radix())
		n.StallSwitchOut(now, s, swi, inj.rng.Intn(n.Radix()), w)
	case 2:
		n.StallDelivery(now, inj.rng.Intn(n.Ports()), w)
	}
	inj.NetStalls++
	inj.Injected++
}

func (inj *Injector) injectNetDrop(now sim.Cycle) {
	n := inj.pickNet()
	var pk *network.Packet
	if inj.rng.Intn(2) == 0 {
		pk = n.DropEntryHead(inj.rng.Intn(n.Ports()), Droppable)
	} else {
		s := inj.rng.Intn(n.Stages())
		swi := inj.rng.Intn(n.Ports() / n.Radix())
		pk = n.DropSwitchHead(s, swi, inj.rng.Intn(n.Radix()), Droppable)
	}
	if pk == nil {
		inj.NoTarget++
		return
	}
	inj.NetDrops++
	inj.Injected++
}

func (inj *Injector) injectCheckStop(now sim.Cycle) {
	c := inj.rng.Intn(len(inj.ces))
	if inj.ces[c].CheckStopped() {
		inj.NoTarget++
		return
	}
	inj.ces[c].CheckStop(now)
	inj.repairs = append(inj.repairs, repairTimer{ce: c, at: now + inj.cfg.RepairWindow})
	inj.CheckStops++
	inj.Injected++
}

// RegisterMetrics publishes the injector's counters under prefix
// (conventionally "fault").
func (inj *Injector) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/injected", &inj.Injected)
	reg.Counter(prefix+"/net_stalls", &inj.NetStalls)
	reg.Counter(prefix+"/net_drops", &inj.NetDrops)
	reg.Counter(prefix+"/mem_busies", &inj.MemBusies)
	reg.Counter(prefix+"/mem_degrades", &inj.MemDegrades)
	reg.Counter(prefix+"/check_stops", &inj.CheckStops)
	reg.Counter(prefix+"/ip_busies", &inj.IPBusies)
	reg.Counter(prefix+"/ip_delays", &inj.IPDelays)
	reg.Counter(prefix+"/repairs", &inj.Repairs)
	reg.Counter(prefix+"/no_target", &inj.NoTarget)
}

// SummaryTable renders the injected-fault census for the CLI report.
func (inj *Injector) SummaryTable() *report.Table {
	t := report.NewTable("Injected faults", "kind", "count")
	t.AddRow(NetStall.String(), fmt.Sprint(inj.NetStalls))
	t.AddRow(NetDrop.String(), fmt.Sprint(inj.NetDrops))
	t.AddRow(MemBusy.String(), fmt.Sprint(inj.MemBusies))
	t.AddRow(MemDegrade.String(), fmt.Sprint(inj.MemDegrades))
	t.AddRow(CheckStop.String(), fmt.Sprint(inj.CheckStops))
	t.AddRow(IPBusy.String(), fmt.Sprint(inj.IPBusies))
	t.AddRow(IPDelay.String(), fmt.Sprint(inj.IPDelays))
	t.AddRow("repairs", fmt.Sprint(inj.Repairs))
	t.AddRow("no-target", fmt.Sprint(inj.NoTarget))
	t.AddNote(fmt.Sprintf("seed %#x, mean interval %d cycles", inj.cfg.Seed, inj.cfg.MeanInterval))
	return t
}
