// Package fault injects deterministic transient faults into the Cedar
// model: omega-network switch-port stalls and dropped packets (prefetch
// and CE direct tags), global memory-module busy and degraded-service
// (ECC-retry) windows, CE check-stops, interactive-processor busy
// windows and delayed I/O completions, cluster-cache bank busy windows,
// and concurrency-bus stalls. Every fault is drawn from a seeded
// schedule, so a run with a given seed is exactly reproducible — and,
// because the injector is a sim.IdleComponent registered ahead of the
// architected components, the schedule lands on identical cycles in all
// four engine modes, keeping fault-injected runs bit-identical across
// naive, quiescent, wake-cached, and cluster-parallel execution. In
// parallel mode all injection happens in the pre-band phase (the
// injector is a global component ticked by the coordinator before the
// domains fork), so hazard windows written here are visible to every
// domain through the fork's happens-before edge with no sim.Boundary
// deferral needed.
//
// Recovery is the other half of the model and lives with the affected
// layers: request-layer timeout and reissue in prefetch and ce (both
// scalar reads and direct vector stream elements), graceful degradation
// in gmem, deferred service in the cache banks and the concurrency bus
// (which never lose state, so waiting is the whole recovery), and
// Xylem-level gang rescheduling of a cluster task off a check-stopped
// CE. The injector only creates the hazards and repairs check-stopped
// CEs after a repair window.
package fault

import (
	"fmt"
	"strings"

	"repro/internal/ce"
	"repro/internal/gmem"
	"repro/internal/network"
	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// NetStall blocks one network resource (an entry register, a switch
	// output port, or a delivery link) for StallWindow cycles.
	NetStall Kind = iota
	// NetDrop discards one in-flight prefetch packet (request or reply).
	// Only prefetch-tagged Read/Reply packets are droppable by this
	// kind; CEDrop covers CE direct tags, and sync packets are never
	// droppable (the Test-And-Operate at the module is not idempotent).
	NetDrop
	// MemBusy makes one memory module refuse to start service for
	// BusyWindow cycles (a controller check-stop with fast restart).
	MemBusy
	// MemDegrade puts one module in an ECC-retry regime: it keeps serving
	// for DegradeWindow cycles but each access costs DegradePenalty extra.
	MemDegrade
	// CheckStop halts one CE at its next instruction boundary until the
	// injector repairs it RepairWindow cycles later; a held program is
	// surrendered for gang rescheduling.
	CheckStop
	// IPBusy occupies one cluster's interactive processor with non-I/O
	// work for IPBusyWindow cycles: queued transfers wait, a transfer
	// already in flight drains normally.
	IPBusy
	// IPDelay inflates the service time of the next transfer an IP
	// starts by IPDelayPenalty cycles (a slow seek / retried sector).
	IPDelay
	// CacheBankBusy monopolizes one cluster-cache bank for
	// CacheBusyWindow cycles: all of the bank's ports refuse service
	// until the window expires. Recovery is structural — every cache
	// client already retries refused accesses next cycle.
	CacheBankBusy
	// BusStall stalls one cluster's concurrency bus for BusStallWindow
	// cycles: claim and concurrent-start operations beginning inside the
	// window are stretched by its remainder.
	BusStall
	// CEDrop discards one in-flight CE direct-tagged packet (a scalar
	// read or vector stream element, request or reply). Recovery is the
	// CE's inflight-queue timeout-and-reissue path; sync tags live in a
	// separate namespace and are never droppable.
	CEDrop
	numKinds
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case NetStall:
		return "net-stall"
	case NetDrop:
		return "net-drop"
	case MemBusy:
		return "mem-busy"
	case MemDegrade:
		return "mem-degrade"
	case CheckStop:
		return "check-stop"
	case IPBusy:
		return "ip-busy"
	case IPDelay:
		return "ip-delay"
	case CacheBankBusy:
		return "cache-bank-busy"
	case BusStall:
		return "bus-stall"
	case CEDrop:
		return "ce-drop"
	}
	return "unknown"
}

// KindNames lists every fault kind's mnemonic, in declaration order —
// the vocabulary of Config.EnableOnly and cedarsim's -fault-kinds.
func KindNames() []string {
	names := make([]string, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		names = append(names, k.String())
	}
	return names
}

// Config parameterizes the fault schedule and the recovery knobs the
// machine builder pushes into the affected layers.
type Config struct {
	// Seed selects the deterministic fault schedule.
	Seed uint64
	// MeanInterval is the mean gap between injected faults in cycles;
	// zero disables the subsystem entirely (no injector is built, and
	// the machine is bit-identical to a fault-free build).
	MeanInterval sim.Cycle

	// Enable flags per fault class. DefaultConfig enables all.
	EnableNetStall      bool
	EnableNetDrop       bool
	EnableMemBusy       bool
	EnableMemDegrade    bool
	EnableCheckStop     bool
	EnableIPBusy        bool
	EnableIPDelay       bool
	EnableCacheBankBusy bool
	EnableBusStall      bool
	EnableCEDrop        bool

	// StallWindow is the duration of a network resource stall.
	StallWindow sim.Cycle
	// BusyWindow is the duration of a memory-module busy fault.
	BusyWindow sim.Cycle
	// DegradeWindow and DegradePenalty shape a module's ECC-retry regime.
	DegradeWindow  sim.Cycle
	DegradePenalty sim.Cycle
	// RepairWindow is how long a check-stopped CE stays down before the
	// injector repairs it.
	RepairWindow sim.Cycle
	// RescheduleLatency is the Xylem kernel cost of redispatching a
	// surrendered cluster task.
	RescheduleLatency sim.Cycle
	// IPBusyWindow is the duration of an interactive-processor busy
	// fault; IPDelayPenalty the extra service time of a delayed
	// transfer.
	IPBusyWindow   sim.Cycle
	IPDelayPenalty sim.Cycle
	// CacheBusyWindow is the duration of a cache-bank busy fault;
	// BusStallWindow the duration of a concurrency-bus stall.
	CacheBusyWindow sim.Cycle
	BusStallWindow  sim.Cycle
	// ReadTimeout and MaxRetries are the request-layer recovery knobs the
	// builder pushes into every CE and PFU when the subsystem is enabled.
	ReadTimeout sim.Cycle
	MaxRetries  int
}

// DefaultConfig returns the calibrated fault parameters with all kinds
// enabled and the schedule disabled (MeanInterval zero) until a rate is
// chosen.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                seed,
		EnableNetStall:      true,
		EnableNetDrop:       true,
		EnableMemBusy:       true,
		EnableMemDegrade:    true,
		EnableCheckStop:     true,
		EnableIPBusy:        true,
		EnableIPDelay:       true,
		EnableCacheBankBusy: true,
		EnableBusStall:      true,
		EnableCEDrop:        true,
		StallWindow:         20,
		BusyWindow:          30,
		DegradeWindow:       200,
		DegradePenalty:      2,
		IPBusyWindow:        400,
		IPDelayPenalty:      120,
		CacheBusyWindow:     25,
		BusStallWindow:      40,
		RepairWindow:        2000,
		RescheduleLatency:   500,
		ReadTimeout:         200,
		MaxRetries:          6,
	}
}

// EnableOnly restricts the schedule to the named kinds (mnemonics from
// KindNames), clearing every other enable flag. An unknown name or an
// empty list is an error, reported before any flag is modified.
func (c *Config) EnableOnly(names []string) error {
	flags := map[string]*bool{
		NetStall.String():      &c.EnableNetStall,
		NetDrop.String():       &c.EnableNetDrop,
		MemBusy.String():       &c.EnableMemBusy,
		MemDegrade.String():    &c.EnableMemDegrade,
		CheckStop.String():     &c.EnableCheckStop,
		IPBusy.String():        &c.EnableIPBusy,
		IPDelay.String():       &c.EnableIPDelay,
		CacheBankBusy.String(): &c.EnableCacheBankBusy,
		BusStall.String():      &c.EnableBusStall,
		CEDrop.String():        &c.EnableCEDrop,
	}
	if len(names) == 0 {
		return fmt.Errorf("fault: no kinds named (known: %s)", strings.Join(KindNames(), ","))
	}
	picked := make([]*bool, 0, len(names))
	for _, name := range names {
		f, ok := flags[name]
		if !ok {
			return fmt.Errorf("fault: unknown kind %q (known: %s)", name, strings.Join(KindNames(), ","))
		}
		picked = append(picked, f)
	}
	for _, f := range flags {
		*f = false
	}
	for _, f := range picked {
		*f = true
	}
	return nil
}

// Enabled reports whether the schedule injects anything.
func (c Config) Enabled() bool { return c.MeanInterval > 0 }

func (c Config) kinds() []Kind {
	var ks []Kind
	if c.EnableNetStall {
		ks = append(ks, NetStall)
	}
	if c.EnableNetDrop {
		ks = append(ks, NetDrop)
	}
	if c.EnableMemBusy {
		ks = append(ks, MemBusy)
	}
	if c.EnableMemDegrade {
		ks = append(ks, MemDegrade)
	}
	if c.EnableCheckStop {
		ks = append(ks, CheckStop)
	}
	if c.EnableIPBusy {
		ks = append(ks, IPBusy)
	}
	if c.EnableIPDelay {
		ks = append(ks, IPDelay)
	}
	if c.EnableCacheBankBusy {
		ks = append(ks, CacheBankBusy)
	}
	if c.EnableBusStall {
		ks = append(ks, BusStall)
	}
	if c.EnableCEDrop {
		ks = append(ks, CEDrop)
	}
	return ks
}

// Droppable is the predicate the injector hands to the network drop
// hooks for NetDrop: only prefetch-tagged data packets may vanish,
// because the PFU's timeout/reissue path tolerates loss.
func Droppable(p *network.Packet) bool {
	return (p.Kind == network.Read || p.Kind == network.Reply) && p.Tag < prefetch.TagSpan
}

// DroppableCE is the CEDrop predicate: data packets carrying CE direct
// request tags — scalar reads and vector stream elements, whose loss
// the CE's inflight-queue timeout-and-reissue path recovers. Sync
// packets are excluded by tag range: a sync reply is an ordinary
// network.Reply distinguishable only by its tag living at or above
// ce.SyncTagBase, and the Test-And-Operate it answers must never be
// reissued.
func DroppableCE(p *network.Packet) bool {
	return (p.Kind == network.Read || p.Kind == network.Reply) &&
		p.Tag >= ce.TagBase && p.Tag < ce.SyncTagBase
}

// StoppableCE is the slice of the CE the injector drives for check-stop
// faults; ce.CE satisfies it.
type StoppableCE interface {
	CheckStop(now sim.Cycle)
	Repair(now sim.Cycle)
	CheckStopped() bool
}

// FaultableIP is the slice of the interactive processor the injector
// drives for I/O-path faults; cluster.IP satisfies it. Both hooks only
// defer future transfer starts — they never touch a transfer in flight —
// so they stay behaviorally identical across engine modes.
type FaultableIP interface {
	FaultBusy(now, window sim.Cycle)
	FaultDelayNext(extra sim.Cycle)
}

// FaultableCache is the slice of the cluster cache the injector drives
// for bank-busy faults; cache.Cache satisfies it. The hook only defers
// port service (callers retry refused accesses), never losing state.
type FaultableCache interface {
	FaultBankBusy(now sim.Cycle, bank int, window sim.Cycle)
	Banks() int
}

// FaultableBus is the slice of the cluster's concurrency bus the
// injector drives for bus-stall faults; cluster.Cluster satisfies it.
// The hook only stretches operations that start inside the window.
type FaultableBus interface {
	FaultBusStall(now sim.Cycle, window sim.Cycle)
}

// repairTimer schedules the repair of a check-stopped CE.
type repairTimer struct {
	ce int
	at sim.Cycle
}

// Injector is the seeded fault scheduler. It is a sim.IdleComponent and
// MUST be registered before every architected component: its tick slot
// then precedes theirs within a cycle, so a fault window set at cycle t
// is visible to the target's own tick at t in every engine mode, which
// is what keeps fault-injected runs mode-bit-identical.
type Injector struct {
	cfg   Config
	rng   *sim.Rand
	kinds []Kind

	fwd, rev *network.Network
	mods     []*gmem.Module
	ces      []StoppableCE
	ips      []FaultableIP
	caches   []FaultableCache
	buses    []FaultableBus

	next    sim.Cycle
	repairs []repairTimer

	// Counters.
	Injected    int64 // faults applied
	NetStalls   int64
	NetDrops    int64
	MemBusies   int64
	MemDegrades int64
	CheckStops  int64
	IPBusies    int64
	IPDelays    int64
	CacheBusies int64
	BusStalls   int64
	CEDrops     int64
	Repairs     int64
	NoTarget    int64 // scheduled faults with no eligible target (skipped)
}

// NewInjector builds an injector over the machine's fault surfaces. It
// panics if the config is not Enabled or enables no fault kind: the
// builder must simply not construct an injector for a fault-free run.
func NewInjector(cfg Config, fwd, rev *network.Network, mods []*gmem.Module, ces []StoppableCE, ips []FaultableIP, caches []FaultableCache, buses []FaultableBus) *Injector {
	if !cfg.Enabled() {
		panic("fault: NewInjector with a disabled config")
	}
	kinds := cfg.kinds()
	if len(kinds) == 0 {
		panic("fault: no fault kinds enabled")
	}
	inj := &Injector{
		cfg:    cfg,
		rng:    sim.NewRand(cfg.Seed),
		kinds:  kinds,
		fwd:    fwd,
		rev:    rev,
		mods:   mods,
		ces:    ces,
		ips:    ips,
		caches: caches,
		buses:  buses,
	}
	inj.next = inj.gap()
	return inj
}

// PendingRepairs reports the check-stopped CEs still awaiting their
// repair timer — the census term that balances CheckStops against
// Repairs when a run ends mid-window.
func (inj *Injector) PendingRepairs() int { return len(inj.repairs) }

// gap draws the next inter-fault interval: uniform on [1, 2*MeanInterval],
// mean ~MeanInterval.
func (inj *Injector) gap() sim.Cycle {
	return 1 + sim.Cycle(inj.rng.Intn(int(2*inj.cfg.MeanInterval)))
}

// NextEvent implements sim.IdleComponent: the next fault or repair cycle.
// The injector is never dormant — there is always a next scheduled fault —
// so fast-forward remains possible between faults but no fault cycle is
// ever skipped.
func (inj *Injector) NextEvent(now sim.Cycle) sim.Cycle {
	next := inj.next
	for _, r := range inj.repairs {
		if r.at < next {
			next = r.at
		}
	}
	if next < now {
		return now
	}
	return next
}

// Tick applies due repairs, then a due fault. Guarded so the extra ticks
// the naive engine delivers draw nothing from the RNG: the draw sequence
// is a pure function of the schedule, identical in every mode.
func (inj *Injector) Tick(now sim.Cycle) {
	kept := inj.repairs[:0]
	for _, r := range inj.repairs {
		if r.at <= now {
			inj.ces[r.ce].Repair(now)
			inj.Repairs++
		} else {
			kept = append(kept, r)
		}
	}
	inj.repairs = kept
	if now < inj.next {
		return
	}
	inj.inject(now)
	inj.next = now + inj.gap()
}

func (inj *Injector) inject(now sim.Cycle) {
	switch inj.kinds[inj.rng.Intn(len(inj.kinds))] {
	case NetStall:
		inj.injectNetStall(now)
	case NetDrop:
		inj.injectNetDrop(now)
	case MemBusy:
		m := inj.mods[inj.rng.Intn(len(inj.mods))]
		m.FaultBusy(now, inj.cfg.BusyWindow)
		inj.MemBusies++
		inj.Injected++
	case MemDegrade:
		m := inj.mods[inj.rng.Intn(len(inj.mods))]
		m.FaultDegrade(now, inj.cfg.DegradeWindow, inj.cfg.DegradePenalty)
		inj.MemDegrades++
		inj.Injected++
	case CheckStop:
		inj.injectCheckStop(now)
	case IPBusy:
		if len(inj.ips) == 0 {
			inj.NoTarget++
			return
		}
		inj.ips[inj.rng.Intn(len(inj.ips))].FaultBusy(now, inj.cfg.IPBusyWindow)
		inj.IPBusies++
		inj.Injected++
	case IPDelay:
		if len(inj.ips) == 0 {
			inj.NoTarget++
			return
		}
		inj.ips[inj.rng.Intn(len(inj.ips))].FaultDelayNext(inj.cfg.IPDelayPenalty)
		inj.IPDelays++
		inj.Injected++
	case CacheBankBusy:
		if len(inj.caches) == 0 {
			inj.NoTarget++
			return
		}
		ch := inj.caches[inj.rng.Intn(len(inj.caches))]
		ch.FaultBankBusy(now, inj.rng.Intn(ch.Banks()), inj.cfg.CacheBusyWindow)
		inj.CacheBusies++
		inj.Injected++
	case BusStall:
		if len(inj.buses) == 0 {
			inj.NoTarget++
			return
		}
		inj.buses[inj.rng.Intn(len(inj.buses))].FaultBusStall(now, inj.cfg.BusStallWindow)
		inj.BusStalls++
		inj.Injected++
	case CEDrop:
		inj.injectCEDrop(now)
	}
}

// pickNet chooses the forward or reverse network.
func (inj *Injector) pickNet() *network.Network {
	if inj.rng.Intn(2) == 0 {
		return inj.fwd
	}
	return inj.rev
}

func (inj *Injector) injectNetStall(now sim.Cycle) {
	n := inj.pickNet()
	w := inj.cfg.StallWindow
	switch inj.rng.Intn(3) {
	case 0:
		n.StallEntry(now, inj.rng.Intn(n.Ports()), w)
	case 1:
		s := inj.rng.Intn(n.Stages())
		swi := inj.rng.Intn(n.Ports() / n.Radix())
		n.StallSwitchOut(now, s, swi, inj.rng.Intn(n.Radix()), w)
	case 2:
		n.StallDelivery(now, inj.rng.Intn(n.Ports()), w)
	}
	inj.NetStalls++
	inj.Injected++
}

func (inj *Injector) injectNetDrop(now sim.Cycle) {
	n := inj.pickNet()
	var pk *network.Packet
	if inj.rng.Intn(2) == 0 {
		pk = n.DropEntryHead(inj.rng.Intn(n.Ports()), Droppable)
	} else {
		s := inj.rng.Intn(n.Stages())
		swi := inj.rng.Intn(n.Ports() / n.Radix())
		pk = n.DropSwitchHead(s, swi, inj.rng.Intn(n.Radix()), Droppable)
	}
	if pk == nil {
		inj.NoTarget++
		return
	}
	inj.NetDrops++
	inj.Injected++
}

// injectCEDrop discards one in-flight CE direct-tagged packet, from the
// same drop surfaces as NetDrop but selected by DroppableCE. Unlike the
// prefetch streams NetDrop feeds on, CE direct traffic is sparse — a
// handful of outstanding reads per CE — so a single random probe would
// miss almost every time. The chosen network's surfaces are scanned in
// deterministic order instead, and the first matching packet dies;
// NoTarget means no CE direct packet was in flight there at all.
func (inj *Injector) injectCEDrop(now sim.Cycle) {
	n := inj.pickNet()
	var pk *network.Packet
	for p := 0; p < n.Ports() && pk == nil; p++ {
		pk = n.DropEntryHead(p, DroppableCE)
	}
	for s := 0; s < n.Stages() && pk == nil; s++ {
		for swi := 0; swi < n.Ports()/n.Radix() && pk == nil; swi++ {
			for in := 0; in < n.Radix() && pk == nil; in++ {
				pk = n.DropSwitchHead(s, swi, in, DroppableCE)
			}
		}
	}
	if pk == nil {
		inj.NoTarget++
		return
	}
	inj.CEDrops++
	inj.Injected++
}

func (inj *Injector) injectCheckStop(now sim.Cycle) {
	c := inj.rng.Intn(len(inj.ces))
	if inj.ces[c].CheckStopped() {
		inj.NoTarget++
		return
	}
	inj.ces[c].CheckStop(now)
	inj.repairs = append(inj.repairs, repairTimer{ce: c, at: now + inj.cfg.RepairWindow})
	inj.CheckStops++
	inj.Injected++
}

// RegisterMetrics publishes the injector's counters under prefix
// (conventionally "fault").
func (inj *Injector) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/injected", &inj.Injected)
	reg.Counter(prefix+"/net_stalls", &inj.NetStalls)
	reg.Counter(prefix+"/net_drops", &inj.NetDrops)
	reg.Counter(prefix+"/mem_busies", &inj.MemBusies)
	reg.Counter(prefix+"/mem_degrades", &inj.MemDegrades)
	reg.Counter(prefix+"/check_stops", &inj.CheckStops)
	reg.Counter(prefix+"/ip_busies", &inj.IPBusies)
	reg.Counter(prefix+"/ip_delays", &inj.IPDelays)
	reg.Counter(prefix+"/cache_busies", &inj.CacheBusies)
	reg.Counter(prefix+"/bus_stalls", &inj.BusStalls)
	reg.Counter(prefix+"/ce_drops", &inj.CEDrops)
	reg.Counter(prefix+"/repairs", &inj.Repairs)
	reg.Counter(prefix+"/no_target", &inj.NoTarget)
}

// Census returns the injected-fault counts keyed by kind mnemonic,
// plus "repairs" and "no-target" — the serializable form of
// SummaryTable, carried in job results.
func (inj *Injector) Census() map[string]int64 {
	return map[string]int64{
		NetStall.String():      inj.NetStalls,
		NetDrop.String():       inj.NetDrops,
		MemBusy.String():       inj.MemBusies,
		MemDegrade.String():    inj.MemDegrades,
		CheckStop.String():     inj.CheckStops,
		IPBusy.String():        inj.IPBusies,
		IPDelay.String():       inj.IPDelays,
		CacheBankBusy.String(): inj.CacheBusies,
		BusStall.String():      inj.BusStalls,
		CEDrop.String():        inj.CEDrops,
		"repairs":              inj.Repairs,
		"no-target":            inj.NoTarget,
	}
}

// SummaryTable renders the injected-fault census for the CLI report.
func (inj *Injector) SummaryTable() *report.Table {
	t := report.NewTable("Injected faults", "kind", "count")
	t.AddRow(NetStall.String(), fmt.Sprint(inj.NetStalls))
	t.AddRow(NetDrop.String(), fmt.Sprint(inj.NetDrops))
	t.AddRow(MemBusy.String(), fmt.Sprint(inj.MemBusies))
	t.AddRow(MemDegrade.String(), fmt.Sprint(inj.MemDegrades))
	t.AddRow(CheckStop.String(), fmt.Sprint(inj.CheckStops))
	t.AddRow(IPBusy.String(), fmt.Sprint(inj.IPBusies))
	t.AddRow(IPDelay.String(), fmt.Sprint(inj.IPDelays))
	t.AddRow(CacheBankBusy.String(), fmt.Sprint(inj.CacheBusies))
	t.AddRow(BusStall.String(), fmt.Sprint(inj.BusStalls))
	t.AddRow(CEDrop.String(), fmt.Sprint(inj.CEDrops))
	t.AddRow("repairs", fmt.Sprint(inj.Repairs))
	t.AddRow("no-target", fmt.Sprint(inj.NoTarget))
	t.AddNote(fmt.Sprintf("seed %#x, mean interval %d cycles", inj.cfg.Seed, inj.cfg.MeanInterval))
	return t
}
