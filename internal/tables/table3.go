package tables

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/compare"
	"repro/internal/perfect"
	"repro/internal/report"
)

// Table3Row is one Perfect code's modeled results in the paper's layout.
type Table3Row struct {
	Code            string
	KapSeconds      float64
	KapImprovement  float64
	AutoSeconds     float64
	AutoImprovement float64
	NoSyncSeconds   float64
	NoSyncSlowdown  float64 // fraction vs Auto
	NoPrefSeconds   float64
	NoPrefSlowdown  float64 // fraction vs NoSync (the paper's convention)
	MFLOPS          float64
	YMPRatio        float64
	HasAuto         bool
}

// Table3Data is the regenerated Table 3.
type Table3Data struct {
	Rows  []Table3Row
	Suite []*perfect.Profile
	Rates perfect.Rates
}

// RunTable3 evaluates the calibrated Perfect models under the given
// rates (zero value selects the defaults measured from the simulator).
func RunTable3(r perfect.Rates) (*Table3Data, error) {
	if r == (perfect.Rates{}) {
		r = perfect.DefaultRates()
	}
	suite, err := perfect.NewSuite(r)
	if err != nil {
		return nil, err
	}
	ds := compare.Dataset()
	ratio := map[string]float64{}
	for _, c := range ds {
		ratio[c.Name] = c.YMPOverCedar
	}
	d := &Table3Data{Suite: suite, Rates: r}
	for _, p := range suite {
		row := Table3Row{Code: p.Name, YMPRatio: ratio[p.Name]}
		row.KapSeconds, err = p.Time(perfect.KAP, r)
		if err != nil {
			return nil, err
		}
		row.KapImprovement = p.SerialSeconds / row.KapSeconds
		auto, err := p.Time(perfect.Auto, r)
		switch {
		case err == nil:
			row.HasAuto = true
			row.AutoSeconds = auto
			row.AutoImprovement = p.SerialSeconds / auto
			ns, err := p.Time(perfect.AutoNoSync, r)
			if err != nil {
				return nil, err
			}
			np, err := p.Time(perfect.AutoNoPref, r)
			if err != nil {
				return nil, err
			}
			row.NoSyncSeconds = ns
			row.NoSyncSlowdown = (ns - auto) / auto
			row.NoPrefSeconds = np
			row.NoPrefSlowdown = (np - ns) / ns
			mf, err := p.CedarMFLOPS(r)
			if err != nil {
				return nil, err
			}
			row.MFLOPS = mf
		case errors.Is(err, perfect.ErrNoVariant):
			row.MFLOPS = p.Targets.MFLOPS
		default:
			return nil, err
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Get returns the row for a code.
func (d *Table3Data) Get(code string) (Table3Row, bool) {
	for _, r := range d.Rows {
		if r.Code == code {
			return r, true
		}
	}
	return Table3Row{}, false
}

// Render writes the table in the paper's layout.
func (d *Table3Data) Render(w io.Writer) error {
	t := report.NewTable(
		"Table 3: Cedar execution time, megaflops, and speed improvement for Perfect Benchmarks (modeled)",
		"program", "kap t (imp)", "auto t (imp)", "w/o sync (slow)", "w/o pref (slow)", "MFLOPS", "YMP-8/Cedar")
	for _, r := range d.Rows {
		if !r.HasAuto {
			t.AddRow(r.Code,
				fmt.Sprintf("%s (%s)", report.F(r.KapSeconds), report.F(r.KapImprovement)),
				"NA", "NA", "NA",
				report.F(r.MFLOPS), ratioString(r.YMPRatio))
			continue
		}
		t.AddRow(r.Code,
			fmt.Sprintf("%s (%s)", report.F(r.KapSeconds), report.F(r.KapImprovement)),
			fmt.Sprintf("%s (%s)", report.F(r.AutoSeconds), report.F(r.AutoImprovement)),
			fmt.Sprintf("%s (%s)", report.F(r.NoSyncSeconds), report.Pct(r.NoSyncSlowdown)),
			fmt.Sprintf("%s (%s)", report.F(r.NoPrefSeconds), report.Pct(r.NoPrefSlowdown)),
			report.F(r.MFLOPS), ratioString(r.YMPRatio))
	}
	t.AddNote("MG3D eliminates file I/O; 'slow' columns per the paper's conventions")
	return t.Render(w)
}

func ratioString(r float64) string {
	if r == 0 {
		return "-"
	}
	if r < 1 {
		return fmt.Sprintf("(1:%s)", report.F(1/r))
	}
	return report.F(r)
}

// Table4Row is one hand-optimized result.
type Table4Row struct {
	Code        string
	Variant     string
	Seconds     float64
	Paper       float64
	Improvement float64 // over automatable w/ prefetch, w/o Cedar sync
	Description string
}

// Table4Data is the regenerated Table 4 plus the Section 4.2 text's
// additional hand-optimized results.
type Table4Data struct {
	Rows []Table4Row
}

// RunTable4 evaluates the hand-optimization mechanisms.
func RunTable4(r perfect.Rates) (*Table4Data, error) {
	if r == (perfect.Rates{}) {
		r = perfect.DefaultRates()
	}
	suite, err := perfect.NewSuite(r)
	if err != nil {
		return nil, err
	}
	d := &Table4Data{}
	for _, p := range suite {
		for i := range p.Hands {
			h := &p.Hands[i]
			sec := p.HandTime(h, r)
			row := Table4Row{
				Code: p.Name, Variant: h.Name, Seconds: sec, Paper: h.TargetSeconds,
				Description: h.Description,
			}
			if base, err := p.Time(perfect.AutoNoSync, r); err == nil {
				row.Improvement = base / sec
			}
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// Get returns the primary hand row for a code.
func (d *Table4Data) Get(code string) (Table4Row, bool) {
	for _, r := range d.Rows {
		if r.Code == code {
			return r, true
		}
	}
	return Table4Row{}, false
}

// Render writes the table.
func (d *Table4Data) Render(w io.Writer) error {
	t := report.NewTable(
		"Table 4: Execution times (secs) for manually altered Perfect codes (modeled; paper in parentheses)",
		"code", "variant", "time", "paper", "improvement", "what changed")
	for _, r := range d.Rows {
		imp := "-"
		if r.Improvement > 0 {
			imp = report.F(r.Improvement)
		}
		t.AddRow(r.Code, r.Variant, report.F(r.Seconds), report.F(r.Paper), imp, r.Description)
	}
	t.AddNote("improvement over automatable w/ prefetch and w/o Cedar synchronization, as in the paper")
	return t.Render(w)
}
