package tables

import (
	"fmt"
	"io"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/methodology"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PPT5Point is one scaled-machine measurement.
type PPT5Point struct {
	Clusters   int
	CEs        int
	NetStages  int
	MinLatency sim.Cycle // measured unloaded global round trip
	RKMFLOPS   float64   // rank-64 GM/cache
	RKPerCE    float64
	CGMFLOPS   float64
	CGPerCE    float64
}

// PPT5Data is the scaled-reimplementability study the paper defers to
// ("we are in the process of collecting detailed simulation data for
// various computations on scaled-up Cedar-like systems; this takes us
// into the realm of PPT 5"). The simulator runs the paper's own
// workloads on Cedar-like machines of 4, 8 and 16 clusters, with memory
// modules scaled per CE and the shuffle-exchange networks deepened as
// the port count requires.
type PPT5Data struct {
	Points []PPT5Point
	// RKStability / CGStability are St(per-CE rate) across the scales:
	// the PPT4-style acceptance criterion (>= 0.5) applied to scaling.
	RKStability float64
	CGStability float64
	// Pass is the PPT5 verdict: per-CE delivered performance holds
	// within the stability criterion as the processor count scales up.
	Pass bool
}

// measureMinLatency issues one scalar global load on an idle machine
// and reports the effective latency minus the CE transfer component
// (the network+memory round trip: 8 cycles on the as-built machine, 10
// with three network stages).
func measureMinLatency(cfg core.Config) (sim.Cycle, error) {
	m, err := core.New(cfg)
	if err != nil {
		return 0, err
	}
	done := sim.Cycle(-1)
	op := isa.NewScalarLoad(isa.Addr{Space: isa.Global, Word: 5})
	op.OnDone = func(int64, bool) { done = m.Eng.Now() }
	m.Dispatch(0, isa.NewSeq(op))
	if _, err := m.RunUntilIdle(10000); err != nil {
		return 0, err
	}
	return done - m.Config().CE.XferCycles, nil
}

// RunPPT5 runs the scaling study. quick reduces the problem sizes.
func RunPPT5(quick bool) (*PPT5Data, error) {
	d := &PPT5Data{}
	scales := []int{4, 8, 16}
	rkN := 256
	cgN := 16384
	iters := 4
	if quick {
		scales = []int{4, 8}
		rkN = 128
		cgN = 8192
		iters = 3
	}
	var rkPer, cgPer []float64
	for _, clusters := range scales {
		cfg := core.ScaledConfig(clusters)
		pt := PPT5Point{Clusters: clusters, CEs: clusters * cfg.Cluster.CEs}

		lat, err := measureMinLatency(cfg)
		if err != nil {
			return nil, err
		}
		pt.MinLatency = lat

		mRK, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		pt.NetStages = mRK.Fwd.Stages()
		in := kernels.NewRank64Input(rkN)
		rk, err := kernels.RunRank64(mRK, in, workload.Params{Mode: workload.GMCache})
		if err != nil {
			return nil, fmt.Errorf("ppt5 rank64 %d clusters: %w", clusters, err)
		}
		pt.RKMFLOPS = rk.MFLOPS
		pt.RKPerCE = rk.MFLOPS / float64(pt.CEs)

		mCG, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		rt := cedarfort.New(mCG, cedarfort.DefaultConfig())
		p := kernels.NewCGProblem(cgN, 64)
		cg, err := kernels.RunCG(mCG, rt, p, workload.Params{Iterations: iters, Prefetch: true})
		if err != nil {
			return nil, fmt.Errorf("ppt5 cg %d clusters: %w", clusters, err)
		}
		pt.CGMFLOPS = cg.MFLOPS
		pt.CGPerCE = cg.MFLOPS / float64(pt.CEs)

		rkPer = append(rkPer, pt.RKPerCE)
		cgPer = append(cgPer, pt.CGPerCE)
		d.Points = append(d.Points, pt)
	}
	d.RKStability = methodology.Stability(rkPer, 0)
	d.CGStability = methodology.Stability(cgPer, 0)
	d.Pass = d.RKStability >= 0.5 && d.CGStability >= 0.5
	return d, nil
}

// Render writes the study.
func (d *PPT5Data) Render(w io.Writer) error {
	t := report.NewTable(
		"PPT5: scaled-up Cedar-like systems (extension; the paper defers this study)",
		"clusters", "CEs", "net stages", "min latency", "RK MFLOPS (per CE)", "CG MFLOPS (per CE)")
	for _, p := range d.Points {
		t.AddRow(fmt.Sprintf("%d", p.Clusters), fmt.Sprintf("%d", p.CEs),
			fmt.Sprintf("%d", p.NetStages), fmt.Sprintf("%d", p.MinLatency),
			fmt.Sprintf("%s (%s)", report.F(p.RKMFLOPS), report.F(p.RKPerCE)),
			fmt.Sprintf("%s (%s)", report.F(p.CGMFLOPS), report.F(p.CGPerCE)))
	}
	t.AddNote(fmt.Sprintf("per-CE rate stability across scales: RK %.2f, CG %.2f (criterion >= 0.5); PPT5 pass=%v",
		d.RKStability, d.CGStability, d.Pass))
	t.AddNote("memory modules scale with CEs; 8x8 crossbars force a third network stage beyond 64 ports")
	return t.Render(w)
}
