package tables

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/methodology"
	"repro/internal/perfect"
	"repro/internal/report"
)

// SizeStabilityData is the data-size experiment the paper proposes in
// its PPT2 discussion ("varying the data size and observing stability
// would be instructive"): the Perfect models evaluated at scaled
// problem sizes, with the ensemble's instability at each scale.
type SizeStabilityData struct {
	Scales []float64
	// Rates[i] is the per-code MFLOPS ensemble at Scales[i] (codes with
	// automatable results only).
	Rates [][]float64
	Codes []string
	// In0 / In2 are the instabilities at 0 and 2 exclusions per scale.
	In0, In2 []float64
}

// RunSizeStability evaluates the automatable Perfect models at problem
// scales 1/4x, 1x, 4x and 16x.
func RunSizeStability(r perfect.Rates) (*SizeStabilityData, error) {
	if r == (perfect.Rates{}) {
		r = perfect.DefaultRates()
	}
	suite, err := perfect.NewSuite(r)
	if err != nil {
		return nil, err
	}
	d := &SizeStabilityData{Scales: []float64{0.25, 1, 4, 16}}
	for _, k := range d.Scales {
		var rates []float64
		for _, p := range suite {
			mf, err := p.MFLOPSScaled(perfect.Auto, r, k)
			if errors.Is(err, perfect.ErrNoVariant) {
				continue
			}
			if err != nil {
				return nil, err
			}
			if len(d.Rates) == 0 {
				d.Codes = append(d.Codes, p.Name)
			}
			rates = append(rates, mf)
		}
		d.Rates = append(d.Rates, rates)
		d.In0 = append(d.In0, methodology.Instability(rates, 0))
		d.In2 = append(d.In2, methodology.Instability(rates, 2))
	}
	return d, nil
}

// Render writes the exhibit.
func (d *SizeStabilityData) Render(w io.Writer) error {
	headers := []string{"code"}
	for _, k := range d.Scales {
		headers = append(headers, fmt.Sprintf("MFLOPS @%gx", k))
	}
	t := report.NewTable(
		"Data-size stability (extension; the experiment the paper's PPT2 discussion proposes)",
		headers...)
	for i, code := range d.Codes {
		row := []string{code}
		for s := range d.Scales {
			row = append(row, report.F(d.Rates[s][i]))
		}
		t.AddRow(row...)
	}
	in0 := []string{"In(12,0)"}
	in2 := []string{"In(12,2)"}
	for s := range d.Scales {
		in0 = append(in0, report.F(d.In0[s]))
		in2 = append(in2, report.F(d.In2[s]))
	}
	t.AddRow(in0...)
	t.AddRow(in2...)
	t.AddNote("larger data amortizes overheads and raises every code's rate, but In(12,0) improves only")
	t.AddNote("mildly: the dispersion is structural (serial fractions, scalar codes), so stability indeed")
	t.AddNote("\"focuses on the class of codes well matched to the system\", as the paper argues")
	return t.Render(w)
}
