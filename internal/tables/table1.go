// Package tables regenerates every table and figure of the paper's
// evaluation: Table 1 (rank-64 update memory modes) and Table 2 (global
// memory performance under prefetch) from full machine simulation;
// Tables 3 and 4 (Perfect Benchmarks) from the calibrated workload
// models; Tables 5 and 6 and Figure 3 (stability, restructuring bands,
// efficiency scatter) from the methodology over the cross-machine
// dataset; and the Section 4.3 scalability study (Cedar CG simulation
// plus the CM-5 banded matrix-vector model).
//
// Each Run* function returns structured data with the paper's published
// values alongside the reproduced ones, and renders a text exhibit.
package tables

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/workload"
)

// Table1Published holds the paper's Table 1 (MFLOPS for the rank-64
// update of a 1K x 1K matrix), indexed [mode][clusters-1].
var Table1Published = map[kernels.Mode][4]float64{
	kernels.GMNoPrefetch: {14.5, 29.0, 43.0, 55.0},
	kernels.GMPrefetch:   {50.0, 84.0, 96.0, 104.0},
	kernels.GMCache:      {52.0, 104.0, 152.0, 208.0},
}

// Table1Cell is one measured cell.
type Table1Cell struct {
	Mode     kernels.Mode
	Clusters int
	MFLOPS   float64
	Paper    float64
}

// Table1Data is the regenerated Table 1.
type Table1Data struct {
	N     int
	Cells []Table1Cell
}

// Get returns the measured MFLOPS for a mode and cluster count.
func (d *Table1Data) Get(mode kernels.Mode, clusters int) float64 {
	for _, c := range d.Cells {
		if c.Mode == mode && c.Clusters == clusters {
			return c.MFLOPS
		}
	}
	return 0
}

// RunTable1 simulates the rank-64 update in all three memory modes on
// one through four clusters. The paper uses n = 1K; the rates are
// steady-state, so smaller multiples of the machine width reproduce the
// same table much faster (n = 256 is the benchmark default).
func RunTable1(n int) (*Table1Data, error) {
	d := &Table1Data{N: n}
	for clusters := 1; clusters <= 4; clusters++ {
		for _, mode := range []kernels.Mode{kernels.GMNoPrefetch, kernels.GMPrefetch, kernels.GMCache} {
			in := kernels.NewRank64Input(n)
			m, err := core.New(core.ConfigClusters(clusters))
			if err != nil {
				return nil, err
			}
			res, err := kernels.RunRank64(m, in, workload.Params{Mode: mode})
			if err != nil {
				return nil, fmt.Errorf("table 1 %v/%d clusters: %w", mode, clusters, err)
			}
			d.Cells = append(d.Cells, Table1Cell{
				Mode:     mode,
				Clusters: clusters,
				MFLOPS:   res.MFLOPS,
				Paper:    Table1Published[mode][clusters-1],
			})
		}
	}
	return d, nil
}

// Render writes the table with measured and published values.
func (d *Table1Data) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Table 1: MFLOPS for rank-64 update on Cedar (n=%d; paper n=1K in parentheses)", d.N),
		"version", "1 cl.", "2 cl.", "3 cl.", "4 cl.")
	for _, mode := range []kernels.Mode{kernels.GMNoPrefetch, kernels.GMPrefetch, kernels.GMCache} {
		row := []string{mode.String()}
		for cl := 1; cl <= 4; cl++ {
			row = append(row, fmt.Sprintf("%s (%s)",
				report.F(d.Get(mode, cl)), report.F(Table1Published[mode][cl-1])))
		}
		t.AddRow(row...)
	}
	t.AddNote("all versions chain two operations per memory request; matrices in global memory")
	return t.Render(w)
}
