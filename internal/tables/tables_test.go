package tables

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/perfect"
)

// TestTable1ShapeSmall regenerates Table 1 at a reduced size and checks
// the paper's qualitative content: column ordering, the ~14.5 MFLOPS
// no-prefetch cluster rate, near-linear GM/cache scaling, and prefetch
// improvement factors.
func TestTable1ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	d, err := RunTable1(64)
	if err != nil {
		t.Fatal(err)
	}
	for cl := 1; cl <= 4; cl++ {
		nopref := d.Get(kernels.GMNoPrefetch, cl)
		pref := d.Get(kernels.GMPrefetch, cl)
		cache := d.Get(kernels.GMCache, cl)
		if !(cache > pref && pref > nopref) {
			t.Fatalf("clusters=%d: ordering violated: %f %f %f", cl, nopref, pref, cache)
		}
	}
	if v := d.Get(kernels.GMNoPrefetch, 1); v < 10 || v > 18 {
		t.Fatalf("GM/no-pref 1 cluster = %.1f, want ~14.5", v)
	}
	// GM/cache scales nearly linearly with clusters.
	scale := d.Get(kernels.GMCache, 4) / d.Get(kernels.GMCache, 1)
	if scale < 3.0 {
		t.Fatalf("GM/cache 4-cluster scaling = %.2f, want ~3.5-4", scale)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GM/cache") {
		t.Fatal("render missing mode rows")
	}
}

// TestTable2ShapeSmall: prefetching helps every kernel; latency and
// interarrival rise with processor count.
func TestTable2ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	d, err := RunTable2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(d.Rows))
	}
	for _, k := range []string{"TM", "CG", "VF", "RK"} {
		r8, ok8 := d.Get(k, 8)
		r32, ok32 := d.Get(k, 32)
		if !ok8 || !ok32 {
			t.Fatalf("%s rows missing", k)
		}
		if r8.Speedup <= 1.0 {
			t.Fatalf("%s at 8 CEs: prefetch speedup %.2f <= 1", k, r8.Speedup)
		}
		if r8.Latency < 8 {
			t.Fatalf("%s latency %.1f below the 8-cycle minimum", k, r8.Latency)
		}
		// Latency grows with machine width for the compiler-prefetched
		// kernels (RK's back-to-back 256-word block fires add a bursty
		// self-queueing component that dominates its small-width
		// latency; see EXPERIMENTS.md).
		if k != "RK" && r32.Latency < r8.Latency-1.5 {
			t.Fatalf("%s: latency fell from %.1f (8 CEs) to %.1f (32 CEs)", k, r8.Latency, r32.Latency)
		}
		if k != "RK" && r32.Interarrival <= r8.Interarrival {
			t.Fatalf("%s: interarrival did not grow with contention: %.2f -> %.2f",
				k, r8.Interarrival, r32.Interarrival)
		}
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	d, err := RunTable3(perfect.Rates{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 13 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	adm, ok := d.Get("ADM")
	if !ok || !adm.HasAuto {
		t.Fatal("ADM row missing")
	}
	if math.Abs(adm.AutoSeconds-73) > 3 {
		t.Fatalf("ADM auto = %.1f, want 73", adm.AutoSeconds)
	}
	if adm.NoSyncSlowdown < 0.08 || adm.NoSyncSlowdown > 0.14 {
		t.Fatalf("ADM no-sync slowdown = %.2f, want ~11%%", adm.NoSyncSlowdown)
	}
	spice, _ := d.Get("SPICE")
	if spice.HasAuto {
		t.Fatal("SPICE should have no automatable results")
	}
	dyf, _ := d.Get("DYFESM")
	if dyf.NoPrefSlowdown < 0.4 {
		t.Fatalf("DYFESM no-prefetch slowdown = %.2f, want ~49%%", dyf.NoPrefSlowdown)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NA") {
		t.Fatal("SPICE NA cells missing")
	}
	if !strings.Contains(buf.String(), "(1:") {
		t.Fatal("inverse ratio formatting missing")
	}
}

func TestTable4RowsAndImprovements(t *testing.T) {
	d, err := RunTable4(perfect.Rates{})
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range []string{"ARC2D", "BDNA", "TRFD", "QCD", "FL052", "DYFESM", "SPICE"} {
		r, ok := d.Get(code)
		if !ok {
			t.Fatalf("missing hand row for %s", code)
		}
		if r.Seconds <= 0 {
			t.Fatalf("%s: non-positive time", code)
		}
		if r.Paper > 0 {
			ratio := r.Seconds / r.Paper
			if ratio < 0.6 || ratio > 1.4 {
				t.Fatalf("%s: modeled %.1f vs paper %.1f (off %.0f%%)", code, r.Seconds, r.Paper, (ratio-1)*100)
			}
		}
	}
	qcd, _ := d.Get("QCD")
	if qcd.Improvement < 8 {
		t.Fatalf("QCD hand improvement = %.1f, want ~11.4", qcd.Improvement)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable5Verdicts(t *testing.T) {
	d := RunTable5()
	if len(d.Rows) != 3 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	ymp, ok := d.Get("Cray YMP-8")
	if !ok {
		t.Fatal("YMP row missing")
	}
	if ymp.PassPPT2 {
		t.Fatal("YMP must fail PPT2")
	}
	if ymp.ExceptionsNeeded != 6 {
		t.Fatalf("YMP exceptions = %d, want 6", ymp.ExceptionsNeeded)
	}
	cedar, _ := d.Get("Cedar")
	if !cedar.PassPPT2 {
		t.Fatal("Cedar must pass PPT2")
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable6Counts(t *testing.T) {
	d := RunTable6()
	if d.Cedar.High != 1 || d.Cedar.Intermediate != 9 || d.Cedar.Unacceptable != 3 {
		t.Fatalf("Cedar bands %+v", d.Cedar)
	}
	if d.YMP.High != 0 || d.YMP.Intermediate != 6 || d.YMP.Unacceptable != 7 {
		t.Fatalf("YMP bands %+v", d.YMP)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3Counts(t *testing.T) {
	d := RunFigure3()
	if d.CedarUnacceptable != 0 {
		t.Fatal("Cedar manual has unacceptable codes")
	}
	if d.YMPUnacceptable != 1 {
		t.Fatal("YMP manual should have one unacceptable code")
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "TRFD") {
		t.Fatal("figure output incomplete")
	}
}

// TestPPT5Quick runs the scaled-machine extension at reduced size: the
// cache-blocked rank-64 kernel must hold its per-CE rate across scales
// while the deeper network keeps the minimal latency at 8 cycles up to
// 64 ports.
func TestPPT5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	d, err := RunPPT5(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 2 {
		t.Fatalf("%d points", len(d.Points))
	}
	for _, p := range d.Points {
		if p.NetStages != 2 || p.MinLatency != 8 {
			t.Fatalf("%d clusters: stages=%d latency=%d, want 2/8", p.Clusters, p.NetStages, p.MinLatency)
		}
	}
	if d.RKStability < 0.5 {
		t.Fatalf("cache-blocked RK per-CE stability = %.2f across 4-8 clusters, want >= 0.5", d.RKStability)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestPerProcessorEquivalence checks the paper's closing absolute
// comparison: "the per-processor MFLOPS of the two systems on these
// problems are roughly equivalent" — 32-CE Cedar CG versus the
// 32-processor CM-5 banded product.
func TestPerProcessorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	d, err := RunScalability(true)
	if err != nil {
		t.Fatal(err)
	}
	var cedarPer float64
	for _, p := range d.CedarPoints {
		if p.P == 32 {
			cedarPer = p.MFLOPS / 32
		}
	}
	var cm5Per float64
	for _, p := range d.CM5Points {
		if p.P == 32 {
			cm5Per = p.MFLOPS / 32
		}
	}
	if cedarPer == 0 || cm5Per == 0 {
		t.Fatal("missing 32-processor points")
	}
	ratio := cedarPer / cm5Per
	if ratio < 1.0/3 || ratio > 3 {
		t.Fatalf("per-processor rates not roughly equivalent: Cedar %.2f vs CM-5 %.2f MFLOPS/proc", cedarPer, cm5Per)
	}
}

// TestSizeStability: rates rise monotonically with problem scale and
// raw instability improves, while two-exclusion instability stays near
// the workstation level — the structural-dispersion finding.
func TestSizeStability(t *testing.T) {
	d, err := RunSizeStability(perfect.Rates{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Codes) != 12 {
		t.Fatalf("%d codes (SPICE has no automatable variant)", len(d.Codes))
	}
	for i := range d.Codes {
		for s := 1; s < len(d.Scales); s++ {
			if d.Rates[s][i] <= d.Rates[s-1][i] {
				t.Fatalf("%s: rate fell from %.2f to %.2f as the problem grew",
					d.Codes[i], d.Rates[s-1][i], d.Rates[s][i])
			}
		}
	}
	if d.In0[len(d.In0)-1] >= d.In0[0] {
		t.Fatalf("In(12,0) did not improve with size: %v", d.In0)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestScalabilityQuick reproduces the Section 4.3 findings on the
// reduced grid: Cedar crosses into the high band as N grows at 32 CEs;
// the CM-5 stays intermediate at bandwidth 11.
func TestScalabilityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	d, err := RunScalability(true)
	if err != nil {
		t.Fatal(err)
	}
	if !d.CedarVerdict.ScalableHigh {
		t.Fatalf("Cedar verdict: %+v", d.CedarVerdict)
	}
	// At 32 CEs, efficiency must grow with N (the crossover direction).
	var small, large float64
	for _, p := range d.CedarPoints {
		if p.P == 32 && p.N == 1024 {
			small = p.Efficiency
		}
		if p.P == 32 && p.N >= 16384 {
			large = p.Efficiency
		}
	}
	if large <= small {
		t.Fatalf("32-CE efficiency did not grow with N: %.2f -> %.2f", small, large)
	}
	if v := d.CM5Verdicts[11]; v.ScalableHigh || !v.ScalableIntermediate {
		t.Fatalf("CM-5 BW=11 verdict: %+v", v)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
