package tables

import (
	"fmt"
	"io"

	"repro/internal/compare"
	"repro/internal/methodology"
	"repro/internal/report"
)

// Table5Row is one machine's instability measurements.
type Table5Row struct {
	Machine          string
	In0, In2, In6    float64
	ExceptionsNeeded int
	PassPPT2         bool
}

// Table5Data is the regenerated Table 5 (instability for Perfect codes).
type Table5Data struct {
	Rows []Table5Row
}

// RunTable5 computes In(13, e) for Cedar, the Cray YMP-8 and the Cray-1
// from the cross-machine rate ensembles.
func RunTable5() *Table5Data {
	ds := compare.Dataset()
	d := &Table5Data{}
	for _, m := range []struct {
		name  string
		rates []float64
	}{
		{"Cray-1 (modern compiler)", compare.Cray1Rates(ds)},
		{"Cray YMP-8", compare.YMPRates(ds)},
		{"Cedar", compare.CedarRates(ds)},
	} {
		rep := methodology.PPT2(m.rates, compare.WorkstationInstability)
		d.Rows = append(d.Rows, Table5Row{
			Machine: m.name,
			In0:     rep.In0, In2: rep.In2, In6: rep.In6,
			ExceptionsNeeded: rep.ExceptionsNeeded,
			PassPPT2:         rep.Pass,
		})
	}
	return d
}

// Get returns the row for a machine.
func (d *Table5Data) Get(machine string) (Table5Row, bool) {
	for _, r := range d.Rows {
		if r.Machine == machine {
			return r, true
		}
	}
	return Table5Row{}, false
}

// Render writes the table.
func (d *Table5Data) Render(w io.Writer) error {
	t := report.NewTable(
		"Table 5: Instability for Perfect codes (In(13,e); workstation level ~5)",
		"machine", "In(13,0)", "In(13,2)", "In(13,6)", "exceptions to stability", "PPT2")
	for _, r := range d.Rows {
		verdict := "fail"
		if r.PassPPT2 {
			verdict = "pass"
		}
		t.AddRow(r.Machine, report.F(r.In0), report.F(r.In2), report.F(r.In6),
			fmt.Sprintf("%d", r.ExceptionsNeeded), verdict)
	}
	t.AddNote("the paper: two exceptions suffice on the Cray-1 and Cedar; the YMP needs six")
	return t.Render(w)
}

// Table6Data is the regenerated Table 6 (restructuring efficiency bands).
type Table6Data struct {
	Cedar methodology.PPT3Report
	YMP   methodology.PPT3Report
}

// RunTable6 counts the efficiency bands of the automatable (Cedar) and
// automatic (YMP) restructuring results.
func RunTable6() *Table6Data {
	ds := compare.Dataset()
	var cedar, ymp []methodology.Point
	for _, c := range ds {
		cedar = append(cedar, methodology.Point{Name: c.Name, Efficiency: c.CedarAutoEff})
		ymp = append(ymp, methodology.Point{Name: c.Name, Efficiency: c.YMPAutoEff})
	}
	return &Table6Data{
		Cedar: methodology.PPT3(cedar, compare.Cedar32.Processors),
		YMP:   methodology.PPT3(ymp, compare.YMP8.Processors),
	}
}

// Render writes the table in the paper's layout.
func (d *Table6Data) Render(w io.Writer) error {
	t := report.NewTable(
		"Table 6: Restructuring Efficiency",
		"performance level", "Cedar", "Cray YMP")
	t.AddRow("High (EP > .5)", fmt.Sprintf("%d codes", d.Cedar.High), fmt.Sprintf("%d codes", d.YMP.High))
	t.AddRow("Intermediate (EP > 1/2 logP)", fmt.Sprintf("%d codes", d.Cedar.Intermediate), fmt.Sprintf("%d codes", d.YMP.Intermediate))
	t.AddRow("Unacceptable (EP < 1/2 logP)", fmt.Sprintf("%d codes", d.Cedar.Unacceptable), fmt.Sprintf("%d codes", d.YMP.Unacceptable))
	t.AddNote("paper: Cedar 1/9/3, YMP 0/6/7")
	return t.Render(w)
}

// Figure3Data is the efficiency scatter of Figure 3.
type Figure3Data struct {
	Points []compare.CodePoint
	// Band counts on each axis.
	CedarHigh, CedarIntermediate, CedarUnacceptable int
	YMPHigh, YMPIntermediate, YMPUnacceptable       int
}

// RunFigure3 assembles the manual-optimization efficiency scatter.
func RunFigure3() *Figure3Data {
	ds := compare.Dataset()
	d := &Figure3Data{Points: ds}
	var cedar, ymp []float64
	for _, c := range ds {
		cedar = append(cedar, c.CedarManualEff)
		ymp = append(ymp, c.YMPManualEff)
	}
	d.CedarHigh, d.CedarIntermediate, d.CedarUnacceptable = methodology.CountBands(cedar, 32)
	d.YMPHigh, d.YMPIntermediate, d.YMPUnacceptable = methodology.CountBands(ymp, 8)
	return d
}

// Render draws the ASCII scatter with the band thresholds of both
// machines marked.
func (d *Figure3Data) Render(w io.Writer) error {
	s := report.NewScatter(
		"Figure 3: Cray YMP/8 vs Cedar efficiency (manually optimized Perfect codes)",
		"Cedar eff. (32 CEs; bands at 0.1, 0.5)", "YMP eff.")
	s.XLines = []float64{methodology.AcceptableEfficiency(32), methodology.HighEfficiency}
	s.YLines = []float64{methodology.AcceptableEfficiency(8), methodology.HighEfficiency}
	for _, c := range d.Points {
		s.Add(c.CedarManualEff, c.YMPManualEff, rune(c.Name[0]), c.Name)
	}
	if err := s.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"bands: Cedar %dH/%dI/%dU of %d, YMP %dH/%dI/%dU (paper: Cedar ~1/4 high, 3/4 intermediate, none unacceptable;\n"+
			"       YMP about half high, half intermediate, one unacceptable)\n\n",
		d.CedarHigh, d.CedarIntermediate, d.CedarUnacceptable, len(d.Points),
		d.YMPHigh, d.YMPIntermediate, d.YMPUnacceptable)
	return err
}
