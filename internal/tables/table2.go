package tables

import (
	"fmt"
	"io"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/workload"
)

// Table2Published holds the paper's Table 2: prefetch speedup, first-word
// latency and interarrival time for the four kernels at 8/16/32 CEs.
var Table2Published = map[string]struct {
	Speedup      [3]float64
	Latency      [3]float64
	Interarrival [3]float64
}{
	"TM": {Speedup: [3]float64{2.1, 2.0, 1.5}, Latency: [3]float64{9.4, 10.2, 14.2}, Interarrival: [3]float64{1.1, 1.2, 2.1}},
	"CG": {Speedup: [3]float64{2.4, 2.2, 1.5}, Latency: [3]float64{9.4, 10.3, 15.1}, Interarrival: [3]float64{1.1, 1.2, 2.1}},
	"VF": {Speedup: [3]float64{1.8, 1.7, 1.5}, Latency: [3]float64{9.6, 11.0, 16.7}, Interarrival: [3]float64{1.2, 1.4, 2.2}},
	"RK": {Speedup: [3]float64{3.4, 2.9, 1.8}, Latency: [3]float64{12.9, 15.3, 18.3}, Interarrival: [3]float64{1.2, 1.8, 3.2}},
}

// Table2Row is one kernel at one machine width.
type Table2Row struct {
	Kernel       string
	CEs          int
	Speedup      float64 // time(no prefetch) / time(prefetch)
	Latency      float64 // first-word latency, cycles
	Interarrival float64 // cycles between remaining words of a block
}

// Table2Data is the regenerated Table 2.
type Table2Data struct {
	Rows []Table2Row
}

// Get returns the row for a kernel and CE count.
func (d *Table2Data) Get(kernel string, ces int) (Table2Row, bool) {
	for _, r := range d.Rows {
		if r.Kernel == kernel && r.CEs == ces {
			return r, true
		}
	}
	return Table2Row{}, false
}

// table2Kernels runs one kernel with and without prefetch on a fresh
// machine and returns (speedup, latency, interarrival).
func runKernelPair(clusters int, run func(m *core.Machine, usePrefetch, probe bool) (kernels.Result, error)) (Table2Row, error) {
	mk := func() (*core.Machine, error) { return core.New(core.ConfigClusters(clusters)) }
	mNo, err := mk()
	if err != nil {
		return Table2Row{}, err
	}
	resNo, err := run(mNo, false, false)
	if err != nil {
		return Table2Row{}, err
	}
	mPf, err := mk()
	if err != nil {
		return Table2Row{}, err
	}
	resPf, err := run(mPf, true, true)
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		CEs:          clusters * 8,
		Speedup:      float64(resNo.Cycles) / float64(resPf.Cycles),
		Latency:      resPf.Latency,
		Interarrival: resPf.Interarrival,
	}, nil
}

// RunTable2 measures the four kernels (TM, CG, VF, RK) at 8, 16 and 32
// processors, global data only, with the hardware monitor attached to a
// single processor's prefetch unit, as the paper does. scale multiplies
// the problem sizes (1 = benchmark default).
func RunTable2(scale int) (*Table2Data, error) {
	if scale < 1 {
		scale = 1
	}
	d := &Table2Data{}
	for _, clusters := range []int{1, 2, 4} {
		// TM: tridiagonal matrix-vector multiply.
		row, err := runKernelPair(clusters, func(m *core.Machine, pf, probe bool) (kernels.Result, error) {
			return kernels.RunTriMatVec(m, workload.Params{Size: 4096 * scale, Prefetch: pf, Probe: probe})
		})
		if err != nil {
			return nil, fmt.Errorf("table 2 TM: %w", err)
		}
		row.Kernel = "TM"
		d.Rows = append(d.Rows, row)

		// CG: conjugate gradient (4 iterations are enough for the
		// steady-state rates).
		row, err = runKernelPair(clusters, func(m *core.Machine, pf, probe bool) (kernels.Result, error) {
			p := kernels.NewCGProblem(4096*scale, 64)
			rt := cedarfort.New(m, cedarfort.DefaultConfig())
			res, err := kernels.RunCG(m, rt, p, workload.Params{Iterations: 4, Prefetch: pf, Probe: probe})
			return res.Result, err
		})
		if err != nil {
			return nil, fmt.Errorf("table 2 CG: %w", err)
		}
		row.Kernel = "CG"
		d.Rows = append(d.Rows, row)

		// VF: vector load/scale stream.
		row, err = runKernelPair(clusters, func(m *core.Machine, pf, probe bool) (kernels.Result, error) {
			return kernels.RunVectorLoad(m, workload.Params{Size: 8192 * scale, Prefetch: pf, Probe: probe})
		})
		if err != nil {
			return nil, fmt.Errorf("table 2 VF: %w", err)
		}
		row.Kernel = "VF"
		d.Rows = append(d.Rows, row)

		// RK: rank-64 update with 256-word prefetch blocks.
		row, err = runKernelPair(clusters, func(m *core.Machine, pf, probe bool) (kernels.Result, error) {
			in := kernels.NewRank64Input(128 * scale)
			mode := kernels.GMNoPrefetch
			if pf {
				mode = kernels.GMPrefetch
			}
			return kernels.RunRank64(m, in, workload.Params{Mode: mode, Probe: probe})
		})
		if err != nil {
			return nil, fmt.Errorf("table 2 RK: %w", err)
		}
		row.Kernel = "RK"
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Render writes the table in the paper's layout with published values.
func (d *Table2Data) Render(w io.Writer) error {
	t := report.NewTable(
		"Table 2: Global memory performance (measured; paper in parentheses)",
		"kernel",
		"speedup 8", "speedup 16", "speedup 32",
		"latency 8", "latency 16", "latency 32",
		"interarr 8", "interarr 16", "interarr 32")
	for _, k := range []string{"TM", "CG", "VF", "RK"} {
		pub := Table2Published[k]
		row := []string{k}
		for i, ces := range []int{8, 16, 32} {
			r, _ := d.Get(k, ces)
			row = append(row, fmt.Sprintf("%s (%s)", report.F(r.Speedup), report.F(pub.Speedup[i])))
		}
		for i, ces := range []int{8, 16, 32} {
			r, _ := d.Get(k, ces)
			row = append(row, fmt.Sprintf("%s (%s)", report.F(r.Latency), report.F(pub.Latency[i])))
		}
		for i, ces := range []int{8, 16, 32} {
			r, _ := d.Get(k, ces)
			row = append(row, fmt.Sprintf("%s (%s)", report.F(r.Interarrival), report.F(pub.Interarrival[i])))
		}
		t.AddRow(row...)
	}
	t.AddNote("minimal latency 8 cycles, minimal interarrival 1 cycle; single-processor monitor")
	return t.Render(w)
}
