package tables

import (
	"fmt"
	"io"

	"repro/internal/cedarfort"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/methodology"
	"repro/internal/report"
	"repro/internal/workload"
)

// ScalabilityData is the Section 4.3 study: the conjugate-gradient
// solver on Cedar over processor counts and problem sizes, and the
// banded matrix-vector product on the CM-5 model, both classified by the
// PPT4 criteria.
type ScalabilityData struct {
	CedarPoints  []methodology.ScalPoint
	CedarVerdict methodology.PPT4Report
	// Baseline1CE is the single-CE CG rate used for efficiency.
	Baseline1CE float64

	CM5Points []methodology.ScalPoint
	// CM5Verdicts holds one PPT4 evaluation per matrix bandwidth (the
	// two computations are judged separately, as in the paper).
	CM5Verdicts map[int]methodology.PPT4Report
}

// cgMachine builds a machine with the given total CE count (whole
// clusters of 8 where possible, a partial cluster otherwise).
func cgMachine(ces int) (*core.Machine, error) {
	cfg := core.DefaultConfig()
	if ces >= 8 {
		if ces%8 != 0 {
			return nil, fmt.Errorf("tables: %d CEs not a multiple of 8", ces)
		}
		cfg.Clusters = ces / 8
	} else {
		cfg.Clusters = 1
		cfg.Cluster.CEs = ces
	}
	return core.New(cfg)
}

// cgRate runs the CG kernel and returns MFLOPS.
func cgRate(ces, n, iters int) (float64, error) {
	m, err := cgMachine(ces)
	if err != nil {
		return 0, err
	}
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	p := kernels.NewCGProblem(n, 64)
	res, err := kernels.RunCG(m, rt, p, workload.Params{Iterations: iters, Prefetch: true})
	if err != nil {
		return 0, err
	}
	return res.MFLOPS, nil
}

// RunScalability measures CG on Cedar for the given processor counts and
// sizes (quick selects a reduced grid) and evaluates the CM-5 model on
// the banded product. Efficiency is speedup over a one-CE run of the
// same code: E = rate_P / (P * rate_1).
func RunScalability(quick bool) (*ScalabilityData, error) {
	d := &ScalabilityData{}
	ps := []int{2, 8, 32}
	ns := []int{1024, 4096, 16384, 65536}
	iters := 4
	if quick {
		ns = []int{1024, 4096, 16384}
		iters = 3
	}
	base, err := cgRate(1, 8192, iters)
	if err != nil {
		return nil, fmt.Errorf("scalability baseline: %w", err)
	}
	d.Baseline1CE = base
	for _, p := range ps {
		for _, n := range ns {
			if n%(p*kernels.StripLen) != 0 {
				continue
			}
			rate, err := cgRate(p, n, iters)
			if err != nil {
				return nil, fmt.Errorf("scalability P=%d N=%d: %w", p, n, err)
			}
			d.CedarPoints = append(d.CedarPoints, methodology.ScalPoint{
				P: p, N: n, MFLOPS: rate, Efficiency: rate / (float64(p) * base),
			})
		}
	}
	d.CedarVerdict = methodology.PPT4(d.CedarPoints)

	d.CM5Verdicts = map[int]methodology.PPT4Report{}
	for _, bw := range []int{3, 11} {
		var pts []methodology.ScalPoint
		for _, p := range []int{32, 256, 512} {
			cm5 := compare.DefaultCM5(p)
			for _, n := range []int{16384, 65536, 262144} {
				pts = append(pts, methodology.ScalPoint{
					P: p, N: n,
					MFLOPS:     cm5.MatVecMFLOPS(n, bw),
					Efficiency: cm5.Efficiency(n, bw),
				})
			}
		}
		d.CM5Points = append(d.CM5Points, pts...)
		d.CM5Verdicts[bw] = methodology.PPT4(pts)
	}
	return d, nil
}

// Render writes the study.
func (d *ScalabilityData) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Section 4.3 scalability: CG on Cedar (efficiency vs 1 CE at %.1f MFLOPS)", d.Baseline1CE),
		"P", "N", "MFLOPS", "efficiency", "band")
	for _, p := range d.CedarPoints {
		t.AddRow(fmt.Sprintf("%d", p.P), fmt.Sprintf("%d", p.N),
			report.F(p.MFLOPS), report.F(p.Efficiency),
			methodology.Classify(p.Efficiency, p.P).String())
	}
	t.AddNote(fmt.Sprintf("verdict: scalable-high=%v scalable-intermediate=%v (paper: high for N over ~10-16K, intermediate below)",
		d.CedarVerdict.ScalableHigh, d.CedarVerdict.ScalableIntermediate))
	if err := t.Render(w); err != nil {
		return err
	}

	t2 := report.NewTable(
		"Section 4.3: banded matrix-vector product on the CM-5 model (no FP accelerators)",
		"P", "BW", "N", "MFLOPS", "efficiency", "band")
	i := 0
	for _, bw := range []int{3, 11} {
		for _, p := range []int{32, 256, 512} {
			for _, n := range []int{16384, 65536, 262144} {
				pt := d.CM5Points[i]
				i++
				t2.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%d", bw), fmt.Sprintf("%d", n),
					report.F(pt.MFLOPS), report.F(pt.Efficiency),
					methodology.Classify(pt.Efficiency, pt.P).String())
			}
		}
	}
	for _, bw := range []int{3, 11} {
		v := d.CM5Verdicts[bw]
		t2.AddNote(fmt.Sprintf("BW=%d verdict: scalable-high=%v scalable-intermediate=%v", bw, v.ScalableHigh, v.ScalableIntermediate))
	}
	t2.AddNote("paper: intermediate; 28-32 MFLOPS at BW=3, 58-67 at BW=11 on 32 procs")
	return t2.Render(w)
}
