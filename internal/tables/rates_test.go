package tables

// Cross-validation between the modeling layers: the Perfect workload
// models run on analytic machine rates (perfect.DefaultRates), and those
// rates claim to come from this repository's cycle-level simulator. The
// tests here measure each rate on the simulated machine and assert the
// analytic constants track the measurements — so a change to the
// simulator that shifts a rate will fail here rather than silently
// desynchronizing Table 3 from Tables 1-2.

import (
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/perfect"
	"repro/internal/sim"
)

// measureStream runs a pure 2-flops-per-word stream on every CE of a
// one-cluster machine and returns per-CE MFLOPS.
func measureStream(t *testing.T, space isa.Space, usePrefetch bool) float64 {
	t.Helper()
	cfg := core.ConfigClusters(1)
	cfg.Global.Words = 1 << 16
	m := core.MustNew(cfg)
	const n = 2048
	for id := 0; id < m.NumCEs(); id++ {
		base := uint64(id * n)
		seq := isa.NewSeq()
		for off := 0; off < n; off += 32 {
			addr := isa.Addr{Space: space, Word: base + uint64(off)}
			if usePrefetch {
				seq.Add(isa.NewPrefetch(addr, 32, 1))
			}
			seq.Add(isa.NewVectorLoad(addr, 32, 1, 2, usePrefetch))
		}
		m.CE(id).SetProgram(seq)
	}
	// Warm pass for the cluster cache (cluster space only).
	end, err := m.RunUntilIdle(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if space == isa.Cluster {
		// Re-run warm.
		for id := 0; id < m.NumCEs(); id++ {
			base := uint64(id * n)
			seq := isa.NewSeq()
			for off := 0; off < n; off += 32 {
				seq.Add(isa.NewVectorLoad(isa.Addr{Space: space, Word: base + uint64(off)}, 32, 1, 2, false))
			}
			m.CE(id).SetProgram(seq)
		}
		start := m.Eng.Now()
		end2, err := m.RunUntilIdle(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return core.MFLOPS(int64(2*n), end2-start) // per CE: each did 2n flops
	}
	return core.MFLOPS(int64(2*n), end) // per CE
}

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Fatalf("%s: simulator measures %.2f, analytic rate %.2f (tolerance %.0f%%)",
			what, got, want, tol*100)
	}
}

func TestAnalyticRatesTrackSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := perfect.DefaultRates()

	noPref := measureStream(t, isa.Global, false)
	within(t, "VectorGlobalNoPref", noPref, r.VectorGlobalNoPref, 0.15)

	// The analytic prefetched rate follows the paper's measurement
	// (50 MFLOPS / 8 CEs); our simulator runs prefetched streams
	// somewhat faster because its network saturates later than the real
	// one (see EXPERIMENTS.md, Table 1 discussion) — assert the looser
	// band that documents that known gap.
	pref := measureStream(t, isa.Global, true)
	within(t, "VectorGlobalPref", pref, r.VectorGlobalPref, 0.40)

	local := measureStream(t, isa.Cluster, false)
	within(t, "VectorLocal", local, r.VectorLocal, 0.35)
}

// TestAnalyticOverheadsTrackSimulator measures the XDOALL startup and
// claim costs on the simulated runtime against the analytic constants.
func TestAnalyticOverheadsTrackSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := perfect.DefaultRates()
	cfg := core.ConfigClusters(1)
	cfg.Global.Words = 1 << 14

	// Empty loop: elapsed ~ startup + per-iteration claims / P.
	run := func(iters int) float64 {
		m := core.MustNew(cfg)
		rt := cedarfort.New(m, cedarfort.DefaultConfig())
		elapsed, err := rt.XDOALL(iters, cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
			ctx.Emit(isa.NewCompute(1))
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed.Seconds()
	}
	small := run(8)
	big := run(808)
	// Startup: the small loop is dominated by it.
	within(t, "StartupSeconds", small, r.StartupSeconds, 0.5)
	// Claim cost per iteration from the slope (claims run on 8 CEs).
	perIter := (big - small) / 800 * 8
	within(t, "ClaimFastSeconds", perIter, r.ClaimFastSeconds, 0.6)
	_ = sim.Cycle(0)
}
