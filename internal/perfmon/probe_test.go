package perfmon

import (
	"math"
	"testing"

	"repro/internal/network"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// TestHistogramSaturates is the regression test for the silent uint32
// wrap: a bin at the 32-bit hardware maximum must stay there and count
// the lost increments in Overflow instead of rolling over to zero.
func TestHistogramSaturates(t *testing.T) {
	h := NewHistogram(0, 9, 10)
	h.bins[0] = math.MaxUint32 - 1
	h.Add(0)
	if h.bins[0] != math.MaxUint32 || h.Overflow != 0 {
		t.Fatalf("bin=%d overflow=%d after reaching max, want %d/0", h.bins[0], h.Overflow, uint32(math.MaxUint32))
	}
	h.Add(0)
	if h.bins[0] != math.MaxUint32 {
		t.Fatalf("bin wrapped to %d", h.bins[0])
	}
	if h.Overflow != 1 {
		t.Fatalf("Overflow = %d, want 1", h.Overflow)
	}
	// The sample itself is still counted: n and sum keep accruing.
	if h.Count() != 2 {
		t.Fatalf("Count() = %d, want 2", h.Count())
	}
	if h.Mean() != 0 {
		t.Fatalf("Mean() = %g, want 0", h.Mean())
	}
}

// hookedPFU returns a PFU suitable for driving the probe hooks by hand
// (the network is never ticked, so it only needs to exist).
func hookedPFU() *prefetch.PFU {
	return prefetch.New(network.MustNew("f", 8, 8, 0), 0, 0, -1)
}

// TestPrefetchProbeOverlappingBlocks is the regression test for the
// per-block keying bugs: the old probe reset its issue stamp on seq == 0
// while the previous block's replies were still in flight, so a trailing
// arrival of block A was measured against block B's issue time.
func TestPrefetchProbeOverlappingBlocks(t *testing.T) {
	u := hookedPFU()
	p := AttachPrefetch(u)

	u.OnFire(0) // block A
	u.OnIssue(0, 0, 0)
	u.OnIssue(1, 1, 1)
	u.OnArrive(8, 0) // A's first word: latency 8

	u.OnFire(64) // block B fires with one A reply still outstanding
	u.OnIssue(9, 0, 64)
	u.OnArrive(10, 1) // A's trailing word: gap 10-8=2, NOT latency 10-9=1
	u.OnIssue(11, 1, 65)
	u.OnArrive(17, 0) // B's first word: latency 17-9=8
	u.OnArrive(19, 1) // B's trailing word: gap 2

	if p.Blocks() != 2 {
		t.Fatalf("Blocks() = %d, want 2", p.Blocks())
	}
	if got := p.MeanLatency(); got != 8 {
		t.Fatalf("MeanLatency() = %g, want 8 for both blocks (A's trailing arrival leaked into B?)", got)
	}
	if p.Samples() != 2 {
		t.Fatalf("Samples() = %d, want 2 gaps", p.Samples())
	}
	if got := p.MeanInterarrival(); got != 2 {
		t.Fatalf("MeanInterarrival() = %g, want 2", got)
	}
	if p.Spurious != 0 {
		t.Fatalf("Spurious = %d, want 0", p.Spurious)
	}

	// An arrival with every block complete is never attributed.
	u.OnArrive(30, 5)
	if p.Spurious != 1 {
		t.Fatalf("Spurious = %d after unattributable arrival, want 1", p.Spurious)
	}
	if p.Samples() != 2 || p.Blocks() != 2 {
		t.Fatal("spurious arrival contaminated the measurements")
	}
}

// TestPrefetchProbeInterleavedReplies forces replies from two pipelined
// blocks to interleave out of block order — B's first word (served by an
// unloaded module) overtakes A's trailing word (stuck behind a busy one).
// The retired oldest-block-first rule attributed B's overtaking reply to
// A, recording a bogus 4-cycle gap for A and an 11-cycle latency for B;
// per-request tags attribute each reply to the block that issued it.
func TestPrefetchProbeInterleavedReplies(t *testing.T) {
	u := hookedPFU()
	p := AttachPrefetch(u)

	u.OnFire(0) // block A
	u.OnIssue(0, 0, 0)
	u.OnIssue(1, 1, 1)
	u.OnArrive(8, 0) // A slot 0: latency 8

	u.OnFire(64) // block B fires with A's slot-1 reply still in flight
	u.OnIssue(9, 0, 64)
	u.OnArrive(12, 0) // B slot 0 overtakes A slot 1: latency 12-9=3
	u.OnArrive(20, 1) // A's trailing word finally lands: gap 20-8=12

	if p.Blocks() != 2 {
		t.Fatalf("Blocks() = %d, want 2", p.Blocks())
	}
	if got := p.MeanLatency(); got != (8+3)/2.0 {
		t.Fatalf("MeanLatency() = %g, want 5.5 (B's overtaking reply must start B's measurement, not extend A's)", got)
	}
	if p.Samples() != 1 {
		t.Fatalf("Samples() = %d, want 1 gap (within A only)", p.Samples())
	}
	if got := p.MeanInterarrival(); got != 12 {
		t.Fatalf("MeanInterarrival() = %g, want 12 (A slot 0 to A slot 1)", got)
	}
	if p.Spurious != 0 {
		t.Fatalf("Spurious = %d, want 0", p.Spurious)
	}
}

// TestAttachPrefetchChainsHooks is the regression test for
// AttachPrefetch silently overwriting hooks another observer installed.
func TestAttachPrefetchChainsHooks(t *testing.T) {
	u := hookedPFU()
	var fires, issues, arrives int
	u.OnFire = func(uint64) { fires++ }
	u.OnIssue = func(sim.Cycle, int, uint64) { issues++ }
	u.OnArrive = func(sim.Cycle, int) { arrives++ }

	p := AttachPrefetch(u)
	u.OnFire(0)
	u.OnIssue(0, 0, 0)
	u.OnArrive(5, 0)

	if fires != 1 || issues != 1 || arrives != 1 {
		t.Fatalf("pre-installed hooks saw fire/issue/arrive = %d/%d/%d, want 1/1/1 (probe overwrote them?)", fires, issues, arrives)
	}
	if p.Blocks() != 1 || p.MeanLatency() != 5 {
		t.Fatalf("probe did not record through the chain: blocks=%d lat=%g", p.Blocks(), p.MeanLatency())
	}

	// Stacking a second probe keeps the first one measuring too.
	q := AttachPrefetch(u)
	u.OnFire(64)
	u.OnIssue(10, 0, 64)
	u.OnArrive(18, 0)
	if q.Blocks() != 1 || p.Blocks() != 2 {
		t.Fatalf("stacked probes: q.Blocks()=%d p.Blocks()=%d, want 1/2", q.Blocks(), p.Blocks())
	}
	if fires != 2 {
		t.Fatalf("original hook saw %d fires, want 2", fires)
	}
}
