// Package perfmon models Cedar's external performance-monitoring
// hardware: event tracers that collect time-stamped event traces (1M
// events each) and histogrammers with 64K 32-bit counters, attachable to
// hardware signals anywhere in the machine. Software can also post events
// from running programs.
//
// The package also provides the probe used for Table 2 of the paper: for
// every prefetch request it records when the address is issued to the
// forward network and when each datum returns to the prefetch buffer,
// yielding first-word Latency and Interarrival time between the remaining
// words of the block, in instruction cycles.
package perfmon

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/prefetch"
	"repro/internal/sim"
)

// TracerCapacity is the hardware event-trace depth.
const TracerCapacity = 1 << 20

// HistogramCounters is the hardware histogrammer counter count.
const HistogramCounters = 64 << 10

// Event is one time-stamped trace entry.
type Event struct {
	Cycle sim.Cycle
	Kind  uint16
	Arg   int64
}

// Tracer collects time-stamped events up to its capacity; further events
// are counted as dropped (the hardware can cascade tracers to capture
// more; model that by raising the capacity).
type Tracer struct {
	cap     int
	Events  []Event
	Dropped int64
}

// NewTracer returns a tracer with the given capacity (<= 0 selects the
// hardware's 1M).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = TracerCapacity
	}
	return &Tracer{cap: capacity}
}

// Post records an event if capacity remains.
func (t *Tracer) Post(cycle sim.Cycle, kind uint16, arg int64) {
	if len(t.Events) >= t.cap {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, Event{Cycle: cycle, Kind: kind, Arg: arg})
}

// Len reports the number of captured events.
func (t *Tracer) Len() int { return len(t.Events) }

// Histogram is a bank of counters over a fixed value range; values
// outside the range land in the first or last bin. Like the hardware's
// 32-bit counters, a bin saturates at its maximum instead of wrapping;
// saturated increments are tallied in Overflow.
type Histogram struct {
	min, max int64
	bins     []uint32
	n        int64
	sum      float64

	// Overflow counts samples whose bin had already saturated at the
	// 32-bit counter maximum.
	Overflow int64
}

// NewHistogram returns a histogram of [min, max] with the given bin count
// (<= 0 selects the hardware's 64K counters).
func NewHistogram(min, max int64, bins int) *Histogram {
	if bins <= 0 {
		bins = HistogramCounters
	}
	if max <= min {
		panic(fmt.Sprintf("perfmon: histogram range [%d,%d]", min, max))
	}
	return &Histogram{min: min, max: max, bins: make([]uint32, bins)}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	i := int64(len(h.bins)) * (v - h.min) / (h.max - h.min + 1)
	if i < 0 {
		i = 0
	}
	if i >= int64(len(h.bins)) {
		i = int64(len(h.bins)) - 1
	}
	if h.bins[i] == math.MaxUint32 {
		h.Overflow++
	} else {
		h.bins[i]++
	}
	h.n++
	h.sum += float64(v)
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Mean reports the sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// Bin returns counter i.
func (h *Histogram) Bin(i int) uint32 { return h.bins[i] }

// Quantile returns an approximate q-quantile (bin lower edge), q in [0,1].
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return h.min
	}
	target := int64(q * float64(h.n))
	var seen int64
	for i, c := range h.bins {
		seen += int64(c)
		if seen > target {
			return h.min + int64(i)*(h.max-h.min+1)/int64(len(h.bins))
		}
	}
	return h.max
}

// blockStat is the probe's per-block measurement state: one record per
// Fire, so back-to-back prefetches whose replies overlap in the network
// never contaminate each other's statistics.
type blockStat struct {
	firstIssue sim.Cycle
	issues     int
	arrivals   int
	lastArrive sim.Cycle
}

// PrefetchProbe measures a PFU the way the paper's monitor does: issue
// and arrival times per request, first-word latency per prefetch block,
// and interarrival gaps between the remaining words. Measurements are
// keyed per block; an arrival is attributed through its request tag (the
// buffer slot it fills), which stays correct even when replies from
// different memory modules interleave out of block order across
// pipelined prefetches.
type PrefetchProbe struct {
	blocks    []blockStat
	pending   map[int][]int // buffer slot -> FIFO of block indices awaiting that slot
	latencies []sim.Cycle   // first-word latency per block
	gaps      []sim.Cycle   // interarrival within blocks

	// Spurious counts arrivals on a slot with no request outstanding (a
	// reply that reached a PFU whose prefetch was retired — never
	// attributed).
	Spurious int64
}

// AttachPrefetch instruments u. Existing OnFire/OnIssue/OnArrive hooks
// are chained, not replaced: the probe records its measurement and then
// invokes whatever handler was installed before it, so multiple
// observers can share one PFU.
func AttachPrefetch(u *prefetch.PFU) *PrefetchProbe {
	p := &PrefetchProbe{pending: make(map[int][]int)}
	prevFire, prevIssue, prevArrive := u.OnFire, u.OnIssue, u.OnArrive
	u.OnFire = func(addr uint64) {
		p.blocks = append(p.blocks, blockStat{})
		if prevFire != nil {
			prevFire(addr)
		}
	}
	u.OnIssue = func(now sim.Cycle, seq int, addr uint64) {
		if len(p.blocks) == 0 {
			// Attached after the block fired: open it at first issue.
			p.blocks = append(p.blocks, blockStat{})
		}
		bi := len(p.blocks) - 1
		b := &p.blocks[bi]
		if b.issues == 0 {
			b.firstIssue = now
		}
		b.issues++
		// The request travels tagged with its buffer slot; remember which
		// block issued on that slot so the reply attributes to it. The
		// per-slot list is a FIFO for form's sake — a correctly wired
		// machine never has two requests for one slot in flight (Fire
		// invalidates the buffer).
		slot := seq % prefetch.BufferWords
		p.pending[slot] = append(p.pending[slot], bi)
		if prevIssue != nil {
			prevIssue(now, seq, addr)
		}
	}
	u.OnArrive = func(now sim.Cycle, slot int) {
		if q := p.pending[slot]; len(q) > 0 {
			bi := q[0]
			if len(q) == 1 {
				delete(p.pending, slot)
			} else {
				p.pending[slot] = q[1:]
			}
			b := &p.blocks[bi]
			if b.arrivals == 0 {
				// First datum of the block: latency from the block's
				// first issue.
				p.latencies = append(p.latencies, now-b.firstIssue)
			} else {
				p.gaps = append(p.gaps, now-b.lastArrive)
			}
			b.lastArrive = now
			b.arrivals++
		} else {
			p.Spurious++
		}
		if prevArrive != nil {
			prevArrive(now, slot)
		}
	}
	return p
}

// MeanLatency is the mean first-word latency over all blocks, in cycles.
func (p *PrefetchProbe) MeanLatency() float64 { return meanCycles(p.latencies) }

// MeanInterarrival is the mean gap between the remaining words of each
// block, in cycles.
func (p *PrefetchProbe) MeanInterarrival() float64 { return meanCycles(p.gaps) }

// Blocks reports the number of completed first-word measurements.
func (p *PrefetchProbe) Blocks() int { return len(p.latencies) }

// Samples reports the number of interarrival gaps measured.
func (p *PrefetchProbe) Samples() int { return len(p.gaps) }

func meanCycles(cs []sim.Cycle) float64 {
	if len(cs) == 0 {
		return math.NaN()
	}
	var sum sim.Cycle
	for _, c := range cs {
		sum += c
	}
	return float64(sum) / float64(len(cs))
}

// MedianCycles returns the median of a cycle series (helper for repeated
// experiments, which the paper reports as consistent within 10%).
func MedianCycles(cs []sim.Cycle) sim.Cycle {
	if len(cs) == 0 {
		return 0
	}
	s := make([]sim.Cycle, len(cs))
	copy(s, cs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
