package perfmon

import (
	"fmt"

	"repro/internal/telemetry"
)

// TraceEvents converts a tracer's captured events into telemetry trace
// instants, naming each event kind through names (kinds without an
// entry render as "event<kind>"). The result feeds telemetry.WriteTrace
// so software-posted monitor events appear on the exported timeline
// alongside the sampled counters.
func TraceEvents(t *Tracer, names map[uint16]string) []telemetry.Event {
	out := make([]telemetry.Event, 0, len(t.Events))
	for _, e := range t.Events {
		name, ok := names[e.Kind]
		if !ok {
			name = fmt.Sprintf("event%d", e.Kind)
		}
		out = append(out, telemetry.Event{Cycle: e.Cycle, Name: name, Arg: e.Arg})
	}
	return out
}
