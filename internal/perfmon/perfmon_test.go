package perfmon

import (
	"math"
	"testing"

	"repro/internal/gmem"
	"repro/internal/network"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

func TestTracerCapacityAndDrop(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Post(sim.Cycle(i), 1, int64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped)
	}
	if tr.Events[3].Arg != 3 || tr.Events[3].Cycle != 3 {
		t.Fatalf("event 3 = %+v", tr.Events[3])
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if tr.cap != TracerCapacity {
		t.Fatalf("default capacity %d, want %d", tr.cap, TracerCapacity)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 99, 100)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m != 49.5 {
		t.Fatalf("Mean = %g, want 49.5", m)
	}
	if h.Bin(42) != 1 {
		t.Fatalf("Bin(42) = %d, want 1", h.Bin(42))
	}
	if q := h.Quantile(0.5); q < 45 || q > 55 {
		t.Fatalf("median = %d, want ~50", q)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(10, 19, 10)
	h.Add(-5)
	h.Add(100)
	if h.Bin(0) != 1 || h.Bin(9) != 1 {
		t.Fatal("out-of-range samples not clamped to edge bins")
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	if !math.IsNaN(h.Mean()) {
		t.Fatal("empty Mean not NaN")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty Quantile not min")
	}
}

func TestHistogramBadRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for inverted range")
		}
	}()
	NewHistogram(5, 5, 4)
}

func TestMedianCycles(t *testing.T) {
	if MedianCycles(nil) != 0 {
		t.Fatal("empty median not 0")
	}
	if m := MedianCycles([]sim.Cycle{5, 1, 9}); m != 5 {
		t.Fatalf("median = %d, want 5", m)
	}
}

// TestPrefetchProbeOnRealPath measures an actual prefetch through the
// memory path and checks the paper's minimums: 8-cycle first-word
// latency, ~1-cycle interarrival when uncontended.
func TestPrefetchProbeOnRealPath(t *testing.T) {
	eng := sim.New()
	fwd := network.MustNew("forward", 64, 8, 0)
	rev := network.MustNew("reverse", 64, 8, 0)
	g, err := gmem.New(gmem.Config{Words: 8192, Modules: 32, ServiceCycles: 2, QueueWords: 4}, rev)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < g.Modules(); m++ {
		fwd.SetSink(m, g.Module(m))
	}
	u := prefetch.New(fwd, 0, 0, -1)
	u.SetRouter(g.ModuleOf)
	rev.SetSink(0, network.SinkFunc(func(p *network.Packet) bool { return u.Deliver(eng.Now(), p) }))
	for p := 1; p < 64; p++ {
		rev.SetSink(p, network.SinkFunc(func(*network.Packet) bool { return true }))
	}
	probe := AttachPrefetch(u)
	eng.Register("pfu", u)
	eng.Register("fwd", fwd)
	for m := 0; m < g.Modules(); m++ {
		eng.Register("mod", g.Module(m))
	}
	eng.Register("rev", rev)

	u.Arm(64, 1)
	u.Fire(0)
	if _, err := eng.RunUntil(func() bool { return !u.Active() }, 5000); err != nil {
		t.Fatal(err)
	}
	if probe.Blocks() != 1 {
		t.Fatalf("Blocks = %d, want 1", probe.Blocks())
	}
	if lat := probe.MeanLatency(); lat != 8 {
		t.Fatalf("first-word latency = %g, want 8", lat)
	}
	if probe.Samples() != 63 {
		t.Fatalf("Samples = %d, want 63 (one gap per word after the first)", probe.Samples())
	}
	ia := probe.MeanInterarrival()
	if ia < 0.99 || ia > 1.3 {
		t.Fatalf("interarrival = %.2f, want ~1 uncontended", ia)
	}

	// Second block resets per-block state.
	u.Arm(32, 1)
	u.Fire(256)
	if _, err := eng.RunUntil(func() bool { return !u.Active() }, 5000); err != nil {
		t.Fatal(err)
	}
	if probe.Blocks() != 2 {
		t.Fatalf("Blocks after second fire = %d, want 2", probe.Blocks())
	}
}
