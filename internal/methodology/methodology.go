// Package methodology implements the performance-evaluation methodology
// of Section 4.3: the Fundamental Principle of Parallel Processing's
// five Practical Parallelism Tests (PPTs), the speedup/efficiency/
// stability metrics, and the acceptable-performance bands.
//
// The paper proposes P/2 and P/(2 log P) as the speedup levels denoting
// high and acceptable performance for P >= 8, classifying results into
// high, intermediate and unacceptable bands; defines the stability of an
// ensemble of K codes as min performance over max performance with e
// outliers excluded; and judges systems by whether a small number of
// exceptions reaches the workstation-level instability of about 5.
package methodology

import (
	"math"
	"sort"
)

// Band is a performance classification.
type Band int

// The three bands of Figure 3 and Table 6.
const (
	Unacceptable Band = iota
	Intermediate
	High
)

// String names the band as the figure's legend does.
func (b Band) String() string {
	switch b {
	case Unacceptable:
		return "U"
	case Intermediate:
		return "I"
	case High:
		return "H"
	}
	return "?"
}

// HighEfficiency is the efficiency corresponding to a speedup of P/2.
const HighEfficiency = 0.5

// AcceptableEfficiency returns the efficiency corresponding to a speedup
// of P / (2 log2 P), the paper's acceptable-performance level for P >= 8.
func AcceptableEfficiency(p int) float64 {
	if p < 2 {
		return HighEfficiency
	}
	return 1 / (2 * math.Log2(float64(p)))
}

// Classify places an efficiency into its band for a P-processor system.
func Classify(eff float64, p int) Band {
	switch {
	case eff > HighEfficiency:
		return High
	case eff > AcceptableEfficiency(p):
		return Intermediate
	default:
		return Unacceptable
	}
}

// CountBands tallies a set of efficiencies (the Table 6 computation).
func CountBands(effs []float64, p int) (high, intermediate, unacceptable int) {
	for _, e := range effs {
		switch Classify(e, p) {
		case High:
			high++
		case Intermediate:
			intermediate++
		default:
			unacceptable++
		}
	}
	return
}

// Speedup is serial time over parallel time.
func Speedup(tSerial, tParallel float64) float64 {
	if tParallel <= 0 {
		return 0
	}
	return tSerial / tParallel
}

// Efficiency is speedup over processor count.
func Efficiency(speedup float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return speedup / float64(p)
}

// HarmonicMean returns the harmonic mean of positive rates, the paper's
// aggregate for MFLOPS comparisons.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Stability computes St(K, e): the minimum over maximum performance of
// the ensemble after excluding e computations whose results are outliers.
// Outliers may come from either end of the distribution; the split that
// maximizes stability is chosen, matching the paper's intent of
// excluding whichever results are outliers from the ensemble.
func Stability(rates []float64, e int) float64 {
	k := len(rates)
	if k == 0 || e >= k {
		return math.NaN()
	}
	s := make([]float64, k)
	copy(s, rates)
	sort.Float64s(s)
	best := 0.0
	for lo := 0; lo <= e; lo++ {
		hi := e - lo
		mn, mx := s[lo], s[k-1-hi]
		if mx <= 0 {
			continue
		}
		if st := mn / mx; st > best {
			best = st
		}
	}
	return best
}

// Instability is the inverse of stability: In(K, e) = 1 / St(K, e).
func Instability(rates []float64, e int) float64 {
	st := Stability(rates, e)
	if st <= 0 || math.IsNaN(st) {
		return math.Inf(1)
	}
	return 1 / st
}

// ExceptionsForStability returns the smallest e for which the ensemble's
// instability is at or below the threshold (the workstation level of ~5
// in the paper), or -1 if no number of exceptions short of emptying the
// ensemble suffices.
func ExceptionsForStability(rates []float64, threshold float64) int {
	for e := 0; e < len(rates); e++ {
		if Instability(rates, e) <= threshold {
			return e
		}
	}
	return -1
}

// Point is one code's result on one machine, for PPT evaluation and the
// Figure 3 scatter.
type Point struct {
	Name       string
	Efficiency float64
}

// PPT1Report is the Delivered Performance test: the system delivers
// speedup or computational rate for a useful set of codes.
type PPT1Report struct {
	High, Intermediate, Unacceptable int
	// Pass holds when at least three quarters of the codes reach the
	// intermediate band or better — "delivering intermediate parallel
	// performance on the average".
	Pass bool
}

// PPT1 evaluates Delivered Performance over a machine's points.
func PPT1(points []Point, p int) PPT1Report {
	var effs []float64
	for _, pt := range points {
		effs = append(effs, pt.Efficiency)
	}
	h, i, u := CountBands(effs, p)
	total := h + i + u
	return PPT1Report{High: h, Intermediate: i, Unacceptable: u,
		Pass: total > 0 && float64(h+i) >= 0.75*float64(total)}
}

// PPT2Report is the Stable Performance test: performance within a
// stability range as computations vary.
type PPT2Report struct {
	// Instabilities at e = 0, 2 and 6 exclusions (the Table 5 columns).
	In0, In2, In6 float64
	// ExceptionsNeeded is the smallest e reaching workstation-level
	// stability (instability <= 5).
	ExceptionsNeeded int
	// Pass holds when that e is at most a quarter of the ensemble —
	// the paper passes Cedar and the Cray-1 with two exceptions of
	// thirteen codes and fails the YMP, which needs six ("about half
	// of the Perfect codes").
	Pass bool
}

// PPT2 evaluates Stable Performance over a rate ensemble.
func PPT2(rates []float64, stabilityThreshold float64) PPT2Report {
	e := ExceptionsForStability(rates, stabilityThreshold)
	return PPT2Report{
		In0:              Instability(rates, 0),
		In2:              Instability(rates, 2),
		In6:              Instability(rates, 6),
		ExceptionsNeeded: e,
		Pass:             e >= 0 && float64(e) <= float64(len(rates))/4,
	}
}

// PPT3Report is the Portability and Programmability test, judged through
// the performance levels compilers (or automatable restructuring) reach.
type PPT3Report struct {
	High, Intermediate, Unacceptable int
	// NearlyAcceptable holds when a majority of codes reach the
	// intermediate band under automatic or automatable restructuring —
	// the paper's basis for expecting PPT3 to be passed in the near
	// future.
	NearlyAcceptable bool
}

// PPT3 evaluates restructuring efficiency (the Table 6 computation).
func PPT3(points []Point, p int) PPT3Report {
	var effs []float64
	for _, pt := range points {
		effs = append(effs, pt.Efficiency)
	}
	h, i, u := CountBands(effs, p)
	return PPT3Report{High: h, Intermediate: i, Unacceptable: u,
		NearlyAcceptable: h+i > u}
}

// ScalPoint is one scalability measurement: a processor count, problem
// size and delivered efficiency.
type ScalPoint struct {
	P          int
	N          int
	MFLOPS     float64
	Efficiency float64
}

// PPT4Report is the Code and Architecture Scalability test over a range
// of processor counts and problem sizes. A system is scalable at a
// performance level when every measured processor count reaches that
// level for some problem sizes, and — at fixed P, the paper's
// St(P, N, 1, 0) — the delivered rate is stable (St >= 0.5) across the
// sizes where the level holds.
type PPT4Report struct {
	// HighRange / IntermediateRange are the problem-size ranges
	// [MinN, MaxN] over which each band was observed (at any P).
	HighRange, IntermediateRange [2]int
	// MinRateStability is the worst per-P rate stability over the
	// dominant band's points; the acceptance criterion is
	// 0.5 <= St <= 1.
	MinRateStability float64
	// ScalableHigh / ScalableIntermediate report the verdicts the paper
	// issues ("Cedar is scalable with high performance for many problem
	// sizes...", "CM-5 is scalable with intermediate performance").
	ScalableHigh         bool
	ScalableIntermediate bool
}

// PPT4 evaluates scalability over a measurement grid.
func PPT4(points []ScalPoint) PPT4Report {
	rep := PPT4Report{
		HighRange:         [2]int{math.MaxInt32, -1},
		IntermediateRange: [2]int{math.MaxInt32, -1},
		MinRateStability:  math.NaN(),
	}
	ps := map[int]bool{}
	highByP := map[int][]float64{}
	okByP := map[int][]float64{} // intermediate or better
	for _, pt := range points {
		ps[pt.P] = true
		switch Classify(pt.Efficiency, pt.P) {
		case High:
			if pt.N < rep.HighRange[0] {
				rep.HighRange[0] = pt.N
			}
			if pt.N > rep.HighRange[1] {
				rep.HighRange[1] = pt.N
			}
			highByP[pt.P] = append(highByP[pt.P], pt.MFLOPS)
			okByP[pt.P] = append(okByP[pt.P], pt.MFLOPS)
		case Intermediate:
			if pt.N < rep.IntermediateRange[0] {
				rep.IntermediateRange[0] = pt.N
			}
			if pt.N > rep.IntermediateRange[1] {
				rep.IntermediateRange[1] = pt.N
			}
			okByP[pt.P] = append(okByP[pt.P], pt.MFLOPS)
		}
	}
	if len(ps) == 0 {
		return rep
	}
	// A band scales when every P reaches it somewhere and the per-P
	// rates within it are stable.
	verdict := func(byP map[int][]float64) (bool, float64) {
		worst := 1.0
		for p := range ps {
			rates := byP[p]
			if len(rates) == 0 {
				return false, math.NaN()
			}
			if len(rates) >= 2 {
				if st := Stability(rates, 0); st < worst {
					worst = st
				}
			}
		}
		return worst >= 0.5, worst
	}
	var stHigh, stOK float64
	rep.ScalableHigh, stHigh = verdict(highByP)
	rep.ScalableIntermediate, stOK = verdict(okByP)
	switch {
	case rep.ScalableHigh:
		rep.MinRateStability = stHigh
	default:
		rep.MinRateStability = stOK
	}
	return rep
}
