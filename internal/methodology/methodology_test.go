package methodology

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/compare"
)

func TestBands(t *testing.T) {
	// P = 32: high > 0.5, acceptable > 1/(2 log2 32) = 0.1.
	if AcceptableEfficiency(32) != 0.1 {
		t.Fatalf("AcceptableEfficiency(32) = %g, want 0.1", AcceptableEfficiency(32))
	}
	if Classify(0.6, 32) != High || Classify(0.3, 32) != Intermediate || Classify(0.05, 32) != Unacceptable {
		t.Fatal("classification wrong")
	}
	// P = 8: acceptable > 1/6.
	want := 1.0 / 6
	if math.Abs(AcceptableEfficiency(8)-want) > 1e-12 {
		t.Fatalf("AcceptableEfficiency(8) = %g, want %g", AcceptableEfficiency(8), want)
	}
	if High.String() != "H" || Intermediate.String() != "I" || Unacceptable.String() != "U" {
		t.Fatal("band names wrong")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if Speedup(100, 10) != 10 {
		t.Fatal("Speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("Speedup by zero")
	}
	if Efficiency(16, 32) != 0.5 {
		t.Fatal("Efficiency wrong")
	}
	if Efficiency(16, 0) != 0 {
		t.Fatal("Efficiency with no processors")
	}
}

func TestHarmonicMean(t *testing.T) {
	hm := HarmonicMean([]float64{1, 1, 1})
	if hm != 1 {
		t.Fatalf("HM of ones = %g", hm)
	}
	hm = HarmonicMean([]float64{2, 6, 6})
	// 3 / (1/2 + 1/6 + 1/6) = 3.6
	if math.Abs(hm-3.6) > 1e-12 {
		t.Fatalf("HM = %g, want 3.6", hm)
	}
	if !math.IsNaN(HarmonicMean(nil)) || !math.IsNaN(HarmonicMean([]float64{1, -1})) {
		t.Fatal("HM edge cases")
	}
}

func TestStabilityDefinition(t *testing.T) {
	rates := []float64{1, 2, 4, 8}
	if st := Stability(rates, 0); st != 0.125 {
		t.Fatalf("St(e=0) = %g, want 1/8", st)
	}
	// One exclusion: drop the 8 (or the 1), best is 1/4... dropping 8:
	// 1/4; dropping 1: 2/8 = 1/4. Equal.
	if st := Stability(rates, 1); st != 0.25 {
		t.Fatalf("St(e=1) = %g, want 1/4", st)
	}
	// Two exclusions: drop 1 and 8: 2/4 = 0.5.
	if st := Stability(rates, 2); st != 0.5 {
		t.Fatalf("St(e=2) = %g, want 1/2", st)
	}
	if in := Instability(rates, 0); in != 8 {
		t.Fatalf("In = %g, want 8", in)
	}
}

// TestStabilityBounds: 0 < St <= 1 for any positive ensemble.
func TestStabilityBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		rates := make([]float64, len(raw))
		for i, v := range raw {
			rates[i] = float64(v%1000) + 1
		}
		for e := 0; e < len(rates)-1; e++ {
			st := Stability(rates, e)
			if st <= 0 || st > 1 {
				return false
			}
			// Monotone: more exclusions cannot hurt stability.
			if e > 0 && st < Stability(rates, e-1)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStabilityEdge(t *testing.T) {
	if !math.IsNaN(Stability(nil, 0)) {
		t.Fatal("empty ensemble")
	}
	if !math.IsNaN(Stability([]float64{1}, 1)) {
		t.Fatal("excluding everything")
	}
	if !math.IsInf(Instability([]float64{0, 1}, 0), 1) {
		t.Fatal("zero rate instability should be +Inf")
	}
}

// TestTable5Exceptions reproduces the paper's stability findings from
// the cross-machine dataset: the Cray-1 reaches workstation-level
// stability with two exceptions, Cedar with few (the paper says two;
// from the published Table 3 rates it takes three), and the YMP needs
// six — about half of the Perfect codes — so it fails PPT2.
func TestTable5Exceptions(t *testing.T) {
	ds := compare.Dataset()
	cedar := ExceptionsForStability(compare.CedarRates(ds), compare.WorkstationInstability)
	ymp := ExceptionsForStability(compare.YMPRates(ds), compare.WorkstationInstability)
	cray1 := ExceptionsForStability(compare.Cray1Rates(ds), compare.WorkstationInstability)
	if cray1 != 2 {
		t.Fatalf("Cray-1 exceptions = %d, want 2", cray1)
	}
	if cedar > 3 {
		t.Fatalf("Cedar exceptions = %d, want <= 3", cedar)
	}
	if ymp != 6 {
		t.Fatalf("YMP exceptions = %d, want 6", ymp)
	}
	// PPT2 verdicts: Cedar and Cray-1 pass, YMP does not.
	if !PPT2(compare.CedarRates(ds), compare.WorkstationInstability).Pass {
		t.Fatal("Cedar should pass PPT2")
	}
	if !PPT2(compare.Cray1Rates(ds), compare.WorkstationInstability).Pass {
		t.Fatal("Cray-1 should pass PPT2")
	}
	if PPT2(compare.YMPRates(ds), compare.WorkstationInstability).Pass {
		t.Fatal("YMP should fail PPT2")
	}
}

// TestTable6BandCounts reproduces Table 6: restructuring efficiency puts
// Cedar at 1 high / 9 intermediate / 3 unacceptable and the YMP at
// 0 / 6 / 7.
func TestTable6BandCounts(t *testing.T) {
	ds := compare.Dataset()
	var cedar, ymp []float64
	for _, c := range ds {
		cedar = append(cedar, c.CedarAutoEff)
		ymp = append(ymp, c.YMPAutoEff)
	}
	h, i, u := CountBands(cedar, 32)
	if h != 1 || i != 9 || u != 3 {
		t.Fatalf("Cedar bands %d/%d/%d, want 1/9/3", h, i, u)
	}
	h, i, u = CountBands(ymp, 8)
	if h != 0 || i != 6 || u != 7 {
		t.Fatalf("YMP bands %d/%d/%d, want 0/6/7", h, i, u)
	}
	rep := PPT3([]Point{{"x", 0.3}, {"y", 0.2}, {"z", 0.05}}, 32)
	if rep.High != 0 || rep.Intermediate != 2 || rep.Unacceptable != 1 || !rep.NearlyAcceptable {
		t.Fatalf("PPT3 report wrong: %+v", rep)
	}
}

// TestFigure3Scatter reproduces the Figure 3 reading: on the manually
// optimized codes the 8-processor YMP has about half high and half
// intermediate with one unacceptable; the 32-processor Cedar about
// one quarter high, three quarters intermediate, and none unacceptable.
func TestFigure3Scatter(t *testing.T) {
	ds := compare.Dataset()
	var cedar, ymp []float64
	for _, c := range ds {
		cedar = append(cedar, c.CedarManualEff)
		ymp = append(ymp, c.YMPManualEff)
	}
	h, i, u := CountBands(cedar, 32)
	if u != 0 {
		t.Fatalf("Cedar manual has %d unacceptable codes, want 0", u)
	}
	if h < 2 || h > 4 {
		t.Fatalf("Cedar manual high count = %d, want ~1/4 of 13", h)
	}
	if i < 9 {
		t.Fatalf("Cedar manual intermediate = %d, want ~3/4 of 13", i)
	}
	h, i, u = CountBands(ymp, 8)
	if u != 1 {
		t.Fatalf("YMP manual has %d unacceptable, want 1", u)
	}
	if h < 5 || h > 7 || i < 5 || i > 7 {
		t.Fatalf("YMP manual %d/%d, want about half and half", h, i)
	}
}

// TestPPT1BothMachinesPass: both systems deliver intermediate average
// performance on the manual codes.
func TestPPT1BothMachinesPass(t *testing.T) {
	ds := compare.Dataset()
	var cedar, ymp []Point
	for _, c := range ds {
		cedar = append(cedar, Point{c.Name, c.CedarManualEff})
		ymp = append(ymp, Point{c.Name, c.YMPManualEff})
	}
	if rep := PPT1(cedar, 32); !rep.Pass {
		t.Fatalf("Cedar fails PPT1: %+v", rep)
	}
	if rep := PPT1(ymp, 8); !rep.Pass {
		t.Fatalf("YMP fails PPT1: %+v", rep)
	}
}

func TestPPT4Verdicts(t *testing.T) {
	// A Cedar-like grid: high band for large N, intermediate for small,
	// stable rates.
	var pts []ScalPoint
	for _, n := range []int{1000, 4000, 16000, 64000, 172000} {
		eff := 0.3
		if n >= 16000 {
			eff = 0.6
		}
		pts = append(pts, ScalPoint{P: 32, N: n, MFLOPS: 34 + float64(n)/172000*14, Efficiency: eff})
	}
	rep := PPT4(pts)
	if !rep.ScalableHigh {
		t.Fatalf("expected scalable-high: %+v", rep)
	}
	if rep.HighRange[0] != 16000 || rep.HighRange[1] != 172000 {
		t.Fatalf("high range %v", rep.HighRange)
	}
	if rep.IntermediateRange[0] != 1000 || rep.IntermediateRange[1] != 4000 {
		t.Fatalf("intermediate range %v", rep.IntermediateRange)
	}

	// A CM-5-like grid: intermediate only.
	pts = nil
	for _, n := range []int{16000, 64000, 256000} {
		pts = append(pts, ScalPoint{P: 32, N: n, MFLOPS: 60, Efficiency: 0.35})
	}
	rep = PPT4(pts)
	if rep.ScalableHigh || !rep.ScalableIntermediate {
		t.Fatalf("CM-5-like grid verdict wrong: %+v", rep)
	}
}

// TestCM5ModelRanges reproduces the Section 4.3 quotes: on 32 processors
// the CM-5 delivers roughly 28-32 MFLOPS at bandwidth 3 and 58-67 at
// bandwidth 11 over 16K <= N <= 256K, and stays out of the high band.
func TestCM5ModelRanges(t *testing.T) {
	cm5 := compare.DefaultCM5(32)
	for _, n := range []int{16384, 65536, 262144} {
		r3 := cm5.MatVecMFLOPS(n, 3)
		r11 := cm5.MatVecMFLOPS(n, 11)
		if r3 < 20 || r3 > 40 {
			t.Fatalf("CM-5 bw=3 N=%d: %.1f MFLOPS, want ~28-32", n, r3)
		}
		if r11 < 45 || r11 > 80 {
			t.Fatalf("CM-5 bw=11 N=%d: %.1f MFLOPS, want ~58-67", n, r11)
		}
		if Classify(cm5.Efficiency(n, 11), 32) == High {
			t.Fatalf("CM-5 reached the high band at N=%d", n)
		}
		if Classify(cm5.Efficiency(n, 11), 32) == Unacceptable {
			t.Fatalf("CM-5 unacceptable at N=%d; paper reports intermediate", n)
		}
	}
	// Larger partitions move further from the high band (communication).
	e32 := compare.DefaultCM5(32).Efficiency(65536, 11)
	e512 := compare.DefaultCM5(512).Efficiency(65536, 11)
	if e512 >= e32 {
		t.Fatalf("efficiency should fall with partition size: %g vs %g", e512, e32)
	}
}

// TestYMPHarmonicMeanRatio: the harmonic-mean MFLOPS comparison between
// the machines (the paper reports YMP/Cedar = 7.4 on its full data; our
// reconstruction from the published ratios is dominated by SPICE and
// QCD, so only the direction is asserted).
func TestYMPHarmonicMeanRatio(t *testing.T) {
	ds := compare.Dataset()
	cedarHM := HarmonicMean(compare.CedarRates(ds))
	if math.Abs(cedarHM-3.2) > 0.3 {
		t.Fatalf("Cedar harmonic mean = %.2f, paper-derived ~3.2", cedarHM)
	}
	// Excluding the two codes where Cedar wins, the YMP's advantage is
	// large.
	var c, y []float64
	for _, cp := range ds {
		if cp.YMPOverCedar < 1 {
			continue
		}
		c = append(c, cp.CedarAutoMFLOPS)
		y = append(y, cp.YMPMFLOPS())
	}
	ratio := HarmonicMean(y) / HarmonicMean(c)
	if ratio < 3 {
		t.Fatalf("YMP/Cedar harmonic-mean ratio = %.1f, want >> 1", ratio)
	}
}

func TestClockRatio(t *testing.T) {
	ratio := compare.Cedar32.ClockNS / compare.YMP8.ClockNS
	if math.Abs(ratio-28.33) > 0.01 {
		t.Fatalf("clock ratio = %.2f, paper says 170/6 = 28.33", ratio)
	}
}
