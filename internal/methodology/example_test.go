package methodology_test

import (
	"fmt"

	"repro/internal/methodology"
)

// ExampleClassify shows the paper's performance bands for a 32-processor
// system: speedup above P/2 is high, above P/(2 log P) intermediate.
func ExampleClassify() {
	for _, eff := range []float64{0.62, 0.25, 0.05} {
		fmt.Println(methodology.Classify(eff, 32))
	}
	// Output:
	// H
	// I
	// U
}

// ExampleInstability computes In(K, e) for a small ensemble: excluding
// the outliers tightens the band.
func ExampleInstability() {
	rates := []float64{0.5, 3, 6, 9, 12, 31}
	fmt.Printf("In(6,0) = %.0f\n", methodology.Instability(rates, 0))
	fmt.Printf("In(6,2) = %.0f\n", methodology.Instability(rates, 2))
	// Output:
	// In(6,0) = 62
	// In(6,2) = 4
}

// ExamplePPT2 judges a machine's stability the way Table 5 does.
func ExamplePPT2() {
	cedarLike := []float64{0.5, 3.1, 6.9, 8.2, 9.2, 11.2, 11.9, 13.1, 18.9, 20.5, 31.7}
	rep := methodology.PPT2(cedarLike, 5)
	fmt.Printf("exceptions needed: %d, pass: %v\n", rep.ExceptionsNeeded, rep.Pass)
	// Output:
	// exceptions needed: 2, pass: true
}
