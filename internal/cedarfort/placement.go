package cedarfort

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/perfmon"
	"repro/internal/sim"
	"repro/internal/xylem"
)

// Data placement (Section 3.1 of the paper): a variable can be placed in
// either cluster or shared global memory; placement is in cluster memory
// by default, a GLOBAL attribute selects shared memory, and a variable
// declared inside a parallel loop gets a private per-processor copy in
// cluster memory. These helpers provide those declarations against the
// machine's address spaces; CEDAR FORTRAN's "data can be moved between
// cluster and global memory only via explicit moves under software
// control" is MoveOps.

// Global declares a shared array of n words in global memory and returns
// its base address (the GLOBAL attribute).
func (r *Runtime) Global(n uint64) isa.Addr {
	return isa.Addr{Space: isa.Global, Word: r.M.AllocGlobal(n)}
}

// ClusterLocal declares an array of n words in one cluster's memory (the
// default placement for a cluster task's data).
func (r *Runtime) ClusterLocal(cluster int, n uint64) isa.Addr {
	return isa.Addr{Space: isa.Cluster, Word: r.M.Clusters[cluster].Alloc(n)}
}

// LoopLocal declares a loop-local variable from inside a loop body: a
// private copy for the executing processor, placed in its cluster
// memory. In all Perfect programs the study found loop-local placement
// an important factor in reducing data access latencies.
func (c *Ctx) LoopLocal(n uint64) isa.Addr {
	if c.Cluster == nil {
		panic("cedarfort: LoopLocal outside a cluster context")
	}
	return isa.Addr{Space: isa.Cluster, Word: c.Cluster.Alloc(n)}
}

// MoveOps returns the operation sequence for an explicit software move
// of n words between cluster and global memory (either direction), the
// only way data moves between the two spaces. Global reads are
// prefetched in 512-word blocks; the Do callback, if non-nil, runs when
// the move completes (attach the functional copy there).
func MoveOps(dst, src isa.Addr, n int, do func()) []*isa.Op {
	if dst.Space == src.Space {
		panic(fmt.Sprintf("cedarfort: move within %v space", dst.Space))
	}
	var ops []*isa.Op
	for off := 0; off < n; off += 512 {
		chunk := n - off
		if chunk > 512 {
			chunk = 512
		}
		s := isa.Addr{Space: src.Space, Word: src.Word + uint64(off)}
		d := isa.Addr{Space: dst.Space, Word: dst.Word + uint64(off)}
		if src.Space == isa.Global {
			ops = append(ops,
				isa.NewPrefetch(s, chunk, 1),
				isa.NewVectorLoad(s, chunk, 1, 0, true),
			)
		} else {
			ops = append(ops, isa.NewVectorLoad(s, chunk, 1, 0, false))
		}
		ops = append(ops, isa.NewVectorStore(d, chunk, 1, 0))
	}
	if do != nil && len(ops) > 0 {
		ops[len(ops)-1].Do = do
	}
	return ops
}

// TraceOp returns an operation that posts a software event to the
// performance-monitoring hardware when it executes — the paper's "it is
// also possible to post events to the performance hardware from programs
// executing on Cedar". Posting costs a cycle on the CE.
func (r *Runtime) TraceOp(tr *perfmon.Tracer, kind uint16, arg int64) *isa.Op {
	op := isa.NewCompute(1)
	op.Do = func() {
		tr.Post(r.M.Eng.Now(), kind, arg)
	}
	return op
}

// MoveSeconds estimates the duration of a move of n words at the
// prefetched global streaming rate — a planning helper for placement
// decisions (the analytic counterpart of MoveOps).
func (r *Runtime) MoveSeconds(n int) float64 {
	// ~1.1 cycles per word plus per-block startup.
	cycles := sim.Cycle(float64(n)*1.1) + sim.Cycle((n/512+1)*20)
	return cycles.Seconds()
}

// IO emits a blocking Fortran I/O statement: a 2-cycle syscall issue
// followed by an isa.IO operation of n words through the executing
// cluster's interactive processor. The issuing program parks on the
// outstanding transfer — the CE reports no next event and is woken by
// the completion — instead of spinning, so parked CEs cost the
// quiescence-aware engine paths nothing.
func (c *Ctx) IO(words int64, formatted bool) {
	c.IONamed(words, formatted, "")
}

// IONamed is IO with a diagnostic label: a run that dies on its deadline
// with the transfer still outstanding names the label in the
// ErrDeadline report. An empty label falls back to the issuing CE's
// name.
func (c *Ctx) IONamed(words int64, formatted bool, label string) {
	op := isa.NewIORequest(words, formatted)
	op.IOLabel = label
	c.Emit(isa.NewCompute(2), op) // syscall issue, then park on the transfer
}

// IOOp returns an operation performing a synchronous file transfer of n
// words through the executing cluster's interactive processors: the IP
// serves requests sequentially, and the issuing CE spins (with backoff)
// until the transfer completes — Fortran-style blocking I/O. It must be
// emitted into a Gen-based stream (every runtime loop body qualifies).
//
// Deprecated: use Ctx.IO (or IONamed), which parks the issuing program
// on the outstanding transfer instead of burning CE cycles in a spin
// loop. IOOp remains for callers that want the legacy spin-poll timing.
func (c *Ctx) IOOp(words int64, formatted bool) {
	if c.Cluster == nil || c.Cluster.IPs == nil {
		panic("cedarfort: IOOp without a cluster I/O path")
	}
	done := false
	submit := isa.NewCompute(2) // syscall issue
	submit.Do = func() {
		c.Cluster.IPs.Submit(c.R.M.Eng.Now(), words, formatted, func(xylem.IOCompletion) { done = true })
	}
	g := c.G
	var mkPoll func() *isa.Op
	mkPoll = func() *isa.Op {
		poll := isa.NewCompute(c.R.Cfg.SpinBackoff)
		poll.OnDone = func(int64, bool) {
			if !done {
				g.EmitFront(mkPoll())
			}
		}
		return poll
	}
	submit.OnDone = func(int64, bool) {
		if !done {
			g.EmitFront(mkPoll())
		}
	}
	c.Emit(submit)
}
