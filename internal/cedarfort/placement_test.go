package cedarfort

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/perfmon"
	"repro/internal/sim"
)

func TestPlacementDeclarations(t *testing.T) {
	m := testMachine(2)
	r := New(m, DefaultConfig())
	g := r.Global(100)
	if g.Space != isa.Global {
		t.Fatal("Global placed in cluster space")
	}
	c0 := r.ClusterLocal(0, 50)
	c1 := r.ClusterLocal(1, 50)
	if c0.Space != isa.Cluster || c1.Space != isa.Cluster {
		t.Fatal("ClusterLocal placed in global space")
	}
	// Cluster spaces are private: both may start at 0.
	if c0.Word != 0 || c1.Word != 0 {
		t.Fatalf("first cluster allocations at %d/%d, want 0/0", c0.Word, c1.Word)
	}
}

func TestLoopLocalPrivateCopies(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	addrs := map[int]uint64{}
	_, err := r.XDOALL(8, Static, func(ctx *Ctx, iter int) {
		a := ctx.LoopLocal(16)
		// Each CE's private copy is a distinct cluster allocation.
		addrs[ctx.CE.ID] = a.Word
		ctx.Emit(isa.NewVectorStore(a, 16, 1, 0))
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, w := range addrs {
		if seen[w] {
			t.Fatalf("two loop-local copies share address %d", w)
		}
		seen[w] = true
	}
}

// TestMoveOpsTiming: an explicit global-to-cluster move streams at the
// prefetched rate, far faster than unprefetched element access.
func TestMoveOpsTiming(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	src := r.Global(1024)
	dst := r.ClusterLocal(0, 1024)
	moved := false
	ops := MoveOps(dst, src, 1024, func() { moved = true })
	m.Dispatch(0, isa.NewSeq(ops...))
	at, err := m.RunUntilIdle(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("move completion callback did not run")
	}
	// ~1.1 cycles/word streaming + block overheads; far below the
	// 6.5 cycles/word of unprefetched access.
	if at > 3*1024 {
		t.Fatalf("1024-word move took %d cycles", at)
	}
	if est := r.MoveSeconds(1024); est <= 0 || est > at.Seconds()*10 {
		t.Fatalf("MoveSeconds estimate %.2e inconsistent with measured %.2e", est, at.Seconds())
	}
}

func TestMoveOpsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("same-space move accepted")
		}
	}()
	MoveOps(isa.Addr{Space: isa.Global}, isa.Addr{Space: isa.Global, Word: 8}, 4, nil)
}

func TestMoveOpsRoundTrip(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	src := r.Global(64)
	local := r.ClusterLocal(0, 64)
	// Cluster -> global direction also works.
	back := MoveOps(src, local, 64, nil)
	in := MoveOps(local, src, 64, nil)
	m.Dispatch(0, isa.NewSeq(append(in, back...)...))
	if _, err := m.RunUntilIdle(100000); err != nil {
		t.Fatal(err)
	}
}

// TestSoftwareEventPosting: programs post time-stamped events to the
// monitoring hardware; the stamps are the completion cycles in order.
func TestSoftwareEventPosting(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	tr := perfmon.NewTracer(16)
	m.Dispatch(0, isa.NewSeq(
		r.TraceOp(tr, 1, 10),
		isa.NewCompute(100),
		r.TraceOp(tr, 2, 20),
	))
	if _, err := m.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("%d events, want 2", tr.Len())
	}
	e0, e1 := tr.Events[0], tr.Events[1]
	if e0.Kind != 1 || e0.Arg != 10 || e1.Kind != 2 || e1.Arg != 20 {
		t.Fatalf("events %+v %+v", e0, e1)
	}
	if gap := e1.Cycle - e0.Cycle; gap < 100 {
		t.Fatalf("events %d cycles apart, want >= the 100-cycle compute", gap)
	}
	_ = sim.Cycle(0)
}

// TestIOOpBlocksAndSerializes: the BDNA story on the simulator —
// formatted I/O through the cluster's IP dominates; unformatted I/O is
// an order of magnitude cheaper; concurrent requests from one cluster
// serialize at the IP.
func TestIOOpBlocksAndSerializes(t *testing.T) {
	run := func(formatted bool) sim.Cycle {
		m := testMachine(1)
		r := New(m, DefaultConfig())
		elapsed, err := r.XDOALL(4, Static, func(ctx *Ctx, iter int) {
			ctx.IOOp(200, formatted)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	f, u := run(true), run(false)
	if f < 5*u {
		t.Fatalf("formatted I/O (%d cycles) not much slower than raw (%d)", f, u)
	}
	// 4 transfers of 200 words serialize at one IP: at least 4x one
	// transfer's raw cost.
	per := sim.FromMicroseconds(0.6) * 200
	if u < 4*per {
		t.Fatalf("4 raw transfers finished in %d cycles; IP serialization missing (one transfer ~%d)", u, per)
	}
}

// TestIOParksAndSerializes: the non-spinning successor to IOOp — Ctx.IO
// parks the issuing program in the Xylem I/O wait table until the IP's
// completion handle arrives, with the same blocking semantics:
// formatted still dominates, concurrent cluster requests still
// serialize, and every park is attributed exactly once.
func TestIOParksAndSerializes(t *testing.T) {
	run := func(formatted bool) (*core.Machine, sim.Cycle) {
		m := testMachine(1)
		r := New(m, DefaultConfig())
		elapsed, err := r.XDOALL(4, Static, func(ctx *Ctx, iter int) {
			ctx.IONamed(200, formatted, "parker")
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, elapsed
	}
	mf, f := run(true)
	mu, u := run(false)
	if f < 5*u {
		t.Fatalf("formatted I/O (%d cycles) not much slower than raw (%d)", f, u)
	}
	per := sim.FromMicroseconds(0.6) * 200
	if u < 4*per {
		t.Fatalf("4 raw transfers finished in %d cycles; IP serialization missing (one transfer ~%d)", u, per)
	}
	for _, m := range []*core.Machine{mf, mu} {
		w := m.IOWait
		if w.Parks() != 4 || w.Completions() != 4 || w.Parked() != 0 {
			t.Fatalf("park table parks=%d completions=%d parked=%d, want 4/4/0",
				w.Parks(), w.Completions(), w.Parked())
		}
	}
	// Serialized transfers mean later requests wait in the IP queue, so
	// summed wait exceeds summed pure service time.
	ip := mu.Clusters[0].IPs
	if ip.WaitCycles <= ip.BusyCycles {
		t.Fatalf("summed wait %d not above summed service %d; queueing not attributed",
			ip.WaitCycles, ip.BusyCycles)
	}
}
