// Package cedarfort is the runtime analog of CEDAR FORTRAN's parallel
// constructs, executing on the simulated machine.
//
// The language gives a programmer explicit access to the key Cedar
// features; this runtime reproduces the constructs whose costs the paper
// measures:
//
//   - XDOALL: iterations scheduled over every CE in the machine through
//     run-time library functions working through global memory, with a
//     typical loop startup latency of ~90 µs and an iteration fetch of
//     ~30 µs — unless the Cedar synchronization instructions are used
//     for loop self-scheduling, which reduces the fetch to a single
//     Test-And-Operate round trip plus a small software cost.
//   - SDOALL: each iteration scheduled on an entire cluster, starting on
//     one CE; the other CEs idle until a CDOALL inside the body.
//     Successive SDOALLs can be scheduled with cluster affinity so that
//     loops operate on data previously distributed to cluster memories.
//   - CDOALL: iterations spread over the cluster through the concurrency
//     control bus — a few microseconds to start, with cheap bus
//     self-scheduling.
//
// Loop bodies are Go callbacks that emit micro-operations; the runtime
// builds the per-CE programs, dispatches them, and runs the machine to
// quiescence, returning elapsed simulated cycles.
package cedarfort

import (
	"fmt"

	"repro/internal/ce"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/sim"
)

// Schedule selects iteration assignment.
type Schedule int

// Scheduling disciplines for the DOALL variants (both are provided by
// run-time library options in CEDAR FORTRAN).
const (
	// SelfScheduled assigns iterations dynamically: a shared counter in
	// global memory for XDOALL/SDOALL, the concurrency bus for CDOALL.
	SelfScheduled Schedule = iota
	// Static assigns iteration i to processor i mod P at loop start.
	Static
)

// Config holds the runtime cost parameters, all of which come from
// Section 3.2 of the paper.
type Config struct {
	// XDOALLStartup is the machine-wide loop startup latency
	// (default 90 µs).
	XDOALLStartup sim.Cycle
	// SDOALLStartup is the startup of a cluster-scheduled loop
	// (default 90 µs — it uses the same global-memory mechanism).
	SDOALLStartup sim.Cycle
	// IterFetchSlow is the per-iteration fetch cost through the runtime
	// library without Cedar synchronization instructions
	// (default 30 µs).
	IterFetchSlow sim.Cycle
	// IterFetchFast is the software cost that remains when Cedar
	// Test-And-Operate performs the claim (default 4 µs); the network
	// round trip of the claim itself is simulated, not charged here.
	IterFetchFast sim.Cycle
	// UseCedarSync selects the fast claim path (the paper's "W/o Cedar
	// Synchronization" column corresponds to false).
	UseCedarSync bool
	// StaticIterCycles is the loop-control cost per statically scheduled
	// iteration (default 4 cycles).
	StaticIterCycles sim.Cycle
	// SpinBackoff is the delay between barrier/spin polls of a global
	// word (default 20 cycles).
	SpinBackoff sim.Cycle
}

// DefaultConfig returns the paper's runtime costs with Cedar
// synchronization enabled.
func DefaultConfig() Config {
	return Config{
		XDOALLStartup:    sim.FromMicroseconds(90),
		SDOALLStartup:    sim.FromMicroseconds(90),
		IterFetchSlow:    sim.FromMicroseconds(30),
		IterFetchFast:    sim.FromMicroseconds(4),
		UseCedarSync:     true,
		StaticIterCycles: 4,
		SpinBackoff:      20,
	}
}

// PhaseObserver receives workload phase-boundary marks from the
// runtime: DOALL start/end and barrier entry/exit. The telemetry
// sampler implements it; anything else that wants phase-aligned
// measurements can too.
type PhaseObserver interface {
	PhaseStart(name string)
	PhaseEnd(name string)
}

// Runtime executes parallel constructs on a machine.
type Runtime struct {
	M   *core.Machine
	Cfg Config

	// Phases, when non-nil, is notified at workload phase boundaries.
	Phases PhaseObserver
}

func (r *Runtime) phaseStart(name string) {
	if r.Phases != nil {
		r.Phases.PhaseStart(name)
	}
}

func (r *Runtime) phaseEnd(name string) {
	if r.Phases != nil {
		r.Phases.PhaseEnd(name)
	}
}

// New returns a runtime for m.
func New(m *core.Machine, cfg Config) *Runtime {
	return &Runtime{M: m, Cfg: cfg}
}

// Ctx is the view a loop body has of the processor running it.
type Ctx struct {
	// R is the runtime; CE the executing processor; Cluster its cluster.
	R       *Runtime
	CE      *ce.CE
	Cluster *cluster.Cluster
	// G receives the body's micro-operations.
	G *isa.Gen

	pendingCDOALL []cdoallReq
}

// Emit appends operations to the iteration's stream.
func (c *Ctx) Emit(ops ...*isa.Op) { c.G.Emit(ops...) }

type cdoallReq struct {
	n     int
	sched Schedule
	body  func(ctx *Ctx, iter int)
}

// CDOALL schedules an inner parallel loop over the cluster's CEs via the
// concurrency control bus. It may only be called from an SDOALL body
// (the construct the language nests this way), and the operations it
// spreads run after everything the body emitted before the call;
// multiple CDOALLs in one body run in sequence. Operations emitted after
// the last CDOALL call are not supported and panic at dispatch.
func (c *Ctx) CDOALL(n int, sched Schedule, body func(ctx *Ctx, iter int)) {
	c.pendingCDOALL = append(c.pendingCDOALL, cdoallReq{n: n, sched: sched, body: body})
}

// claimCost is the software component of one dynamic iteration fetch.
func (r *Runtime) claimCost() sim.Cycle {
	if r.Cfg.UseCedarSync {
		return r.Cfg.IterFetchFast
	}
	return r.Cfg.IterFetchSlow
}

// requireIdle panics if a construct is started while the machine runs.
func (r *Runtime) requireIdle(what string) {
	if !r.M.Idle() {
		panic(fmt.Sprintf("cedarfort: %s started on a busy machine", what))
	}
}

// Serial advances simulated time by d cycles: a serial program section
// executing on one CE with the rest of the machine idle.
func (r *Runtime) Serial(d sim.Cycle) {
	r.M.Eng.Run(d)
}

// XDOALL runs a parallel loop of n iterations over every CE in the
// machine and returns the elapsed cycles. The body runs once per
// iteration on the claiming CE and emits that iteration's operations.
func (r *Runtime) XDOALL(n int, sched Schedule, body func(ctx *Ctx, iter int)) (sim.Cycle, error) {
	r.requireIdle("XDOALL")
	r.phaseStart("xdoall")
	start := r.M.Eng.Now()
	ces := r.M.CEs()
	switch sched {
	case SelfScheduled:
		counter := r.M.AllocGlobal(1)
		r.M.Global.StoreInt(counter, 0)
		for _, c := range ces {
			r.dispatchClaimLoop(c, counter, n, r.Cfg.XDOALLStartup, body)
		}
	case Static:
		p := len(ces)
		for i, c := range ces {
			r.dispatchStaticLoop(c, i, p, n, r.Cfg.XDOALLStartup, body)
		}
	default:
		return 0, fmt.Errorf("cedarfort: unknown schedule %d", sched)
	}
	end, err := r.M.RunUntilIdle(maxCycles(n))
	r.phaseEnd("xdoall")
	return end - start, err
}

// dispatchClaimLoop builds and assigns a dynamic claim-loop program.
func (r *Runtime) dispatchClaimLoop(c *ce.CE, counter uint64, n int, startup sim.Cycle, body func(ctx *Ctx, iter int)) {
	cl := r.M.Clusters[c.ID/r.M.Config().Cluster.CEs]
	started := false
	done := false
	var g *isa.Gen
	g = isa.NewGen(func(gen *isa.Gen) bool {
		if !started {
			started = true
			gen.Emit(isa.NewCompute(startup))
			return true
		}
		if done {
			return false
		}
		claim := isa.NewSync(counter, network.FetchAndAdd(1))
		claim.OnDone = func(v int64, ok bool) {
			iter := int(v)
			if iter >= n {
				done = true
				return
			}
			gen.Emit(isa.NewCompute(r.claimCost()))
			ctx := &Ctx{R: r, CE: c, Cluster: cl, G: gen}
			body(ctx, iter)
			if len(ctx.pendingCDOALL) > 0 {
				panic("cedarfort: CDOALL inside XDOALL (only SDOALL bodies may nest CDOALL)")
			}
		}
		gen.Emit(claim)
		return true
	})
	c.SetProgram(g)
}

// dispatchStaticLoop builds and assigns a statically blocked program.
func (r *Runtime) dispatchStaticLoop(c *ce.CE, id, p, n int, startup sim.Cycle, body func(ctx *Ctx, iter int)) {
	cl := r.M.Clusters[c.ID/r.M.Config().Cluster.CEs]
	started := false
	iter := id
	g := isa.NewGen(func(gen *isa.Gen) bool {
		if !started {
			started = true
			gen.Emit(isa.NewCompute(startup))
			return true
		}
		if iter >= n {
			return false
		}
		gen.Emit(isa.NewCompute(r.Cfg.StaticIterCycles))
		ctx := &Ctx{R: r, CE: c, Cluster: cl, G: gen}
		body(ctx, iter)
		if len(ctx.pendingCDOALL) > 0 {
			panic("cedarfort: CDOALL inside XDOALL (only SDOALL bodies may nest CDOALL)")
		}
		iter += p
		return true
	})
	c.SetProgram(g)
}

// SDOALL runs a loop whose iterations are each scheduled on an entire
// cluster: the body starts on the cluster's first CE (the others idle
// until the body's CDOALLs run) and may nest CDOALL constructs. With
// affinity true, iteration i is statically assigned to cluster
// i mod clusters, the mechanism CEDAR FORTRAN uses to keep successive
// SDOALLs operating on the data already distributed to each cluster's
// memory; otherwise clusters self-schedule from a global counter.
func (r *Runtime) SDOALL(n int, affinity bool, body func(ctx *Ctx, iter int)) (sim.Cycle, error) {
	r.requireIdle("SDOALL")
	r.phaseStart("sdoall")
	start := r.M.Eng.Now()
	var counter uint64
	hasCounter := !affinity
	if hasCounter {
		counter = r.M.AllocGlobal(1)
		r.M.Global.StoreInt(counter, 0)
	}
	nclusters := len(r.M.Clusters)
	for ci, cl := range r.M.Clusters {
		leader := cl.CEs[0]
		r.dispatchSDOALLLeader(leader, cl, ci, nclusters, counter, hasCounter, n, body)
	}
	end, err := r.M.RunUntilIdle(maxCycles(n))
	r.phaseEnd("sdoall")
	return end - start, err
}

// dispatchSDOALLLeader assigns the per-cluster leader program: claim an
// iteration, run the body's leader operations, then execute any nested
// CDOALLs via the concurrency bus, then claim again.
func (r *Runtime) dispatchSDOALLLeader(leader *ce.CE, cl *cluster.Cluster, ci, nclusters int, counter uint64, hasCounter bool, n int, body func(ctx *Ctx, iter int)) {
	started := false
	done := false
	staticNext := ci // affinity schedule: ci, ci+C, ci+2C, ...

	var loop func() *isa.Gen // builds (a fresh copy of) the claim-loop program
	runIteration := func(gen *isa.Gen, iter int) {
		ctx := &Ctx{R: r, CE: leader, Cluster: cl, G: gen}
		body(ctx, iter)
		if len(ctx.pendingCDOALL) == 0 {
			return
		}
		// Chain the nested CDOALLs: each spreads gang programs over the
		// bus; a join on the last program re-dispatches the leader with
		// the continuation (the next CDOALL or a fresh claim loop).
		reqs := ctx.pendingCDOALL
		var chain func(k int)
		chain = func(k int) {
			req := reqs[k]
			gangBody := func(iter2 int, g2 *isa.Gen) {
				ictx := &Ctx{R: r, CE: nil, Cluster: cl, G: g2}
				req.body(ictx, iter2)
				if len(ictx.pendingCDOALL) > 0 {
					panic("cedarfort: CDOALL nested inside CDOALL")
				}
			}
			var progs []isa.Program
			if req.sched == Static {
				progs = cl.StaticSchedule(req.n, gangBody)
			} else {
				progs = cl.SelfSchedule(req.n, gangBody)
			}
			remaining := len(progs)
			after := func() {
				if k+1 < len(reqs) {
					chain(k + 1) // next CDOALL of this iteration
					return
				}
				leader.ForceProgram(loop()) // resume the claim loop
			}
			for i := range progs {
				progs[i] = isa.OnEnd(progs[i], func() {
					remaining--
					if remaining == 0 {
						after()
					}
				})
			}
			spread := cl.SpreadOp(progs)
			if k == 0 {
				gen.Emit(spread)
			} else {
				// Chained spreads run from the join callback: dispatch a
				// one-op program on the leader.
				leader.ForceProgram(isa.NewSeq(spread))
			}
		}
		chain(0)
	}

	loop = func() *isa.Gen {
		var g *isa.Gen
		g = isa.NewGen(func(gen *isa.Gen) bool {
			if !started {
				started = true
				gen.Emit(isa.NewCompute(r.Cfg.SDOALLStartup))
				return true
			}
			if done {
				return false
			}
			if !hasCounter {
				if staticNext >= n {
					done = true
					return false
				}
				iter := staticNext
				staticNext += nclusters
				gen.Emit(isa.NewCompute(r.Cfg.StaticIterCycles))
				runIteration(gen, iter)
				return true
			}
			claim := isa.NewSync(counter, network.FetchAndAdd(1))
			claim.OnDone = func(v int64, ok bool) {
				iter := int(v)
				if iter >= n {
					done = true
					return
				}
				gen.Emit(isa.NewCompute(r.claimCost()))
				runIteration(gen, iter)
			}
			gen.Emit(claim)
			return true
		})
		return g
	}
	leader.SetProgram(loop())
}

// maxCycles bounds a construct's run time for deadlock detection.
func maxCycles(n int) sim.Cycle {
	c := sim.Cycle(n)*100000 + 10_000_000
	return c
}

// Barrier is a sense-reversing barrier in global memory: a counter word
// and a generation word, advanced with Cedar synchronization
// instructions. Participants spin on the generation word with backoff —
// the multicluster barrier whose cost dominates FL052 in Section 4.2.
type Barrier struct {
	r       *Runtime
	n       int
	counter uint64
	gen     uint64
}

// NewBarrier allocates a barrier for n participants.
func (r *Runtime) NewBarrier(n int) *Barrier {
	b := &Barrier{r: r, n: n, counter: r.M.AllocGlobal(1), gen: r.M.AllocGlobal(1)}
	r.M.Global.StoreInt(b.counter, 0)
	r.M.Global.StoreInt(b.gen, 0)
	return b
}

// Emit appends one participant's barrier episode to g: arrive
// (fetch-and-add), and either release the barrier (last arriver resets
// the counter and bumps the generation) or spin on the generation word.
func (b *Barrier) Emit(g *isa.Gen) {
	arrive := isa.NewSync(b.counter, network.FetchAndAdd(1))
	arrive.OnDone = func(v int64, ok bool) {
		myGen := v / int64(b.n) // generation this arrival belongs to
		if int(v%int64(b.n)) == 0 {
			// First arriver of this generation: the barrier episode opens.
			b.r.phaseStart("barrier")
		}
		if int(v%int64(b.n)) == b.n-1 {
			// Last arriver: bump the generation word, releasing the rest.
			b.r.phaseEnd("barrier")
			g.EmitFront(isa.NewSync(b.gen, network.SyncSpec{Test: network.TestAlways, Op: network.OpAdd, Operand: 1}))
			return
		}
		var mkPoll func() *isa.Op
		mkPoll = func() *isa.Op {
			poll := isa.NewSync(b.gen, network.SyncSpec{Test: network.TestAlways, Op: network.OpRead})
			poll.OnDone = func(gv int64, ok bool) {
				if gv <= myGen {
					g.EmitFront(isa.NewCompute(b.r.Cfg.SpinBackoff), mkPoll())
				}
			}
			return poll
		}
		g.EmitFront(mkPoll())
	}
	g.Emit(arrive)
}
