package cedarfort_test

import (
	"fmt"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
)

// Example runs a self-scheduled XDOALL over a one-cluster machine: each
// iteration is claimed through a fetch-and-add in global memory and the
// body's arithmetic runs on ordinary Go data.
func Example() {
	cfg := core.ConfigClusters(1)
	cfg.Global.Words = 1 << 12
	m := core.MustNew(cfg)
	rt := cedarfort.New(m, cedarfort.DefaultConfig())

	sum := make([]int, m.NumCEs())
	_, err := rt.XDOALL(100, cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
		op := isa.NewCompute(10)
		ce := ctx.CE.ID
		op.Do = func() { sum[ce] += iter }
		ctx.Emit(op)
	})
	if err != nil {
		panic(err)
	}
	total := 0
	for _, s := range sum {
		total += s
	}
	fmt.Println(total)
	// Output:
	// 4950
}

// ExampleRuntime_SDOALL nests a CDOALL inside an SDOALL: the outer loop
// schedules iterations onto whole clusters, the inner loop spreads over
// the cluster's CEs through the concurrency bus.
func ExampleRuntime_SDOALL() {
	cfg := core.ConfigClusters(2)
	cfg.Global.Words = 1 << 12
	m := core.MustNew(cfg)
	rt := cedarfort.New(m, cedarfort.DefaultConfig())

	count := 0
	_, err := rt.SDOALL(4, true, func(ctx *cedarfort.Ctx, iter int) {
		ctx.CDOALL(8, cedarfort.SelfScheduled, func(ictx *cedarfort.Ctx, j int) {
			op := isa.NewCompute(5)
			op.Do = func() { count++ }
			ictx.Emit(op)
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(count)
	// Output:
	// 32
}
