package cedarfort

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

func testMachine(clusters int) *core.Machine {
	cfg := core.ConfigClusters(clusters)
	cfg.Global.Words = 1 << 16
	return core.MustNew(cfg)
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.XDOALLStartup != sim.FromMicroseconds(90) {
		t.Fatalf("XDOALL startup = %d cycles, want 90 us", c.XDOALLStartup)
	}
	if c.IterFetchSlow != sim.FromMicroseconds(30) {
		t.Fatalf("slow iteration fetch = %d cycles, want 30 us", c.IterFetchSlow)
	}
	if !c.UseCedarSync {
		t.Fatal("default must use Cedar synchronization")
	}
}

func TestXDOALLSelfScheduledCoverage(t *testing.T) {
	m := testMachine(2)
	r := New(m, DefaultConfig())
	const n = 200
	seen := make([]int, n)
	byCE := map[int]int{}
	elapsed, err := r.XDOALL(n, SelfScheduled, func(ctx *Ctx, iter int) {
		op := isa.NewCompute(50)
		op.Do = func() { seen[iter]++; byCE[ctx.CE.ID]++ }
		ctx.Emit(op)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
	if len(byCE) < 8 {
		t.Fatalf("only %d CEs participated, want most of 16", len(byCE))
	}
	if elapsed <= r.Cfg.XDOALLStartup {
		t.Fatalf("elapsed %d cycles does not include the 90 us startup (%d)", elapsed, r.Cfg.XDOALLStartup)
	}
}

func TestXDOALLStaticCoverage(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	const n = 37
	seen := make([]int, n)
	ceOf := make([]int, n)
	_, err := r.XDOALL(n, Static, func(ctx *Ctx, iter int) {
		op := isa.NewCompute(10)
		op.Do = func() { seen[iter]++; ceOf[iter] = ctx.CE.ID }
		ctx.Emit(op)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i] != 1 {
			t.Fatalf("iteration %d ran %d times", i, seen[i])
		}
		if ceOf[i] != i%8 {
			t.Fatalf("static iteration %d ran on CE %d, want %d", i, ceOf[i], i%8)
		}
	}
}

// TestXDOALLSyncCostDifference: without Cedar synchronization each
// iteration fetch costs ~30 us instead of ~4 us, so a fine-grained loop
// slows down — the mechanism behind Table 3's "W/o Cedar Sync" column.
func TestXDOALLSyncCostDifference(t *testing.T) {
	run := func(useSync bool) sim.Cycle {
		m := testMachine(1)
		cfg := DefaultConfig()
		cfg.UseCedarSync = useSync
		r := New(m, cfg)
		elapsed, err := r.XDOALL(64, SelfScheduled, func(ctx *Ctx, iter int) {
			ctx.Emit(isa.NewCompute(100)) // small-granularity iteration
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	fast, slow := run(true), run(false)
	if slow <= fast {
		t.Fatalf("no-sync run (%d) not slower than Cedar-sync run (%d)", slow, fast)
	}
	ratio := float64(slow) / float64(fast)
	if ratio < 1.5 {
		t.Fatalf("sync cost ratio = %.2f, expected a pronounced slowdown on fine grain", ratio)
	}
}

// TestXDOALLScalesWithCEs: a coarse-grain loop speeds up with more
// clusters.
func TestXDOALLScalesWithCEs(t *testing.T) {
	run := func(clusters int) sim.Cycle {
		m := testMachine(clusters)
		r := New(m, DefaultConfig())
		elapsed, err := r.XDOALL(128, SelfScheduled, func(ctx *Ctx, iter int) {
			ctx.Emit(isa.NewCompute(5000))
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	one, four := run(1), run(4)
	speedup := float64(one) / float64(four)
	if speedup < 2.5 {
		t.Fatalf("4-cluster speedup = %.2f on a coarse loop, want > 2.5", speedup)
	}
}

func TestSerialAdvancesTime(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	t0 := m.Eng.Now()
	r.Serial(1234)
	if m.Eng.Now()-t0 != 1234 {
		t.Fatalf("Serial advanced %d cycles, want 1234", m.Eng.Now()-t0)
	}
}

func TestSDOALLAffinity(t *testing.T) {
	m := testMachine(2)
	r := New(m, DefaultConfig())
	const n = 10
	clusterOf := make([]int, n)
	_, err := r.SDOALL(n, true, func(ctx *Ctx, iter int) {
		op := isa.NewCompute(10)
		op.Do = func() { clusterOf[iter] = ctx.Cluster.ID }
		ctx.Emit(op)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clusterOf {
		if clusterOf[i] != i%2 {
			t.Fatalf("iteration %d on cluster %d, want %d (affinity)", i, clusterOf[i], i%2)
		}
	}
}

func TestSDOALLSelfScheduledCoverage(t *testing.T) {
	m := testMachine(2)
	r := New(m, DefaultConfig())
	const n = 12
	seen := make([]int, n)
	_, err := r.SDOALL(n, false, func(ctx *Ctx, iter int) {
		op := isa.NewCompute(10)
		op.Do = func() { seen[iter]++ }
		ctx.Emit(op)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

// TestSDOALLWithCDOALL exercises the paper's SDOALL/CDOALL nest: each
// SDOALL iteration spreads an inner loop across its cluster's 8 CEs via
// the concurrency bus.
func TestSDOALLWithCDOALL(t *testing.T) {
	m := testMachine(2)
	r := New(m, DefaultConfig())
	const outer, inner = 6, 32
	var counts [outer][inner]int
	_, err := r.SDOALL(outer, true, func(ctx *Ctx, iter int) {
		ctx.Emit(isa.NewCompute(20)) // leader-side work
		ctx.CDOALL(inner, SelfScheduled, func(ictx *Ctx, j int) {
			op := isa.NewCompute(15)
			op.Do = func() { counts[iter][j]++ }
			ictx.Emit(op)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < outer; i++ {
		for j := 0; j < inner; j++ {
			if counts[i][j] != 1 {
				t.Fatalf("outer %d inner %d ran %d times", i, j, counts[i][j])
			}
		}
	}
}

// TestSDOALLChainedCDOALLs: two CDOALLs in one body run in sequence.
func TestSDOALLChainedCDOALLs(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	var order []string
	_, err := r.SDOALL(1, true, func(ctx *Ctx, iter int) {
		ctx.CDOALL(8, Static, func(ictx *Ctx, j int) {
			op := isa.NewCompute(10)
			op.Do = func() { order = append(order, "a") }
			ictx.Emit(op)
		})
		ctx.CDOALL(8, Static, func(ictx *Ctx, j int) {
			op := isa.NewCompute(10)
			op.Do = func() { order = append(order, "b") }
			ictx.Emit(op)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 16 {
		t.Fatalf("%d inner iterations ran, want 16", len(order))
	}
	for i, s := range order {
		want := "a"
		if i >= 8 {
			want = "b"
		}
		if s != want {
			t.Fatalf("phase order violated at %d: %v", i, order)
		}
	}
}

// TestCDOALLFasterThanXDOALL: the concurrency bus makes an intra-cluster
// loop much cheaper to start than a machine-wide loop — the paper's
// reason for the SDOALL/CDOALL design.
func TestCDOALLStartupAdvantage(t *testing.T) {
	body := func(ctx *Ctx, iter int) { ctx.Emit(isa.NewCompute(50)) }

	m1 := testMachine(1)
	r1 := New(m1, DefaultConfig())
	xdoall, err := r1.XDOALL(8, SelfScheduled, body)
	if err != nil {
		t.Fatal(err)
	}

	m2 := testMachine(1)
	r2 := New(m2, DefaultConfig())
	// A single SDOALL iteration whose body is one CDOALL: the inner loop
	// cost is dominated by the bus spread, but the SDOALL wrapper still
	// pays its own startup; compare only the inner portion by
	// subtracting the startup constant.
	sdoall, err := r2.SDOALL(1, true, func(ctx *Ctx, iter int) {
		ctx.CDOALL(8, SelfScheduled, body)
	})
	if err != nil {
		t.Fatal(err)
	}
	inner := sdoall - r2.Cfg.SDOALLStartup
	if inner >= xdoall {
		t.Fatalf("CDOALL path (%d cycles after startup) not cheaper than XDOALL (%d)", inner, xdoall)
	}
}

func TestBarrierReleasesAllParticipants(t *testing.T) {
	m := testMachine(2)
	r := New(m, DefaultConfig())
	const p = 16
	b := r.NewBarrier(p)
	after := make([]sim.Cycle, p)
	before := make([]sim.Cycle, p)
	for id := 0; id < p; id++ {
		g := isa.NewGen(func(g *isa.Gen) bool { return false })
		pre := isa.NewCompute(sim.Cycle(10 * (id + 1))) // staggered arrivals
		pre.Do = func() { before[id] = m.Eng.Now() }
		g.Emit(pre)
		b.Emit(g)
		post := isa.NewCompute(1)
		post.Do = func() { after[id] = m.Eng.Now() }
		g.Emit(post)
		m.Dispatch(id, g)
	}
	if _, err := m.RunUntilIdle(1_000_000); err != nil {
		t.Fatal(err)
	}
	var lastArrive sim.Cycle
	for _, c := range before {
		if c > lastArrive {
			lastArrive = c
		}
	}
	for id, c := range after {
		if c <= lastArrive {
			t.Fatalf("participant %d passed the barrier at %d before last arrival %d", id, c, lastArrive)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	const p = 8
	b := r.NewBarrier(p)
	phase := make([]int, p)
	bad := false
	for id := 0; id < p; id++ {
		g := isa.NewGen(func(g *isa.Gen) bool { return false })
		for ep := 0; ep < 3; ep++ {
			work := isa.NewCompute(sim.Cycle(5 + id))
			epoch := ep
			work.Do = func() {
				if phase[id] != epoch {
					bad = true
				}
				phase[id]++
			}
			g.Emit(work)
			b.Emit(g)
		}
		m.Dispatch(id, g)
	}
	if _, err := m.RunUntilIdle(1_000_000); err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("a participant entered an epoch before the barrier released the previous one")
	}
	for id, ph := range phase {
		if ph != 3 {
			t.Fatalf("participant %d completed %d epochs, want 3", id, ph)
		}
	}
}

func TestXDOALLOnBusyMachinePanics(t *testing.T) {
	m := testMachine(1)
	r := New(m, DefaultConfig())
	m.Dispatch(0, isa.NewSeq(isa.NewCompute(1000)))
	defer func() {
		if recover() == nil {
			t.Fatal("XDOALL on a busy machine did not panic")
		}
	}()
	_, _ = r.XDOALL(4, Static, func(ctx *Ctx, iter int) {})
}

// TestBarrierRandomizedNeverDeadlocks: random per-participant work
// before each of several barrier episodes; the barrier must release
// everyone every time, never deadlock, and never let a participant run
// ahead an epoch.
func TestBarrierRandomizedNeverDeadlocks(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		m := testMachine(2)
		r := New(m, DefaultConfig())
		rng := sim.NewRand(seed)
		const p = 16
		const epochs = 5
		b := r.NewBarrier(p)
		phase := make([]int, p)
		minPhase := func() int {
			mn := phase[0]
			for _, v := range phase {
				if v < mn {
					mn = v
				}
			}
			return mn
		}
		violated := false
		for id := 0; id < p; id++ {
			g := isa.NewGen(func(g *isa.Gen) bool { return false })
			for ep := 0; ep < epochs; ep++ {
				work := isa.NewCompute(sim.Cycle(1 + rng.Intn(400)))
				work.Do = func() {
					// No participant may start epoch k+1 work before
					// every participant finished epoch k.
					if phase[id] > minPhase() {
						violated = true
					}
					phase[id]++
				}
				g.Emit(work)
				b.Emit(g)
			}
			m.Dispatch(id, g)
		}
		if _, err := m.RunUntilIdle(10_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violated {
			t.Fatalf("seed %d: a participant ran ahead of the barrier", seed)
		}
		for id, ph := range phase {
			if ph != epochs {
				t.Fatalf("seed %d: participant %d completed %d of %d epochs", seed, id, ph, epochs)
			}
		}
	}
}
