package cedarfort

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

// TestXDOALLDeterministicAcrossEnginePaths runs the same self-scheduled
// loop nest on every engine path and asserts the outcomes are
// bit-identical. The XDOALL path is the fast paths' stress case: the
// 90 us dispatch startup leaves the whole machine quiet for ~530 cycles,
// which the engine should cross in one jump — and between loops every CE
// goes dormant, which the wake-cached path must survive because the
// dispatch entry points wake them.
func TestXDOALLDeterministicAcrossEnginePaths(t *testing.T) {
	run := func(mode sim.EngineMode) (elapsed [3]int64, m *core.Machine) {
		cfg := core.ConfigClusters(2)
		cfg.Global.Words = 1 << 16
		cfg.EngineMode = mode
		m = core.MustNew(cfg)
		r := New(m, DefaultConfig())
		for l := 0; l < 3; l++ {
			c, err := r.XDOALL(100, SelfScheduled, func(ctx *Ctx, iter int) {
				ctx.Emit(isa.NewCompute(50))
			})
			if err != nil {
				t.Fatal(err)
			}
			elapsed[l] = int64(c)
		}
		return elapsed, m
	}
	en, mn := run(sim.ModeNaive)
	for _, mode := range []sim.EngineMode{sim.ModeWakeCached, sim.ModeQuiescent} {
		ef, mf := run(mode)
		if ef != en {
			t.Fatalf("per-loop elapsed cycles diverged: %v %v, naive %v", mode, ef, en)
		}
		if mf.Eng.Now() != mn.Eng.Now() {
			t.Fatalf("%v final time diverged: %d vs %d", mode, mf.Eng.Now(), mn.Eng.Now())
		}
		for i := range mf.CEs() {
			cf, cn := mf.CE(i), mn.CE(i)
			if cf.OpsDone != cn.OpsDone || cf.IdleCycles != cn.IdleCycles || cf.StallNet != cn.StallNet {
				t.Fatalf("%v ce%d counters diverged: ops %d/%d idle %d/%d stallnet %d/%d",
					mode, i, cf.OpsDone, cn.OpsDone, cf.IdleCycles, cn.IdleCycles, cf.StallNet, cn.StallNet)
			}
		}
		if mf.Eng.FastForwarded == 0 {
			t.Fatalf("%v: XDOALL startup spans were not fast-forwarded", mode)
		}
		if mode == sim.ModeWakeCached && mf.Eng.DormantSkips == 0 {
			t.Fatal("wake-cached path never skipped a dormant component across XDOALL dispatches")
		}
	}
	if mn.Eng.FastForwarded != 0 || mn.Eng.SkippedTicks != 0 {
		t.Fatal("naive engine took the fast path")
	}
}

// TestBarrierDeterministicAcrossEnginePaths covers the sync-heavy shape:
// participants spin on global memory at staggered arrival times.
func TestBarrierDeterministicAcrossEnginePaths(t *testing.T) {
	run := func(mode sim.EngineMode) (int64, int64) {
		cfg := core.ConfigClusters(1)
		cfg.Global.Words = 1 << 16
		cfg.EngineMode = mode
		m := core.MustNew(cfg)
		r := New(m, DefaultConfig())
		n := m.NumCEs()
		b := r.NewBarrier(n)
		for id := 0; id < n; id++ {
			g := isa.NewGen(func(g *isa.Gen) bool { return false })
			g.Emit(isa.NewCompute(sim.Cycle(10 * (id + 1)))) // staggered arrivals
			b.Emit(g)
			g.Emit(isa.NewCompute(1))
			m.Dispatch(id, g)
		}
		end, err := m.RunUntilIdle(200000)
		if err != nil {
			t.Fatal(err)
		}
		var sync int64
		for i := 0; i < m.Global.Modules(); i++ {
			sync += m.Global.Module(i).SyncOps
		}
		return int64(end), sync
	}
	en, sn := run(sim.ModeNaive)
	for _, mode := range []sim.EngineMode{sim.ModeWakeCached, sim.ModeQuiescent} {
		ef, sf := run(mode)
		if ef != en || sf != sn {
			t.Fatalf("barrier diverged on %v vs naive: end %d/%d syncops %d/%d", mode, ef, en, sf, sn)
		}
	}
}
