package kernels

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/perfmon"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Rank64Input holds the operands of a rank-64 update C += A * B with
// A (n x 64) and B (64 x n), all logically resident in global memory.
type Rank64Input struct {
	N int
	// A is stored strip-major: for row strip s and inner column k,
	// A[s*64*32 + k*32 + r] is element (s*32+r, k). This is the layout
	// the hand-coded RK kernel uses so that eight consecutive inner
	// columns of one strip form a contiguous 256-word prefetch block.
	A []float64
	// B is stored row-major: B[k*n + j].
	B []float64
	// C is stored column-major: C[j*n + i].
	C []float64
}

// NewRank64Input builds deterministic operands for an n x n update.
// n must be a multiple of the 32-word strip length.
func NewRank64Input(n int) *Rank64Input {
	if n%StripLen != 0 {
		panic(fmt.Sprintf("kernels: rank-64 size %d not a multiple of %d", n, StripLen))
	}
	in := &Rank64Input{
		N: n,
		A: make([]float64, n*64),
		B: make([]float64, 64*n),
		C: make([]float64, n*n),
	}
	r := sim.NewRand(1)
	for i := range in.A {
		in.A[i] = 1 + r.Float64()
	}
	for i := range in.B {
		in.B[i] = 1 - r.Float64()/2
	}
	return in
}

// ReferenceRank64 computes the update serially for verification.
func ReferenceRank64(in *Rank64Input) []float64 {
	n := in.N
	out := make([]float64, len(in.C))
	copy(out, in.C)
	for j := 0; j < n; j++ {
		for s := 0; s < n/StripLen; s++ {
			for r := 0; r < StripLen; r++ {
				i := s*StripLen + r
				sum := 0.0
				for k := 0; k < 64; k++ {
					sum += in.A[s*64*StripLen+k*StripLen+r] * in.B[k*n+j]
				}
				out[j*n+i] += sum
			}
		}
	}
	return out
}

// Rank64 runs the rank-64 update on m in the given memory mode and
// returns the performance result; in.C is updated in place with the real
// product. Columns of C are partitioned statically over all CEs; each CE
// iterates over the row strips of its columns, processing the 64 inner
// columns of A as register-memory vector operations with two chained
// flops per element ("all versions chain two operations per memory
// request"). In GMCache mode each CE first transfers the strip's A block
// into a cached cluster work array.
//
// Params.Probe, when true, attaches the paper's performance monitor to
// CE 0's prefetch unit (monitoring all requests of a single processor,
// as the paper does); Params.Mode selects the Table 1 variant.
func RunRank64(m *core.Machine, in *Rank64Input, p workload.Params) (Result, error) {
	mode, probe := p.Mode, p.Probe
	n := in.N
	nces := m.NumCEs()
	if n < nces {
		return Result{}, fmt.Errorf("kernels: rank-64 n=%d smaller than %d CEs", n, nces)
	}
	strips := n / StripLen

	// Global address layout (timing view).
	m.AllocGlobalReset()
	aBase := m.AllocGlobal(uint64(n * 64))
	bBase := m.AllocGlobal(uint64(64 * n))
	cBase := m.AllocGlobal(uint64(n * n))

	var pr *perfmon.PrefetchProbe
	if probe && mode != GMNoPrefetch {
		pr = perfmon.AttachPrefetch(m.CE(0).PFU())
	}

	// In GM/cache mode the clusters share one cached work array per
	// cluster for the A strip block; the CEs of a cluster move it
	// cooperatively, one slice each.
	cesPerCluster := m.Config().Cluster.CEs
	clusterWork := make([]uint64, len(m.Clusters))
	if mode == GMCache {
		for ci, cl := range m.Clusters {
			clusterWork[ci] = cl.Alloc(64 * StripLen)
		}
	}
	for id := 0; id < nces; id++ {
		ce := m.CE(id)
		ci := id / cesPerCluster
		cl := m.Clusters[ci]
		// Balanced column partition; remainders spread over the first CEs.
		j0 := id * n / nces
		j1 := (id + 1) * n / nces
		var bWorkBase uint64
		slice := 64 * StripLen / cesPerCluster
		moveLo := (id % cesPerCluster) * slice
		if mode == GMCache {
			bWorkBase = cl.Alloc(uint64(64 * (j1 - j0)))
		}
		prog := buildRank64Program(in, mode, aBase, bBase, cBase, clusterWork[ci], bWorkBase,
			j0, j1-j0, strips, moveLo, moveLo+slice)
		ce.SetProgram(prog)
	}

	start := m.Eng.Now()
	end, err := m.RunUntilIdle(sim.Cycle(int64(n) * int64(n) * 2000 / int64(nces)))
	if err != nil {
		return Result{}, err
	}
	check := 0.0
	for _, v := range in.C {
		check += v
	}
	res := finish("RK "+mode.String(), m, start, end, check, pr)
	for _, cl := range m.Clusters {
		cl.AllocReset()
	}
	return res, nil
}

// buildRank64Program emits one CE's work.
//
// In the GM modes the column loop is outermost so the B column (64 words
// at stride n) is fetched once per column and held in registers across
// the row strips; per strip the code fetches C's strip and runs 64
// register-memory vector operations with 2 chained flops per element
// over A's column strips.
//
// In the GM/cache mode the strip loop is outermost: A's 64x32-word strip
// block is transferred into the cluster's shared cached work array
// cooperatively — each CE of the cluster moves the [moveLo, moveHi) word
// slice — as is the CE's slice of B, once at program start; the inner
// vector accesses all hit the cache, and only C's strips still move
// through the networks. The cluster's CEs advance through the same strip
// sequence at the same pace, so no explicit barrier is modeled around
// the cooperative move.
func buildRank64Program(in *Rank64Input, mode Mode, aBase, bBase, cBase, workBase, bWorkBase uint64, j0, cols, strips, moveLo, moveHi int) isa.Program {
	n := in.N
	emitCStrip := func(g *isa.Gen, strip, col int) {
		cStrip := cBase + uint64(col*n+strip*StripLen)
		switch mode {
		case GMNoPrefetch:
			g.Emit(isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: cStrip}, StripLen, 1, 0, false))
		default:
			g.Emit(
				isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: cStrip}, StripLen, 1),
				isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: cStrip}, StripLen, 1, 0, true),
			)
		}
	}
	emitCStore := func(g *isa.Gen, strip, col int) {
		cStrip := cBase + uint64(col*n+strip*StripLen)
		st := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: cStrip}, StripLen, 1, 0)
		st.Do = func() {
			for r := 0; r < StripLen; r++ {
				i := strip*StripLen + r
				sum := 0.0
				for k := 0; k < 64; k++ {
					sum += in.A[strip*64*StripLen+k*StripLen+r] * in.B[k*n+col]
				}
				in.C[col*n+i] += sum
			}
		}
		g.Emit(st)
	}
	aStrip := func(strip, k int) uint64 { return aBase + uint64(strip*64*StripLen+k*StripLen) }

	if mode == GMCache {
		s := -1
		j := j0 - 1
		stagedB := false
		return isa.NewGen(func(g *isa.Gen) bool {
			if !stagedB {
				stagedB = true
				// Stage this CE's B columns into the cluster work array,
				// once: 64 words per owned column, stride n from global.
				for c := 0; c < cols; c++ {
					bCol := bBase + uint64(j0+c)
					g.Emit(
						isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: bCol}, 64, n),
						isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: bCol}, 64, n, 0, true),
						isa.NewVectorStore(isa.Addr{Space: isa.Cluster, Word: bWorkBase + uint64(c*64)}, 64, 1, 0),
					)
				}
				return true
			}
			if s < 0 || j+1 >= j0+cols {
				s++
				if s >= strips {
					return false
				}
				j = j0
				// Transfer this CE's slice of the A strip block into the
				// cluster's shared work array: prefetched global loads,
				// stored to cluster space (write-allocating the cache).
				blk := aBase + uint64(s*64*StripLen)
				for q := moveLo; q < moveHi; q += 512 {
					chunk := moveHi - q
					if chunk > 512 {
						chunk = 512
					}
					g.Emit(
						isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: blk + uint64(q)}, chunk, 1),
						isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: blk + uint64(q)}, chunk, 1, 0, true),
						isa.NewVectorStore(isa.Addr{Space: isa.Cluster, Word: workBase + uint64(q)}, chunk, 1, 0),
					)
				}
			} else {
				j++
			}
			strip, col := s, j
			// B values from the cluster work array.
			g.Emit(isa.NewVectorLoad(isa.Addr{Space: isa.Cluster, Word: bWorkBase + uint64((col-j0)*64)}, 64, 1, 0, false))
			emitCStrip(g, strip, col)
			for k := 0; k < 64; k++ {
				w := workBase + uint64(k*StripLen)
				g.Emit(isa.NewVectorLoad(isa.Addr{Space: isa.Cluster, Word: w}, StripLen, 1, 2, false))
			}
			emitCStore(g, strip, col)
			return true
		})
	}

	// GM modes: columns outermost.
	j := j0
	s := 0
	needB := true
	return isa.NewGen(func(g *isa.Gen) bool {
		if j >= j0+cols {
			return false
		}
		if needB {
			needB = false
			// B column once per column, held in registers across strips.
			bCol := bBase + uint64(j)
			if mode == GMNoPrefetch {
				g.Emit(isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: bCol}, 64, n, 0, false))
			} else {
				g.Emit(
					isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: bCol}, 64, n),
					isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: bCol}, 64, n, 0, true),
				)
			}
		}
		strip, col := s, j
		emitCStrip(g, strip, col)
		if mode == GMNoPrefetch {
			for k := 0; k < 64; k++ {
				g.Emit(isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: aStrip(strip, k)}, StripLen, 1, 2, false))
			}
		} else {
			// 256-word prefetch blocks: 8 column strips of A at a time,
			// aggressively overlapped with the consuming vector ops.
			for k := 0; k < 64; k += 8 {
				g.Emit(isa.NewPrefetch(isa.Addr{Space: isa.Global, Word: aStrip(strip, k)}, 8*StripLen, 1))
				for q := 0; q < 8; q++ {
					g.Emit(isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: aStrip(strip, k+q)}, StripLen, 1, 2, true))
				}
			}
		}
		emitCStore(g, strip, col)
		s++
		if s >= strips {
			s = 0
			j++
			needB = true
		}
		return true
	})
}
