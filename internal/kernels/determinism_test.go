package kernels

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
)

// The quiescence-aware engine's contract is bit-identical results: every
// kernel must produce exactly the same cycle counts, numerics and
// hardware counters whether the engine ticks every component every cycle
// (NaiveEngine) or skips idle components and fast-forwards quiet spans.
// These tests run each kernel both ways and diff a full stats
// fingerprint of the machine.

func enginePair(clusters int) (fast, naive *core.Machine) {
	mk := func(naiveEngine bool) *core.Machine {
		cfg := core.ConfigClusters(clusters)
		cfg.Global.Words = 1 << 20
		cfg.NaiveEngine = naiveEngine
		return core.MustNew(cfg)
	}
	return mk(false), mk(true)
}

// fingerprint serializes every architected counter in the machine, so
// any divergence between engine paths shows up as a readable diff.
func fingerprint(m *core.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d flops=%d\n", m.Eng.Now(), m.TotalFlops())
	for _, c := range m.CEs() {
		fmt.Fprintf(&b, "ce%d ops=%d flops=%d stallmem=%d stallnet=%d idle=%d fin=%d\n",
			c.ID, c.OpsDone, c.Flops, c.StallMem, c.StallNet, c.IdleCycles, c.FinishedAt)
		u := c.PFU()
		fmt.Fprintf(&b, "pfu%d pf=%d issued=%d cross=%d stall=%d\n",
			c.ID, u.Prefetches, u.Issued, u.PageCrossings, u.StallCycles)
	}
	fmt.Fprintf(&b, "fwd inj=%d del=%d words=%d rej=%d\n", m.Fwd.Injected, m.Fwd.Delivered, m.Fwd.WordsIn, m.Fwd.Rejected)
	fmt.Fprintf(&b, "rev inj=%d del=%d words=%d rej=%d\n", m.Rev.Injected, m.Rev.Delivered, m.Rev.WordsIn, m.Rev.Rejected)
	for i := 0; i < m.Global.Modules(); i++ {
		mod := m.Global.Module(i)
		fmt.Fprintf(&b, "mod%d served=%d sync=%d r=%d w=%d busy=%d\n",
			i, mod.Served, mod.SyncOps, mod.Reads, mod.Writes, mod.BusyCycles)
	}
	return b.String()
}

// diffFingerprints reports the first differing lines (the full prints
// are thousands of lines on 4 clusters).
func diffFingerprints(t *testing.T, what, fast, naive string) {
	t.Helper()
	if fast == naive {
		return
	}
	fl, nl := strings.Split(fast, "\n"), strings.Split(naive, "\n")
	for i := 0; i < len(fl) && i < len(nl); i++ {
		if fl[i] != nl[i] {
			t.Fatalf("%s: engine paths diverged at fingerprint line %d:\n  fast:  %s\n  naive: %s", what, i, fl[i], nl[i])
		}
	}
	t.Fatalf("%s: fingerprints differ in length (%d vs %d lines)", what, len(fl), len(nl))
}

func checkResults(t *testing.T, what string, fast, naive Result) {
	t.Helper()
	if fast.Cycles != naive.Cycles {
		t.Fatalf("%s: cycles %d (quiescent) != %d (naive)", what, fast.Cycles, naive.Cycles)
	}
	if fast.Flops != naive.Flops || fast.Check != naive.Check {
		t.Fatalf("%s: flops/check diverged: %d/%g vs %d/%g", what, fast.Flops, fast.Check, naive.Flops, naive.Check)
	}
}

func TestDeterminismVectorLoad(t *testing.T) {
	for _, pf := range []bool{false, true} {
		fast, naive := enginePair(1)
		n := fast.NumCEs() * StripLen * 4
		rf, err := VectorLoad(fast, n, pf, false)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := VectorLoad(naive, n, pf, false)
		if err != nil {
			t.Fatal(err)
		}
		what := fmt.Sprintf("VL prefetch=%v", pf)
		checkResults(t, what, rf, rn)
		diffFingerprints(t, what, fingerprint(fast), fingerprint(naive))
	}
}

func TestDeterminismTriMatVec(t *testing.T) {
	for _, pf := range []bool{false, true} {
		fast, naive := enginePair(2)
		n := fast.NumCEs() * StripLen * 2
		rf, err := TriMatVec(fast, n, pf, false)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := TriMatVec(naive, n, pf, false)
		if err != nil {
			t.Fatal(err)
		}
		what := fmt.Sprintf("TM prefetch=%v", pf)
		checkResults(t, what, rf, rn)
		diffFingerprints(t, what, fingerprint(fast), fingerprint(naive))
	}
}

func TestDeterminismRank64(t *testing.T) {
	for _, mode := range []Mode{GMNoPrefetch, GMPrefetch, GMCache} {
		fast, naive := enginePair(1)
		rf, err := Rank64(fast, NewRank64Input(64), mode, false)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := Rank64(naive, NewRank64Input(64), mode, false)
		if err != nil {
			t.Fatal(err)
		}
		checkResults(t, mode.String(), rf, rn)
		diffFingerprints(t, mode.String(), fingerprint(fast), fingerprint(naive))
	}
}

func TestDeterminismCG(t *testing.T) {
	run := func(m *core.Machine) CGResult {
		t.Helper()
		rt := cedarfort.New(m, cedarfort.DefaultConfig())
		res, err := CG(m, rt, NewCGProblem(m.NumCEs()*StripLen*2, 5), 3, true, false)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast, naive := enginePair(2)
	rf, rn := run(fast), run(naive)
	checkResults(t, "CG", rf.Result, rn.Result)
	if rf.FinalResidual != rn.FinalResidual {
		t.Fatalf("CG residual diverged: %g vs %g", rf.FinalResidual, rn.FinalResidual)
	}
	diffFingerprints(t, "CG", fingerprint(fast), fingerprint(naive))
}

// TestQuiescencePathExercised guards the guard: the equivalence above is
// vacuous if the fast path never actually skips anything on real
// workloads.
func TestQuiescencePathExercised(t *testing.T) {
	fast, _ := enginePair(1)
	if _, err := Rank64(fast, NewRank64Input(64), GMCache, false); err != nil {
		t.Fatal(err)
	}
	if fast.Eng.SkippedTicks == 0 {
		t.Fatal("quiescent engine never skipped an idle component tick")
	}
	if fast.Eng.FastForwarded == 0 {
		t.Fatal("quiescent engine never fast-forwarded a quiet span on a cache-mode kernel")
	}
}
