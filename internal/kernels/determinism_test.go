package kernels

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

// The fast engine paths' contract is bit-identical results: every kernel
// must produce exactly the same cycle counts, numerics and hardware
// counters whether the engine ticks every component every cycle (naive),
// skips idle components and fast-forwards quiet spans (quiescent), or
// additionally caches Never answers behind the wake API (wake-cached,
// the default). These tests run each kernel on all three paths and diff
// a full stats fingerprint of the machine against the naive reference.

// engineModes is every path, naive reference last.
var engineModes = []sim.EngineMode{sim.ModeWakeCachedParallel, sim.ModeWakeCached, sim.ModeQuiescent, sim.ModeNaive}

func machineAt(clusters int, mode sim.EngineMode) *core.Machine {
	cfg := core.ConfigClusters(clusters)
	cfg.Global.Words = 1 << 20
	cfg.EngineMode = mode
	return core.MustNew(cfg)
}

func enginePair(clusters int) (fast, naive *core.Machine) {
	return machineAt(clusters, sim.ModeWakeCached), machineAt(clusters, sim.ModeNaive)
}

// fingerprint serializes every architected counter in the machine, so
// any divergence between engine paths shows up as a readable diff.
func fingerprint(m *core.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d flops=%d\n", m.Eng.Now(), m.TotalFlops())
	for _, c := range m.CEs() {
		fmt.Fprintf(&b, "ce%d ops=%d flops=%d stallmem=%d stallnet=%d idle=%d fin=%d\n",
			c.ID, c.OpsDone, c.Flops, c.StallMem, c.StallNet, c.IdleCycles, c.FinishedAt)
		u := c.PFU()
		fmt.Fprintf(&b, "pfu%d pf=%d issued=%d cross=%d stall=%d\n",
			c.ID, u.Prefetches, u.Issued, u.PageCrossings, u.StallCycles)
		fmt.Fprintf(&b, "ceio%d rq=%d wait=%d words=%d\n",
			c.ID, c.IORequests, c.IOWaitCycles, c.IOWords)
		fmt.Fprintf(&b, "attr%d", c.ID)
		for bk := isa.Bucket(0); bk < isa.NumBuckets; bk++ {
			fmt.Fprintf(&b, " %s=%d", bk, c.Acct.Cycles[bk])
		}
		b.WriteString("\n")
	}
	for i, clu := range m.Clusters {
		ip := clu.IPs
		fmt.Fprintf(&b, "ip%d rq=%d busy=%d moved=%d done=%d wait=%d\n",
			i, ip.Requests, ip.BusyCycles, ip.WordsMoved, ip.Completions, ip.WaitCycles)
	}
	fmt.Fprintf(&b, "iowait parks=%d done=%d wait=%d parked=%d\n",
		m.IOWait.Parks(), m.IOWait.Completions(), m.IOWait.WaitCycles(), m.IOWait.Parked())
	fmt.Fprintf(&b, "fwd inj=%d del=%d words=%d rej=%d\n", m.Fwd.Injected, m.Fwd.Delivered, m.Fwd.WordsIn, m.Fwd.Rejected)
	fmt.Fprintf(&b, "rev inj=%d del=%d words=%d rej=%d\n", m.Rev.Injected, m.Rev.Delivered, m.Rev.WordsIn, m.Rev.Rejected)
	for i := 0; i < m.Global.Modules(); i++ {
		mod := m.Global.Module(i)
		fmt.Fprintf(&b, "mod%d served=%d sync=%d r=%d w=%d busy=%d\n",
			i, mod.Served, mod.SyncOps, mod.Reads, mod.Writes, mod.BusyCycles)
	}
	return b.String()
}

// diffFingerprints reports the first differing lines (the full prints
// are thousands of lines on 4 clusters).
func diffFingerprints(t *testing.T, what, fast, naive string) {
	t.Helper()
	if fast == naive {
		return
	}
	fl, nl := strings.Split(fast, "\n"), strings.Split(naive, "\n")
	for i := 0; i < len(fl) && i < len(nl); i++ {
		if fl[i] != nl[i] {
			t.Fatalf("%s: engine paths diverged at fingerprint line %d:\n  fast:  %s\n  naive: %s", what, i, fl[i], nl[i])
		}
	}
	t.Fatalf("%s: fingerprints differ in length (%d vs %d lines)", what, len(fl), len(nl))
}

func checkResults(t *testing.T, what string, fast, naive Result) {
	t.Helper()
	if fast.Cycles != naive.Cycles {
		t.Fatalf("%s: cycles %d (quiescent) != %d (naive)", what, fast.Cycles, naive.Cycles)
	}
	if fast.Flops != naive.Flops || fast.Check != naive.Check {
		t.Fatalf("%s: flops/check diverged: %d/%g vs %d/%g", what, fast.Flops, fast.Check, naive.Flops, naive.Check)
	}
}

// runAllModes builds one machine per engine path, runs the workload on
// each, and diffs results and fingerprints against the naive reference.
func runAllModes(t *testing.T, what string, clusters int, run func(m *core.Machine) Result) {
	t.Helper()
	var ref Result
	var refPrint string
	for i := len(engineModes) - 1; i >= 0; i-- { // naive first: it is the reference
		mode := engineModes[i]
		m := machineAt(clusters, mode)
		r := run(m)
		if mode == sim.ModeNaive {
			ref, refPrint = r, fingerprint(m)
			continue
		}
		label := fmt.Sprintf("%s [%v]", what, mode)
		checkResults(t, label, r, ref)
		diffFingerprints(t, label, fingerprint(m), refPrint)
	}
}

func TestDeterminismVectorLoad(t *testing.T) {
	for _, pf := range []bool{false, true} {
		runAllModes(t, fmt.Sprintf("VL prefetch=%v", pf), 1, func(m *core.Machine) Result {
			r, err := RunVectorLoad(m, Params{Size: m.NumCEs()*StripLen*4, Prefetch: pf})
			if err != nil {
				t.Fatal(err)
			}
			return r
		})
	}
}

func TestDeterminismTriMatVec(t *testing.T) {
	for _, pf := range []bool{false, true} {
		runAllModes(t, fmt.Sprintf("TM prefetch=%v", pf), 2, func(m *core.Machine) Result {
			r, err := RunTriMatVec(m, Params{Size: m.NumCEs()*StripLen*2, Prefetch: pf})
			if err != nil {
				t.Fatal(err)
			}
			return r
		})
	}
}

func TestDeterminismRank64(t *testing.T) {
	for _, mode := range []Mode{GMNoPrefetch, GMPrefetch, GMCache} {
		runAllModes(t, mode.String(), 1, func(m *core.Machine) Result {
			r, err := RunRank64(m, NewRank64Input(64), Params{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			return r
		})
	}
}

func TestDeterminismCG(t *testing.T) {
	var refResidual float64
	runAllModes(t, "CG", 2, func(m *core.Machine) Result {
		rt := cedarfort.New(m, cedarfort.DefaultConfig())
		res, err := RunCG(m, rt, NewCGProblem(m.NumCEs()*StripLen*2, 5), Params{Iterations: 3, Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.Eng.Mode() == sim.ModeNaive {
			refResidual = res.FinalResidual
		} else if res.FinalResidual != refResidual {
			t.Fatalf("CG residual diverged on %v: %g vs %g", m.Eng.Mode(), res.FinalResidual, refResidual)
		}
		return res.Result
	})
}

// TestQuiescencePathExercised guards the guard: the equivalence above is
// vacuous if the fast paths never actually skip anything on real
// workloads.
func TestQuiescencePathExercised(t *testing.T) {
	fast := machineAt(1, sim.ModeWakeCached)
	if _, err := RunRank64(fast, NewRank64Input(64), Params{Mode: GMCache}); err != nil {
		t.Fatal(err)
	}
	if fast.Eng.SkippedTicks == 0 {
		t.Fatal("fast engine never skipped an idle component tick")
	}
	if fast.Eng.FastForwarded == 0 {
		t.Fatal("fast engine never fast-forwarded a quiet span on a cache-mode kernel")
	}
	if fast.Eng.DormantSkips == 0 {
		t.Fatal("wake-cached engine never skipped a dormant component without a query")
	}
}
