package kernels

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xylem"
)

// ioWordCycles returns the per-word IP service cost of the default file
// system, formatted or raw — the constant the exact-accounting checks
// below are written against (57 and 4 cycles at the paper's rates).
func ioWordCycles(formatted bool) int64 {
	cfg := xylem.DefaultFSConfig()
	c := cfg.TransferPerWord
	if formatted {
		c += cfg.FormatPerWord
	}
	return int64(c)
}

// TestIOBDNAEquivalence runs the BDNA workload on all three engine
// paths and, on each, checks the exact serial-I/O accounting: every
// transfer goes through cluster 0's IP (the machine leader's), the
// other IPs stay silent, and the busy time is precisely volume x rate.
func TestIOBDNAEquivalence(t *testing.T) {
	const steps = 3
	runAllModes(t, "BDNA", 2, func(m *core.Machine) Result {
		n := m.NumCEs() * StripLen * 2
		r, err := RunBDNA(m, workload.Params{Size: n, Iterations: steps, Prefetch: true}, workload.Attachments{})
		if err != nil {
			t.Fatal(err)
		}
		ip0 := m.Clusters[0].IPs
		if ip0.Requests != steps || ip0.WordsMoved != int64(steps*n) {
			t.Fatalf("leader IP served %d requests / %d words, want %d / %d",
				ip0.Requests, ip0.WordsMoved, steps, steps*n)
		}
		if want := int64(steps*n) * ioWordCycles(true); ip0.BusyCycles != want {
			t.Fatalf("leader IP busy %d cycles, want exactly %d", ip0.BusyCycles, want)
		}
		for i, clu := range m.Clusters[1:] {
			if clu.IPs.Requests != 0 {
				t.Fatalf("cluster %d IP served %d requests; BDNA I/O must serialize through the leader's",
					i+1, clu.IPs.Requests)
			}
		}
		// Compute and I/O alternate (the write ends each step), so the
		// wall clock splits exactly and the compute:I/O ratio must land
		// near the profile-derived target.
		spec, err := bdnaSpec()
		if err != nil {
			t.Fatal(err)
		}
		ioWall := float64(steps*n) * float64(ioWordCycles(true))
		measured := (float64(r.Cycles) - ioWall) / ioWall
		if measured < spec.ratio*0.8 || measured > spec.ratio*1.35 {
			t.Fatalf("BDNA compute/I-O ratio %.2f, want near profile target %.2f", measured, spec.ratio)
		}
		return r
	})
}

// TestIOMG3DEquivalence runs the MG3D workload on all three engine
// paths and checks the parallel-I/O accounting: every cluster's IP
// reads exactly its partition, raw, once per step.
func TestIOMG3DEquivalence(t *testing.T) {
	const steps = 3
	runAllModes(t, "MG3D", 2, func(m *core.Machine) Result {
		n := m.NumCEs() * StripLen * 2
		r, err := RunMG3D(m, workload.Params{Size: n, Iterations: steps}, workload.Attachments{})
		if err != nil {
			t.Fatal(err)
		}
		part := int64(n / len(m.Clusters))
		for i, clu := range m.Clusters {
			ip := clu.IPs
			if ip.Requests != steps || ip.WordsMoved != steps*part {
				t.Fatalf("cluster %d IP served %d requests / %d words, want %d / %d",
					i, ip.Requests, ip.WordsMoved, steps, steps*part)
			}
			if want := steps * part * ioWordCycles(false); ip.BusyCycles != want {
				t.Fatalf("cluster %d IP busy %d cycles, want exactly %d", i, ip.BusyCycles, want)
			}
		}
		return r
	})
}

// TestIOFaultEquivalence is satellite coverage for the IP fault hooks:
// with only IP faults enabled, the fault schedule must actually hit the
// IPs, and the run must still be bit-identical across all three engine
// paths — injected busy windows and delayed completions may slow the
// machine, never fork it.
func TestIOFaultEquivalence(t *testing.T) {
	ipFaultConfig := func() fault.Config {
		cfg := fault.DefaultConfig(0xB10C5ED)
		cfg.MeanInterval = 2000
		cfg.EnableNetStall = false
		cfg.EnableNetDrop = false
		cfg.EnableMemBusy = false
		cfg.EnableMemDegrade = false
		cfg.EnableCheckStop = false
		return cfg
	}
	for _, name := range []string{"bdna", "mg3d"} {
		var ref Result
		var refPrint string
		for i := len(engineModes) - 1; i >= 0; i-- {
			mode := engineModes[i]
			cfg := core.ConfigClusters(2)
			cfg.Global.Words = 1 << 20
			cfg.EngineMode = mode
			cfg.Fault = ipFaultConfig()
			m := core.MustNew(cfg)
			r, err := workload.Run(name, m, workload.Params{Iterations: 2}, workload.Attachments{})
			if err != nil {
				t.Fatal(err)
			}
			var hits int64
			for _, clu := range m.Clusters {
				hits += clu.IPs.FaultBusies + clu.IPs.FaultDelays
			}
			if hits == 0 {
				t.Fatalf("%s [%v]: IP-only fault schedule never hit an IP", name, mode)
			}
			if m.FaultInj.IPBusies+m.FaultInj.IPDelays != hits {
				t.Fatalf("%s [%v]: injector counted %d IP faults, IPs saw %d",
					name, mode, m.FaultInj.IPBusies+m.FaultInj.IPDelays, hits)
			}
			if mode == sim.ModeNaive {
				ref, refPrint = r, fingerprint(m)
				continue
			}
			label := fmt.Sprintf("%s under IP faults [%v]", name, mode)
			checkResults(t, label, r, ref)
			diffFingerprints(t, label, fingerprint(m), refPrint)
		}
	}
}

// TestIODeadlineDiagnostic is the satellite regression: a program
// blocked on an outstanding transfer must never deadlock the wake-cached
// engine, and if a run's deadline expires mid-transfer, the error must
// name the parked program instead of timing out silently.
func TestIODeadlineDiagnostic(t *testing.T) {
	cfg := core.ConfigClusters(1)
	cfg.Global.Words = 1 << 20
	m := core.MustNew(cfg) // default mode: wake-cached
	const words = 50_000
	const label = "checkpoint-writer phase 3"
	op := isa.NewIORequest(words, true)
	op.IOLabel = label
	m.Dispatch(0, isa.NewSeq(isa.NewCompute(2), op, isa.NewCompute(3)))

	_, err := m.RunUntilIdle(1000)
	if !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("expected ErrDeadline mid-transfer, got %v", err)
	}
	if !strings.Contains(err.Error(), label) {
		t.Fatalf("deadline error does not name the parked program %q:\n%v", label, err)
	}
	if m.IOWait.Parked() != 1 {
		t.Fatalf("Parked() = %d mid-transfer, want 1", m.IOWait.Parked())
	}

	// Let the transfer finish: the parked program must redispatch, run
	// its trailing compute, and the wait must be attributed exactly.
	if _, err := m.RunUntilIdle(5_000_000); err != nil {
		t.Fatalf("program never redispatched after completion: %v", err)
	}
	c := m.CE(0)
	if c.IORequests != 1 || c.IOWords != words {
		t.Fatalf("CE I/O counters %d requests / %d words, want 1 / %d", c.IORequests, c.IOWords, words)
	}
	if want := int64(words) * ioWordCycles(true); c.IOWaitCycles != want {
		t.Fatalf("CE waited %d cycles, want exactly %d", c.IOWaitCycles, want)
	}
	if m.IOWait.Parked() != 0 || m.IOWait.Completions() != 1 {
		t.Fatalf("park table left: %d parked, %d completions", m.IOWait.Parked(), m.IOWait.Completions())
	}
}

// TestIORegistryNames checks the unified registry carries every kernel,
// and that the I/O kernels run through it by name like any other.
func TestIORegistryNames(t *testing.T) {
	for _, want := range []string{"bdna", "cg", "mg3d", "rk", "tm", "vl"} {
		if workload.Get(want) == nil {
			t.Fatalf("workload %q not registered (have %v)", want, workload.Names())
		}
		if workload.Describe(want) == "" {
			t.Fatalf("workload %q has no description", want)
		}
	}
	m := machineAt(1, sim.ModeWakeCached)
	r, err := workload.Run("bdna", m, workload.Params{Iterations: 1}, workload.Attachments{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Check == 0 || len(r.Notes) == 0 {
		t.Fatalf("registry run returned an empty result: %+v", r)
	}
	if _, err := workload.Run("no-such-kernel", m, workload.Params{}, workload.Attachments{}); err == nil ||
		!strings.Contains(err.Error(), "bdna") {
		t.Fatalf("unknown-name error should list the registry, got: %v", err)
	}
}
