package kernels

import (
	"fmt"
	"math"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/perfmon"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CGProblem is a symmetric positive-definite 5-diagonal system A x = rhs,
// the matrix shape of the paper's Section 4.3 scalability study. The
// diagonals sit at offsets {-w, -1, 0, +1, +w}, with constant
// coefficients (main diagonal 4, off-diagonals -0.5), so the matrix is
// strictly diagonally dominant and symmetric.
type CGProblem struct {
	N   int
	W   int // outer-diagonal offset
	RHS []float64
}

// NewCGProblem builds a deterministic problem of size n with outer
// diagonal offset w.
func NewCGProblem(n, w int) *CGProblem {
	if w < 2 || w >= n {
		panic(fmt.Sprintf("kernels: CG offset %d out of range for n=%d", w, n))
	}
	p := &CGProblem{N: n, W: w, RHS: make([]float64, n)}
	r := sim.NewRand(4)
	for i := range p.RHS {
		p.RHS[i] = r.Float64()
	}
	return p
}

const (
	cgDiag = 4.0
	cgOff  = -0.5
)

// Apply computes y = A x serially.
func (p *CGProblem) Apply(x, y []float64) {
	n, w := p.N, p.W
	for i := 0; i < n; i++ {
		v := cgDiag * x[i]
		if i >= 1 {
			v += cgOff * x[i-1]
		}
		if i+1 < n {
			v += cgOff * x[i+1]
		}
		if i >= w {
			v += cgOff * x[i-w]
		}
		if i+w < n {
			v += cgOff * x[i+w]
		}
		y[i] = v
	}
}

// Residual returns ||rhs - A x||_2.
func (p *CGProblem) Residual(x []float64) float64 {
	y := make([]float64, p.N)
	p.Apply(x, y)
	s := 0.0
	for i := range y {
		d := p.RHS[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CGResult extends Result with solver-level outcomes.
type CGResult struct {
	Result
	// Iterations actually run.
	Iterations int
	// FinalResidual is ||rhs - A x|| after the run.
	FinalResidual float64
	// X is the computed solution.
	X []float64
}

// RunCG runs Params.Iterations iterations (default 5) of the
// conjugate-gradient method on m, with all vectors in global memory,
// compiler-style 32-word prefetches (when Params.Prefetch), vector
// segments statically partitioned over the CEs, and multiprocessor
// barriers between the phases of each iteration. It is the computation
// behind Table 2's CG row and the Section 4.3 scalability study.
func RunCG(m *core.Machine, rt *cedarfort.Runtime, prob *CGProblem, p workload.Params) (CGResult, error) {
	iters := p.Iterations
	if iters == 0 {
		iters = 5
	}
	usePrefetch, probe := p.Prefetch, p.Probe
	n := prob.N
	nces := m.NumCEs()
	if n%(nces*StripLen) != 0 {
		return CGResult{}, fmt.Errorf("kernels: CG n=%d not a multiple of %d", n, nces*StripLen)
	}

	// Functional state.
	x := make([]float64, n)
	r := make([]float64, n)
	q := make([]float64, n)
	pv := make([]float64, n)
	copy(r, prob.RHS) // x0 = 0 so r = rhs
	copy(pv, prob.RHS)
	partialsPQ := make([]float64, nces)
	partialsRR := make([]float64, nces)
	rho0 := 0.0
	for _, v := range r {
		rho0 += v * v
	}
	// Scalar recurrence state is replicated per CE: every processor
	// combines the same partials after each barrier and computes
	// identical alpha/beta locally, so no cross-CE write ordering on
	// scalars is needed (this is also how the real code behaves — the
	// reduction result is read by everyone).
	type cgScalars struct{ alpha, beta, rho, rhoNew float64 }
	scal := make([]cgScalars, nces)
	for i := range scal {
		scal[i].rho = rho0
	}

	// Timing address layout.
	m.AllocGlobalReset()
	xB := m.AllocGlobal(uint64(n))
	rB := m.AllocGlobal(uint64(n))
	qB := m.AllocGlobal(uint64(n))
	pB := m.AllocGlobal(uint64(n))
	partPQB := m.AllocGlobal(uint64(nces))
	partRRB := m.AllocGlobal(uint64(nces))
	bar := rt.NewBarrier(nces)

	var pr *perfmon.PrefetchProbe
	if probe && usePrefetch {
		pr = perfmon.AttachPrefetch(m.CE(0).PFU())
	}

	// Solver-phase marks for the per-phase CPI stacks: CE 0's generator
	// is pulled exactly when its instruction stream crosses a
	// barrier-separated phase boundary (the queue drains only after its
	// barrier episode retires), so marking from there stamps the
	// boundaries without touching simulated behaviour. All CEs cross
	// together — the barriers see to that — so one marker CE suffices.
	curPhase := ""
	markPhase := func(ceID int, name string) {
		if ceID != 0 || rt.Phases == nil {
			return
		}
		if curPhase != "" {
			rt.Phases.PhaseEnd(curPhase)
		}
		if name != "" {
			rt.Phases.PhaseStart(name)
		}
		curPhase = name
	}

	seg := n / nces
	for id := 0; id < nces; id++ {
		ceID := id
		lo, hi := ceID*seg, (ceID+1)*seg
		iter := 0
		phase := 0
		g := isa.NewGen(func(g *isa.Gen) bool {
			if iter >= iters {
				markPhase(ceID, "")
				return false
			}
			switch phase {
			case 0:
				markPhase(ceID, "matvec")
				emitCGMatvecPhase(g, prob, usePrefetch, lo, hi, pB, qB, partPQB, ceID,
					pv, q, partialsPQ)
				bar.Emit(g)
				phase = 1
			case 1:
				markPhase(ceID, "update")
				sc := &scal[ceID]
				emitCGUpdatePhase(g, usePrefetch, lo, hi, nces, xB, rB, qB, pB, partPQB, partRRB, ceID,
					x, r, q, pv, partialsPQ, partialsRR, &sc.alpha, &sc.rho, &sc.rhoNew)
				bar.Emit(g)
				phase = 2
			case 2:
				markPhase(ceID, "direction")
				sc := &scal[ceID]
				emitCGDirectionPhase(g, usePrefetch, lo, hi, nces, rB, pB, partRRB, ceID,
					r, pv, partialsRR, &sc.beta, &sc.rho, &sc.rhoNew)
				bar.Emit(g)
				phase = 0
				iter++
			}
			return true
		})
		m.CE(ceID).SetProgram(g)
	}

	start := m.Eng.Now()
	end, err := m.RunUntilIdle(sim.Cycle(int64(iters)*int64(n)*500/int64(nces)) + 10_000_000)
	if err != nil {
		return CGResult{}, err
	}
	check := 0.0
	for _, v := range x {
		check += v
	}
	name := "CG GM/no-pref"
	if usePrefetch {
		name = "CG GM/pref"
	}
	res := CGResult{
		Result:        finish(name, m, start, end, check, pr),
		Iterations:    iters,
		FinalResidual: prob.Residual(x),
		X:             x,
	}
	return res, nil
}

// vloadOps appends a strip load (with its prefetch when enabled).
func vloadOps(g *isa.Gen, usePrefetch bool, base uint64, lo, flops int) {
	addr := isa.Addr{Space: isa.Global, Word: base + uint64(lo)}
	if usePrefetch {
		g.Emit(isa.NewPrefetch(addr, StripLen, 1))
	}
	g.Emit(isa.NewVectorLoad(addr, StripLen, 1, flops, usePrefetch))
}

// emitCGMatvecPhase: q = A p over [lo,hi), partial = p . q, store partial.
// Nine flops per element for the 5-diagonal product plus two for the dot
// product, split across the streams' chained operations and one RR op.
func emitCGMatvecPhase(g *isa.Gen, prob *CGProblem, usePrefetch bool, lo, hi int,
	pB, qB, partB uint64, ceID int, pv, q []float64, partials []float64) {
	for s := lo; s < hi; s += StripLen {
		// Five shifted streams of p; chained flops 2+2+2+2 on four of
		// them, one RR op for the remaining multiply and the dot terms.
		vloadOps(g, usePrefetch, pB, s, 2)
		vloadOps(g, usePrefetch, pB, max(0, s-1), 2)
		vloadOps(g, usePrefetch, pB, min(prob.N-StripLen, s+1), 2)
		vloadOps(g, usePrefetch, pB, max(0, s-prob.W), 2)
		vloadOps(g, usePrefetch, pB, min(prob.N-StripLen, s+prob.W), 2)
		g.Emit(isa.NewCompute(12 + StripLen)) // RR: remaining mul + dot accumulation
		st := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: qB + uint64(s)}, StripLen, 1, 1)
		first := s
		st.Do = func() {
			n, w := prob.N, prob.W
			for k := 0; k < StripLen; k++ {
				i := first + k
				v := cgDiag * pv[i]
				if i >= 1 {
					v += cgOff * pv[i-1]
				}
				if i+1 < n {
					v += cgOff * pv[i+1]
				}
				if i >= w {
					v += cgOff * pv[i-w]
				}
				if i+w < n {
					v += cgOff * pv[i+w]
				}
				q[i] = v
			}
		}
		g.Emit(st)
	}
	// Partial dot product p.q over the segment; posted scalar store.
	st := isa.NewScalarStore(isa.Addr{Space: isa.Global, Word: partB + uint64(ceID)})
	st.Do = func() {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += pv[i] * q[i]
		}
		partials[ceID] = sum
	}
	g.Emit(st)
}

// emitCGUpdatePhase: read partials, alpha = rho / (p.q); x += alpha p;
// r -= alpha q; partial = r.r; store partial.
func emitCGUpdatePhase(g *isa.Gen, usePrefetch bool, lo, hi, nces int,
	xB, rB, qB, pB, partPQB, partRRB uint64, ceID int,
	x, r, q, pv []float64, partialsPQ, partialsRR []float64, alpha, rho, rhoNew *float64) {
	// Read every CE's partial (a short global vector load) and combine.
	rd := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: partPQB}, nces, 1, 1, false)
	rd.Do = func() {
		pq := 0.0
		for _, v := range partialsPQ {
			pq += v
		}
		*alpha = *rho / pq
	}
	g.Emit(rd)
	for s := lo; s < hi; s += StripLen {
		vloadOps(g, usePrefetch, pB, s, 2) // x += alpha p
		vloadOps(g, usePrefetch, qB, s, 2) // r -= alpha q
		vloadOps(g, usePrefetch, xB, s, 0) // x read-modify-write
		vloadOps(g, usePrefetch, rB, s, 2) // r RMW + r.r accumulation
		first := s
		stx := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: xB + uint64(s)}, StripLen, 1, 0)
		stx.Do = func() {
			for k := 0; k < StripLen; k++ {
				i := first + k
				x[i] += *alpha * pv[i]
				r[i] -= *alpha * q[i]
			}
		}
		g.Emit(stx)
		g.Emit(isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: rB + uint64(s)}, StripLen, 1, 0))
	}
	st := isa.NewScalarStore(isa.Addr{Space: isa.Global, Word: partRRB + uint64(ceID)})
	st.Do = func() {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += r[i] * r[i]
		}
		partialsRR[ceID] = sum
	}
	g.Emit(st)
}

// emitCGDirectionPhase: read partials, beta = rho' / rho, rho = rho',
// p = r + beta p.
func emitCGDirectionPhase(g *isa.Gen, usePrefetch bool, lo, hi, nces int,
	rB, pB, partB uint64, ceID int,
	r, pv []float64, partials []float64, beta, rho, rhoNew *float64) {
	rd := isa.NewVectorLoad(isa.Addr{Space: isa.Global, Word: partB}, nces, 1, 1, false)
	rd.Do = func() {
		sum := 0.0
		for _, v := range partials {
			sum += v
		}
		*rhoNew = sum
		*beta = *rhoNew / *rho
		*rho = *rhoNew // this CE's replicated recurrence state
	}
	g.Emit(rd)
	for s := lo; s < hi; s += StripLen {
		vloadOps(g, usePrefetch, rB, s, 1)
		vloadOps(g, usePrefetch, pB, s, 1)
		first := s
		st := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: pB + uint64(s)}, StripLen, 1, 0)
		st.Do = func() {
			for k := 0; k < StripLen; k++ {
				i := first + k
				pv[i] = r[i] + *beta*pv[i]
			}
		}
		g.Emit(st)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
