package kernels_test

import (
	"fmt"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/kernels"
)

// ExampleRunRank64 runs the Table 1 kernel in cache mode on one cluster and
// verifies the numerical result against the serial reference.
func ExampleRunRank64() {
	in := kernels.NewRank64Input(64)
	want := kernels.ReferenceRank64(in)
	m := core.MustNew(core.ConfigClusters(1))
	res, err := kernels.RunRank64(m, in, kernels.Params{Mode: kernels.GMCache})
	if err != nil {
		panic(err)
	}
	exact := true
	for i := range want {
		if in.C[i] != want[i] {
			exact = false
		}
	}
	fmt.Printf("flops=%d exact=%v\n", res.Flops, exact)
	// Output:
	// flops=524288 exact=true
}

// ExampleRunCG solves a small 5-diagonal system in parallel and reports
// convergence.
func ExampleRunCG() {
	m := core.MustNew(core.ConfigClusters(1))
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	p := kernels.NewCGProblem(1024, 64)
	res, err := kernels.RunCG(m, rt, p, kernels.Params{Iterations: 20, Prefetch: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v\n", res.FinalResidual < 1e-6)
	// Output:
	// converged=true
}
