package kernels_test

import (
	"fmt"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/kernels"
)

// ExampleRank64 runs the Table 1 kernel in cache mode on one cluster and
// verifies the numerical result against the serial reference.
func ExampleRank64() {
	in := kernels.NewRank64Input(64)
	want := kernels.ReferenceRank64(in)
	m := core.MustNew(core.ConfigClusters(1))
	res, err := kernels.Rank64(m, in, kernels.GMCache, false)
	if err != nil {
		panic(err)
	}
	exact := true
	for i := range want {
		if in.C[i] != want[i] {
			exact = false
		}
	}
	fmt.Printf("flops=%d exact=%v\n", res.Flops, exact)
	// Output:
	// flops=524288 exact=true
}

// ExampleCG solves a small 5-diagonal system in parallel and reports
// convergence.
func ExampleCG() {
	m := core.MustNew(core.ConfigClusters(1))
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	p := kernels.NewCGProblem(1024, 64)
	res, err := kernels.CG(m, rt, p, 20, true, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v\n", res.FinalResidual < 1e-6)
	// Output:
	// converged=true
}
