package kernels

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/perfmon"
	"repro/internal/sim"
	"repro/internal/workload"
)

// VectorLoad runs the VL kernel: every CE streams its contiguous segment
// of an n-word global vector through strip-mined vector operations (one
// chained flop per element — a vector scale), with compiler-style
// 32-word prefetches inserted before each vector operation when prefetch
// is enabled. The result vector is y[i] = 2*x[i], verified via Check
// (the sum of y).
//
// Params used: Size (vector length; default 4 strips per CE), Prefetch,
// Probe.
func RunVectorLoad(m *core.Machine, p workload.Params) (Result, error) {
	nces := m.NumCEs()
	n := p.Size
	if n == 0 {
		n = nces * StripLen * 4
	}
	usePrefetch, probe := p.Prefetch, p.Probe
	if n%(nces*StripLen) != 0 {
		return Result{}, fmt.Errorf("kernels: VL n=%d not a multiple of %d", n, nces*StripLen)
	}
	x := make([]float64, n)
	y := make([]float64, n)
	r := sim.NewRand(2)
	for i := range x {
		x[i] = r.Float64()
	}
	m.AllocGlobalReset()
	xBase := m.AllocGlobal(uint64(n))
	yBase := m.AllocGlobal(uint64(n))

	var pr *perfmon.PrefetchProbe
	if probe && usePrefetch {
		pr = perfmon.AttachPrefetch(m.CE(0).PFU())
	}

	seg := n / nces
	for id := 0; id < nces; id++ {
		base := id * seg
		prog := isa.NewSeq()
		for off := 0; off < seg; off += StripLen {
			lo := base + off
			addr := isa.Addr{Space: isa.Global, Word: xBase + uint64(lo)}
			if usePrefetch {
				prog.Add(isa.NewPrefetch(addr, StripLen, 1))
			}
			prog.Add(isa.NewVectorLoad(addr, StripLen, 1, 1, usePrefetch))
			st := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: yBase + uint64(lo)}, StripLen, 1, 0)
			first := lo
			st.Do = func() {
				for k := 0; k < StripLen; k++ {
					y[first+k] = 2 * x[first+k]
				}
			}
			prog.Add(st)
		}
		m.CE(id).SetProgram(prog)
	}
	start := m.Eng.Now()
	end, err := m.RunUntilIdle(sim.Cycle(n) * 100)
	if err != nil {
		return Result{}, err
	}
	check := 0.0
	for _, v := range y {
		check += v
	}
	name := "VL GM/no-pref"
	if usePrefetch {
		name = "VL GM/pref"
	}
	return finish(name, m, start, end, check, pr), nil
}

// TriMatVec runs the TM kernel: y = T x for a tridiagonal matrix T with
// diagonals (a, b, c), strip-mined with compiler-generated 32-word
// prefetches. Register-register vector operations carry part of the
// arithmetic, which reduces the demand on the memory system relative to
// RK — the property the paper uses to explain TM's milder degradation in
// Table 2. Five flops per element (three multiplies, two adds).
//
// Params used: Size (system order; default 2 strips per CE), Prefetch,
// Probe.
func RunTriMatVec(m *core.Machine, p workload.Params) (Result, error) {
	nces := m.NumCEs()
	n := p.Size
	if n == 0 {
		n = nces * StripLen * 2
	}
	usePrefetch, probe := p.Prefetch, p.Probe
	if n%(nces*StripLen) != 0 {
		return Result{}, fmt.Errorf("kernels: TM n=%d not a multiple of %d", n, nces*StripLen)
	}
	a := make([]float64, n) // subdiagonal (a[0] unused)
	b := make([]float64, n) // main diagonal
	c := make([]float64, n) // superdiagonal (c[n-1] unused)
	x := make([]float64, n)
	y := make([]float64, n)
	r := sim.NewRand(3)
	for i := range x {
		a[i] = r.Float64()
		b[i] = 2 + r.Float64()
		c[i] = r.Float64()
		x[i] = r.Float64() - 0.5
	}
	m.AllocGlobalReset()
	aBase := m.AllocGlobal(uint64(n))
	bBase := m.AllocGlobal(uint64(n))
	cBase := m.AllocGlobal(uint64(n))
	xBase := m.AllocGlobal(uint64(n))
	yBase := m.AllocGlobal(uint64(n))

	var pr *perfmon.PrefetchProbe
	if probe && usePrefetch {
		pr = perfmon.AttachPrefetch(m.CE(0).PFU())
	}

	// rrCost is the register-register vector operation cost for one
	// strip: startup plus one element per cycle.
	rrCost := sim.Cycle(12 + StripLen)

	seg := n / nces
	for id := 0; id < nces; id++ {
		base := id * seg
		prog := isa.NewSeq()
		for off := 0; off < seg; off += StripLen {
			lo := base + off
			load := func(base uint64, flops int) {
				addr := isa.Addr{Space: isa.Global, Word: base + uint64(lo)}
				if usePrefetch {
					prog.Add(isa.NewPrefetch(addr, StripLen, 1))
				}
				prog.Add(isa.NewVectorLoad(addr, StripLen, 1, flops, usePrefetch))
			}
			// Four streams; chained arithmetic on two of them, the rest
			// in a register-register operation.
			load(xBase, 0)
			load(aBase, 2) // a[i]*x[i-1] + accumulate
			load(bBase, 2) // b[i]*x[i] + accumulate
			load(cBase, 0) // c stream; its multiply-add runs RR below
			rr := isa.NewCompute(rrCost)
			first := lo
			prog.Add(rr)
			st := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: yBase + uint64(lo)}, StripLen, 1, 1)
			st.Do = func() {
				for k := 0; k < StripLen; k++ {
					i := first + k
					v := b[i] * x[i]
					if i > 0 {
						v += a[i] * x[i-1]
					}
					if i < n-1 {
						v += c[i] * x[i+1]
					}
					y[i] = v
				}
			}
			prog.Add(st)
		}
		m.CE(id).SetProgram(prog)
	}
	start := m.Eng.Now()
	end, err := m.RunUntilIdle(sim.Cycle(n) * 200)
	if err != nil {
		return Result{}, err
	}
	check := 0.0
	for _, v := range y {
		check += v
	}
	name := "TM GM/no-pref"
	if usePrefetch {
		name = "TM GM/pref"
	}
	return finish(name, m, start, end, check, pr), nil
}

// ReferenceTriMatVec computes y = T x serially from the same seed,
// for verification of TriMatVec's Check value.
func ReferenceTriMatVec(n int) float64 {
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	x := make([]float64, n)
	r := sim.NewRand(3)
	for i := range x {
		a[i] = r.Float64()
		b[i] = 2 + r.Float64()
		c[i] = r.Float64()
		x[i] = r.Float64() - 0.5
	}
	check := 0.0
	for i := 0; i < n; i++ {
		v := b[i] * x[i]
		if i > 0 {
			v += a[i] * x[i-1]
		}
		if i < n-1 {
			v += c[i] * x[i+1]
		}
		check += v
	}
	return check
}
