package kernels

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Chaos soak: the standing system-wide fault invariant. A seeded sweep
// over (fault-kind subsets x registry workloads x all four engine
// modes) asserts that every faulted run completes (no ErrDeadline),
// that all modes produce bit-identical fingerprints — architected
// counters, attribution, and the fault census itself — and that the
// census balances injected against recovered counts. Each
// (subset, workload) pair runs under its own seed, so the soak covers
// more distinct fault schedules than any per-kind test.

// chaosSubsets are the fault-kind subsets the soak sweeps; nil enables
// every kind.
var chaosSubsets = [][]string{
	nil,
	{"cache-bank-busy", "bus-stall", "ce-drop"},
}

func chaosMachine(clusters int, mode sim.EngineMode, seed uint64, kinds []string) *core.Machine {
	cfg := core.ConfigClusters(clusters)
	cfg.Global.Words = 1 << 20
	cfg.EngineMode = mode
	cfg.Fault = fault.DefaultConfig(seed)
	cfg.Fault.MeanInterval = 300
	if kinds != nil {
		if err := cfg.Fault.EnableOnly(kinds); err != nil {
			panic(err)
		}
	}
	return core.MustNew(cfg)
}

// chaosFingerprint extends the architected fingerprint with the fault
// census and the cluster-internal fault counters, so a mode divergence
// in any of the new hooks is caught even when it never perturbs a CE.
func chaosFingerprint(m *core.Machine) string {
	var b strings.Builder
	b.WriteString(fingerprint(m))
	inj := m.FaultInj
	fmt.Fprintf(&b, "fault inj=%d ns=%d nd=%d mb=%d md=%d cs=%d ib=%d id=%d cb=%d bs=%d cd=%d rep=%d nt=%d\n",
		inj.Injected, inj.NetStalls, inj.NetDrops, inj.MemBusies, inj.MemDegrades,
		inj.CheckStops, inj.IPBusies, inj.IPDelays, inj.CacheBusies, inj.BusStalls,
		inj.CEDrops, inj.Repairs, inj.NoTarget)
	for i, clu := range m.Clusters {
		fmt.Fprintf(&b, "cache%d fbusy=%d fstall=%d bus%d faults=%d ops=%d cycles=%d\n",
			i, clu.Cache.FaultBankBusies, clu.Cache.FaultBankStalls,
			i, clu.BusFaults, clu.BusStalledOps, clu.BusStallCycles)
	}
	return b.String()
}

// checkCensusBalance asserts the injected-vs-recovered invariants on a
// completed run:
//
//   - no request ever exhausted its reissue budget (the run completed,
//     so every lost read was recovered);
//   - every cluster-internal injection landed on its target (cache and
//     bus counters match the injector's);
//   - check-stops balance repairs up to the windows still pending;
//   - drops never exceed reissues: a dropped packet kills exactly one
//     request instance, instances = 1 + retries, and completion needs
//     one surviving instance — so with zero exhausted budgets each
//     recovery layer must have retried at least once per drop.
func checkCensusBalance(t *testing.T, label string, m *core.Machine) {
	t.Helper()
	inj := m.FaultInj
	var ceRetries, ceExhausted, pfuRetries, pfuExhausted int64
	for _, c := range m.CEs() {
		ceRetries += c.Retries
		ceExhausted += c.RetriesExhausted
		pfuRetries += c.PFU().Retries
		pfuExhausted += c.PFU().RetriesExhausted
	}
	if ceExhausted != 0 || pfuExhausted != 0 {
		t.Fatalf("%s: completed run left exhausted retry budgets (ce=%d pfu=%d)",
			label, ceExhausted, pfuExhausted)
	}
	var cacheBusies, busFaults int64
	for _, clu := range m.Clusters {
		cacheBusies += clu.Cache.FaultBankBusies
		busFaults += clu.BusFaults
	}
	if cacheBusies != inj.CacheBusies {
		t.Fatalf("%s: cache FaultBankBusies %d != injector CacheBusies %d",
			label, cacheBusies, inj.CacheBusies)
	}
	if busFaults != inj.BusStalls {
		t.Fatalf("%s: cluster BusFaults %d != injector BusStalls %d",
			label, busFaults, inj.BusStalls)
	}
	if inj.CheckStops-inj.Repairs != int64(inj.PendingRepairs()) {
		t.Fatalf("%s: check-stops %d - repairs %d != pending %d",
			label, inj.CheckStops, inj.Repairs, inj.PendingRepairs())
	}
	if inj.CEDrops > ceRetries {
		t.Fatalf("%s: %d CE drops but only %d CE reissues", label, inj.CEDrops, ceRetries)
	}
	if inj.NetDrops > pfuRetries {
		t.Fatalf("%s: %d prefetch drops but only %d PFU reissues", label, inj.NetDrops, pfuRetries)
	}
}

// TestChaosSoak is the harness: every (subset, workload) pair gets its
// own seed (12 seeds at full size, each swept over all four modes).
// make fault-soak runs this by name; -short trims the workload list.
func TestChaosSoak(t *testing.T) {
	names := workload.Names()
	if testing.Short() {
		names = names[:2]
	}
	seed := uint64(0xC4A05)
	for _, kinds := range chaosSubsets {
		subset := "all-kinds"
		if kinds != nil {
			subset = strings.Join(kinds, "+")
		}
		for _, name := range names {
			seed++
			seed, kinds, name := seed, kinds, name
			t.Run(fmt.Sprintf("%s/%s", subset, name), func(t *testing.T) {
				var ref string
				var refAt sim.Cycle
				for i := len(engineModes) - 1; i >= 0; i-- { // naive first: reference
					mode := engineModes[i]
					m := chaosMachine(2, mode, seed, kinds)
					if _, err := workload.Run(name, m, attrOptions(name, m), workload.Attachments{}); err != nil {
						t.Fatalf("[%v] hung or wedged: %v", mode, err)
					}
					label := fmt.Sprintf("%s seed %#x [%v]", name, seed, mode)
					checkCensusBalance(t, label, m)
					fp := chaosFingerprint(m)
					if mode == sim.ModeNaive {
						ref, refAt = fp, m.Eng.Now()
						continue
					}
					if m.Eng.Now() != refAt {
						t.Fatalf("%s: finished at cycle %d, naive at %d", label, m.Eng.Now(), refAt)
					}
					diffFingerprints(t, label, fp, ref)
				}
			})
		}
	}
}

// TestChaosSoakExercisesNewKinds guards the soak against vacuity: under
// the cluster-internal subset the three new kinds must actually fire
// and their recovery paths must actually run — bank-busy refusals,
// stretched bus ops, and CE reissues of dropped direct reads.
func TestChaosSoakExercisesNewKinds(t *testing.T) {
	var busies, stalls, drops, refused, retries int64
	// vl and tm run direct global streams (CE-tagged reads to drop); rk
	// in GMCache mode stages its blocks through the cluster cache, where
	// a bank-busy window can refuse it service.
	for _, name := range []string{"vl", "tm", "rk"} {
		m := chaosMachine(2, sim.ModeWakeCached, 0xD1CE, chaosSubsets[1])
		opts := attrOptions(name, m)
		opts.Prefetch = false // direct global streams carry CE tags
		if name == "rk" {
			opts.Mode = workload.GMCache
		}
		if _, err := workload.Run(name, m, opts, workload.Attachments{}); err != nil {
			t.Fatal(err)
		}
		busies += m.FaultInj.CacheBusies
		stalls += m.FaultInj.BusStalls
		drops += m.FaultInj.CEDrops
		for _, clu := range m.Clusters {
			refused += clu.Cache.FaultBankStalls
		}
		for _, c := range m.CEs() {
			retries += c.Retries
		}
	}
	if busies == 0 || stalls == 0 || drops == 0 {
		t.Fatalf("new kinds not all injected: cache-busies=%d bus-stalls=%d ce-drops=%d",
			busies, stalls, drops)
	}
	if refused == 0 {
		t.Fatalf("%d bank-busy windows never refused an access", busies)
	}
	if retries == 0 {
		t.Fatalf("%d CE drops never provoked a reissue", drops)
	}

	// The registry kernels partition work statically and XDOALL claims
	// through global FetchAndAdd syncs — only a CDOALL nested in an
	// SDOALL puts claim and spread traffic on the cluster concurrency
	// bus. Run one under bus-stall injection to prove the stretch path
	// fires.
	m := chaosMachine(1, sim.ModeWakeCached, 0xD1CE, []string{"bus-stall"})
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	if _, err := rt.SDOALL(16, true, func(ctx *cedarfort.Ctx, iter int) {
		ctx.CDOALL(64, cedarfort.SelfScheduled, func(ictx *cedarfort.Ctx, j int) {
			ictx.Emit(isa.NewCompute(20))
		})
	}); err != nil {
		t.Fatal(err)
	}
	var stretched int64
	for _, clu := range m.Clusters {
		stretched += clu.BusStalledOps
	}
	if m.FaultInj.BusStalls == 0 || stretched == 0 {
		t.Fatalf("%d bus stalls stretched %d claim/spread ops, want both > 0",
			m.FaultInj.BusStalls, stretched)
	}
}

// TestChaosSoakParallelReissue races the CE inflight reissue path under
// the parallel engine with the worker pool forced on (the 1-CPU inline
// fallback would otherwise hide data races from make race-fault).
func TestChaosSoakParallelReissue(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	cfg := core.ConfigClusters(2)
	cfg.Global.Words = 1 << 20
	cfg.EngineMode = sim.ModeWakeCachedParallel
	cfg.ParWorkers = 2
	cfg.Fault = fault.DefaultConfig(0x9E155)
	cfg.Fault.MeanInterval = 200
	if err := cfg.Fault.EnableOnly([]string{"ce-drop", "net-stall", "cache-bank-busy", "bus-stall"}); err != nil {
		t.Fatal(err)
	}
	m := core.MustNew(cfg)
	opts := attrOptions("tm", m)
	opts.Prefetch = false // direct global streams: the reissue path's food
	if _, err := workload.Run("tm", m, opts, workload.Attachments{}); err != nil {
		t.Fatal(err)
	}
	var retries int64
	for _, c := range m.CEs() {
		retries += c.Retries
	}
	if m.FaultInj.CEDrops == 0 || retries == 0 {
		t.Fatalf("parallel soak never dropped and reissued a CE read (drops=%d retries=%d)",
			m.FaultInj.CEDrops, retries)
	}
	checkCensusBalance(t, "tm parallel", m)
}
