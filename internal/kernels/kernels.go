// Package kernels implements the computational kernels the paper uses to
// characterize the Cedar memory system (Section 4.1):
//
//   - RK: a rank-64 update of an n x n matrix, in the three versions of
//     Table 1 (GM/no-pref, GM/pref, GM/cache);
//   - VL: a vector load stream;
//   - TM: a tridiagonal matrix-vector multiply;
//   - CG: a conjugate-gradient solver on a 5-diagonal system, also used
//     for the scalability study of Section 4.3.
//
// Every kernel computes real floating-point results (verifiable against a
// direct serial reference) while its address streams drive the simulated
// machine;
// the returned Result carries both the numerical check value and the
// performance metrics the paper reports.
package kernels

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/perfmon"
	"repro/internal/sim"
)

// Mode selects the memory-system strategy of a kernel, matching the three
// versions of Table 1.
type Mode int

// Kernel memory modes.
const (
	// GMNoPrefetch: all vector accesses go to global memory with no
	// prefetching — throughput is bounded by the two outstanding
	// requests per CE and the 13-cycle latency.
	GMNoPrefetch Mode = iota
	// GMPrefetch: identical access pattern, but every global vector
	// operand is prefetched.
	GMPrefetch
	// GMCache: submatrix blocks are transferred to a cached work array
	// in each cluster and all inner-loop vector accesses hit the cache.
	GMCache
)

// String names the mode as in Table 1.
func (m Mode) String() string {
	switch m {
	case GMNoPrefetch:
		return "GM/no-pref"
	case GMPrefetch:
		return "GM/pref"
	case GMCache:
		return "GM/cache"
	}
	return "unknown"
}

// Result reports one kernel execution.
type Result struct {
	// Name identifies the kernel and variant.
	Name string
	// CEs is the processor count used.
	CEs int
	// Cycles is the elapsed simulated time.
	Cycles sim.Cycle
	// Flops is the floating-point operation count performed by the CEs.
	Flops int64
	// MFLOPS is the paper's rate metric.
	MFLOPS float64
	// Check is a kernel-specific numerical checksum for verification.
	Check float64
	// Latency and Interarrival are the Table 2 prefetch metrics in
	// cycles (NaN when the kernel was run without a probe or without
	// prefetching).
	Latency      float64
	Interarrival float64
}

func (r Result) String() string {
	s := fmt.Sprintf("%-14s P=%-3d %8d cycles  %7.1f MFLOPS", r.Name, r.CEs, r.Cycles, r.MFLOPS)
	if !math.IsNaN(r.Latency) {
		s += fmt.Sprintf("  lat=%5.1f  ia=%4.2f", r.Latency, r.Interarrival)
	}
	return s
}

// finish assembles a Result from a completed run.
func finish(name string, m *core.Machine, start, end sim.Cycle, check float64, probe *perfmon.PrefetchProbe) Result {
	r := Result{
		Name:         name,
		CEs:          m.NumCEs(),
		Cycles:       end - start,
		Flops:        m.TotalFlops(),
		Check:        check,
		Latency:      math.NaN(),
		Interarrival: math.NaN(),
	}
	r.MFLOPS = core.MFLOPS(r.Flops, r.Cycles)
	if probe != nil && probe.Blocks() > 0 {
		r.Latency = probe.MeanLatency()
		r.Interarrival = probe.MeanInterarrival()
	}
	return r
}

// StripLen is the CE vector register length: kernels are strip-mined to
// 32-word strips, as the Alliant vector unit's eight 32-word registers
// dictate.
const StripLen = 32
