// Package kernels implements the computational kernels the paper uses to
// characterize the Cedar memory system (Section 4.1):
//
//   - RK: a rank-64 update of an n x n matrix, in the three versions of
//     Table 1 (GM/no-pref, GM/pref, GM/cache);
//   - VL: a vector load stream;
//   - TM: a tridiagonal matrix-vector multiply;
//   - CG: a conjugate-gradient solver on a 5-diagonal system, also used
//     for the scalability study of Section 4.3.
//
// Every kernel computes real floating-point results (verifiable against a
// direct serial reference) while its address streams drive the simulated
// machine;
// the returned Result carries both the numerical check value and the
// performance metrics the paper reports.
package kernels

import (
	"math"

	"repro/internal/core"
	"repro/internal/perfmon"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Mode, Result, Params and Attachments live in the workload package
// with the unified Workload API; the aliases keep kernel callers
// readable while the canonical definitions stay where drivers find
// them.
type (
	// Mode selects the memory-system strategy of a kernel (Table 1).
	Mode = workload.Mode
	// Result reports one kernel execution.
	Result = workload.Result
	// Params is the serializable parameter set of a run.
	Params = workload.Params
	// Attachments carries the runtime-only observers of a run.
	Attachments = workload.Attachments
)

// Kernel memory modes (aliases of the workload constants).
const (
	GMNoPrefetch = workload.GMNoPrefetch
	GMPrefetch   = workload.GMPrefetch
	GMCache      = workload.GMCache
)

// finish assembles a Result from a completed run.
func finish(name string, m *core.Machine, start, end sim.Cycle, check float64, probe *perfmon.PrefetchProbe) Result {
	r := Result{
		Name:         name,
		CEs:          m.NumCEs(),
		Cycles:       end - start,
		Flops:        m.TotalFlops(),
		Check:        check,
		Latency:      math.NaN(),
		Interarrival: math.NaN(),
	}
	r.MFLOPS = core.MFLOPS(r.Flops, r.Cycles)
	if probe != nil && probe.Blocks() > 0 {
		r.Latency = probe.MeanLatency()
		r.Interarrival = probe.MeanInterarrival()
	}
	return r
}

// StripLen is the CE vector register length: kernels are strip-mined to
// 32-word strips, as the Alliant vector unit's eight 32-word registers
// dictate.
const StripLen = 32
