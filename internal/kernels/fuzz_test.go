package kernels

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/xylem"
)

// The equivalence suites above replay fixed kernels; this one replays a
// randomized schedule of external stimuli — DOALL dispatches, serial
// spans, barrier episodes and IP submissions in arbitrary order — so the
// wake-cached path's dormancy bookkeeping is exercised across stimulus
// patterns nobody hand-picked. The schedule is generated ONCE from a
// seeded sim.Rand and replayed verbatim on one machine per engine path,
// so any divergence is the engine's fault, not the generator's.

// fuzzSeed pins the schedule; `make ci` runs exactly this sequence.
const fuzzSeed = 0x5EDA2C3D

type fuzzStep struct {
	kind      int
	n         int       // iterations / SDOALL width
	cost      sim.Cycle // per-iteration compute
	vector    bool      // body also touches global memory through the PFU
	affinity  bool      // SDOALL placement
	cluster   int       // IP step: which cluster's IP
	words     int64     // IP step: transfer size
	formatted bool      // IP step: formatted transfer
}

const (
	stepXDOALLSelf = iota
	stepXDOALLStatic
	stepSDOALL
	stepSerial
	stepBarrier
	stepIP
	numStepKinds
)

// fuzzSchedule draws a schedule for a machine with the given cluster
// count. Every parameter comes from r, so the same seed always yields
// the same stimuli.
func fuzzSchedule(r *sim.Rand, clusters, steps int) []fuzzStep {
	sched := make([]fuzzStep, steps)
	for i := range sched {
		st := fuzzStep{
			kind: r.Intn(numStepKinds),
			n:    1 + r.Intn(clusters*16),
			cost: sim.Cycle(5 + r.Intn(200)),
		}
		st.vector = r.Intn(3) == 0
		st.affinity = r.Intn(2) == 0
		st.cluster = r.Intn(clusters)
		st.words = int64(64 + r.Intn(4000))
		st.formatted = r.Intn(2) == 0
		sched[i] = st
	}
	return sched
}

// replayFuzz drives one machine through the schedule and returns its
// observable state: final time, kernel fingerprint, registry and sampler
// fingerprints, and the exported trace bytes.
func replayFuzz(t *testing.T, m *core.Machine, sched []fuzzStep) (kernel, registry, sampler string, trace []byte) {
	t.Helper()
	s := m.NewSampler(500)
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	for si, st := range sched {
		switch st.kind {
		case stepXDOALLSelf, stepXDOALLStatic:
			how := cedarfort.SelfScheduled
			if st.kind == stepXDOALLStatic {
				how = cedarfort.Static
			}
			base := isa.Addr{Space: isa.Global, Word: m.AllocGlobal(uint64(StripLen))}
			if _, err := rt.XDOALL(st.n, how, func(ctx *cedarfort.Ctx, iter int) {
				ctx.Emit(isa.NewCompute(st.cost))
				if st.vector {
					ctx.Emit(isa.NewPrefetch(base, 16, 1))
					ctx.Emit(isa.NewVectorLoad(base, 16, 1, 16, true))
				}
			}); err != nil {
				t.Fatalf("step %d XDOALL: %v", si, err)
			}
		case stepSDOALL:
			width := 1 + st.n%(len(m.Clusters)*2)
			if _, err := rt.SDOALL(width, st.affinity, func(ctx *cedarfort.Ctx, iter int) {
				ctx.Emit(isa.NewCompute(st.cost))
			}); err != nil {
				t.Fatalf("step %d SDOALL: %v", si, err)
			}
		case stepSerial:
			rt.Serial(st.cost * 10)
		case stepBarrier:
			n := m.NumCEs()
			b := rt.NewBarrier(n)
			for id := 0; id < n; id++ {
				g := isa.NewGen(func(g *isa.Gen) bool { return false })
				g.Emit(isa.NewCompute(st.cost + sim.Cycle((id*13)%41)))
				b.Emit(g)
				g.Emit(isa.NewCompute(1))
				m.Dispatch(id, g)
			}
			if _, err := m.RunUntilIdle(2_000_000); err != nil {
				t.Fatalf("step %d barrier: %v", si, err)
			}
		case stepIP:
			// Machine.Idle ignores the IP, so the step tracks its own
			// completion; the Submit must revive a dormant IP on the
			// wake-cached path or this RunUntil dies on the deadline.
			done := false
			m.Clusters[st.cluster].IPs.Submit(m.Eng.Now(), st.words, st.formatted,
				func(xylem.IOCompletion) { done = true })
			if _, err := m.Eng.RunUntil(func() bool { return done }, 10_000_000); err != nil {
				t.Fatalf("step %d IP: %v", si, err)
			}
		}
		if m.FaultInj != nil {
			// Under fault injection a step can end with recovery still in
			// flight — a check-stopped CE awaiting repair, a surrendered
			// program awaiting redispatch. Drain it before the next step:
			// the runtime's dispatchers require idle CEs.
			if _, err := m.RunUntilIdle(10_000_000); err != nil {
				t.Fatalf("step %d fault-recovery drain: %v", si, err)
			}
		}
	}
	s.Final()
	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	return fingerprint(m), m.Registry().Fingerprint(), s.Fingerprint(), buf.Bytes()
}

// faultMachineAt is machineAt with the fault subsystem enabled: a dense
// deterministic schedule of network stalls and drops, memory busy and
// degrade windows, and CE check-stops, plus the recovery knobs (request
// timeouts, gang rescheduling) the faults exercise.
func faultMachineAt(clusters int, mode sim.EngineMode) *core.Machine {
	cfg := core.ConfigClusters(clusters)
	cfg.Global.Words = 1 << 20
	cfg.EngineMode = mode
	cfg.Fault = fault.DefaultConfig(fuzzSeed + uint64(clusters))
	cfg.Fault.MeanInterval = 300
	return core.MustNew(cfg)
}

// TestFuzzScheduleFaultEngineEquivalence is the central correctness claim
// of the fault subsystem: with a fixed fault seed, the same stimulus
// schedule under active fault injection leaves all three engine paths in
// bit-identical architected states — fingerprints, metrics registry,
// sampler and exported trace bytes — at every cluster scale. The fault
// schedule itself (the injector's counters) is part of the compared
// registry, so a single fault landing on a different cycle in any mode
// fails the test.
func TestFuzzScheduleFaultEngineEquivalence(t *testing.T) {
	for _, clusters := range []int{1, 2, 4} {
		clusters := clusters
		t.Run(fmt.Sprintf("%dcluster", clusters), func(t *testing.T) {
			steps := 12
			if clusters == 4 {
				if testing.Short() {
					t.Skip("4-cluster fault fuzz replay; skipped with -short")
				}
				steps = 8
			}
			sched := fuzzSchedule(sim.NewRand(fuzzSeed+uint64(clusters)), clusters, steps)

			naive := faultMachineAt(clusters, sim.ModeNaive)
			kn, rn, sn, tn := replayFuzz(t, naive, sched)
			if naive.FaultInj.Injected == 0 {
				t.Fatal("fault schedule injected nothing: the test exercises no recovery path")
			}
			for _, mode := range []sim.EngineMode{sim.ModeWakeCachedParallel, sim.ModeWakeCached, sim.ModeQuiescent} {
				fast := faultMachineAt(clusters, mode)
				kf, rf, sf, tf := replayFuzz(t, fast, sched)
				what := fmt.Sprintf("fault fuzz %dcl [%v]", clusters, mode)
				diffFingerprints(t, what+" kernel", kf, kn)
				diffFingerprints(t, what+" registry", rf, rn)
				diffFingerprints(t, what+" sampler", sf, sn)
				if !bytes.Equal(tf, tn) {
					t.Fatalf("%s emitted different trace bytes than naive (%d vs %d)", what, len(tf), len(tn))
				}
				if fast.Eng.Now() != naive.Eng.Now() {
					t.Fatalf("%s final time %d != naive %d", what, fast.Eng.Now(), naive.Eng.Now())
				}
			}
		})
	}
}

// TestFuzzScheduleEngineEquivalence: at 1-, 2- and 4-cluster scale, the
// same randomized stimulus schedule must leave all three engine paths in
// bit-identical architected states, down to the exported trace bytes.
func TestFuzzScheduleEngineEquivalence(t *testing.T) {
	for _, clusters := range []int{1, 2, 4} {
		clusters := clusters
		t.Run(fmt.Sprintf("%dcluster", clusters), func(t *testing.T) {
			steps := 12
			if clusters == 4 {
				if testing.Short() {
					t.Skip("4-cluster fuzz replay; skipped with -short")
				}
				steps = 8
			}
			sched := fuzzSchedule(sim.NewRand(fuzzSeed+uint64(clusters)), clusters, steps)

			naive := machineAt(clusters, sim.ModeNaive)
			kn, rn, sn, tn := replayFuzz(t, naive, sched)
			if naive.Eng.SkippedTicks != 0 || naive.Eng.DormantSkips != 0 {
				t.Fatal("naive reference took a fast path")
			}
			for _, mode := range []sim.EngineMode{sim.ModeWakeCachedParallel, sim.ModeWakeCached, sim.ModeQuiescent} {
				fast := machineAt(clusters, mode)
				kf, rf, sf, tf := replayFuzz(t, fast, sched)
				what := fmt.Sprintf("fuzz %dcl [%v]", clusters, mode)
				diffFingerprints(t, what+" kernel", kf, kn)
				diffFingerprints(t, what+" registry", rf, rn)
				diffFingerprints(t, what+" sampler", sf, sn)
				if !bytes.Equal(tf, tn) {
					t.Fatalf("%s emitted different trace bytes than naive (%d vs %d)", what, len(tf), len(tn))
				}
				if fast.Eng.Now() != naive.Eng.Now() {
					t.Fatalf("%s final time %d != naive %d", what, fast.Eng.Now(), naive.Eng.Now())
				}
				if mode == sim.ModeWakeCached && fast.Eng.DormantSkips == 0 {
					t.Fatalf("%s never skipped a dormant component: fuzz schedule exercised nothing", what)
				}
			}
		})
	}
}
