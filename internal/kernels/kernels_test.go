package kernels

import (
	"math"
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
)

func testMachine(clusters int) *core.Machine {
	cfg := core.ConfigClusters(clusters)
	cfg.Global.Words = 1 << 20
	return core.MustNew(cfg)
}

func TestModeString(t *testing.T) {
	if GMNoPrefetch.String() != "GM/no-pref" || GMPrefetch.String() != "GM/pref" || GMCache.String() != "GM/cache" {
		t.Fatal("mode names drifted from Table 1")
	}
	if Mode(9).String() != "unknown" {
		t.Fatal("unknown mode")
	}
}

func TestRank64Numerics(t *testing.T) {
	for _, mode := range []Mode{GMNoPrefetch, GMPrefetch, GMCache} {
		in := NewRank64Input(64)
		want := ReferenceRank64(in)
		m := testMachine(1)
		res, err := RunRank64(m, in, Params{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := range want {
			if math.Abs(in.C[i]-want[i]) > 1e-9 {
				t.Fatalf("%v: C[%d] = %g, want %g", mode, i, in.C[i], want[i])
			}
		}
		if res.Flops < int64(2*64*64*64) {
			t.Fatalf("%v: counted %d flops, want >= %d", mode, res.Flops, 2*64*64*64)
		}
	}
}

// TestRank64ModeOrdering reproduces Table 1's column ordering on one
// cluster: GM/cache > GM/pref > GM/no-pref, with prefetch a ~3-4x
// improvement and no-pref near 14.5 MFLOPS on 8 CEs.
func TestRank64ModeOrdering(t *testing.T) {
	rates := map[Mode]float64{}
	for _, mode := range []Mode{GMNoPrefetch, GMPrefetch, GMCache} {
		in := NewRank64Input(128)
		m := testMachine(1)
		res, err := RunRank64(m, in, Params{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		rates[mode] = res.MFLOPS
	}
	if !(rates[GMCache] > rates[GMPrefetch] && rates[GMPrefetch] > rates[GMNoPrefetch]) {
		t.Fatalf("mode ordering violated: %v", rates)
	}
	if rates[GMNoPrefetch] < 10 || rates[GMNoPrefetch] > 20 {
		t.Fatalf("GM/no-pref on one cluster = %.1f MFLOPS, want ~14.5 (Table 1)", rates[GMNoPrefetch])
	}
	imp := rates[GMPrefetch] / rates[GMNoPrefetch]
	if imp < 2.5 || imp > 6 {
		t.Fatalf("prefetch improvement %.1fx, paper shows ~3.5x", imp)
	}
}

func TestRank64Probe(t *testing.T) {
	in := NewRank64Input(64)
	m := testMachine(1)
	res, err := RunRank64(m, in, Params{Mode: GMPrefetch, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Latency) || math.IsNaN(res.Interarrival) {
		t.Fatal("probe produced no measurements")
	}
	if res.Latency < 8 {
		t.Fatalf("latency %.1f below the 8-cycle minimum", res.Latency)
	}
	if res.Interarrival < 1 {
		t.Fatalf("interarrival %.2f below the 1-cycle minimum", res.Interarrival)
	}
}

func TestRank64SizeValidation(t *testing.T) {
	m := testMachine(1)
	in := NewRank64Input(64)
	in.N = 4 // lie about the size: fewer columns than CEs
	if _, err := RunRank64(m, in, Params{Mode: GMPrefetch}); err == nil {
		t.Fatal("accepted n smaller than the CE count")
	}
}

// TestRank64UnevenPartition: 3 clusters (24 CEs) with n=64 exercises the
// remainder-spreading column partition.
func TestRank64UnevenPartition(t *testing.T) {
	in := NewRank64Input(64)
	want := ReferenceRank64(in)
	m := testMachine(3)
	if _, err := RunRank64(m, in, Params{Mode: GMPrefetch}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(in.C[i]-want[i]) > 1e-9 {
			t.Fatalf("C[%d] = %g, want %g", i, in.C[i], want[i])
		}
	}
}

func TestVectorLoadNumericsAndSpeedup(t *testing.T) {
	n := 8 * StripLen * 8
	m1 := testMachine(1)
	slow, err := RunVectorLoad(m1, Params{Size: n})
	if err != nil {
		t.Fatal(err)
	}
	m2 := testMachine(1)
	fast, err := RunVectorLoad(m2, Params{Size: n, Prefetch: true, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slow.Check-fast.Check) > 1e-9 {
		t.Fatalf("checksums differ between variants: %g vs %g", slow.Check, fast.Check)
	}
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("prefetch VL (%d cycles) not faster than no-pref (%d)", fast.Cycles, slow.Cycles)
	}
	if math.IsNaN(fast.Latency) {
		t.Fatal("VL probe missing")
	}
}

func TestTriMatVecNumerics(t *testing.T) {
	n := 8 * StripLen * 4
	m := testMachine(1)
	res, err := RunTriMatVec(m, Params{Size: n, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceTriMatVec(n)
	if math.Abs(res.Check-want) > 1e-9*math.Abs(want) {
		t.Fatalf("TM check = %g, want %g", res.Check, want)
	}
	if res.Flops < int64(5*n) {
		t.Fatalf("TM counted %d flops for n=%d", res.Flops, n)
	}
}

func TestCGConverges(t *testing.T) {
	n := 8 * StripLen * 4 // 1024
	p := NewCGProblem(n, 64)
	m := testMachine(1)
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	res, err := RunCG(m, rt, p, Params{Iterations: 20, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	r0 := 0.0
	for _, v := range p.RHS {
		r0 += v * v
	}
	r0 = math.Sqrt(r0)
	if res.FinalResidual > r0*1e-6 {
		t.Fatalf("CG residual %g after 20 iterations (initial %g): not converging", res.FinalResidual, r0)
	}
	// Verify against a serial CG reference.
	xRef := serialCG(p, 20)
	for i := range xRef {
		if math.Abs(xRef[i]-res.X[i]) > 1e-8 {
			t.Fatalf("x[%d] = %g, serial reference %g", i, res.X[i], xRef[i])
		}
	}
}

// serialCG is a plain single-thread conjugate gradient for verification.
func serialCG(p *CGProblem, iters int) []float64 {
	n := p.N
	x := make([]float64, n)
	r := make([]float64, n)
	pv := make([]float64, n)
	q := make([]float64, n)
	copy(r, p.RHS)
	copy(pv, p.RHS)
	rho := 0.0
	for _, v := range r {
		rho += v * v
	}
	for it := 0; it < iters; it++ {
		p.Apply(pv, q)
		pq := 0.0
		for i := range q {
			pq += pv[i] * q[i]
		}
		alpha := rho / pq
		for i := range x {
			x[i] += alpha * pv[i]
			r[i] -= alpha * q[i]
		}
		rhoNew := 0.0
		for _, v := range r {
			rhoNew += v * v
		}
		beta := rhoNew / rho
		rho = rhoNew
		for i := range pv {
			pv[i] = r[i] + beta*pv[i]
		}
	}
	return x
}

// TestCGPrefetchHelps: Table 2's CG row shows a ~2.4x prefetch speedup on
// 8 CEs; check direction and rough magnitude.
func TestCGPrefetchHelps(t *testing.T) {
	n := 8 * StripLen * 4
	run := func(usePF bool) CGResult {
		p := NewCGProblem(n, 64)
		m := testMachine(1)
		rt := cedarfort.New(m, cedarfort.DefaultConfig())
		res, err := RunCG(m, rt, p, Params{Iterations: 4, Prefetch: usePF})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow, fast := run(false), run(true)
	sp := float64(slow.Cycles) / float64(fast.Cycles)
	if sp < 1.3 {
		t.Fatalf("CG prefetch speedup = %.2f, want > 1.3", sp)
	}
	if math.Abs(slow.Check-fast.Check) > 1e-9 {
		t.Fatal("CG result depends on prefetching")
	}
}

func TestCGProblemValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad CG offset accepted")
		}
	}()
	NewCGProblem(100, 1)
}

func TestResultString(t *testing.T) {
	r := Result{Name: "RK GM/pref", CEs: 8, Cycles: 100, MFLOPS: 50, Latency: math.NaN()}
	if s := r.String(); s == "" {
		t.Fatal("empty String")
	}
	r.Latency, r.Interarrival = 9.4, 1.1
	if s := r.String(); s == "" {
		t.Fatal("empty String with probe")
	}
}
