package kernels

import (
	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/workload"
)

// Thin wrappers preserving the pre-workload.Options positional
// signatures, so examples/ and older callers keep compiling unchanged.

// Rank64 runs the rank-64 update in the given memory mode.
//
// Deprecated: use RunRank64 with workload.Options.
func Rank64(m *core.Machine, in *Rank64Input, mode Mode, probe bool) (Result, error) {
	return RunRank64(m, in, workload.Options{Mode: mode, Probe: probe})
}

// VectorLoad runs the VL kernel on an n-word vector.
//
// Deprecated: use RunVectorLoad with workload.Options.
func VectorLoad(m *core.Machine, n int, usePrefetch, probe bool) (Result, error) {
	return RunVectorLoad(m, workload.Options{Size: n, Prefetch: usePrefetch, Probe: probe})
}

// TriMatVec runs the TM kernel on an order-n system.
//
// Deprecated: use RunTriMatVec with workload.Options.
func TriMatVec(m *core.Machine, n int, usePrefetch, probe bool) (Result, error) {
	return RunTriMatVec(m, workload.Options{Size: n, Prefetch: usePrefetch, Probe: probe})
}

// CG runs iters conjugate-gradient iterations.
//
// Deprecated: use RunCG with workload.Options.
func CG(m *core.Machine, rt *cedarfort.Runtime, p *CGProblem, iters int, usePrefetch, probe bool) (CGResult, error) {
	return RunCG(m, rt, p, workload.Options{Iterations: iters, Prefetch: usePrefetch, Probe: probe})
}
