package kernels

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestFourClusterFullSizeTelemetryEquivalence is the full-size
// configuration sweep the quick determinism tests shrink away from: all
// four clusters, the as-built global memory, every engine path, with
// telemetry attached and the trace exporter run on the result. It is
// the long pole of the suite, so `go test -short` skips it.
func TestFourClusterFullSizeTelemetryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size 4-cluster equivalence run; skipped with -short")
	}
	run := func(mode sim.EngineMode) (*core.Machine, Result, []byte) {
		t.Helper()
		cfg := core.ConfigClusters(4) // as-built: default global memory, no shrinking
		cfg.EngineMode = mode
		m := core.MustNew(cfg)
		s := m.NewSampler(1000)
		r, err := RunTriMatVec(m, Params{Size: m.NumCEs()*StripLen*2, Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		s.Final()
		var buf bytes.Buffer
		if err := telemetry.WriteTrace(&buf, s, nil); err != nil {
			t.Fatal(err)
		}
		return m, r, buf.Bytes()
	}
	naive, rn, tn := run(sim.ModeNaive)
	var traceBytes []byte
	for _, mode := range []sim.EngineMode{sim.ModeWakeCachedParallel, sim.ModeWakeCached, sim.ModeQuiescent} {
		fast, rf, tf := run(mode)
		what := fmt.Sprintf("4-cluster [%v]", mode)
		checkResults(t, what, rf, rn)
		diffFingerprints(t, what+" fingerprint", fingerprint(fast), fingerprint(naive))
		diffFingerprints(t, what+" registry", fast.Registry().Fingerprint(), naive.Registry().Fingerprint())

		// The exported traces carry only architected series (diagnostics
		// never become slices or tracks), so every engine path must emit
		// byte-identical trace files.
		if !bytes.Equal(tf, tn) {
			t.Fatalf("%s emitted different trace bytes than naive (%d vs %d)", what, len(tf), len(tn))
		}
		traceBytes = tf
	}

	// Acceptance: the timeline covers every cluster (a process per
	// cluster plus net, gmem and the synthetic workload row).
	processes := map[string]bool{}
	for _, e := range decodeTrace(t, traceBytes) {
		if e.Name == "process_name" {
			processes[e.Args["name"].(string)] = true
		}
	}
	for cl := 0; cl < 4; cl++ {
		if !processes[fmt.Sprintf("cluster%d", cl)] {
			t.Fatalf("trace missing cluster%d process (have %v)", cl, processes)
		}
	}
	for _, p := range []string{"net", "gmem", "workload"} {
		if !processes[p] {
			t.Fatalf("trace missing %q process (have %v)", p, processes)
		}
	}
}
