package kernels

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestFourClusterFullSizeTelemetryEquivalence is the full-size
// configuration sweep the quick determinism tests shrink away from: all
// four clusters, the as-built global memory, both engine paths, with
// telemetry attached and the trace exporter run on the result. It is
// the long pole of the suite, so `go test -short` skips it.
func TestFourClusterFullSizeTelemetryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size 4-cluster equivalence run; skipped with -short")
	}
	mk := func(naive bool) *core.Machine {
		cfg := core.ConfigClusters(4) // as-built: default global memory, no shrinking
		cfg.NaiveEngine = naive
		return core.MustNew(cfg)
	}
	fast, naive := mk(false), mk(true)
	sf := fast.NewSampler(1000)
	sn := naive.NewSampler(1000)

	n := fast.NumCEs() * StripLen * 2
	rf, err := TriMatVec(fast, n, true, false)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := TriMatVec(naive, n, true, false)
	if err != nil {
		t.Fatal(err)
	}
	sf.Final()
	sn.Final()

	checkResults(t, "TM 4-cluster full-size", rf, rn)
	diffFingerprints(t, "4-cluster fingerprint", fingerprint(fast), fingerprint(naive))
	diffFingerprints(t, "4-cluster registry", fast.Registry().Fingerprint(), naive.Registry().Fingerprint())
	diffFingerprints(t, "4-cluster sampler series", sf.Fingerprint(), sn.Fingerprint())

	// The exported traces carry only architected series (diagnostics never
	// become slices or tracks), so the two engine paths must emit
	// byte-identical trace files.
	var bf, bn bytes.Buffer
	if err := telemetry.WriteTrace(&bf, sf, nil); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteTrace(&bn, sn, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf.Bytes(), bn.Bytes()) {
		t.Fatalf("engine paths emitted different trace bytes (%d vs %d)", bf.Len(), bn.Len())
	}

	// Acceptance: the timeline covers every cluster (a process per
	// cluster plus net, gmem and the synthetic workload row).
	processes := map[string]bool{}
	for _, e := range decodeTrace(t, bf.Bytes()) {
		if e.Name == "process_name" {
			processes[e.Args["name"].(string)] = true
		}
	}
	for cl := 0; cl < 4; cl++ {
		if !processes[fmt.Sprintf("cluster%d", cl)] {
			t.Fatalf("trace missing cluster%d process (have %v)", cl, processes)
		}
	}
	for _, p := range []string{"net", "gmem", "workload"} {
		if !processes[p] {
			t.Fatalf("trace missing %q process (have %v)", p, processes)
		}
	}
}
