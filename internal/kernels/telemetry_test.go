package kernels

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// The telemetry layer rides on the engine's quiescence contract: a
// sampled run must record exactly the same architected series whichever
// engine path executes it, and attaching a sampler must not change the
// simulation at all. These tests extend the determinism suite to the
// registry, the sampler and the trace exporter.

func TestTelemetryFingerprintEngineEquivalence(t *testing.T) {
	run := func(m *core.Machine) (Result, *telemetry.Sampler) {
		t.Helper()
		s := m.NewSampler(500)
		r, err := RunVectorLoad(m, Params{Size: m.NumCEs()*StripLen*4, Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		s.Final()
		return r, s
	}
	naive := machineAt(1, sim.ModeNaive)
	rn, sn := run(naive)
	for _, mode := range []sim.EngineMode{sim.ModeWakeCached, sim.ModeQuiescent} {
		fast := machineAt(1, mode)
		rf, sf := run(fast)

		what := fmt.Sprintf("VL telemetry [%v]", mode)
		checkResults(t, what, rf, rn)
		diffFingerprints(t, what+" registry", fast.Registry().Fingerprint(), naive.Registry().Fingerprint())
		diffFingerprints(t, what+" sampler series", sf.Fingerprint(), sn.Fingerprint())

		// The engine diagnostics are exactly what must differ: the fast
		// paths skipped work, the naive path never does. The registry
		// exposes them, fenced off from the fingerprints just compared.
		skF, ok := fast.Registry().Value("engine/skipped_ticks")
		if !ok || skF == 0 {
			t.Fatalf("%v engine/skipped_ticks = %d,%v, want > 0", mode, skF, ok)
		}
		// And the dormant-skip counter separates the two fast paths: only
		// wake-cached ever skips a component without querying it.
		ds, _ := fast.Registry().Value("engine/dormant_skips")
		if mode == sim.ModeWakeCached && ds == 0 {
			t.Fatal("wake-cached engine/dormant_skips = 0, want > 0")
		}
		if mode == sim.ModeQuiescent && ds != 0 {
			t.Fatalf("quiescent engine/dormant_skips = %d, want 0", ds)
		}
		// Network level gauges are registered and idle after a drained run.
		for _, path := range []string{"net/fwd/in_flight", "net/rev/in_flight"} {
			v, ok := fast.Registry().Value(path)
			if !ok {
				t.Fatalf("%s not registered", path)
			}
			if v != 0 {
				t.Fatalf("%s = %d after drained run, want 0", path, v)
			}
		}
	}
	if skN, _ := naive.Registry().Value("engine/skipped_ticks"); skN != 0 {
		t.Fatalf("naive engine/skipped_ticks = %d, want 0", skN)
	}
}

// TestSamplerDoesNotPerturbRun: a kernel must take exactly the same
// number of cycles and produce the same counters with and without a
// sampler attached (telemetry-on determinism, the acceptance gate).
func TestSamplerDoesNotPerturbRun(t *testing.T) {
	mk := func() *core.Machine {
		cfg := core.ConfigClusters(1)
		cfg.Global.Words = 1 << 20
		return core.MustNew(cfg)
	}
	plain, sampled := mk(), mk()
	s := sampled.NewSampler(250)
	rp, err := RunRank64(plain, NewRank64Input(64), Params{Mode: GMCache})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunRank64(sampled, NewRank64Input(64), Params{Mode: GMCache})
	if err != nil {
		t.Fatal(err)
	}
	s.Final()
	checkResults(t, "rank64 sampled", rp, rs)
	diffFingerprints(t, "sampled vs plain", fingerprint(plain), fingerprint(sampled))
	if len(s.Samples()) < 2 {
		t.Fatalf("sampler recorded %d samples, want >= 2", len(s.Samples()))
	}
}

// TestXDOALLPhaseMarks: a machine-wide DOALL reports its start and end
// to the sampler, bracketing the dispatch startup and the body.
func TestXDOALLPhaseMarks(t *testing.T) {
	fast, _ := enginePair(1)
	s := fast.NewSampler(0) // phase marks only
	rt := cedarfort.New(fast, cedarfort.DefaultConfig())
	rt.Phases = s
	for l := 0; l < 2; l++ {
		if _, err := rt.XDOALL(fast.NumCEs(), cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
			ctx.Emit(isa.NewCompute(100))
		}); err != nil {
			t.Fatal(err)
		}
	}
	var labels []string
	for _, smp := range s.Samples() {
		labels = append(labels, smp.Label)
		if smp.Values == nil {
			t.Fatalf("DOALL mark %q recorded mid-cycle; XDOALL boundaries happen on an idle machine", smp.Label)
		}
	}
	want := []string{"xdoall:start", "xdoall:end", "xdoall:start", "xdoall:end"}
	if len(labels) != len(want) {
		t.Fatalf("marks = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("marks = %v, want %v", labels, want)
		}
	}
}

// TestCGPhaseMarks: the barrier-structured CG kernel reports barrier
// entry and exit to the sampler, and both engine paths see the same
// marks at the same cycles.
func TestCGPhaseMarks(t *testing.T) {
	run := func(m *core.Machine) (*telemetry.Sampler, CGResult) {
		t.Helper()
		s := m.NewSampler(1000)
		rt := cedarfort.New(m, cedarfort.DefaultConfig())
		rt.Phases = s
		res, err := RunCG(m, rt, NewCGProblem(m.NumCEs()*StripLen*2, 5), Params{Iterations: 3, Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		s.Final()
		return s, res
	}
	fast, naive := enginePair(2)
	sf, rf := run(fast)
	sn, rn := run(naive)
	checkResults(t, "CG phases", rf.Result, rn.Result)
	diffFingerprints(t, "CG sampler series", sf.Fingerprint(), sn.Fingerprint())

	counts := map[string]int{}
	for _, smp := range sf.Samples() {
		if smp.Label != "" {
			counts[smp.Label]++
		}
	}
	for _, label := range []string{"barrier:start", "barrier:end"} {
		if counts[label] == 0 {
			t.Fatalf("no %q phase mark recorded (have %v)", label, counts)
		}
	}
	if counts["barrier:start"] != counts["barrier:end"] {
		t.Fatalf("unbalanced barrier marks: %v", counts)
	}
}

// TestMachineFlameShape: the flame summary has one row per CE plus the
// two networks and the global memory, with as many cells as intervals.
func TestMachineFlameShape(t *testing.T) {
	fast, _ := enginePair(1)
	s := fast.NewSampler(500)
	if _, err := RunVectorLoad(fast, Params{Size: fast.NumCEs()*StripLen*2, Prefetch: true}); err != nil {
		t.Fatal(err)
	}
	s.Final()
	f := fast.MachineFlame(s)
	if want := fast.NumCEs() + 3; f.Rows() != want {
		t.Fatalf("flame rows = %d, want %d (CEs + fwd + rev + gmem)", f.Rows(), want)
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("flame rendered empty")
	}
}

// traceEvent is the subset of a trace_event entry the structural tests
// inspect.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// decodeTrace unmarshals exported trace bytes for structural checks.
func decodeTrace(t *testing.T, raw []byte) []traceEvent {
	t.Helper()
	var tf struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return tf.TraceEvents
}
