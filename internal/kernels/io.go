package kernels

import (
	"fmt"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/perfect"
	"repro/internal/perfmon"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xylem"
)

// The two I/O-heavy Perfect codes of the paper's per-code discussion,
// modeled as engine-driven workloads over the isa.IO path. Their shape —
// who does I/O, how much, formatted or raw, and how much compute rides
// between transfers — comes from the perfect profiles, so the kernels
// reproduce the profiles' compute-to-I/O wall-clock ratios on the
// simulated machine rather than hard-coding cycle counts:
//
//   - BDNA writes one formatted trajectory record per timestep through a
//     single sequential file: the machine leader (CE 0) issues the whole
//     record, serializing machine-wide through its cluster's IP — the
//     behavior that makes BDNA's 111 s automatable time ~38% I/O and the
//     hand optimization (drop the formatting) worth 41 s.
//   - MG3D reads seismic trace partitions raw and in parallel: each
//     cluster's leader CE reads its cluster's share before the step's
//     compute, so I/O scales with cluster count — the pre-elimination
//     form of the code whose studied version removed file I/O entirely
//     (Table 3 footnote).
type ioKernelSpec struct {
	name       string
	formatted  bool
	perCluster bool // per-cluster leader partitions (MG3D) vs machine leader (BDNA)
	ioFirst    bool // read before compute (MG3D) vs write after (BDNA)
	// ratio is the profile-derived compute:I/O wall-clock ratio the
	// kernel's per-strip compute padding reproduces.
	ratio float64
	// update is the per-element step function; aux is the optional
	// second input array (nil when the kernel has none).
	update func(step, i int, cur, aux []float64) float64
	aux    []float64
}

// bdnaSpec derives BDNA's shape from its perfect profile: the formatted
// I/O volume is charged at the formatted rate, and whatever remains of
// the published automatable time is compute.
func bdnaSpec() (ioKernelSpec, error) {
	suite, err := perfect.Suite()
	if err != nil {
		return ioKernelSpec{}, err
	}
	p := perfect.ByName(suite, "BDNA")
	r := perfect.DefaultRates()
	ioSec := p.IOFormattedWords * r.FormattedIOSecPerWord
	if ioSec <= 0 || p.Targets.AutoSeconds <= ioSec {
		return ioKernelSpec{}, fmt.Errorf("kernels: BDNA profile I/O time %.3gs inconsistent with %.3gs total",
			ioSec, p.Targets.AutoSeconds)
	}
	return ioKernelSpec{
		name:      "BDNA",
		formatted: true,
		ratio:     (p.Targets.AutoSeconds - ioSec) / ioSec,
		update: func(_, i int, cur, _ []float64) float64 {
			// One smoothing sweep over the coordinate array (the
			// force-averaging flavor of the MD step), clamped at the ends.
			im, ip := i-1, i+1
			if im < 0 {
				im = 0
			}
			if ip >= len(cur) {
				ip = len(cur) - 1
			}
			return 0.5*cur[i] + 0.25*cur[im] + 0.25*cur[ip]
		},
	}, nil
}

// mg3dSpec derives MG3D's shape from its perfect profile: the studied
// version eliminated its file I/O, so the recorded eliminated raw volume
// is charged at the raw rate against the full published compute time —
// the pre-elimination program this kernel models.
func mg3dSpec(aux []float64) (ioKernelSpec, error) {
	suite, err := perfect.Suite()
	if err != nil {
		return ioKernelSpec{}, err
	}
	p := perfect.ByName(suite, "MG3D")
	r := perfect.DefaultRates()
	ioSec := p.IOEliminatedRawWords * r.RawIOSecPerWord
	if ioSec <= 0 {
		return ioKernelSpec{}, fmt.Errorf("kernels: MG3D profile records no eliminated I/O volume")
	}
	return ioKernelSpec{
		name:       "MG3D",
		perCluster: true,
		ioFirst:    true,
		ratio:      p.Targets.AutoSeconds / ioSec,
		update: func(step, i int, cur, aux []float64) float64 {
			// Accumulate the freshly read trace into the migration image
			// with a step-dependent weight.
			return cur[i] + aux[i]/float64(step+1)
		},
		aux: aux,
	}, nil
}

// RunBDNA runs the BDNA-style workload: Params.Iterations timesteps
// (default 3) over a Params.Size-word coordinate array (default 2
// strips per CE), each ending with the leader's formatted whole-array
// trajectory write and a machine barrier.
func RunBDNA(m *core.Machine, p workload.Params, att workload.Attachments) (Result, error) {
	spec, err := bdnaSpec()
	if err != nil {
		return Result{}, err
	}
	return runIOKernel(m, spec, p, att)
}

// RunMG3D runs the MG3D-style workload: Params.Iterations migration
// steps (default 3) over a Params.Size-word image (default 2 strips
// per CE), each beginning with every cluster leader's raw read of its
// trace partition.
func RunMG3D(m *core.Machine, p workload.Params, att workload.Attachments) (Result, error) {
	// The trace array is sized in runIOKernel once the problem size is
	// known; hand the spec a slice header it can fill there.
	aux := []float64{}
	spec, err := mg3dSpec(aux)
	if err != nil {
		return Result{}, err
	}
	return runIOKernel(m, spec, p, att)
}

// runIOKernel drives one I/O-heavy Perfect-code model: steps of
// (optional leader read) -> strip-mined compute -> (optional leader
// write) -> machine barrier, with per-strip compute padding sized so the
// kernel's compute-to-I/O wall-clock ratio matches the profile's.
func runIOKernel(m *core.Machine, spec ioKernelSpec, p workload.Params, att workload.Attachments) (Result, error) {
	nces := m.NumCEs()
	nclusters := len(m.Clusters)
	cesPerCluster := m.Config().Cluster.CEs
	n := p.Size
	if n == 0 {
		n = nces * StripLen * 2
	}
	steps := p.Iterations
	if steps == 0 {
		steps = 3
	}
	if n%(nces*StripLen) != 0 {
		return Result{}, fmt.Errorf("kernels: %s n=%d not a multiple of %d", spec.name, n, nces*StripLen)
	}

	// Functional state: a double-buffered array stepped in place, plus
	// the optional second input (MG3D's traces).
	buf := [2][]float64{make([]float64, n), make([]float64, n)}
	r := sim.NewRand(11)
	for i := range buf[0] {
		buf[0][i] = r.Float64()
	}
	aux := spec.aux
	if aux != nil {
		aux = make([]float64, n)
		for i := range aux {
			aux[i] = r.Float64() - 0.5
		}
		spec.aux = aux
	}

	// Timing address layout.
	m.AllocGlobalReset()
	base := [2]uint64{m.AllocGlobal(uint64(n)), m.AllocGlobal(uint64(n))}
	var auxBase uint64
	if aux != nil {
		auxBase = m.AllocGlobal(uint64(n))
	}

	// I/O volume per leader per step, and the wall-clock the IPs spend
	// on it (leaders of different clusters transfer in parallel; BDNA's
	// single leader serializes the whole record through one IP).
	ioWords := n
	if spec.perCluster {
		ioWords = n / nclusters
	}
	fsCfg := xylem.DefaultFSConfig()
	wordCycles := fsCfg.TransferPerWord
	if spec.formatted {
		wordCycles += fsCfg.FormatPerWord
	}
	ioWall := float64(ioWords) * float64(wordCycles)

	// Per-strip compute padding: all CEs compute in parallel, so each
	// CE's per-step compute wall must be ratio * ioWall, spread over its
	// strips.
	seg := n / nces
	stripsPerCE := seg / StripLen
	extraPerStrip := sim.Cycle(spec.ratio*ioWall/float64(stripsPerCE) + 0.5)

	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	if att.Phases != nil {
		rt.Phases = att.Phases
	}
	bar := rt.NewBarrier(nces)

	var pr *perfmon.PrefetchProbe
	if p.Probe && p.Prefetch {
		pr = perfmon.AttachPrefetch(m.CE(0).PFU())
	}

	for id := 0; id < nces; id++ {
		ceID := id
		isLeader := ceID == 0
		if spec.perCluster {
			isLeader = ceID%cesPerCluster == 0
		}
		lo, hi := ceID*seg, (ceID+1)*seg
		step := 0
		g := isa.NewGen(func(g *isa.Gen) bool {
			if step >= steps {
				return false
			}
			s := step
			cur, nxt := buf[s%2], buf[1-s%2]
			curB, nxtB := base[s%2], base[1-s%2]
			if isLeader && spec.ioFirst {
				emitIOStatement(g, spec, s, ceID, ioWords)
			}
			for stripLo := lo; stripLo < hi; stripLo += StripLen {
				vloadOps(g, p.Prefetch, curB, stripLo, 2)
				if aux != nil {
					vloadOps(g, p.Prefetch, auxBase, stripLo, 1)
				}
				if extraPerStrip > 0 {
					g.Emit(isa.NewCompute(extraPerStrip))
				}
				st := isa.NewVectorStore(isa.Addr{Space: isa.Global, Word: nxtB + uint64(stripLo)}, StripLen, 1, 0)
				base := stripLo
				st.Do = func() {
					for i := base; i < base+StripLen; i++ {
						nxt[i] = spec.update(s, i, cur, aux)
					}
				}
				g.Emit(st)
			}
			if isLeader && !spec.ioFirst {
				emitIOStatement(g, spec, s, ceID, ioWords)
			}
			bar.Emit(g)
			step++
			return true
		})
		m.CE(ceID).SetProgram(g)
	}

	start := m.Eng.Now()
	budget := sim.Cycle((spec.ratio+1)*ioWall*float64(steps)*3) + 10_000_000
	end, err := m.RunUntilIdle(budget)
	if err != nil {
		return Result{}, err
	}
	check := 0.0
	for _, v := range buf[steps%2] {
		check += v
	}

	kind := "raw"
	if spec.formatted {
		kind = "formatted"
	}
	res := finish(fmt.Sprintf("%s %s-I/O", spec.name, kind), m, start, end, check, pr)
	var reqs, moved int64
	for _, clu := range m.Clusters {
		reqs += clu.IPs.Requests
		moved += clu.IPs.WordsMoved
	}
	measured := (float64(end-start) - ioWall*float64(steps)) / (ioWall * float64(steps))
	res.Notes = append(res.Notes,
		fmt.Sprintf("%s I/O: %d requests, %d %s words through the cluster IPs", spec.name, reqs, moved, kind),
		fmt.Sprintf("%s compute/I-O wall ratio: %.2f (profile target %.2f)", spec.name, measured, spec.ratio))
	return res, nil
}

// emitIOStatement emits one blocking Fortran I/O statement (syscall
// issue + parked transfer) labeled for ErrDeadline diagnostics.
func emitIOStatement(g *isa.Gen, spec ioKernelSpec, step, ceID, words int) {
	op := isa.NewIORequest(int64(words), spec.formatted)
	op.IOLabel = fmt.Sprintf("%s step %d ce%d", spec.name, step, ceID)
	g.Emit(isa.NewCompute(2), op)
}
