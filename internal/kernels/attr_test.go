package kernels

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Cycle-accounting tests (DESIGN.md §4.8). The contract: every CE cycle
// is charged to exactly one bucket, so per-CE bucket sums equal elapsed
// cycles — on every workload, in every engine mode, with or without
// faults — and the per-CE io_park bucket reproduces the CE's exact
// I/O-wait accounting.

// attrOptions keeps the all-workload sweep fast while still exercising
// every bucket source: vector streams (direct and prefetched), scalar
// and sync traffic, and both I/O shapes.
func attrOptions(name string, m *core.Machine) workload.Params {
	switch name {
	case "rk":
		return workload.Params{Size: 64, Mode: workload.GMPrefetch}
	case "vl":
		return workload.Params{Size: m.NumCEs() * StripLen * 4}
	case "tm":
		return workload.Params{Size: m.NumCEs() * StripLen * 2, Prefetch: true}
	case "cg":
		return workload.Params{Iterations: 3, Prefetch: true}
	default: // bdna, mg3d
		return workload.Params{Iterations: 2}
	}
}

// checkConservation asserts the invariant on every CE and returns the
// per-CE bucket vectors for cross-mode comparison.
func checkConservation(t *testing.T, label string, m *core.Machine) [][]int64 {
	t.Helper()
	elapsed := int64(m.Eng.Now())
	out := make([][]int64, 0, m.NumCEs())
	for _, c := range m.CEs() {
		if got := c.Acct.Total(); got != elapsed {
			t.Fatalf("%s: ce%d bucket sum %d != elapsed %d cycles (buckets %v over %v)",
				label, c.ID, got, elapsed, c.Acct.Cycles, isa.AcctNames())
		}
		if got := c.Acct.Cycles[isa.AcctIOPark]; got != c.IOWaitCycles {
			t.Fatalf("%s: ce%d io_park bucket %d != IOWaitCycles %d",
				label, c.ID, got, c.IOWaitCycles)
		}
		v := make([]int64, isa.NumBuckets)
		copy(v, c.Acct.Cycles[:])
		out = append(out, v)
	}
	return out
}

func diffAttr(t *testing.T, label string, got, ref [][]int64) {
	t.Helper()
	for ce := range ref {
		for b := range ref[ce] {
			if got[ce][b] != ref[ce][b] {
				t.Fatalf("%s: ce%d bucket %s diverged from naive: %d vs %d",
					label, ce, isa.Bucket(b), got[ce][b], ref[ce][b])
			}
		}
	}
}

// TestAttrConservationAllWorkloads is the tentpole invariant: for every
// registry workload, in all three engine modes, every CE's bucket totals
// sum exactly to the elapsed cycle count, and the full per-CE bucket
// vectors are bit-identical across modes.
func TestAttrConservationAllWorkloads(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var ref [][]int64
			for i := len(engineModes) - 1; i >= 0; i-- { // naive first: reference
				mode := engineModes[i]
				m := machineAt(2, mode)
				if _, err := workload.Run(name, m, attrOptions(name, m), workload.Attachments{}); err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s [%v]", name, mode)
				vecs := checkConservation(t, label, m)
				if mode == sim.ModeNaive {
					ref = vecs
					continue
				}
				diffAttr(t, label, vecs, ref)
			}
		})
	}
}

// TestAttrBucketsExercised guards the sweep above against vacuity: across
// the registry, the workloads must actually charge cycles to the busy,
// dispatch, stall, park, and idle buckets (fault buckets are covered by
// the sweep below).
func TestAttrBucketsExercised(t *testing.T) {
	var total isa.Acct
	for _, name := range workload.Names() {
		m := machineAt(2, sim.ModeWakeCached)
		if _, err := workload.Run(name, m, attrOptions(name, m), workload.Attachments{}); err != nil {
			t.Fatal(err)
		}
		for _, c := range m.CEs() {
			for b, n := range c.Acct.Cycles {
				total.Add(isa.Bucket(b), n)
			}
		}
	}
	for b := isa.Bucket(0); b < isa.NumBuckets; b++ {
		if b == isa.AcctCheckStop || b == isa.AcctRecovery {
			continue // fault buckets: exercised by TestAttrFaultSweep
		}
		if total.Cycles[b] == 0 {
			t.Errorf("no registry workload ever charged bucket %s", b)
		}
	}
}

// TestAttrFaultSweep is the satellite fault-attribution check: under a
// dense seeded schedule of every fault class, conservation must still
// hold exactly, the recovery cycles must land in their own buckets —
// check-stop drain/freeze in check_stop, post-reissue read waits in
// recovery — so the fault census and the CPI stack cross-check, and the
// attribution must stay bit-identical across all three engine paths.
func TestAttrFaultSweep(t *testing.T) {
	for _, name := range []string{"cg", "bdna"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var ref [][]int64
			for i := len(engineModes) - 1; i >= 0; i-- {
				mode := engineModes[i]
				cfg := core.ConfigClusters(2)
				cfg.Global.Words = 1 << 20
				cfg.EngineMode = mode
				cfg.Fault = fault.DefaultConfig(0xA77C0DE)
				cfg.Fault.MeanInterval = 400
				m := core.MustNew(cfg)
				if _, err := workload.Run(name, m, attrOptions(name, m), workload.Attachments{}); err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s faulted [%v]", name, mode)
				vecs := checkConservation(t, label, m)

				var stops, retries, stopCycles, recCycles int64
				for _, c := range m.CEs() {
					stops += c.CheckStops
					retries += c.Retries
					stopCycles += c.Acct.Cycles[isa.AcctCheckStop]
					recCycles += c.Acct.Cycles[isa.AcctRecovery]
				}
				if stops == 0 {
					t.Fatalf("%s: fault schedule never check-stopped a CE; pick a denser schedule", label)
				}
				if stopCycles == 0 {
					t.Fatalf("%s: %d check-stops but zero check_stop cycles", label, stops)
				}
				if retries > 0 && recCycles == 0 {
					t.Fatalf("%s: %d read reissues but zero recovery cycles", label, retries)
				}
				if mode == sim.ModeNaive {
					ref = vecs
					continue
				}
				diffAttr(t, label, vecs, ref)
			}
		})
	}
}
