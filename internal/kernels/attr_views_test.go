package kernels

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Tests for the machine-level attribution views (core/attr.go and the
// coded flame rows): table shapes, the per-interval conservation the CSV
// export inherits from the sampler contract, and the CG phase stacks.

func TestCPIStackShape(t *testing.T) {
	m := machineAt(1, sim.ModeWakeCached)
	if _, err := workload.Run("vl", m, attrOptions("vl", m), workload.Attachments{}); err != nil {
		t.Fatal(err)
	}
	st := m.CPIStack()
	if want := m.NumCEs() + 1; st.Rows() != want {
		t.Fatalf("CPI stack rows = %d, want %d (CEs + machine rollup)", st.Rows(), want)
	}
	var buf bytes.Buffer
	if err := st.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cluster0/ce0", "machine", "busy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered CPI stack missing %q:\n%s", want, out)
		}
	}
}

// TestPhaseCPIStackCG: the CG solver marks its three barrier-separated
// phases, so the per-phase stack must carry one row per solver phase and
// its grand total must equal the whole sampled series (phase rows
// partition the intervals).
func TestPhaseCPIStackCG(t *testing.T) {
	m := machineAt(1, sim.ModeWakeCached)
	s := m.NewSampler(500)
	o := attrOptions("cg", m)
	if _, err := workload.Run("cg", m, o, workload.Attachments{Phases: s}); err != nil {
		t.Fatal(err)
	}
	s.Final()
	st := m.PhaseCPIStack(s)
	var buf bytes.Buffer
	if err := st.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, phase := range []string{"matvec", "update", "direction"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("per-phase CPI stack missing solver phase %q:\n%s", phase, out)
		}
	}
}

// TestWriteAttrCSV: the CSV export is the interval series verbatim — one
// row per (interval, CE) whose bucket deltas sum to the interval length
// (the conservation invariant holds interval by interval, because the
// engine settles skip accounting at every sample boundary).
func TestWriteAttrCSV(t *testing.T) {
	m := machineAt(1, sim.ModeWakeCached)
	s := m.NewSampler(500)
	o := attrOptions("cg", m)
	if _, err := workload.Run("cg", m, o, workload.Attachments{Phases: s}); err != nil {
		t.Fatal(err)
	}
	s.Final()
	var buf bytes.Buffer
	if err := m.WriteAttrCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantHeader := "from,to,phase,unit," + strings.Join(isa.AcctNames(), ",")
	if lines[0] != wantHeader {
		t.Fatalf("CSV header = %q, want %q", lines[0], wantHeader)
	}
	nIvs := len(s.Intervals())
	if want := 1 + nIvs*m.NumCEs(); len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d (header + %d intervals x %d CEs)",
			len(lines), want, nIvs, m.NumCEs())
	}
	sawPhase := false
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 4+int(isa.NumBuckets) {
			t.Fatalf("CSV row has %d fields, want %d: %q", len(f), 4+isa.NumBuckets, line)
		}
		from, _ := strconv.ParseInt(f[0], 10, 64)
		to, _ := strconv.ParseInt(f[1], 10, 64)
		if f[2] != "" {
			sawPhase = true
		}
		var sum int64
		for _, v := range f[4:] {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket cell %q in %q: %v", v, line, err)
			}
			sum += n
		}
		if sum != to-from {
			t.Fatalf("row %q: bucket deltas sum to %d over a %d-cycle interval", line, sum, to-from)
		}
	}
	if !sawPhase {
		t.Fatal("no CSV row carries a phase name despite CG's solver-phase marks")
	}
}

// TestMachineFlameCodedCells: the CE rows of the activity summary are
// coded with cycle-bucket characters, never utilization shades.
func TestMachineFlameCodedCells(t *testing.T) {
	m := machineAt(1, sim.ModeWakeCached)
	s := m.NewSampler(500)
	if _, err := workload.Run("vl", m, attrOptions("vl", m), workload.Attachments{}); err != nil {
		t.Fatal(err)
	}
	s.Final()
	var buf bytes.Buffer
	if err := m.MachineFlame(s).Render(&buf); err != nil {
		t.Fatal(err)
	}
	legal := map[byte]bool{}
	for b := isa.Bucket(0); b < isa.NumBuckets; b++ {
		legal[b.Code()] = true
	}
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "cluster0/ce") {
			continue
		}
		found = true
		open := strings.IndexByte(line, '|')
		close := strings.LastIndexByte(line, '|')
		if open < 0 || close <= open+1 {
			t.Fatalf("CE flame row has no cells: %q", line)
		}
		for i := open + 1; i < close; i++ {
			if !legal[line[i]] {
				t.Fatalf("CE flame cell %q is not a cycle-bucket code in %q", line[i], line)
			}
		}
	}
	if !found {
		t.Fatal("no CE rows in the rendered flame summary")
	}
}
