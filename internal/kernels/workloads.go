package kernels

import (
	"fmt"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/workload"
)

// init registers every kernel in the workload registry, so any driver
// importing this package (cmd/cedarsim, cmd/cedard, the table
// generators) can run kernels by name. The short names are the paper's
// kernel mnemonics plus the two Perfect-code I/O workloads.
func init() {
	workload.Register(workload.New("rk",
		"rank-64 matrix update in Table 1's three memory modes (Params.Mode)",
		func(m *core.Machine, p workload.Params, _ workload.Attachments) (workload.Result, error) {
			n := p.Size
			if n == 0 {
				n = 128
			}
			return RunRank64(m, NewRank64Input(n), p)
		}))
	workload.Register(workload.New("vl",
		"vector load stream (Table 2 VL)",
		func(m *core.Machine, p workload.Params, _ workload.Attachments) (workload.Result, error) {
			return RunVectorLoad(m, p)
		}))
	workload.Register(workload.New("tm",
		"tridiagonal matrix-vector multiply (Table 2 TM)",
		func(m *core.Machine, p workload.Params, _ workload.Attachments) (workload.Result, error) {
			return RunTriMatVec(m, p)
		}))
	workload.Register(workload.New("cg",
		"conjugate-gradient solver on a 5-diagonal system (Table 2 CG, Section 4.3)",
		func(m *core.Machine, p workload.Params, att workload.Attachments) (workload.Result, error) {
			n := p.Size
			if n == 0 {
				n = m.NumCEs() * StripLen * 2
			}
			w := 64
			if n <= 2*w {
				w = 5
			}
			rt := cedarfort.New(m, cedarfort.DefaultConfig())
			if att.Phases != nil {
				rt.Phases = att.Phases
			}
			res, err := RunCG(m, rt, NewCGProblem(n, w), p)
			if err != nil {
				return workload.Result{}, err
			}
			r := res.Result
			r.Notes = append(r.Notes,
				fmt.Sprintf("CG residual after %d iterations: %.3e", res.Iterations, res.FinalResidual))
			return r, nil
		}))
	workload.Register(workload.New("bdna",
		"BDNA-style molecular dynamics: serial formatted trajectory writes between compute steps",
		RunBDNA))
	workload.Register(workload.New("mg3d",
		"MG3D-style seismic migration: per-cluster parallel raw trace reads before each compute step",
		RunMG3D))
}
