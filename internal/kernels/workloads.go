package kernels

import (
	"fmt"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/workload"
)

// init registers every kernel in the workload registry, so any driver
// importing this package (cmd/cedarsim, the table generators) can run
// kernels by name. The short names are the paper's kernel mnemonics
// plus the two Perfect-code I/O workloads.
func init() {
	workload.Register(workload.New("rk",
		"rank-64 matrix update in Table 1's three memory modes (Options.Mode)",
		func(m *core.Machine, o workload.Options) (workload.Result, error) {
			n := o.Size
			if n == 0 {
				n = 128
			}
			return RunRank64(m, NewRank64Input(n), o)
		}))
	workload.Register(workload.New("vl",
		"vector load stream (Table 2 VL)",
		RunVectorLoad))
	workload.Register(workload.New("tm",
		"tridiagonal matrix-vector multiply (Table 2 TM)",
		RunTriMatVec))
	workload.Register(workload.New("cg",
		"conjugate-gradient solver on a 5-diagonal system (Table 2 CG, Section 4.3)",
		func(m *core.Machine, o workload.Options) (workload.Result, error) {
			n := o.Size
			if n == 0 {
				n = m.NumCEs() * StripLen * 2
			}
			w := 64
			if n <= 2*w {
				w = 5
			}
			rt := cedarfort.New(m, cedarfort.DefaultConfig())
			if o.Phases != nil {
				rt.Phases = o.Phases
			}
			res, err := RunCG(m, rt, NewCGProblem(n, w), o)
			if err != nil {
				return workload.Result{}, err
			}
			r := res.Result
			r.Notes = append(r.Notes,
				fmt.Sprintf("CG residual after %d iterations: %.3e", res.Iterations, res.FinalResidual))
			return r, nil
		}))
	workload.Register(workload.New("bdna",
		"BDNA-style molecular dynamics: serial formatted trajectory writes between compute steps",
		RunBDNA))
	workload.Register(workload.New("mg3d",
		"MG3D-style seismic migration: per-cluster parallel raw trace reads before each compute step",
		RunMG3D))
}
