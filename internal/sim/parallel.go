package sim

// Cluster-parallel execution (ModeWakeCachedParallel, DESIGN.md §4.9).
//
// The machine's clusters interact only through the forward network,
// global memory and the reverse network, all of which tick after every
// cluster component in registration order. ConfigureParallel exploits
// that: a contiguous band of components (the clusters' CEs, PFUs and
// IPs) is split into per-cluster domains, each with its own wake
// sub-calendar, and every executed cycle runs as
//
//	phase 1  globals registered below the band (fault injector,
//	         rescheduler), on the coordinator
//	phase 2  every domain with due work — concurrently on a worker
//	         pool when the host has the cores, inline otherwise
//	phase 3  the remaining globals (networks, memory modules), on the
//	         coordinator, resuming the same merge-loop cursor
//
// Bit-identity with the sequential engine holds because the phases
// preserve the naive tick order exactly: phase boundaries coincide with
// registration-index boundaries, components within a domain tick in
// registration order, and components of different domains never touch
// shared state during phase 2 — the only cross-domain effects (offers
// into the forward network, program surrenders) are deferred by a
// Boundary and committed at the rendezvous before phase 3, where the
// sums and wake slots they produce are exactly the sequential ones.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// A Boundary owns state that components of different domains may both
// touch during phase 2. BeginConcurrent arms its deferred accounting
// before the domains fork; CommitConcurrent replays the buffered
// effects in a deterministic order at the rendezvous, before the
// post-band globals tick. Outside the Begin/Commit window the boundary
// behaves sequentially.
type Boundary interface {
	BeginConcurrent()
	CommitConcurrent()
}

// domainSched is one domain's private scheduling state: the same
// calendar-plus-due-ring structure the engine keeps globally, restricted
// to the domain's members. It is touched only by the goroutine currently
// running the domain (or the coordinator between phases).
type domainSched struct {
	cal     calendar
	curDue  []int
	nextDue []int

	nDormant int
	ticking  bool
	curIdx   int
}

// ConfigureParallel partitions the registered components for
// ModeWakeCachedParallel: domains lists each cluster's components (every
// one an IdleComponent), boundaries the shared structures needing
// deferred commits, and workers the goroutine budget for phase 2
// (<= 1, or a single-CPU host, runs domains inline; 0 selects
// min(NumCPU, len(domains))). The domain members must form one
// contiguous registration-index band with no global component inside
// it — that is what lets a cycle split into phases without reordering
// any tick. Call after SetMode(ModeWakeCachedParallel) and after all
// components are registered; the calendar is rebuilt with everything
// due at the current cycle, exactly as a mode switch does.
func (e *Engine) ConfigureParallel(domains [][]Handle, boundaries []Boundary, workers int) error {
	if e.mode != ModeWakeCachedParallel {
		return fmt.Errorf("sim: ConfigureParallel in mode %v (want %v)", e.mode, ModeWakeCachedParallel)
	}
	if len(domains) == 0 {
		return fmt.Errorf("sim: ConfigureParallel with no domains")
	}
	domainOf := make([]int32, len(e.comps))
	for i := range domainOf {
		domainOf[i] = -1
	}
	lo, hi, members := len(e.comps), -1, 0
	for d, dom := range domains {
		for _, h := range dom {
			if h.eng == nil {
				return fmt.Errorf("sim: domain %d contains a zero Handle", d)
			}
			if h.eng != e {
				return fmt.Errorf("sim: domain %d contains a Handle from a different engine", d)
			}
			i := h.idx
			if e.idle[i] == nil {
				return fmt.Errorf("sim: domain %d member %q is not an IdleComponent", d, e.names[i])
			}
			if domainOf[i] >= 0 {
				return fmt.Errorf("sim: component %q assigned to domains %d and %d", e.names[i], domainOf[i], d)
			}
			domainOf[i] = int32(d)
			members++
			if i < lo {
				lo = i
			}
			if i > hi {
				hi = i
			}
		}
	}
	if members == 0 {
		return fmt.Errorf("sim: ConfigureParallel with empty domains")
	}
	if members != hi-lo+1 {
		for i := lo; i <= hi; i++ {
			if domainOf[i] < 0 {
				return fmt.Errorf("sim: component %q (index %d) splits the domain band [%d,%d]", e.names[i], i, lo, hi)
			}
		}
	}
	e.domainOf = domainOf
	e.bandStart, e.bandEnd = lo, hi+1
	e.dscheds = make([]domainSched, len(domains))
	for d := range e.dscheds {
		ds := &e.dscheds[d]
		ds.curIdx = -1
		for range e.comps {
			ds.cal.grow()
		}
	}
	e.boundaries = append([]Boundary(nil), boundaries...)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(domains) {
		workers = len(domains)
	}
	e.StopWorkers()
	if workers > 1 && runtime.GOMAXPROCS(0) > 1 {
		e.pool = newParPool(e, workers)
	}
	// Re-seed from fully settled state, exactly as SetMode does: every
	// idle component due at the current cycle, in its own calendar.
	e.Settle()
	for i := range e.dormant {
		e.dormant[i] = false
	}
	e.nDormant = 0
	e.rebuild()
	return nil
}

// StopWorkers terminates the phase-2 worker pool, if any; subsequent
// parallel cycles run their domains inline (bit-identically). It exists
// so benchmarks and long-lived hosts can release the goroutines; tests
// that build many machines may simply let parked workers idle.
func (e *Engine) StopWorkers() {
	if e.pool != nil {
		e.pool.stopAll()
		e.pool = nil
	}
}

// advanceParallel executes the cycle at e.now in the three-phase order
// described at the top of the file, then advances time — by one cycle,
// or in a jump to the earliest entry across every calendar when nothing
// ticked anywhere.
func (e *Engine) advanceParallel(limit Cycle) {
	e.maybeSample()
	now := e.now
	nd := e.nDormant
	for d := range e.dscheds {
		nd += e.dscheds[d].nDormant
	}
	e.DormantSkips += int64(nd)
	e.curDue, e.nextDue = e.nextDue, e.curDue[:0]
	e.ticking = true
	e.curIdx = -1
	e.gAi, e.gDi = 0, 0
	nTicked := 0

	e.phase = 1
	nTicked += e.runGlobals(now, e.bandStart)

	// Domains with work due this cycle: a due-ring entry pinned for now,
	// or a calendar entry that has arrived (including wakes phase 1 just
	// issued). The rest cost nothing.
	act := e.activeDoms[:0]
	for d := range e.dscheds {
		ds := &e.dscheds[d]
		if len(ds.nextDue) > 0 || (!ds.cal.empty() && ds.cal.minAt() <= now) {
			act = append(act, d)
		}
	}
	e.activeDoms = act
	e.phase = 2
	if len(act) > 0 {
		for _, b := range e.boundaries {
			b.BeginConcurrent()
		}
		if e.pool != nil && len(act) > 1 {
			nTicked += e.pool.runCycle(now, act)
		} else {
			for _, d := range act {
				nTicked += e.runDomain(&e.dscheds[d], now)
			}
		}
		// Rendezvous: replay deferred boundary effects. Sequentially these
		// happened during some band member's tick, so pin the cursor to
		// the last band index: a commit-time wake of a post-band component
		// (the forward network) lands at this cycle and one of a pre-band
		// component (the rescheduler) at the next — exactly the slots the
		// in-band waker would have produced.
		e.curIdx = e.bandEnd - 1
		for _, b := range e.boundaries {
			b.CommitConcurrent()
		}
	}

	e.phase = 3
	nTicked += e.runGlobals(now, len(e.comps))
	e.phase = 0
	e.curIdx = -1
	e.ticking = false
	e.SkippedTicks += int64(len(e.comps) - nTicked)
	if nTicked == 0 {
		target := Never
		if len(e.nextDue) > 0 {
			target = now + 1
		} else if !e.cal.empty() {
			target = e.cal.minAt()
		}
		for d := range e.dscheds {
			ds := &e.dscheds[d]
			if len(ds.nextDue) > 0 {
				target = now + 1
			} else if !ds.cal.empty() && ds.cal.minAt() < target {
				target = ds.cal.minAt()
			}
		}
		if target > limit {
			target = limit
		}
		if target > e.nextSample {
			target = e.nextSample
		}
		if target > now+1 {
			e.FastForwarded += int64(target - now - 1)
			e.now = target
			return
		}
	}
	e.now++
}

// runGlobals advances the global merge loop over candidates with
// registration index below bound, resuming from the cursors the
// previous call left. Identical to the sequential loop minus the
// quiescent never list (the parallel mode always uses dormancy).
func (e *Engine) runGlobals(now Cycle, bound int) int {
	n := 0
	for {
		idx := -1
		src := srcAlways
		if e.gAi < len(e.always) && e.always[e.gAi] < bound {
			idx = e.always[e.gAi]
		}
		if e.gDi < len(e.curDue) && e.curDue[e.gDi] < bound && (idx < 0 || e.curDue[e.gDi] < idx) {
			idx, src = e.curDue[e.gDi], srcDue
		}
		if !e.cal.empty() && e.cal.minAt() <= now && e.cal.minIdx() < bound {
			// The heap orders by (cycle, index) and no entry is ever left
			// due from a previous cycle, so a min at or past bound means
			// every due entry is past it.
			if j := e.cal.minIdx(); idx < 0 || j < idx {
				idx, src = j, srcCal
			}
		}
		if idx < 0 {
			return n
		}
		switch src {
		case srcAlways:
			e.gAi++
		case srcDue:
			e.gDi++
		case srcCal:
			e.cal.popMin()
		}
		e.curIdx = idx
		if src != srcAlways {
			ne := e.idle[idx].NextEvent(now)
			if ne > now {
				if ne == Never {
					e.dormant[idx] = true
					e.nDormant++
				} else if ne == now+1 {
					e.nextDue = append(e.nextDue, idx)
				} else {
					e.cal.push(idx, ne)
				}
				continue
			}
			e.nextDue = append(e.nextDue, idx)
		}
		if sa := e.skip[idx]; sa != nil && e.lastTick[idx]+1 < now {
			sa.SkipCycles(e.lastTick[idx]+1, now)
		}
		e.lastTick[idx] = now
		e.comps[idx].Tick(now)
		n++
	}
}

// runDomain advances one domain's merge loop through the cycle at now.
// It runs on whichever goroutine owns the domain this cycle and touches
// only the domain's sub-calendar plus the per-component slots
// (dormant/lastTick/skip) of its own members, so concurrent domains
// never share a written cache line beyond the slice headers.
func (e *Engine) runDomain(ds *domainSched, now Cycle) int {
	ds.curDue, ds.nextDue = ds.nextDue, ds.curDue[:0]
	ds.ticking = true
	ds.curIdx = -1
	di := 0
	n := 0
	for {
		idx := -1
		src := srcDue
		if di < len(ds.curDue) {
			idx = ds.curDue[di]
		}
		if !ds.cal.empty() && ds.cal.minAt() <= now {
			if j := ds.cal.minIdx(); idx < 0 || j < idx {
				idx, src = j, srcCal
			}
		}
		if idx < 0 {
			break
		}
		if src == srcDue {
			di++
		} else {
			ds.cal.popMin()
		}
		ds.curIdx = idx
		ne := e.idle[idx].NextEvent(now)
		if ne > now {
			if ne == Never {
				e.dormant[idx] = true
				ds.nDormant++
			} else if ne == now+1 {
				ds.nextDue = append(ds.nextDue, idx)
			} else {
				ds.cal.push(idx, ne)
			}
			continue
		}
		ds.nextDue = append(ds.nextDue, idx)
		if sa := e.skip[idx]; sa != nil && e.lastTick[idx]+1 < now {
			sa.SkipCycles(e.lastTick[idx]+1, now)
		}
		e.lastTick[idx] = now
		e.comps[idx].Tick(now)
		n++
	}
	ds.curIdx = -1
	ds.ticking = false
	return n
}

// wakeDomain is the wake path for a component whose calendar entry
// lives in a domain sub-calendar. The slot mirrors wakeSlot: while the
// domain's own merge loop runs (a same-domain waker during phase 2) the
// loop cursor decides; from the coordinator, phase 3 means every domain
// slot this cycle has passed, while phase 1 and host code between
// advances still reach this cycle's slot.
func (e *Engine) wakeDomain(ds *domainSched, i int) {
	at := e.now
	if ds.ticking {
		if i <= ds.curIdx {
			at = e.now + 1
		}
	} else if e.phase == 3 {
		at = e.now + 1
	}
	if e.dormant[i] {
		e.dormant[i] = false
		ds.nDormant--
		ds.cal.push(i, at)
		return
	}
	if ds.cal.contains(i) {
		ds.cal.moveEarlier(i, at)
	}
}

// WakeAsync is the goroutine-safe form of Wake: it may be called from
// any goroutine (a completion callback on an OS thread, a boundary
// worker) at any time. The wake is buffered and delivered at the start
// of the engine's next advance, in handle-index order — the earliest
// point the sequential engine could observe an external stimulus that
// arrived between cycles — so a run's outcome is a deterministic
// function of which advance each async wake precedes. The zero Handle
// is inert; a Handle from another engine panics, as with Wake.
func (e *Engine) WakeAsync(h Handle) {
	if h.eng == nil {
		return
	}
	if h.eng != e {
		panic("sim: WakeAsync with a Handle from a different engine")
	}
	e.pendingMu.Lock()
	e.pendingWake = append(e.pendingWake, h.idx)
	e.hasPending.Store(true)
	e.pendingMu.Unlock()
}

// drainAsyncWakes delivers buffered WakeAsync calls in handle-index
// order. Runs on the engine goroutine before the cycle's sampling and
// merge loops, where Wake's between-cycles semantics apply.
func (e *Engine) drainAsyncWakes() {
	e.pendingMu.Lock()
	pend := e.pendingWake
	e.pendingWake = nil
	e.hasPending.Store(false)
	e.pendingMu.Unlock()
	sort.Ints(pend)
	for _, i := range pend {
		e.wake(i)
	}
}

// parJob is one cycle's unit of pool work, published whole through an
// atomic pointer so it is immutable once visible. Workers claim active
// domains off the job's cursor and count themselves done per domain. A
// straggler still holding last cycle's job after the coordinator moved
// on can only bump that job's exhausted claim counter and read its
// slice header — the join guarantees every claim below the length was
// already completed — so it can never touch the next cycle's state.
type parJob struct {
	now    Cycle
	active []int
	claim  atomic.Int64
	done   atomic.Int64
	ticked atomic.Int64
}

// parPool is the persistent phase-2 worker pool. Between cycles workers
// spin briefly (the next executed cycle is usually microseconds away)
// and then park on a channel, so an engine mid-fast-forward or a
// finished run costs no host CPU. The job pointer carries the
// happens-before edges: everything the coordinator wrote before
// publishing the job is visible to a worker that loads it, and
// everything workers wrote is visible to the coordinator once the
// job's done count reaches its active-domain count.
type parPool struct {
	e *Engine

	job     atomic.Pointer[parJob]
	stop    atomic.Bool
	nParked atomic.Int64
	unpark  chan struct{}

	panicMu sync.Mutex
	panicV  any

	workers int
}

func newParPool(e *Engine, workers int) *parPool {
	p := &parPool{e: e, workers: workers, unpark: make(chan struct{}, workers)}
	for w := 1; w < workers; w++ {
		go p.workerLoop()
	}
	return p
}

// runCycle executes the active domains for cycle now across the pool
// (the coordinator participates) and returns the total ticks.
func (p *parPool) runCycle(now Cycle, active []int) int {
	j := &parJob{now: now, active: active}
	p.job.Store(j)
	if n := p.nParked.Load(); n > 0 {
		for i := int64(0); i < n; i++ {
			select {
			case p.unpark <- struct{}{}:
			default:
			}
		}
	}
	p.work(j)
	for j.done.Load() < int64(len(active)) {
		runtime.Gosched()
	}
	p.panicMu.Lock()
	v := p.panicV
	p.panicV = nil
	p.panicMu.Unlock()
	if v != nil {
		panic(v)
	}
	return int(j.ticked.Load())
}

// work claims and runs domains until the job is exhausted.
func (p *parPool) work(j *parJob) {
	for {
		d := j.claim.Add(1) - 1
		if d >= int64(len(j.active)) {
			return
		}
		p.runOne(j, int(d))
	}
}

// runOne runs one claimed domain, capturing a panic for rethrow on the
// coordinator so the done count always advances and the join cannot
// hang.
func (p *parPool) runOne(j *parJob, d int) {
	defer j.done.Add(1)
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicV == nil {
				p.panicV = r
			}
			p.panicMu.Unlock()
		}
	}()
	n := p.e.runDomain(&p.e.dscheds[j.active[d]], j.now)
	j.ticked.Add(int64(n))
}

// workerLoop is the persistent body of one extra worker goroutine.
const parSpinBudget = 256

func (p *parPool) workerLoop() {
	var last *parJob
	spins := 0
	for {
		if p.stop.Load() {
			return
		}
		j := p.job.Load()
		if j != nil && j != last {
			last = j
			p.work(j)
			spins = 0
			continue
		}
		spins++
		if spins < parSpinBudget {
			runtime.Gosched()
			continue
		}
		// Park. The coordinator reads nParked after publishing the job, so
		// either it sees this worker and sends a token, or the worker's
		// re-check below sees the new job. A token sent for a worker
		// that un-parked itself stays buffered and only causes a spurious
		// (harmless) wake later.
		p.nParked.Add(1)
		if p.job.Load() != last || p.stop.Load() {
			select {
			case <-p.unpark:
			default:
			}
			p.nParked.Add(-1)
			continue
		}
		<-p.unpark
		p.nParked.Add(-1)
		spins = 0
	}
}

// stopAll terminates the worker goroutines; parked workers are fed
// tokens so none is left blocked.
func (p *parPool) stopAll() {
	p.stop.Store(true)
	for i := 0; i < p.workers; i++ {
		select {
		case p.unpark <- struct{}{}:
		default:
		}
	}
}
