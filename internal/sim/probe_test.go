package sim

import "testing"

// recProbe records the cycles at which the engine delivered samples.
type recProbe struct {
	every Cycle
	got   []Cycle
}

func (p *recProbe) NextSample(now Cycle) Cycle {
	if now <= 0 {
		return 0
	}
	return ((now + p.every - 1) / p.every) * p.every
}

func (p *recProbe) SampleNow(now Cycle) { p.got = append(p.got, now) }

// napper is idle until wake, then ticks forever.
type napper struct {
	wake  Cycle
	ticks []Cycle
}

func (s *napper) Tick(now Cycle)            { s.ticks = append(s.ticks, now) }
func (s *napper) NextEvent(now Cycle) Cycle { return s.wake }

// TestProbelessEngineStillJumps guards the probe plumbing's default: an
// engine with no probe installed must fast-forward a quiet span in one
// jump, not be clamped by an uninitialized sample boundary.
func TestProbelessEngineStillJumps(t *testing.T) {
	e := New()
	s := &napper{wake: 1000}
	e.Register("s", s)
	e.Run(1000)
	if e.FastForwarded != 999 {
		t.Fatalf("FastForwarded = %d, want 999 (single jump over the quiet span)", e.FastForwarded)
	}
	if len(s.ticks) != 0 {
		t.Fatalf("napper ticked %d times before its wake cycle", len(s.ticks))
	}
}

// TestProbeBoundariesInsideJump: with a probe installed the engine lands
// on every sample boundary inside a fast-forwarded span, delivers the
// sample, and still never ticks the idle component.
func TestProbeBoundariesInsideJump(t *testing.T) {
	e := New()
	s := &napper{wake: 95}
	e.Register("s", s)
	p := &recProbe{every: 10}
	e.SetProbe(p)
	e.Run(100)
	want := []Cycle{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	if len(p.got) != len(want) {
		t.Fatalf("samples at %v, want %v", p.got, want)
	}
	for i := range want {
		if p.got[i] != want[i] {
			t.Fatalf("samples at %v, want %v", p.got, want)
		}
	}
	if len(s.ticks) == 0 || s.ticks[0] != 95 {
		t.Fatalf("napper first tick = %v, want wake at 95", s.ticks)
	}
}

// TestJumpLandsExactlyOnSampleBoundary: when the calendar's minimum
// coincides with a probe sample boundary, the jump must land there once —
// delivering the sample AND ticking the due component at that cycle, with
// no duplicate sample and no overshoot.
func TestJumpLandsExactlyOnSampleBoundary(t *testing.T) {
	e := New()
	s := &napper{wake: 90}
	e.Register("s", s)
	p := &recProbe{every: 30}
	e.SetProbe(p)
	e.Run(100)
	wantSamples := []Cycle{0, 30, 60, 90}
	if len(p.got) != len(wantSamples) {
		t.Fatalf("samples at %v, want %v", p.got, wantSamples)
	}
	for i := range wantSamples {
		if p.got[i] != wantSamples[i] {
			t.Fatalf("samples at %v, want %v", p.got, wantSamples)
		}
	}
	if len(s.ticks) == 0 || s.ticks[0] != 90 {
		t.Fatalf("napper first tick = %v, want exactly the boundary cycle 90", s.ticks)
	}
	// Three jumps (0→30, 30→60, 60→90), each eliding 29 quiet cycles.
	if e.FastForwarded != 87 {
		t.Fatalf("FastForwarded = %d, want 87 (three 29-cycle jumps landing on boundaries)", e.FastForwarded)
	}
}

// TestSetProbeNilRestoresJumps: removing the probe restores unclamped
// fast-forwarding.
func TestSetProbeNilRestoresJumps(t *testing.T) {
	e := New()
	s := &napper{wake: Never}
	e.Register("s", s)
	e.SetProbe(&recProbe{every: 10})
	e.SetProbe(nil)
	e.Run(500)
	if e.FastForwarded != 499 {
		t.Fatalf("FastForwarded = %d, want 499 after probe removal", e.FastForwarded)
	}
}

// TestNaiveSettleIsNoop: the naive path never defers skip accounting, so
// Settle must not invent SkipCycles credit there.
func TestNaiveSettleIsNoop(t *testing.T) {
	e := New()
	e.SetQuiescence(false)
	c := &skipCounter{}
	e.Register("c", c)
	e.Run(50)
	e.Settle()
	if c.skipped != 0 {
		t.Fatalf("naive-path Settle credited %d skipped cycles", c.skipped)
	}
	if c.ticks != 50 {
		t.Fatalf("naive path ticked %d cycles, want 50", c.ticks)
	}
}

type skipCounter struct {
	ticks   int64
	skipped int64
}

func (c *skipCounter) Tick(now Cycle)            { c.ticks++ }
func (c *skipCounter) NextEvent(now Cycle) Cycle { return Never }
func (c *skipCounter) SkipCycles(from, to Cycle) { c.skipped += int64(to - from) }
