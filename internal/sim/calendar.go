package sim

// calendar is the engine's wake calendar: an indexed binary min-heap of
// registered components keyed by (due cycle, registration index). The
// index tie-break is load-bearing — components due the same cycle must
// be processed in registration order so tick order stays bit-identical
// to the naive scan — and the position index makes moveEarlier (the
// Wake-reschedule used when external stimulus invalidates a future
// NextEvent answer) O(log n) instead of a linear search.
//
// Entries are component indices; the at/pos arrays are parallel to the
// engine's component slice and grown at Register time, so scheduling a
// component never allocates on the per-cycle path.
type calendar struct {
	heap []int   // component indices, heap-ordered by less()
	at   []Cycle // per component: due cycle (valid while pos[i] >= 0)
	pos  []int   // per component: position in heap, -1 when not scheduled
}

// grow extends the parallel arrays for one newly registered component.
func (c *calendar) grow() {
	c.at = append(c.at, 0)
	c.pos = append(c.pos, -1)
}

func (c *calendar) empty() bool { return len(c.heap) == 0 }

// contains reports whether component i currently has a calendar entry.
func (c *calendar) contains(i int) bool { return c.pos[i] >= 0 }

// minIdx returns the component index of the earliest entry; minAt its
// due cycle. Both require a non-empty calendar.
func (c *calendar) minIdx() int  { return c.heap[0] }
func (c *calendar) minAt() Cycle { return c.at[c.heap[0]] }

// less orders heap entries by due cycle, ties broken by registration
// index (the engine's deterministic tick order).
func (c *calendar) less(a, b int) bool {
	return c.at[a] < c.at[b] || (c.at[a] == c.at[b] && a < b)
}

// push schedules component i at cycle t. The component must not already
// be scheduled.
func (c *calendar) push(i int, t Cycle) {
	if c.pos[i] >= 0 {
		panic("sim: calendar push of an already scheduled component")
	}
	c.at[i] = t
	c.pos[i] = len(c.heap)
	c.heap = append(c.heap, i)
	c.siftUp(len(c.heap) - 1)
}

// popMin removes and returns the earliest entry's component index.
func (c *calendar) popMin() int {
	i := c.heap[0]
	c.pos[i] = -1
	last := len(c.heap) - 1
	if last > 0 {
		c.heap[0] = c.heap[last]
		c.pos[c.heap[0]] = 0
	}
	c.heap = c.heap[:last]
	if last > 0 {
		c.siftDown(0)
	}
	return i
}

// moveEarlier reschedules component i to cycle t if t is earlier than
// its current entry; a later t is ignored (a Wake may never delay an
// already scheduled event). The component must be scheduled.
func (c *calendar) moveEarlier(i int, t Cycle) {
	if t >= c.at[i] {
		return
	}
	c.at[i] = t
	c.siftUp(c.pos[i])
}

// reset removes every entry.
func (c *calendar) reset() {
	for _, i := range c.heap {
		c.pos[i] = -1
	}
	c.heap = c.heap[:0]
}

func (c *calendar) siftUp(p int) {
	for p > 0 {
		parent := (p - 1) / 2
		if !c.less(c.heap[p], c.heap[parent]) {
			return
		}
		c.swap(p, parent)
		p = parent
	}
}

func (c *calendar) siftDown(p int) {
	n := len(c.heap)
	for {
		l, r := 2*p+1, 2*p+2
		min := p
		if l < n && c.less(c.heap[l], c.heap[min]) {
			min = l
		}
		if r < n && c.less(c.heap[r], c.heap[min]) {
			min = r
		}
		if min == p {
			return
		}
		c.swap(p, min)
		p = min
	}
}

func (c *calendar) swap(a, b int) {
	c.heap[a], c.heap[b] = c.heap[b], c.heap[a]
	c.pos[c.heap[a]] = a
	c.pos[c.heap[b]] = b
}
