package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestDeadlineNamesExactParkedSet forces a missed wake — stimulus arrives
// without the matching Wake call — and asserts the deadline error lists
// exactly the parked components, in registration order, so the diagnosis
// points at the right stimulus entry point.
func TestDeadlineNamesExactParkedSet(t *testing.T) {
	e := New()
	bells := []*doorbell{{}, {}, {}}
	names := []string{"cluster0/ce0", "cluster0/pfu0", "cluster1/ce0"}
	for i, d := range bells {
		e.Register(names[i], d)
	}
	e.Run(10) // all three park (NextEvent = Never)
	// The forced missed wake: stimulate the middle component directly,
	// bypassing Ring's Wake. The naive engine would tick it next cycle;
	// the wake-cached engine can never observe it again.
	bells[1].pending++
	_, err := e.RunUntil(func() bool { return bells[1].pending == 0 }, 100)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if len(bells[1].ticksAt) != 0 {
		t.Fatalf("stranded component ticked at %v; the wake was supposed to be missed", bells[1].ticksAt)
	}
	// The error must list the actually-parked set — all three components,
	// in registration order — not a subset and not extras.
	want := "dormant components awaiting Wake: " + strings.Join(names, ", ")
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("deadline error %q does not list the exact parked set %q", err, want)
	}
}

// sickly is a FaultReporter test double: always ticking (never parks),
// reporting a fault reason once set.
type sickly struct {
	reason string
}

func (s *sickly) Tick(Cycle) {}

func (s *sickly) FaultReason() string { return s.reason }

func TestDeadlineReportsFaultReasons(t *testing.T) {
	e := New()
	sick := &sickly{reason: "request for word 0x2a0 unanswered after 4 reissues"}
	well := &sickly{}
	e.Register("pfu3", sick)
	e.Register("pfu4", well)
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !strings.Contains(err.Error(), "pfu3: request for word 0x2a0 unanswered after 4 reissues") {
		t.Fatalf("deadline error %q does not name the faulted component and pending request", err)
	}
	if strings.Contains(err.Error(), "pfu4") {
		t.Fatalf("deadline error %q names the healthy component", err)
	}
}

// TestDeadlineFaultAndDormantCompose checks both diagnostics appear when a
// fault strands the machine with other components parked.
func TestDeadlineFaultAndDormantCompose(t *testing.T) {
	e := New()
	d := &doorbell{}
	e.Register("bell", d)
	// A faulted component that also parks: models an exhausted retrier
	// with nothing left scheduled.
	sick := &parkedSick{reason: "gave up"}
	e.Register("unit", sick)
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "awaiting Wake") || !strings.Contains(msg, "unit: gave up") {
		t.Fatalf("deadline error %q missing dormant or fault detail", err)
	}
}

type parkedSick struct{ reason string }

func (p *parkedSick) Tick(Cycle) {}

func (p *parkedSick) NextEvent(Cycle) Cycle { return Never }

func (p *parkedSick) FaultReason() string { return p.reason }

// schedState captures every piece of engine scheduling state the error
// path could possibly perturb.
type schedState struct {
	now                 Cycle
	skipped, ffwd, dorm int64
	dormant             []bool
	nDormant            int
	calHeap             []int
	calAt               []Cycle
	never, nextDue      []int
	lastTick            []Cycle
}

func snapshot(e *Engine) schedState {
	s := schedState{
		now: e.now, skipped: e.SkippedTicks, ffwd: e.FastForwarded, dorm: e.DormantSkips,
		nDormant: e.nDormant,
		dormant:  append([]bool(nil), e.dormant...),
		calHeap:  append([]int(nil), e.cal.heap...),
		never:    append([]int(nil), e.never...),
		nextDue:  append([]int(nil), e.nextDue...),
		lastTick: append([]Cycle(nil), e.lastTick...),
	}
	for _, i := range e.cal.heap {
		s.calAt = append(s.calAt, e.cal.at[i])
	}
	return s
}

// TestFailedRunUntilLeavesStateIntact pins the error path's contract: a
// RunUntil that times out must leave the engine bit-identical to a plain
// Run over the same span — in particular the deadline diagnosis must not
// re-query NextEvent, reinsert calendar entries, or disturb dormancy.
func TestFailedRunUntilLeavesStateIntact(t *testing.T) {
	for _, mode := range []EngineMode{ModeWakeCached, ModeQuiescent} {
		build := func() (*Engine, []*doorbell, *alarm) {
			e := New()
			e.SetMode(mode)
			bells := []*doorbell{{}, {}}
			e.Register("bell0", bells[0])
			a := &alarm{at: 30}
			e.Register("alarm", a)
			e.Register("bell1", bells[1])
			return e, bells, a
		}
		ref, refBells, _ := build()
		ref.Run(50)
		got, gotBells, _ := build()
		if _, err := got.RunUntil(func() bool { return false }, 50); !errors.Is(err, ErrDeadline) {
			t.Fatalf("mode %v: err = %v, want ErrDeadline", mode, err)
		}
		want, have := snapshot(ref), snapshot(got)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("mode %v: failed RunUntil perturbed engine state\n run: %+v\nuntil: %+v", mode, want, have)
		}
		for i := range refBells {
			if refBells[i].queries != gotBells[i].queries {
				t.Fatalf("mode %v: bell%d queried %d times via RunUntil, %d via Run — error path re-queried NextEvent",
					mode, i, gotBells[i].queries, refBells[i].queries)
			}
		}
		// The engine must remain fully usable: a Wake after the failed
		// RunUntil revives the component exactly as usual.
		gotBells[0].Ring()
		got.Run(10)
		if ta := gotBells[0].ticksAt; len(ta) != 1 || ta[0] != 50 {
			t.Fatalf("mode %v: bell0 ticked at %v after post-deadline Wake, want [50]", mode, ta)
		}
	}
}
