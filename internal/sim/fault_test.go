package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestDeadlineNamesExactParkedSet forces a missed wake — stimulus arrives
// without the matching Wake call — and asserts the deadline error lists
// exactly the parked components, in registration order, so the diagnosis
// points at the right stimulus entry point.
func TestDeadlineNamesExactParkedSet(t *testing.T) {
	e := New()
	bells := []*doorbell{{}, {}, {}}
	names := []string{"cluster0/ce0", "cluster0/pfu0", "cluster1/ce0"}
	for i, d := range bells {
		e.Register(names[i], d)
	}
	e.Run(10) // all three park (NextEvent = Never)
	// The forced missed wake: stimulate the middle component directly,
	// bypassing Ring's Wake. The naive engine would tick it next cycle;
	// the wake-cached engine can never observe it again.
	bells[1].pending++
	_, err := e.RunUntil(func() bool { return bells[1].pending == 0 }, 100)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if len(bells[1].ticksAt) != 0 {
		t.Fatalf("stranded component ticked at %v; the wake was supposed to be missed", bells[1].ticksAt)
	}
	// The error must list the actually-parked set — all three components,
	// in registration order — not a subset and not extras.
	want := "dormant components awaiting Wake: " + strings.Join(names, ", ")
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("deadline error %q does not list the exact parked set %q", err, want)
	}
}

// sickly is a FaultReporter test double: always ticking (never parks),
// reporting a fault reason once set.
type sickly struct {
	reason string
}

func (s *sickly) Tick(Cycle) {}

func (s *sickly) FaultReason() string { return s.reason }

func TestDeadlineReportsFaultReasons(t *testing.T) {
	e := New()
	sick := &sickly{reason: "request for word 0x2a0 unanswered after 4 reissues"}
	well := &sickly{}
	e.Register("pfu3", sick)
	e.Register("pfu4", well)
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !strings.Contains(err.Error(), "pfu3: request for word 0x2a0 unanswered after 4 reissues") {
		t.Fatalf("deadline error %q does not name the faulted component and pending request", err)
	}
	if strings.Contains(err.Error(), "pfu4") {
		t.Fatalf("deadline error %q names the healthy component", err)
	}
}

// TestDeadlineFaultAndDormantCompose checks both diagnostics appear when a
// fault strands the machine with other components parked.
func TestDeadlineFaultAndDormantCompose(t *testing.T) {
	e := New()
	d := &doorbell{}
	e.Register("bell", d)
	// A faulted component that also parks: models an exhausted retrier
	// with nothing left scheduled.
	sick := &parkedSick{reason: "gave up"}
	e.Register("unit", sick)
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "awaiting Wake") || !strings.Contains(msg, "unit: gave up") {
		t.Fatalf("deadline error %q missing dormant or fault detail", err)
	}
}

type parkedSick struct{ reason string }

func (p *parkedSick) Tick(Cycle) {}

func (p *parkedSick) NextEvent(Cycle) Cycle { return Never }

func (p *parkedSick) FaultReason() string { return p.reason }
