package sim

import (
	"errors"
	"strings"
	"testing"
)

// doorbell is the canonical wake-API client: fully passive until Ring
// delivers external stimulus, which wakes its engine handle. It counts
// NextEvent queries so tests can assert Never was cached.
type doorbell struct {
	waker   Waker
	pending int
	ticksAt []Cycle
	queries int
}

func (d *doorbell) AttachWaker(w Waker) { d.waker = w }

func (d *doorbell) Ring() {
	d.pending++
	if d.waker != nil {
		d.waker.Wake()
	}
}

func (d *doorbell) NextEvent(now Cycle) Cycle {
	d.queries++
	if d.pending > 0 {
		return now
	}
	return Never
}

func (d *doorbell) Tick(now Cycle) {
	if d.pending > 0 {
		d.pending--
		d.ticksAt = append(d.ticksAt, now)
	}
}

func TestDormantComponentQueriedOnce(t *testing.T) {
	e := New()
	if e.Mode() != ModeWakeCached {
		t.Fatalf("new engine mode = %v, want wake-cached default", e.Mode())
	}
	d := &doorbell{}
	e.Register("bell", d)
	// A plain component keeps every cycle executing, so the dormant bell
	// would be re-queried 100 times without caching.
	e.Register("busy", ComponentFunc(func(Cycle) {}))
	e.Run(100)
	if d.queries != 1 {
		t.Fatalf("dormant component queried %d times over 100 executed cycles, want 1", d.queries)
	}
	if e.DormantSkips != 99 {
		t.Fatalf("DormantSkips = %d, want 99", e.DormantSkips)
	}
}

func TestQuiescentModeRequeriesNever(t *testing.T) {
	e := New()
	e.SetMode(ModeQuiescent)
	d := &doorbell{}
	e.Register("bell", d)
	e.Register("busy", ComponentFunc(func(Cycle) {}))
	e.Run(100)
	if d.queries != 100 {
		t.Fatalf("quiescent mode queried %d times, want one per executed cycle (100)", d.queries)
	}
	if e.DormantSkips != 0 {
		t.Fatalf("DormantSkips = %d on the quiescent path, want 0", e.DormantSkips)
	}
}

func TestWakeRevivesDormantComponent(t *testing.T) {
	for _, mode := range []EngineMode{ModeWakeCached, ModeQuiescent, ModeNaive} {
		e := New()
		e.SetMode(mode)
		d := &doorbell{}
		e.Register("bell", d)
		e.Register("busy", ComponentFunc(func(Cycle) {}))
		e.Run(50) // bell dormant from cycle 0
		d.Ring()  // external stimulus between cycles
		e.Run(50)
		if len(d.ticksAt) != 1 || d.ticksAt[0] != 50 {
			t.Fatalf("mode %v: bell ticked at %v, want exactly [50]", mode, d.ticksAt)
		}
	}
}

// ringer rings a doorbell during its own tick at a fixed cycle,
// modelling stimulus generated mid-cycle by another component.
type ringer struct {
	at   Cycle
	bell *doorbell
}

func (r *ringer) Tick(now Cycle) {
	if now == r.at {
		r.bell.Ring()
	}
}

func TestMidCycleWakeOrderingMatchesNaive(t *testing.T) {
	// A wake from an earlier tick slot reaches the woken component's own
	// slot in the same cycle; a wake from a later slot lands next cycle.
	// Both must agree with the naive engine exactly.
	for _, bellFirst := range []bool{false, true} {
		var ticksAt [][]Cycle
		for _, mode := range []EngineMode{ModeWakeCached, ModeQuiescent, ModeNaive} {
			e := New()
			e.SetMode(mode)
			d := &doorbell{}
			r := &ringer{at: 10, bell: d}
			if bellFirst {
				e.Register("bell", d)
				e.Register("ringer", r)
			} else {
				e.Register("ringer", r)
				e.Register("bell", d)
			}
			e.Run(20)
			ticksAt = append(ticksAt, d.ticksAt)
		}
		want := Cycle(10) // ringer earlier in order: same cycle
		if bellFirst {
			want = 11 // ringer later in order: next cycle
		}
		for i, ta := range ticksAt {
			if len(ta) != 1 || ta[0] != want {
				t.Fatalf("bellFirst=%v: mode #%d ticked at %v, want [%d] (all: %v)",
					bellFirst, i, ta, want, ticksAt)
			}
		}
	}
}

func TestRegisterReturnsUsableHandle(t *testing.T) {
	e := New()
	d := &doorbell{} // AttachWaker gives d its own handle, but use ours
	h := e.Register("bell", d)
	e.Register("busy", ComponentFunc(func(Cycle) {}))
	e.Run(10)
	d.pending++ // stimulate without the component's own waker
	e.Wake(h)
	e.Run(10)
	if len(d.ticksAt) != 1 || d.ticksAt[0] != 10 {
		t.Fatalf("bell ticked at %v after Engine.Wake, want [10]", d.ticksAt)
	}
}

func TestZeroHandleWakeIsNoOp(t *testing.T) {
	var h Handle
	h.Wake() // must not panic: unregistered unit-test components hold one
}

func TestEngineWakeZeroHandleIsNoOp(t *testing.T) {
	// The Handle docs declare the zero value valid and inert; Engine.Wake
	// must honor that too, not mistake nil for a foreign engine.
	e := New()
	e.Register("busy", ComponentFunc(func(Cycle) {}))
	e.Wake(Handle{}) // must not panic
	e.Run(1)
}

// deferral models the IP.Submit hazard: a component holding a far-future
// completion whose answer is invalidated by an earlier request arriving
// mid-run. Submit wakes the component, which must pull its calendar
// entry forward — sleeping to the stale answer would diverge from naive.
type deferral struct {
	waker   Waker
	doneAt  Cycle
	ticksAt []Cycle
}

func (f *deferral) AttachWaker(w Waker) { f.waker = w }

func (f *deferral) Submit(at Cycle) {
	if at < f.doneAt {
		f.doneAt = at
	}
	if f.waker != nil {
		f.waker.Wake()
	}
}

func (f *deferral) NextEvent(now Cycle) Cycle {
	if f.doneAt < now {
		return now
	}
	return f.doneAt
}

func (f *deferral) Tick(now Cycle) {
	if now == f.doneAt {
		f.ticksAt = append(f.ticksAt, now)
		f.doneAt = Never
	}
}

func TestWakeReschedulesEarlierEvent(t *testing.T) {
	// The component first answers 500, then stimulus at cycle 20 makes 60
	// its real next event. Every mode must tick it at exactly 60.
	for _, mode := range []EngineMode{ModeWakeCached, ModeQuiescent, ModeNaive} {
		e := New()
		e.SetMode(mode)
		f := &deferral{doneAt: 500}
		e.Register("ip", f)
		e.Register("busy", ComponentFunc(func(Cycle) {}))
		e.Run(20)
		f.Submit(60) // invalidates the cached 500 answer
		e.Run(480)
		if len(f.ticksAt) != 1 || f.ticksAt[0] != 60 {
			t.Fatalf("mode %v: ticks at %v, want [60] — stale calendar entry slept past the earlier event", mode, f.ticksAt)
		}
	}
}

func TestWakeForeignHandlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Engine.Wake with another engine's handle did not panic")
		}
	}()
	a, b := New(), New()
	h := a.Register("x", &doorbell{})
	b.Wake(h)
}

func TestDeadlineListsStuckDormantComponents(t *testing.T) {
	e := New()
	e.Register("cluster0/ce0", &doorbell{})
	e.Register("cluster0/ce1", &doorbell{})
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	for _, name := range []string{"cluster0/ce0", "cluster0/ce1"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("deadline error %q does not name dormant component %s", err, name)
		}
	}
	if !strings.Contains(err.Error(), "Wake") {
		t.Fatalf("deadline error %q does not point at the missing Wake call", err)
	}
}

func TestDeadlineSilentWhenProgressPossible(t *testing.T) {
	// An always-active component means the machine can still move, so the
	// dormant list would be noise: a doorbell stays dormant forever next
	// to a busy component in any long-running machine.
	e := New()
	e.Register("bell", &doorbell{})
	e.Register("busy", ComponentFunc(func(Cycle) {}))
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if strings.Contains(err.Error(), "dormant") {
		t.Fatalf("deadline error %q blames dormancy while an active component exists", err)
	}
	// Same when a scheduled future event exists past the deadline.
	e2 := New()
	e2.Register("bell", &doorbell{})
	e2.Register("alarm", &alarm{at: 1000})
	_, err = e2.RunUntil(func() bool { return false }, 50)
	if err == nil || strings.Contains(err.Error(), "dormant") {
		t.Fatalf("deadline error %v blames dormancy while an event is scheduled", err)
	}
}

func TestSetModeClearsDormancy(t *testing.T) {
	e := New()
	d := &doorbell{}
	e.Register("bell", d)
	e.Register("busy", ComponentFunc(func(Cycle) {}))
	e.Run(10) // bell is now dormant
	// Switching paths must drop cached dormancy: the quiescent contract
	// is re-polling, so a stimulus without a Wake is legal there.
	e.SetMode(ModeQuiescent)
	d.pending++ // no Wake on purpose
	e.Run(10)
	if len(d.ticksAt) != 1 || d.ticksAt[0] != 10 {
		t.Fatalf("bell ticked at %v after mode switch, want [10]", d.ticksAt)
	}
}

func TestModeStrings(t *testing.T) {
	cases := map[EngineMode]string{
		ModeWakeCached:         "wake-cached",
		ModeQuiescent:          "quiescent",
		ModeNaive:              "naive",
		ModeWakeCachedParallel: "parallel",
		EngineMode(9):          "EngineMode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Fatalf("EngineMode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
