package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// parWorker is a synthetic domain member: it fires on every cycle where
// (now+id) is a multiple of its period until a horizon, posting into the
// shared mailbox each time. The guard lives in Tick so the naive engine
// (which ticks everything every cycle) produces the identical post
// stream.
type parWorker struct {
	id      int
	domain  int
	period  Cycle
	until   Cycle
	mb      *mailbox
	ticksAt []Cycle
}

func (w *parWorker) due(now Cycle) bool {
	return now < w.until && (now+Cycle(w.id))%w.period == 0
}

func (w *parWorker) NextEvent(now Cycle) Cycle {
	for c := now; c < w.until; c++ {
		if w.due(c) {
			return c
		}
	}
	return Never
}

func (w *parWorker) Tick(now Cycle) {
	if !w.due(now) {
		return
	}
	w.ticksAt = append(w.ticksAt, now)
	w.mb.Post(w.domain, w.id, now)
}

// mailbox is a synthetic cross-domain structure standing in for the
// forward network: workers of every domain post into it mid-cycle, and
// it folds the posts into an order-sensitive checksum in its own tick.
// As a Boundary it defers posts per domain and replays them in domain
// order at the rendezvous — domains are registered in index order, so
// the replay reproduces the sequential post order exactly.
type mailbox struct {
	waker    Waker
	posts    []int64
	checksum int64
	ticksAt  []Cycle

	on       bool
	deferred [][]int64
}

func (mb *mailbox) AttachWaker(w Waker) { mb.waker = w }

func (mb *mailbox) Post(domain, id int, now Cycle) {
	v := int64(id)<<32 | int64(now)
	if mb.on {
		mb.deferred[domain] = append(mb.deferred[domain], v)
		return
	}
	mb.posts = append(mb.posts, v)
	mb.waker.Wake()
}

func (mb *mailbox) BeginConcurrent() { mb.on = true }

func (mb *mailbox) CommitConcurrent() {
	mb.on = false
	posted := false
	for d := range mb.deferred {
		if len(mb.deferred[d]) > 0 {
			mb.posts = append(mb.posts, mb.deferred[d]...)
			mb.deferred[d] = mb.deferred[d][:0]
			posted = true
		}
	}
	if posted {
		mb.waker.Wake()
	}
}

func (mb *mailbox) NextEvent(now Cycle) Cycle {
	if len(mb.posts) > 0 {
		return now
	}
	return Never
}

func (mb *mailbox) Tick(now Cycle) {
	if len(mb.posts) == 0 {
		return
	}
	mb.ticksAt = append(mb.ticksAt, now)
	for _, v := range mb.posts {
		mb.checksum = mb.checksum*1099511628211 + v
	}
	mb.posts = mb.posts[:0]
}

// parRig is a two-domain machine with a post-band mailbox global:
// domain d owns workers 2d and 2d+1, registered domain-major so the
// band is contiguous.
type parRig struct {
	e       *Engine
	workers []*parWorker
	mb      *mailbox
	domains [][]Handle
}

func buildParRig(mode EngineMode, nDomains int) *parRig {
	e := New()
	e.SetMode(mode)
	mb := &mailbox{deferred: make([][]int64, nDomains)}
	r := &parRig{e: e, mb: mb, domains: make([][]Handle, nDomains)}
	for d := 0; d < nDomains; d++ {
		for i := 0; i < 2; i++ {
			w := &parWorker{id: d*2 + i, domain: d, period: 3 + Cycle(d%2), until: 40, mb: mb}
			h := e.Register(fmt.Sprintf("w%d", w.id), w)
			r.workers = append(r.workers, w)
			r.domains[d] = append(r.domains[d], h)
		}
	}
	e.Register("mailbox", mb)
	return r
}

func (r *parRig) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d mb.sum=%d mb.ticks=%v\n", r.e.Now(), r.mb.checksum, r.mb.ticksAt)
	for _, w := range r.workers {
		fmt.Fprintf(&b, "w%d %v\n", w.id, w.ticksAt)
	}
	return b.String()
}

// TestParallelMatchesNaive: the parallel engine (inline, no pool) must
// leave the rig bit-identical to the naive reference — every worker's
// tick cycles, the mailbox's tick cycles and its order-sensitive
// checksum.
func TestParallelMatchesNaive(t *testing.T) {
	ref := buildParRig(ModeNaive, 2)
	ref.e.Run(100)

	par := buildParRig(ModeWakeCachedParallel, 2)
	if err := par.e.ConfigureParallel(par.domains, []Boundary{par.mb}, 1); err != nil {
		t.Fatal(err)
	}
	par.e.Run(100)

	if got, want := par.fingerprint(), ref.fingerprint(); got != want {
		t.Fatalf("parallel diverged from naive:\n--- parallel\n%s--- naive\n%s", got, want)
	}
	if par.e.FastForwarded == 0 {
		t.Fatal("parallel engine never fast-forwarded the post-horizon quiet span")
	}
}

// TestParallelPoolMatchesInline forces a real worker pool (GOMAXPROCS
// is raised so ConfigureParallel builds one even on a single-CPU host)
// and requires the pooled run to match naive bit-for-bit. Run under
// -race this is also the data-race check on the phase-2 fork/join.
func TestParallelPoolMatchesInline(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)

	ref := buildParRig(ModeNaive, 4)
	ref.e.Run(100)

	par := buildParRig(ModeWakeCachedParallel, 4)
	if err := par.e.ConfigureParallel(par.domains, []Boundary{par.mb}, 4); err != nil {
		t.Fatal(err)
	}
	defer par.e.StopWorkers()
	par.e.Run(100)

	if got, want := par.fingerprint(), ref.fingerprint(); got != want {
		t.Fatalf("pooled parallel diverged from naive:\n--- parallel\n%s--- naive\n%s", got, want)
	}
}

// TestParallelPoolPanicPropagates: a component panic on a pool worker
// must surface on the coordinator goroutine (not hang the join, not
// kill the process from a worker).
func TestParallelPoolPanicPropagates(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)

	par := buildParRig(ModeWakeCachedParallel, 2)
	if err := par.e.ConfigureParallel(par.domains, []Boundary{par.mb}, 2); err != nil {
		t.Fatal(err)
	}
	// Sabotage after configuration (Settle queries every NextEvent): the
	// zero period divides by zero in due() at the worker's first query.
	par.workers[3].period = 0
	defer par.e.StopWorkers()
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate to the coordinator")
		}
	}()
	par.e.Run(10)
}

func TestConfigureParallelValidation(t *testing.T) {
	t.Run("wrong mode", func(t *testing.T) {
		r := buildParRig(ModeWakeCached, 2)
		if err := r.e.ConfigureParallel(r.domains, nil, 1); err == nil || !strings.Contains(err.Error(), "mode") {
			t.Fatalf("err = %v, want a mode error", err)
		}
	})
	t.Run("no domains", func(t *testing.T) {
		r := buildParRig(ModeWakeCachedParallel, 2)
		if err := r.e.ConfigureParallel(nil, nil, 1); err == nil || !strings.Contains(err.Error(), "no domains") {
			t.Fatalf("err = %v, want a no-domains error", err)
		}
	})
	t.Run("zero handle", func(t *testing.T) {
		r := buildParRig(ModeWakeCachedParallel, 2)
		r.domains[1][0] = Handle{}
		if err := r.e.ConfigureParallel(r.domains, nil, 1); err == nil || !strings.Contains(err.Error(), "zero Handle") {
			t.Fatalf("err = %v, want a zero-handle error", err)
		}
	})
	t.Run("foreign handle", func(t *testing.T) {
		r := buildParRig(ModeWakeCachedParallel, 2)
		other := New()
		r.domains[0][0] = other.Register("stranger", &doorbell{})
		if err := r.e.ConfigureParallel(r.domains, nil, 1); err == nil || !strings.Contains(err.Error(), "different engine") {
			t.Fatalf("err = %v, want a foreign-handle error", err)
		}
	})
	t.Run("duplicate member", func(t *testing.T) {
		r := buildParRig(ModeWakeCachedParallel, 2)
		r.domains[1][1] = r.domains[0][0]
		if err := r.e.ConfigureParallel(r.domains, nil, 1); err == nil || !strings.Contains(err.Error(), "assigned to domains") {
			t.Fatalf("err = %v, want a duplicate error", err)
		}
	})
	t.Run("plain component", func(t *testing.T) {
		e := New()
		e.SetMode(ModeWakeCachedParallel)
		h := e.Register("busy", ComponentFunc(func(Cycle) {}))
		if err := e.ConfigureParallel([][]Handle{{h}}, nil, 1); err == nil || !strings.Contains(err.Error(), "IdleComponent") {
			t.Fatalf("err = %v, want an IdleComponent error", err)
		}
	})
	t.Run("split band", func(t *testing.T) {
		e := New()
		e.SetMode(ModeWakeCachedParallel)
		a := e.Register("a", &doorbell{})
		e.Register("interloper", &doorbell{})
		b := e.Register("b", &doorbell{})
		err := e.ConfigureParallel([][]Handle{{a}, {b}}, nil, 1)
		if err == nil || !strings.Contains(err.Error(), "interloper") {
			t.Fatalf("err = %v, want a band-split error naming the interloper", err)
		}
	})
}

// TestWakeAsyncMatchesWake: async wakes buffered between advances must
// leave the machine exactly where synchronous Wake calls at the same
// point do, regardless of the order the wakes were enqueued in (the
// drain sorts by handle index — the sequential delivery order).
func TestWakeAsyncMatchesWake(t *testing.T) {
	for _, mode := range []EngineMode{ModeWakeCached, ModeQuiescent, ModeNaive} {
		run := func(deliver func(e *Engine, h0, h1 Handle)) (a, b []Cycle) {
			e := New()
			e.SetMode(mode)
			d0, d1 := &doorbell{}, &doorbell{}
			h0 := e.Register("bell0", d0)
			h1 := e.Register("bell1", d1)
			e.Register("busy", ComponentFunc(func(Cycle) {}))
			e.Run(10)
			d0.pending, d1.pending = 1, 1
			deliver(e, h0, h1)
			e.Run(10)
			return d0.ticksAt, d1.ticksAt
		}
		syncA, syncB := run(func(e *Engine, h0, h1 Handle) {
			e.Wake(h0)
			e.Wake(h1)
		})
		asyncA, asyncB := run(func(e *Engine, h0, h1 Handle) {
			done := make(chan struct{})
			go func() { // reverse enqueue order, from another goroutine
				e.WakeAsync(h1)
				e.WakeAsync(h0)
				close(done)
			}()
			<-done
		})
		if fmt.Sprint(asyncA, asyncB) != fmt.Sprint(syncA, syncB) {
			t.Fatalf("mode %v: WakeAsync ticks %v/%v, Wake ticks %v/%v", mode, asyncA, asyncB, syncA, syncB)
		}
	}
}

// TestWakeAsyncRaceStress hammers WakeAsync from many goroutines while
// the engine advances on the test goroutine; run under -race this is
// the data-race check on the wake buffer, and the spurious wakes of a
// non-pending doorbell must all be absorbed without a tick.
func TestWakeAsyncRaceStress(t *testing.T) {
	e := New()
	d := &doorbell{}
	h := e.Register("bell", d)
	e.Register("busy", ComponentFunc(func(Cycle) {}))

	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.WakeAsync(h)
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			e.Run(1) // drain the final batch
			if got := len(d.ticksAt); got != 0 {
				t.Fatalf("spurious wakes produced %d ticks of a never-pending bell", got)
			}
			d.pending = 1
			e.WakeAsync(h)
			e.Run(2)
			if len(d.ticksAt) != 1 {
				t.Fatalf("bell ticked %v after a real async wake, want exactly one tick", d.ticksAt)
			}
			return
		default:
			e.Run(1)
		}
	}
}

func TestWakeAsyncZeroHandleIsNoOp(t *testing.T) {
	e := New()
	e.Register("busy", ComponentFunc(func(Cycle) {}))
	e.WakeAsync(Handle{}) // must not panic
	e.Run(1)
}

func TestWakeAsyncForeignHandlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WakeAsync with another engine's handle did not panic")
		}
	}()
	a, b := New(), New()
	h := a.Register("x", &doorbell{})
	b.WakeAsync(h)
}
