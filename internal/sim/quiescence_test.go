package sim

import (
	"errors"
	"testing"
)

// pulser is an IdleComponent active only at multiples of period; it
// counts its ticks so tests can assert the engine never skipped an
// active cycle and never executed an idle one.
type pulser struct {
	period Cycle
	ticks  int
	lastAt Cycle
}

func (p *pulser) Tick(now Cycle) {
	if now%p.period != 0 {
		panic("pulser ticked on an idle cycle")
	}
	p.ticks++
	p.lastAt = now
}

func (p *pulser) NextEvent(now Cycle) Cycle {
	r := now % p.period
	if r == 0 {
		return now
	}
	return now + (p.period - r)
}

// sleeper never wants to tick.
type sleeper struct{ ticks int }

func (s *sleeper) Tick(Cycle)                { s.ticks++ }
func (s *sleeper) NextEvent(now Cycle) Cycle { return Never }

func TestQuiescenceDefaultOn(t *testing.T) {
	e := New()
	if !e.Quiescence() {
		t.Fatal("new engine must default to the quiescence-aware path")
	}
	e.SetQuiescence(false)
	if e.Quiescence() {
		t.Fatal("SetQuiescence(false) did not disable the fast path")
	}
}

func TestFastForwardSkipsIdleSpans(t *testing.T) {
	e := New()
	p := &pulser{period: 100}
	e.Register("p", p)
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", e.Now())
	}
	if p.ticks != 10 {
		t.Fatalf("pulser ticked %d times, want 10 (cycles 0,100,...,900)", p.ticks)
	}
	if p.lastAt != 900 {
		t.Fatalf("last tick at %d, want 900", p.lastAt)
	}
	if e.FastForwarded == 0 {
		t.Fatal("engine never fast-forwarded across an all-idle span")
	}
	// Only the 10 active cycles and the cycle after each (where the jump
	// decision is made) are executed; the other 980 are elided.
	if e.FastForwarded != 980 {
		t.Fatalf("FastForwarded = %d, want 980", e.FastForwarded)
	}
}

func TestJumpCappedAtRunLimit(t *testing.T) {
	e := New()
	s := &sleeper{}
	e.Register("s", s)
	e.Run(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want exactly the Run limit 100", e.Now())
	}
	if s.ticks != 0 {
		t.Fatalf("idle component ticked %d times", s.ticks)
	}
}

func TestStepAdvancesExactlyOneCycle(t *testing.T) {
	e := New()
	e.Register("s", &sleeper{})
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %d after 3 Steps, want 3 (Step must never jump)", e.Now())
	}
}

// alarm sleeps until a fixed cycle, ticks once, then sleeps forever.
type alarm struct {
	at    Cycle
	fired bool
}

func (a *alarm) Tick(now Cycle) {
	if now >= a.at {
		a.fired = true
	}
}

func (a *alarm) NextEvent(now Cycle) Cycle {
	if a.fired {
		return Never
	}
	if now < a.at {
		return a.at
	}
	return now
}

func TestRunUntilJumpsToEvent(t *testing.T) {
	e := New()
	a := &alarm{at: 500}
	e.Register("a", a)
	at, err := e.RunUntil(func() bool { return a.fired }, 10000)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !a.fired || at != 501 {
		t.Fatalf("fired=%v at=%d, want alarm fired with the engine at 501", a.fired, at)
	}
	if e.FastForwarded != 499 {
		t.Fatalf("FastForwarded = %d, want 499 (cycles 1..499 elided)", e.FastForwarded)
	}
}

func TestRunUntilDeadlineExactWithJumps(t *testing.T) {
	e := New()
	e.Register("s", &sleeper{})
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if e.Now() != 50 {
		t.Fatalf("engine at %d, want exactly the 50-cycle deadline", e.Now())
	}
}

// idleCounter counts busy and idle cycles the way a CE does: the naive
// path counts idle cycles one tick at a time, the fast path is credited
// whole skipped spans through SkipCycles.
type idleCounter struct {
	period     Cycle
	busy, idle int64
}

func (c *idleCounter) Tick(now Cycle) {
	if now%c.period == 0 {
		c.busy++
	} else {
		c.idle++
	}
}

func (c *idleCounter) NextEvent(now Cycle) Cycle {
	r := now % c.period
	if r == 0 {
		return now
	}
	return now + (c.period - r)
}

func (c *idleCounter) SkipCycles(from, to Cycle) { c.idle += int64(to - from) }

func TestSkipAwareCreditingMatchesNaive(t *testing.T) {
	run := func(quiescent bool) *idleCounter {
		e := New()
		e.SetQuiescence(quiescent)
		c := &idleCounter{period: 37}
		e.Register("c", c)
		e.Run(1000)
		return c
	}
	naive, fast := run(false), run(true)
	if naive.busy != fast.busy || naive.idle != fast.idle {
		t.Fatalf("counter divergence: naive busy/idle = %d/%d, fast = %d/%d",
			naive.busy, naive.idle, fast.busy, fast.idle)
	}
	if naive.busy+naive.idle != 1000 {
		t.Fatalf("naive counted %d cycles, want 1000", naive.busy+naive.idle)
	}
}

func TestSetQuiescenceOffMidRunSettles(t *testing.T) {
	e := New()
	c := &idleCounter{period: 100}
	e.Register("c", c)
	e.Run(150) // ticks at 0 and 100; cycles 101..149 not yet executed
	e.SetQuiescence(false)
	e.Run(50) // naive from 150 to 200
	if got := c.busy + c.idle; got != 200 {
		t.Fatalf("counted %d cycles across the mode switch, want 200", got)
	}
	if c.busy != 2 {
		t.Fatalf("busy = %d, want 2 (cycles 0 and 100)", c.busy)
	}
}

func TestNonIdleComponentAlwaysTicks(t *testing.T) {
	e := New()
	n := 0
	e.Register("plain", ComponentFunc(func(Cycle) { n++ }))
	e.Register("s", &sleeper{})
	e.Run(50)
	if n != 50 {
		t.Fatalf("plain component ticked %d times, want every one of 50 cycles", n)
	}
	if e.FastForwarded != 0 {
		t.Fatal("engine fast-forwarded past a component that is not idle-aware")
	}
}

func TestMultipleIdleComponentsWakeIndependently(t *testing.T) {
	e := New()
	a := &pulser{period: 30}
	b := &pulser{period: 50}
	e.Register("a", a)
	e.Register("b", b)
	e.Run(300)
	if a.ticks != 10 || b.ticks != 6 {
		t.Fatalf("ticks = %d/%d, want 10/6 (multiples of 30 and 50 below 300)", a.ticks, b.ticks)
	}
	if e.SkippedTicks == 0 {
		t.Fatal("no component-ticks were elided at executed cycles")
	}
}
