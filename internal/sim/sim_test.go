package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCycleConversions(t *testing.T) {
	if got := Cycle(1).Duration(); got != 170*time.Nanosecond {
		t.Fatalf("Cycle(1).Duration() = %v, want 170ns", got)
	}
	// Exact cycle boundaries and their neighbours: a positive duration
	// rounds up, a whole multiple of 170 ns stays exact.
	cases := []struct {
		d    time.Duration
		want Cycle
	}{
		{0, 0},
		{-time.Second, 0},
		{1 * time.Nanosecond, 1},
		{169 * time.Nanosecond, 1},
		{170 * time.Nanosecond, 1},
		{171 * time.Nanosecond, 2},
		{340 * time.Nanosecond, 2},
		{341 * time.Nanosecond, 3},
		{170 * time.Microsecond, 1000},
		{90 * time.Microsecond, 530}, // the paper's XDOALL startup
	}
	for _, c := range cases {
		if got := FromDuration(c.d); got != c.want {
			t.Fatalf("FromDuration(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Overflow edge, mirroring FromMicroseconds' saturation rows: near
	// math.MaxInt64 the round-up bias (d + CycleTime - 1) used to wrap
	// negative; the conversion must saturate to the maximum Cycle range
	// instead. MaxInt64 ns / 170 ns rounds up to 54_255_129_628_557_505.
	const maxD = time.Duration(math.MaxInt64)
	overflow := []struct {
		d    time.Duration
		want Cycle
	}{
		{maxD, 54_255_129_628_557_505},
		{maxD - 1, 54_255_129_628_557_505},
		{maxD - 127, 54_255_129_628_557_504}, // exact multiple of 170 ns
		{maxD - (CycleTime - 2), 54_255_129_628_557_504},
		{maxD - (CycleTime - 1), 54_255_129_628_557_504}, // last bias-safe input
		{maxD - CycleTime, 54_255_129_628_557_504},
	}
	for _, c := range overflow {
		if got := FromDuration(c.d); got != c.want {
			t.Fatalf("FromDuration(%d) = %d, want %d", c.d, got, c.want)
		}
		if got := FromDuration(c.d); got <= 0 {
			t.Fatalf("FromDuration(%d) = %d wrapped negative", c.d, got)
		}
	}
	// Monotonic through the former wrap point: larger durations never
	// convert to fewer cycles.
	prev := Cycle(0)
	for _, d := range []time.Duration{maxD / 4, maxD / 2, maxD - CycleTime, maxD - 1, maxD} {
		got := FromDuration(d)
		if got < prev {
			t.Fatalf("FromDuration(%d) = %d < FromDuration of a shorter duration (%d)", d, got, prev)
		}
		prev = got
	}
}

func TestFromMicroseconds(t *testing.T) {
	cases := []struct {
		us   float64
		want Cycle
	}{
		{0, 0},
		{-3, 0},
		// Exact multiples of 170 ns must not gain a spurious cycle from
		// float representation error: 0.17 µs is where the old float
		// divide produced 2 (17.000000000000004/17 ceiled up).
		{0.17, 1},
		{0.34, 2},
		{1.7, 10},
		{8.5, 50},
		{17, 100},
		{85, 500},
		{870.4, 5120}, // 512 words * 1.7 µs
		// Non-multiples round up.
		{0.1, 1},
		{0.18, 2},
		{1, 6}, // 1000/170 = 5.88
		{90, 530},
		{30, 177},
		{4, 24},
		// Runtime and xylem timing constants, pinned so the rounding fix
		// provably leaves every existing simulated timing unchanged.
		{0.6, 4},
		{9, 53},
		{500, 2942},
		{2000, 11765},
	}
	for _, c := range cases {
		if got := FromMicroseconds(c.us); got != c.want {
			t.Fatalf("FromMicroseconds(%g) = %d, want %d", c.us, got, c.want)
		}
	}
	// Every whole multiple of 17/100 µs lands exactly on its cycle count.
	for k := Cycle(1); k <= 10000; k++ {
		if got := FromMicroseconds(float64(k) * 0.17); got != k {
			t.Fatalf("FromMicroseconds(%d * 0.17) = %d, want %d", k, got, k)
		}
	}
	// Overflow edge: once us*100 leaves int64 range the old float-to-int
	// conversion wrapped (negative cycles); the conversion must saturate
	// instead. NaN is treated as no time at all.
	saturating := []struct {
		us   float64
		want Cycle
	}{
		{1e30, Cycle(math.MaxInt64)},
		{1e300, Cycle(math.MaxInt64)},
		{math.MaxFloat64, Cycle(math.MaxInt64)},
		{math.Inf(1), Cycle(math.MaxInt64)},
		{math.NaN(), 0},
	}
	for _, c := range saturating {
		if got := FromMicroseconds(c.us); got != c.want {
			t.Fatalf("FromMicroseconds(%g) = %d, want %d", c.us, got, c.want)
		}
	}
	// Below saturation the result must stay positive and monotonic all the
	// way up — the wrap bug produced a sign flip around 9.2e16 µs.
	prev := Cycle(0)
	for _, us := range []float64{1e12, 1e14, 1e16, 5e16, 9e16, 1e17, 1e18} {
		got := FromMicroseconds(us)
		if got <= prev {
			t.Fatalf("FromMicroseconds(%g) = %d, not monotonically positive (prev %d)", us, got, prev)
		}
		prev = got
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	c := Cycle(1_000_000)
	s := c.Seconds()
	want := 0.17 // 1e6 * 170ns = 0.17 s
	if s < want-1e-9 || s > want+1e-9 {
		t.Fatalf("Seconds(1e6 cycles) = %g, want %g", s, want)
	}
}

func TestEngineTickOrderAndTime(t *testing.T) {
	e := New()
	var order []string
	mk := func(name string) ComponentFunc {
		return func(now Cycle) {
			if now != e.Now() {
				t.Errorf("component %s saw now=%d, engine Now()=%d", name, now, e.Now())
			}
			order = append(order, name)
		}
	}
	e.Register("a", mk("a"))
	e.Register("b", mk("b"))
	e.Register("c", mk("c"))
	e.Step()
	e.Step()
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %d after 2 steps, want 2", e.Now())
	}
	if e.Components() != 3 {
		t.Fatalf("Components() = %d, want 3", e.Components())
	}
	names := e.ComponentNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("ComponentNames() = %v", names)
	}
}

func TestEngineRun(t *testing.T) {
	e := New()
	n := 0
	e.Register("ctr", ComponentFunc(func(Cycle) { n++ }))
	e.Run(25)
	if n != 25 || e.Now() != 25 {
		t.Fatalf("after Run(25): n=%d Now=%d", n, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	n := 0
	e.Register("ctr", ComponentFunc(func(Cycle) { n++ }))
	at, err := e.RunUntil(func() bool { return n >= 10 }, 100)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if at != 10 || n != 10 {
		t.Fatalf("condition held at %d with n=%d, want 10/10", at, n)
	}
}

func TestRunUntilDeadline(t *testing.T) {
	e := New()
	e.Register("noop", ComponentFunc(func(Cycle) {}))
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if e.Now() != 50 {
		t.Fatalf("engine advanced to %d, want 50", e.Now())
	}
}

func TestRunUntilImmediate(t *testing.T) {
	e := New()
	at, err := e.RunUntil(func() bool { return true }, 0)
	if err != nil || at != 0 {
		t.Fatalf("immediate condition: at=%d err=%v", at, err)
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	New().Register("bad", nil)
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a2 := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d times of 1000", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}
