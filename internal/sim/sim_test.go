package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestCycleConversions(t *testing.T) {
	if got := Cycle(1).Duration(); got != 170*time.Nanosecond {
		t.Fatalf("Cycle(1).Duration() = %v, want 170ns", got)
	}
	if got := FromDuration(170 * time.Nanosecond); got != 1 {
		t.Fatalf("FromDuration(170ns) = %d, want 1", got)
	}
	if got := FromDuration(171 * time.Nanosecond); got != 2 {
		t.Fatalf("FromDuration(171ns) = %d, want 2 (round up)", got)
	}
	if got := FromDuration(0); got != 0 {
		t.Fatalf("FromDuration(0) = %d, want 0", got)
	}
	if got := FromDuration(-time.Second); got != 0 {
		t.Fatalf("FromDuration(-1s) = %d, want 0", got)
	}
}

func TestFromMicroseconds(t *testing.T) {
	// 90 us startup from the paper: 90e3 ns / 170 ns = 529.4 -> 530.
	if got := FromMicroseconds(90); got != 530 {
		t.Fatalf("FromMicroseconds(90) = %d, want 530", got)
	}
	if got := FromMicroseconds(0); got != 0 {
		t.Fatalf("FromMicroseconds(0) = %d, want 0", got)
	}
	// Exact multiples do not round up: 1.7 us = 10 cycles.
	if got := FromMicroseconds(1.7); got != 10 {
		t.Fatalf("FromMicroseconds(1.7) = %d, want 10", got)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	c := Cycle(1_000_000)
	s := c.Seconds()
	want := 0.17 // 1e6 * 170ns = 0.17 s
	if s < want-1e-9 || s > want+1e-9 {
		t.Fatalf("Seconds(1e6 cycles) = %g, want %g", s, want)
	}
}

func TestEngineTickOrderAndTime(t *testing.T) {
	e := New()
	var order []string
	mk := func(name string) ComponentFunc {
		return func(now Cycle) {
			if now != e.Now() {
				t.Errorf("component %s saw now=%d, engine Now()=%d", name, now, e.Now())
			}
			order = append(order, name)
		}
	}
	e.Register("a", mk("a"))
	e.Register("b", mk("b"))
	e.Register("c", mk("c"))
	e.Step()
	e.Step()
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %d after 2 steps, want 2", e.Now())
	}
	if e.Components() != 3 {
		t.Fatalf("Components() = %d, want 3", e.Components())
	}
	names := e.ComponentNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("ComponentNames() = %v", names)
	}
}

func TestEngineRun(t *testing.T) {
	e := New()
	n := 0
	e.Register("ctr", ComponentFunc(func(Cycle) { n++ }))
	e.Run(25)
	if n != 25 || e.Now() != 25 {
		t.Fatalf("after Run(25): n=%d Now=%d", n, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	n := 0
	e.Register("ctr", ComponentFunc(func(Cycle) { n++ }))
	at, err := e.RunUntil(func() bool { return n >= 10 }, 100)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if at != 10 || n != 10 {
		t.Fatalf("condition held at %d with n=%d, want 10/10", at, n)
	}
}

func TestRunUntilDeadline(t *testing.T) {
	e := New()
	e.Register("noop", ComponentFunc(func(Cycle) {}))
	_, err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if e.Now() != 50 {
		t.Fatalf("engine advanced to %d, want 50", e.Now())
	}
}

func TestRunUntilImmediate(t *testing.T) {
	e := New()
	at, err := e.RunUntil(func() bool { return true }, 0)
	if err != nil || at != 0 {
		t.Fatalf("immediate condition: at=%d err=%v", at, err)
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	New().Register("bad", nil)
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a2 := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d times of 1000", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}
