// Package sim provides the cycle-stepped discrete simulation engine that
// underlies the Cedar machine model.
//
// Every hardware unit in the model (computational elements, network
// switches, memory modules, prefetch units, caches) is a Component
// registered with an Engine. The Engine advances simulated time one
// instruction cycle at a time; one cycle corresponds to the Alliant FX/8
// CE instruction cycle of 170 ns described in the paper. Components are
// ticked in registration order, which makes every simulation fully
// deterministic: the same program on the same configuration always takes
// exactly the same number of cycles.
//
// A cycle-stepped engine (rather than an event-queue design) is used
// because during the kernels studied in the paper essentially every unit
// is active every cycle, and because exact determinism keeps the test
// suite precise.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Cycle is a point in (or span of) simulated time, measured in CE
// instruction cycles of 170 ns.
type Cycle int64

// CycleTime is the duration of one simulated cycle: the 170 ns Alliant
// FX/8 CE instruction cycle.
const CycleTime = 170 * time.Nanosecond

// CyclesPerSecond is the simulated clock rate (about 5.88 MHz).
const CyclesPerSecond = float64(time.Second) / float64(CycleTime)

// Seconds converts a cycle count to simulated seconds.
func (c Cycle) Seconds() float64 { return float64(c) / CyclesPerSecond }

// Duration converts a cycle count to a time.Duration of simulated time.
func (c Cycle) Duration() time.Duration { return time.Duration(c) * CycleTime }

// FromDuration converts a duration of simulated time to whole cycles,
// rounding up so that a positive duration never becomes zero cycles.
func FromDuration(d time.Duration) Cycle {
	if d <= 0 {
		return 0
	}
	return Cycle((d + CycleTime - 1) / CycleTime)
}

// FromMicroseconds converts simulated microseconds to cycles, rounding up.
func FromMicroseconds(us float64) Cycle {
	if us <= 0 {
		return 0
	}
	c := us * 1e3 / float64(CycleTime.Nanoseconds())
	ic := Cycle(c)
	if float64(ic) < c {
		ic++
	}
	return ic
}

// A Component is a hardware unit advanced by the engine once per cycle.
type Component interface {
	// Tick advances the component through the cycle that begins at now.
	Tick(now Cycle)
}

// ComponentFunc adapts a plain function to the Component interface.
type ComponentFunc func(now Cycle)

// Tick implements Component.
func (f ComponentFunc) Tick(now Cycle) { f(now) }

// Engine owns simulated time and the ordered set of components.
// The zero value is not usable; call New.
type Engine struct {
	now   Cycle
	comps []Component
	names []string
}

// New returns an empty engine at cycle zero.
func New() *Engine { return &Engine{} }

// Register adds a component to the tick order. Components are ticked in
// registration order each cycle; registration order is therefore part of
// the machine definition and must be deterministic.
func (e *Engine) Register(name string, c Component) {
	if c == nil {
		panic("sim: Register called with nil component")
	}
	e.comps = append(e.comps, c)
	e.names = append(e.names, name)
}

// Components reports the number of registered components.
func (e *Engine) Components() int { return len(e.comps) }

// ComponentNames returns the registered component names in tick order.
func (e *Engine) ComponentNames() []string {
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}

// Now returns the current cycle. During a tick, Now reports the cycle
// being executed.
func (e *Engine) Now() Cycle { return e.now }

// Step advances the simulation by one cycle, ticking every component.
func (e *Engine) Step() {
	for _, c := range e.comps {
		c.Tick(e.now)
	}
	e.now++
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		e.Step()
	}
}

// ErrDeadline is returned by RunUntil when the predicate does not become
// true within the cycle budget.
var ErrDeadline = errors.New("sim: deadline exceeded before condition held")

// RunUntil steps the engine until done() reports true, checking before
// each cycle, or until max cycles have elapsed from the current time. It
// returns the cycle at which the condition first held.
func (e *Engine) RunUntil(done func() bool, max Cycle) (Cycle, error) {
	deadline := e.now + max
	for !done() {
		if e.now >= deadline {
			return e.now, fmt.Errorf("%w (budget %d cycles)", ErrDeadline, max)
		}
		e.Step()
	}
	return e.now, nil
}

// Rand is a small deterministic pseudo-random source (xorshift64*) used by
// workload generators. It is intentionally independent of math/rand so
// that workloads are reproducible across Go releases.
type Rand struct{ s uint64 }

// NewRand returns a generator seeded with seed (zero is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
