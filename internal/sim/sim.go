// Package sim provides the cycle-stepped discrete simulation engine that
// underlies the Cedar machine model.
//
// Every hardware unit in the model (computational elements, network
// switches, memory modules, prefetch units, caches) is a Component
// registered with an Engine. The Engine advances simulated time one
// instruction cycle at a time; one cycle corresponds to the Alliant FX/8
// CE instruction cycle of 170 ns described in the paper. Components are
// ticked in registration order, which makes every simulation fully
// deterministic: the same program on the same configuration always takes
// exactly the same number of cycles.
//
// A cycle-stepped engine (rather than an event-queue design) is used
// because during the kernels studied in the paper essentially every unit
// is active every cycle, and because exact determinism keeps the test
// suite precise. The paper's workloads nevertheless contain long quiet
// stretches — the ≈90 µs XDOALL startup, barrier spin backoffs, drained
// networks between strips — so the fast engine paths run on a wake
// calendar: a min-heap keyed by each component's NextEvent cycle (ties
// broken by registration index, preserving tick order). An executed
// cycle touches only the components due at it; everything else costs
// nothing, so per-cycle host cost is O(components due), not
// O(components registered). A component whose answer is Never has no
// calendar entry at all: it is marked dormant until an external
// stimulus calls Wake on its Handle, which reinserts it at the exact
// slot the naive engine would next observe the stimulus. Fast-forward
// falls out of the same structure — when nothing is due, time jumps to
// the calendar's minimum. All optimizations are exact: every engine
// mode produces bit-identical cycle counts and statistics to the naive
// tick-everything run (SetMode selects the path for equivalence
// testing).
package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Cycle is a point in (or span of) simulated time, measured in CE
// instruction cycles of 170 ns.
type Cycle int64

// CycleTime is the duration of one simulated cycle: the 170 ns Alliant
// FX/8 CE instruction cycle.
const CycleTime = 170 * time.Nanosecond

// CyclesPerSecond is the simulated clock rate (about 5.88 MHz).
const CyclesPerSecond = float64(time.Second) / float64(CycleTime)

// Seconds converts a cycle count to simulated seconds.
func (c Cycle) Seconds() float64 { return float64(c) / CyclesPerSecond }

// Duration converts a cycle count to a time.Duration of simulated time.
func (c Cycle) Duration() time.Duration { return time.Duration(c) * CycleTime }

// FromDuration converts a duration of simulated time to whole cycles,
// rounding up so that a positive duration never becomes zero cycles.
//
// Like FromMicroseconds, the conversion saturates instead of wrapping:
// for durations within CycleTime-1 of math.MaxInt64 the round-up bias
// (d + CycleTime - 1) used to overflow int64 and come back negative, so
// anything in that band — and any quotient beyond the representable
// cycle range — clamps to the maximum Cycle.
func FromDuration(d time.Duration) Cycle {
	if d <= 0 {
		return 0
	}
	if d > math.MaxInt64-(CycleTime-1) {
		// The round-up bias would wrap; the unbiased quotient cannot,
		// and adding the partial-cycle carry keeps the ceiling exact.
		c := Cycle(d / CycleTime)
		if d%CycleTime != 0 && c < math.MaxInt64 {
			c++
		}
		return c
	}
	return Cycle((d + CycleTime - 1) / CycleTime)
}

// FromMicroseconds converts simulated microseconds to cycles, rounding up.
// One cycle is 170 ns = 17/100 µs, so the conversion works in hundredths
// of a microsecond: when the input is (within float tolerance of) a whole
// number of hundredths the division is done in integers, which keeps exact
// cycle multiples exact — 0.17 µs is 1 cycle, not the 2 that a float
// divide's representation error used to produce.
//
// The conversion saturates instead of wrapping: inputs so large that
// us*100 no longer fits an int64 (where the float→int conversion is
// undefined and used to wrap negative) convert in floating point, and
// anything beyond the representable cycle range clamps to the maximum
// Cycle. NaN converts to 0.
func FromMicroseconds(us float64) Cycle {
	if math.IsNaN(us) || us <= 0 {
		return 0
	}
	h := us * 100
	// Past 2^62 hundredths the integer fast path below would overflow:
	// int64(r) is undefined for r >= 2^63 and (int64(r)+16) can wrap even
	// before that. Convert in floating point and saturate.
	if h >= float64(1<<62) {
		c := math.Ceil(h / 17)
		if c >= float64(math.MaxInt64) {
			return Cycle(math.MaxInt64)
		}
		return Cycle(c)
	}
	r := math.Round(h)
	if math.Abs(h-r) <= 1e-9*math.Max(r, 1) {
		return Cycle((int64(r) + 16) / 17)
	}
	return Cycle(math.Ceil(h / 17))
}

// A Component is a hardware unit advanced by the engine once per cycle.
type Component interface {
	// Tick advances the component through the cycle that begins at now.
	Tick(now Cycle)
}

// ComponentFunc adapts a plain function to the Component interface.
type ComponentFunc func(now Cycle)

// Tick implements Component.
func (f ComponentFunc) Tick(now Cycle) { f(now) }

// Never is the NextEvent answer meaning "no scheduled work: only external
// stimulus (a Deliver, a program assignment, a queued request) can create
// an event for this component".
const Never = Cycle(math.MaxInt64)

// IdleComponent is optionally implemented by components that can report
// quiescence. NextEvent returns the earliest cycle at or after now at
// which ticking the component could change any observable state —
// including statistics counters. A result <= now means "tick me this
// cycle"; a future cycle means every tick before it would be a no-op; and
// Never means the component is fully passive until external stimulus.
//
// The engine schedules each component on a wake calendar keyed by its
// last NextEvent answer and queries it again exactly when that cycle
// arrives — immediately before the component's tick slot, never from a
// stale snapshot — so a component woken by an earlier-in-order component
// during the same cycle is ticked exactly as the naive engine would tick
// it. A future answer must therefore stay valid until it arrives:
// external stimulus delivered between the component's tick slots may
// move the answer later (the calendar re-queries on arrival and
// reschedules) or call Wake on the component's Handle (which reinserts
// the calendar entry at the wake slot), but an earlier event without a
// Wake is unobservable. Components whose wake-up time can move earlier
// outside a waking entry point must return now or Never. A Never answer
// removes the component from the calendar entirely: in ModeWakeCached
// (the default) it is marked dormant and not queried again until
// something calls Wake on its Handle, so every external-stimulus entry
// point of a Never-capable component must wake it (see Waker and
// DESIGN.md §4.1); in ModeQuiescent it joins a re-query list polled
// every executed cycle instead, preserving that path's no-Wake-needed
// reference contract.
type IdleComponent interface {
	Component
	NextEvent(now Cycle) Cycle
}

// Probe is the telemetry sampler's view of the engine. NextSample
// returns the next cycle at or after now at which the probe wants a
// snapshot (Never for none); SampleNow is called with that cycle once
// simulated time reaches it, after deferred skip accounting has been
// settled and before the cycle executes. The engine lands on sample
// boundaries exactly — a fast-forward jump is capped at the next
// boundary — but landing there only re-queries NextEvent; it never
// ticks a component that had no work, so sampling cannot perturb the
// simulation (DESIGN.md §4.1).
type Probe interface {
	NextSample(now Cycle) Cycle
	SampleNow(now Cycle)
}

// FaultReporter is optionally implemented by components that can enter an
// unrecoverable fault state (a request whose retries are exhausted, a
// synchronization spin that exceeded its bound). FaultReason returns ""
// while the component is healthy and a one-line human-readable diagnosis
// — naming the pending request — once the component has given up.
// RunUntil consults it only on the deadline-exceeded path, so reporting a
// fault never perturbs a run that still completes; it only converts an
// opaque timeout into a diagnosable error.
type FaultReporter interface {
	FaultReason() string
}

// SkipAware is optionally implemented by components whose per-cycle tick
// accrues counters even when idle (the CE's IdleCycles). When the engine
// elides ticks, it calls SkipCycles with the half-open span [from, to) of
// cycles it never executed for this component, immediately before the
// next real tick and again when a run returns, so counters match the
// naive engine bit for bit. Counters are therefore only guaranteed
// settled when Run/RunUntil return (or after an explicit Settle).
type SkipAware interface {
	SkipCycles(from, to Cycle)
}

// EngineMode selects how aggressively the engine elides work. All modes
// are bit-identical in every architected outcome (cycle counts, component
// statistics, telemetry fingerprints); they differ only in host-side cost
// and in the engine's own diagnostic counters.
type EngineMode int

const (
	// ModeWakeCached (the default) is the fastest path: idle components
	// are skipped, quiet stretches are fast-forwarded, and a component
	// whose NextEvent answer is Never is marked dormant and excluded from
	// the per-cycle query loop until its Handle is woken.
	ModeWakeCached EngineMode = iota
	// ModeQuiescent skips idle components and fast-forwards quiet
	// stretches but re-queries Never-reporting components every executed
	// cycle (the PR 1 behaviour, kept as an equivalence reference).
	ModeQuiescent
	// ModeNaive ticks every component every cycle — the ground-truth
	// reference path for the determinism equivalence tests.
	ModeNaive
	// ModeWakeCachedParallel is ModeWakeCached with a topology partition:
	// after ConfigureParallel assigns a contiguous band of components to
	// per-cluster domains, each executed cycle runs in three phases —
	// pre-band globals, then every domain with due work (on worker
	// goroutines when the host allows), then the remaining globals — with
	// cross-domain boundary effects deferred to the rendezvous between
	// phases two and three (DESIGN.md §4.9). Without a partition it
	// behaves exactly as ModeWakeCached. Declared after ModeNaive so the
	// original three mode values stay stable.
	ModeWakeCachedParallel
)

// String names the mode for benchmarks and error messages.
func (m EngineMode) String() string {
	switch m {
	case ModeWakeCached:
		return "wake-cached"
	case ModeQuiescent:
		return "quiescent"
	case ModeNaive:
		return "naive"
	case ModeWakeCachedParallel:
		return "parallel"
	}
	return fmt.Sprintf("EngineMode(%d)", int(m))
}

// Engine owns simulated time and the ordered set of components.
// The zero value is not usable; call New.
type Engine struct {
	now   Cycle
	comps []Component
	names []string

	// Parallel to comps: the quiescence view of each component (nil when
	// the component does not implement the interface), the last cycle it
	// was actually ticked (-1 before the first tick), and whether its
	// last NextEvent answer was Never (dormant components have no
	// calendar entry and are not queried again until woken;
	// ModeWakeCached only).
	idle     []IdleComponent
	skip     []SkipAware
	lastTick []Cycle
	dormant  []bool

	// The wake calendar (fast paths only). Every IdleComponent is in
	// exactly one place at a time: the calendar heap (a future or due
	// query is scheduled), the due ring (due exactly next cycle — kept
	// out of the heap to spare push/pop churn in dense phases where
	// every unit ticks every cycle), the dormant set (ModeWakeCached,
	// last answer Never), or the never list (ModeQuiescent, last answer
	// Never; sorted by registration index and re-queried every executed
	// cycle, preserving that path's re-polling contract). Components
	// that do not implement IdleComponent live in always and are ticked
	// at every executed cycle.
	always   []int
	cal      calendar
	curDue   []int // due ring being consumed this cycle (scratch)
	nextDue  []int // due ring for the next cycle, in registration order
	never    []int
	nDormant int

	mode    EngineMode
	ticking bool
	// curIdx is the registration index of the component whose slot the
	// engine is processing mid-cycle (-1 outside the loop); Wake uses it
	// to place a woken component at the same cycle when the waker ticks
	// earlier in registration order, next cycle otherwise.
	curIdx int

	// Parallel-partition state (ModeWakeCachedParallel; see parallel.go).
	// domainOf maps a registration index to its domain (-1 for a global
	// component); it is non-empty only once ConfigureParallel has run.
	// gAi/gDi are the resumable cursors of the split global merge loop —
	// phase one stops at bandStart and phase three resumes where it left.
	domainOf   []int32
	dscheds    []domainSched
	boundaries []Boundary
	pool       *parPool
	bandStart  int
	bandEnd    int
	phase      int8
	gAi, gDi   int
	activeDoms []int

	// Cross-goroutine wake buffer (WakeAsync): appended under pendingMu,
	// drained in handle-index order at the start of the next advance.
	pendingMu   sync.Mutex
	pendingWake []int
	hasPending  atomic.Bool

	probe      Probe
	nextSample Cycle

	// SkippedTicks counts component ticks elided at executed cycles;
	// FastForwarded counts whole cycles jumped over because every
	// component agreed the machine was quiet; DormantSkips counts the
	// subset of SkippedTicks elided without a NextEvent query because the
	// component was dormant. All are diagnostics: they do not affect
	// simulated time.
	SkippedTicks  int64
	FastForwarded int64
	DormantSkips  int64
}

// New returns an empty engine at cycle zero in ModeWakeCached.
func New() *Engine { return &Engine{nextSample: Never, curIdx: -1} }

// SetMode selects the engine path. Switching settles any deferred skip
// accounting, clears dormancy, and rebuilds the wake calendar with every
// idle component due at the current cycle, so the toggle is safe between
// runs: the new path starts from fully settled state and re-discovers
// quiescence on its own terms.
func (e *Engine) SetMode(m EngineMode) {
	if m == e.mode {
		return
	}
	e.Settle()
	if e.mode == ModeNaive {
		// The naive path executed every cycle itself, so nothing is owed:
		// without this, lastTick left stale from before a naive stint
		// would double-credit the naive-executed span through SkipCycles
		// at the first fast-path tick.
		for i := range e.lastTick {
			e.lastTick[i] = e.now - 1
		}
	}
	for i := range e.dormant {
		e.dormant[i] = false
	}
	e.nDormant = 0
	for d := range e.dscheds {
		e.dscheds[d].nDormant = 0
	}
	e.mode = m
	e.rebuild()
}

// rebuild re-seeds the calendar for the current mode: every idle
// component becomes due at the current cycle — exactly the state of a
// freshly built engine — and the first executed cycle re-queries them
// all. The naive path uses no calendar.
func (e *Engine) rebuild() {
	e.cal.reset()
	e.never = e.never[:0]
	e.curDue = e.curDue[:0]
	e.nextDue = e.nextDue[:0]
	for d := range e.dscheds {
		ds := &e.dscheds[d]
		ds.cal.reset()
		ds.curDue = ds.curDue[:0]
		ds.nextDue = ds.nextDue[:0]
	}
	if e.mode == ModeNaive {
		return
	}
	par := e.mode == ModeWakeCachedParallel && len(e.dscheds) > 0
	for i, ic := range e.idle {
		if ic == nil {
			continue
		}
		if par {
			if d := e.domainOf[i]; d >= 0 {
				e.dscheds[d].cal.push(i, e.now)
				continue
			}
		}
		e.cal.push(i, e.now)
	}
}

// Mode reports the selected engine path.
func (e *Engine) Mode() EngineMode { return e.mode }

// SetQuiescence enables or disables the quiescence-aware fast path:
// on selects ModeWakeCached, off selects ModeNaive. Kept for callers
// predating EngineMode.
func (e *Engine) SetQuiescence(on bool) {
	if on {
		e.SetMode(ModeWakeCached)
	} else {
		e.SetMode(ModeNaive)
	}
}

// Quiescence reports whether a fast path (any mode but naive) is enabled.
func (e *Engine) Quiescence() bool { return e.mode != ModeNaive }

// SetProbe installs (or, with nil, removes) the telemetry probe. The
// probe is shared by both engine paths, so a sampled run records the
// same series whichever path executes it.
func (e *Engine) SetProbe(p Probe) {
	e.probe = p
	e.nextSample = Never
	if p != nil {
		e.nextSample = p.NextSample(e.now)
	}
}

// maybeSample takes any probe snapshots due at the current cycle. It
// runs before the cycle executes on both engine paths, so a sample
// observes the architected state exactly as it stood when cycle now was
// about to begin.
func (e *Engine) maybeSample() {
	if e.probe == nil {
		return
	}
	for e.now >= e.nextSample {
		e.Settle()
		e.probe.SampleNow(e.now)
		ns := e.probe.NextSample(e.now + 1)
		if ns <= e.now {
			ns = e.now + 1
		}
		e.nextSample = ns
	}
}

// A Handle identifies a registered component to its engine. The zero
// Handle is valid and inert: waking it is a no-op, so components built
// without an engine (unit-test doubles) need no special casing.
type Handle struct {
	eng *Engine
	idx int
}

// Wake marks the component runnable again after external stimulus. A
// dormant component (last NextEvent answer Never) is reinserted into the
// wake calendar at the next cycle if the waker ticks later in
// registration order than the woken component, or within the current
// cycle otherwise — exactly when the naive engine would next observe
// the stimulus. Waking a component that already has a calendar entry
// pulls the entry forward to that same slot if it was later — a
// query-only perturbation (the re-query either ticks the component,
// exactly as the naive engine would, or reschedules it), which is what
// lets stimulus invalidate a previously reported future event: an
// IP.Submit while only a far-off completion was scheduled, for example.
// Waking a component that is already due is a cheap no-op, so stimulus
// entry points may call it unconditionally.
func (h Handle) Wake() {
	if h.eng != nil {
		h.eng.wake(h.idx)
	}
}

// wake implements Handle.Wake and Engine.Wake for component index i.
// Under a parallel partition, a domain component's calendar entry lives
// in its domain's sub-calendar; everything else stays on the global one.
func (e *Engine) wake(i int) {
	if e.mode == ModeWakeCachedParallel && len(e.domainOf) > 0 {
		if d := e.domainOf[i]; d >= 0 {
			e.wakeDomain(&e.dscheds[d], i)
			return
		}
	}
	if e.dormant[i] {
		e.dormant[i] = false
		e.nDormant--
		e.cal.push(i, e.wakeSlot(i))
		return
	}
	// Non-dormant: pull a scheduled future query forward to the wake
	// slot. Components in the due ring, on the quiescent never list, or
	// mid-pop are already (re-)queried no later than the wake slot, so
	// they need nothing. The naive path keeps no calendar at all.
	if e.mode != ModeNaive && e.cal.contains(i) {
		e.cal.moveEarlier(i, e.wakeSlot(i))
	}
}

// wakeSlot is the cycle at which a component woken right now must next
// be queried: the cycle being executed when its tick slot is still
// ahead of the waker's, the next cycle otherwise. Between cycles
// (ticking false) e.now is the next cycle to execute.
func (e *Engine) wakeSlot(i int) Cycle {
	if e.ticking && i <= e.curIdx {
		return e.now + 1
	}
	return e.now
}

// Waker is the stimulus-notification half of the wake API: anything that
// can mark a component runnable. Handle implements it; components keep a
// Waker rather than a Handle so tests can substitute their own.
type Waker interface {
	Wake()
}

// WakeSink is implemented by components that cache their engine Handle
// for self-wakes on external stimulus. Register attaches the component's
// own Handle automatically, so assembly code never wires wakers by hand.
type WakeSink interface {
	AttachWaker(w Waker)
}

// Register adds a component to the tick order and returns its Handle.
// Components are ticked in registration order each cycle; registration
// order is therefore part of the machine definition and must be
// deterministic. If the component implements WakeSink its own Handle is
// attached before Register returns.
func (e *Engine) Register(name string, c Component) Handle {
	if c == nil {
		panic("sim: Register called with nil component")
	}
	e.comps = append(e.comps, c)
	e.names = append(e.names, name)
	ic, _ := c.(IdleComponent)
	e.idle = append(e.idle, ic)
	sa, _ := c.(SkipAware)
	e.skip = append(e.skip, sa)
	e.lastTick = append(e.lastTick, -1)
	e.dormant = append(e.dormant, false)
	e.cal.grow()
	if len(e.dscheds) > 0 {
		// Post-partition registrations are global components: the domain
		// band was validated as a closed set, so latecomers tick on the
		// coordinator.
		e.domainOf = append(e.domainOf, -1)
		for d := range e.dscheds {
			e.dscheds[d].cal.grow()
		}
	}
	i := len(e.comps) - 1
	if ic == nil {
		// No quiescence view: ticked at every executed cycle.
		e.always = append(e.always, i)
	} else if e.mode != ModeNaive {
		at := e.now
		if e.ticking {
			// Mid-cycle registration joins from the next cycle, matching
			// the naive path's snapshot of the component slice.
			at++
		}
		e.cal.push(i, at)
	}
	h := Handle{eng: e, idx: i}
	if ws, ok := c.(WakeSink); ok {
		ws.AttachWaker(h)
	}
	return h
}

// Wake marks a component runnable; equivalent to h.Wake(). The zero
// Handle is valid and inert here exactly as for Handle.Wake: waking it
// is a no-op, so unit-test doubles built without an engine pass through
// unharmed. A Handle from a different engine still panics.
func (e *Engine) Wake(h Handle) {
	if h.eng == nil {
		return
	}
	if h.eng != e {
		panic("sim: Wake with a Handle from a different engine")
	}
	h.Wake()
}

// Components reports the number of registered components.
func (e *Engine) Components() int { return len(e.comps) }

// ComponentNames returns the registered component names in tick order.
func (e *Engine) ComponentNames() []string {
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}

// Now returns the current cycle. During a tick, Now reports the cycle
// being executed.
func (e *Engine) Now() Cycle { return e.now }

// Step advances the simulation by exactly one cycle. On the quiescence
// path components reporting no work for this cycle are skipped but time
// never jumps; on the naive path every component is ticked.
func (e *Engine) Step() {
	if e.mode != ModeNaive {
		e.advance(e.now + 1)
		return
	}
	if e.hasPending.Load() {
		e.drainAsyncWakes()
	}
	e.maybeSample()
	e.ticking = true
	for _, c := range e.comps {
		c.Tick(e.now)
	}
	e.ticking = false
	e.now++
}

// MidCycle reports whether the engine is inside the component loop of
// the current cycle. Counter reads taken mid-cycle observe a mixture of
// before- and after-tick state that depends on the caller's tick-slot
// position; the telemetry sampler uses this to downgrade mid-cycle
// phase marks to label-only records so both engine paths stay
// bit-identical.
func (e *Engine) MidCycle() bool { return e.ticking }

// advance executes the cycle at e.now on the fast paths, then moves
// time forward: by one cycle normally, or in a single jump to the wake
// calendar's minimum when no component had work, capped at limit. The
// cycle's candidates are merged in ascending registration index from
// four sources — the always-active components, the due ring (components
// the previous cycle scheduled for this one), the quiescent-mode never
// list, and calendar entries whose due cycle has arrived — so tick
// order is bit-identical to the naive scan. Each candidate's NextEvent
// is queried at its own slot, never from a snapshot: stimulus generated
// by an earlier-in-order component the same cycle is observed exactly
// as on the naive path, because a mid-cycle Wake inserts the woken
// component's calendar entry at this cycle when its slot is still
// ahead (the merge picks it up in order) and at the next cycle
// otherwise.
//
// A queried component is then rescheduled by its answer: at its slot
// next cycle after a tick (re-querying each executed cycle is what the
// naive path observes), at a future cycle it named, into the dormant
// set on Never in ModeWakeCached, or onto the never list in
// ModeQuiescent. A jump happens only when no component ticked at all,
// which guarantees every calendar entry is still valid.
// Candidate sources of the per-cycle merge loops, in the order they are
// consulted; shared by advance, runGlobals and runDomain.
const (
	srcAlways = iota
	srcDue
	srcNever
	srcCal
)

func (e *Engine) advance(limit Cycle) {
	if e.hasPending.Load() {
		e.drainAsyncWakes()
	}
	if e.mode == ModeWakeCachedParallel && len(e.dscheds) > 0 {
		e.advanceParallel(limit)
		return
	}
	e.maybeSample()
	now := e.now
	// Diagnostics mirror the scan engine's: every registered component
	// either ticks at an executed cycle or counts as an elided tick, and
	// each component dormant as the cycle begins counts a dormant skip.
	e.DormantSkips += int64(e.nDormant)
	e.curDue, e.nextDue = e.nextDue, e.curDue[:0]
	di, ni, ai := 0, 0, 0
	nTicked := 0
	e.ticking = true
	e.curIdx = -1
	for {
		// Next candidate: the smallest registration index among the four
		// sources. The calendar is consulted live so entries inserted
		// mid-cycle by Wake are merged in order.
		idx := -1
		src := srcAlways
		if ai < len(e.always) {
			idx = e.always[ai]
		}
		if di < len(e.curDue) && (idx < 0 || e.curDue[di] < idx) {
			idx, src = e.curDue[di], srcDue
		}
		if ni < len(e.never) && (idx < 0 || e.never[ni] < idx) {
			idx, src = e.never[ni], srcNever
		}
		if !e.cal.empty() && e.cal.minAt() <= now {
			if j := e.cal.minIdx(); idx < 0 || j < idx {
				idx, src = j, srcCal
			}
		}
		if idx < 0 {
			break
		}
		switch src {
		case srcAlways:
			ai++
		case srcDue:
			di++
		case srcNever:
			ni++
		case srcCal:
			e.cal.popMin()
		}
		e.curIdx = idx
		if src != srcAlways {
			ne := e.idle[idx].NextEvent(now)
			if ne > now {
				if ne == Never {
					if e.mode != ModeQuiescent {
						// Wake-cached dormancy; the parallel mode without a
						// configured partition rides this same path.
						e.dormant[idx] = true
						e.nDormant++
					} else if src != srcNever {
						// Quiescent path: joins the never list at the scan
						// position (the list stays sorted; remaining members
						// all have larger indices) and is re-queried from the
						// next executed cycle on.
						e.never = append(e.never, 0)
						copy(e.never[ni+1:], e.never[ni:len(e.never)-1])
						e.never[ni] = idx
						ni++
					}
				} else {
					if src == srcNever {
						ni--
						e.never = append(e.never[:ni], e.never[ni+1:]...)
					}
					if ne == now+1 {
						e.nextDue = append(e.nextDue, idx)
					} else {
						e.cal.push(idx, ne)
					}
				}
				continue
			}
			if src == srcNever {
				ni--
				e.never = append(e.never[:ni], e.never[ni+1:]...)
			}
			// Ticked components are due again next cycle: the re-query at
			// their next slot is exactly what the scan engine did every
			// executed cycle, and it keeps stale answers impossible.
			e.nextDue = append(e.nextDue, idx)
		}
		if sa := e.skip[idx]; sa != nil && e.lastTick[idx]+1 < now {
			sa.SkipCycles(e.lastTick[idx]+1, now)
		}
		e.lastTick[idx] = now
		e.comps[idx].Tick(now)
		nTicked++
	}
	e.curIdx = -1
	e.ticking = false
	e.SkippedTicks += int64(len(e.comps) - nTicked)
	if nTicked == 0 {
		target := Never
		if len(e.nextDue) > 0 {
			// A component answered now+1 without ticking: the next cycle
			// is pinned even though the calendar heap does not hold it.
			target = now + 1
		} else if !e.cal.empty() {
			target = e.cal.minAt()
		}
		if target > limit {
			target = limit
		}
		// Land exactly on the next sample boundary so the probe observes
		// it; the landing runs the due-candidate merge but ticks nothing.
		if target > e.nextSample {
			target = e.nextSample
		}
		if target > now+1 {
			e.FastForwarded += int64(target - now - 1)
			e.now = target
			return
		}
	}
	e.now++
}

// Settle flushes deferred skip accounting: every SkipAware component is
// credited for the cycles [lastTick+1, now) the engine never executed for
// it. Run and RunUntil call this on return; callers driving Step directly
// must call it before reading skip-accrued counters. On the naive path
// there is never anything deferred (lastTick is not maintained there),
// so Settle is a no-op.
func (e *Engine) Settle() {
	if e.mode == ModeNaive {
		return
	}
	for i, sa := range e.skip {
		if sa == nil {
			continue
		}
		if e.lastTick[i]+1 < e.now {
			sa.SkipCycles(e.lastTick[i]+1, e.now)
		}
		if e.lastTick[i] < e.now-1 {
			e.lastTick[i] = e.now - 1
		}
	}
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n Cycle) {
	end := e.now + n
	if e.mode == ModeNaive {
		for e.now < end {
			e.Step()
		}
		return
	}
	for e.now < end {
		e.advance(end)
	}
	e.Settle()
}

// ErrDeadline is returned by RunUntil when the predicate does not become
// true within the cycle budget.
var ErrDeadline = errors.New("sim: deadline exceeded before condition held")

// RunUntil steps the engine until done() reports true, checking before
// each cycle, or until max cycles have elapsed from the current time. It
// returns the cycle at which the condition first held. The done predicate
// must depend only on simulated state: between executed cycles nothing
// changes, so the fast path checks it exactly as often as it can change.
func (e *Engine) RunUntil(done func() bool, max Cycle) (Cycle, error) {
	deadline := e.now + max
	if e.mode == ModeNaive {
		for !done() {
			if e.now >= deadline {
				return e.now, e.deadlineErr(max)
			}
			e.Step()
		}
		return e.now, nil
	}
	for !done() {
		if e.now >= deadline {
			e.Settle()
			return e.now, e.deadlineErr(max)
		}
		e.advance(deadline)
	}
	e.Settle()
	return e.now, nil
}

// deadlineErr builds the RunUntil timeout error. When the dormant set is
// non-empty and no other component has an event scheduled, the machine
// can never make progress again — the classic symptom of a stimulus entry
// point that forgot to call Wake — so the error names every dormant
// component to make the missing call diagnosable. Components reporting an
// unrecoverable fault (FaultReporter) are appended with their reasons, so
// a run wedged by an exhausted retry names the component and the pending
// request instead of timing out silently.
func (e *Engine) deadlineErr(max Cycle) error {
	var detail []string
	if stuck := e.stuckDormant(); len(stuck) > 0 {
		detail = append(detail, "no event scheduled, dormant components awaiting Wake: "+strings.Join(stuck, ", "))
	}
	if faulted := e.faulted(); len(faulted) > 0 {
		detail = append(detail, "faulted: "+strings.Join(faulted, "; "))
	}
	if len(detail) > 0 {
		return fmt.Errorf("%w (budget %d cycles; %s)", ErrDeadline, max, strings.Join(detail, "; "))
	}
	return fmt.Errorf("%w (budget %d cycles)", ErrDeadline, max)
}

// faulted collects "name: reason" for every component reporting an
// unrecoverable fault, in tick order.
func (e *Engine) faulted() []string {
	var out []string
	for i, c := range e.comps {
		if fr, ok := c.(FaultReporter); ok {
			if r := fr.FaultReason(); r != "" {
				out = append(out, e.names[i]+": "+r)
			}
		}
	}
	return out
}

// stuckDormant returns the names of dormant components when they are
// provably the only possible source of progress: at least one component
// is dormant and nothing else is scheduled anywhere — no always-active
// component, no calendar entry, no due-ring entry, and no never-list
// member whose re-query could discover work. The decision reads only
// the engine's own scheduling state; it never re-queries NextEvent, so
// a failed RunUntil cannot reinsert, reschedule, or otherwise perturb a
// component — the engine is left bit-identical for diagnosis or resume.
func (e *Engine) stuckDormant() []string {
	nd := e.nDormant
	for d := range e.dscheds {
		nd += e.dscheds[d].nDormant
	}
	if nd == 0 {
		return nil
	}
	if len(e.always) > 0 || !e.cal.empty() || len(e.nextDue) > 0 || len(e.never) > 0 {
		return nil
	}
	for d := range e.dscheds {
		ds := &e.dscheds[d]
		if !ds.cal.empty() || len(ds.nextDue) > 0 {
			return nil
		}
	}
	names := make([]string, 0, nd)
	for i := range e.comps {
		if e.dormant[i] {
			names = append(names, e.names[i])
		}
	}
	return names
}

// Rand is a small deterministic pseudo-random source (xorshift64*) used by
// workload generators. It is intentionally independent of math/rand so
// that workloads are reproducible across Go releases.
type Rand struct{ s uint64 }

// NewRand returns a generator seeded with seed (zero is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
