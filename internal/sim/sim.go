// Package sim provides the cycle-stepped discrete simulation engine that
// underlies the Cedar machine model.
//
// Every hardware unit in the model (computational elements, network
// switches, memory modules, prefetch units, caches) is a Component
// registered with an Engine. The Engine advances simulated time one
// instruction cycle at a time; one cycle corresponds to the Alliant FX/8
// CE instruction cycle of 170 ns described in the paper. Components are
// ticked in registration order, which makes every simulation fully
// deterministic: the same program on the same configuration always takes
// exactly the same number of cycles.
//
// A cycle-stepped engine (rather than an event-queue design) is used
// because during the kernels studied in the paper essentially every unit
// is active every cycle, and because exact determinism keeps the test
// suite precise. The paper's workloads nevertheless contain long quiet
// stretches — the ≈90 µs XDOALL startup, barrier spin backoffs, drained
// networks between strips — so the engine is quiescence-aware: components
// that implement IdleComponent are skipped while they report no work, and
// when every component agrees the machine is quiet until a known future
// cycle the engine fast-forwards time in one jump. Both optimizations are
// exact: a quiescence-aware run produces bit-identical cycle counts and
// statistics to the naive tick-everything run (SetQuiescence toggles the
// naive path for equivalence testing).
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Cycle is a point in (or span of) simulated time, measured in CE
// instruction cycles of 170 ns.
type Cycle int64

// CycleTime is the duration of one simulated cycle: the 170 ns Alliant
// FX/8 CE instruction cycle.
const CycleTime = 170 * time.Nanosecond

// CyclesPerSecond is the simulated clock rate (about 5.88 MHz).
const CyclesPerSecond = float64(time.Second) / float64(CycleTime)

// Seconds converts a cycle count to simulated seconds.
func (c Cycle) Seconds() float64 { return float64(c) / CyclesPerSecond }

// Duration converts a cycle count to a time.Duration of simulated time.
func (c Cycle) Duration() time.Duration { return time.Duration(c) * CycleTime }

// FromDuration converts a duration of simulated time to whole cycles,
// rounding up so that a positive duration never becomes zero cycles.
func FromDuration(d time.Duration) Cycle {
	if d <= 0 {
		return 0
	}
	return Cycle((d + CycleTime - 1) / CycleTime)
}

// FromMicroseconds converts simulated microseconds to cycles, rounding up.
func FromMicroseconds(us float64) Cycle {
	if us <= 0 {
		return 0
	}
	c := us * 1e3 / float64(CycleTime.Nanoseconds())
	ic := Cycle(c)
	if float64(ic) < c {
		ic++
	}
	return ic
}

// A Component is a hardware unit advanced by the engine once per cycle.
type Component interface {
	// Tick advances the component through the cycle that begins at now.
	Tick(now Cycle)
}

// ComponentFunc adapts a plain function to the Component interface.
type ComponentFunc func(now Cycle)

// Tick implements Component.
func (f ComponentFunc) Tick(now Cycle) { f(now) }

// Never is the NextEvent answer meaning "no scheduled work: only external
// stimulus (a Deliver, a program assignment, a queued request) can create
// an event for this component".
const Never = Cycle(math.MaxInt64)

// IdleComponent is optionally implemented by components that can report
// quiescence. NextEvent returns the earliest cycle at or after now at
// which ticking the component could change any observable state —
// including statistics counters. A result <= now means "tick me this
// cycle"; a future cycle means every tick before it would be a no-op; and
// Never means the component is fully passive until external stimulus.
//
// The engine queries NextEvent immediately before the component's tick
// slot each cycle (never from a stale snapshot), so a component woken by
// an earlier-in-order component during the same cycle is ticked exactly
// as the naive engine would tick it. A future answer must stay valid
// until then under external stimulus delivered between the component's
// tick slots; components whose wake-up time can move earlier must return
// now (or Never, which is re-queried every executed cycle).
type IdleComponent interface {
	Component
	NextEvent(now Cycle) Cycle
}

// Probe is the telemetry sampler's view of the engine. NextSample
// returns the next cycle at or after now at which the probe wants a
// snapshot (Never for none); SampleNow is called with that cycle once
// simulated time reaches it, after deferred skip accounting has been
// settled and before the cycle executes. The engine lands on sample
// boundaries exactly — a fast-forward jump is capped at the next
// boundary — but landing there only re-queries NextEvent; it never
// ticks a component that had no work, so sampling cannot perturb the
// simulation (DESIGN.md §4.1).
type Probe interface {
	NextSample(now Cycle) Cycle
	SampleNow(now Cycle)
}

// SkipAware is optionally implemented by components whose per-cycle tick
// accrues counters even when idle (the CE's IdleCycles). When the engine
// elides ticks, it calls SkipCycles with the half-open span [from, to) of
// cycles it never executed for this component, immediately before the
// next real tick and again when a run returns, so counters match the
// naive engine bit for bit. Counters are therefore only guaranteed
// settled when Run/RunUntil return (or after an explicit Settle).
type SkipAware interface {
	SkipCycles(from, to Cycle)
}

// Engine owns simulated time and the ordered set of components.
// The zero value is not usable; call New.
type Engine struct {
	now   Cycle
	comps []Component
	names []string

	// Parallel to comps: the quiescence view of each component (nil when
	// the component does not implement the interface) and the last cycle
	// it was actually ticked (-1 before the first tick).
	idle     []IdleComponent
	skip     []SkipAware
	lastTick []Cycle

	quiescence bool
	ticking    bool

	probe      Probe
	nextSample Cycle

	// SkippedTicks counts component ticks elided at executed cycles;
	// FastForwarded counts whole cycles jumped over because every
	// component agreed the machine was quiet. Both are diagnostics: they
	// do not affect simulated time.
	SkippedTicks  int64
	FastForwarded int64
}

// New returns an empty engine at cycle zero with quiescence awareness
// enabled.
func New() *Engine { return &Engine{quiescence: true, nextSample: Never} }

// SetQuiescence enables or disables the quiescence-aware fast path.
// Disabled, the engine ticks every component every cycle (the naive
// reference path used by the determinism equivalence tests). Turning the
// fast path off settles any deferred skip accounting first, so the toggle
// is safe between runs.
func (e *Engine) SetQuiescence(on bool) {
	if !on && e.quiescence {
		e.Settle()
	}
	e.quiescence = on
}

// Quiescence reports whether the fast path is enabled.
func (e *Engine) Quiescence() bool { return e.quiescence }

// SetProbe installs (or, with nil, removes) the telemetry probe. The
// probe is shared by both engine paths, so a sampled run records the
// same series whichever path executes it.
func (e *Engine) SetProbe(p Probe) {
	e.probe = p
	e.nextSample = Never
	if p != nil {
		e.nextSample = p.NextSample(e.now)
	}
}

// maybeSample takes any probe snapshots due at the current cycle. It
// runs before the cycle executes on both engine paths, so a sample
// observes the architected state exactly as it stood when cycle now was
// about to begin.
func (e *Engine) maybeSample() {
	if e.probe == nil {
		return
	}
	for e.now >= e.nextSample {
		e.Settle()
		e.probe.SampleNow(e.now)
		ns := e.probe.NextSample(e.now + 1)
		if ns <= e.now {
			ns = e.now + 1
		}
		e.nextSample = ns
	}
}

// Register adds a component to the tick order. Components are ticked in
// registration order each cycle; registration order is therefore part of
// the machine definition and must be deterministic.
func (e *Engine) Register(name string, c Component) {
	if c == nil {
		panic("sim: Register called with nil component")
	}
	e.comps = append(e.comps, c)
	e.names = append(e.names, name)
	ic, _ := c.(IdleComponent)
	e.idle = append(e.idle, ic)
	sa, _ := c.(SkipAware)
	e.skip = append(e.skip, sa)
	e.lastTick = append(e.lastTick, -1)
}

// Components reports the number of registered components.
func (e *Engine) Components() int { return len(e.comps) }

// ComponentNames returns the registered component names in tick order.
func (e *Engine) ComponentNames() []string {
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}

// Now returns the current cycle. During a tick, Now reports the cycle
// being executed.
func (e *Engine) Now() Cycle { return e.now }

// Step advances the simulation by exactly one cycle. On the quiescence
// path components reporting no work for this cycle are skipped but time
// never jumps; on the naive path every component is ticked.
func (e *Engine) Step() {
	if e.quiescence {
		e.advance(e.now + 1)
		return
	}
	e.maybeSample()
	e.ticking = true
	for _, c := range e.comps {
		c.Tick(e.now)
	}
	e.ticking = false
	e.now++
}

// MidCycle reports whether the engine is inside the component loop of
// the current cycle. Counter reads taken mid-cycle observe a mixture of
// before- and after-tick state that depends on the caller's tick-slot
// position; the telemetry sampler uses this to downgrade mid-cycle
// phase marks to label-only records so both engine paths stay
// bit-identical.
func (e *Engine) MidCycle() bool { return e.ticking }

// advance executes the cycle at e.now on the quiescence path, then moves
// time forward: by one cycle normally, or in a single jump to the
// earliest future event when no component had work, capped at limit.
// NextEvent is queried per tick slot, so stimulus generated by an
// earlier-in-order component in the same cycle is observed exactly as on
// the naive path; a jump happens only when no component ticked at all,
// which guarantees the queried wake-up times are still valid.
func (e *Engine) advance(limit Cycle) {
	e.maybeSample()
	minNext := Never
	ticked := false
	e.ticking = true
	for i, c := range e.comps {
		if ic := e.idle[i]; ic != nil {
			if ne := ic.NextEvent(e.now); ne > e.now {
				if ne < minNext {
					minNext = ne
				}
				e.SkippedTicks++
				continue
			}
		}
		ticked = true
		if sa := e.skip[i]; sa != nil && e.lastTick[i]+1 < e.now {
			sa.SkipCycles(e.lastTick[i]+1, e.now)
		}
		e.lastTick[i] = e.now
		c.Tick(e.now)
	}
	e.ticking = false
	if !ticked {
		target := minNext
		if target > limit {
			target = limit
		}
		// Land exactly on the next sample boundary so the probe observes
		// it; the landing re-runs the NextEvent queries but ticks nothing.
		if target > e.nextSample {
			target = e.nextSample
		}
		if target > e.now+1 {
			e.FastForwarded += int64(target - e.now - 1)
			e.now = target
			return
		}
	}
	e.now++
}

// Settle flushes deferred skip accounting: every SkipAware component is
// credited for the cycles [lastTick+1, now) the engine never executed for
// it. Run and RunUntil call this on return; callers driving Step directly
// must call it before reading skip-accrued counters. On the naive path
// there is never anything deferred (lastTick is not maintained there),
// so Settle is a no-op.
func (e *Engine) Settle() {
	if !e.quiescence {
		return
	}
	for i, sa := range e.skip {
		if sa == nil {
			continue
		}
		if e.lastTick[i]+1 < e.now {
			sa.SkipCycles(e.lastTick[i]+1, e.now)
		}
		if e.lastTick[i] < e.now-1 {
			e.lastTick[i] = e.now - 1
		}
	}
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n Cycle) {
	end := e.now + n
	if !e.quiescence {
		for e.now < end {
			e.Step()
		}
		return
	}
	for e.now < end {
		e.advance(end)
	}
	e.Settle()
}

// ErrDeadline is returned by RunUntil when the predicate does not become
// true within the cycle budget.
var ErrDeadline = errors.New("sim: deadline exceeded before condition held")

// RunUntil steps the engine until done() reports true, checking before
// each cycle, or until max cycles have elapsed from the current time. It
// returns the cycle at which the condition first held. The done predicate
// must depend only on simulated state: between executed cycles nothing
// changes, so the fast path checks it exactly as often as it can change.
func (e *Engine) RunUntil(done func() bool, max Cycle) (Cycle, error) {
	deadline := e.now + max
	if !e.quiescence {
		for !done() {
			if e.now >= deadline {
				return e.now, fmt.Errorf("%w (budget %d cycles)", ErrDeadline, max)
			}
			e.Step()
		}
		return e.now, nil
	}
	for !done() {
		if e.now >= deadline {
			e.Settle()
			return e.now, fmt.Errorf("%w (budget %d cycles)", ErrDeadline, max)
		}
		e.advance(deadline)
	}
	e.Settle()
	return e.now, nil
}

// Rand is a small deterministic pseudo-random source (xorshift64*) used by
// workload generators. It is intentionally independent of math/rand so
// that workloads are reproducible across Go releases.
type Rand struct{ s uint64 }

// NewRand returns a generator seeded with seed (zero is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
