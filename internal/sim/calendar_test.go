package sim

import "testing"

// newTestCalendar builds a calendar sized for n components.
func newTestCalendar(n int) *calendar {
	c := &calendar{}
	for i := 0; i < n; i++ {
		c.grow()
	}
	return c
}

func TestCalendarPopOrder(t *testing.T) {
	c := newTestCalendar(5)
	// Scheduled out of order; pop must return strictly (cycle, index)
	// ascending.
	c.push(3, 10)
	c.push(0, 40)
	c.push(4, 10)
	c.push(1, 5)
	c.push(2, 40)
	want := []struct {
		idx int
		at  Cycle
	}{{1, 5}, {3, 10}, {4, 10}, {0, 40}, {2, 40}}
	for _, w := range want {
		if c.empty() {
			t.Fatalf("calendar empty before popping (%d, %d)", w.idx, w.at)
		}
		if got, at := c.minIdx(), c.minAt(); got != w.idx || at != w.at {
			t.Fatalf("min = (%d, %d), want (%d, %d)", got, at, w.idx, w.at)
		}
		if got := c.popMin(); got != w.idx {
			t.Fatalf("popMin = %d, want %d", got, w.idx)
		}
	}
	if !c.empty() {
		t.Fatal("calendar not empty after popping every entry")
	}
}

func TestCalendarTiesBreakByRegistrationIndex(t *testing.T) {
	// All entries due the same cycle: pop order must be registration
	// order regardless of insertion order, because tick order is the
	// determinism contract.
	c := newTestCalendar(8)
	for _, i := range []int{5, 2, 7, 0, 6, 1, 4, 3} {
		c.push(i, 100)
	}
	for want := 0; want < 8; want++ {
		if got := c.popMin(); got != want {
			t.Fatalf("tie-break pop #%d = %d, want registration order", want, got)
		}
	}
}

func TestCalendarMoveEarlier(t *testing.T) {
	c := newTestCalendar(3)
	c.push(0, 50)
	c.push(1, 30)
	c.push(2, 70)
	// A later time is ignored: a Wake may never delay a scheduled event.
	c.moveEarlier(1, 90)
	if c.minIdx() != 1 || c.minAt() != 30 {
		t.Fatalf("min = (%d, %d) after ignored delay, want (1, 30)", c.minIdx(), c.minAt())
	}
	// An earlier time reorders the heap.
	c.moveEarlier(2, 10)
	if c.minIdx() != 2 || c.minAt() != 10 {
		t.Fatalf("min = (%d, %d) after moveEarlier, want (2, 10)", c.minIdx(), c.minAt())
	}
	if got := []int{c.popMin(), c.popMin(), c.popMin()}; got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("pop order %v, want [2 1 0]", got)
	}
}

func TestCalendarDoublePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pushing an already scheduled component did not panic")
		}
	}()
	c := newTestCalendar(1)
	c.push(0, 5)
	c.push(0, 7)
}

func TestCalendarResetClearsMembership(t *testing.T) {
	c := newTestCalendar(4)
	for i := 0; i < 4; i++ {
		c.push(i, Cycle(i))
	}
	c.reset()
	if !c.empty() {
		t.Fatal("calendar not empty after reset")
	}
	for i := 0; i < 4; i++ {
		if c.contains(i) {
			t.Fatalf("component %d still scheduled after reset", i)
		}
	}
	// Entries must be re-pushable after reset.
	c.push(2, 9)
	if c.minIdx() != 2 || c.minAt() != 9 {
		t.Fatalf("min = (%d, %d) after reset+push, want (2, 9)", c.minIdx(), c.minAt())
	}
}
