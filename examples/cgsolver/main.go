// CGSolver: solve a 5-diagonal SPD system with the parallel conjugate
// gradient of Section 4.3 and study how it scales.
//
// The solver's vectors live in global memory; its dot products reduce
// through per-CE partials and sense-reversing barriers built on the
// Cedar synchronization instructions. The run verifies convergence
// against a serial reference and reports the efficiency bands of the
// Practical Parallelism methodology.
//
//	go run ./examples/cgsolver
package main

import (
	"fmt"
	"log"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/methodology"
)

func solve(ces, n, iters int) kernels.CGResult {
	cfg := core.DefaultConfig()
	if ces >= 8 {
		cfg.Clusters = ces / 8
	} else {
		cfg.Clusters = 1
		cfg.Cluster.CEs = ces
	}
	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	p := kernels.NewCGProblem(n, 64)
	res, err := kernels.RunCG(m, rt, p, kernels.Params{Iterations: iters, Prefetch: true})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	const n = 8192
	const iters = 12

	fmt.Printf("conjugate gradient, 5-diagonal SPD system, N=%d, %d iterations\n\n", n, iters)
	base := solve(1, n, iters)
	fmt.Printf("1 CE baseline: %.2f MFLOPS, residual %.2e\n\n", base.MFLOPS, base.FinalResidual)

	fmt.Printf("%-6s %-10s %-10s %-8s %s\n", "CEs", "MFLOPS", "speedup", "eff.", "band")
	for _, ces := range []int{2, 8, 16, 32} {
		res := solve(ces, n, iters)
		speedup := float64(base.Cycles) / float64(res.Cycles)
		eff := methodology.Efficiency(speedup, ces)
		fmt.Printf("%-6d %-10.1f %-10.2f %-8.2f %s\n",
			ces, res.MFLOPS, speedup, eff, methodology.Classify(eff, ces))
		if res.FinalResidual > base.FinalResidual*1.01 {
			log.Fatalf("%d-CE run converged differently: %g", ces, res.FinalResidual)
		}
	}
	fmt.Println("\n(the paper: for this computation Cedar is scalable with high performance")
	fmt.Println(" for large problems and intermediate performance for debugging-sized runs)")
}
