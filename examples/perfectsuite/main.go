// Perfectsuite: drive the Perfect Benchmarks models and judge the
// machine by the paper's methodology.
//
// The example regenerates the Table 3 results, then applies the
// Practical Parallelism Tests: PPT1 (delivered performance), PPT2
// (stability), and PPT3 (restructuring efficiency), across Cedar, the
// Cray YMP-8 and the Cray-1.
//
//	go run ./examples/perfectsuite
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/compare"
	"repro/internal/methodology"
	"repro/internal/perfect"
	"repro/internal/tables"
)

func main() {
	d, err := tables.RunTable3(perfect.Rates{})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	ds := compare.Dataset()

	// PPT1: delivered performance on the manually optimized codes.
	var cedarPts, ympPts []methodology.Point
	for _, c := range ds {
		cedarPts = append(cedarPts, methodology.Point{Name: c.Name, Efficiency: c.CedarManualEff})
		ympPts = append(ympPts, methodology.Point{Name: c.Name, Efficiency: c.YMPManualEff})
	}
	p1c := methodology.PPT1(cedarPts, 32)
	p1y := methodology.PPT1(ympPts, 8)
	fmt.Printf("PPT1 delivered performance: Cedar %dH/%dI/%dU pass=%v; YMP %dH/%dI/%dU pass=%v\n",
		p1c.High, p1c.Intermediate, p1c.Unacceptable, p1c.Pass,
		p1y.High, p1y.Intermediate, p1y.Unacceptable, p1y.Pass)

	// PPT2: stability of the rate ensembles.
	for _, mc := range []struct {
		name  string
		rates []float64
	}{
		{"Cedar", compare.CedarRates(ds)},
		{"Cray YMP-8", compare.YMPRates(ds)},
		{"Cray-1", compare.Cray1Rates(ds)},
	} {
		rep := methodology.PPT2(mc.rates, compare.WorkstationInstability)
		fmt.Printf("PPT2 stability %-12s In(13,0)=%6.1f In(13,2)=%5.1f exceptions=%d pass=%v\n",
			mc.name, rep.In0, rep.In2, rep.ExceptionsNeeded, rep.Pass)
	}

	// PPT3: what automatic/automatable restructuring achieves.
	t6 := tables.RunTable6()
	fmt.Printf("PPT3 restructuring: Cedar %dH/%dI/%dU nearly-acceptable=%v; YMP %dH/%dI/%dU nearly-acceptable=%v\n",
		t6.Cedar.High, t6.Cedar.Intermediate, t6.Cedar.Unacceptable, t6.Cedar.NearlyAcceptable,
		t6.YMP.High, t6.YMP.Intermediate, t6.YMP.Unacceptable, t6.YMP.NearlyAcceptable)

	fmt.Println("\n(the paper's conclusions: both machines pass PPT1; Cedar and the Cray-1")
	fmt.Println(" pass PPT2 with few exceptions while the YMP needs six; PPT3 can be")
	fmt.Println(" expected to pass in the near future as restructurers improve)")
}
