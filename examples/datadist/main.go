// Datadist: data distribution with SDOALL affinity (Section 3.2).
//
// CEDAR FORTRAN localizes data by partitioning and distributing it to
// the cluster memories; subsequent loops then operate on those data by
// distributing iterations to clusters according to the partitions —
// scheduling iterations of successive SDOALLs on the same clusters.
// This example distributes a matrix's row blocks to the two clusters
// with explicit moves, then runs two successive affinity-scheduled
// SDOALLs whose inner CDOALLs read only cluster-local data, and
// compares against the same computation done directly on global memory.
//
//	go run ./examples/datadist
package main

import (
	"fmt"
	"log"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

const (
	rows  = 64
	width = 512 // words per row
)

// run executes two passes of row-wise work. With distribute=true the
// rows are first moved into cluster memory and both passes read locally;
// otherwise both passes stream from global memory per iteration.
func run(distribute bool) sim.Cycle {
	m, err := core.New(core.ConfigClusters(2))
	if err != nil {
		log.Fatal(err)
	}
	rt := cedarfort.New(m, cedarfort.DefaultConfig())
	gBase := rt.Global(rows * width)

	// Partition: rows alternate between clusters (matching the affinity
	// schedule's iter % clusters assignment).
	local := make([]isa.Addr, rows)
	if distribute {
		for i := 0; i < rows; i++ {
			local[i] = rt.ClusterLocal(i%2, width)
		}
		// Distribute: each cluster's leader moves its rows in.
		if _, err := rt.SDOALL(rows, true, func(ctx *cedarfort.Ctx, row int) {
			src := isa.Addr{Space: isa.Global, Word: gBase.Word + uint64(row*width)}
			ctx.Emit(cedarfort.MoveOps(local[row], src, width, nil)...)
		}); err != nil {
			log.Fatal(err)
		}
	}

	var total sim.Cycle
	for pass := 0; pass < 2; pass++ {
		elapsed, err := rt.SDOALL(rows, true, func(ctx *cedarfort.Ctx, row int) {
			ctx.CDOALL(width/32, cedarfort.SelfScheduled, func(ictx *cedarfort.Ctx, strip int) {
				if distribute {
					addr := isa.Addr{Space: isa.Cluster, Word: local[row].Word + uint64(strip*32)}
					ictx.Emit(isa.NewVectorLoad(addr, 32, 1, 2, false))
				} else {
					addr := isa.Addr{Space: isa.Global, Word: gBase.Word + uint64(row*width+strip*32)}
					ictx.Emit(
						isa.NewPrefetch(addr, 32, 1),
						isa.NewVectorLoad(addr, 32, 1, 2, true),
					)
				}
			})
		})
		if err != nil {
			log.Fatal(err)
		}
		total += elapsed
	}
	return total
}

func main() {
	global := run(false)
	dist := run(true)
	fmt.Printf("two passes over %d rows x %d words on 2 clusters:\n", rows, width)
	fmt.Printf("  from global memory every pass:  %7d cycles (%.2f ms)\n", global, global.Seconds()*1e3)
	fmt.Printf("  distributed to cluster memory:  %7d cycles (%.2f ms, excluding the one-time move)\n",
		dist, dist.Seconds()*1e3)
	fmt.Printf("  benefit: %.2fx on the compute passes\n", float64(global)/float64(dist))
	fmt.Println()
	fmt.Println("(the affinity schedule keeps iteration i on cluster i mod 2 across")
	fmt.Println(" successive SDOALLs, so the distributed rows stay local — the")
	fmt.Println(" mechanism CEDAR FORTRAN uses for data localization)")
}
