// Quickstart: assemble a Cedar, run a parallel loop, read the results.
//
// This example builds the full four-cluster machine (32 CEs), runs a
// CEDAR FORTRAN-style XDOALL that computes a sum of squares with real
// arithmetic, and prints what the simulated hardware did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
)

func main() {
	// The as-built Cedar: 4 Alliant clusters x 8 CEs, two 64-port
	// shuffle-exchange networks of 8x8 crossbars, 32 interleaved global
	// memory modules with synchronization processors, a prefetch unit
	// per CE. Every parameter can be changed through the Config.
	m, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rt := cedarfort.New(m, cedarfort.DefaultConfig())

	// The data: an ordinary Go slice. The simulator tracks timing
	// through micro-operations; the functional arithmetic runs in Do
	// callbacks against real values.
	const n = 1024
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	partial := make([]float64, m.NumCEs())

	// An XDOALL: iterations self-scheduled over all 32 CEs through a
	// fetch-and-add counter in global memory (a Cedar synchronization
	// instruction executed by the memory module's sync processor).
	// Each iteration handles a 32-element strip: one prefetched global
	// vector load with two chained flops per element.
	elapsed, err := rt.XDOALL(n/32, cedarfort.SelfScheduled, func(ctx *cedarfort.Ctx, iter int) {
		lo := iter * 32
		addr := isa.Addr{Space: isa.Global, Word: uint64(lo)}
		ctx.Emit(isa.NewPrefetch(addr, 32, 1))
		op := isa.NewVectorLoad(addr, 32, 1, 2, true)
		ce := ctx.CE.ID
		op.Do = func() {
			for i := lo; i < lo+32; i++ {
				partial[ce] += xs[i] * xs[i]
			}
		}
		ctx.Emit(op)
	})
	if err != nil {
		log.Fatal(err)
	}

	sum := 0.0
	for _, p := range partial {
		sum += p
	}
	want := float64(n-1) * float64(n) * float64(2*n-1) / 6
	fmt.Printf("sum of squares 0..%d = %.0f (expected %.0f)\n", n-1, sum, want)
	fmt.Printf("elapsed: %d cycles = %.1f us simulated (includes the ~90 us XDOALL startup)\n",
		elapsed, elapsed.Seconds()*1e6)
	fmt.Printf("machine: %d CEs, %d global memory modules, %d-port networks\n",
		m.NumCEs(), m.Global.Modules(), m.Fwd.Ports())
	fmt.Printf("traffic: %d forward packets, %d replies, %d flops counted\n",
		m.Fwd.Injected, m.Rev.Injected, m.TotalFlops())
	fmt.Printf("rate: %.1f MFLOPS\n", core.MFLOPS(m.TotalFlops(), elapsed))
}
