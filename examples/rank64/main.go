// Rank64: the paper's Section 4.1 memory-placement study, as a program.
//
// The same rank-64 matrix update runs three ways — global memory without
// prefetch, with prefetch, and blocked through the cluster caches — on a
// two-cluster Cedar, with the hardware performance monitor attached to
// one CE's prefetch unit. The point of the exercise is the paper's: the
// differences are solely due to the memory system.
//
//	go run ./examples/rank64
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/kernels"
)

func main() {
	const n = 128
	fmt.Printf("rank-64 update of a %dx%d matrix on 2 clusters (16 CEs)\n\n", n, n)

	var first []float64
	for _, mode := range []kernels.Mode{kernels.GMNoPrefetch, kernels.GMPrefetch, kernels.GMCache} {
		in := kernels.NewRank64Input(n)
		m, err := core.New(core.ConfigClusters(2))
		if err != nil {
			log.Fatal(err)
		}
		res, err := kernels.RunRank64(m, in, kernels.Params{Mode: mode, Probe: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.1f MFLOPS  %9d cycles", mode, res.MFLOPS, res.Cycles)
		if !math.IsNaN(res.Latency) {
			fmt.Printf("  (prefetch: %.1f-cycle latency, %.2f-cycle interarrival)",
				res.Latency, res.Interarrival)
		}
		fmt.Println()

		// Every version computes the same real product.
		if first == nil {
			first = append([]float64(nil), in.C...)
		} else {
			for i := range first {
				if math.Abs(first[i]-in.C[i]) > 1e-9 {
					log.Fatalf("mode %v computed different results at %d", mode, i)
				}
			}
		}
	}

	fmt.Println("\nverification: all three versions produced identical results")
	fmt.Println("(compare with Table 1: prefetch masks the 13-cycle global latency;")
	fmt.Println(" the cluster caches approach the machine's effective peak)")
}
